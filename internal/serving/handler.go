package serving

import (
	"fmt"
	"sync"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
)

// Handler grafts a serving Server onto a MEM-PS behind one TCP server: the
// training operations (pull, push, lookup, ...) promote from the embedded
// MEM-PS, the serving operations forward to the Server, and the push
// handlers are overridden to advance the Server's push-epoch clock after
// each successfully applied push — the hook that invalidates the replica
// cache and bounds serving staleness to one push epoch.
//
// In a replicated deployment the Handler is also where the write path meets
// replication: an applied training push is handed to the Replicator (still
// under the origin client's dedup stamp) for asynchronous forwarding to the
// keys' backups, and a membership update installs the new ring and kicks off
// background re-replication.
type Handler struct {
	*memps.MemPS
	Serving *Server
	// Replicator, when set, forwards applied pushes to each key's backups and
	// re-replicates key ranges after membership changes.
	Replicator *memps.Replicator
	// Peers, when set, learns the address book carried by membership updates
	// (a joining shard's address must be installed before the first transfer
	// or replica forward is sent to it). cluster.TCPTransport implements it.
	Peers interface{ SetAddr(nodeID int, addr string) }
	// Seqs, when set, is the shard's push-dedup tracker; its log is compacted
	// after every checkpoint flush (see Evict).
	Seqs *cluster.SeqTracker

	// reshardMu serializes background re-replication runs so overlapping
	// membership changes stream their transfers one at a time.
	reshardMu sync.Mutex
}

// NewHandler wraps mem and srv into one TCP-servable handler.
func NewHandler(mem *memps.MemPS, srv *Server) *Handler {
	return &Handler{MemPS: mem, Serving: srv}
}

// HandlePush implements cluster.PushHandler: the MEM-PS applies the deltas,
// then the serving epoch advances so replica-cache entries filled before
// this push stop being served.
func (h *Handler) HandlePush(deltas map[keys.Key]*embedding.Value) error {
	if err := h.MemPS.HandlePush(deltas); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	return nil
}

// HandlePushBlock implements cluster.BlockPushHandler, with the same
// epoch-advance as HandlePush.
func (h *Handler) HandlePushBlock(blk *ps.ValueBlock) error {
	if err := h.MemPS.HandlePushBlock(blk); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	return nil
}

// HandlePushBlockStamped implements cluster.StampedBlockPushHandler, the form
// the TCP server prefers: the MEM-PS applies the delta block, the serving
// epoch advances, and the Replicator forwards the applied rows to each key's
// backups — still under the origin's (client, seq) stamp, so a backup that
// later takes over acknowledges the origin's own retry as a duplicate.
func (h *Handler) HandlePushBlockStamped(client, seq uint64, blk *ps.ValueBlock) error {
	if err := h.MemPS.HandlePushBlock(blk); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	if h.Replicator != nil {
		h.Replicator.Forward(client, seq, blk)
	}
	return nil
}

// HandleReplicate implements cluster.ReplicaPushHandler: a delta block some
// primary already applied and forwarded here. It advances the serving epoch
// like a direct push but is never re-forwarded — replication is one hop.
func (h *Handler) HandleReplicate(blk *ps.ValueBlock) error {
	if err := h.MemPS.HandleReplicate(blk); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	return nil
}

// HandleTransfer implements cluster.TransferHandler: imported rows are
// authoritative full values, so any replica-cache entries for them are stale
// the moment they land.
func (h *Handler) HandleTransfer(blk *ps.ValueBlock) (int, error) {
	n, err := h.MemPS.HandleTransfer(blk)
	if err == nil && n > 0 {
		h.Serving.BumpEpoch()
	}
	return n, err
}

// HandleMembership implements cluster.MembershipHandler: it learns the new
// members' addresses, installs the ring in the shared membership view (stale
// epochs are dropped), and re-replicates in the background — streaming every
// key range the new ring assigns to members that do not hold it yet.
func (h *Handler) HandleMembership(u cluster.MembershipUpdate) error {
	topo := h.MemPS.Topology()
	if topo.Members == nil {
		return fmt.Errorf("memps shard %d: no membership view to update", h.MemPS.NodeID())
	}
	if err := u.Validate(); err != nil {
		return err
	}
	if h.Peers != nil {
		for id, addr := range u.Addrs {
			h.Peers.SetAddr(id, addr)
		}
	}
	old := topo.Members.Ring()
	next := u.BuildRing()
	if !topo.Members.Update(next) {
		return nil // not newer than the installed ring: already seen
	}
	if h.Replicator != nil {
		go func() {
			h.reshardMu.Lock()
			defer h.reshardMu.Unlock()
			h.Replicator.Reconcile(old, next)
		}()
	}
	return nil
}

// WarmServing pre-fills the serving tier's hot-key cache from the top-K rows
// of the local (typically just-recovered) MEM-PS shard; see Server.Warm.
func (h *Handler) WarmServing(topK int) int {
	return h.Serving.Warm(h.MemPS.HotRows(topK))
}

// Evict implements cluster.EvictHandler over the embedded MemPS. An
// evict-everything call (nil ks) is the trainer's checkpoint flush: once it
// returns, every applied push is durable in the SSD-PS, so the push-dedup
// log is compacted down to the records still inside the dedup window — the
// only ones the tracker would consult anyway. A compaction failure degrades
// the log (it keeps growing, or dedup drops to process lifetime), it does
// not fail the flush.
func (h *Handler) Evict(ks []keys.Key) (int, error) {
	n, err := h.MemPS.Evict(ks)
	if err == nil && ks == nil && h.Seqs != nil {
		h.Seqs.CompactLog()
	}
	return n, err
}

// HandlePredict implements cluster.PredictHandler.
func (h *Handler) HandlePredict(req cluster.PredictRequest) ([]float32, error) {
	return h.Serving.HandlePredict(req)
}

// HandleServeConfig implements cluster.ServeConfigHandler.
func (h *Handler) HandleServeConfig(cfg cluster.ServeConfig) error {
	return h.Serving.HandleServeConfig(cfg)
}

// ServingStats implements cluster.ServingStatsHandler.
func (h *Handler) ServingStats() cluster.ServingStats {
	return h.Serving.ServingStats()
}
