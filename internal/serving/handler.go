package serving

import (
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
)

// Handler grafts a serving Server onto a MEM-PS behind one TCP server: the
// training operations (pull, push, lookup, ...) promote from the embedded
// MEM-PS, the serving operations forward to the Server, and the push
// handlers are overridden to advance the Server's push-epoch clock after
// each successfully applied push — the hook that invalidates the replica
// cache and bounds serving staleness to one push epoch.
type Handler struct {
	*memps.MemPS
	Serving *Server
}

// NewHandler wraps mem and srv into one TCP-servable handler.
func NewHandler(mem *memps.MemPS, srv *Server) *Handler {
	return &Handler{MemPS: mem, Serving: srv}
}

// HandlePush implements cluster.PushHandler: the MEM-PS applies the deltas,
// then the serving epoch advances so replica-cache entries filled before
// this push stop being served.
func (h *Handler) HandlePush(deltas map[keys.Key]*embedding.Value) error {
	if err := h.MemPS.HandlePush(deltas); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	return nil
}

// HandlePushBlock implements cluster.BlockPushHandler, with the same
// epoch-advance as HandlePush.
func (h *Handler) HandlePushBlock(blk *ps.ValueBlock) error {
	if err := h.MemPS.HandlePushBlock(blk); err != nil {
		return err
	}
	h.Serving.BumpEpoch()
	return nil
}

// HandlePredict implements cluster.PredictHandler.
func (h *Handler) HandlePredict(req cluster.PredictRequest) ([]float32, error) {
	return h.Serving.HandlePredict(req)
}

// HandleServeConfig implements cluster.ServeConfigHandler.
func (h *Handler) HandleServeConfig(cfg cluster.ServeConfig) error {
	return h.Serving.HandleServeConfig(cfg)
}

// ServingStats implements cluster.ServingStatsHandler.
func (h *Handler) ServingStats() cluster.ServingStats {
	return h.Serving.ServingStats()
}
