package serving_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/loadgen"
	"hps/internal/memps"
	"hps/internal/model"
	"hps/internal/serving"
	"hps/internal/simtime"
	"hps/internal/ssdps"
	"hps/internal/trainer"
)

// servingShard is one in-test shard server with the serving tier armed:
// exactly what `hps serve` runs, minus the process boundary.
type servingShard struct {
	mem   *memps.MemPS
	serve *serving.Server
	srv   *cluster.TCPServer
}

// startServingShards brings up one TCP shard server per node, each wrapping
// its MEM-PS in a serving.Handler.
func startServingShards(t *testing.T, topo cluster.Topology, spec model.Spec, seed int64) ([]*servingShard, map[int]string) {
	t.Helper()
	shards := make([]*servingShard, topo.Nodes)
	addrs := make(map[int]string, topo.Nodes)
	for i := 0; i < topo.Nodes; i++ {
		dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		store, err := ssdps.Open(dev, ssdps.Config{Dim: spec.EmbeddingDim, ParamsPerFile: 64})
		if err != nil {
			t.Fatal(err)
		}
		mem, err := memps.New(memps.Config{
			NodeID:    i,
			Dim:       spec.EmbeddingDim,
			Topology:  topo,
			Transport: cluster.NoRoute{},
			Store:     store,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		serveSrv, err := serving.New(serving.Config{
			NodeID:   i,
			Topology: topo,
			Dim:      spec.EmbeddingDim,
			Hidden:   spec.HiddenLayers,
			Local:    mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := cluster.ServeTCPOptions("127.0.0.1:0", serving.NewHandler(mem, serveSrv), cluster.ServerOptions{Seqs: cluster.NewSeqTracker()})
		if err != nil {
			t.Fatal(err)
		}
		sh := &servingShard{mem: mem, serve: serveSrv, srv: srv}
		t.Cleanup(func() { sh.srv.Close(); sh.serve.Close() })
		shards[i] = sh
		addrs[i] = srv.Addr()
	}
	return shards, addrs
}

// TestServeWhileTraining is the serving-under-training race pass (run under
// -race in CI): loadgen-style Predict traffic overlaps a full training run
// against the same two shard servers. Every score must be a finite
// probability, the replica cache must actually absorb the zipfian stream,
// and push-epoch invalidation must keep the reported staleness within one
// push epoch.
func TestServeWhileTraining(t *testing.T) {
	spec := model.TinySpec()
	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	const seed = 11

	_, addrs := startServingShards(t, topo, spec, seed)
	tr, err := trainer.New(trainer.Config{
		Spec:         spec,
		Data:         data,
		Topology:     topo,
		BatchSize:    64,
		Batches:      25,
		MaxInFlight:  2,
		Seed:         seed,
		RemoteShards: addrs,
		Serve:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Query clients get their own transport, like a real front-end would.
	qt := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
	defer qt.Close()

	stop := make(chan struct{})
	var served atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			gen := dataset.NewGenerator(data, int64(1000+client))
			target := client % topo.Nodes
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := cluster.PredictRequest{Counts: make([]uint32, 0, 8)}
				for e := 0; e < 8; e++ {
					ex := gen.NextExample()
					req.Counts = append(req.Counts, uint32(len(ex.Features)))
					req.Keys = append(req.Keys, ex.Features...)
				}
				scores, err := qt.Predict(target, req)
				target = (target + 1) % topo.Nodes
				if err != nil {
					if cluster.Retryable(err) {
						continue // overload shedding is fine mid-training
					}
					t.Errorf("predict: %v", err)
					return
				}
				for _, s := range scores {
					if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s < 0 || s > 1 {
						t.Errorf("score %v is not a probability", s)
						return
					}
				}
				served.Add(int64(len(scores)))
			}
		}(c)
	}

	if err := tr.Run(context.Background()); err != nil {
		t.Fatalf("training under serving load failed: %v", err)
	}
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no example was served during training")
	}
	var agg cluster.ServingStats
	for id := 0; id < topo.Nodes; id++ {
		st, err := qt.ServingStats(id)
		if err != nil {
			t.Fatal(err)
		}
		agg = agg.Add(st)
	}
	if agg.Requests == 0 {
		t.Fatal("shards report zero served requests")
	}
	// Push-epoch invalidation bounds freshness: the dense replica (and the
	// replica cache) may lag the authoritative parameters by at most the one
	// push applied since the driver's last republish.
	if agg.StalenessMax > 1 {
		t.Fatalf("staleness %d push epochs, want <= 1", agg.StalenessMax)
	}
	if agg.PushEpoch != 25 || agg.DenseEpoch != 25 {
		t.Fatalf("epochs: push %d dense %d, want 25/25", agg.PushEpoch, agg.DenseEpoch)
	}

	// Hit-rate phase: during training this fast, every batch's push
	// invalidates the replica cache (deliberately — freshness wins), so the
	// mid-training hit rate tells us nothing. With training finished the
	// push epoch is stable, and the zipfian stream must now be absorbed by
	// the hot-key cache.
	before := agg
	gen := dataset.NewGenerator(data, 4242)
	for i := 0; i < 150; i++ {
		req := cluster.PredictRequest{Counts: make([]uint32, 0, 8)}
		for e := 0; e < 8; e++ {
			ex := gen.NextExample()
			req.Counts = append(req.Counts, uint32(len(ex.Features)))
			req.Keys = append(req.Keys, ex.Features...)
		}
		if _, err := qt.Predict(i%topo.Nodes, req); err != nil {
			t.Fatal(err)
		}
	}
	var after cluster.ServingStats
	for id := 0; id < topo.Nodes; id++ {
		st, err := qt.ServingStats(id)
		if err != nil {
			t.Fatal(err)
		}
		after = after.Add(st)
	}
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	if hits+misses == 0 {
		t.Fatal("post-training queries never touched the replica cache")
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Fatalf("replica cache hit rate %.2f on a zipfian stream, want > 0.5", rate)
	}
}

// slowReader is a LocalReader whose lookups block until released, to pin
// scoring workers down while the admission queue saturates.
type slowReader struct {
	dim     int
	release chan struct{}
}

func (r *slowReader) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	<-r.release
	out := make(map[keys.Key]*embedding.Value, len(ks))
	for _, k := range ks {
		out[k] = embedding.NewValue(r.dim)
	}
	return out, nil
}

// TestOverloadBehavior saturates the admission queue and asserts the
// degradation contract: excess requests are rejected immediately with the
// typed, retryable overload error, nothing deadlocks, and once the queue
// drains every admitted request completes.
func TestOverloadBehavior(t *testing.T) {
	const dim = 4
	reader := &slowReader{dim: dim, release: make(chan struct{})}
	srv, err := serving.New(serving.Config{
		NodeID:   0,
		Topology: cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		Dim:      dim,
		Hidden:   []int{4},
		Local:    reader,
		Workers:  1,
		MaxQueue: 1,
		// One example per pass: the second queued request must wait, not
		// merge into the first worker pass.
		CoalesceBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dense := make([]float32, (dim+1)*4+4+1)
	if err := srv.HandleServeConfig(cluster.ServeConfig{Dense: dense, Epoch: 0}); err != nil {
		t.Fatal(err)
	}

	req := cluster.PredictRequest{Counts: []uint32{1}, Keys: []keys.Key{1}}
	// Saturate from goroutines: admitted requests park on the blocked worker
	// (one busy, one queued), so the probes themselves must never run on the
	// test's main goroutine. Keep launching until a rejection is observed —
	// once the worker and queue slots are taken, every further request is
	// rejected immediately.
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.HandlePredict(req)
			if err == nil {
				admitted.Add(1)
				return
			}
			var oe *cluster.OverloadError
			if !errors.As(err, &oe) {
				t.Errorf("want *cluster.OverloadError, got %T: %v", err, err)
			}
			if !cluster.Retryable(err) {
				t.Error("overload rejection must be retryable")
			}
			rejected.Add(1)
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for rejected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		launch()
		time.Sleep(2 * time.Millisecond)
	}

	// Release the reader: every admitted request must complete — rejecting
	// the overflow is exactly what guarantees the admitted work drains.
	close(reader.release)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("admitted requests deadlocked")
	}
	if admitted.Load() == 0 {
		t.Fatal("no request was admitted")
	}
	st := srv.ServingStats()
	if st.Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	if st.Requests != admitted.Load() {
		t.Fatalf("served %d, admitted %d", st.Requests, admitted.Load())
	}
}

// TestTrainingThroughputUnderServingLoad guards the isolation promise: a
// training run with serving traffic hammering the same shards must not be
// materially slower than the no-serving baseline. Remote-mode stage times
// are wall-derived and CI machines are noisy, so the bound is deliberately
// lenient — the 10%-budget intent of the check plus generous absolute slack;
// it fails on a genuine stall (serving blocking the push path), not on
// scheduler noise.
func TestTrainingThroughputUnderServingLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	spec := model.TinySpec()
	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}

	run := func(serve, load bool) time.Duration {
		t.Helper()
		_, addrs := startServingShards(t, topo, spec, 5)
		tr, err := trainer.New(trainer.Config{
			Spec:         spec,
			Data:         data,
			Topology:     topo,
			BatchSize:    64,
			Batches:      20,
			MaxInFlight:  2,
			Seed:         5,
			RemoteShards: addrs,
			Serve:        serve,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		done := make(chan struct{})
		if load {
			qt := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
			defer qt.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				defer close(done)
				loadgen.Run(ctx, loadgen.Config{
					Transport:   qt,
					Nodes:       topo.Nodes,
					Data:        data,
					Seed:        31,
					Duration:    time.Minute, // cancelled when training ends
					Concurrency: 2,
					BatchSize:   8,
				})
			}()
		} else {
			close(done)
		}
		start := time.Now()
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		return elapsed
	}

	base := run(false, false)
	loaded := run(true, true)
	budget := base + base/10 + 2*time.Second
	if loaded > budget {
		t.Fatalf("training took %v under serving load, budget %v (baseline %v)", loaded, budget, base)
	}
}
