package serving_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/nn"
	"hps/internal/serving"
)

// mapLocal is a LocalReader over a fixed in-memory table.
type mapLocal map[keys.Key]*embedding.Value

func (m mapLocal) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	for _, k := range ks {
		if v, ok := m[k]; ok {
			out[k] = v
		}
	}
	return out, nil
}

// flakyPeer is a PeerReader that can be switched into a failing state, the
// in-test stand-in for a crashed shard.
type flakyPeer struct {
	vals map[keys.Key]*embedding.Value
	down bool
}

func (p *flakyPeer) Lookup(nodeID int, ks []keys.Key) (cluster.PullResult, int64, error) {
	if p.down {
		return nil, 0, errors.New("peer down")
	}
	out := make(cluster.PullResult, len(ks))
	for _, k := range ks {
		if v, ok := p.vals[k]; ok {
			out[k] = v
		}
	}
	return out, 0, nil
}

// TestDegradedServingSurvivesPeerOutage is the availability half of the
// crash-restart story: when a peer shard dies, this shard keeps answering
// Predict from the stale hot-key replica rows it already holds — the same
// score it would have served one push epoch ago — instead of failing the
// request, and counts the outage in ServingStats.Degraded.
func TestDegradedServingSurvivesPeerOutage(t *testing.T) {
	const dim = 4
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}

	// One key owned by each node.
	var localKey, remoteKey keys.Key
	haveLocal, haveRemote := false, false
	for k := keys.Key(1); !haveLocal || !haveRemote; k++ {
		switch topo.NodeOf(k) {
		case 0:
			if !haveLocal {
				localKey, haveLocal = k, true
			}
		case 1:
			if !haveRemote {
				remoteKey, haveRemote = k, true
			}
		}
	}
	val := func(fill float32) *embedding.Value {
		v := embedding.NewValue(dim)
		for i := range v.Weights {
			v.Weights[i] = fill
		}
		return v
	}
	peer := &flakyPeer{vals: map[keys.Key]*embedding.Value{remoteKey: val(0.5)}}

	srv, err := serving.New(serving.Config{
		NodeID:   0,
		Topology: topo,
		Dim:      dim,
		Hidden:   []int{8},
		Local:    mapLocal{localKey: val(0.25)},
		Peers:    peer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dense := nn.New(nn.Config{InputDim: dim, Hidden: []int{8}, Seed: 42})
	if err := srv.HandleServeConfig(cluster.ServeConfig{Dense: dense.FlattenParams(nil), Epoch: 1}); err != nil {
		t.Fatal(err)
	}

	req := cluster.PredictRequest{Keys: []keys.Key{localKey, remoteKey}, Counts: []uint32{2}}
	before, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatal(err)
	}

	// The peer dies and a push epoch passes, staling the replica row it left
	// behind. Serving must answer from that stale row anyway.
	peer.down = true
	srv.BumpEpoch()
	during, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatalf("predict during peer outage: %v", err)
	}
	if math.IsNaN(float64(during[0])) || during[0] <= 0 || during[0] >= 1 {
		t.Fatalf("degraded score %v is not a probability", during[0])
	}
	// Nothing moved but the epoch: the stale row holds the same weights, so
	// the degraded score is exactly the pre-outage score.
	if during[0] != before[0] {
		t.Fatalf("degraded score %v != pre-outage score %v (stale replica row not used)", during[0], before[0])
	}
	st := srv.ServingStats()
	if st.Degraded == 0 {
		t.Fatal("degraded peer fetch was not counted in ServingStats.Degraded")
	}

	// A remote key with no replica row scores as untrained while the peer is
	// down — the request still succeeds.
	var coldKey keys.Key
	for k := remoteKey + 1; ; k++ {
		if topo.NodeOf(k) == 1 {
			coldKey = k
			break
		}
	}
	cold, err := srv.HandlePredict(cluster.PredictRequest{Keys: []keys.Key{coldKey}, Counts: []uint32{1}})
	if err != nil {
		t.Fatalf("predict for uncached key during outage: %v", err)
	}
	if math.IsNaN(float64(cold[0])) {
		t.Fatal("uncached degraded score is NaN")
	}

	// The peer comes back: fetches succeed again and refresh the cache.
	peer.down = false
	peer.vals[remoteKey] = val(0.75)
	after, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] == during[0] {
		t.Fatal("recovered fetch did not refresh the stale replica row")
	}
}

// routedPeer is a PeerReader over several per-node tables with per-node
// failure injection — the in-test stand-in for a partially crashed cluster.
type routedPeer struct {
	vals map[int]map[keys.Key]*embedding.Value
	down map[int]bool
}

func (p *routedPeer) Lookup(nodeID int, ks []keys.Key) (cluster.PullResult, int64, error) {
	if p.down[nodeID] {
		return nil, 0, fmt.Errorf("shard %d down", nodeID)
	}
	out := make(cluster.PullResult, len(ks))
	for _, k := range ks {
		if v, ok := p.vals[nodeID][k]; ok {
			out[k] = v
		}
	}
	return out, 0, nil
}

// TestPredictFailsOverToBackup is the replicated upgrade of degraded serving:
// with R=2, a predict whose keys' primary is down re-reads them from the
// backup shard — fresh rows, counted as ServingStats.FailedOver, with the
// Degraded (stale-answer) counter untouched.
func TestPredictFailsOverToBackup(t *testing.T) {
	const dim = 4
	ring := cluster.NewRing([]int{0, 1, 2}, 8)
	ms := cluster.NewMembership(ring)
	topo := cluster.Topology{Nodes: 3, GPUsPerNode: 1, Members: ms, Replicas: 2}

	// A key primaried on shard 1 with its backup on shard 2, so shard 0 holds
	// no replica and must go over the network for it.
	var k keys.Key
	for c := keys.Key(1); ; c++ {
		if ring.Owner(c) == 1 && ring.Backup(c) == 2 {
			k = c
			break
		}
	}
	v := embedding.NewValue(dim)
	for i := range v.Weights {
		v.Weights[i] = 0.4
	}
	peers := &routedPeer{
		vals: map[int]map[keys.Key]*embedding.Value{2: {k: v}},
		down: map[int]bool{1: true}, // the primary is dead; the backup is fine
	}
	srv, err := serving.New(serving.Config{
		NodeID:   0,
		Topology: topo,
		Dim:      dim,
		Hidden:   []int{8},
		Local:    mapLocal{},
		Peers:    peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dense := nn.New(nn.Config{InputDim: dim, Hidden: []int{8}, Seed: 42})
	if err := srv.HandleServeConfig(cluster.ServeConfig{Dense: dense.FlattenParams(nil), Epoch: 1}); err != nil {
		t.Fatal(err)
	}

	req := cluster.PredictRequest{Keys: []keys.Key{k}, Counts: []uint32{1}}
	got, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatalf("predict with primary down: %v", err)
	}
	// The score must be the backup's fresh row, not an untrained zero-input
	// score: compare against the same dense tower over the real embedding.
	peers.down[1] = false
	want, err := srv.HandlePredict(req) // cache now holds the failover row anyway
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("failover score %v != healthy score %v", got[0], want[0])
	}
	st := srv.ServingStats()
	if st.FailedOver == 0 {
		t.Fatal("backup failover was not counted in ServingStats.FailedOver")
	}
	if st.Degraded != 0 {
		t.Fatalf("failover was miscounted as %d degraded (stale) answers", st.Degraded)
	}

	// Both replicas down: the failover fails too and the request degrades to
	// the cached row.
	peers.down[1], peers.down[2] = true, true
	srv.BumpEpoch() // stale the cached row so gather must miss and re-fetch
	during, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatalf("predict with both replicas down: %v", err)
	}
	if during[0] != want[0] {
		t.Fatalf("degraded score %v != stale-cached score %v", during[0], want[0])
	}
	if st := srv.ServingStats(); st.Degraded == 0 {
		t.Fatal("double failure was not counted in ServingStats.Degraded")
	}
}

// TestWarmedCacheImprovesPostFailoverHitRate is the cache-warming half of the
// failover story: a shard that prewarms its hot-key LFU with the top rows of
// a recovered shard keeps serving those keys' real scores when their owner
// dies, where a cold shard scores them as untrained. The warmed server's
// post-failover hit rate must beat the cold server's.
func TestWarmedCacheImprovesPostFailoverHitRate(t *testing.T) {
	const dim = 4
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}

	// A handful of hot keys, all owned by the peer shard.
	var hot []keys.Key
	rows := make(map[keys.Key]*embedding.Value)
	peerVals := make(map[keys.Key]*embedding.Value)
	for k := keys.Key(1); len(hot) < 5; k++ {
		if topo.NodeOf(k) != 1 {
			continue
		}
		v := embedding.NewValue(dim)
		for i := range v.Weights {
			v.Weights[i] = 0.1 * float32(len(hot)+1)
		}
		v.Freq = uint32(100 - len(hot))
		hot = append(hot, k)
		rows[k] = v
		peerVals[k] = v
	}
	req := cluster.PredictRequest{Keys: hot, Counts: []uint32{uint32(len(hot))}}

	newServer := func(peer *flakyPeer) *serving.Server {
		srv, err := serving.New(serving.Config{
			NodeID: 0, Topology: topo, Dim: dim, Hidden: []int{8},
			Local: mapLocal{}, Peers: peer,
		})
		if err != nil {
			t.Fatal(err)
		}
		dense := nn.New(nn.Config{InputDim: dim, Hidden: []int{8}, Seed: 42})
		if err := srv.HandleServeConfig(cluster.ServeConfig{Dense: dense.FlattenParams(nil), Epoch: 1}); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	// The healthy baseline: what the scores should be while the peer is up.
	healthy := newServer(&flakyPeer{vals: peerVals})
	defer healthy.Close()
	want, err := healthy.HandlePredict(req)
	if err != nil {
		t.Fatal(err)
	}

	// The peer is down from the very first request for both servers under
	// test — a shard that crashed before this (restarted) server saw traffic.
	cold := newServer(&flakyPeer{vals: peerVals, down: true})
	defer cold.Close()
	warmed := newServer(&flakyPeer{vals: peerVals, down: true})
	defer warmed.Close()
	if n := warmed.Warm(rows); n != len(rows) {
		t.Fatalf("Warm installed %d of %d rows", n, len(rows))
	}

	gotWarm, err := warmed.HandlePredict(req)
	if err != nil {
		t.Fatalf("warmed predict during outage: %v", err)
	}
	gotCold, err := cold.HandlePredict(req)
	if err != nil {
		t.Fatalf("cold predict during outage: %v", err)
	}
	if gotWarm[0] != want[0] {
		t.Fatalf("warmed score %v != healthy score %v", gotWarm[0], want[0])
	}
	if gotCold[0] == want[0] {
		t.Fatal("cold score matched the healthy score; outage not exercised")
	}
	ws, cs := warmed.ServingStats(), cold.ServingStats()
	if ws.CacheHits < int64(len(hot)) {
		t.Fatalf("warmed cache hits = %d, want >= %d", ws.CacheHits, len(hot))
	}
	if cs.CacheHits != 0 {
		t.Fatalf("cold cache hits = %d, want 0", cs.CacheHits)
	}
	warmRate := float64(ws.CacheHits) / float64(ws.CacheHits+ws.CacheMisses)
	coldRate := float64(cs.CacheHits) / float64(cs.CacheHits+cs.CacheMisses)
	if warmRate <= coldRate {
		t.Fatalf("post-failover hit rate: warmed %.2f <= cold %.2f", warmRate, coldRate)
	}
	if cs.Degraded == 0 {
		t.Fatal("cold server's failed peer fetch was not counted as degraded")
	}
}
