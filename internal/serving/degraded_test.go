package serving_test

import (
	"errors"
	"math"
	"testing"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/nn"
	"hps/internal/serving"
)

// mapLocal is a LocalReader over a fixed in-memory table.
type mapLocal map[keys.Key]*embedding.Value

func (m mapLocal) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	for _, k := range ks {
		if v, ok := m[k]; ok {
			out[k] = v
		}
	}
	return out, nil
}

// flakyPeer is a PeerReader that can be switched into a failing state, the
// in-test stand-in for a crashed shard.
type flakyPeer struct {
	vals map[keys.Key]*embedding.Value
	down bool
}

func (p *flakyPeer) Lookup(nodeID int, ks []keys.Key) (cluster.PullResult, int64, error) {
	if p.down {
		return nil, 0, errors.New("peer down")
	}
	out := make(cluster.PullResult, len(ks))
	for _, k := range ks {
		if v, ok := p.vals[k]; ok {
			out[k] = v
		}
	}
	return out, 0, nil
}

// TestDegradedServingSurvivesPeerOutage is the availability half of the
// crash-restart story: when a peer shard dies, this shard keeps answering
// Predict from the stale hot-key replica rows it already holds — the same
// score it would have served one push epoch ago — instead of failing the
// request, and counts the outage in ServingStats.Degraded.
func TestDegradedServingSurvivesPeerOutage(t *testing.T) {
	const dim = 4
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}

	// One key owned by each node.
	var localKey, remoteKey keys.Key
	haveLocal, haveRemote := false, false
	for k := keys.Key(1); !haveLocal || !haveRemote; k++ {
		switch topo.NodeOf(k) {
		case 0:
			if !haveLocal {
				localKey, haveLocal = k, true
			}
		case 1:
			if !haveRemote {
				remoteKey, haveRemote = k, true
			}
		}
	}
	val := func(fill float32) *embedding.Value {
		v := embedding.NewValue(dim)
		for i := range v.Weights {
			v.Weights[i] = fill
		}
		return v
	}
	peer := &flakyPeer{vals: map[keys.Key]*embedding.Value{remoteKey: val(0.5)}}

	srv, err := serving.New(serving.Config{
		NodeID:   0,
		Topology: topo,
		Dim:      dim,
		Hidden:   []int{8},
		Local:    mapLocal{localKey: val(0.25)},
		Peers:    peer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dense := nn.New(nn.Config{InputDim: dim, Hidden: []int{8}, Seed: 42})
	if err := srv.HandleServeConfig(cluster.ServeConfig{Dense: dense.FlattenParams(nil), Epoch: 1}); err != nil {
		t.Fatal(err)
	}

	req := cluster.PredictRequest{Keys: []keys.Key{localKey, remoteKey}, Counts: []uint32{2}}
	before, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatal(err)
	}

	// The peer dies and a push epoch passes, staling the replica row it left
	// behind. Serving must answer from that stale row anyway.
	peer.down = true
	srv.BumpEpoch()
	during, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatalf("predict during peer outage: %v", err)
	}
	if math.IsNaN(float64(during[0])) || during[0] <= 0 || during[0] >= 1 {
		t.Fatalf("degraded score %v is not a probability", during[0])
	}
	// Nothing moved but the epoch: the stale row holds the same weights, so
	// the degraded score is exactly the pre-outage score.
	if during[0] != before[0] {
		t.Fatalf("degraded score %v != pre-outage score %v (stale replica row not used)", during[0], before[0])
	}
	st := srv.ServingStats()
	if st.Degraded == 0 {
		t.Fatal("degraded peer fetch was not counted in ServingStats.Degraded")
	}

	// A remote key with no replica row scores as untrained while the peer is
	// down — the request still succeeds.
	var coldKey keys.Key
	for k := remoteKey + 1; ; k++ {
		if topo.NodeOf(k) == 1 {
			coldKey = k
			break
		}
	}
	cold, err := srv.HandlePredict(cluster.PredictRequest{Keys: []keys.Key{coldKey}, Counts: []uint32{1}})
	if err != nil {
		t.Fatalf("predict for uncached key during outage: %v", err)
	}
	if math.IsNaN(float64(cold[0])) {
		t.Fatal("uncached degraded score is NaN")
	}

	// The peer comes back: fetches succeed again and refresh the cache.
	peer.down = false
	peer.vals[remoteKey] = val(0.75)
	after, err := srv.HandlePredict(req)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] == during[0] {
		t.Fatal("recovered fetch did not refresh the stale replica row")
	}
}
