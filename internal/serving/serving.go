// Package serving implements the online-inference tier of a shard server:
// the read path that answers Predict RPCs against the live, still-training
// parameters.
//
// The paper's models exist to serve CTR predictions; training is only half
// the system. This package is the other half, colocated with the MEM-PS so
// a shard serves the embeddings it owns without a network hop:
//
//   - Embeddings owned by this shard are read straight from the local
//     MEM-PS (cache, dump buffer, or SSD-PS — LookupAll's read path).
//   - Embeddings owned by peer shards go through a read-through hot-key
//     replica cache (an LFU over the zipfian-hot heads of the key
//     distribution), falling back to the peers' lookup RPC on a miss.
//   - The dense tower runs on a local replica of the parameters, which the
//     driver republishes after every push epoch (see ServeConfig).
//
// Freshness is bounded by push-epoch invalidation: every cached replica row
// is stamped with the local push epoch at fill time and ignored as soon as
// the shard applies the next training push. Training pushes arrive once per
// batch, so a served score is never computed against embeddings more than
// one push epoch behind the authoritative copies — the same bound the dense
// replica obeys.
//
// Serving must degrade before it can stall training: requests pass an
// admission queue of fixed depth, and a request that finds the queue full is
// rejected immediately with a typed, retryable *cluster.OverloadError
// instead of waiting. Workers drain the queue greedily, coalescing queued
// requests into one scoring pass so concurrent callers share a single
// cross-shard fetch round.
package serving

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hps/internal/cache"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/nn"
)

// LocalReader reads this shard's own embeddings without materializing
// missing keys (implemented by memps.MemPS.LookupAll).
type LocalReader interface {
	LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error)
}

// PeerReader reads embeddings from a peer shard by node id (implemented by
// cluster.TCPTransport.Lookup and cluster.LocalTransport.Lookup).
type PeerReader interface {
	Lookup(nodeID int, ks []keys.Key) (cluster.PullResult, int64, error)
}

// Config configures a serving Server.
type Config struct {
	// NodeID is this shard's node id (names the node in overload errors and
	// decides which keys are local).
	NodeID int
	// Topology routes every feature key to its owning shard.
	Topology cluster.Topology
	// Dim is the embedding dimension (the dense tower's input width).
	Dim int
	// Hidden is the dense tower's hidden-layer widths (model.Spec.HiddenLayers).
	Hidden []int
	// Local reads this shard's own embeddings.
	Local LocalReader
	// Peers reads remote-owned embeddings on replica-cache misses. Nil means
	// the server dials peers itself from the addresses in the first
	// ServeConfig (the usual multiprocess arrangement); tests inject a
	// LocalTransport here.
	Peers PeerReader
	// HotKeyEntries is the replica-cache capacity in keys (default 4096).
	HotKeyEntries int
	// MaxQueue is the admission-queue depth in requests (default 64).
	// Requests beyond it are rejected with *cluster.OverloadError.
	MaxQueue int
	// Workers is the number of scoring workers draining the queue
	// (default 2).
	Workers int
	// CoalesceBatch caps how many examples one worker merges into a single
	// scoring pass (default 512).
	CoalesceBatch int
}

// hotRow is one replica-cache entry: a cloned embedding vector (nil when the
// owner reported the key absent — a negative entry, so untrained hot keys
// don't re-fetch every request) stamped with the push epoch it was read at.
type hotRow struct {
	weights []float32
	epoch   uint64
}

// result carries one scored request back to its waiting caller.
type result struct {
	scores []float32
	err    error
}

// job is one admitted request waiting for a scoring worker.
type job struct {
	req  cluster.PredictRequest
	done chan result
}

// Server answers Predict requests for one shard. It implements
// cluster.PredictHandler, cluster.ServeConfigHandler and
// cluster.ServingStatsHandler; wrap it with Handler to graft it onto a
// MEM-PS behind one TCP server. Safe for concurrent use.
type Server struct {
	cfg   Config
	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	// pushEpoch counts training pushes applied by the colocated MEM-PS
	// (bumped by Handler); it is the freshness clock for the replica cache.
	pushEpoch atomic.Uint64

	// netMu guards the dense replica: SetParams writes under the write lock,
	// scoring reads under RLock, so a republish never tears a forward pass.
	netMu      sync.RWMutex
	net        *nn.Network
	denseEpoch uint64
	// trainedEpoch is the trainer's trained-batch watermark from the latest
	// ServeConfig; the gap to this shard's own applied-push clock is the
	// push-epoch lag reported in ServingStats (the async-push freshness
	// metric).
	trainedEpoch uint64

	// peerMu guards lazy peer-transport creation from the first ServeConfig.
	peerMu sync.Mutex
	peers  PeerReader
	owned  *cluster.TCPTransport // set when the server dialed peers itself

	// hotMu guards the replica cache (cache.LFU is not concurrency-safe).
	hotMu sync.Mutex
	hot   *cache.LFU[hotRow]

	// Counters behind ServingStats.
	requests, examples, rejected, coalesced atomic.Int64
	localKeys, cacheHits, cacheMisses       atomic.Int64
	peerFetches, peerKeys, degraded         atomic.Int64
	failedOver                              atomic.Int64
	stalenessMax                            atomic.Uint64
}

// New starts a serving server: its workers are running and its queue is
// accepting, but predicts fail until the first ServeConfig delivers the
// dense parameters. Close releases the workers.
func New(cfg Config) (*Server, error) {
	if cfg.Local == nil {
		return nil, errors.New("serving: nil local reader")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("serving: embedding dimension %d", cfg.Dim)
	}
	if cfg.HotKeyEntries <= 0 {
		cfg.HotKeyEntries = 4096
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CoalesceBatch <= 0 {
		cfg.CoalesceBatch = 512
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.MaxQueue),
		stop:  make(chan struct{}),
		peers: cfg.Peers,
		hot:   cache.NewLFU[hotRow](cfg.HotKeyEntries, nil),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the scoring workers and fails whatever is still queued. The
// peer transport is closed only if the server dialed it itself.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.wg.Wait()
		for {
			select {
			case j := <-s.queue:
				j.done <- result{err: errors.New("serving: server closed")}
			default:
				if s.owned != nil {
					s.owned.Close()
				}
				return
			}
		}
	})
}

// BumpEpoch advances the push-epoch freshness clock, invalidating every
// replica-cache entry filled before it. Handler calls it after each
// successfully applied training push.
func (s *Server) BumpEpoch() { s.pushEpoch.Add(1) }

// HandleServeConfig implements cluster.ServeConfigHandler: the first call
// carries peer addresses (dialed lazily) and the initial dense parameters;
// subsequent calls refresh just the dense replica after each push epoch.
func (s *Server) HandleServeConfig(cfg cluster.ServeConfig) error {
	if cfg.Addrs != nil {
		s.peerMu.Lock()
		if s.peers == nil {
			t := cluster.NewTCPTransport(cfg.Addrs, s.cfg.Dim)
			s.peers = t
			s.owned = t
		} else if st, ok := s.peers.(interface{ SetAddr(nodeID int, addr string) }); ok {
			// An injected shared transport (the replicated-shard wiring)
			// learns the address book instead of being replaced.
			for id, a := range cfg.Addrs {
				st.SetAddr(id, a)
			}
		}
		s.peerMu.Unlock()
	}
	if cfg.Dense != nil {
		s.netMu.Lock()
		defer s.netMu.Unlock()
		if s.net == nil {
			s.net = nn.New(nn.Config{InputDim: s.cfg.Dim, Hidden: s.cfg.Hidden})
		}
		if err := s.net.SetParams(cfg.Dense); err != nil {
			return fmt.Errorf("serving: dense replica: %w", err)
		}
		if cfg.Epoch > s.denseEpoch {
			s.denseEpoch = cfg.Epoch
		}
		if cfg.TrainedEpoch > s.trainedEpoch {
			s.trainedEpoch = cfg.TrainedEpoch
		}
	}
	return nil
}

// HandlePredict implements cluster.PredictHandler: it admits the request
// into the scoring queue and waits for its scores. A full queue rejects
// immediately with a typed, retryable *cluster.OverloadError — shedding
// load to the caller is the mechanism that keeps serving from stalling the
// colocated training push path.
func (s *Server) HandlePredict(req cluster.PredictRequest) ([]float32, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	j := &job{req: req, done: make(chan result, 1)}
	select {
	case s.queue <- j:
	default:
		s.rejected.Add(1)
		return nil, &cluster.OverloadError{Node: s.cfg.NodeID, Op: "predict"}
	}
	r := <-j.done
	return r.scores, r.err
}

// ServingStats implements cluster.ServingStatsHandler.
func (s *Server) ServingStats() cluster.ServingStats {
	s.netMu.RLock()
	denseEpoch := s.denseEpoch
	trainedEpoch := s.trainedEpoch
	s.netMu.RUnlock()
	var pushLag uint64
	if pe := s.pushEpoch.Load(); trainedEpoch > pe {
		pushLag = trainedEpoch - pe
	}
	return cluster.ServingStats{
		Requests:     s.requests.Load(),
		Examples:     s.examples.Load(),
		Rejected:     s.rejected.Load(),
		Coalesced:    s.coalesced.Load(),
		LocalKeys:    s.localKeys.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		PeerFetches:  s.peerFetches.Load(),
		PeerKeys:     s.peerKeys.Load(),
		Degraded:     s.degraded.Load(),
		FailedOver:   s.failedOver.Load(),
		PushEpoch:    s.pushEpoch.Load(),
		DenseEpoch:   denseEpoch,
		StalenessMax: s.stalenessMax.Load(),
		PushEpochLag: pushLag,
	}
}

// worker drains the admission queue. After blocking for one job it greedily
// absorbs whatever else is already queued (up to CoalesceBatch examples), so
// a burst of small requests shares one embedding-fetch round and one pass
// over the dense replica instead of paying the fetch per request.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			batch := []*job{j}
			n := j.req.Examples()
		drain:
			for n < s.cfg.CoalesceBatch {
				select {
				case j2 := <-s.queue:
					batch = append(batch, j2)
					n += j2.req.Examples()
				default:
					break drain
				}
			}
			if len(batch) > 1 {
				s.coalesced.Add(int64(len(batch)))
			}
			s.score(batch)
		}
	}
}

// score runs one merged scoring pass: fetch every distinct embedding the
// batch references (local shard, replica cache, then peers), pool per
// example, and run the dense replica. Every job gets its reply, error or
// scores.
func (s *Server) score(batch []*job) {
	var total int
	for _, j := range batch {
		total += len(j.req.Keys)
	}
	all := make([]keys.Key, 0, total)
	for _, j := range batch {
		all = append(all, j.req.Keys...)
	}
	all = keys.Dedup(all)

	vecs, err := s.gather(all)
	if err != nil {
		for _, j := range batch {
			j.done <- result{err: err}
		}
		return
	}

	s.netMu.RLock()
	net := s.net
	denseEpoch := s.denseEpoch
	s.netMu.RUnlock()
	if net == nil {
		for _, j := range batch {
			j.done <- result{err: errors.New("serving: no dense parameters published yet")}
		}
		return
	}
	// The replica may lag the authoritative parameters by the pushes applied
	// since the driver last republished; record the worst lag observed.
	if e := s.pushEpoch.Load(); e > denseEpoch {
		lag := e - denseEpoch
		for {
			cur := s.stalenessMax.Load()
			if lag <= cur || s.stalenessMax.CompareAndSwap(cur, lag) {
				break
			}
		}
	}

	// Forward only reads the network (SetParams holds the write lock), so
	// scoring the whole merged batch under one RLock keeps a mid-batch
	// republish from mixing two epochs within a single request.
	s.netMu.RLock()
	acts := net.NewActivations()
	pooled := make([][]float32, 0, 64)
	for _, j := range batch {
		scores := make([]float32, len(j.req.Counts))
		off := 0
		for i, c := range j.req.Counts {
			pooled = pooled[:0]
			for _, k := range j.req.Keys[off : off+int(c)] {
				if v := vecs[k]; v != nil {
					pooled = append(pooled, v)
				}
			}
			off += int(c)
			nn.PoolSum(acts.Input(), pooled)
			scores[i] = net.Forward(acts)
		}
		s.requests.Add(1)
		s.examples.Add(int64(len(j.req.Counts)))
		j.done <- result{scores: scores}
	}
	s.netMu.RUnlock()
}

// gather resolves every key to its current embedding vector (nil for keys no
// shard has trained yet): local keys from the shard's own MEM-PS, remote
// keys from the replica cache, and cache misses from the owning peers —
// filling the cache on the way back.
func (s *Server) gather(all []keys.Key) (map[keys.Key][]float32, error) {
	vecs := make(map[keys.Key][]float32, len(all))
	var local, remote []keys.Key
	for _, k := range all {
		// HoldsKey, not NodeOf: under replication a backup stores live rows
		// for keys whose primary is another node, and serves them locally —
		// the shard keeps answering for its replica ranges even while their
		// primary is down.
		if s.cfg.Topology.HoldsKey(k, s.cfg.NodeID) {
			local = append(local, k)
		} else {
			remote = append(remote, k)
		}
	}
	if len(local) > 0 {
		vals, err := s.cfg.Local.LookupAll(local)
		if err != nil {
			return nil, fmt.Errorf("serving: local lookup: %w", err)
		}
		s.localKeys.Add(int64(len(local)))
		for k, v := range vals {
			if v != nil {
				vecs[k] = v.Weights
			}
		}
	}
	if len(remote) == 0 {
		return vecs, nil
	}

	// Replica cache: entries are valid only for the push epoch they were
	// filled in — one training push anywhere invalidates the lot, which is
	// what bounds staleness to a single push epoch.
	epoch := s.pushEpoch.Load()
	var miss []keys.Key
	s.hotMu.Lock()
	for _, k := range remote {
		if row, ok := s.hot.Get(uint64(k)); ok && row.epoch == epoch {
			if row.weights != nil {
				vecs[k] = row.weights
			}
			continue // nil weights: a fresh negative entry, key untrained
		}
		miss = append(miss, k)
	}
	s.hotMu.Unlock()
	s.cacheHits.Add(int64(len(remote) - len(miss)))
	s.cacheMisses.Add(int64(len(miss)))
	if len(miss) == 0 {
		return vecs, nil
	}

	s.peerMu.Lock()
	peers := s.peers
	s.peerMu.Unlock()
	if peers == nil {
		return nil, errors.New("serving: no peer transport configured yet")
	}
	byOwner := s.cfg.Topology.SplitByNode(miss)
	for owner, ks := range byOwner {
		if len(ks) == 0 {
			continue
		}
		vals, _, err := peers.Lookup(owner, ks)
		if err != nil && s.cfg.Topology.Replicas > 1 {
			// Replicated deployment: the primary is down but every key has a
			// live backup. Re-split this owner's keys by backup shard and
			// read there — the rows are fresh (the backup applies the same
			// replicated deltas), so this is a failover, not a degradation.
			if bvals, berr := s.backupLookup(peers, ks); berr == nil {
				s.failedOver.Add(1)
				vals, err = bvals, nil
			}
		}
		if err != nil {
			// Degraded mode: the owner is down (crashed, restarting, or
			// unreachable) and no backup could answer. Serving stays up on
			// whatever replica rows the hot-key cache still holds — stale by
			// one or more push epochs, but a bounded-staleness score beats an
			// outage (the driver is meanwhile restarting the shard). Keys
			// with no replica row at all score as untrained, exactly like a
			// never-pushed key.
			s.degraded.Add(1)
			s.hotMu.Lock()
			for _, k := range ks {
				if row, ok := s.hot.Get(uint64(k)); ok && row.weights != nil {
					vecs[k] = row.weights
				}
			}
			s.hotMu.Unlock()
			continue
		}
		s.peerFetches.Add(1)
		s.peerKeys.Add(int64(len(ks)))
		s.hotMu.Lock()
		for _, k := range ks {
			var w []float32
			if v := vals[k]; v != nil {
				w = v.Weights
				vecs[k] = w
			}
			// Absent keys are cached too (w == nil): a hot untrained key must
			// not re-fetch on every request.
			s.hot.Put(uint64(k), hotRow{weights: w, epoch: epoch})
		}
		s.hotMu.Unlock()
	}
	return vecs, nil
}

// backupLookup re-reads ks — all owned by one unreachable primary — from each
// key's backup shard. It fails whole if any key has no backup or any backup
// read fails; the caller then falls back to the stale-cache degraded path.
func (s *Server) backupLookup(peers PeerReader, ks []keys.Key) (cluster.PullResult, error) {
	byBackup := make(map[int][]keys.Key)
	for _, k := range ks {
		b := s.cfg.Topology.BackupOf(k)
		if b < 0 || b == s.cfg.NodeID {
			// No backup, or the backup is this shard — but then HoldsKey
			// would have served the key locally, so the replica set is out of
			// step with the membership view; don't loop the lookup onto
			// ourselves.
			return nil, fmt.Errorf("serving: key %d has no reachable backup", k)
		}
		byBackup[b] = append(byBackup[b], k)
	}
	out := make(cluster.PullResult, len(ks))
	for b, part := range byBackup {
		vals, _, err := peers.Lookup(b, part)
		if err != nil {
			return nil, fmt.Errorf("serving: backup shard %d: %w", b, err)
		}
		for k, v := range vals {
			out[k] = v
		}
	}
	return out, nil
}

// Warm pre-fills the hot-key replica cache: every non-nil row is installed at
// the current push epoch, seeded with its training-observed frequency so warm
// rows out-compete cold fills for LFU residency. A restarted or newly promoted
// shard warms its cache from the top-K rows of the recovered MEM-PS shard
// (see memps.MemPS.HotRows); until organic traffic refills the cache, those
// rows are what the degraded path serves if another shard dies first. Rows
// are cloned, so callers may pass live MEM-PS values. Returns the number of
// rows installed.
func (s *Server) Warm(rows map[keys.Key]*embedding.Value) int {
	epoch := s.pushEpoch.Load()
	n := 0
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	for k, v := range rows {
		if v == nil || len(v.Weights) == 0 {
			continue
		}
		w := make([]float32, len(v.Weights))
		copy(w, v.Weights)
		s.hot.PutWithFreq(uint64(k), hotRow{weights: w, epoch: epoch}, int64(v.Freq))
		n++
	}
	return n
}
