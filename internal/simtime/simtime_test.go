package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAddTotal(t *testing.T) {
	c := NewClock()
	c.Add(ResourceGPU, 2*time.Second)
	c.Add(ResourceGPU, 3*time.Second)
	c.Add(ResourceSSD, time.Second)
	if got := c.Total(ResourceGPU); got != 5*time.Second {
		t.Fatalf("gpu total = %v, want 5s", got)
	}
	if got := c.Total(ResourceSSD); got != time.Second {
		t.Fatalf("ssd total = %v, want 1s", got)
	}
	if got := c.Total(ResourceCPU); got != 0 {
		t.Fatalf("cpu total = %v, want 0", got)
	}
}

func TestClockIgnoresNegative(t *testing.T) {
	c := NewClock()
	c.Add(ResourceGPU, -time.Second)
	if got := c.Total(ResourceGPU); got != 0 {
		t.Fatalf("negative add should be ignored, got %v", got)
	}
	c.AddSpan("train", -time.Second)
	if got := c.Span("train"); got != 0 {
		t.Fatalf("negative span add should be ignored, got %v", got)
	}
}

func TestClockSpans(t *testing.T) {
	c := NewClock()
	c.AddSpan("pull", 100*time.Millisecond)
	c.AddSpan("pull", 200*time.Millisecond)
	c.AddSpan("train", time.Second)
	if got := c.Span("pull"); got != 300*time.Millisecond {
		t.Fatalf("pull span = %v", got)
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	const workers = 16
	const perWorker = 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Add(ResourceNetwork, time.Microsecond)
				c.AddSpan("s", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Total(ResourceNetwork); got != want {
		t.Fatalf("concurrent total = %v, want %v", got, want)
	}
	if got := c.Span("s"); got != want {
		t.Fatalf("concurrent span = %v, want %v", got, want)
	}
}

func TestClockMergeAndReset(t *testing.T) {
	a := NewClock()
	b := NewClock()
	a.Add(ResourceGPU, time.Second)
	b.Add(ResourceGPU, 2*time.Second)
	b.Add(ResourceSSD, time.Second)
	b.AddSpan("x", time.Second)
	a.Merge(b)
	if got := a.Total(ResourceGPU); got != 3*time.Second {
		t.Fatalf("merged gpu = %v", got)
	}
	if got := a.Total(ResourceSSD); got != time.Second {
		t.Fatalf("merged ssd = %v", got)
	}
	if got := a.Span("x"); got != time.Second {
		t.Fatalf("merged span = %v", got)
	}
	a.Reset()
	if got := a.Total(ResourceGPU); got != 0 {
		t.Fatalf("reset failed, got %v", got)
	}
}

func TestNilClockSafe(t *testing.T) {
	var c *Clock
	c.Add(ResourceGPU, time.Second) // must not panic
	c.AddSpan("x", time.Second)
	if c.Total(ResourceGPU) != 0 || c.Span("x") != 0 {
		t.Fatal("nil clock should report zero")
	}
	if len(c.Snapshot()) != 0 || len(c.Spans()) != 0 {
		t.Fatal("nil clock snapshot should be empty")
	}
	_ = c.String()
}

func TestDurationConversion(t *testing.T) {
	if got := Duration(1.5); got != 1500*time.Millisecond {
		t.Fatalf("Duration(1.5) = %v", got)
	}
	if got := Duration(0); got != 0 {
		t.Fatalf("Duration(0) = %v", got)
	}
	if got := Duration(-3); got != 0 {
		t.Fatalf("Duration(-3) = %v", got)
	}
	if got := Duration(1e30); got <= 0 {
		t.Fatalf("huge duration should saturate positive, got %v", got)
	}
	if got := Seconds(2 * time.Second); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestDurationSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms) * time.Millisecond
		got := Duration(Seconds(d))
		diff := got - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := NewClock()
	c.Add(ResourceGPU, time.Second)
	snap := c.Snapshot()
	snap[ResourceGPU] = 0
	if got := c.Total(ResourceGPU); got != time.Second {
		t.Fatalf("snapshot must be a copy, clock changed to %v", got)
	}
}

func TestStringDeterministic(t *testing.T) {
	c := NewClock()
	c.Add(ResourceGPU, time.Second)
	c.Add(ResourceSSD, 2*time.Second)
	c.Add(ResourceCPU, 3*time.Second)
	s1 := c.String()
	s2 := c.String()
	if s1 != s2 {
		t.Fatalf("String not deterministic: %q vs %q", s1, s2)
	}
	if s1 == "" {
		t.Fatal("String should not be empty")
	}
}
