// Package simtime provides logical-time accounting for the simulated
// hardware resources used throughout the hierarchical parameter server.
//
// The paper's evaluation runs on hardware this reproduction does not have
// (GPUs, NVLink, RDMA NICs, NVMe arrays). Every module that would consume
// such a resource instead reports the modelled duration of the operation to
// a Clock. Experiments then read per-resource and per-stage totals from the
// Clock to regenerate the paper's time-distribution figures.
//
// A Clock is safe for concurrent use.
package simtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Resource identifies a hardware resource whose time is accounted separately.
type Resource string

// Resources tracked by the simulator. A Clock accepts arbitrary Resource
// values; these constants cover the hardware described in the paper's
// experimental setup (Section 7).
const (
	ResourceGPU     Resource = "gpu"     // GPU kernel execution (dense training, hash table ops)
	ResourceHBM     Resource = "hbm"     // GPU high-bandwidth memory traffic
	ResourceNVLink  Resource = "nvlink"  // intra-node GPU interconnect
	ResourcePCIe    Resource = "pcie"    // CPU<->GPU transfers
	ResourceRDMA    Resource = "rdma"    // inter-node GPU RDMA (RoCE)
	ResourceNetwork Resource = "network" // inter-node CPU Ethernet (MEM-PS remote pulls, MPI)
	ResourceSSD     Resource = "ssd"     // SSD reads/writes (SSD-PS)
	ResourceHDFS    Resource = "hdfs"    // training-data streaming
	ResourceCPU     Resource = "cpu"     // CPU compute (partitioning, MPI baseline training)
)

// Clock accumulates modelled time per resource and per named span.
//
// The zero value is not ready for use; construct with NewClock.
type Clock struct {
	mu    sync.Mutex
	res   map[Resource]time.Duration
	spans map[string]time.Duration
}

// NewClock returns an empty clock.
func NewClock() *Clock {
	return &Clock{
		res:   make(map[Resource]time.Duration),
		spans: make(map[string]time.Duration),
	}
}

// Add charges d against resource r. Negative durations are ignored.
func (c *Clock) Add(r Resource, d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.res[r] += d
	c.mu.Unlock()
}

// AddSpan charges d against the named span (e.g. a pipeline stage) in
// addition to any per-resource accounting done by the caller.
func (c *Clock) AddSpan(name string, d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.spans[name] += d
	c.mu.Unlock()
}

// Total returns the accumulated time for resource r.
func (c *Clock) Total(r Resource) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.res[r]
}

// Span returns the accumulated time for the named span.
func (c *Clock) Span(name string) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans[name]
}

// Snapshot returns a copy of all per-resource totals.
func (c *Clock) Snapshot() map[Resource]time.Duration {
	out := make(map[Resource]time.Duration)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for r, d := range c.res {
		out[r] = d
	}
	return out
}

// Spans returns a copy of all named-span totals.
func (c *Clock) Spans() map[string]time.Duration {
	out := make(map[string]time.Duration)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for n, d := range c.spans {
		out[n] = d
	}
	return out
}

// Reset clears all accumulated time.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.res = make(map[Resource]time.Duration)
	c.spans = make(map[string]time.Duration)
	c.mu.Unlock()
}

// Merge adds every total from other into c.
func (c *Clock) Merge(other *Clock) {
	if c == nil || other == nil {
		return
	}
	snap := other.Snapshot()
	spans := other.Spans()
	c.mu.Lock()
	defer c.mu.Unlock()
	for r, d := range snap {
		c.res[r] += d
	}
	for n, d := range spans {
		c.spans[n] += d
	}
}

// String renders the clock as a deterministic, human-readable summary.
func (c *Clock) String() string {
	if c == nil {
		return "<nil clock>"
	}
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for r := range snap {
		names = append(names, string(r))
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", n, snap[Resource(n)])
	}
	return b.String()
}

// Duration converts seconds (as produced by hardware cost models) to a
// time.Duration, saturating rather than overflowing for absurd inputs.
func Duration(seconds float64) time.Duration {
	if seconds <= 0 {
		return 0
	}
	const maxSeconds = float64(1<<62) / float64(time.Second)
	if seconds > maxSeconds {
		return time.Duration(1 << 62)
	}
	return time.Duration(seconds * float64(time.Second))
}

// Seconds converts a duration to float seconds.
func Seconds(d time.Duration) float64 {
	return float64(d) / float64(time.Second)
}
