// Package loadgen replays a zipfian CTR query stream against a live serving
// cluster and measures what a front-end would see: queries per second,
// latency percentiles, overload rejections, and — from the shards' own
// counters — replica-cache hit rate and serving staleness.
//
// The generator is closed-loop: each client goroutine draws a feature-key
// batch from its own dataset stream (the same zipfian distribution training
// reads, per the paper's access-distribution analysis), sends one Predict
// RPC, waits for the reply, and repeats. Clients round-robin across the
// shards, so most of each request's keys are owned by other shards — the
// traffic pattern the hot-key replica cache exists for. Overload rejections
// are counted, backed off, and retried rather than treated as failures:
// that is the admission-control contract working as designed.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/keys"
)

// Predictor issues predict RPCs and reads serving counters by shard node id
// (implemented by cluster.TCPTransport).
type Predictor interface {
	Predict(nodeID int, req cluster.PredictRequest) ([]float32, error)
	ServingStats(nodeID int) (cluster.ServingStats, error)
}

// Config configures one load-generation run.
type Config struct {
	// Transport issues the predict RPCs.
	Transport Predictor
	// Nodes is the number of shard servers (queries round-robin over them).
	Nodes int
	// Members, when set, replaces the fixed 0..Nodes-1 round-robin with the
	// membership view's current ring: clients re-read it every request, so a
	// shard joining or leaving mid-run repoints the query stream at the next
	// iteration. Shards that drop out between epochs surface as retried
	// errors, not a run failure.
	Members *cluster.Membership
	// Data shapes the query stream (feature count and zipfian skew); use the
	// training run's dataset config so the stream hits the same hot keys.
	Data dataset.Config
	// Seed seeds the per-client query streams.
	Seed int64
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Concurrency is the number of closed-loop clients (default 4).
	Concurrency int
	// BatchSize is the number of examples per predict request (default 16).
	BatchSize int
}

// Report is the outcome of a load-generation run: client-side latency and
// throughput plus the shard-side serving counters, aggregated over shards.
type Report struct {
	// Requests and Examples count successful predicts; Rejections counts
	// overload rejections (retried, not failures); Errors counts everything
	// else (the run continues, the count surfaces here).
	Requests, Examples, Rejections, Errors int64
	// Elapsed is the measured wall time of the run.
	Elapsed time.Duration
	// P50, P90, P99 are exact latency percentiles over every successful
	// request (no histogram binning — loadgen keeps all samples).
	P50, P90, P99 time.Duration
	// MinScore and MaxScore bound every returned score, a cheap sanity check
	// that serving returned probabilities rather than garbage.
	MinScore, MaxScore float64
	// Serving aggregates the shards' own counters (cache hit rate, peer
	// traffic, staleness) over every shard queried.
	Serving cluster.ServingStats
}

// QPS returns successful predict requests per second.
func (r Report) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ExamplesPerSec returns scored examples per second.
func (r Report) ExamplesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Examples) / r.Elapsed.Seconds()
}

// String formats the report as the serving section printed next to the
// training report's Fig-4 breakdown.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving load (%.1fs, %d requests, %d examples):\n",
		r.Elapsed.Seconds(), r.Requests, r.Examples)
	fmt.Fprintf(&b, "  qps                 %10.1f req/s (%.0f examples/s)\n", r.QPS(), r.ExamplesPerSec())
	fmt.Fprintf(&b, "  latency p50         %12v\n", r.P50.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p90         %12v\n", r.P90.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p99         %12v\n", r.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  overload rejections %10d (errors %d)\n", r.Rejections, r.Errors)
	fmt.Fprintf(&b, "  score range         [%.4f, %.4f]\n", r.MinScore, r.MaxScore)
	s := r.Serving
	fmt.Fprintf(&b, "  hot-key cache       %10.1f%% hit rate (%d hits, %d misses)\n",
		100*s.CacheHitRate(), s.CacheHits, s.CacheMisses)
	fmt.Fprintf(&b, "  peer fetches        %10d rpcs, %d keys; local keys %d\n",
		s.PeerFetches, s.PeerKeys, s.LocalKeys)
	fmt.Fprintf(&b, "  coalesced requests  %10d of %d served\n", s.Coalesced, s.Requests)
	fmt.Fprintf(&b, "  staleness           %10d push epoch(s) max (push epoch %d, dense epoch %d)\n",
		s.StalenessMax, s.PushEpoch, s.DenseEpoch)
	fmt.Fprintf(&b, "  push epoch lag      %10d batch(es) trained beyond applied pushes\n",
		s.PushEpochLag)
	return b.String()
}

// clientState accumulates one client's samples, merged after the run.
type clientState struct {
	latencies []time.Duration
	requests  int64
	examples  int64
	rejects   int64
	errors    int64
	minScore  float64
	maxScore  float64
}

// Run generates load until the duration elapses or ctx is cancelled, then
// collects the shards' serving counters and returns the report.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Transport == nil {
		return Report{}, fmt.Errorf("loadgen: nil transport")
	}
	if cfg.Nodes < 1 {
		return Report{}, fmt.Errorf("loadgen: %d nodes", cfg.Nodes)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if err := cfg.Data.Validate(); err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	states := make([]*clientState, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		st := &clientState{minScore: math.Inf(1), maxScore: math.Inf(-1)}
		states[i] = st
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			// Distinct seeds give distinct (identically distributed) query
			// streams; the offset keeps them disjoint from training streams.
			gen := dataset.NewGenerator(cfg.Data, cfg.Seed+int64(client)*7919+104729)
			rr := client
			targets := func() []int {
				if cfg.Members != nil {
					return cfg.Members.Ring().Members()
				}
				return nil
			}
			req := cluster.PredictRequest{
				Counts: make([]uint32, 0, cfg.BatchSize),
				Keys:   make([]keys.Key, 0, cfg.BatchSize*cfg.Data.NonZerosPerExample),
			}
			for ctx.Err() == nil {
				req.Counts = req.Counts[:0]
				req.Keys = req.Keys[:0]
				for e := 0; e < cfg.BatchSize; e++ {
					ex := gen.NextExample()
					req.Counts = append(req.Counts, uint32(len(ex.Features)))
					req.Keys = append(req.Keys, ex.Features...)
				}
				target := rr % cfg.Nodes
				if ms := targets(); len(ms) > 0 {
					target = ms[rr%len(ms)]
				}
				t0 := time.Now()
				scores, err := cfg.Transport.Predict(target, req)
				lat := time.Since(t0)
				rr++
				if err != nil {
					if cluster.Retryable(err) {
						// Admission control shed us: back off, then retry.
						// This is load shaping, not failure.
						st.rejects++
						select {
						case <-ctx.Done():
						case <-time.After(time.Millisecond):
						}
						continue
					}
					st.errors++
					continue
				}
				st.requests++
				st.examples += int64(len(scores))
				st.latencies = append(st.latencies, lat)
				for _, sc := range scores {
					st.minScore = min(st.minScore, float64(sc))
					st.maxScore = max(st.maxScore, float64(sc))
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Elapsed: elapsed, MinScore: math.Inf(1), MaxScore: math.Inf(-1)}
	var all []time.Duration
	for _, st := range states {
		rep.Requests += st.requests
		rep.Examples += st.examples
		rep.Rejections += st.rejects
		rep.Errors += st.errors
		rep.MinScore = min(rep.MinScore, st.minScore)
		rep.MaxScore = max(rep.MaxScore, st.maxScore)
		all = append(all, st.latencies...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		rep.P50 = percentile(all, 0.50)
		rep.P90 = percentile(all, 0.90)
		rep.P99 = percentile(all, 0.99)
	} else {
		rep.MinScore, rep.MaxScore = 0, 0
	}
	ids := make([]int, 0, cfg.Nodes)
	if cfg.Members != nil {
		ids = cfg.Members.Ring().Members()
	} else {
		for id := 0; id < cfg.Nodes; id++ {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		s, err := cfg.Transport.ServingStats(id)
		if err != nil {
			if cfg.Members != nil {
				// Membership churned under us (a shard left or died between
				// epochs); its counters are gone but the run's numbers stand.
				continue
			}
			return rep, fmt.Errorf("loadgen: serving stats from shard %d: %w", id, err)
		}
		rep.Serving = rep.Serving.Add(s)
	}
	return rep, nil
}

// percentile returns the exact p-quantile of sorted samples (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
