package loadgen

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/keys"
)

// TestPercentileNearestRank pins the nearest-rank percentile arithmetic,
// including the clamping edges: a single sample answers every percentile,
// and no p within (0, 1] can index past either end of the slice.
func TestPercentileNearestRank(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("percentile of no samples = %v, want 0", got)
	}

	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0.01, 0.50, 0.99, 1.0} {
		if got := percentile(one, p); got != one[0] {
			t.Fatalf("p%v of a single sample = %v, want %v", p, got, one[0])
		}
	}

	// 1..100ms: nearest rank of p over n=100 is sample ceil(p*100).
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := percentile(hundred, tc.p); got != tc.want {
			t.Fatalf("p%v over 1..100ms = %v, want %v", tc.p, got, tc.want)
		}
	}

	// Tiny sets: p99 of two samples must clamp to the last one, never index
	// out of range, and the percentiles must stay monotone.
	two := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	p50, p90, p99 := percentile(two, 0.50), percentile(two, 0.90), percentile(two, 0.99)
	if p99 != two[1] {
		t.Fatalf("p99 of two samples = %v, want the max %v", p99, two[1])
	}
	if p50 > p90 || p90 > p99 {
		t.Fatalf("percentiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
}

// recordingPredictor is a Predictor that scores everything 0.5 instantly and
// records the keys and targets of every request.
type recordingPredictor struct {
	mu       sync.Mutex
	keyCount map[keys.Key]int
	perNode  map[int]int64
	requests int64
	examples int64
	fail     error // returned by every Predict when set
}

func newRecordingPredictor() *recordingPredictor {
	return &recordingPredictor{keyCount: make(map[keys.Key]int), perNode: make(map[int]int64)}
}

func (p *recordingPredictor) Predict(nodeID int, req cluster.PredictRequest) ([]float32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail != nil {
		return nil, p.fail
	}
	for _, k := range req.Keys {
		p.keyCount[k]++
	}
	p.perNode[nodeID]++
	p.requests++
	p.examples += int64(len(req.Counts))
	scores := make([]float32, len(req.Counts))
	for i := range scores {
		scores[i] = 0.5
	}
	return scores, nil
}

func (p *recordingPredictor) ServingStats(nodeID int) (cluster.ServingStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return cluster.ServingStats{Requests: p.perNode[nodeID]}, nil
}

// TestRunZipfianShapeAndAccounting drives a short closed-loop run against a
// recording predictor and checks the two things the loadgen exists to
// produce: a query stream with the paper's zipfian key skew (the hot head
// the replica cache lives off), and a report whose client-side accounting
// matches what the predictor actually saw.
func TestRunZipfianShapeAndAccounting(t *testing.T) {
	pred := newRecordingPredictor()
	data := dataset.Config{NumFeatures: 3000, NonZerosPerExample: 15}
	rep, err := Run(context.Background(), Config{
		Transport:   pred,
		Nodes:       2,
		Data:        data,
		Seed:        42,
		Duration:    150 * time.Millisecond,
		Concurrency: 3,
		BatchSize:   8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Accounting: the report and the predictor must agree exactly — a
	// closed-loop client counts a request if and only if it got scores back.
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Requests != pred.requests {
		t.Fatalf("report counts %d requests, predictor served %d", rep.Requests, pred.requests)
	}
	if rep.Examples != pred.examples {
		t.Fatalf("report counts %d examples, predictor served %d", rep.Examples, pred.examples)
	}
	if rep.Errors != 0 || rep.Rejections != 0 {
		t.Fatalf("clean run reports %d errors, %d rejections", rep.Errors, rep.Rejections)
	}
	if rep.MinScore != 0.5 || rep.MaxScore != 0.5 {
		t.Fatalf("score range [%v, %v], predictor always returns 0.5", rep.MinScore, rep.MaxScore)
	}
	if rep.P50 <= 0 || rep.P50 > rep.P90 || rep.P90 > rep.P99 {
		t.Fatalf("latency percentiles implausible: p50=%v p90=%v p99=%v", rep.P50, rep.P90, rep.P99)
	}
	// Clients round-robin, so both shards must have been queried.
	if rep.Serving.Requests != pred.requests || len(pred.perNode) != 2 {
		t.Fatalf("aggregated serving stats %d over %d nodes, want %d over 2",
			rep.Serving.Requests, len(pred.perNode), pred.requests)
	}

	// Zipfian shape: rank the distinct keys by reference count; the hot head
	// must dominate. With the default skew (s=1.2) the top 1% of distinct
	// keys draw well over a quarter of all references — a uniform stream
	// would give them 1%.
	var total, distinct int
	counts := make([]int, 0, len(pred.keyCount))
	for _, c := range pred.keyCount {
		counts = append(counts, c)
		total += c
		distinct++
	}
	if distinct < 100 {
		t.Fatalf("only %d distinct keys referenced; stream too small to test shape", distinct)
	}
	// Selection: count references carried by the top 1% most-frequent keys.
	topN := distinct / 100
	if topN < 1 {
		topN = 1
	}
	for i := 0; i < topN; i++ { // partial selection sort of the head
		maxAt := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxAt] {
				maxAt = j
			}
		}
		counts[i], counts[maxAt] = counts[maxAt], counts[i]
	}
	var head int
	for i := 0; i < topN; i++ {
		head += counts[i]
	}
	share := float64(head) / float64(total)
	t.Logf("%d distinct keys, top 1%% (%d keys) draw %.1f%% of %d references", distinct, topN, 100*share, total)
	if share < 0.25 {
		t.Fatalf("top 1%% of keys draw only %.1f%% of references: stream is not zipfian", 100*share)
	}
}

// TestRunRetriesOverloadAndCountsErrors pins the closed-loop error contract:
// overload rejections are retried and counted as rejections (not errors or
// failures), while other errors are counted and survived.
func TestRunRetriesOverloadAndCountsErrors(t *testing.T) {
	data := dataset.Config{NumFeatures: 500, NonZerosPerExample: 5}

	overloaded := newRecordingPredictor()
	overloaded.fail = &cluster.OverloadError{Node: 0, Op: "predict"}
	rep, err := Run(context.Background(), Config{
		Transport: overloaded,
		Nodes:     1,
		Data:      data,
		Duration:  30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 || rep.Rejections == 0 || rep.Errors != 0 {
		t.Fatalf("all-overload run: requests=%d rejections=%d errors=%d, want 0/>0/0",
			rep.Requests, rep.Rejections, rep.Errors)
	}

	broken := newRecordingPredictor()
	broken.fail = errors.New("wire torn")
	rep, err = Run(context.Background(), Config{
		Transport: broken,
		Nodes:     1,
		Data:      data,
		Duration:  30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 || rep.Errors == 0 || rep.Rejections != 0 {
		t.Fatalf("all-error run: requests=%d rejections=%d errors=%d, want 0/0/>0",
			rep.Requests, rep.Rejections, rep.Errors)
	}
}
