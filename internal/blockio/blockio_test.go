package blockio

import (
	"bytes"
	"testing"
	"time"

	"hps/internal/hw"
	"hps/internal/simtime"
)

func testSSD() hw.SSD {
	return hw.SSD{
		ReadBandwidthBytesPerSec:  1 << 20,
		WriteBandwidthBytesPerSec: 1 << 20,
		ReadLatency:               time.Microsecond,
		WriteLatency:              time.Microsecond,
		BlockBytes:                4096,
		CapacityBytes:             1 << 30,
	}
}

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(t.TempDir(), testSSD(), simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	data := []byte("hello parameter server")
	if err := d.WriteFile("f1", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("f1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if !d.Exists("f1") || d.Exists("f2") {
		t.Fatal("Exists wrong")
	}
}

func TestInvalidNames(t *testing.T) {
	d := newTestDevice(t)
	for _, name := range []string{"", "a/b", "..", ".", `a\b`} {
		if err := d.WriteFile(name, []byte("x")); err == nil {
			t.Fatalf("name %q should be rejected", name)
		}
		if _, err := d.ReadFile(name); err == nil {
			t.Fatalf("read of %q should be rejected", name)
		}
		if err := d.Remove(name); err == nil {
			t.Fatalf("remove of %q should be rejected", name)
		}
	}
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice("", testSSD(), nil); err == nil {
		t.Fatal("empty dir should fail")
	}
}

func TestReadMissingFile(t *testing.T) {
	d := newTestDevice(t)
	if _, err := d.ReadFile("missing"); err == nil {
		t.Fatal("missing file should error")
	}
	if err := d.Remove("missing"); err == nil {
		t.Fatal("removing missing file should error")
	}
}

func TestStatsAndAmplification(t *testing.T) {
	d := newTestDevice(t)
	// 100 logical bytes occupy one 4096-byte block.
	if err := d.WriteFile("f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile("f"); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("ops = %+v", s)
	}
	if s.LogicalBytesWritten != 100 || s.PhysicalBytesWritten != 4096 {
		t.Fatalf("write bytes = %+v", s)
	}
	if s.WriteAmplification() != 40.96 {
		t.Fatalf("write amplification = %v", s.WriteAmplification())
	}
	if s.ReadAmplification() != 40.96 {
		t.Fatalf("read amplification = %v", s.ReadAmplification())
	}
	var empty Stats
	if empty.ReadAmplification() != 1 || empty.WriteAmplification() != 1 {
		t.Fatal("empty stats amplification should be 1")
	}
}

func TestReadPartialAmplification(t *testing.T) {
	d := newTestDevice(t)
	if err := d.WriteFile("f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	// Only 100 of the 1000 bytes are useful.
	if _, err := d.ReadPartial("f", 100); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.LogicalBytesRead != 100 {
		t.Fatalf("logical read = %d, want 100", s.LogicalBytesRead)
	}
	if s.PhysicalBytesRead != 4096 {
		t.Fatalf("physical read = %d", s.PhysicalBytesRead)
	}
	// Requesting more useful bytes than exist clamps.
	if _, err := d.ReadPartial("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.LogicalBytesRead != 1100 {
		t.Fatalf("logical read = %d, want 1100", s.LogicalBytesRead)
	}
}

func TestUsageAndRemove(t *testing.T) {
	d := newTestDevice(t)
	d.WriteFile("a", make([]byte, 10))
	d.WriteFile("b", make([]byte, 5000))
	if got := d.UsageBytes(); got != 4096+8192 {
		t.Fatalf("usage = %d", got)
	}
	files := d.ListFiles()
	if len(files) != 2 || files[0] != "a" || files[1] != "b" {
		t.Fatalf("files = %v", files)
	}
	if err := d.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := d.UsageBytes(); got != 8192 {
		t.Fatalf("usage after remove = %d", got)
	}
	if d.Stats().Deletes != 1 {
		t.Fatal("delete count")
	}
	// Overwriting a file replaces its usage, not adds to it.
	d.WriteFile("b", make([]byte, 100))
	if got := d.UsageBytes(); got != 4096 {
		t.Fatalf("usage after overwrite = %d", got)
	}
}

func TestClockCharging(t *testing.T) {
	clock := simtime.NewClock()
	d, err := NewDevice(t.TempDir(), testSSD(), clock)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteFile("f", make([]byte, 4096))
	if clock.Total(simtime.ResourceSSD) <= 0 {
		t.Fatal("write should charge SSD time")
	}
	before := clock.Total(simtime.ResourceSSD)
	d.ReadFile("f")
	if clock.Total(simtime.ResourceSSD) <= before {
		t.Fatal("read should charge SSD time")
	}
}

func TestReopenAdoptsFiles(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDevice(dir, testSSD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d1.WriteFile("persisted", make([]byte, 123))
	d2, err := NewDevice(dir, testSSD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Exists("persisted") {
		t.Fatal("reopened device should adopt existing files")
	}
	if d2.UsageBytes() != 4096 {
		t.Fatalf("adopted usage = %d", d2.UsageBytes())
	}
}

func TestDeviceAccessors(t *testing.T) {
	d := newTestDevice(t)
	if d.BlockBytes() != 4096 {
		t.Fatal("block size accessor")
	}
	if d.CapacityBytes() != 1<<30 {
		t.Fatal("capacity accessor")
	}
	if d.Dir() == "" {
		t.Fatal("dir accessor")
	}
}

func TestConcurrentWriters(t *testing.T) {
	d := newTestDevice(t)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(id int) {
			name := string(rune('a' + id))
			done <- d.WriteFile(name, make([]byte, 100*(id+1)))
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(d.ListFiles()) != 8 {
		t.Fatal("concurrent writes lost files")
	}
	if d.Stats().Writes != 8 {
		t.Fatal("stats lost writes")
	}
}
