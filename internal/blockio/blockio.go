// Package blockio provides block-granular file I/O for the SSD-PS.
//
// SSDs read and write whole blocks while the parameter server loads
// parameters in key-value granularity; the mismatch causes I/O amplification
// (Section 1, challenge 3). The Device type performs real file I/O on a local
// directory, rounds every transfer up to whole blocks for accounting, tracks
// logical vs physical byte counts so experiments can report amplification,
// and charges the modelled SSD time of every operation to a simtime.Clock.
package blockio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hps/internal/hw"
	"hps/internal/simtime"
)

// Stats summarizes the I/O a device has performed.
type Stats struct {
	// Reads and Writes count operations.
	Reads, Writes int64
	// LogicalBytesRead/Written are the byte counts requested by callers.
	LogicalBytesRead, LogicalBytesWritten int64
	// PhysicalBytesRead/Written are the block-rounded byte counts.
	PhysicalBytesRead, PhysicalBytesWritten int64
	// Deletes counts removed files.
	Deletes int64
}

// ReadAmplification returns physical/logical bytes read (1.0 when no reads).
func (s Stats) ReadAmplification() float64 {
	if s.LogicalBytesRead == 0 {
		return 1
	}
	return float64(s.PhysicalBytesRead) / float64(s.LogicalBytesRead)
}

// WriteAmplification returns physical/logical bytes written (1.0 when no
// writes).
func (s Stats) WriteAmplification() float64 {
	if s.LogicalBytesWritten == 0 {
		return 1
	}
	return float64(s.PhysicalBytesWritten) / float64(s.LogicalBytesWritten)
}

// Device is a block-granular file store rooted at a directory.
// It is safe for concurrent use.
type Device struct {
	mu    sync.Mutex
	dir   string
	ssd   hw.SSD
	clock *simtime.Clock
	stats Stats
	// usage tracks the physical (block-rounded) size of every live file.
	usage map[string]int64
}

// NewDevice creates (if necessary) the directory and returns a device that
// stores files in it. The ssd profile drives time accounting; clock may be
// nil to disable accounting.
func NewDevice(dir string, ssd hw.SSD, clock *simtime.Clock) (*Device, error) {
	if dir == "" {
		return nil, fmt.Errorf("blockio: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockio: create dir: %w", err)
	}
	d := &Device{dir: dir, ssd: ssd, clock: clock, usage: make(map[string]int64)}
	// Adopt any pre-existing files (e.g. reopening an SSD-PS directory).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockio: list dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		d.usage[e.Name()] = d.physical(info.Size())
	}
	return d, nil
}

// Dir returns the root directory of the device.
func (d *Device) Dir() string { return d.dir }

// BlockBytes returns the device block size.
func (d *Device) BlockBytes() int64 { return d.ssd.BlockBytes }

// Profile returns the SSD hardware model driving the device's time
// accounting, so callers can attribute the same modelled durations to their
// own per-operation statistics.
func (d *Device) Profile() hw.SSD { return d.ssd }

func (d *Device) physical(n int64) int64 {
	if d.ssd.BlockBytes <= 0 {
		return n
	}
	if n <= 0 {
		return 0
	}
	blocks := (n + d.ssd.BlockBytes - 1) / d.ssd.BlockBytes
	return blocks * d.ssd.BlockBytes
}

func (d *Device) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "/") || strings.Contains(name, "\\") || name == "." || name == ".." {
		return "", fmt.Errorf("blockio: invalid file name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

// WriteFile writes data as a new file (or replaces an existing one) and
// charges the modelled sequential-write time.
func (d *Device) WriteFile(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("blockio: write %s: %w", name, err)
	}
	phys := d.physical(int64(len(data)))
	d.mu.Lock()
	d.stats.Writes++
	d.stats.LogicalBytesWritten += int64(len(data))
	d.stats.PhysicalBytesWritten += phys
	d.usage[name] = phys
	d.mu.Unlock()
	d.clock.Add(simtime.ResourceSSD, d.ssd.WriteTime(int64(len(data))))
	return nil
}

// ReadFile reads an entire file and charges the modelled read time.
func (d *Device) ReadFile(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("blockio: read %s: %w", name, err)
	}
	phys := d.physical(int64(len(data)))
	d.mu.Lock()
	d.stats.Reads++
	d.stats.LogicalBytesRead += int64(len(data))
	d.stats.PhysicalBytesRead += phys
	d.mu.Unlock()
	d.clock.Add(simtime.ResourceSSD, d.ssd.ReadTime(int64(len(data))))
	return data, nil
}

// ReadPartial reads a file but accounts only logicalBytes of it as useful —
// the rest is I/O amplification (an entire parameter file must be read to
// obtain a subset of its parameters).
func (d *Device) ReadPartial(name string, logicalBytes int64) ([]byte, error) {
	data, err := d.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if logicalBytes > int64(len(data)) {
		logicalBytes = int64(len(data))
	}
	if logicalBytes < 0 {
		logicalBytes = 0
	}
	d.mu.Lock()
	// ReadFile already counted the full length as logical; correct it.
	d.stats.LogicalBytesRead -= int64(len(data)) - logicalBytes
	d.mu.Unlock()
	return data, nil
}

// Remove deletes a file.
func (d *Device) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return fmt.Errorf("blockio: remove %s: %w", name, err)
	}
	d.mu.Lock()
	delete(d.usage, name)
	d.stats.Deletes++
	d.mu.Unlock()
	return nil
}

// Exists reports whether the named file exists on the device.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.usage[name]
	return ok
}

// ListFiles returns the names of all live files in lexical order.
func (d *Device) ListFiles() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.usage))
	for name := range d.usage {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// UsageBytes returns the total physical (block-rounded) bytes of live files.
func (d *Device) UsageBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, n := range d.usage {
		total += n
	}
	return total
}

// CapacityBytes returns the modelled device capacity (0 = unlimited).
func (d *Device) CapacityBytes() int64 { return d.ssd.CapacityBytes }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
