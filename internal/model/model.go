// Package model defines the CTR model specifications evaluated in the paper.
//
// Table 3 of the paper lists five production models (A–E) ranging from
// 8x10^9 to 2x10^11 sparse parameters (300 GB to 10 TB) trained on MPI
// clusters of 75–150 nodes. This package records those specifications and
// provides scaled-down replicas that preserve the ratios that drive the
// system's behaviour — non-zeros per example, sparse:dense parameter ratio,
// and relative model sizes — so the experiments can run on a single machine.
package model

import (
	"fmt"
	"math"
)

// Spec describes one CTR prediction model.
type Spec struct {
	// Name is the paper's model identifier ("A".."E").
	Name string
	// NonZerosPerExample is the number of non-zero sparse features per
	// training example (Table 3 column "#Non-zeros").
	NonZerosPerExample int
	// SparseParams is the number of sparse (embedding) parameters.
	SparseParams int64
	// DenseParams is the number of dense (fully-connected) parameters.
	DenseParams int64
	// SizeGB is the total model size in gigabytes as reported by the paper.
	SizeGB float64
	// MPINodes is the size of the MPI cluster used to train this model in
	// production (the baseline of Section 7.1).
	MPINodes int
	// EmbeddingDim is the per-feature embedding vector width.
	EmbeddingDim int
	// HiddenLayers are the fully-connected layer widths above the embedding.
	HiddenLayers []int
	// PaperSpeedup is the HPS-4 vs MPI speedup reported in Table 4, used by
	// EXPERIMENTS.md comparisons (0 for non-paper specs).
	PaperSpeedup float64
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("model %s: nnz=%d sparse=%d dense=%d size=%.0fGB mpi=%d",
		s.Name, s.NonZerosPerExample, s.SparseParams, s.DenseParams, s.SizeGB, s.MPINodes)
}

// BytesPerSparseParam returns the storage footprint of one sparse parameter
// implied by the spec (embedding weights + optimizer state + metadata).
func (s Spec) BytesPerSparseParam() int64 {
	if s.SparseParams <= 0 {
		return 0
	}
	return int64(s.SizeGB * float64(1<<30) / float64(s.SparseParams))
}

// PaperSpecs returns the five models of Table 3 with the paper's numbers.
// Embedding dimensions are chosen so that the per-parameter footprint
// (embedding + Adagrad state) matches the reported total size.
func PaperSpecs() []Spec {
	return []Spec{
		{
			Name: "A", NonZerosPerExample: 100,
			SparseParams: 8e9, DenseParams: 7e5,
			SizeGB: 300, MPINodes: 100,
			EmbeddingDim: 4, HiddenLayers: []int{512, 256, 128},
			PaperSpeedup: 1.8,
		},
		{
			Name: "B", NonZerosPerExample: 100,
			SparseParams: 2e10, DenseParams: 2e4,
			SizeGB: 600, MPINodes: 80,
			EmbeddingDim: 4, HiddenLayers: []int{64, 32},
			PaperSpeedup: 2.7,
		},
		{
			Name: "C", NonZerosPerExample: 500,
			SparseParams: 6e10, DenseParams: 2e6,
			SizeGB: 2000, MPINodes: 75,
			EmbeddingDim: 4, HiddenLayers: []int{1024, 512, 256},
			PaperSpeedup: 4.8,
		},
		{
			Name: "D", NonZerosPerExample: 500,
			SparseParams: 1e11, DenseParams: 4e6,
			SizeGB: 6000, MPINodes: 150,
			EmbeddingDim: 8, HiddenLayers: []int{1500, 1024, 512},
			PaperSpeedup: 2.2,
		},
		{
			Name: "E", NonZerosPerExample: 500,
			SparseParams: 2e11, DenseParams: 7e6,
			SizeGB: 10000, MPINodes: 128,
			EmbeddingDim: 8, HiddenLayers: []int{2000, 1200, 800},
			PaperSpeedup: 2.6,
		},
	}
}

// Get returns the paper spec with the given name, or false if no such model.
func Get(name string) (Spec, bool) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Scaled returns a copy of the spec with the sparse parameter universe and
// dense network shrunk by the given factor while preserving the quantities
// that drive system behaviour: non-zeros per example, embedding dimension,
// sparse:dense ordering, and the MPI node count used for cost normalization.
func (s Spec) Scaled(factor int64) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	out.Name = s.Name + "-scaled"
	out.SparseParams = maxInt64(1000, s.SparseParams/factor)
	out.DenseParams = maxInt64(100, s.DenseParams/factor)
	out.SizeGB = s.SizeGB / float64(factor)
	out.HiddenLayers = hiddenLayersForBudget(out.DenseParams, s.EmbeddingDim)
	out.PaperSpeedup = s.PaperSpeedup
	return out
}

// BenchScale is the default down-scaling factor applied when running the
// paper's configurations as benchmarks on one machine: 10^11 sparse
// parameters become ~10^5, keeping every cross-model ratio intact.
const BenchScale = 1_000_000

// BenchSpecs returns the five Table 3 models scaled by BenchScale.
func BenchSpecs() []Spec {
	specs := PaperSpecs()
	out := make([]Spec, len(specs))
	for i, s := range specs {
		out[i] = s.Scaled(BenchScale)
	}
	return out
}

// TinySpec returns a minimal model used by the quickstart example and by
// unit tests: a few thousand sparse parameters, a small dense tower.
func TinySpec() Spec {
	return Spec{
		Name:               "tiny",
		NonZerosPerExample: 20,
		SparseParams:       20000,
		DenseParams:        2000,
		SizeGB:             0.001,
		MPINodes:           4,
		EmbeddingDim:       8,
		HiddenLayers:       []int{32, 16},
	}
}

// hiddenLayersForBudget picks fully-connected layer widths whose parameter
// count approximates the budget for a network whose input is a pooled
// embedding of the given dimension.
func hiddenLayersForBudget(budget int64, inputDim int) []int {
	if inputDim <= 0 {
		inputDim = 8
	}
	if budget < int64(inputDim*4) {
		return []int{4}
	}
	// Two hidden layers of equal width h: params ≈ in*h + h*h + h + h + 1.
	// Solve h^2 + (in+2)h - budget = 0.
	in := float64(inputDim)
	b := float64(budget)
	h := (-(in + 2) + math.Sqrt((in+2)*(in+2)+4*b)) / 2
	w := int(h)
	if w < 4 {
		w = 4
	}
	if w > 4096 {
		w = 4096
	}
	return []int{w, w}
}

// DenseParamCount returns the exact number of dense parameters (weights and
// biases) of a network with the given input dimension and hidden widths plus
// a single sigmoid output.
func DenseParamCount(inputDim int, hidden []int) int64 {
	var total int64
	prev := inputDim
	for _, h := range hidden {
		total += int64(prev)*int64(h) + int64(h)
		prev = h
	}
	total += int64(prev) + 1 // output layer
	return total
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
