package model

import (
	"testing"
	"testing/quick"
)

func TestPaperSpecsMatchTable3(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 5 {
		t.Fatalf("want 5 models, got %d", len(specs))
	}
	// Table 3 rows.
	want := []struct {
		name   string
		nnz    int
		sparse int64
		dense  int64
		sizeGB float64
		mpi    int
	}{
		{"A", 100, 8e9, 7e5, 300, 100},
		{"B", 100, 2e10, 2e4, 600, 80},
		{"C", 500, 6e10, 2e6, 2000, 75},
		{"D", 500, 1e11, 4e6, 6000, 150},
		{"E", 500, 2e11, 7e6, 10000, 128},
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.NonZerosPerExample != w.nnz || s.SparseParams != w.sparse ||
			s.DenseParams != w.dense || s.SizeGB != w.sizeGB || s.MPINodes != w.mpi {
			t.Fatalf("spec %s does not match Table 3: %+v", w.name, s)
		}
	}
}

func TestSparseDominatesDense(t *testing.T) {
	// The paper: dense parameters are 4-5 orders of magnitude fewer than sparse.
	for _, s := range PaperSpecs() {
		ratio := float64(s.SparseParams) / float64(s.DenseParams)
		if ratio < 1e3 {
			t.Fatalf("model %s: sparse/dense ratio %v too small", s.Name, ratio)
		}
	}
}

func TestGet(t *testing.T) {
	s, ok := Get("D")
	if !ok || s.MPINodes != 150 {
		t.Fatalf("Get(D) = %+v, %v", s, ok)
	}
	if _, ok := Get("Z"); ok {
		t.Fatal("Get(Z) should fail")
	}
}

func TestBytesPerSparseParam(t *testing.T) {
	a, _ := Get("A")
	got := a.BytesPerSparseParam()
	// 300 GB / 8e9 params ≈ 40 bytes.
	if got < 30 || got > 50 {
		t.Fatalf("bytes per param = %d, want ~40", got)
	}
	var zero Spec
	if zero.BytesPerSparseParam() != 0 {
		t.Fatal("zero spec should report 0")
	}
}

func TestScaledPreservesShape(t *testing.T) {
	for _, s := range PaperSpecs() {
		sc := s.Scaled(BenchScale)
		if sc.NonZerosPerExample != s.NonZerosPerExample {
			t.Fatalf("%s: scaling must not change non-zeros per example", s.Name)
		}
		if sc.EmbeddingDim != s.EmbeddingDim {
			t.Fatalf("%s: scaling must not change embedding dim", s.Name)
		}
		if sc.MPINodes != s.MPINodes {
			t.Fatalf("%s: scaling must not change MPI node count", s.Name)
		}
		if sc.SparseParams <= 0 || sc.DenseParams <= 0 {
			t.Fatalf("%s: scaled params must be positive", s.Name)
		}
		if sc.SparseParams >= s.SparseParams {
			t.Fatalf("%s: scaled sparse params not reduced", s.Name)
		}
	}
}

func TestScaledOrderingPreserved(t *testing.T) {
	// Relative ordering of model sizes must be preserved after scaling.
	specs := BenchSpecs()
	for i := 1; i < len(specs); i++ {
		if specs[i].SparseParams < specs[i-1].SparseParams {
			t.Fatalf("scaled sparse ordering broken at %s", specs[i].Name)
		}
	}
}

func TestScaledIdentityForSmallFactor(t *testing.T) {
	a, _ := Get("A")
	if got := a.Scaled(1); got.SparseParams != a.SparseParams || got.Name != "A" {
		t.Fatal("factor 1 should be identity")
	}
	if got := a.Scaled(0); got.SparseParams != a.SparseParams {
		t.Fatal("factor 0 should be identity")
	}
}

func TestDenseParamCount(t *testing.T) {
	// input 4, hidden [3], output 1: 4*3+3 + 3+1 = 19
	if got := DenseParamCount(4, []int{3}); got != 19 {
		t.Fatalf("DenseParamCount = %d, want 19", got)
	}
	// no hidden: 4+1 = 5
	if got := DenseParamCount(4, nil); got != 5 {
		t.Fatalf("DenseParamCount no hidden = %d, want 5", got)
	}
}

func TestHiddenLayersForBudgetProperty(t *testing.T) {
	f := func(budget uint32, dim uint8) bool {
		b := int64(budget%1_000_000) + 1
		d := int(dim%32) + 1
		hidden := hiddenLayersForBudget(b, d)
		if len(hidden) == 0 {
			return false
		}
		actual := DenseParamCount(d, hidden)
		// Must be positive and within a reasonable factor of the budget when
		// the budget is big enough to matter.
		if actual <= 0 {
			return false
		}
		if b > 1000 && len(hidden) == 2 {
			ratio := float64(actual) / float64(b)
			return ratio > 0.4 && ratio < 2.5
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTinySpec(t *testing.T) {
	s := TinySpec()
	if s.SparseParams <= 0 || s.EmbeddingDim <= 0 || len(s.HiddenLayers) == 0 {
		t.Fatal("tiny spec malformed")
	}
	if s.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestBenchSpecs(t *testing.T) {
	specs := BenchSpecs()
	if len(specs) != 5 {
		t.Fatalf("want 5 bench specs, got %d", len(specs))
	}
	for _, s := range specs {
		// Must be small enough to run as a benchmark.
		if s.SparseParams > 10_000_000 {
			t.Fatalf("%s: bench spec too large: %d sparse params", s.Name, s.SparseParams)
		}
	}
}
