// Package cluster defines the multi-node topology of the distributed
// hierarchical parameter server and the transports nodes use to pull
// parameters from each other's MEM-PS (Section 5, "Prepare parameters").
//
// Parameters are sharded across nodes with the modulo policy, and within a
// node across GPUs with the same policy (Section 4.1, Appendix C.1). The
// in-process transport wires several simulated nodes together inside one
// process; the TCP transport runs the same protocol across real processes.
package cluster

import (
	"fmt"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// Topology describes the shape of the training cluster.
type Topology struct {
	// Nodes is the number of computing nodes.
	Nodes int
	// GPUsPerNode is the number of GPUs in each node.
	GPUsPerNode int
	// Members, when set, replaces the modulo placement policy with the
	// consistent-hash ring it holds: NodeOf/SplitByNode follow the ring's
	// current epoch, so a membership change (shard join/leave, promotion)
	// re-points every component sharing the view without rebuilding them.
	// Nil keeps the paper's modulo policy over Nodes.
	Members *Membership
	// Replicas is the placement factor R of the replicated MEM-PS: every key
	// lives on its primary plus R-1 backups in promotion order. Zero or one
	// means unreplicated (the pre-replication behavior).
	Replicas int
}

// Validate returns an error if the topology is degenerate.
func (t Topology) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node, have %d", t.Nodes)
	}
	if t.GPUsPerNode < 1 {
		return fmt.Errorf("cluster: need at least one GPU per node, have %d", t.GPUsPerNode)
	}
	return nil
}

// TotalGPUs returns the total number of GPUs in the cluster.
func (t Topology) TotalGPUs() int { return t.Nodes * t.GPUsPerNode }

// ring returns the installed ring, or nil when the topology uses modulo
// placement.
func (t Topology) ring() *Ring {
	if t.Members == nil {
		return nil
	}
	return t.Members.Ring()
}

// NodeOf returns the node that owns (is primary for) the parameter shard
// containing k.
func (t Topology) NodeOf(k keys.Key) int {
	if r := t.ring(); r != nil {
		return r.Owner(k)
	}
	return k.Shard(t.Nodes)
}

// ReplicasOf returns k's replica set in promotion order: the primary first,
// then R-1 backups. Without a ring or with R <= 1 it is just the primary.
func (t Topology) ReplicasOf(k keys.Key) []int {
	if r := t.ring(); r != nil && t.Replicas > 1 {
		return r.Replicas(k, t.Replicas)
	}
	return []int{t.NodeOf(k)}
}

// BackupOf returns k's first backup, or -1 when the deployment has none
// (unreplicated, or fewer members than R).
func (t Topology) BackupOf(k keys.Key) int {
	if r := t.ring(); r != nil && t.Replicas > 1 {
		return r.Backup(k)
	}
	return -1
}

// HoldsKey reports whether node is in k's replica set — the ownership check
// of the replicated MEM-PS: a backup legitimately stores and answers for keys
// whose primary is another node.
func (t Topology) HoldsKey(k keys.Key, node int) bool {
	if r := t.ring(); r != nil {
		n := t.Replicas
		if n < 1 {
			n = 1
		}
		return r.ReplicaRank(k, node, n) >= 0
	}
	return k.Shard(t.Nodes) == node
}

// MemberIDs returns the current member ids: the ring's members, or 0..Nodes-1
// under modulo placement.
func (t Topology) MemberIDs() []int {
	if r := t.ring(); r != nil {
		return r.Members()
	}
	ids := make([]int, t.Nodes)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// GPUOf returns the GPU (within its node) that stores k in the HBM-PS
// partition of the current batch.
func (t Topology) GPUOf(k keys.Key) int { return k.HashShard(t.GPUsPerNode) }

// SplitByNode partitions ks by owning node, preserving input order within
// each group. The result is indexed by node id; under ring placement it is
// sized to hold the largest member id (vacated ids stay as empty groups), so
// callers iterate it the same way in both modes.
func (t Topology) SplitByNode(ks []keys.Key) [][]keys.Key {
	r := t.ring()
	if r == nil {
		return keys.PartitionByShard(ks, t.Nodes)
	}
	n := t.Nodes
	for _, m := range r.Members() {
		if m+1 > n {
			n = m + 1
		}
	}
	out := make([][]keys.Key, n)
	for _, k := range ks {
		o := r.Owner(k)
		out[o] = append(out[o], k)
	}
	return out
}

// SplitByGPU partitions ks by owning GPU within a node.
func (t Topology) SplitByGPU(ks []keys.Key) [][]keys.Key {
	out := make([][]keys.Key, t.GPUsPerNode)
	for _, k := range ks {
		g := t.GPUOf(k)
		out[g] = append(out[g], k)
	}
	return out
}

// PullResult is the payload returned by a parameter pull: the requested keys
// that exist on the serving node, with their current values.
type PullResult map[keys.Key]*embedding.Value

// PullHandler serves parameter pulls for one node (implemented by the
// MEM-PS). Handlers must be safe for concurrent use.
type PullHandler interface {
	// HandlePull returns the values of the requested keys that this node
	// owns, creating them if they do not exist yet (a parameter referenced
	// for the first time).
	HandlePull(ks []keys.Key) (PullResult, error)
}

// PushHandler applies parameter deltas pushed by other nodes. The MEM-PS
// implements it; shard servers expose it behind the push RPC.
type PushHandler interface {
	// HandlePush merges per-key deltas into the shard this node owns.
	HandlePush(deltas map[keys.Key]*embedding.Value) error
}

// LookupHandler serves reads that must not materialize missing parameters
// (evaluation-time lookups, as opposed to training pulls which create
// first-referenced parameters).
type LookupHandler interface {
	// HandleLookup returns the current values of the requested keys this node
	// holds; missing keys are absent, never created.
	HandleLookup(ks []keys.Key) (PullResult, error)
}

// BlockPullHandler is the batched-block form of PullHandler: the values land
// in dst's flat rows (request-key order) instead of a per-value map, so the
// server can encode the whole reply in one pass. Handlers without it are
// served through HandlePull plus a conversion.
type BlockPullHandler interface {
	HandlePullBlock(ks []keys.Key, dst *ps.ValueBlock) error
}

// BlockPushHandler is the batched-block form of PushHandler, consuming the
// parallel key/delta rows of a push frame directly.
type BlockPushHandler interface {
	HandlePushBlock(blk *ps.ValueBlock) error
}

// BlockPullWireHandler is the zero-intermediate form of BlockPullHandler: the
// handler appends the encoded block body for ks (the exact bytes
// ps.ValueBlock.AppendWirePrecision would produce — ps.AppendWireHeaderPrecision
// then one ps.AppendWireRowPrecision per requested key, in the connection's
// negotiated precision) directly onto dst and returns the extended slice. A
// serving tier that implements it copies (or quantizes) each value row once,
// from its own storage into the outgoing frame, instead of staging the reply
// through an intermediate block; the TCP server prefers it for pull-block
// RPCs.
type BlockPullWireHandler interface {
	HandlePullBlockWire(ks []keys.Key, dst []byte, prec ps.Precision) ([]byte, error)
}

// StampedBlockPushHandler is the replication-aware form of BlockPushHandler:
// the server hands the handler the origin client's dedup stamp alongside the
// block, so a primary that applies the push can forward the same (client, seq)
// to its backups. Servers prefer it over BlockPushHandler when implemented.
type StampedBlockPushHandler interface {
	HandlePushBlockStamped(client, seq uint64, blk *ps.ValueBlock) error
}

// ReplicaPushHandler applies a delta block a key's primary forwarded after
// applying it itself (the backup half of primary/backup replication). The
// block arrives with the origin client's dedup stamp, which the server checks
// against the same SeqTracker as direct pushes — so after a promotion, the
// origin's own retry of a push the old primary had already forwarded is
// acked, never double-applied.
type ReplicaPushHandler interface {
	HandleReplicate(blk *ps.ValueBlock) error
}

// TransferHandler imports a key-range state transfer: the block's rows are
// authoritative full values (not deltas) and are installed outright,
// returning how many rows were accepted. Transfers are idempotent — this is
// the re-replication / resharding data path.
type TransferHandler interface {
	HandleTransfer(blk *ps.ValueBlock) (int, error)
}

// MembershipHandler installs an epoch-versioned membership change (shard
// join/leave/promotion). Handlers drop updates that are not newer than the
// view they hold.
type MembershipHandler interface {
	HandleMembership(u MembershipUpdate) error
}

// EvictHandler demotes parameters out of the serving tier. ps.Tier's Evict
// satisfies it directly.
type EvictHandler interface {
	Evict(ks []keys.Key) (int, error)
}

// StatsHandler reports the serving tier's identity and uniform statistics.
// ps.Tier satisfies it directly.
type StatsHandler interface {
	Name() string
	TierStats() ps.Stats
}

// Transport lets a node pull parameters from a remote node's MEM-PS.
type Transport interface {
	// Pull requests the given keys from the node with id nodeID and returns
	// their values along with the number of payload bytes that crossed the
	// network (for time accounting by the caller).
	Pull(nodeID int, ks []keys.Key) (PullResult, int64, error)
}

// TierTransport is the full RPC surface needed to use a remote node as a
// parameter-server tier: batched pull and push on the hot path, plus the
// evict / stats / lookup operations the trainer and its reports need. Both
// LocalTransport (in-process) and TCPTransport (multi-process) implement it.
type TierTransport interface {
	Transport
	// Push merges per-key deltas into node nodeID's shard, returning the
	// payload bytes that crossed the network.
	Push(nodeID int, deltas map[keys.Key]*embedding.Value) (int64, error)
	// Evict demotes the given keys out of node nodeID's tier; nil demotes
	// everything evictable (the ps.Tier.Evict contract).
	Evict(nodeID int, ks []keys.Key) (int, error)
	// TierStats returns node nodeID's tier name and uniform statistics.
	TierStats(nodeID int) (ps.TierInfo, error)
	// Lookup reads the given keys from node nodeID without materializing
	// missing ones, returning the payload bytes that crossed the network.
	Lookup(nodeID int, ks []keys.Key) (PullResult, int64, error)
}

// BlockTransport is the optional batched-block extension of TierTransport:
// pulls land in (and pushes depart from) flat ValueBlocks whose wire frames
// are encoded in one pass, instead of per-value gob maps. Both LocalTransport
// and TCPTransport implement it.
type BlockTransport interface {
	// PullBlock reads ks from node nodeID into dst (request-key order),
	// returning the payload bytes that crossed the network.
	PullBlock(nodeID int, ks []keys.Key, dst *ps.ValueBlock) (int64, error)
	// PushBlock merges the block's parallel key/delta rows into node nodeID's
	// shard, returning the payload bytes that crossed the network.
	PushBlock(nodeID int, blk *ps.ValueBlock) (int64, error)
}

// NoRoute is a Transport for processes that serve a single shard and never
// pull from peers (a shard server's MEM-PS only ever answers requests). Every
// operation fails with ErrUnknownNode.
type NoRoute struct{}

// Pull implements Transport.
func (NoRoute) Pull(nodeID int, _ []keys.Key) (PullResult, int64, error) {
	return nil, 0, fmt.Errorf("%w: %d (transport has no routes)", ErrUnknownNode, nodeID)
}

// PayloadBytes returns the serialized size of a pull exchange: 8 bytes per
// requested key plus the encoded size of every returned value (with its key).
func PayloadBytes(requested int, result PullResult, dim int) int64 {
	return int64(requested)*8 + int64(len(result))*int64(8+embedding.EncodedSize(dim))
}
