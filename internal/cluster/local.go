package cluster

import (
	"fmt"
	"sync"

	"hps/internal/keys"
)

// LocalTransport connects the nodes of an in-process cluster: every node
// registers its PullHandler and every node can pull from every other node.
// It is safe for concurrent use.
type LocalTransport struct {
	mu       sync.RWMutex
	handlers map[int]PullHandler
	dim      int
}

// NewLocalTransport creates a transport for parameters of the given embedding
// dimension (used for payload-size accounting).
func NewLocalTransport(dim int) *LocalTransport {
	return &LocalTransport{handlers: make(map[int]PullHandler), dim: dim}
}

// Register installs the handler serving pulls for nodeID, replacing any
// previous handler.
func (t *LocalTransport) Register(nodeID int, h PullHandler) {
	t.mu.Lock()
	t.handlers[nodeID] = h
	t.mu.Unlock()
}

// Nodes returns the ids of all registered nodes.
func (t *LocalTransport) Nodes() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, 0, len(t.handlers))
	for id := range t.handlers {
		out = append(out, id)
	}
	return out
}

// Pull implements Transport.
func (t *LocalTransport) Pull(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	t.mu.RLock()
	h, ok := t.handlers[nodeID]
	t.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("cluster: no handler registered for node %d", nodeID)
	}
	res, err := h.HandlePull(ks)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: pull from node %d: %w", nodeID, err)
	}
	return res, PayloadBytes(len(ks), res, t.dim), nil
}
