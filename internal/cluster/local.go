package cluster

import (
	"fmt"
	"sync"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// LocalTransport connects the nodes of an in-process cluster: every node
// registers its PullHandler and every node can pull from every other node.
// It is safe for concurrent use.
type LocalTransport struct {
	mu       sync.RWMutex
	handlers map[int]PullHandler
	dim      int
}

// NewLocalTransport creates a transport for parameters of the given embedding
// dimension (used for payload-size accounting).
func NewLocalTransport(dim int) *LocalTransport {
	return &LocalTransport{handlers: make(map[int]PullHandler), dim: dim}
}

// Register installs the handler serving pulls for nodeID, replacing any
// previous handler.
func (t *LocalTransport) Register(nodeID int, h PullHandler) {
	t.mu.Lock()
	t.handlers[nodeID] = h
	t.mu.Unlock()
}

// Nodes returns the ids of all registered nodes.
func (t *LocalTransport) Nodes() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, 0, len(t.handlers))
	for id := range t.handlers {
		out = append(out, id)
	}
	return out
}

// Pull implements Transport.
func (t *LocalTransport) Pull(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return nil, 0, err
	}
	res, err := h.HandlePull(ks)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: pull from node %d: %w", nodeID, err)
	}
	return res, PayloadBytes(len(ks), res, t.dim), nil
}

func (t *LocalTransport) handler(nodeID int) (PullHandler, error) {
	t.mu.RLock()
	h, ok := t.handlers[nodeID]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: no handler registered for node %d", ErrUnknownNode, nodeID)
	}
	return h, nil
}

var (
	_ TierTransport  = (*LocalTransport)(nil)
	_ BlockTransport = (*LocalTransport)(nil)
)

// PullBlock implements BlockTransport: block-capable handlers serve straight
// into dst; others are adapted through their map-based pull.
func (t *LocalTransport) PullBlock(nodeID int, ks []keys.Key, dst *ps.ValueBlock) (int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	if bh, ok := h.(BlockPullHandler); ok {
		if err := bh.HandlePullBlock(ks, dst); err != nil {
			return 0, fmt.Errorf("cluster: pull from node %d: %w", nodeID, err)
		}
	} else {
		res, err := h.HandlePull(ks)
		if err != nil {
			return 0, fmt.Errorf("cluster: pull from node %d: %w", nodeID, err)
		}
		ps.FillFromPull(dst, t.dim, ks, ps.Result(res))
	}
	return int64(len(ks))*8 + int64(dst.PresentCount())*int64(8+embedding.EncodedSize(t.dim)), nil
}

// PushBlock implements BlockTransport. Handlers without a block push receive
// freshly allocated map deltas (handlers may retain what push hands them).
func (t *LocalTransport) PushBlock(nodeID int, blk *ps.ValueBlock) (int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	switch bh := h.(type) {
	case BlockPushHandler:
		err = bh.HandlePushBlock(blk)
	case PushHandler:
		err = bh.HandlePush(blk.Deltas())
	default:
		return 0, &RemoteError{Node: nodeID, Op: "push", Msg: "shard does not accept pushes"}
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: push to node %d: %w", nodeID, err)
	}
	return int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim)), nil
}

// Replicate forwards an applied delta block to nodeID's handler (the
// in-process analogue of TCPTransport.Replicate). The origin stamp is
// accepted for interface parity; in-process handlers do their own dedup.
func (t *LocalTransport) Replicate(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	rh, ok := h.(ReplicaPushHandler)
	if !ok {
		return 0, &RemoteError{Node: nodeID, Op: opName(opReplicate), Msg: "shard does not accept replicated pushes"}
	}
	if err := rh.HandleReplicate(blk); err != nil {
		return 0, fmt.Errorf("cluster: replicate to node %d: %w", nodeID, err)
	}
	return int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim)), nil
}

// Transfer installs the block's rows on nodeID's handler outright (set
// semantics) — the in-process analogue of TCPTransport.Transfer.
func (t *LocalTransport) Transfer(nodeID int, blk *ps.ValueBlock) (int, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	th, ok := h.(TransferHandler)
	if !ok {
		return 0, &RemoteError{Node: nodeID, Op: opName(opTransfer), Msg: "shard does not accept transfers"}
	}
	n, err := th.HandleTransfer(blk)
	if err != nil {
		return n, fmt.Errorf("cluster: transfer to node %d: %w", nodeID, err)
	}
	return n, nil
}

// UpdateMembership delivers a membership change to nodeID's handler.
func (t *LocalTransport) UpdateMembership(nodeID int, u MembershipUpdate) error {
	h, err := t.handler(nodeID)
	if err != nil {
		return err
	}
	mh, ok := h.(MembershipHandler)
	if !ok {
		return &RemoteError{Node: nodeID, Op: opName(opMembership), Msg: "shard does not accept membership updates"}
	}
	if err := mh.HandleMembership(u); err != nil {
		return fmt.Errorf("cluster: membership update to node %d: %w", nodeID, err)
	}
	return nil
}

// Push implements TierTransport when node nodeID's handler accepts pushes.
func (t *LocalTransport) Push(nodeID int, deltas map[keys.Key]*embedding.Value) (int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	ph, ok := h.(PushHandler)
	if !ok {
		return 0, &RemoteError{Node: nodeID, Op: "push", Msg: "shard does not accept pushes"}
	}
	if err := ph.HandlePush(deltas); err != nil {
		return 0, fmt.Errorf("cluster: push to node %d: %w", nodeID, err)
	}
	return int64(len(deltas)) * int64(8+embedding.EncodedSize(t.dim)), nil
}

// Evict implements TierTransport when node nodeID's handler supports evict.
func (t *LocalTransport) Evict(nodeID int, ks []keys.Key) (int, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return 0, err
	}
	eh, ok := h.(EvictHandler)
	if !ok {
		return 0, &RemoteError{Node: nodeID, Op: "evict", Msg: "shard does not support evict"}
	}
	return eh.Evict(ks)
}

// TierStats implements TierTransport when node nodeID's handler reports stats.
func (t *LocalTransport) TierStats(nodeID int) (ps.TierInfo, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return ps.TierInfo{}, err
	}
	sh, ok := h.(StatsHandler)
	if !ok {
		return ps.TierInfo{}, &RemoteError{Node: nodeID, Op: "stats", Msg: "shard does not report stats"}
	}
	return ps.TierInfo{Name: sh.Name(), Stats: sh.TierStats()}, nil
}

// Lookup implements TierTransport when node nodeID's handler supports
// no-create reads.
func (t *LocalTransport) Lookup(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	h, err := t.handler(nodeID)
	if err != nil {
		return nil, 0, err
	}
	lh, ok := h.(LookupHandler)
	if !ok {
		return nil, 0, &RemoteError{Node: nodeID, Op: "lookup", Msg: "shard does not support lookup"}
	}
	res, err := lh.HandleLookup(ks)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: lookup from node %d: %w", nodeID, err)
	}
	return res, PayloadBytes(len(ks), res, t.dim), nil
}
