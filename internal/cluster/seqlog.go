package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// SeqLog persists the (client, sequence) pairs of successfully applied pushes
// as fixed-size append-only records, closing the at-least-once window that an
// in-memory SeqTracker leaves open across process restarts: without it, a
// shard that crashes after applying a push but before the client reads the
// ack would re-apply the client's retry on restart — a twice-applied
// gradient. The log lives alongside the shard's SSD-PS directory and is
// replayed into a fresh tracker by OpenSeqLog.
//
// Records are appended after the apply succeeds and before the ack is
// written (see SeqTracker.commit for why that order is the correct one).
// Appends rely on the OS page cache for durability: a process crash (the
// failure mode shard supervision restarts from) loses nothing, while a whole-
// machine power loss may lose the tail — the same budget the SSD-PS dump
// path already runs on, and one that fsync-per-push would pay for with a
// synchronous disk flush on the training hot path.
//
// A SeqLog is safe for concurrent use.
type SeqLog struct {
	mu sync.Mutex
	f  *os.File
}

// seqLogRecordSize is the fixed on-disk record size: client and sequence,
// each 8 bytes little-endian.
const seqLogRecordSize = 16

// OpenSeqLog opens (creating if absent) the applied-push log at path and
// replays every complete record into tracker, returning the log positioned
// for appends and the number of records replayed. A truncated tail record —
// a crash mid-append — is discarded, not an error: the push it belonged to
// was never acked, so the client re-applies it anyway. Pair the returned log
// with the tracker via tracker.AttachLog.
func OpenSeqLog(path string, tracker *SeqTracker) (*SeqLog, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: open seq log: %w", err)
	}
	records, replayed := 0, 0
	var rec [seqLogRecordSize]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			break // EOF, or a torn tail record discarded by the truncate below
		}
		records++
		client := binary.LittleEndian.Uint64(rec[0:8])
		seq := binary.LittleEndian.Uint64(rec[8:16])
		// fresh both records the pair in the tracker and dedups records the
		// log may hold more than once.
		if tracker.fresh(client, seq) {
			replayed++
		}
	}
	// Truncate to the last complete record so new appends never interleave
	// with a torn tail.
	if err := f.Truncate(int64(records) * seqLogRecordSize); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("cluster: truncate seq log tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("cluster: seek seq log: %w", err)
	}
	return &SeqLog{f: f}, replayed, nil
}

// Append records one applied (client, seq) pair. Failures are returned but
// callers on the ack path deliberately ignore them (see SeqTracker.commit).
func (l *SeqLog) Append(client, seq uint64) error {
	var rec [seqLogRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], client)
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("cluster: seq log closed")
	}
	if _, err := l.f.Write(rec[:]); err != nil {
		return fmt.Errorf("cluster: append seq log: %w", err)
	}
	return nil
}

// Sync flushes the log to stable storage (power-loss durability); shard
// shutdown calls it once rather than paying an fsync per push.
func (l *SeqLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (l *SeqLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
