package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// SeqLog persists the (client, sequence) pairs of successfully applied pushes
// as fixed-size append-only records, closing the at-least-once window that an
// in-memory SeqTracker leaves open across process restarts: without it, a
// shard that crashes after applying a push but before the client reads the
// ack would re-apply the client's retry on restart — a twice-applied
// gradient. The log lives alongside the shard's SSD-PS directory and is
// replayed into a fresh tracker by OpenSeqLog.
//
// Records are appended after the apply succeeds and before the ack is
// written (see SeqTracker.commit for why that order is the correct one).
// Appends rely on the OS page cache for durability: a process crash (the
// failure mode shard supervision restarts from) loses nothing, while a whole-
// machine power loss may lose the tail — the same budget the SSD-PS dump
// path already runs on, and one that fsync-per-push would pay for with a
// synchronous disk flush on the training hot path.
//
// A SeqLog is safe for concurrent use.
//
// The log is append-only between compactions: Compact rewrites it to just
// the records still inside the tracker's dedup window (everything older is
// already refused as a stale duplicate by the window check, so its records
// are dead weight) — without it the log grows by one record per applied push
// for the life of the shard directory.
type SeqLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// seqLogRecordSize is the fixed on-disk record size: client and sequence,
// each 8 bytes little-endian.
const seqLogRecordSize = 16

// OpenSeqLog opens (creating if absent) the applied-push log at path and
// replays every complete record into tracker, returning the log positioned
// for appends and the number of records replayed. A truncated tail record —
// a crash mid-append — is discarded, not an error: the push it belonged to
// was never acked, so the client re-applies it anyway. Pair the returned log
// with the tracker via tracker.AttachLog.
func OpenSeqLog(path string, tracker *SeqTracker) (*SeqLog, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: open seq log: %w", err)
	}
	records, replayed := 0, 0
	var rec [seqLogRecordSize]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			break // EOF, or a torn tail record discarded by the truncate below
		}
		records++
		client := binary.LittleEndian.Uint64(rec[0:8])
		seq := binary.LittleEndian.Uint64(rec[8:16])
		// fresh both records the pair in the tracker and dedups records the
		// log may hold more than once.
		if tracker.fresh(client, seq) {
			replayed++
		}
	}
	// Truncate to the last complete record so new appends never interleave
	// with a torn tail.
	if err := f.Truncate(int64(records) * seqLogRecordSize); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("cluster: truncate seq log tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("cluster: seek seq log: %w", err)
	}
	return &SeqLog{f: f, path: path}, replayed, nil
}

// Compact rewrites the log to exactly the records produced by snapshot,
// which is invoked under the log's lock — concurrent Appends block until the
// rewrite finishes, so a record committed during compaction lands in the new
// file instead of being lost with the old one. The rewrite goes through a
// temp file and a rename: a crash mid-compaction leaves either the old log
// or the complete new one, never a mix, and a torn tail from an earlier
// crash (already discarded at open) cannot resurface. It returns the number
// of records kept.
func (l *SeqLog) Compact(snapshot func() [][2]uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("cluster: seq log closed")
	}
	records := snapshot()
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("cluster: compact seq log: %w", err)
	}
	buf := make([]byte, 0, len(records)*seqLogRecordSize)
	var rec [seqLogRecordSize]byte
	for _, r := range records {
		binary.LittleEndian.PutUint64(rec[0:8], r[0])
		binary.LittleEndian.PutUint64(rec[8:16], r[1])
		buf = append(buf, rec[:]...)
	}
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("cluster: compact seq log: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("cluster: compact seq log: %w", err)
	}
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rename succeeded but the reopen failed: the old handle points at
		// the unlinked pre-compaction inode, whose appends would vanish. Fail
		// closed rather than silently losing dedup records.
		l.f.Close()
		l.f = nil
		return 0, fmt.Errorf("cluster: reopen compacted seq log: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		l.f.Close()
		l.f = nil
		return 0, fmt.Errorf("cluster: seek compacted seq log: %w", err)
	}
	l.f.Close()
	l.f = nf
	return len(records), nil
}

// Append records one applied (client, seq) pair. Failures are returned but
// callers on the ack path deliberately ignore them (see SeqTracker.commit).
func (l *SeqLog) Append(client, seq uint64) error {
	var rec [seqLogRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], client)
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("cluster: seq log closed")
	}
	if _, err := l.f.Write(rec[:]); err != nil {
		return fmt.Errorf("cluster: append seq log: %w", err)
	}
	return nil
}

// Sync flushes the log to stable storage (power-loss durability); shard
// shutdown calls it once rather than paying an fsync per push.
func (l *SeqLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (l *SeqLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
