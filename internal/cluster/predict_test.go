package cluster

import (
	"errors"
	"strings"
	"testing"

	"hps/internal/keys"
)

// predictStub is a PullHandler with the serving trio grafted on: it scores
// every example with a fixed function of its features, optionally rejecting
// everything as overloaded.
type predictStub struct {
	overloaded bool
	config     ServeConfig
	stats      ServingStats
}

func (h *predictStub) HandlePull(ks []keys.Key) (PullResult, error) {
	return PullResult{}, nil
}

func (h *predictStub) HandlePredict(req PredictRequest) ([]float32, error) {
	if h.overloaded {
		return nil, &OverloadError{Node: 3, Op: "predict"}
	}
	scores := make([]float32, len(req.Counts))
	off := 0
	for i, c := range req.Counts {
		var sum float32
		for _, k := range req.Keys[off : off+int(c)] {
			sum += float32(k % 97)
		}
		off += int(c)
		scores[i] = sum
	}
	return scores, nil
}

func (h *predictStub) HandleServeConfig(cfg ServeConfig) error {
	h.config = cfg
	return nil
}

func (h *predictStub) ServingStats() ServingStats { return h.stats }

// TestPredictRoundTrip exercises the full predict path over a real socket —
// raw frames, since both ends speak wire version 2 — and checks the scores
// come back exactly as the handler computed them, including zero-feature
// examples.
func TestPredictRoundTrip(t *testing.T) {
	stub := &predictStub{}
	srv, err := ServeTCP("127.0.0.1:0", stub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 4)
	defer tr.Close()

	req := PredictRequest{
		Counts: []uint32{2, 0, 3},
		Keys:   []keys.Key{10, 20, 30, 40, 50},
	}
	scores, err := tr.Predict(0, req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := stub.HandlePredict(req)
	if len(scores) != len(want) {
		t.Fatalf("got %d scores, want %d", len(scores), len(want))
	}
	for i := range scores {
		if scores[i] != want[i] {
			t.Fatalf("score[%d] = %v, want %v", i, scores[i], want[i])
		}
	}
}

// TestPredictGobRoundTrip covers the wire-version-1 fallback by driving the
// gob dispatch directly with a wireRequest, the same frames a pre-raw client
// would send.
func TestPredictGobRoundTrip(t *testing.T) {
	stub := &predictStub{}
	s := &TCPServer{handler: stub, seqs: NewSeqTracker()}
	resp, _ := s.dispatch(&wireRequest{Op: opPredict, Counts: []uint32{1, 2}, Keys: []keys.Key{7, 8, 9}})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	want, _ := stub.HandlePredict(PredictRequest{Counts: []uint32{1, 2}, Keys: []keys.Key{7, 8, 9}})
	if len(resp.Scores) != 2 || resp.Scores[0] != want[0] || resp.Scores[1] != want[1] {
		t.Fatalf("scores %v, want %v", resp.Scores, want)
	}

	// A malformed request (counts not accounting for the keys) must be
	// rejected by validation, not reach the handler.
	resp, _ = s.dispatch(&wireRequest{Op: opPredict, Counts: []uint32{5}, Keys: []keys.Key{1}})
	if resp.Err == "" {
		t.Fatal("mismatched counts passed validation")
	}

	// Overload through gob sets the marker flag the client rebuilds the
	// typed error from.
	stub.overloaded = true
	resp, _ = s.dispatch(&wireRequest{Op: opPredict, Counts: []uint32{1}, Keys: []keys.Key{1}})
	if !resp.Overloaded || resp.Err == "" {
		t.Fatalf("overload not marked: overloaded=%v err=%q", resp.Overloaded, resp.Err)
	}
}

// TestPredictOverloadTyped asserts an admission rejection crosses the wire
// as a typed, retryable *OverloadError and is NOT consumed by the
// transport's internal retry loop (Retries must stay zero — shedding load to
// the caller is the whole point of admission control).
func TestPredictOverloadTyped(t *testing.T) {
	stub := &predictStub{overloaded: true}
	srv, err := ServeTCP("127.0.0.1:0", stub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 4)
	defer tr.Close()

	_, err = tr.Predict(0, PredictRequest{Counts: []uint32{1}, Keys: []keys.Key{1}})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadError, got %T: %v", err, err)
	}
	if !Retryable(err) {
		t.Fatal("overload error must be retryable by the caller")
	}
	if got := tr.Stats().Retries; got != 0 {
		t.Fatalf("transport retried an overload rejection %d time(s)", got)
	}
	// Not every error is retryable: a plain remote failure must stay final.
	if Retryable(&RemoteError{Node: 0, Op: "predict", Msg: "x"}) {
		t.Fatal("RemoteError must not be retryable")
	}
}

// TestServeConfigAndStatsRPC round-trips the serving control plane: config
// down (addresses + dense parameters + epoch), counters back.
func TestServeConfigAndStatsRPC(t *testing.T) {
	stub := &predictStub{stats: ServingStats{Requests: 5, CacheHits: 30, CacheMisses: 10, PushEpoch: 7, StalenessMax: 1}}
	srv, err := ServeTCP("127.0.0.1:0", stub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 4)
	defer tr.Close()

	cfg := ServeConfig{
		Addrs: map[int]string{0: "a", 1: "b"},
		Dense: []float32{1, 2, 3},
		Epoch: 9,
	}
	if err := tr.PublishServeConfig(0, cfg); err != nil {
		t.Fatal(err)
	}
	if stub.config.Epoch != 9 || len(stub.config.Dense) != 3 || stub.config.Addrs[1] != "b" {
		t.Fatalf("config did not survive the trip: %+v", stub.config)
	}

	st, err := tr.ServingStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != stub.stats {
		t.Fatalf("stats %+v, want %+v", st, stub.stats)
	}
	if got := st.CacheHitRate(); got != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", got)
	}

	// A handler without the serving interfaces must reject the ops cleanly.
	bare, err := ServeTCP("127.0.0.1:0", fuzzHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	tr2 := NewTCPTransport(map[int]string{0: bare.Addr()}, 4)
	defer tr2.Close()
	if _, err := tr2.ServingStats(0); err == nil || !strings.Contains(err.Error(), "serving stats") {
		t.Fatalf("want serving-stats rejection, got %v", err)
	}
}

// TestServingStatsAdd checks the aggregate: counters sum, watermarks take
// the max.
func TestServingStatsAdd(t *testing.T) {
	a := ServingStats{Requests: 1, CacheHits: 2, PushEpoch: 5, StalenessMax: 1, PushEpochLag: 3}
	b := ServingStats{Requests: 2, CacheHits: 3, PushEpoch: 4, StalenessMax: 2, PushEpochLag: 1}
	got := a.Add(b)
	if got.Requests != 3 || got.CacheHits != 5 || got.PushEpoch != 5 || got.StalenessMax != 2 {
		t.Fatalf("aggregate %+v", got)
	}
	if got.PushEpochLag != 3 {
		t.Fatalf("push epoch lag should take the max, got %+v", got)
	}
}

// TestRawPredictCodec round-trips the raw predict frames and rejects
// hostile-peer payloads whose counts do not account for the bytes.
func TestRawPredictCodec(t *testing.T) {
	req := PredictRequest{Counts: []uint32{3, 0, 1}, Keys: []keys.Key{9, 8, 7, 6}}
	frame := appendRawPredictReq(nil, req)
	got, err := parseRawPredictReq(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Counts) != 3 || got.Counts[0] != 3 || len(got.Keys) != 4 || got.Keys[3] != 6 {
		t.Fatalf("decoded %+v", got)
	}
	// Truncate a key: the counts no longer account for the payload.
	if _, err := parseRawPredictReq(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated predict request parsed")
	}
	scores := []float32{0.25, 0.5, 1.5}
	body := appendRawScores(nil, scores)
	back, err := parseRawScores(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if back[i] != scores[i] {
			t.Fatalf("score %d: %v != %v", i, back[i], scores[i])
		}
	}
	if _, err := parseRawScores(body[:len(body)-2]); err == nil {
		t.Fatal("truncated score body parsed")
	}
}
