package cluster

import (
	"fmt"

	"hps/internal/keys"
)

// This file defines the online-serving RPC surface: the Predict operation a
// shard server answers while training pushes keep flowing in, plus the
// control-plane operations the driver uses to activate and observe serving.
// The handler interfaces follow the same optional-interface pattern as the
// training handlers in topology.go: a TCPServer probes its handler for them
// and rejects the operations it does not implement.

// PredictRequest is one batched inference request: Counts[i] features for
// example i, all feature keys concatenated in Keys (the CSR layout the raw
// predict frame carries). An example may legitimately have zero features.
type PredictRequest struct {
	// Counts is the per-example feature count.
	Counts []uint32
	// Keys holds every example's feature keys, concatenated in example order.
	Keys []keys.Key
}

// Examples returns the number of examples in the request.
func (r PredictRequest) Examples() int { return len(r.Counts) }

// Validate rejects requests whose counts do not account for the flat key
// slice exactly — the request may have crossed the wire from a hostile peer.
func (r PredictRequest) Validate() error {
	total := 0
	for _, c := range r.Counts {
		total += int(c)
		if total > len(r.Keys) {
			break
		}
	}
	if total != len(r.Keys) {
		return fmt.Errorf("cluster: predict counts sum to %d but %d keys given", total, len(r.Keys))
	}
	return nil
}

// PredictHandler serves online inference against the live, still-training
// parameters. Implementations must be safe for concurrent use and should
// return *OverloadError when their admission queue is full, so the rejection
// crosses the wire as a typed, retryable error instead of a generic failure.
type PredictHandler interface {
	// HandlePredict scores every example of the request and returns one
	// click probability per example, in request order.
	HandlePredict(req PredictRequest) ([]float32, error)
}

// ServeConfig activates (or refreshes) the serving tier on a shard server.
// The driver sends the full form — peer addresses plus the dense tower —
// once at startup, then republishes just the dense parameters after every
// push epoch so served scores track the training run.
type ServeConfig struct {
	// Addrs maps every shard id to its address, so the shard can pull
	// remote-owned embeddings from its peers. Nil after the first call.
	Addrs map[int]string
	// Dense is the flattened dense-tower parameters (nn.FlattenParams order).
	Dense []float32
	// Epoch is the training push epoch the dense parameters belong to; the
	// shard reports serving staleness against it.
	Epoch uint64
	// TrainedEpoch is the trainer's trained-batch watermark when this config
	// was published. With async push it runs ahead of Epoch by the pushes
	// still parked in the trainer's committer; shards report the gap between
	// it and their own applied-push clock as PushEpochLag — the freshness
	// cost of the asynchronous pipeline, surfaced to serving.
	TrainedEpoch uint64
}

// ServeConfigHandler receives serving-tier configuration from the driver.
type ServeConfigHandler interface {
	HandleServeConfig(cfg ServeConfig) error
}

// ServingStats summarizes a shard server's serving-tier activity: the
// counters behind the report's QPS/hit-rate/staleness section.
type ServingStats struct {
	// Requests / Examples count served predict RPCs and the examples they
	// scored; Rejected counts admission-queue rejections.
	Requests, Examples, Rejected int64
	// Coalesced counts requests that were scored as part of a larger merged
	// batch (request coalescing under load).
	Coalesced int64
	// LocalKeys counts embedding reads served from this shard's own MEM-PS.
	LocalKeys int64
	// CacheHits / CacheMisses count hot-key replica cache lookups for
	// remote-owned embeddings.
	CacheHits, CacheMisses int64
	// PeerFetches / PeerKeys count the lookup RPCs (and keys) that went to
	// peer shards on replica-cache misses.
	PeerFetches, PeerKeys int64
	// Degraded counts peer fetches that failed (owner down or unreachable)
	// and were answered from stale hot-key replica rows instead.
	Degraded int64
	// FailedOver counts peer fetches whose primary was unreachable but whose
	// keys were answered fresh by their backup shards — the replicated
	// deployments' alternative to a Degraded (stale) answer.
	FailedOver int64
	// PushEpoch is how many training pushes this shard has applied;
	// DenseEpoch is the epoch of the dense replica it scores with.
	PushEpoch, DenseEpoch uint64
	// StalenessMax is the largest push-epoch lag of the dense replica
	// observed at scoring time (bounded by one epoch when the driver
	// republishes after every push).
	StalenessMax uint64
	// PushEpochLag is how many batches the trainer has trained beyond the
	// pushes this shard has applied (trained watermark minus PushEpoch) — 0
	// in synchronous mode, bounded by pipeline depth-1 plus the push-lag
	// budget in async-push mode.
	PushEpochLag uint64
}

// Add returns the element-wise aggregate of two shards' serving stats
// (epochs and staleness take the max — they are watermarks, not counters).
func (s ServingStats) Add(o ServingStats) ServingStats {
	s.Requests += o.Requests
	s.Examples += o.Examples
	s.Rejected += o.Rejected
	s.Coalesced += o.Coalesced
	s.LocalKeys += o.LocalKeys
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.PeerFetches += o.PeerFetches
	s.PeerKeys += o.PeerKeys
	s.Degraded += o.Degraded
	s.FailedOver += o.FailedOver
	s.PushEpoch = max(s.PushEpoch, o.PushEpoch)
	s.DenseEpoch = max(s.DenseEpoch, o.DenseEpoch)
	s.StalenessMax = max(s.StalenessMax, o.StalenessMax)
	s.PushEpochLag = max(s.PushEpochLag, o.PushEpochLag)
	return s
}

// CacheHitRate returns the replica-cache hit rate, or 0 when nothing was
// looked up.
func (s ServingStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ServingStatsHandler reports a shard's serving-tier counters.
type ServingStatsHandler interface {
	ServingStats() ServingStats
}
