package cluster_test

import (
	"errors"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

const remoteDim = 8

// newShardMemPS builds a single-shard MEM-PS (backed by a fresh SSD-PS) of
// the kind a shard server process hosts.
func newShardMemPS(t *testing.T) *memps.MemPS {
	t.Helper()
	dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: remoteDim, ParamsPerFile: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := memps.New(memps.Config{
		Dim:        remoteDim,
		Topology:   cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		Store:      store,
		LRUEntries: 1024,
		LFUEntries: 1024,
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRemoteTierConformance runs the shared ps.Tier suite against a
// RemoteTier reaching a MEM-PS shard over real TCP sockets: the remote view
// must keep the serving tier's semantics (create-on-pull, durable evict).
func TestRemoteTierConformance(t *testing.T) {
	conformance.Run(t, conformance.Harness{
		Dim:          remoteDim,
		Shard:        ps.NoShard,
		PullCreates:  true,
		EvictDurable: true,
		Concurrent:   true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			m := newShardMemPS(t)
			srv, err := cluster.ServeTCP("127.0.0.1:0", m)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			tr := cluster.NewTCPTransport(map[int]string{0: srv.Addr()}, remoteDim)
			t.Cleanup(tr.Close)
			tier := cluster.NewRemoteTier(tr, 0)
			if _, err := tier.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: ks}); err != nil {
				t.Fatal(err)
			}
			return tier
		},
	})
}

// TestServeTierExposesAnyTier checks the generic ps.Tier adapter: a bare
// SSD-PS served behind ServeTier answers pull/push/evict/stats over the wire.
func TestServeTierExposesAnyTier(t *testing.T) {
	dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: remoteDim, ParamsPerFile: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.ServeTier("127.0.0.1:0", store, cluster.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := cluster.NewTCPTransport(map[int]string{0: srv.Addr()}, remoteDim)
	defer tr.Close()
	tier := cluster.NewRemoteTier(tr, 0)

	delta := embedding.NewValue(remoteDim)
	delta.Weights[0] = 4.5
	if err := tier.Push(ps.PushRequest{Deltas: map[keys.Key]*embedding.Value{7: delta}}); err != nil {
		t.Fatal(err)
	}
	res, err := tier.Pull(ps.PullRequest{Keys: []keys.Key{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[7].Weights[0] != 4.5 {
		t.Fatalf("remote ssd-ps pull = %v", res)
	}
	info, err := tier.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "ssd-ps" || info.Stats.Pushes == 0 {
		t.Fatalf("remote stats = %+v", info)
	}
	if n, err := tier.Evict([]keys.Key{7}); err != nil || n != 1 {
		t.Fatalf("remote evict = (%d, %v)", n, err)
	}
}

// TestTCPTransportTypedErrors checks that callers can tell retryable network
// failures from shard-side failures without string matching.
func TestTCPTransportTypedErrors(t *testing.T) {
	m := newShardMemPS(t)
	srv, err := cluster.ServeTCP("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	tr := cluster.NewTCPTransport(map[int]string{0: addr, 1: addr}, remoteDim)
	defer tr.Close()
	tr.SetRetryPolicy(cluster.RetryPolicy{Attempts: 2, Backoff: time.Millisecond})

	// Shard-side failure: the MEM-PS rejects pulls for keys it does not own
	// (impossible in a 1-node topology, so use a push of a nil value instead:
	// well-formed transport, failing handler). Easier: pull via an unknown
	// node id is a configuration error, not retryable.
	if _, _, err := tr.Pull(9, []keys.Key{1}); !errors.Is(err, cluster.ErrUnknownNode) {
		t.Fatalf("unknown node error = %v, want ErrUnknownNode", err)
	} else if cluster.Retryable(err) {
		t.Fatal("unknown node must not be retryable")
	}

	// Network failure: server gone, nothing listening.
	if _, _, err := tr.Pull(0, []keys.Key{1}); err != nil {
		t.Fatalf("pull against live server: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = tr.Pull(1, []keys.Key{2})
	if err == nil {
		t.Fatal("pull against a dead server should fail")
	}
	var te *cluster.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("dead-server error = %T (%v), want *TransportError", err, err)
	}
	if te.Node != 1 || te.Op != "pull" || te.Attempts != 2 {
		t.Fatalf("transport error fields = %+v", te)
	}
	if !cluster.Retryable(err) {
		t.Fatal("network failure must be retryable")
	}
}

// TestTCPTransportReconnects is the transport-level fault injection: the
// shard server dies mid-stream and comes back (same address, same shard
// state, same dedup tracker); the client's retry policy must ride the outage
// out, and the shard's parameters must come back uncorrupted.
func TestTCPTransportReconnects(t *testing.T) {
	m := newShardMemPS(t)
	seqs := cluster.NewSeqTracker()
	srv, err := cluster.ServeTCPOptions("127.0.0.1:0", m, cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	tr := cluster.NewTCPTransport(map[int]string{0: addr}, remoteDim)
	defer tr.Close()
	tr.SetRetryPolicy(cluster.RetryPolicy{Attempts: 6, Backoff: 5 * time.Millisecond})

	ks := []keys.Key{1, 2, 3, 4}
	before, _, err := tr.Pull(0, ks)
	if err != nil {
		t.Fatal(err)
	}
	delta := embedding.NewValue(remoteDim)
	delta.Weights[0] = 1.25
	if _, err := tr.Push(0, map[keys.Key]*embedding.Value{ks[0]: delta}); err != nil {
		t.Fatal(err)
	}

	// Kill the server: established connections die with it.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart on the same address with the same shard state and tracker,
	// while the client is already mid-retry.
	done := make(chan error, 1)
	go func() {
		after, _, err := tr.Pull(0, ks)
		if err != nil {
			done <- err
			return
		}
		for i, k := range ks {
			want := before[k].Weights[0]
			if i == 0 {
				want += 1.25
			}
			if after[k].Weights[0] != want {
				done <- errors.New("parameters corrupted across the reconnect")
				return
			}
		}
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond)
	srv2, err := cluster.ServeTCPOptions(addr, m, cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := tr.Stats(); st.Retries == 0 || st.Redials == 0 {
		t.Fatalf("reconnect must show in transport stats: %+v", st)
	}
}

// TestDistinctPushesBothApply checks that push dedup only swallows true
// duplicates: two separate pushes of the same delta must both apply. (The
// duplicate-frame case itself is covered by the internal wire tests, which
// can replay a frame with an already-used sequence number.)
func TestDistinctPushesBothApply(t *testing.T) {
	m := newShardMemPS(t)
	srv, err := cluster.ServeTCP("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := cluster.NewTCPTransport(map[int]string{0: srv.Addr()}, remoteDim)
	defer tr.Close()

	k := keys.Key(5)
	base, _, err := tr.Pull(0, []keys.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	delta := embedding.NewValue(remoteDim)
	delta.Weights[0] = 2
	for i := 0; i < 2; i++ {
		if _, err := tr.Push(0, map[keys.Key]*embedding.Value{k: delta}); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Pull(0, []keys.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	want := base[k].Weights[0] + 2 + 2
	if got[k].Weights[0] != want {
		t.Fatalf("after two pushes weight = %g, want %g", got[k].Weights[0], want)
	}
}
