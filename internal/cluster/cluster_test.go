package cluster

import (
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Nodes: 4, GPUsPerNode: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Topology{Nodes: 0, GPUsPerNode: 8}).Validate(); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if err := (Topology{Nodes: 1, GPUsPerNode: 0}).Validate(); err == nil {
		t.Fatal("zero GPUs should fail")
	}
	if (Topology{Nodes: 4, GPUsPerNode: 8}).TotalGPUs() != 32 {
		t.Fatal("TotalGPUs wrong")
	}
}

func TestTopologySharding(t *testing.T) {
	topo := Topology{Nodes: 4, GPUsPerNode: 8}
	ks := make([]keys.Key, 1000)
	for i := range ks {
		ks[i] = keys.Key(keys.Mix64(uint64(i)))
	}
	byNode := topo.SplitByNode(ks)
	if len(byNode) != 4 {
		t.Fatal("SplitByNode length")
	}
	total := 0
	for node, part := range byNode {
		total += len(part)
		for _, k := range part {
			if topo.NodeOf(k) != node {
				t.Fatal("key assigned to wrong node")
			}
		}
	}
	if total != len(ks) {
		t.Fatal("SplitByNode lost keys")
	}
	byGPU := topo.SplitByGPU(ks)
	if len(byGPU) != 8 {
		t.Fatal("SplitByGPU length")
	}
	total = 0
	for g, part := range byGPU {
		total += len(part)
		for _, k := range part {
			if topo.GPUOf(k) != g {
				t.Fatal("key assigned to wrong GPU")
			}
		}
	}
	if total != len(ks) {
		t.Fatal("SplitByGPU lost keys")
	}
}

func TestTopologyShardingProperty(t *testing.T) {
	topo := Topology{Nodes: 3, GPUsPerNode: 4}
	f := func(raw uint64) bool {
		k := keys.Key(raw)
		n := topo.NodeOf(k)
		g := topo.GPUOf(k)
		return n >= 0 && n < 3 && g >= 0 && g < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mapHandler is a PullHandler backed by a plain map for tests.
type mapHandler struct {
	mu   sync.Mutex
	dim  int
	vals map[keys.Key]*embedding.Value
	err  error
}

func newMapHandler(dim int) *mapHandler {
	return &mapHandler{dim: dim, vals: make(map[keys.Key]*embedding.Value)}
}

func (h *mapHandler) HandlePull(ks []keys.Key) (PullResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, h.err
	}
	out := make(PullResult, len(ks))
	for _, k := range ks {
		v, ok := h.vals[k]
		if !ok {
			v = embedding.NewValue(h.dim)
			v.Weights[0] = float32(k)
			h.vals[k] = v
		}
		out[k] = v
	}
	return out, nil
}

func TestLocalTransport(t *testing.T) {
	tr := NewLocalTransport(4)
	h0 := newMapHandler(4)
	h1 := newMapHandler(4)
	tr.Register(0, h0)
	tr.Register(1, h1)
	if len(tr.Nodes()) != 2 {
		t.Fatal("Nodes wrong")
	}
	res, bytes, err := tr.Pull(1, []keys.Key{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[10].Weights[0] != 10 {
		t.Fatalf("pull result = %v", res)
	}
	if bytes != PayloadBytes(2, res, 4) || bytes <= 0 {
		t.Fatalf("payload bytes = %d", bytes)
	}
	if _, _, err := tr.Pull(9, []keys.Key{1}); err == nil {
		t.Fatal("pull from unregistered node should fail")
	}
	h1.err = errors.New("backend broken")
	if _, _, err := tr.Pull(1, []keys.Key{1}); err == nil {
		t.Fatal("handler error should propagate")
	}
}

func TestPayloadBytes(t *testing.T) {
	res := PullResult{1: embedding.NewValue(4), 2: embedding.NewValue(4)}
	got := PayloadBytes(3, res, 4)
	want := int64(3*8 + 2*(8+embedding.EncodedSize(4)))
	if got != want {
		t.Fatalf("PayloadBytes = %d, want %d", got, want)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	h := newMapHandler(4)
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := NewTCPTransport(map[int]string{1: srv.Addr()}, 4)
	defer tr.Close()

	res, bytes, err := tr.Pull(1, []keys.Key{7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("pull returned %d values", len(res))
	}
	if res[7].Weights[0] != 7 {
		t.Fatal("value payload corrupted over TCP")
	}
	if bytes <= 0 {
		t.Fatal("payload bytes should be positive")
	}
	// Second pull reuses the connection.
	if _, _, err := tr.Pull(1, []keys.Key{100}); err != nil {
		t.Fatal(err)
	}
	// Unknown node fails.
	if _, _, err := tr.Pull(42, []keys.Key{1}); err == nil {
		t.Fatal("unknown node should fail")
	}
}

func TestTCPTransportConcurrentPulls(t *testing.T) {
	h := newMapHandler(2)
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 2)
	defer tr.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := keys.Key(seed*100 + i)
				res, _, err := tr.Pull(0, []keys.Key{k})
				if err != nil {
					errs <- err
					return
				}
				if res[k].Weights[0] != float32(k) {
					errs <- errors.New("wrong value")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// wireHandler wraps mapHandler with the zero-intermediate pull-block path,
// encoding rows straight into the frame buffer.
type wireHandler struct {
	*mapHandler
	calls int
	fail  bool
}

func (h *wireHandler) HandlePullBlockWire(ks []keys.Key, dst []byte, prec ps.Precision) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	if h.fail {
		return dst, errors.New("wire handler broken")
	}
	dst = ps.AppendWireHeaderPrecision(dst, h.dim, len(ks), prec)
	for _, k := range ks {
		v, ok := h.vals[k]
		if !ok {
			v = embedding.NewValue(h.dim)
			v.Weights[0] = float32(k)
			h.vals[k] = v
		}
		dst = ps.AppendWireRowPrecision(dst, true, v.Freq, v.Weights, v.G2Sum, prec)
	}
	return dst, nil
}

// TestTCPPullBlockPrefersWireHandler asserts the server serves pull-block
// RPCs through BlockPullWireHandler when the handler offers it, and that the
// frames it produces decode identically to the staged block path.
func TestTCPPullBlockPrefersWireHandler(t *testing.T) {
	h := &wireHandler{mapHandler: newMapHandler(4)}
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 4)
	defer tr.Close()

	ks := []keys.Key{5, 6, 7}
	blk := ps.NewValueBlock(4)
	if _, err := tr.PullBlock(0, ks, blk); err != nil {
		t.Fatal(err)
	}
	if h.calls == 0 {
		t.Fatal("server did not use the wire handler")
	}
	if blk.Len() != 3 || blk.PresentCount() != 3 || blk.WeightsRow(1)[0] != 6 {
		t.Fatalf("wire-served block = keys %v present %v w %v", blk.Keys, blk.Present, blk.Weights)
	}

	// A wire-handler error surfaces like any handler error, and the
	// connection stays usable afterwards.
	h.mu.Lock()
	h.fail = true
	h.mu.Unlock()
	if _, err := tr.PullBlock(0, ks, blk); err == nil {
		t.Fatal("wire handler error should surface at the client")
	}
	h.mu.Lock()
	h.fail = false
	h.mu.Unlock()
	if _, err := tr.PullBlock(0, ks, blk); err != nil {
		t.Fatal(err)
	}
}

func TestTCPServerHandlerError(t *testing.T) {
	h := newMapHandler(2)
	h.err = errors.New("storage offline")
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[int]string{0: srv.Addr()}, 2)
	defer tr.Close()
	if _, _, err := tr.Pull(0, []keys.Key{1}); err == nil {
		t.Fatal("handler error should surface at the client")
	}
}

// TestRPCDeadlineSurfacesStalledShard covers the ROADMAP-flagged hang: a
// shard that accepts the connection (and even reads the request) but never
// answers must fail the RPC within the per-RPC deadline as a retryable
// TransportError, not block it forever.
func TestRPCDeadlineSurfacesStalledShard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				// Drain whatever arrives, answer nothing: alive, stalled.
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}(conn)
		}
	}()

	tr := NewTCPTransport(map[int]string{0: ln.Addr().String()}, 2)
	defer tr.Close()
	tr.SetRetryPolicy(RetryPolicy{Attempts: 2, Backoff: time.Millisecond, RPCTimeout: 50 * time.Millisecond})

	start := time.Now()
	_, _, err = tr.Pull(0, []keys.Key{1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("pull against a stalled shard must fail")
	}
	if !Retryable(err) {
		t.Fatalf("stall must surface as a retryable TransportError, got %T: %v", err, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the stall: took %v", elapsed)
	}
	if st := tr.Stats(); st.Retries == 0 {
		t.Fatalf("expected the stalled RPC to be retried, stats = %+v", st)
	}
}

// TestRPCDeadlineDefaultsApplied asserts the zero-value policy fields resolve
// to the bounded defaults (a stalled shard must never hang by default) and
// that negative values opt out.
func TestRPCDeadlineDefaultsApplied(t *testing.T) {
	var p RetryPolicy
	if p.dial() != DefaultDialTimeout || p.rpc() != DefaultRPCTimeout {
		t.Fatalf("zero policy deadlines = %v/%v, want defaults", p.dial(), p.rpc())
	}
	p = RetryPolicy{DialTimeout: -1, RPCTimeout: -1}
	if p.dial() != 0 || p.rpc() != 0 {
		t.Fatalf("negative policy deadlines = %v/%v, want unbounded", p.dial(), p.rpc())
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newMapHandler(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestServeTCPValidation(t *testing.T) {
	if _, err := ServeTCP("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler should fail")
	}
	if _, err := ServeTCP("999.999.999.999:99999", newMapHandler(2)); err == nil {
		t.Fatal("bad address should fail")
	}
}
