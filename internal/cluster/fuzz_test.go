package cluster

import (
	"bytes"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// FuzzWireCodec feeds arbitrary bytes through the frame reader on both the
// request (server) and response (client) paths, and — interpreting the same
// bytes as a raw payload — through the raw dispatch, in every negotiated
// precision. The codec faces the network, so a malformed, truncated, or
// hostile frame must come back as an error — never a panic or a runaway
// allocation. Frames that do decode must pass request validation before a
// handler would see them, and semantically valid requests must survive the
// full server dispatch.
func FuzzWireCodec(f *testing.F) {
	// Seed with well-formed frames of every operation so the fuzzer mutates
	// from the real wire format, not just noise.
	seed := func(req *wireRequest) {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	v := embedding.NewValue(4)
	v.Weights[0] = 1.5
	seed(&wireRequest{Op: opPull, Keys: []keys.Key{1, 2, 3}})
	seed(&wireRequest{Op: opPush, Client: 7, Seq: 1, Keys: []keys.Key{9}, Values: []*embedding.Value{v}})
	seed(&wireRequest{Op: opEvict, All: true})
	seed(&wireRequest{Op: opStats})
	seed(&wireRequest{Op: opLookup, Keys: []keys.Key{4}})
	seed(&wireRequest{Op: opPullBlock, Keys: []keys.Key{1, 2}})
	blk := ps.NewValueBlock(4)
	blk.Reset(4, []keys.Key{9})
	blk.Set(0, v)
	seed(&wireRequest{Op: opPushBlock, Client: 7, Seq: 2, Keys: []keys.Key{9}, Block: blk.AppendWire(nil)})
	var respBuf bytes.Buffer
	resp := &wireResponse{Keys: []keys.Key{1}, Values: []*embedding.Value{v}, Name: "mem-ps"}
	if _, err := writeFrame(&respBuf, resp); err != nil {
		f.Fatal(err)
	}
	f.Add(respBuf.Bytes())
	f.Add([]byte{0, 0, 0, 1, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Raw payloads (no stream prefix: dispatchRaw consumes payloads), one per
	// op, with push bodies in each precision so the quantized row decoders see
	// mutated input too.
	f.Add([]byte{rawOpHello, rawWireVersion, byte(ps.PrecisionFP16), 0})
	f.Add(appendRawPullReq(nil, []keys.Key{2, 4, 6}))
	for _, p := range []ps.Precision{ps.PrecisionFP32, ps.PrecisionFP16, ps.PrecisionInt8} {
		f.Add(blk.AppendWirePrecision(appendRawPushReq(nil, 7, 3, []keys.Key{9}), p))
	}

	srv := &TCPServer{seqs: NewSeqTracker(), handler: fuzzHandler{}}

	f.Fuzz(func(t *testing.T, data []byte) {
		var req wireRequest
		if _, err := readFrame(bytes.NewReader(data), &req); err == nil {
			if req.validate() == nil {
				// A frame that decodes and validates must dispatch without
				// panicking, and the reply must encode.
				var out bytes.Buffer
				resp, release := srv.dispatch(&req)
				_, err := writeFrame(&out, resp)
				if release != nil {
					release()
				}
				if err != nil {
					t.Fatalf("response for valid request failed to encode: %v", err)
				}
			}
		}
		var wresp wireResponse
		if _, err := readFrame(bytes.NewReader(data), &wresp); err == nil {
			_ = wresp.result() // must tolerate inconsistent key/value slices
		}
		// The same bytes as a raw payload, against every negotiated precision:
		// dispatchRaw must always produce a well-formed response frame.
		if len(data) > 0 && len(data) <= MaxFrameBytes {
			for _, p := range []ps.Precision{ps.PrecisionFP32, ps.PrecisionFP16, ps.PrecisionInt8} {
				prec := p
				out, buf := srv.dispatchRaw(data, &prec)
				if len(out) < 8 {
					t.Fatalf("raw dispatch produced a %d-byte frame", len(out))
				}
				*buf = out[:0]
				putScratch(buf)
			}
		}
		// And through the client-side raw response path: a pull reply body cut
		// from (or mutated into) arbitrary bytes must fail decode cleanly.
		if len(data) >= 4 {
			dst := ps.NewValueBlock(0)
			_ = dst.DecodeWire([]keys.Key{1, 2}, data[4:])
		}
	})
}

// fuzzHandler implements every server-side interface with tiny, total
// functions so dispatch reaches all operation arms.
type fuzzHandler struct{}

func (fuzzHandler) HandlePull(ks []keys.Key) (PullResult, error) {
	out := make(PullResult, len(ks))
	for _, k := range ks {
		out[k] = embedding.NewValue(2)
	}
	return out, nil
}
func (fuzzHandler) HandlePush(map[keys.Key]*embedding.Value) error { return nil }
func (fuzzHandler) HandleLookup(ks []keys.Key) (PullResult, error) { return make(PullResult), nil }
func (fuzzHandler) Evict(ks []keys.Key) (int, error)               { return len(ks), nil }
func (fuzzHandler) Name() string                                   { return "fuzz" }
func (fuzzHandler) TierStats() ps.Stats                            { return ps.Stats{} }
