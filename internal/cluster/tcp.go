package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"hps/internal/embedding"
	"hps/internal/keys"
)

// pullRequest is the wire format of a parameter pull.
type pullRequest struct {
	Keys []keys.Key
}

// pullResponse is the wire format of a pull reply.
type pullResponse struct {
	Keys   []keys.Key
	Values []*embedding.Value
	Err    string
}

// TCPServer serves parameter pulls for one node over TCP. The paper's nodes
// exchange MEM-PS parameters over the data-center network; this server plays
// that role when the simulated nodes run as separate processes.
type TCPServer struct {
	ln      net.Listener
	handler PullHandler

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts serving pulls on addr (e.g. "127.0.0.1:0") using handler.
func ServeTCP(addr string, handler PullHandler) (*TCPServer, error) {
	if handler == nil {
		return nil, errors.New("cluster: nil pull handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for in-flight connections to finish.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req pullRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp pullResponse
		result, err := s.handler.HandlePull(req.Keys)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Keys = make([]keys.Key, 0, len(result))
			resp.Values = make([]*embedding.Value, 0, len(result))
			for k, v := range result {
				resp.Keys = append(resp.Keys, k)
				resp.Values = append(resp.Values, v)
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// TCPTransport pulls parameters from remote nodes over TCP, holding one
// persistent connection per peer. It is safe for concurrent use.
type TCPTransport struct {
	dim   int
	mu    sync.Mutex
	addrs map[int]string
	conns map[int]*tcpConn
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPTransport creates a transport that reaches node i at addrs[i].
func NewTCPTransport(addrs map[int]string, dim int) *TCPTransport {
	copied := make(map[int]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPTransport{dim: dim, addrs: copied, conns: make(map[int]*tcpConn)}
}

func (t *TCPTransport) conn(nodeID int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[nodeID]; ok {
		return c, nil
	}
	addr, ok := t.addrs[nodeID]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %d", nodeID)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial node %d (%s): %w", nodeID, addr, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	t.conns[nodeID] = c
	return c, nil
}

// Pull implements Transport.
func (t *TCPTransport) Pull(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	c, err := t.conn(nodeID)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&pullRequest{Keys: ks}); err != nil {
		t.dropConn(nodeID)
		return nil, 0, fmt.Errorf("cluster: send pull to node %d: %w", nodeID, err)
	}
	var resp pullResponse
	if err := c.dec.Decode(&resp); err != nil {
		t.dropConn(nodeID)
		return nil, 0, fmt.Errorf("cluster: receive pull from node %d: %w", nodeID, err)
	}
	if resp.Err != "" {
		return nil, 0, fmt.Errorf("cluster: node %d: %s", nodeID, resp.Err)
	}
	result := make(PullResult, len(resp.Keys))
	for i, k := range resp.Keys {
		if i < len(resp.Values) {
			result[k] = resp.Values[i]
		}
	}
	return result, PayloadBytes(len(ks), result, t.dim), nil
}

func (t *TCPTransport) dropConn(nodeID int) {
	t.mu.Lock()
	if c, ok := t.conns[nodeID]; ok {
		c.conn.Close()
		delete(t.conns, nodeID)
	}
	t.mu.Unlock()
}

// Close closes every open connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, c := range t.conns {
		c.conn.Close()
		delete(t.conns, id)
	}
}
