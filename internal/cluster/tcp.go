package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// SeqTracker deduplicates pushes retried across reconnects: the transport
// stamps every push with a (client, sequence) pair, and the tracker remembers
// which sequences each client has already had applied. A push that arrives
// again after a connection drop — the reply was lost but the deltas were
// already merged — is acknowledged without being re-applied, which is what
// keeps at-least-once delivery from turning into twice-applied gradients.
// The server records a sequence only after the apply succeeds (see forget),
// so a push whose apply failed is re-applied, not falsely acked, on retry.
//
// Sequences from one client may arrive out of order (concurrent pushes race
// for the connection), so the tracker keeps an explicit seen-set over a
// sliding window rather than a high-water mark; sequences that have fallen
// out of the window (seqWindow outstanding pushes behind the newest) are
// treated as duplicates.
//
// The tracker belongs to the shard state, not to one server instance: pass
// the same tracker to every ServeTCP incarnation serving the same shard so
// dedup survives a server restart.
type SeqTracker struct {
	mu      sync.Mutex
	clients map[uint64]*clientSeqs
	// tick is a monotonic activity counter; every fresh call stamps the
	// client, so eviction at the maxClients cap can pick the
	// least-recently-active client instead of an arbitrary one.
	tick uint64
	// log, when attached, persists applied records so dedup survives a
	// process restart (see AttachLog / Commit).
	log *SeqLog
}

type clientSeqs struct {
	max    uint64
	seen   map[uint64]struct{}
	active uint64 // tracker tick of this client's latest push
}

// seqWindow bounds the per-client seen-set: a sequence more than this many
// behind the newest is assumed to be a stale duplicate. Pushes are
// effectively synchronous per batch, so thousands of outstanding sequences
// per client is far beyond any real pipeline depth.
const seqWindow = 4096

// maxClients bounds the tracker across driver restarts (every transport has
// a fresh random client id): beyond this many clients, state for other —
// almost certainly dead — clients is dropped. Dedup is therefore guaranteed
// for up to maxClients concurrently-live clients, far beyond one driver plus
// stragglers.
const maxClients = 256

// NewSeqTracker returns an empty tracker.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{clients: make(map[uint64]*clientSeqs)}
}

// fresh reports whether (client, seq) has not been applied yet, recording it
// as applied when it is fresh. Sequence 0 (non-push traffic) is always fresh.
func (s *SeqTracker) fresh(client, seq uint64) bool {
	if s == nil || seq == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	cs, ok := s.clients[client]
	if !ok {
		for len(s.clients) >= maxClients {
			// Evict the least-recently-active client: an arbitrary choice
			// could drop a live client's dedup state and re-admit a duplicate
			// push it retries moments later.
			var (
				victim uint64
				oldest = ^uint64(0)
			)
			for other, ocs := range s.clients {
				if ocs.active < oldest {
					victim, oldest = other, ocs.active
				}
			}
			delete(s.clients, victim)
		}
		cs = &clientSeqs{seen: make(map[uint64]struct{})}
		s.clients[client] = cs
	}
	cs.active = s.tick
	if cs.max >= seqWindow && seq <= cs.max-seqWindow {
		return false // fell out of the window: stale duplicate
	}
	if _, dup := cs.seen[seq]; dup {
		return false
	}
	cs.seen[seq] = struct{}{}
	if seq > cs.max {
		cs.max = seq
	}
	// Prune lazily, only once the set outgrows the window: a full scan per
	// push would make the hot path O(seqWindow).
	if len(cs.seen) > seqWindow && cs.max >= seqWindow {
		for old := range cs.seen {
			if old <= cs.max-seqWindow {
				delete(cs.seen, old)
			}
		}
	}
	return true
}

// forget withdraws a sequence recorded by fresh, after its apply failed: the
// client's retry must re-apply the push, not be acked as a duplicate of an
// apply that never happened.
func (s *SeqTracker) forget(client, seq uint64) {
	if s == nil || seq == 0 {
		return
	}
	s.mu.Lock()
	if cs, ok := s.clients[client]; ok {
		delete(cs.seen, seq)
	}
	s.mu.Unlock()
}

// AttachLog makes the tracker persist every committed record to l, so dedup
// survives a process restart (reload the log into a fresh tracker with
// OpenSeqLog). A nil log detaches.
func (s *SeqTracker) AttachLog(l *SeqLog) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// snapshotRecords collects every (client, seq) pair still inside the dedup
// window — the live content a compacted log must keep. Records older than
// the window are refused as stale duplicates by fresh regardless of the log,
// so dropping them loses nothing.
func (s *SeqTracker) snapshotRecords() [][2]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][2]uint64
	for client, cs := range s.clients {
		for seq := range cs.seen {
			out = append(out, [2]uint64{client, seq})
		}
	}
	return out
}

// CompactLog rewrites the attached log down to the records still inside the
// dedup window; see SeqLog.Compact. The shard calls it after a checkpoint
// flush — the one moment the log is known to only need to cover pushes the
// flushed state has not yet made durable. Without an attached log it is a
// no-op. It returns the number of records kept.
func (s *SeqTracker) CompactLog() (int, error) {
	if s == nil {
		return 0, nil
	}
	s.mu.Lock()
	l := s.log
	s.mu.Unlock()
	if l == nil {
		return 0, nil
	}
	// The snapshot callback runs under the log's lock: commits racing with
	// the compaction either happened before it (fresh precedes commit, so the
	// tracker already holds them — they are in the snapshot) or block on the
	// lock and append to the rewritten file.
	return l.Compact(s.snapshotRecords)
}

// commit persists (client, seq) after its apply succeeded and before the ack
// is written. The order matters for exactly-once across a crash: a record
// appended before the apply would dedup — and therefore drop — the client's
// retry of a push that was never merged, while a record appended after the
// ack could miss a push the client will never resend. An append failure is
// deliberately swallowed: dedup degrades from crash-durable to
// process-lifetime, which is the pre-log behavior, not a correctness loss
// within this incarnation.
func (s *SeqTracker) commit(client, seq uint64) {
	if s == nil || seq == 0 {
		return
	}
	s.mu.Lock()
	l := s.log
	s.mu.Unlock()
	if l != nil {
		l.Append(client, seq)
	}
}

// ServerOptions tune a TCPServer beyond its handler.
type ServerOptions struct {
	// Seqs is the push-dedup tracker shared across server restarts; nil
	// creates a fresh one (pushes retried across a restart of this server
	// then re-apply — pass a tracker to prevent that).
	Seqs *SeqTracker
}

// TCPServer serves the parameter RPCs of one node over TCP. The paper's
// nodes exchange MEM-PS parameters over the data-center network; this server
// plays that role when the nodes run as separate processes. The handler's
// optional interfaces (PushHandler, LookupHandler, EvictHandler,
// StatsHandler, and the serving-tier trio PredictHandler /
// ServeConfigHandler / ServingStatsHandler) decide which operations beyond
// pull the server supports.
type TCPServer struct {
	ln      net.Listener
	handler PullHandler
	seqs    *SeqTracker

	mu     sync.Mutex
	closed bool
	active map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts serving on addr (e.g. "127.0.0.1:0") using handler.
func ServeTCP(addr string, handler PullHandler) (*TCPServer, error) {
	return ServeTCPOptions(addr, handler, ServerOptions{})
}

// ServeTCPOptions is ServeTCP with explicit options.
func ServeTCPOptions(addr string, handler PullHandler, opts ServerOptions) (*TCPServer, error) {
	if handler == nil {
		return nil, errors.New("cluster: nil pull handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	seqs := opts.Seqs
	if seqs == nil {
		seqs = NewSeqTracker()
	}
	s := &TCPServer{ln: ln, handler: handler, seqs: seqs, active: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ServeTier exposes any ps.Tier behind ServeTCP: pulls, pushes, evicts and
// stats map straight onto the tier's own operations (lookups too — a plain
// tier's Pull already leaves missing keys absent).
func ServeTier(addr string, tier ps.Tier, opts ServerOptions) (*TCPServer, error) {
	if tier == nil {
		return nil, errors.New("cluster: nil tier")
	}
	return ServeTCPOptions(addr, &TierHandler{Tier: tier}, opts)
}

// Addr returns the address the server is listening on.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server: it stops accepting, severs every active
// connection (in-flight requests finish or fail; clients see a dropped
// connection and retry elsewhere or reconnect), and waits for the
// connection goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// track registers conn while the server is open; it reports false when the
// server is already closing (the connection must be dropped immediately).
func (s *TCPServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active[conn] = struct{}{}
	return true
}

func (s *TCPServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

func (s *TCPServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	// prec is the connection's negotiated pull-reply precision: fp32 until a
	// hello frame raises it, so gob-only clients (and raw clients that skip
	// the hello) always get bit-exact replies.
	prec := ps.PrecisionFP32
	for {
		n, raw, err := readFramePrefix(conn)
		if err != nil {
			// A clean EOF is the peer hanging up; anything else means the
			// stream is corrupt beyond recovery — either way, drop the
			// connection. The client reconnects and retries.
			return
		}
		if raw {
			scratch := getScratch()
			payload, err := readFramePayload(conn, n, scratch)
			if err != nil {
				putScratch(scratch)
				return
			}
			out, outBuf := s.dispatchRaw(payload, &prec)
			putScratch(scratch) // the request (and any body view into it) is consumed
			_, werr := writeRawFrame(conn, out)
			*outBuf = out[:0] // keep whatever the handler grew the frame to
			putScratch(outBuf)
			if werr != nil {
				return
			}
			continue
		}
		var req wireRequest
		scratch := getScratch()
		payload, err := readFramePayload(conn, n, scratch)
		if err == nil {
			err = decodeFrame(payload, &req)
		}
		putScratch(scratch)
		if err != nil {
			return
		}
		resp, release := s.dispatch(&req)
		_, werr := writeFrame(conn, resp)
		if release != nil {
			release() // resp may reference pooled buffers; free after the write
		}
		if werr != nil {
			return
		}
	}
}

// dispatchRaw executes one raw-framed request and returns the complete
// response frame (4-byte prefix placeholder included) in a pooled buffer; the
// caller writes it and returns the buffer to the pool. prec is the
// connection's negotiated pull-reply precision, updated by hello frames.
// Handler panics are contained exactly like gob dispatch, including the
// push-dedup withdrawal.
func (s *TCPServer) dispatchRaw(payload []byte, prec *ps.Precision) (frame []byte, buf *[]byte) {
	buf = getScratch()
	op := payload[0] // frames are never empty: the prefix check rejects length 0
	respOp := rawRespOp(op)
	frame = append((*buf)[:0], 0, 0, 0, 0) // length prefix placeholder
	fail := func(msg string) []byte {
		f := append(frame[:4], respOp, 1, 0, 0)
		return append(f, msg...)
	}
	var client, seq uint64
	var isPush bool
	defer func() {
		if r := recover(); r != nil {
			if isPush {
				s.seqs.forget(client, seq) // the apply did not complete
			}
			frame = fail(fmt.Sprintf("%s handler panicked: %v", rawOpName(op), r))
		}
	}()
	switch op {
	case rawOpHello:
		if len(payload) != 4 {
			return fail(fmt.Sprintf("malformed hello of %d bytes", len(payload))), buf
		}
		version := min(payload[1], rawWireVersion)
		p := ps.Precision(payload[2])
		if version < rawWireVersion || !p.Valid() {
			p = ps.PrecisionFP32
		}
		*prec = p
		return append(frame, rawOpHelloResp, 0, version, byte(p)), buf
	case rawOpPullBlock:
		ks, err := parseRawPullReq(payload)
		if err != nil {
			return fail(err.Error()), buf
		}
		frame = append(frame, rawOpPullBlockResp, 0, 0, 0)
		if h, ok := s.handler.(BlockPullWireHandler); ok {
			// Zero-intermediate path: the handler encodes its value rows
			// straight into the outgoing frame.
			out, err := h.HandlePullBlockWire(ks, frame, *prec)
			if err != nil {
				return fail(err.Error()), buf
			}
			return out, buf
		}
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if h, ok := s.handler.(BlockPullHandler); ok {
			if err := h.HandlePullBlock(ks, blk); err != nil {
				return fail(err.Error()), buf
			}
		} else {
			res, err := s.handler.HandlePull(ks)
			if err != nil {
				return fail(err.Error()), buf
			}
			ps.FillFromPull(blk, 0, ks, ps.Result(res))
		}
		return blk.AppendWirePrecision(frame, *prec), buf
	case rawOpPushBlock, rawOpReplicate:
		var ks []keys.Key
		var body []byte
		var err error
		client, seq, ks, body, err = parseRawPushReq(payload)
		if err != nil {
			return fail(err.Error()), buf
		}
		isPush = true
		frame = append(frame, respOp, 0, 0, 0)
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if err := blk.DecodeWire(ks, body); err != nil {
			return fail(err.Error()), buf
		}
		if !s.seqs.fresh(client, seq) {
			return frame, buf // duplicate of an already-applied push: ack, don't re-apply
		}
		if op == rawOpReplicate {
			// A replicated block carries the ORIGIN's dedup stamp: committing
			// it here is what makes the origin's own retry of the same push a
			// duplicate after this backup is promoted.
			h, ok := s.handler.(ReplicaPushHandler)
			if !ok {
				s.seqs.forget(client, seq)
				return fail("shard does not accept replicated pushes"), buf
			}
			err = h.HandleReplicate(blk)
		} else {
			switch h := s.handler.(type) {
			case StampedBlockPushHandler:
				err = h.HandlePushBlockStamped(client, seq, blk)
			case BlockPushHandler:
				err = h.HandlePushBlock(blk)
			case PushHandler:
				err = h.HandlePush(blk.Deltas())
			default:
				s.seqs.forget(client, seq)
				return fail("shard does not accept pushes"), buf
			}
		}
		if err != nil {
			s.seqs.forget(client, seq)
			return fail(err.Error()), buf
		}
		s.seqs.commit(client, seq) // applied: persist before the ack leaves
		return frame, buf
	case rawOpPredict:
		req, err := parseRawPredictReq(payload)
		if err != nil {
			return fail(err.Error()), buf
		}
		h, ok := s.handler.(PredictHandler)
		if !ok {
			return fail("shard does not serve predictions"), buf
		}
		scores, err := h.HandlePredict(req)
		if err != nil {
			var oe *OverloadError
			if errors.As(err, &oe) {
				// Admission rejection: a distinct status byte, so the client
				// rebuilds the typed, retryable error instead of a RemoteError.
				f := append(frame[:4], respOp, rawStatusOverloaded, 0, 0)
				return append(f, err.Error()...), buf
			}
			return fail(err.Error()), buf
		}
		frame = append(frame, rawOpPredictResp, rawStatusOK, 0, 0)
		return appendRawScores(frame, scores), buf
	}
	return fail(fmt.Sprintf("unknown raw operation %d", op)), buf
}

// dispatch executes one validated request against the handler. Handler
// panics are contained per request: a poisoned batch must not take the shard
// server (and every other client's parameters) down with it. The returned
// release function (may be nil) recycles buffers the response borrows; the
// caller runs it after the response has been written.
func (s *TCPServer) dispatch(req *wireRequest) (resp *wireResponse, release func()) {
	resp = &wireResponse{}
	if err := req.validate(); err != nil {
		resp.Err = err.Error()
		return resp, nil
	}
	defer func() {
		if r := recover(); r != nil {
			if req.Op == opPush || req.Op == opPushBlock || req.Op == opReplicate {
				s.seqs.forget(req.Client, req.Seq) // the apply did not complete
			}
			if release != nil {
				release()
				release = nil
			}
			resp = &wireResponse{Err: fmt.Sprintf("%s handler panicked: %v", opName(req.Op), r)}
		}
	}()
	switch req.Op {
	case opPull:
		res, err := s.handler.HandlePull(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.setResult(res)
	case opPullBlock:
		if h, ok := s.handler.(BlockPullWireHandler); ok {
			// Zero-intermediate path: the handler encodes its value rows
			// straight into the outgoing frame buffer. Gob clients are wire
			// version 1 and always get fp32 bodies.
			buf := getScratch()
			out, err := h.HandlePullBlockWire(req.Keys, (*buf)[:0], ps.PrecisionFP32)
			if err != nil {
				if out != nil {
					*buf = out[:0] // keep whatever the handler grew the buffer to
				}
				putScratch(buf)
				resp.Err = err.Error()
				return resp, nil
			}
			resp.Block = out
			release = func() { *buf = resp.Block[:0]; putScratch(buf) }
			return resp, release
		}
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if h, ok := s.handler.(BlockPullHandler); ok {
			if err := h.HandlePullBlock(req.Keys, blk); err != nil {
				resp.Err = err.Error()
				return resp, nil
			}
		} else {
			// Map-based handler: serve the pull and flatten the result (the
			// dimension is inferred from the returned values).
			res, err := s.handler.HandlePull(req.Keys)
			if err != nil {
				resp.Err = err.Error()
				return resp, nil
			}
			ps.FillFromPull(blk, 0, req.Keys, ps.Result(res))
		}
		buf := getScratch()
		resp.Block = blk.AppendWire((*buf)[:0])
		release = func() { *buf = resp.Block[:0]; putScratch(buf) }
	case opPush:
		h, ok := s.handler.(PushHandler)
		if !ok {
			resp.Err = "shard does not accept pushes"
			return resp, nil
		}
		if !s.seqs.fresh(req.Client, req.Seq) {
			return resp, nil // duplicate of an already-applied push: ack, don't re-apply
		}
		if err := h.HandlePush(req.deltas()); err != nil {
			// The apply failed: withdraw the sequence so a retry re-applies
			// instead of being acked as a duplicate of nothing.
			s.seqs.forget(req.Client, req.Seq)
			resp.Err = err.Error()
		} else {
			s.seqs.commit(req.Client, req.Seq)
		}
	case opPushBlock, opReplicate:
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if err := blk.DecodeWire(req.Keys, req.Block); err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		if !s.seqs.fresh(req.Client, req.Seq) {
			return resp, nil // duplicate: ack, don't re-apply
		}
		var err error
		if req.Op == opReplicate {
			h, ok := s.handler.(ReplicaPushHandler)
			if !ok {
				s.seqs.forget(req.Client, req.Seq)
				resp.Err = "shard does not accept replicated pushes"
				return resp, nil
			}
			err = h.HandleReplicate(blk)
		} else {
			switch h := s.handler.(type) {
			case StampedBlockPushHandler:
				err = h.HandlePushBlockStamped(req.Client, req.Seq, blk)
			case BlockPushHandler:
				err = h.HandlePushBlock(blk)
			case PushHandler:
				err = h.HandlePush(blk.Deltas())
			default:
				s.seqs.forget(req.Client, req.Seq)
				resp.Err = "shard does not accept pushes"
				return resp, nil
			}
		}
		if err != nil {
			s.seqs.forget(req.Client, req.Seq)
			resp.Err = err.Error()
		} else {
			s.seqs.commit(req.Client, req.Seq)
		}
	case opTransfer:
		h, ok := s.handler.(TransferHandler)
		if !ok {
			resp.Err = "shard does not accept state transfers"
			return resp, nil
		}
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if err := blk.DecodeWire(req.Keys, req.Block); err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		n, err := h.HandleTransfer(blk)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.Count = n
	case opMembership:
		h, ok := s.handler.(MembershipHandler)
		if !ok {
			resp.Err = "shard does not accept membership updates"
			return resp, nil
		}
		if err := h.HandleMembership(req.Membership); err != nil {
			resp.Err = err.Error()
		}
	case opEvict:
		h, ok := s.handler.(EvictHandler)
		if !ok {
			resp.Err = "shard does not support evict"
			return resp, nil
		}
		ks := req.Keys
		if req.All {
			ks = nil
		}
		n, err := h.Evict(ks)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.Count = n
	case opStats:
		h, ok := s.handler.(StatsHandler)
		if !ok {
			resp.Err = "shard does not report stats"
			return resp, nil
		}
		resp.Name = h.Name()
		resp.Stats = h.TierStats()
	case opLookup:
		h, ok := s.handler.(LookupHandler)
		if !ok {
			resp.Err = "shard does not support lookup"
			return resp, nil
		}
		res, err := h.HandleLookup(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.setResult(res)
	case opPredict:
		h, ok := s.handler.(PredictHandler)
		if !ok {
			resp.Err = "shard does not serve predictions"
			return resp, nil
		}
		scores, err := h.HandlePredict(PredictRequest{Counts: req.Counts, Keys: req.Keys})
		if err != nil {
			resp.Err = err.Error()
			var oe *OverloadError
			resp.Overloaded = errors.As(err, &oe)
			return resp, nil
		}
		resp.Scores = scores
	case opServeConfig:
		h, ok := s.handler.(ServeConfigHandler)
		if !ok {
			resp.Err = "shard does not serve predictions"
			return resp, nil
		}
		if err := h.HandleServeConfig(req.Serve); err != nil {
			resp.Err = err.Error()
		}
	case opServeStats:
		h, ok := s.handler.(ServingStatsHandler)
		if !ok {
			resp.Err = "shard does not report serving stats"
			return resp, nil
		}
		resp.Serving = h.ServingStats()
	}
	return resp, release
}

// RetryPolicy controls how the TCP transport handles network failures,
// including how long it is willing to wait for a peer that accepts traffic
// but never answers.
type RetryPolicy struct {
	// Attempts is the total number of tries per RPC (first try included).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry, so
	// the default policy rides out a shard-server restart of a few hundred
	// milliseconds.
	Backoff time.Duration
	// DialTimeout bounds connection establishment to a peer. Zero means the
	// default (an unreachable-but-routing peer must not hang the dial);
	// negative disables the bound.
	DialTimeout time.Duration
	// RPCTimeout bounds one RPC round trip (write request, read reply) once a
	// connection exists. A stalled-but-alive shard — accepted the connection,
	// never answers — therefore surfaces as a retryable TransportError
	// instead of blocking the RPC forever. Zero means the default; negative
	// disables the bound (a test serving deliberately slow handlers can opt
	// out).
	RPCTimeout time.Duration
}

// Default deadlines installed when the corresponding RetryPolicy field is
// zero. The RPC bound is generous: it only has to beat "forever", not a slow
// SSD load on the far side.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultRPCTimeout  = 30 * time.Second
)

// dial returns the effective dial timeout (0 = unbounded).
func (p RetryPolicy) dial() time.Duration {
	if p.DialTimeout == 0 {
		return DefaultDialTimeout
	}
	return max(p.DialTimeout, 0)
}

// rpc returns the effective per-RPC timeout (0 = unbounded).
func (p RetryPolicy) rpc() time.Duration {
	if p.RPCTimeout == 0 {
		return DefaultRPCTimeout
	}
	return max(p.RPCTimeout, 0)
}

// DefaultRetryPolicy is the policy NewTCPTransport installs.
var DefaultRetryPolicy = RetryPolicy{Attempts: 5, Backoff: 25 * time.Millisecond}

// maxRetryBackoff caps the doubled backoff so large Attempts values mean
// "keep trying for a while", never an hours-long sleep.
const maxRetryBackoff = 2 * time.Second

// TransportStats counts a TCPTransport's activity, for reports and tests.
type TransportStats struct {
	// Calls counts completed RPCs; Retries counts extra attempts after a
	// network failure; Dials counts established connections; Redials counts
	// the subset established beyond the first per peer (i.e. reconnects
	// after a drop).
	Calls, Retries, Dials, Redials int64
	// BytesOut / BytesIn estimate the payload traffic in fp32 terms (8 bytes
	// per key plus the encoded value size, the same accounting as
	// PayloadBytes) — the precision-independent "model bytes moved".
	BytesOut, BytesIn int64
	// WireOut / WireIn count the bytes that actually crossed the sockets
	// (frame prefixes included), so the quantized wire's compression is
	// visible as WireOut+WireIn versus BytesOut+BytesIn.
	WireOut, WireIn int64
}

// TCPTransport reaches remote nodes over TCP, holding a small pool of
// persistent connections per peer (one by default), transparently
// reconnecting (with bounded, backed-off retries) when a connection drops.
// Each connection negotiates the wire version and pull-reply precision with
// a hello exchange at dial time. It is safe for concurrent use and
// implements TierTransport.
type TCPTransport struct {
	dim    int
	client uint64 // identity for push dedup across reconnects
	seq    atomic.Uint64
	retry  RetryPolicy

	dials   atomic.Int64
	redials atomic.Int64
	calls   atomic.Int64
	retries atomic.Int64

	mu        sync.Mutex
	addrs     map[int]string
	peers     map[int]*peerConns
	dialed    map[int]bool  // nodes dialed at least once, for redial counting
	prec      ps.Precision  // wire precision requested in hellos and used for push bodies
	quantPush bool          // quantize push bodies at the negotiated precision
	maxConns  int           // per-peer connection cap (>= 1)
	inflight  chan struct{} // global in-flight-RPC semaphore; nil = unbounded

	statMu   sync.Mutex
	bytesOut int64
	bytesIn  int64
	wireOut  int64
	wireIn   int64
}

var (
	_ TierTransport  = (*TCPTransport)(nil)
	_ BlockTransport = (*TCPTransport)(nil)
)

// peerConns is one peer's connection pool. Conns are acquired by locking
// their mutex: an idle conn is one whose TryLock succeeds.
type peerConns struct {
	conns []*tcpConn
	next  int // round-robin cursor for queueing when every conn is busy
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	raw  bool         // hello negotiated wire version 2 (raw block frames)
	prec ps.Precision // negotiated pull-reply precision
}

// NewTCPTransport creates a transport that reaches node i at addrs[i], with
// the default retry policy, one connection per peer, and fp32 wire bodies.
func NewTCPTransport(addrs map[int]string, dim int) *TCPTransport {
	copied := make(map[int]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPTransport{
		dim:      dim,
		client:   rand.Uint64() | 1, // non-zero: 0 would disable push dedup
		retry:    DefaultRetryPolicy,
		addrs:    copied,
		peers:    make(map[int]*peerConns),
		dialed:   make(map[int]bool),
		maxConns: 1,
	}
}

// SetAddr repoints nodeID at a new address and drops its pooled connections,
// so the next RPC dials the new incarnation. This is how a supervisor hands
// the transport a restarted shard that came back on a different port;
// in-flight RPCs on the old connections fail and retry against the new
// address. The client identity is unchanged, so the restarted shard's
// (possibly reloaded) dedup state still recognizes this transport's retries.
func (t *TCPTransport) SetAddr(nodeID int, addr string) {
	t.mu.Lock()
	t.addrs[nodeID] = addr
	p := t.peers[nodeID]
	delete(t.peers, nodeID)
	t.mu.Unlock()
	if p != nil {
		for _, c := range p.conns {
			c.conn.Close()
		}
	}
}

// SetRetryPolicy replaces the retry policy. Attempts < 1 disables retries
// (every network failure surfaces immediately).
func (t *TCPTransport) SetRetryPolicy(p RetryPolicy) {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	t.mu.Lock()
	t.retry = p
	t.mu.Unlock()
}

// SetWirePrecision selects the precision of block bodies on the wire: pull
// replies (negotiated per connection at hello time) and push bodies. Existing
// connections keep their negotiated precision, so set it before issuing RPCs.
// PrecisionFP32 — the default — keeps every body bit-exact.
func (t *TCPTransport) SetWirePrecision(p ps.Precision) {
	if !p.Valid() {
		p = ps.PrecisionFP32
	}
	t.mu.Lock()
	t.prec = p
	t.mu.Unlock()
}

// SetPushQuantization selects whether push bodies follow the connection's
// negotiated precision (true) or stay fp32 (false, the default). A pull-side
// quantization error is self-correcting — the next delta is computed against
// the quantized values the trainer actually loaded — while a quantized delta
// perturbs the authoritative copies directly, so pushes only quantize when
// the caller opts in (gated by the trainer's AUC-parity test).
func (t *TCPTransport) SetPushQuantization(on bool) {
	t.mu.Lock()
	t.quantPush = on
	t.mu.Unlock()
}

// WirePrecision returns the configured wire precision.
func (t *TCPTransport) WirePrecision() ps.Precision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.prec
}

// SetMaxConnsPerPeer sets how many concurrent connections the transport may
// hold per peer (minimum 1). With more than one, concurrent RPCs to the same
// shard overlap on the wire instead of queueing on a single connection —
// the transport-level half of pull pipelining.
func (t *TCPTransport) SetMaxConnsPerPeer(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.maxConns = n
	t.mu.Unlock()
}

// SetMaxInFlightRPCs bounds the number of RPCs in flight across all peers
// (0 or negative = unbounded). The bound caps the memory pinned by concurrent
// pull chunks and keeps a wide fan-out from oversubscribing the NIC.
func (t *TCPTransport) SetMaxInFlightRPCs(n int) {
	t.mu.Lock()
	if n <= 0 {
		t.inflight = nil
	} else {
		t.inflight = make(chan struct{}, n)
	}
	t.mu.Unlock()
}

// Stats returns a snapshot of the transport's activity counters.
func (t *TCPTransport) Stats() TransportStats {
	t.statMu.Lock()
	in, out := t.bytesIn, t.bytesOut
	win, wout := t.wireIn, t.wireOut
	t.statMu.Unlock()
	return TransportStats{
		Calls:    t.calls.Load(),
		Retries:  t.retries.Load(),
		Dials:    t.dials.Load(),
		Redials:  t.redials.Load(),
		BytesOut: out,
		BytesIn:  in,
		WireOut:  wout,
		WireIn:   win,
	}
}

// acquireConn returns a connection to nodeID with its mutex held: an idle
// pooled conn when one exists, a queued busy conn when the pool is at its
// cap, or a freshly dialed (and hello-negotiated) one otherwise. The caller
// releases it with c.mu.Unlock after its round trip.
func (t *TCPTransport) acquireConn(nodeID int, policy RetryPolicy) (*tcpConn, error) {
	t.mu.Lock()
	if p := t.peers[nodeID]; p != nil && len(p.conns) > 0 {
		for _, c := range p.conns {
			if c.mu.TryLock() {
				t.mu.Unlock()
				return c, nil
			}
		}
		if len(p.conns) >= t.maxConns {
			// Every conn is busy and the pool is full: queue on one,
			// round-robin so waiters spread across the pool.
			c := p.conns[p.next%len(p.conns)]
			p.next++
			t.mu.Unlock()
			c.mu.Lock()
			// The conn may have been dropped while queueing; the round trip
			// then fails on the closed socket and the caller retries.
			return c, nil
		}
	}
	addr, ok := t.addrs[nodeID]
	maxConns := t.maxConns
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, nodeID)
	}
	// Dial outside the transport lock: a slow or unreachable peer must not
	// stall RPCs to the healthy ones. The dial deadline keeps a
	// routing-but-dead peer from hanging this RPC's attempt.
	conn, err := net.DialTimeout("tcp", addr, policy.dial())
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	c := &tcpConn{conn: conn}
	if err := t.hello(c, policy); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello %s: %w", addr, err)
	}
	c.mu.Lock() // uncontended: the conn is not published yet
	t.mu.Lock()
	p := t.peers[nodeID]
	if p == nil {
		p = &peerConns{}
		t.peers[nodeID] = p
	}
	if len(p.conns) >= maxConns {
		// Concurrent dialers overfilled the pool; keep the pool bounded and
		// use ours for this one RPC without publishing it.
		t.mu.Unlock()
		return c, nil
	}
	t.dials.Add(1)
	if t.dialed[nodeID] {
		t.redials.Add(1) // this peer had a connection before: a reconnect
	}
	t.dialed[nodeID] = true
	p.conns = append(p.conns, c)
	t.mu.Unlock()
	return c, nil
}

// hello negotiates the wire version and pull precision on a fresh connection.
// A peer that answers a lower version (or an I/O failure on a pre-version-2
// peer) leaves the connection on gob frames; an I/O failure fails the dial so
// the retry loop treats it like any other connect failure.
func (t *TCPTransport) hello(c *tcpConn, policy RetryPolicy) error {
	t.mu.Lock()
	prec := t.prec
	t.mu.Unlock()
	var frame [8]byte
	f := append(frame[:0], 0, 0, 0, 0, rawOpHello, rawWireVersion, byte(prec), 0)
	payload, rbuf, err := t.roundTripRaw(c, f, policy.rpc())
	if err != nil {
		return err
	}
	defer putScratch(rbuf)
	if len(payload) != 4 || payload[0] != rawOpHelloResp {
		return fmt.Errorf("malformed hello response of %d bytes", len(payload))
	}
	if payload[1] != 0 {
		return fmt.Errorf("hello rejected")
	}
	if payload[2] >= rawWireVersion {
		c.raw = true
		if p := ps.Precision(payload[3]); p.Valid() {
			c.prec = p
		}
	}
	return nil
}

func (t *TCPTransport) dropConn(nodeID int, c *tcpConn) {
	t.mu.Lock()
	if p := t.peers[nodeID]; p != nil {
		for i, cur := range p.conns {
			if cur == c {
				p.conns = append(p.conns[:i], p.conns[i+1:]...)
				break
			}
		}
	}
	t.mu.Unlock()
	c.conn.Close()
}

// do runs one RPC against nodeID: acquire a connection (dialing if needed),
// run fn on it with the conn lock held, and reconnect/retry network failures
// per the retry policy. Shard-side failures (RemoteError) and unknown nodes
// are returned immediately — retrying cannot fix them. The global in-flight
// semaphore, when set, is held for the duration.
func (t *TCPTransport) do(nodeID int, op uint8, fn func(c *tcpConn, timeout time.Duration) error) error {
	t.mu.Lock()
	policy := t.retry
	inflight := t.inflight
	t.mu.Unlock()
	if inflight != nil {
		inflight <- struct{}{}
		defer func() { <-inflight }()
	}
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			t.retries.Add(1)
			if policy.Backoff > 0 { // zero Backoff means retry immediately
				backoff := policy.Backoff << min(attempt-2, 6)
				if backoff <= 0 || backoff > maxRetryBackoff {
					backoff = maxRetryBackoff
				}
				time.Sleep(backoff)
			}
		}
		c, err := t.acquireConn(nodeID, policy)
		if err != nil {
			if errors.Is(err, ErrUnknownNode) {
				return err
			}
			lastErr = err // dial failure: the peer may be restarting
			continue
		}
		err = fn(c, policy.rpc())
		if err != nil {
			var re *RemoteError
			var oe *OverloadError
			if errors.As(err, &re) || errors.As(err, &oe) {
				// The round trip itself was fine; keep the connection. An
				// overload rejection is deliberately not retried here either:
				// admission control sheds load back to the caller, and an
				// internal retry loop would defeat that.
				c.mu.Unlock()
				t.calls.Add(1)
				return err
			}
			t.dropConn(nodeID, c)
			c.mu.Unlock()
			lastErr = err
			continue
		}
		c.mu.Unlock()
		t.calls.Add(1)
		return nil
	}
	return &TransportError{Node: nodeID, Op: opName(op), Attempts: policy.Attempts, Err: lastErr}
}

// call runs one gob RPC round trip against nodeID through do.
func (t *TCPTransport) call(nodeID int, req *wireRequest) (*wireResponse, error) {
	var resp wireResponse
	err := t.do(nodeID, req.Op, func(c *tcpConn, timeout time.Duration) error {
		resp = wireResponse{} // a retried attempt starts from a clean reply
		if err := t.roundTrip(c, req, &resp, timeout); err != nil {
			return err
		}
		if resp.Err != "" {
			if resp.Overloaded {
				return &OverloadError{Node: nodeID, Op: opName(req.Op)}
			}
			return &RemoteError{Node: nodeID, Op: opName(req.Op), Msg: resp.Err}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// setDeadline arms (or clears) the round-trip deadline on c. One deadline
// covers the whole round trip; a peer that accepted the connection but
// stopped answering fails the read instead of parking the RPC forever. The
// caller drops the connection on any error, so a frame cut short by the
// deadline can never desynchronize a reused stream.
func setDeadline(c *tcpConn, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("set deadline: %w", err)
		}
		return nil
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("clear deadline: %w", err)
	}
	return nil
}

// roundTrip performs one gob exchange on c, whose lock the caller holds.
func (t *TCPTransport) roundTrip(c *tcpConn, req *wireRequest, resp *wireResponse, timeout time.Duration) error {
	if err := setDeadline(c, timeout); err != nil {
		return err
	}
	nOut, err := writeFrame(c.conn, req)
	if err != nil {
		return fmt.Errorf("send: %w", err)
	}
	nIn, err := readFrame(c.conn, resp)
	if err != nil {
		return fmt.Errorf("receive: %w", err)
	}
	t.addWireBytes(int64(nOut), int64(nIn))
	return nil
}

// roundTripRaw writes one raw frame (4-byte prefix placeholder included) and
// reads the raw response payload into a pooled receive buffer, which it
// returns along with the payload view; the caller returns the buffer to the
// pool once the payload is consumed — for pull replies that is after
// DecodeWire has scattered the body into the destination block's slabs,
// making the pooled buffer the only stop between socket and slab. The caller
// holds c.mu.
func (t *TCPTransport) roundTripRaw(c *tcpConn, frame []byte, timeout time.Duration) ([]byte, *[]byte, error) {
	if err := setDeadline(c, timeout); err != nil {
		return nil, nil, err
	}
	nOut, err := writeRawFrame(c.conn, frame)
	if err != nil {
		return nil, nil, fmt.Errorf("send: %w", err)
	}
	n, raw, err := readFramePrefix(c.conn)
	if err != nil {
		return nil, nil, fmt.Errorf("receive: %w", err)
	}
	if !raw {
		return nil, nil, fmt.Errorf("receive: gob frame where a raw frame was expected")
	}
	rbuf := getScratch()
	payload, err := readFramePayload(c.conn, n, rbuf)
	if err != nil {
		putScratch(rbuf)
		return nil, nil, fmt.Errorf("receive: %w", err)
	}
	t.addWireBytes(int64(nOut), int64(4+n))
	return payload, rbuf, nil
}

func (t *TCPTransport) addBytes(out, in int64) {
	t.statMu.Lock()
	t.bytesOut += out
	t.bytesIn += in
	t.statMu.Unlock()
}

func (t *TCPTransport) addWireBytes(out, in int64) {
	t.statMu.Lock()
	t.wireOut += out
	t.wireIn += in
	t.statMu.Unlock()
}

// Pull implements Transport.
func (t *TCPTransport) Pull(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opPull, Keys: ks})
	if err != nil {
		return nil, 0, err
	}
	result := resp.result()
	bytes := PayloadBytes(len(ks), result, t.dim)
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return result, bytes, nil
}

// Push implements TierTransport: it merges per-key deltas into node nodeID's
// shard. Pushes carry a sequence number so a push retried across a reconnect
// is applied exactly once by the server (see SeqTracker).
func (t *TCPTransport) Push(nodeID int, deltas map[keys.Key]*embedding.Value) (int64, error) {
	req := &wireRequest{
		Op:     opPush,
		Client: t.client,
		Seq:    t.seq.Add(1),
		Keys:   make([]keys.Key, 0, len(deltas)),
		Values: make([]*embedding.Value, 0, len(deltas)),
	}
	for k, v := range deltas {
		if v == nil {
			continue
		}
		req.Keys = append(req.Keys, k)
		req.Values = append(req.Values, v)
	}
	if _, err := t.call(nodeID, req); err != nil {
		return 0, err
	}
	bytes := int64(len(req.Keys)) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return bytes, nil
}

// PullBlock implements BlockTransport: the reply arrives as one flat block
// body (encoded in a single pass server-side) and is decoded straight into
// dst, in request-key order — no per-value gob decoding. On a raw-negotiated
// connection the request is a length-prefixed key frame and the reply body is
// decoded directly out of the pooled receive buffer, in the negotiated
// precision; otherwise the exchange falls back to gob. The returned byte
// count stays the fp32-equivalent model traffic (the PayloadBytes accounting
// every transport shares); Stats().WireIn/WireOut expose what actually
// crossed the socket.
func (t *TCPTransport) PullBlock(nodeID int, ks []keys.Key, dst *ps.ValueBlock) (int64, error) {
	err := t.do(nodeID, opPullBlock, func(c *tcpConn, timeout time.Duration) error {
		if c.raw {
			buf := getScratch()
			frame := appendRawPullReq(append((*buf)[:0], 0, 0, 0, 0), ks)
			payload, rbuf, err := t.roundTripRaw(c, frame, timeout)
			*buf = frame[:0]
			putScratch(buf)
			if err != nil {
				return err
			}
			defer putScratch(rbuf)
			if len(payload) < 4 || payload[0] != rawOpPullBlockResp {
				return fmt.Errorf("malformed pull-block response of %d bytes", len(payload))
			}
			if payload[1] != 0 {
				return &RemoteError{Node: nodeID, Op: opName(opPullBlock), Msg: string(payload[4:])}
			}
			return dst.DecodeWire(ks, payload[4:])
		}
		var resp wireResponse
		if err := t.roundTrip(c, &wireRequest{Op: opPullBlock, Keys: ks}, &resp, timeout); err != nil {
			return err
		}
		if resp.Err != "" {
			return &RemoteError{Node: nodeID, Op: opName(opPullBlock), Msg: resp.Err}
		}
		return dst.DecodeWire(ks, resp.Block)
	})
	if err != nil {
		return 0, err
	}
	if dst.Dim == 0 && t.dim > 0 {
		// An all-missing reply from a map-based handler carries no dimension
		// to infer; re-shape to the transport's so absent rows read as zeroed
		// dim-d rows, per the PullInto contract.
		dst.Reset(t.dim, ks)
	}
	bytes := int64(len(ks))*8 + int64(dst.PresentCount())*int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return bytes, nil
}

// PushBlock implements BlockTransport: the block's delta rows travel as one
// flat frame, stamped with a dedup sequence exactly like a map push, so a
// push-block retried across a reconnect is applied exactly once (the sequence
// is assigned once, before the retry loop, for that reason). Push bodies stay
// fp32 even on quantized connections unless SetPushQuantization opted in:
// a pull-side quantization error is corrected by the next delta (the delta is
// computed against the quantized values the trainer actually loaded), while a
// quantized delta perturbs the authoritative copies directly.
func (t *TCPTransport) PushBlock(nodeID int, blk *ps.ValueBlock) (int64, error) {
	client, seq := t.Stamp()
	return t.PushBlockStamped(nodeID, client, seq, blk)
}

// Stamp allocates a fresh push dedup stamp. Callers that need to fail a push
// over to a key's backup take the stamp first, so the failover delivery (via
// Replicate) carries the same identity as the failed push and a backup that
// already received the primary's forward of it dedups instead of
// double-applying.
func (t *TCPTransport) Stamp() (client, seq uint64) {
	return t.client, t.seq.Add(1)
}

// PushBlockStamped is PushBlock under a caller-provided dedup stamp.
func (t *TCPTransport) PushBlockStamped(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error) {
	t.mu.Lock()
	quantPush := t.quantPush
	t.mu.Unlock()
	err := t.do(nodeID, opPushBlock, func(c *tcpConn, timeout time.Duration) error {
		if c.raw {
			pushPrec := ps.PrecisionFP32
			if quantPush {
				pushPrec = c.prec
			}
			buf := getScratch()
			frame := appendRawPushReq(append((*buf)[:0], 0, 0, 0, 0), client, seq, blk.Keys)
			frame = blk.AppendWirePrecision(frame, pushPrec)
			payload, rbuf, err := t.roundTripRaw(c, frame, timeout)
			*buf = frame[:0]
			putScratch(buf)
			if err != nil {
				return err
			}
			defer putScratch(rbuf)
			if len(payload) < 4 || payload[0] != rawOpPushBlockResp {
				return fmt.Errorf("malformed push-block response of %d bytes", len(payload))
			}
			if payload[1] != 0 {
				return &RemoteError{Node: nodeID, Op: opName(opPushBlock), Msg: string(payload[4:])}
			}
			return nil
		}
		buf := getScratch()
		req := &wireRequest{
			Op:     opPushBlock,
			Client: client,
			Seq:    seq,
			Keys:   blk.Keys,
			Block:  blk.AppendWire((*buf)[:0]),
		}
		defer func() {
			*buf = req.Block[:0]
			putScratch(buf)
		}()
		var resp wireResponse
		if err := t.roundTrip(c, req, &resp, timeout); err != nil {
			return err
		}
		if resp.Err != "" {
			return &RemoteError{Node: nodeID, Op: opName(opPushBlock), Msg: resp.Err}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	bytes := int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return bytes, nil
}

// Replicate forwards an applied delta block to nodeID (a backup of the
// block's keys), carrying the ORIGIN client's dedup stamp instead of this
// transport's own — the backup commits (client, seq) to its tracker, so after
// a promotion the origin's retry of the same push is deduplicated, not
// double-applied. Bodies always travel fp32: a quantized replica would drift
// from its primary. Retries are safe for the same reason direct pushes are:
// the stamp makes the apply exactly-once.
func (t *TCPTransport) Replicate(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error) {
	err := t.do(nodeID, opReplicate, func(c *tcpConn, timeout time.Duration) error {
		if c.raw {
			buf := getScratch()
			frame := appendRawReplicateReq(append((*buf)[:0], 0, 0, 0, 0), client, seq, blk.Keys)
			frame = blk.AppendWire(frame)
			payload, rbuf, err := t.roundTripRaw(c, frame, timeout)
			*buf = frame[:0]
			putScratch(buf)
			if err != nil {
				return err
			}
			defer putScratch(rbuf)
			if len(payload) < 4 || payload[0] != rawOpReplicateResp {
				return fmt.Errorf("malformed replicate response of %d bytes", len(payload))
			}
			if payload[1] != 0 {
				return &RemoteError{Node: nodeID, Op: opName(opReplicate), Msg: string(payload[4:])}
			}
			return nil
		}
		buf := getScratch()
		req := &wireRequest{
			Op:     opReplicate,
			Client: client,
			Seq:    seq,
			Keys:   blk.Keys,
			Block:  blk.AppendWire((*buf)[:0]),
		}
		defer func() {
			*buf = req.Block[:0]
			putScratch(buf)
		}()
		var resp wireResponse
		if err := t.roundTrip(c, req, &resp, timeout); err != nil {
			return err
		}
		if resp.Err != "" {
			return &RemoteError{Node: nodeID, Op: opName(opReplicate), Msg: resp.Err}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	bytes := int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return bytes, nil
}

// Transfer installs the block's rows on nodeID outright (set semantics, not
// delta merge): the re-replication / resharding data path. It is idempotent,
// so the transport's normal retries need no dedup stamp. It returns how many
// rows the receiver accepted.
func (t *TCPTransport) Transfer(nodeID int, blk *ps.ValueBlock) (int, error) {
	buf := getScratch()
	req := &wireRequest{Op: opTransfer, Keys: blk.Keys, Block: blk.AppendWire((*buf)[:0])}
	resp, err := t.call(nodeID, req)
	*buf = req.Block[:0]
	putScratch(buf)
	if err != nil {
		return 0, err
	}
	bytes := int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return resp.Count, nil
}

// UpdateMembership installs an epoch-versioned membership change on nodeID.
func (t *TCPTransport) UpdateMembership(nodeID int, u MembershipUpdate) error {
	_, err := t.call(nodeID, &wireRequest{Op: opMembership, Membership: u})
	return err
}

// Evict implements TierTransport.
func (t *TCPTransport) Evict(nodeID int, ks []keys.Key) (int, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opEvict, Keys: ks, All: ks == nil})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// TierStats implements TierTransport.
func (t *TCPTransport) TierStats(nodeID int) (ps.TierInfo, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opStats})
	if err != nil {
		return ps.TierInfo{}, err
	}
	return ps.TierInfo{Name: resp.Name, Stats: resp.Stats}, nil
}

// Lookup implements TierTransport: a pull that never materializes missing
// parameters, for evaluation-time reads.
func (t *TCPTransport) Lookup(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opLookup, Keys: ks})
	if err != nil {
		return nil, 0, err
	}
	result := resp.result()
	bytes := PayloadBytes(len(ks), result, t.dim)
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return result, bytes, nil
}

// Predict scores one batched inference request against nodeID's shard. On a
// raw-negotiated connection the request travels as a fixed-layout predict
// frame (counts + keys out, scores back, no gob on either side); otherwise it
// falls back to gob. An admission rejection surfaces as a typed
// *OverloadError: retryable by the caller after backoff, but never retried
// internally — admission control exists to shed load to the caller, and an
// internal retry loop would defeat it.
func (t *TCPTransport) Predict(nodeID int, req PredictRequest) ([]float32, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var scores []float32
	err := t.do(nodeID, opPredict, func(c *tcpConn, timeout time.Duration) error {
		if c.raw {
			buf := getScratch()
			frame := appendRawPredictReq(append((*buf)[:0], 0, 0, 0, 0), req)
			payload, rbuf, err := t.roundTripRaw(c, frame, timeout)
			*buf = frame[:0]
			putScratch(buf)
			if err != nil {
				return err
			}
			defer putScratch(rbuf)
			if len(payload) < 4 || payload[0] != rawOpPredictResp {
				return fmt.Errorf("malformed predict response of %d bytes", len(payload))
			}
			switch payload[1] {
			case rawStatusOK:
				scores, err = parseRawScores(payload[4:])
				return err
			case rawStatusOverloaded:
				return &OverloadError{Node: nodeID, Op: opName(opPredict)}
			default:
				return &RemoteError{Node: nodeID, Op: opName(opPredict), Msg: string(payload[4:])}
			}
		}
		var resp wireResponse
		greq := &wireRequest{Op: opPredict, Counts: req.Counts, Keys: req.Keys}
		if err := t.roundTrip(c, greq, &resp, timeout); err != nil {
			return err
		}
		if resp.Err != "" {
			if resp.Overloaded {
				return &OverloadError{Node: nodeID, Op: opName(opPredict)}
			}
			return &RemoteError{Node: nodeID, Op: opName(opPredict), Msg: resp.Err}
		}
		scores = resp.Scores
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// PublishServeConfig sends serving-tier configuration (peer addresses and/or
// refreshed dense parameters) to nodeID's shard.
func (t *TCPTransport) PublishServeConfig(nodeID int, cfg ServeConfig) error {
	_, err := t.call(nodeID, &wireRequest{Op: opServeConfig, Serve: cfg})
	return err
}

// ServingStats reads nodeID's serving-tier counters.
func (t *TCPTransport) ServingStats(nodeID int) (ServingStats, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opServeStats})
	if err != nil {
		return ServingStats{}, err
	}
	return resp.Serving, nil
}

// Close closes every open connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, p := range t.peers {
		for _, c := range p.conns {
			c.conn.Close()
		}
		delete(t.peers, id)
	}
}
