package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// SeqTracker deduplicates pushes retried across reconnects: the transport
// stamps every push with a (client, sequence) pair, and the tracker remembers
// which sequences each client has already had applied. A push that arrives
// again after a connection drop — the reply was lost but the deltas were
// already merged — is acknowledged without being re-applied, which is what
// keeps at-least-once delivery from turning into twice-applied gradients.
// The server records a sequence only after the apply succeeds (see forget),
// so a push whose apply failed is re-applied, not falsely acked, on retry.
//
// Sequences from one client may arrive out of order (concurrent pushes race
// for the connection), so the tracker keeps an explicit seen-set over a
// sliding window rather than a high-water mark; sequences that have fallen
// out of the window (seqWindow outstanding pushes behind the newest) are
// treated as duplicates.
//
// The tracker belongs to the shard state, not to one server instance: pass
// the same tracker to every ServeTCP incarnation serving the same shard so
// dedup survives a server restart.
type SeqTracker struct {
	mu      sync.Mutex
	clients map[uint64]*clientSeqs
}

type clientSeqs struct {
	max  uint64
	seen map[uint64]struct{}
}

// seqWindow bounds the per-client seen-set: a sequence more than this many
// behind the newest is assumed to be a stale duplicate. Pushes are
// effectively synchronous per batch, so thousands of outstanding sequences
// per client is far beyond any real pipeline depth.
const seqWindow = 4096

// maxClients bounds the tracker across driver restarts (every transport has
// a fresh random client id): beyond this many clients, state for other —
// almost certainly dead — clients is dropped. Dedup is therefore guaranteed
// for up to maxClients concurrently-live clients, far beyond one driver plus
// stragglers.
const maxClients = 256

// NewSeqTracker returns an empty tracker.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{clients: make(map[uint64]*clientSeqs)}
}

// fresh reports whether (client, seq) has not been applied yet, recording it
// as applied when it is fresh. Sequence 0 (non-push traffic) is always fresh.
func (s *SeqTracker) fresh(client, seq uint64) bool {
	if s == nil || seq == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.clients[client]
	if !ok {
		for len(s.clients) >= maxClients {
			for other := range s.clients {
				delete(s.clients, other)
				break
			}
		}
		cs = &clientSeqs{seen: make(map[uint64]struct{})}
		s.clients[client] = cs
	}
	if cs.max >= seqWindow && seq <= cs.max-seqWindow {
		return false // fell out of the window: stale duplicate
	}
	if _, dup := cs.seen[seq]; dup {
		return false
	}
	cs.seen[seq] = struct{}{}
	if seq > cs.max {
		cs.max = seq
	}
	// Prune lazily, only once the set outgrows the window: a full scan per
	// push would make the hot path O(seqWindow).
	if len(cs.seen) > seqWindow && cs.max >= seqWindow {
		for old := range cs.seen {
			if old <= cs.max-seqWindow {
				delete(cs.seen, old)
			}
		}
	}
	return true
}

// forget withdraws a sequence recorded by fresh, after its apply failed: the
// client's retry must re-apply the push, not be acked as a duplicate of an
// apply that never happened.
func (s *SeqTracker) forget(client, seq uint64) {
	if s == nil || seq == 0 {
		return
	}
	s.mu.Lock()
	if cs, ok := s.clients[client]; ok {
		delete(cs.seen, seq)
	}
	s.mu.Unlock()
}

// ServerOptions tune a TCPServer beyond its handler.
type ServerOptions struct {
	// Seqs is the push-dedup tracker shared across server restarts; nil
	// creates a fresh one (pushes retried across a restart of this server
	// then re-apply — pass a tracker to prevent that).
	Seqs *SeqTracker
}

// TCPServer serves the parameter RPCs of one node over TCP. The paper's
// nodes exchange MEM-PS parameters over the data-center network; this server
// plays that role when the nodes run as separate processes. The handler's
// optional interfaces (PushHandler, LookupHandler, EvictHandler,
// StatsHandler) decide which operations beyond pull the server supports.
type TCPServer struct {
	ln      net.Listener
	handler PullHandler
	seqs    *SeqTracker

	mu     sync.Mutex
	closed bool
	active map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts serving on addr (e.g. "127.0.0.1:0") using handler.
func ServeTCP(addr string, handler PullHandler) (*TCPServer, error) {
	return ServeTCPOptions(addr, handler, ServerOptions{})
}

// ServeTCPOptions is ServeTCP with explicit options.
func ServeTCPOptions(addr string, handler PullHandler, opts ServerOptions) (*TCPServer, error) {
	if handler == nil {
		return nil, errors.New("cluster: nil pull handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	seqs := opts.Seqs
	if seqs == nil {
		seqs = NewSeqTracker()
	}
	s := &TCPServer{ln: ln, handler: handler, seqs: seqs, active: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ServeTier exposes any ps.Tier behind ServeTCP: pulls, pushes, evicts and
// stats map straight onto the tier's own operations (lookups too — a plain
// tier's Pull already leaves missing keys absent).
func ServeTier(addr string, tier ps.Tier, opts ServerOptions) (*TCPServer, error) {
	if tier == nil {
		return nil, errors.New("cluster: nil tier")
	}
	return ServeTCPOptions(addr, &TierHandler{Tier: tier}, opts)
}

// Addr returns the address the server is listening on.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server: it stops accepting, severs every active
// connection (in-flight requests finish or fail; clients see a dropped
// connection and retry elsewhere or reconnect), and waits for the
// connection goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// track registers conn while the server is open; it reports false when the
// server is already closing (the connection must be dropped immediately).
func (s *TCPServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active[conn] = struct{}{}
	return true
}

func (s *TCPServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

func (s *TCPServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	for {
		var req wireRequest
		if err := readFrame(conn, &req); err != nil {
			// A clean EOF is the peer hanging up; anything else means the
			// stream is corrupt beyond recovery — either way, drop the
			// connection. The client reconnects and retries.
			return
		}
		resp, release := s.dispatch(&req)
		err := writeFrame(conn, resp)
		if release != nil {
			release() // resp may reference pooled buffers; free after the write
		}
		if err != nil {
			return
		}
	}
}

// dispatch executes one validated request against the handler. Handler
// panics are contained per request: a poisoned batch must not take the shard
// server (and every other client's parameters) down with it. The returned
// release function (may be nil) recycles buffers the response borrows; the
// caller runs it after the response has been written.
func (s *TCPServer) dispatch(req *wireRequest) (resp *wireResponse, release func()) {
	resp = &wireResponse{}
	if err := req.validate(); err != nil {
		resp.Err = err.Error()
		return resp, nil
	}
	defer func() {
		if r := recover(); r != nil {
			if req.Op == opPush || req.Op == opPushBlock {
				s.seqs.forget(req.Client, req.Seq) // the apply did not complete
			}
			if release != nil {
				release()
				release = nil
			}
			resp = &wireResponse{Err: fmt.Sprintf("%s handler panicked: %v", opName(req.Op), r)}
		}
	}()
	switch req.Op {
	case opPull:
		res, err := s.handler.HandlePull(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.setResult(res)
	case opPullBlock:
		if h, ok := s.handler.(BlockPullWireHandler); ok {
			// Zero-intermediate path: the handler encodes its value rows
			// straight into the outgoing frame buffer.
			buf := getScratch()
			out, err := h.HandlePullBlockWire(req.Keys, (*buf)[:0])
			if err != nil {
				if out != nil {
					*buf = out[:0] // keep whatever the handler grew the buffer to
				}
				putScratch(buf)
				resp.Err = err.Error()
				return resp, nil
			}
			resp.Block = out
			release = func() { *buf = resp.Block[:0]; putScratch(buf) }
			return resp, release
		}
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if h, ok := s.handler.(BlockPullHandler); ok {
			if err := h.HandlePullBlock(req.Keys, blk); err != nil {
				resp.Err = err.Error()
				return resp, nil
			}
		} else {
			// Map-based handler: serve the pull and flatten the result (the
			// dimension is inferred from the returned values).
			res, err := s.handler.HandlePull(req.Keys)
			if err != nil {
				resp.Err = err.Error()
				return resp, nil
			}
			ps.FillFromPull(blk, 0, req.Keys, ps.Result(res))
		}
		buf := getScratch()
		resp.Block = blk.AppendWire((*buf)[:0])
		release = func() { *buf = resp.Block[:0]; putScratch(buf) }
	case opPush:
		h, ok := s.handler.(PushHandler)
		if !ok {
			resp.Err = "shard does not accept pushes"
			return resp, nil
		}
		if !s.seqs.fresh(req.Client, req.Seq) {
			return resp, nil // duplicate of an already-applied push: ack, don't re-apply
		}
		if err := h.HandlePush(req.deltas()); err != nil {
			// The apply failed: withdraw the sequence so a retry re-applies
			// instead of being acked as a duplicate of nothing.
			s.seqs.forget(req.Client, req.Seq)
			resp.Err = err.Error()
		}
	case opPushBlock:
		blk := ps.GetBlock(0, nil)
		defer ps.PutBlock(blk)
		if err := blk.DecodeWire(req.Keys, req.Block); err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		if !s.seqs.fresh(req.Client, req.Seq) {
			return resp, nil // duplicate: ack, don't re-apply
		}
		var err error
		switch h := s.handler.(type) {
		case BlockPushHandler:
			err = h.HandlePushBlock(blk)
		case PushHandler:
			err = h.HandlePush(blk.Deltas())
		default:
			s.seqs.forget(req.Client, req.Seq)
			resp.Err = "shard does not accept pushes"
			return resp, nil
		}
		if err != nil {
			s.seqs.forget(req.Client, req.Seq)
			resp.Err = err.Error()
		}
	case opEvict:
		h, ok := s.handler.(EvictHandler)
		if !ok {
			resp.Err = "shard does not support evict"
			return resp, nil
		}
		ks := req.Keys
		if req.All {
			ks = nil
		}
		n, err := h.Evict(ks)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.Count = n
	case opStats:
		h, ok := s.handler.(StatsHandler)
		if !ok {
			resp.Err = "shard does not report stats"
			return resp, nil
		}
		resp.Name = h.Name()
		resp.Stats = h.TierStats()
	case opLookup:
		h, ok := s.handler.(LookupHandler)
		if !ok {
			resp.Err = "shard does not support lookup"
			return resp, nil
		}
		res, err := h.HandleLookup(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			return resp, nil
		}
		resp.setResult(res)
	}
	return resp, release
}

// RetryPolicy controls how the TCP transport handles network failures,
// including how long it is willing to wait for a peer that accepts traffic
// but never answers.
type RetryPolicy struct {
	// Attempts is the total number of tries per RPC (first try included).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry, so
	// the default policy rides out a shard-server restart of a few hundred
	// milliseconds.
	Backoff time.Duration
	// DialTimeout bounds connection establishment to a peer. Zero means the
	// default (an unreachable-but-routing peer must not hang the dial);
	// negative disables the bound.
	DialTimeout time.Duration
	// RPCTimeout bounds one RPC round trip (write request, read reply) once a
	// connection exists. A stalled-but-alive shard — accepted the connection,
	// never answers — therefore surfaces as a retryable TransportError
	// instead of blocking the RPC forever. Zero means the default; negative
	// disables the bound (a test serving deliberately slow handlers can opt
	// out).
	RPCTimeout time.Duration
}

// Default deadlines installed when the corresponding RetryPolicy field is
// zero. The RPC bound is generous: it only has to beat "forever", not a slow
// SSD load on the far side.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultRPCTimeout  = 30 * time.Second
)

// dial returns the effective dial timeout (0 = unbounded).
func (p RetryPolicy) dial() time.Duration {
	if p.DialTimeout == 0 {
		return DefaultDialTimeout
	}
	return max(p.DialTimeout, 0)
}

// rpc returns the effective per-RPC timeout (0 = unbounded).
func (p RetryPolicy) rpc() time.Duration {
	if p.RPCTimeout == 0 {
		return DefaultRPCTimeout
	}
	return max(p.RPCTimeout, 0)
}

// DefaultRetryPolicy is the policy NewTCPTransport installs.
var DefaultRetryPolicy = RetryPolicy{Attempts: 5, Backoff: 25 * time.Millisecond}

// maxRetryBackoff caps the doubled backoff so large Attempts values mean
// "keep trying for a while", never an hours-long sleep.
const maxRetryBackoff = 2 * time.Second

// TransportStats counts a TCPTransport's activity, for reports and tests.
type TransportStats struct {
	// Calls counts completed RPCs; Retries counts extra attempts after a
	// network failure; Dials counts established connections; Redials counts
	// the subset established beyond the first per peer (i.e. reconnects
	// after a drop).
	Calls, Retries, Dials, Redials int64
	// BytesOut / BytesIn estimate the payload traffic (8 bytes per key plus
	// the encoded value size, the same accounting as PayloadBytes).
	BytesOut, BytesIn int64
}

// TCPTransport reaches remote nodes over TCP, holding one persistent
// connection per peer, transparently reconnecting (with bounded, backed-off
// retries) when a connection drops. It is safe for concurrent use and
// implements TierTransport.
type TCPTransport struct {
	dim    int
	client uint64 // identity for push dedup across reconnects
	seq    atomic.Uint64
	retry  RetryPolicy

	dials   atomic.Int64
	redials atomic.Int64
	calls   atomic.Int64
	retries atomic.Int64

	mu     sync.Mutex
	addrs  map[int]string
	conns  map[int]*tcpConn
	dialed map[int]bool // nodes dialed at least once, for redial counting

	statMu   sync.Mutex
	bytesOut int64
	bytesIn  int64
}

var (
	_ TierTransport  = (*TCPTransport)(nil)
	_ BlockTransport = (*TCPTransport)(nil)
)

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPTransport creates a transport that reaches node i at addrs[i], with
// the default retry policy.
func NewTCPTransport(addrs map[int]string, dim int) *TCPTransport {
	copied := make(map[int]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPTransport{
		dim:    dim,
		client: rand.Uint64() | 1, // non-zero: 0 would disable push dedup
		retry:  DefaultRetryPolicy,
		addrs:  copied,
		conns:  make(map[int]*tcpConn),
		dialed: make(map[int]bool),
	}
}

// SetRetryPolicy replaces the retry policy. Attempts < 1 disables retries
// (every network failure surfaces immediately).
func (t *TCPTransport) SetRetryPolicy(p RetryPolicy) {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	t.mu.Lock()
	t.retry = p
	t.mu.Unlock()
}

// Stats returns a snapshot of the transport's activity counters.
func (t *TCPTransport) Stats() TransportStats {
	t.statMu.Lock()
	in, out := t.bytesIn, t.bytesOut
	t.statMu.Unlock()
	return TransportStats{
		Calls:    t.calls.Load(),
		Retries:  t.retries.Load(),
		Dials:    t.dials.Load(),
		Redials:  t.redials.Load(),
		BytesOut: out,
		BytesIn:  in,
	}
}

func (t *TCPTransport) conn(nodeID int, dialTimeout time.Duration) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[nodeID]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[nodeID]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, nodeID)
	}
	// Dial outside the transport lock: a slow or unreachable peer must not
	// stall RPCs to the healthy ones. The dial deadline keeps a
	// routing-but-dead peer from hanging this RPC's attempt.
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	t.mu.Lock()
	if existing, ok := t.conns[nodeID]; ok {
		// A concurrent caller connected first; use its connection.
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.dials.Add(1)
	if t.dialed[nodeID] {
		t.redials.Add(1) // this peer had a connection before: a reconnect
	}
	t.dialed[nodeID] = true
	c := &tcpConn{conn: conn}
	t.conns[nodeID] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) dropConn(nodeID int, c *tcpConn) {
	t.mu.Lock()
	if cur, ok := t.conns[nodeID]; ok && cur == c {
		cur.conn.Close()
		delete(t.conns, nodeID)
	}
	t.mu.Unlock()
}

// call runs one RPC round trip against nodeID, reconnecting and retrying
// network failures per the retry policy. Shard-side failures (RemoteError)
// and unknown nodes are returned immediately — retrying cannot fix them.
func (t *TCPTransport) call(nodeID int, req *wireRequest) (*wireResponse, error) {
	t.mu.Lock()
	policy := t.retry
	t.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			t.retries.Add(1)
			if policy.Backoff > 0 { // zero Backoff means retry immediately
				backoff := policy.Backoff << min(attempt-2, 6)
				if backoff <= 0 || backoff > maxRetryBackoff {
					backoff = maxRetryBackoff
				}
				time.Sleep(backoff)
			}
		}
		c, err := t.conn(nodeID, policy.dial())
		if err != nil {
			if errors.Is(err, ErrUnknownNode) {
				return nil, err
			}
			lastErr = err // dial failure: the peer may be restarting
			continue
		}
		resp, err := t.roundTrip(c, req, policy.rpc())
		if err != nil {
			t.dropConn(nodeID, c)
			lastErr = err
			continue
		}
		t.calls.Add(1)
		if resp.Err != "" {
			return nil, &RemoteError{Node: nodeID, Op: opName(req.Op), Msg: resp.Err}
		}
		return resp, nil
	}
	return nil, &TransportError{Node: nodeID, Op: opName(req.Op), Attempts: policy.Attempts, Err: lastErr}
}

func (t *TCPTransport) roundTrip(c *tcpConn, req *wireRequest, timeout time.Duration) (*wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// One deadline covers the whole round trip; a peer that accepted the
	// connection but stopped answering fails the read instead of parking the
	// RPC forever. The caller drops the connection on any error, so a frame
	// cut short by the deadline can never desynchronize a reused stream.
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("set deadline: %w", err)
		}
	} else {
		if err := c.conn.SetDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("clear deadline: %w", err)
		}
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp wireResponse
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, fmt.Errorf("receive: %w", err)
	}
	return &resp, nil
}

func (t *TCPTransport) addBytes(out, in int64) {
	t.statMu.Lock()
	t.bytesOut += out
	t.bytesIn += in
	t.statMu.Unlock()
}

// Pull implements Transport.
func (t *TCPTransport) Pull(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opPull, Keys: ks})
	if err != nil {
		return nil, 0, err
	}
	result := resp.result()
	bytes := PayloadBytes(len(ks), result, t.dim)
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return result, bytes, nil
}

// Push implements TierTransport: it merges per-key deltas into node nodeID's
// shard. Pushes carry a sequence number so a push retried across a reconnect
// is applied exactly once by the server (see SeqTracker).
func (t *TCPTransport) Push(nodeID int, deltas map[keys.Key]*embedding.Value) (int64, error) {
	req := &wireRequest{
		Op:     opPush,
		Client: t.client,
		Seq:    t.seq.Add(1),
		Keys:   make([]keys.Key, 0, len(deltas)),
		Values: make([]*embedding.Value, 0, len(deltas)),
	}
	for k, v := range deltas {
		if v == nil {
			continue
		}
		req.Keys = append(req.Keys, k)
		req.Values = append(req.Values, v)
	}
	if _, err := t.call(nodeID, req); err != nil {
		return 0, err
	}
	bytes := int64(len(req.Keys)) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return bytes, nil
}

// PullBlock implements BlockTransport: the reply arrives as one flat block
// body (encoded in a single pass server-side) and is decoded straight into
// dst, in request-key order — no per-value gob decoding.
func (t *TCPTransport) PullBlock(nodeID int, ks []keys.Key, dst *ps.ValueBlock) (int64, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opPullBlock, Keys: ks})
	if err != nil {
		return 0, err
	}
	if err := dst.DecodeWire(ks, resp.Block); err != nil {
		// The frame itself decoded, so the stream is still synchronized —
		// only the block body inside was malformed. No connection to drop;
		// classify it as a retryable transport failure (errors.go: "a
		// malformed reply"), letting the caller retry against a peer that
		// may answer sanely next time.
		return 0, &TransportError{Node: nodeID, Op: opName(opPullBlock), Attempts: 1, Err: err}
	}
	if dst.Dim == 0 && t.dim > 0 {
		// An all-missing reply from a map-based handler carries no dimension
		// to infer; re-shape to the transport's so absent rows read as zeroed
		// dim-d rows, per the PullInto contract.
		dst.Reset(t.dim, ks)
	}
	bytes := int64(len(ks))*8 + int64(dst.PresentCount())*int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return bytes, nil
}

// PushBlock implements BlockTransport: the block's delta rows travel as one
// flat frame, stamped with a dedup sequence exactly like a map push, so a
// push-block retried across a reconnect is applied exactly once.
func (t *TCPTransport) PushBlock(nodeID int, blk *ps.ValueBlock) (int64, error) {
	buf := getScratch()
	defer putScratch(buf)
	req := &wireRequest{
		Op:     opPushBlock,
		Client: t.client,
		Seq:    t.seq.Add(1),
		Keys:   blk.Keys,
		Block:  blk.AppendWire((*buf)[:0]),
	}
	defer func() { *buf = req.Block[:0] }()
	if _, err := t.call(nodeID, req); err != nil {
		return 0, err
	}
	bytes := int64(blk.PresentCount()) * int64(8+embedding.EncodedSize(t.dim))
	t.addBytes(bytes, 0)
	return bytes, nil
}

// Evict implements TierTransport.
func (t *TCPTransport) Evict(nodeID int, ks []keys.Key) (int, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opEvict, Keys: ks, All: ks == nil})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// TierStats implements TierTransport.
func (t *TCPTransport) TierStats(nodeID int) (ps.TierInfo, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opStats})
	if err != nil {
		return ps.TierInfo{}, err
	}
	return ps.TierInfo{Name: resp.Name, Stats: resp.Stats}, nil
}

// Lookup implements TierTransport: a pull that never materializes missing
// parameters, for evaluation-time reads.
func (t *TCPTransport) Lookup(nodeID int, ks []keys.Key) (PullResult, int64, error) {
	resp, err := t.call(nodeID, &wireRequest{Op: opLookup, Keys: ks})
	if err != nil {
		return nil, 0, err
	}
	result := resp.result()
	bytes := PayloadBytes(len(ks), result, t.dim)
	t.addBytes(int64(len(ks))*8, bytes-int64(len(ks))*8)
	return result, bytes, nil
}

// Close closes every open connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, c := range t.conns {
		c.conn.Close()
		delete(t.conns, id)
	}
}
