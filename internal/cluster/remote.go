package cluster

import (
	"fmt"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// TierHandler adapts any ps.Tier to the server-side handler interfaces, so
// one ServeTCP call exposes a whole tier (a MEM-PS backed by an SSD-PS, a
// bare SSD-PS store, the MPI baseline) behind the wire protocol.
type TierHandler struct {
	// Tier is the tier being served.
	Tier ps.Tier
}

var (
	_ PullHandler      = (*TierHandler)(nil)
	_ PushHandler      = (*TierHandler)(nil)
	_ LookupHandler    = (*TierHandler)(nil)
	_ EvictHandler     = (*TierHandler)(nil)
	_ StatsHandler     = (*TierHandler)(nil)
	_ BlockPullHandler = (*TierHandler)(nil)
	_ BlockPushHandler = (*TierHandler)(nil)
)

// HandlePull implements PullHandler via the tier's Pull.
func (h *TierHandler) HandlePull(ks []keys.Key) (PullResult, error) {
	res, err := h.Tier.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: ks})
	if err != nil {
		return nil, err
	}
	return PullResult(res), nil
}

// HandlePush implements PushHandler via the tier's Push.
func (h *TierHandler) HandlePush(deltas map[keys.Key]*embedding.Value) error {
	return h.Tier.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: deltas})
}

// HandlePullBlock implements BlockPullHandler through the ps.PullInto
// adapter, so block frames reach the tier's native block path when it has
// one and its map-based Pull otherwise.
func (h *TierHandler) HandlePullBlock(ks []keys.Key, dst *ps.ValueBlock) error {
	return ps.PullInto(h.Tier, ps.PullRequest{Shard: ps.NoShard, Keys: ks}, dst)
}

// HandlePushBlock implements BlockPushHandler through the ps.PushBlock
// adapter.
func (h *TierHandler) HandlePushBlock(blk *ps.ValueBlock) error {
	return ps.PushBlock(h.Tier, ps.PushBlockRequest{Shard: ps.NoShard, Block: blk})
}

// HandleLookup implements LookupHandler. A plain tier's Pull already leaves
// missing keys absent; tiers that materialize on pull (the MEM-PS) implement
// LookupHandler themselves and are served directly, not through this adapter.
func (h *TierHandler) HandleLookup(ks []keys.Key) (PullResult, error) {
	return h.HandlePull(ks)
}

// Evict implements EvictHandler.
func (h *TierHandler) Evict(ks []keys.Key) (int, error) { return h.Tier.Evict(ks) }

// Name implements StatsHandler.
func (h *TierHandler) Name() string { return h.Tier.Name() }

// TierStats implements StatsHandler.
func (h *TierHandler) TierStats() ps.Stats { return h.Tier.TierStats() }

// RemoteTier makes one remote node's parameter server usable as a local
// ps.Tier: Pull, Push and Evict become RPCs over the given transport. Its
// TierStats are recorded client-side — they describe the operations issued
// through this handle, with real network time in PullTime/PushTime; use
// RemoteStats for the serving tier's own cumulative statistics.
type RemoteTier struct {
	transport TierTransport
	node      int
	rec       ps.Recorder
}

var (
	_ ps.Tier        = (*RemoteTier)(nil)
	_ ps.BlockPuller = (*RemoteTier)(nil)
	_ ps.BlockPusher = (*RemoteTier)(nil)
)

// NewRemoteTier returns a tier view of node nodeID behind transport.
func NewRemoteTier(transport TierTransport, nodeID int) *RemoteTier {
	return &RemoteTier{transport: transport, node: nodeID}
}

// Name implements ps.Tier.
func (r *RemoteTier) Name() string { return fmt.Sprintf("remote[%d]", r.node) }

// Pull implements ps.Tier. Whether missing keys are materialized is the
// serving tier's policy (the MEM-PS creates them, the SSD-PS leaves them
// absent).
func (r *RemoteTier) Pull(req ps.PullRequest) (ps.Result, error) {
	start := time.Now()
	res, _, err := r.transport.Pull(r.node, req.Keys)
	if err != nil {
		return nil, err
	}
	r.rec.RecordPull(len(res), time.Since(start))
	return ps.Result(res), nil
}

// PullInto implements ps.BlockPuller: over a block-capable transport the
// reply crosses the wire as one flat frame and lands in dst without
// per-value decoding; otherwise it degrades to the map-based Pull.
func (r *RemoteTier) PullInto(req ps.PullRequest, dst *ps.ValueBlock) error {
	bt, ok := r.transport.(BlockTransport)
	if !ok {
		res, err := r.Pull(req)
		if err != nil {
			return err
		}
		ps.FillFromPull(dst, dst.Dim, req.Keys, ps.Result(res))
		return nil
	}
	start := time.Now()
	if _, err := bt.PullBlock(r.node, req.Keys, dst); err != nil {
		return err
	}
	r.rec.RecordPull(dst.PresentCount(), time.Since(start))
	return nil
}

// PushBlock implements ps.BlockPusher, carrying the deltas as one flat frame
// over a block-capable transport (map-based otherwise).
func (r *RemoteTier) PushBlock(req ps.PushBlockRequest) error {
	bt, ok := r.transport.(BlockTransport)
	if !ok {
		return r.Push(ps.PushRequest{Shard: req.Shard, Deltas: req.Block.Deltas()})
	}
	start := time.Now()
	if _, err := bt.PushBlock(r.node, req.Block); err != nil {
		return err
	}
	r.rec.RecordPush(req.Block.PresentCount(), time.Since(start))
	return nil
}

// Push implements ps.Tier.
func (r *RemoteTier) Push(req ps.PushRequest) error {
	start := time.Now()
	if _, err := r.transport.Push(r.node, req.Deltas); err != nil {
		return err
	}
	r.rec.RecordPush(len(req.Deltas), time.Since(start))
	return nil
}

// Evict implements ps.Tier.
func (r *RemoteTier) Evict(ks []keys.Key) (int, error) {
	n, err := r.transport.Evict(r.node, ks)
	if err != nil {
		return 0, err
	}
	r.rec.RecordEvict(n)
	return n, nil
}

// TierStats implements ps.Tier with the client-side view of this handle's
// operations (real wall-clock network time included).
func (r *RemoteTier) TierStats() ps.Stats { return r.rec.TierStats() }

// RemoteStats fetches the serving tier's own name and cumulative statistics
// over the wire.
func (r *RemoteTier) RemoteStats() (ps.TierInfo, error) {
	return r.transport.TierStats(r.node)
}
