package cluster

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
)

// TestSeqTrackerEvictsLeastRecentlyActive checks the maxClients eviction
// policy: when the tracker is full, the client that has been quiet longest
// loses its dedup state — never a client that pushed moments ago, whose
// in-flight retries would otherwise be re-admitted as duplicates.
func TestSeqTrackerEvictsLeastRecentlyActive(t *testing.T) {
	s := NewSeqTracker()
	for c := uint64(1); c <= maxClients; c++ {
		if !s.fresh(c, 1) {
			t.Fatalf("client %d seq 1 must be fresh", c)
		}
	}
	// Client 1 is now the most recently active; client 2 the least.
	if s.fresh(1, 1) {
		t.Fatal("client 1 replay must still dedup before eviction")
	}
	// A new client forces one eviction: it must hit client 2, not client 1.
	if !s.fresh(maxClients+1, 1) {
		t.Fatal("new client must be admitted")
	}
	if s.fresh(1, 1) {
		t.Fatal("recently-active client 1 lost its dedup state to eviction")
	}
	if !s.fresh(2, 1) {
		t.Fatal("least-recently-active client 2 should have been evicted (its replay re-admits as fresh)")
	}
}

// pushFrame sends one explicit (client, seq) push to addr over a fresh
// connection — the byte-identical retry a transport produces after a lost
// reply — and returns the response error string.
func pushFrame(t *testing.T, addr string, client, seq uint64) string {
	t.Helper()
	req := &wireRequest{
		Op:     opPush,
		Client: client,
		Seq:    seq,
		Keys:   []keys.Key{1},
		Values: []*embedding.Value{embedding.NewValue(2)},
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if _, err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Err
}

// TestSeqLogDedupsReplayAcrossRestart is the crash-window test: a push
// applied and logged by one server incarnation must be acked-without-reapply
// by the next incarnation, which reloaded its tracker from the log — the
// in-memory tracker alone would re-apply it.
func TestSeqLogDedupsReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	h := &dedupHandler{}

	incarnation := func(replayWant int) (*TCPServer, *SeqLog) {
		t.Helper()
		seqs := NewSeqTracker()
		log, replayed, err := OpenSeqLog(path, seqs)
		if err != nil {
			t.Fatal(err)
		}
		if replayed != replayWant {
			t.Fatalf("replayed %d records, want %d", replayed, replayWant)
		}
		seqs.AttachLog(log)
		srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs})
		if err != nil {
			t.Fatal(err)
		}
		return srv, log
	}

	srv1, log1 := incarnation(0)
	if errMsg := pushFrame(t, srv1.Addr(), 77, 1); errMsg != "" {
		t.Fatalf("push rejected: %s", errMsg)
	}
	// Crash: the server goes away without any orderly tracker handoff. (The
	// file close stands in for the page cache surviving a killed process.)
	srv1.Close()
	log1.Close()

	srv2, log2 := incarnation(1)
	defer srv2.Close()
	defer log2.Close()
	if errMsg := pushFrame(t, srv2.Addr(), 77, 1); errMsg != "" {
		t.Fatalf("replayed push rejected instead of acked: %s", errMsg)
	}
	h.mu.Lock()
	pushes := h.pushes
	h.mu.Unlock()
	if pushes != 1 {
		t.Fatalf("push applied %d times across restart, want 1", pushes)
	}
	// New sequences still flow, and land in the log for the next restart.
	if errMsg := pushFrame(t, srv2.Addr(), 77, 2); errMsg != "" {
		t.Fatalf("fresh push rejected: %s", errMsg)
	}
	srv2.Close()
	log2.Close()

	srv3, log3 := incarnation(2)
	defer srv3.Close()
	defer log3.Close()
}

// TestSeqLogSkipsFailedApply checks the log records only applied pushes: an
// apply that failed must not be committed, so the client's retry re-applies
// it even across a restart.
func TestSeqLogSkipsFailedApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	h := &dedupHandler{failPushes: 1}
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	seqs.AttachLog(log)
	srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	if errMsg := pushFrame(t, srv.Addr(), 9, 1); errMsg == "" {
		t.Fatal("first push should have failed to apply")
	}
	srv.Close()
	log.Close()

	// Restart: the failed apply left no record, so the retry is fresh.
	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != 0 {
		t.Fatalf("failed apply was committed: %d records", replayed)
	}
	seqs2.AttachLog(log2)
	srv2, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if errMsg := pushFrame(t, srv2.Addr(), 9, 1); errMsg != "" {
		t.Fatalf("retry after failed apply rejected: %s", errMsg)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pushes != 1 {
		t.Fatalf("retry applied %d times, want 1", h.pushes)
	}
}

// TestSeqLogToleratesTornTail simulates a crash mid-append: a trailing
// partial record must be discarded on open (the push it belonged to was
// never acked), with complete records intact and appends still working.
func TestSeqLogToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn!")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d records past the torn tail, want 1", replayed)
	}
	if seqs2.fresh(5, 1) {
		t.Fatal("replayed record must dedup")
	}
	if err := log2.Append(5, 2); err != nil {
		t.Fatal(err)
	}
	// The torn bytes are gone: a third open sees exactly two clean records.
	seqs3 := NewSeqTracker()
	log3, replayed, err := OpenSeqLog(path, seqs3)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if replayed != 2 {
		t.Fatalf("replayed %d records after torn-tail truncation, want 2", replayed)
	}
}
