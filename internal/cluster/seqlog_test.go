package cluster

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
)

// TestSeqTrackerEvictsLeastRecentlyActive checks the maxClients eviction
// policy: when the tracker is full, the client that has been quiet longest
// loses its dedup state — never a client that pushed moments ago, whose
// in-flight retries would otherwise be re-admitted as duplicates.
func TestSeqTrackerEvictsLeastRecentlyActive(t *testing.T) {
	s := NewSeqTracker()
	for c := uint64(1); c <= maxClients; c++ {
		if !s.fresh(c, 1) {
			t.Fatalf("client %d seq 1 must be fresh", c)
		}
	}
	// Client 1 is now the most recently active; client 2 the least.
	if s.fresh(1, 1) {
		t.Fatal("client 1 replay must still dedup before eviction")
	}
	// A new client forces one eviction: it must hit client 2, not client 1.
	if !s.fresh(maxClients+1, 1) {
		t.Fatal("new client must be admitted")
	}
	if s.fresh(1, 1) {
		t.Fatal("recently-active client 1 lost its dedup state to eviction")
	}
	if !s.fresh(2, 1) {
		t.Fatal("least-recently-active client 2 should have been evicted (its replay re-admits as fresh)")
	}
}

// pushFrame sends one explicit (client, seq) push to addr over a fresh
// connection — the byte-identical retry a transport produces after a lost
// reply — and returns the response error string.
func pushFrame(t *testing.T, addr string, client, seq uint64) string {
	t.Helper()
	req := &wireRequest{
		Op:     opPush,
		Client: client,
		Seq:    seq,
		Keys:   []keys.Key{1},
		Values: []*embedding.Value{embedding.NewValue(2)},
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if _, err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Err
}

// TestSeqLogDedupsReplayAcrossRestart is the crash-window test: a push
// applied and logged by one server incarnation must be acked-without-reapply
// by the next incarnation, which reloaded its tracker from the log — the
// in-memory tracker alone would re-apply it.
func TestSeqLogDedupsReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	h := &dedupHandler{}

	incarnation := func(replayWant int) (*TCPServer, *SeqLog) {
		t.Helper()
		seqs := NewSeqTracker()
		log, replayed, err := OpenSeqLog(path, seqs)
		if err != nil {
			t.Fatal(err)
		}
		if replayed != replayWant {
			t.Fatalf("replayed %d records, want %d", replayed, replayWant)
		}
		seqs.AttachLog(log)
		srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs})
		if err != nil {
			t.Fatal(err)
		}
		return srv, log
	}

	srv1, log1 := incarnation(0)
	if errMsg := pushFrame(t, srv1.Addr(), 77, 1); errMsg != "" {
		t.Fatalf("push rejected: %s", errMsg)
	}
	// Crash: the server goes away without any orderly tracker handoff. (The
	// file close stands in for the page cache surviving a killed process.)
	srv1.Close()
	log1.Close()

	srv2, log2 := incarnation(1)
	defer srv2.Close()
	defer log2.Close()
	if errMsg := pushFrame(t, srv2.Addr(), 77, 1); errMsg != "" {
		t.Fatalf("replayed push rejected instead of acked: %s", errMsg)
	}
	h.mu.Lock()
	pushes := h.pushes
	h.mu.Unlock()
	if pushes != 1 {
		t.Fatalf("push applied %d times across restart, want 1", pushes)
	}
	// New sequences still flow, and land in the log for the next restart.
	if errMsg := pushFrame(t, srv2.Addr(), 77, 2); errMsg != "" {
		t.Fatalf("fresh push rejected: %s", errMsg)
	}
	srv2.Close()
	log2.Close()

	srv3, log3 := incarnation(2)
	defer srv3.Close()
	defer log3.Close()
}

// TestSeqLogSkipsFailedApply checks the log records only applied pushes: an
// apply that failed must not be committed, so the client's retry re-applies
// it even across a restart.
func TestSeqLogSkipsFailedApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	h := &dedupHandler{failPushes: 1}
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	seqs.AttachLog(log)
	srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	if errMsg := pushFrame(t, srv.Addr(), 9, 1); errMsg == "" {
		t.Fatal("first push should have failed to apply")
	}
	srv.Close()
	log.Close()

	// Restart: the failed apply left no record, so the retry is fresh.
	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != 0 {
		t.Fatalf("failed apply was committed: %d records", replayed)
	}
	seqs2.AttachLog(log2)
	srv2, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if errMsg := pushFrame(t, srv2.Addr(), 9, 1); errMsg != "" {
		t.Fatalf("retry after failed apply rejected: %s", errMsg)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pushes != 1 {
		t.Fatalf("retry applied %d times, want 1", h.pushes)
	}
}

// TestSeqLogCompaction checks the checkpoint-flush compaction: the rewritten
// log shrinks to the records still inside the dedup window, keeps deduping
// them across a restart, and stays appendable afterwards.
func TestSeqLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	seqs.AttachLog(log)

	// Push 2*seqWindow sequences through fresh+commit: the first half falls
	// out of the dedup window, so compaction must drop its records.
	total := 2 * seqWindow
	for seq := uint64(1); seq <= uint64(total); seq++ {
		if !seqs.fresh(42, seq) {
			t.Fatalf("seq %d must be fresh", seq)
		}
		seqs.commit(42, seq)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != int64(total)*seqLogRecordSize {
		t.Fatalf("pre-compaction size %d, want %d", before.Size(), int64(total)*seqLogRecordSize)
	}

	kept, err := seqs.CompactLog()
	if err != nil {
		t.Fatal(err)
	}
	if kept <= 0 || kept > seqWindow {
		t.Fatalf("kept %d records, want (0, %d]", kept, seqWindow)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != int64(kept)*seqLogRecordSize {
		t.Fatalf("post-compaction size %d, want %d", after.Size(), int64(kept)*seqLogRecordSize)
	}

	// Appends keep flowing into the compacted file (not the unlinked one).
	if !seqs.fresh(42, uint64(total+1)) {
		t.Fatal("new sequence must be fresh after compaction")
	}
	seqs.commit(42, uint64(total+1))
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart replays the compacted log: in-window records still dedup,
	// including the one appended after the compaction.
	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != kept+1 {
		t.Fatalf("replayed %d records, want %d", replayed, kept+1)
	}
	if seqs2.fresh(42, uint64(total)) {
		t.Fatal("compacted log lost an in-window record")
	}
	if seqs2.fresh(42, uint64(total+1)) {
		t.Fatal("post-compaction append lost")
	}
	// The expired half stays refused — by the window check, not the log.
	if seqs2.fresh(42, 1) {
		t.Fatal("expired sequence re-admitted after compaction")
	}
}

// TestSeqLogCompactionPreservesTornTailHandling checks the two crash paths
// compose: a log carrying a torn tail from one crash is compacted by the
// next incarnation without resurrecting or tripping over the partial record.
func TestSeqLogCompactionPreservesTornTailHandling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	seqs.AttachLog(log)
	for seq := uint64(1); seq <= 3; seq++ {
		seqs.fresh(7, seq)
		seqs.commit(7, seq)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
	seqs2.AttachLog(log2)
	kept, err := seqs2.CompactLog()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 {
		t.Fatalf("kept %d records, want 3", kept)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 3*seqLogRecordSize {
		t.Fatalf("compacted size %d, want %d (torn bytes must not survive)", st.Size(), 3*seqLogRecordSize)
	}
	seqs3 := NewSeqTracker()
	log3, replayed, err := OpenSeqLog(path, seqs3)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if replayed != 3 {
		t.Fatalf("replayed %d records after compaction, want 3", replayed)
	}
}

// TestSeqLogToleratesTornTail simulates a crash mid-append: a trailing
// partial record must be discarded on open (the push it belonged to was
// never acked), with complete records intact and appends still working.
func TestSeqLogToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqlog")
	seqs := NewSeqTracker()
	log, _, err := OpenSeqLog(path, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn!")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs2 := NewSeqTracker()
	log2, replayed, err := OpenSeqLog(path, seqs2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d records past the torn tail, want 1", replayed)
	}
	if seqs2.fresh(5, 1) {
		t.Fatal("replayed record must dedup")
	}
	if err := log2.Append(5, 2); err != nil {
		t.Fatal(err)
	}
	// The torn bytes are gone: a third open sees exactly two clean records.
	seqs3 := NewSeqTracker()
	log3, replayed, err := OpenSeqLog(path, seqs3)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if replayed != 2 {
		t.Fatalf("replayed %d records after torn-tail truncation, want 2", replayed)
	}
}
