package cluster

import (
	"testing"

	"hps/internal/keys"
	"hps/internal/ps"
)

// pushSink gives the wire fixture a block push path so a benchmark can drive
// full pull+push cycles; the deltas themselves are discarded — the benchmark
// measures the wire, not the apply.
type pushSink struct {
	*wireHandler
}

func (pushSink) HandlePushBlock(*ps.ValueBlock) error { return nil }

// BenchmarkWireBytesPerBatch measures the bytes one batch-shaped block cycle
// actually puts on the socket: a 2048-key block pull plus a 2048-row fp32
// push at dim 8 (BenchmarkStagePushMultiNode's per-shard shape), under each
// wire mode. gob-fp32 is the pre-raw-frame wire (the PR 5 baseline, forced by
// downgrading the negotiated connections); the raw modes carry the negotiated
// pull precision, with push bodies at fp32 unless the -push variants opt the
// push direction into the same precision. The wirebytes/op
// metric is the one BENCH_pr6.json records; ns/op here includes loopback
// syscalls and is not a transport benchmark.
func BenchmarkWireBytesPerBatch(b *testing.B) {
	const (
		dim  = 8
		rows = 2048
	)
	ks := make([]keys.Key, rows)
	for i := range ks {
		ks[i] = keys.Key(keys.Mix64(uint64(i)))
	}
	ks = keys.Dedup(ks)

	for _, mode := range []struct {
		name      string
		raw       bool
		prec      ps.Precision
		quantPush bool
	}{
		{"gob-fp32", false, ps.PrecisionFP32, false},
		{"raw-fp32", true, ps.PrecisionFP32, false},
		{"raw-fp16", true, ps.PrecisionFP16, false},
		{"raw-int8", true, ps.PrecisionInt8, false},
		{"raw-fp16-push", true, ps.PrecisionFP16, true},
		{"raw-int8-push", true, ps.PrecisionInt8, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := ServeTCP("127.0.0.1:0", pushSink{&wireHandler{mapHandler: newMapHandler(dim)}})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			tr := NewTCPTransport(map[int]string{0: srv.Addr()}, dim)
			defer tr.Close()
			tr.SetWirePrecision(mode.prec)
			tr.SetPushQuantization(mode.quantPush)

			dst := ps.NewValueBlock(dim)
			if _, err := tr.PullBlock(0, ks, dst); err != nil {
				b.Fatal(err)
			}
			push := ps.NewValueBlock(dim)
			push.CopyFrom(dst)
			if !mode.raw {
				// Downgrade the dialed connections to gob frames, as if the
				// hello had answered wire version 1.
				tr.mu.Lock()
				for _, p := range tr.peers {
					for _, c := range p.conns {
						c.raw = false
					}
				}
				tr.mu.Unlock()
			}

			before := tr.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.PullBlock(0, ks, dst); err != nil {
					b.Fatal(err)
				}
				if _, err := tr.PushBlock(0, push); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := tr.Stats()
			wire := (after.WireOut + after.WireIn) - (before.WireOut + before.WireIn)
			b.ReportMetric(float64(wire)/float64(b.N), "wirebytes/op")
		})
	}
}
