package cluster

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
)

func encodeRequestFrame(t *testing.T, req *wireRequest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWireRoundTrip(t *testing.T) {
	v := embedding.NewValue(4)
	v.Weights[2] = 1.5
	v.Freq = 3
	req := &wireRequest{
		Op:     opPush,
		Client: 9,
		Seq:    2,
		Keys:   []keys.Key{10, 20},
		Values: []*embedding.Value{v, embedding.NewValue(4)},
	}
	frame := encodeRequestFrame(t, req)
	var got wireRequest
	if _, err := readFrame(bytes.NewReader(frame), &got); err != nil {
		t.Fatal(err)
	}
	if err := got.validate(); err != nil {
		t.Fatal(err)
	}
	if got.Op != opPush || got.Client != 9 || got.Seq != 2 || len(got.Keys) != 2 {
		t.Fatalf("decoded request = %+v", got)
	}
	if got.Values[0].Weights[2] != 1.5 || got.Values[0].Freq != 3 {
		t.Fatal("value payload corrupted through the codec")
	}
}

func TestWireRejectsBadFrames(t *testing.T) {
	// Truncated prefix.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0}), &wireRequest{}); err == nil {
		t.Fatal("truncated prefix must fail")
	}
	// Clean EOF between frames is io.EOF exactly.
	if _, err := readFrame(bytes.NewReader(nil), &wireRequest{}); err != io.EOF {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
	// Zero and oversized lengths.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0}), &wireRequest{}); err == nil {
		t.Fatal("zero-length frame must fail")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), &wireRequest{}); err == nil {
		t.Fatal("oversized frame must fail")
	}
	// Truncated payload.
	frame := encodeRequestFrame(t, &wireRequest{Op: opPull, Keys: []keys.Key{1}})
	if _, err := readFrame(bytes.NewReader(frame[:len(frame)-3]), &wireRequest{}); err == nil {
		t.Fatal("truncated payload must fail")
	}
	// Garbage gob payload.
	garbage := append([]byte{0, 0, 0, 4}, 1, 2, 3, 4)
	if _, err := readFrame(bytes.NewReader(garbage), &wireRequest{}); err == nil {
		t.Fatal("garbage payload must fail")
	}
}

func TestWireRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  wireRequest
		ok   bool
	}{
		{"pull", wireRequest{Op: opPull, Keys: []keys.Key{1}}, true},
		{"stats", wireRequest{Op: opStats}, true},
		{"unknown op", wireRequest{Op: 99}, false},
		{"pull with values", wireRequest{Op: opPull, Values: []*embedding.Value{embedding.NewValue(2)}}, false},
		{"push mismatched", wireRequest{Op: opPush, Keys: []keys.Key{1, 2}, Values: []*embedding.Value{embedding.NewValue(2)}}, false},
		{"push nil value", wireRequest{Op: opPush, Keys: []keys.Key{1}, Values: []*embedding.Value{nil}}, false},
		{"push ok", wireRequest{Op: opPush, Keys: []keys.Key{1}, Values: []*embedding.Value{embedding.NewValue(2)}}, true},
	}
	for _, tc := range cases {
		if err := tc.req.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSeqTrackerDedup(t *testing.T) {
	s := NewSeqTracker()
	if !s.fresh(1, 1) {
		t.Fatal("first (1,1) must be fresh")
	}
	if s.fresh(1, 1) {
		t.Fatal("replayed (1,1) must be deduplicated")
	}
	if !s.fresh(1, 2) || !s.fresh(2, 1) {
		t.Fatal("new seqs and new clients must be fresh")
	}
	if s.fresh(1, 1) {
		t.Fatal("old seq must stay deduplicated after newer ones")
	}
	// Out-of-order first deliveries are both fresh (concurrent pushes race
	// for the connection); only true replays are duplicates.
	if !s.fresh(3, 2) {
		t.Fatal("first (3,2) must be fresh")
	}
	if !s.fresh(3, 1) {
		t.Fatal("out-of-order (3,1) must still be fresh: it was never applied")
	}
	if s.fresh(3, 1) || s.fresh(3, 2) {
		t.Fatal("replays of applied out-of-order seqs must be deduplicated")
	}
	// Seq 0 marks non-push traffic and never dedups.
	if !s.fresh(1, 0) || !s.fresh(1, 0) {
		t.Fatal("seq 0 must always pass")
	}
	// A nil tracker is a no-op pass-through.
	var nilTracker *SeqTracker
	if !nilTracker.fresh(1, 1) {
		t.Fatal("nil tracker must pass everything")
	}
}

// dedupHandler counts pushes applied, for duplicate-frame tests; the first
// failPushes applies fail.
type dedupHandler struct {
	mu         sync.Mutex
	pushes     int
	failPushes int
}

func (h *dedupHandler) HandlePull(ks []keys.Key) (PullResult, error) {
	return make(PullResult), nil
}

func (h *dedupHandler) HandlePush(map[keys.Key]*embedding.Value) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failPushes > 0 {
		h.failPushes--
		return errors.New("injected apply failure")
	}
	h.pushes++
	return nil
}

// TestServerDedupsReplayedPushFrame replays a byte-identical push frame —
// exactly what a transport retry after a lost reply produces — and checks
// the server applies it once while still acknowledging both.
func TestServerDedupsReplayedPushFrame(t *testing.T) {
	h := &dedupHandler{}
	seqs := NewSeqTracker()
	srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := &wireRequest{
		Op:     opPush,
		Client: 77,
		Seq:    1,
		Keys:   []keys.Key{1},
		Values: []*embedding.Value{embedding.NewValue(2)},
	}
	send := func() {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := writeFrame(conn, req); err != nil {
			t.Fatal(err)
		}
		var resp wireResponse
		if _, err := readFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("push rejected: %s", resp.Err)
		}
	}
	send() // original
	send() // retry after a (simulated) lost reply, over a new connection
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pushes != 1 {
		t.Fatalf("replayed push applied %d times, want 1", h.pushes)
	}
}

// TestServerRetriesFailedPushApply checks the other half of exactly-once: a
// push whose apply FAILED must not be recorded as applied — the retry has to
// re-apply it, not get acked as a duplicate of nothing.
func TestServerRetriesFailedPushApply(t *testing.T) {
	h := &dedupHandler{failPushes: 1}
	srv, err := ServeTCPOptions("127.0.0.1:0", h, ServerOptions{Seqs: NewSeqTracker()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := &wireRequest{
		Op:     opPush,
		Client: 78,
		Seq:    1,
		Keys:   []keys.Key{1},
		Values: []*embedding.Value{embedding.NewValue(2)},
	}
	send := func() string {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := writeFrame(conn, req); err != nil {
			t.Fatal(err)
		}
		var resp wireResponse
		if _, err := readFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Err
	}
	if errMsg := send(); errMsg == "" {
		t.Fatal("first push should have failed to apply")
	}
	if errMsg := send(); errMsg != "" {
		t.Fatalf("retried push rejected: %s", errMsg)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pushes != 1 {
		t.Fatalf("retry after failed apply applied %d times, want 1", h.pushes)
	}
}
