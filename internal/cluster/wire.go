package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// The wire protocol between nodes is a stream of length-prefixed gob frames:
// a 4-byte big-endian payload length followed by one gob-encoded wireRequest
// (client to server) or wireResponse (server to client). The explicit frame
// boundary is what keeps a malformed or truncated payload contained — the
// server can reject a frame without losing stream synchronization, and the
// length cap bounds how much memory a single frame may ask it to allocate.

// RPC operations.
const (
	opPull      uint8 = 1 // read values of a key set (creating them is handler policy)
	opPush      uint8 = 2 // merge per-key deltas into the shard
	opEvict     uint8 = 3 // demote keys out of the tier (All = everything)
	opStats     uint8 = 4 // read the tier's name and uniform statistics
	opLookup    uint8 = 5 // read values without materializing missing keys
	opPullBlock uint8 = 6 // pull whose reply is one flat value block
	opPushBlock uint8 = 7 // push whose deltas arrive as one flat value block
)

func opName(op uint8) string {
	switch op {
	case opPull:
		return "pull"
	case opPush:
		return "push"
	case opEvict:
		return "evict"
	case opStats:
		return "stats"
	case opLookup:
		return "lookup"
	case opPullBlock:
		return "pull-block"
	case opPushBlock:
		return "push-block"
	}
	return fmt.Sprintf("op#%d", op)
}

// MaxFrameBytes caps the payload of a single wire frame. Larger frames are
// rejected before any allocation happens, so a corrupt length prefix cannot
// make a peer allocate unbounded memory.
const MaxFrameBytes = 64 << 20

// wireRequest is one batched RPC from a client to a shard server.
type wireRequest struct {
	// Op selects the operation.
	Op uint8
	// Client identifies the sending transport; with Seq it lets the server
	// deduplicate pushes retried across a reconnect.
	Client uint64
	// Seq is the client's push sequence number (0 for non-push operations).
	Seq uint64
	// Keys are the requested keys (pull/evict/lookup) or the delta keys (push).
	Keys []keys.Key
	// Values are the push deltas, parallel to Keys.
	Values []*embedding.Value
	// Block is a push-block's delta rows (parallel to Keys), encoded with
	// ps.ValueBlock.AppendWire — the whole batch in one flat buffer, instead
	// of one gob value per parameter.
	Block []byte
	// All marks an evict of everything evictable (the nil-slice form of
	// ps.Tier.Evict, which gob cannot distinguish from an empty slice).
	All bool
}

// wireResponse is the reply to one wireRequest.
type wireResponse struct {
	// Keys / Values carry pull and lookup results.
	Keys   []keys.Key
	Values []*embedding.Value
	// Block carries a pull-block result: the flat rows of the requested keys
	// in request order (the keys themselves are not echoed).
	Block []byte
	// Count is the evicted-key count of an evict.
	Count int
	// Name / Stats carry a stats reply.
	Name  string
	Stats ps.Stats
	// Err is the shard-side failure, empty on success.
	Err string
}

// validate rejects requests that decoded cleanly but are semantically
// malformed, so handlers never see them.
func (r *wireRequest) validate() error {
	switch r.Op {
	case opPull, opEvict, opStats, opLookup, opPullBlock:
		if len(r.Values) != 0 {
			return fmt.Errorf("cluster: %s carries %d values", opName(r.Op), len(r.Values))
		}
		if len(r.Block) != 0 {
			return fmt.Errorf("cluster: %s carries a %d-byte block", opName(r.Op), len(r.Block))
		}
	case opPush:
		if len(r.Values) != len(r.Keys) {
			return fmt.Errorf("cluster: push has %d keys but %d values", len(r.Keys), len(r.Values))
		}
	case opPushBlock:
		if len(r.Values) != 0 {
			return fmt.Errorf("cluster: push-block carries %d gob values", len(r.Values))
		}
		if len(r.Block) == 0 {
			return fmt.Errorf("cluster: push-block carries no block")
		}
	default:
		return fmt.Errorf("cluster: unknown operation %d", r.Op)
	}
	for i, v := range r.Values {
		if v == nil {
			return fmt.Errorf("cluster: push value %d is nil", i)
		}
	}
	return nil
}

// deltas converts a push request's parallel key/value slices into the map
// form handlers consume.
func (r *wireRequest) deltas() map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, len(r.Keys))
	for i, k := range r.Keys {
		out[k] = r.Values[i]
	}
	return out
}

// setResult stores a pull/lookup result as parallel slices (gob-friendly and
// deterministic in size).
func (w *wireResponse) setResult(res PullResult) {
	w.Keys = make([]keys.Key, 0, len(res))
	w.Values = make([]*embedding.Value, 0, len(res))
	for k, v := range res {
		if v == nil {
			continue
		}
		w.Keys = append(w.Keys, k)
		w.Values = append(w.Values, v)
	}
}

// result converts a response's parallel slices back into a PullResult,
// dropping entries a hostile peer could have left inconsistent.
func (w *wireResponse) result() PullResult {
	out := make(PullResult, len(w.Keys))
	for i, k := range w.Keys {
		if i < len(w.Values) && w.Values[i] != nil {
			out[k] = w.Values[i]
		}
	}
	return out
}

// frameBufPool recycles the encode buffers of writeFrame and the payload
// buffers of readFrame, so the steady per-batch RPC stream does not allocate
// a fresh frame buffer per call.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// scratchPool recycles the byte slices used to encode block bodies before
// they enter a frame (and anywhere else a transient byte buffer is needed).
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledScratch keeps the occasional giant frame from pinning its buffer
// in the pool forever.
const maxPooledScratch = 4 << 20

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte) {
	if cap(*b) > maxPooledScratch {
		return
	}
	*b = (*b)[:0]
	scratchPool.Put(b)
}

// writeFrame gob-encodes v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() > maxPooledScratch {
			return // same cap as the read side: giant frames don't pin pool memory
		}
		buf.Reset()
		frameBufPool.Put(buf)
	}()
	buf.Write([]byte{0, 0, 0, 0}) // length prefix placeholder
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	payload := buf.Len() - 4
	if payload > MaxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", payload, MaxFrameBytes)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame from r and gob-decodes it into v.
// It returns io.EOF unwrapped when the stream ends cleanly between frames so
// connection loops can distinguish shutdown from corruption.
func readFrame(r io.Reader, v any) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("cluster: read frame prefix: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 || n > MaxFrameBytes {
		return fmt.Errorf("cluster: frame length %d out of range (limit %d)", n, MaxFrameBytes)
	}
	scratch := getScratch()
	defer putScratch(scratch)
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("cluster: read frame payload: %w", err)
	}
	return decodeFrame(payload, v)
}

// decodeFrame gob-decodes one frame payload, converting any decoder panic
// into an error: the bytes may come from a hostile or corrupt peer and must
// never take the process down.
func decodeFrame(payload []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: decode frame: panic: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}
