package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// The wire protocol between nodes is a stream of length-prefixed frames: a
// 4-byte big-endian prefix followed by one payload. Two frame families share
// the stream, distinguished by the prefix's top bit (payloads are capped far
// below it, so gob traffic can never set it by accident):
//
//   - gob frames (bit 31 clear): one gob-encoded wireRequest (client to
//     server) or wireResponse (server to client) — wire version 1, the
//     fallback every peer speaks.
//   - raw frames (bit 31 set): a fixed binary layout for the block hot path —
//     wire version 2 — that skips gob entirely in both directions: keys and
//     block bodies are appended straight into the frame and decoded straight
//     out of it (ps.ValueBlock.DecodeWire lands rows in the destination
//     slabs, no intermediate copy).
//
// The explicit frame boundary is what keeps a malformed or truncated payload
// contained — the server can reject a frame without losing stream
// synchronization, and the length cap bounds how much memory a single frame
// may ask it to allocate.

// RPC operations.
const (
	opPull      uint8 = 1 // read values of a key set (creating them is handler policy)
	opPush      uint8 = 2 // merge per-key deltas into the shard
	opEvict     uint8 = 3 // demote keys out of the tier (All = everything)
	opStats     uint8 = 4 // read the tier's name and uniform statistics
	opLookup    uint8 = 5 // read values without materializing missing keys
	opPullBlock uint8 = 6 // pull whose reply is one flat value block
	opPushBlock uint8 = 7 // push whose deltas arrive as one flat value block

	// Serving-tier operations (see serving.go for the handler contracts).
	opPredict     uint8 = 8  // score feature-key batches against live parameters
	opServeConfig uint8 = 9  // activate/refresh the serving tier (addrs, dense params)
	opServeStats  uint8 = 10 // read the serving-tier counters

	// Replication operations (see ring.go for the membership types).
	opReplicate  uint8 = 11 // primary forwards an applied delta block to a backup
	opTransfer   uint8 = 12 // key-range state transfer: set rows outright (re-replication/resharding)
	opMembership uint8 = 13 // install an epoch-versioned membership change
)

// rawMagicBit marks a length prefix as introducing a raw (non-gob) frame.
const rawMagicBit uint32 = 1 << 31

// rawWireVersion is the highest wire version this build speaks: version 1 is
// gob-only, version 2 adds the raw block frames. A hello exchange pins the
// version (and the pull-reply precision) per connection; a peer that answers
// with a lower version keeps the connection on gob frames.
const rawWireVersion = 2

// Raw frame operations. Every raw payload starts with the op byte; requests
// and responses are distinct ops so a desynchronized stream is detected
// instead of misparsed.
const (
	rawOpHello         uint8 = 1 // negotiate wire version + pull precision
	rawOpHelloResp     uint8 = 2
	rawOpPullBlock     uint8 = 3 // pull-block request: keys only
	rawOpPullBlockResp uint8 = 4 // pull-block reply: encoded block body
	rawOpPushBlock     uint8 = 5 // push-block request: dedup stamp, keys, body
	rawOpPushBlockResp uint8 = 6
	rawOpPredict       uint8 = 7 // predict request: per-example counts + flat keys
	rawOpPredictResp   uint8 = 8 // predict reply: one float32 score per example
	rawOpReplicate     uint8 = 9 // replicate request: push-block layout with the ORIGIN's dedup stamp
	rawOpReplicateResp uint8 = 10
)

// rawStatus values of a raw response's second byte.
const (
	rawStatusOK         uint8 = 0
	rawStatusErr        uint8 = 1 // payload carries the error message
	rawStatusOverloaded uint8 = 2 // admission queue full: typed, retryable
)

func rawRespOp(op uint8) uint8 {
	switch op {
	case rawOpHello:
		return rawOpHelloResp
	case rawOpPullBlock:
		return rawOpPullBlockResp
	case rawOpPushBlock:
		return rawOpPushBlockResp
	case rawOpPredict:
		return rawOpPredictResp
	case rawOpReplicate:
		return rawOpReplicateResp
	}
	return 0
}

func rawOpName(op uint8) string {
	switch op {
	case rawOpHello, rawOpHelloResp:
		return "hello"
	case rawOpPullBlock, rawOpPullBlockResp:
		return "pull-block"
	case rawOpPushBlock, rawOpPushBlockResp:
		return "push-block"
	case rawOpPredict, rawOpPredictResp:
		return "predict"
	case rawOpReplicate, rawOpReplicateResp:
		return "replicate"
	}
	return fmt.Sprintf("raw-op#%d", op)
}

func opName(op uint8) string {
	switch op {
	case opPull:
		return "pull"
	case opPush:
		return "push"
	case opEvict:
		return "evict"
	case opStats:
		return "stats"
	case opLookup:
		return "lookup"
	case opPullBlock:
		return "pull-block"
	case opPushBlock:
		return "push-block"
	case opPredict:
		return "predict"
	case opServeConfig:
		return "serve-config"
	case opServeStats:
		return "serve-stats"
	case opReplicate:
		return "replicate"
	case opTransfer:
		return "transfer"
	case opMembership:
		return "membership"
	}
	return fmt.Sprintf("op#%d", op)
}

// MaxFrameBytes caps the payload of a single wire frame. Larger frames are
// rejected before any allocation happens, so a corrupt length prefix cannot
// make a peer allocate unbounded memory.
const MaxFrameBytes = 64 << 20

// wireRequest is one batched RPC from a client to a shard server.
type wireRequest struct {
	// Op selects the operation.
	Op uint8
	// Client identifies the sending transport; with Seq it lets the server
	// deduplicate pushes retried across a reconnect.
	Client uint64
	// Seq is the client's push sequence number (0 for non-push operations).
	Seq uint64
	// Keys are the requested keys (pull/evict/lookup) or the delta keys (push).
	Keys []keys.Key
	// Values are the push deltas, parallel to Keys.
	Values []*embedding.Value
	// Block is a push-block's delta rows (parallel to Keys), encoded with
	// ps.ValueBlock.AppendWire — the whole batch in one flat buffer, instead
	// of one gob value per parameter.
	Block []byte
	// All marks an evict of everything evictable (the nil-slice form of
	// ps.Tier.Evict, which gob cannot distinguish from an empty slice).
	All bool
	// Counts is a predict request's per-example feature counts; Keys then
	// holds every example's features concatenated (PredictRequest's layout).
	Counts []uint32
	// Serve is a serve-config request's payload.
	Serve ServeConfig
	// Membership is a membership request's payload. For a replicate request,
	// Client/Seq carry the ORIGIN client's dedup stamp (the one the primary
	// applied), not the forwarding transport's — that is what lets a backup
	// recognize the origin's own retry of the same push after a promotion.
	Membership MembershipUpdate
}

// wireResponse is the reply to one wireRequest.
type wireResponse struct {
	// Keys / Values carry pull and lookup results.
	Keys   []keys.Key
	Values []*embedding.Value
	// Block carries a pull-block result: the flat rows of the requested keys
	// in request order (the keys themselves are not echoed).
	Block []byte
	// Count is the evicted-key count of an evict.
	Count int
	// Name / Stats carry a stats reply.
	Name  string
	Stats ps.Stats
	// Scores carries a predict reply: one click probability per example.
	Scores []float32
	// Serving carries a serve-stats reply.
	Serving ServingStats
	// Err is the shard-side failure, empty on success.
	Err string
	// Overloaded marks Err as an admission rejection, so the client rebuilds
	// the typed, retryable OverloadError instead of a generic RemoteError.
	Overloaded bool
}

// validate rejects requests that decoded cleanly but are semantically
// malformed, so handlers never see them.
func (r *wireRequest) validate() error {
	switch r.Op {
	case opPull, opEvict, opStats, opLookup, opPullBlock:
		if len(r.Values) != 0 {
			return fmt.Errorf("cluster: %s carries %d values", opName(r.Op), len(r.Values))
		}
		if len(r.Block) != 0 {
			return fmt.Errorf("cluster: %s carries a %d-byte block", opName(r.Op), len(r.Block))
		}
	case opPush:
		if len(r.Values) != len(r.Keys) {
			return fmt.Errorf("cluster: push has %d keys but %d values", len(r.Keys), len(r.Values))
		}
	case opPushBlock, opReplicate, opTransfer:
		if len(r.Values) != 0 {
			return fmt.Errorf("cluster: %s carries %d gob values", opName(r.Op), len(r.Values))
		}
		if len(r.Block) == 0 {
			return fmt.Errorf("cluster: %s carries no block", opName(r.Op))
		}
	case opMembership:
		if len(r.Keys) != 0 || len(r.Values) != 0 || len(r.Block) != 0 {
			return fmt.Errorf("cluster: membership carries a parameter payload")
		}
		return r.Membership.Validate()
	case opPredict:
		if len(r.Values) != 0 || len(r.Block) != 0 {
			return fmt.Errorf("cluster: predict carries push payload")
		}
		return PredictRequest{Counts: r.Counts, Keys: r.Keys}.Validate()
	case opServeConfig, opServeStats:
		if len(r.Keys) != 0 || len(r.Values) != 0 || len(r.Block) != 0 {
			return fmt.Errorf("cluster: %s carries a parameter payload", opName(r.Op))
		}
	default:
		return fmt.Errorf("cluster: unknown operation %d", r.Op)
	}
	for i, v := range r.Values {
		if v == nil {
			return fmt.Errorf("cluster: push value %d is nil", i)
		}
	}
	return nil
}

// deltas converts a push request's parallel key/value slices into the map
// form handlers consume.
func (r *wireRequest) deltas() map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, len(r.Keys))
	for i, k := range r.Keys {
		out[k] = r.Values[i]
	}
	return out
}

// setResult stores a pull/lookup result as parallel slices (gob-friendly and
// deterministic in size).
func (w *wireResponse) setResult(res PullResult) {
	w.Keys = make([]keys.Key, 0, len(res))
	w.Values = make([]*embedding.Value, 0, len(res))
	for k, v := range res {
		if v == nil {
			continue
		}
		w.Keys = append(w.Keys, k)
		w.Values = append(w.Values, v)
	}
}

// result converts a response's parallel slices back into a PullResult,
// dropping entries a hostile peer could have left inconsistent.
func (w *wireResponse) result() PullResult {
	out := make(PullResult, len(w.Keys))
	for i, k := range w.Keys {
		if i < len(w.Values) && w.Values[i] != nil {
			out[k] = w.Values[i]
		}
	}
	return out
}

// frameBufPool recycles the encode buffers of writeFrame and the payload
// buffers of readFrame, so the steady per-batch RPC stream does not allocate
// a fresh frame buffer per call.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// scratchPool recycles the byte slices used to encode block bodies before
// they enter a frame (and anywhere else a transient byte buffer is needed).
var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledScratch keeps the occasional giant frame from pinning its buffer
// in the pool forever.
const maxPooledScratch = 4 << 20

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte) {
	if cap(*b) > maxPooledScratch {
		return
	}
	*b = (*b)[:0]
	scratchPool.Put(b)
}

// writeFrame gob-encodes v and writes it as one length-prefixed frame,
// returning the bytes written (the actual on-wire cost of the frame).
func writeFrame(w io.Writer, v any) (int, error) {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() > maxPooledScratch {
			return // same cap as the read side: giant frames don't pin pool memory
		}
		buf.Reset()
		frameBufPool.Put(buf)
	}()
	buf.Write([]byte{0, 0, 0, 0}) // length prefix placeholder
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return 0, fmt.Errorf("cluster: encode frame: %w", err)
	}
	payload := buf.Len() - 4
	if payload > MaxFrameBytes {
		return 0, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", payload, MaxFrameBytes)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	return w.Write(b)
}

// writeRawFrame stamps the raw length prefix into frame's reserved first four
// bytes and writes the whole frame in one call, returning the bytes written.
// The builder appends the payload after a 4-byte placeholder so the frame
// goes out in a single Write — no separate prefix write, no concatenation.
func writeRawFrame(w io.Writer, frame []byte) (int, error) {
	payload := len(frame) - 4
	if payload <= 0 || payload > MaxFrameBytes {
		return 0, fmt.Errorf("cluster: raw frame of %d bytes out of range (limit %d)", payload, MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(frame[:4], rawMagicBit|uint32(payload))
	return w.Write(frame)
}

// readFramePrefix reads one frame's length prefix, reporting whether the
// frame is raw and how long its payload is. It returns io.EOF unwrapped when
// the stream ends cleanly between frames so connection loops can distinguish
// shutdown from corruption.
func readFramePrefix(r io.Reader) (n uint32, raw bool, err error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return 0, false, io.EOF
		}
		return 0, false, fmt.Errorf("cluster: read frame prefix: %w", err)
	}
	n = binary.BigEndian.Uint32(prefix[:])
	raw = n&rawMagicBit != 0
	n &^= rawMagicBit
	if n == 0 || n > MaxFrameBytes {
		return 0, false, fmt.Errorf("cluster: frame length %d out of range (limit %d)", n, MaxFrameBytes)
	}
	return n, raw, nil
}

// readFramePayload fills the pooled scratch slice with a frame's n payload
// bytes and returns the filled view. The caller returns scratch to the pool
// when it is done with the view — for raw block replies that is after
// DecodeWire has landed the rows in their destination slabs, which is what
// makes the receive buffer a reusable landing zone instead of a per-reply
// allocation.
func readFramePayload(r io.Reader, n uint32, scratch *[]byte) ([]byte, error) {
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: read frame payload: %w", err)
	}
	return payload, nil
}

// readFrame reads one length-prefixed gob frame from r and decodes it into v,
// returning the total bytes read. A raw frame in gob position is rejected —
// the families never interleave inside one RPC exchange.
func readFrame(r io.Reader, v any) (int, error) {
	n, raw, err := readFramePrefix(r)
	if err != nil {
		return 0, err
	}
	if raw {
		return 0, fmt.Errorf("cluster: raw frame where a gob frame was expected")
	}
	scratch := getScratch()
	defer putScratch(scratch)
	payload, err := readFramePayload(r, n, scratch)
	if err != nil {
		return 0, err
	}
	return 4 + int(n), decodeFrame(payload, v)
}

// decodeFrame gob-decodes one frame payload, converting any decoder panic
// into an error: the bytes may come from a hostile or corrupt peer and must
// never take the process down.
func decodeFrame(payload []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: decode frame: panic: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}

// Raw payload layouts (all integers little-endian, after the 4-byte
// big-endian stream prefix):
//
//	hello  req : op, version, precision, pad
//	hello  resp: op, status, version, precision
//	pull   req : op, pad[3], nkeys u32, keys u64...
//	pull   resp: op, status, pad[2], then the block body (ok) or message (err)
//	push   req : op, pad[3], client u64, seq u64, nkeys u32, keys u64..., body
//	push   resp: op, status, pad[2], then nothing (ok) or message (err)
//	predict req : op, pad[3], nexamples u32, counts u32..., keys u64...
//	predict resp: op, status, pad[2], nscores u32, scores f32... (ok) or
//	              message (err / overloaded)
//
// Keys travel as fixed 8-byte words and bodies as ps wire bytes, so both ends
// move them with append/DecodeWire instead of an encoder.

// appendRawPullReq appends a pull-block request payload to dst.
func appendRawPullReq(dst []byte, ks []keys.Key) []byte {
	dst = append(dst, rawOpPullBlock, 0, 0, 0)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(ks)))
	dst = append(dst, b[:]...)
	return appendRawKeys(dst, ks)
}

// appendRawPushReq appends a push-block request payload up to the keys; the
// caller appends the encoded block body behind it.
func appendRawPushReq(dst []byte, client, seq uint64, ks []keys.Key) []byte {
	return appendRawBlockReq(dst, rawOpPushBlock, client, seq, ks)
}

// appendRawReplicateReq is appendRawPushReq with the replicate op: identical
// layout, but client/seq are the ORIGIN's dedup stamp rather than the sending
// transport's.
func appendRawReplicateReq(dst []byte, client, seq uint64, ks []keys.Key) []byte {
	return appendRawBlockReq(dst, rawOpReplicate, client, seq, ks)
}

func appendRawBlockReq(dst []byte, op uint8, client, seq uint64, ks []keys.Key) []byte {
	dst = append(dst, op, 0, 0, 0)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], client)
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], seq)
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(ks)))
	dst = append(dst, b[:4]...)
	return appendRawKeys(dst, ks)
}

func appendRawKeys(dst []byte, ks []keys.Key) []byte {
	var b [8]byte
	for _, k := range ks {
		binary.LittleEndian.PutUint64(b[:], uint64(k))
		dst = append(dst, b[:]...)
	}
	return dst
}

// parseRawPullReq validates and decodes a pull-block request payload. The
// payload may come from a hostile peer: the key count must account for the
// payload exactly.
func parseRawPullReq(payload []byte) ([]keys.Key, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("cluster: raw pull-block request of %d bytes", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	if n*8 != len(payload)-8 {
		return nil, fmt.Errorf("cluster: raw pull-block request: %d keys in %d payload bytes", n, len(payload))
	}
	return parseRawKeys(payload[8:], n), nil
}

// parseRawPushReq validates and decodes a push-block request payload. The
// returned keys are freshly allocated; body aliases the payload, so the
// caller must finish with it before recycling the receive buffer.
func parseRawPushReq(payload []byte) (client, seq uint64, ks []keys.Key, body []byte, err error) {
	if len(payload) < 24 {
		return 0, 0, nil, nil, fmt.Errorf("cluster: raw push-block request of %d bytes", len(payload))
	}
	client = binary.LittleEndian.Uint64(payload[4:12])
	seq = binary.LittleEndian.Uint64(payload[12:20])
	n := int(binary.LittleEndian.Uint32(payload[20:24]))
	if n < 0 || n > (len(payload)-24)/8 {
		return 0, 0, nil, nil, fmt.Errorf("cluster: raw push-block request: %d keys in %d payload bytes", n, len(payload))
	}
	ks = parseRawKeys(payload[24:], n)
	body = payload[24+8*n:]
	if len(body) == 0 {
		return 0, 0, nil, nil, fmt.Errorf("cluster: raw push-block request carries no block")
	}
	return client, seq, ks, body, nil
}

func parseRawKeys(b []byte, n int) []keys.Key {
	ks := make([]keys.Key, n)
	for i := range ks {
		ks[i] = keys.Key(binary.LittleEndian.Uint64(b[8*i : 8*i+8]))
	}
	return ks
}

// appendRawPredictReq appends a predict request payload to dst: the CSR
// layout of PredictRequest as per-example counts followed by the flat keys.
func appendRawPredictReq(dst []byte, req PredictRequest) []byte {
	dst = append(dst, rawOpPredict, 0, 0, 0)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(req.Counts)))
	dst = append(dst, b[:]...)
	for _, c := range req.Counts {
		binary.LittleEndian.PutUint32(b[:], c)
		dst = append(dst, b[:]...)
	}
	return appendRawKeys(dst, req.Keys)
}

// parseRawPredictReq validates and decodes a predict request payload. The
// payload may come from a hostile peer: the example count and per-example
// feature counts must account for the payload exactly.
func parseRawPredictReq(payload []byte) (PredictRequest, error) {
	if len(payload) < 8 {
		return PredictRequest{}, fmt.Errorf("cluster: raw predict request of %d bytes", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	if n < 0 || n > (len(payload)-8)/4 {
		return PredictRequest{}, fmt.Errorf("cluster: raw predict request: %d examples in %d payload bytes", n, len(payload))
	}
	counts := make([]uint32, n)
	total := 0
	for i := range counts {
		counts[i] = binary.LittleEndian.Uint32(payload[8+4*i:])
		total += int(counts[i])
		if total > MaxFrameBytes {
			return PredictRequest{}, fmt.Errorf("cluster: raw predict request: counts overflow")
		}
	}
	rest := payload[8+4*n:]
	if total*8 != len(rest) {
		return PredictRequest{}, fmt.Errorf("cluster: raw predict request: counts sum to %d keys but %d key bytes given", total, len(rest))
	}
	return PredictRequest{Counts: counts, Keys: parseRawKeys(rest, total)}, nil
}

// appendRawScores appends a predict response's score vector to dst, behind
// the 4-byte response header the caller already wrote.
func appendRawScores(dst []byte, scores []float32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(scores)))
	dst = append(dst, b[:]...)
	for _, s := range scores {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(s))
		dst = append(dst, b[:]...)
	}
	return dst
}

// parseRawScores validates and decodes a predict response body (the bytes
// after the 4-byte response header).
func parseRawScores(body []byte) ([]float32, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("cluster: raw predict response of %d body bytes", len(body))
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n*4 != len(body)-4 {
		return nil, fmt.Errorf("cluster: raw predict response: %d scores in %d body bytes", n, len(body))
	}
	scores := make([]float32, n)
	for i := range scores {
		scores[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4+4*i:]))
	}
	return scores, nil
}
