package cluster

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"hps/internal/keys"
)

// DefaultVNodes is the number of virtual nodes each member contributes to a
// Ring. More virtual nodes smooth the partition balance (stddev shrinks with
// sqrt(vnodes)) at the cost of a larger, colder lookup table; 64 keeps the
// per-member imbalance under a few percent while the whole table of a
// realistic fleet still fits in L1.
const DefaultVNodes = 64

// DefaultReplicas is the replication factor R used by replicated deployments:
// every partition has one primary and one backup.
const DefaultReplicas = 2

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int
}

// Ring places keys on members with consistent hashing: every member owns the
// arcs preceding its virtual nodes on a 64-bit hash circle, so adding or
// removing one member moves only the arcs adjacent to its own points —
// roughly 1/N of the key space — instead of reshuffling (N-1)/N of all keys
// the way the modulo policy does.
//
// A Ring is immutable; Join and Leave return a new Ring with the epoch
// advanced. Placement is a pure function of the member set and the
// virtual-node count, so two processes that build rings from the same member
// list agree on every key without exchanging the table itself.
type Ring struct {
	epoch   uint64
	vnodes  int
	members []int       // sorted member ids
	points  []ringPoint // sorted by (hash, node)
}

// NewRing builds a ring over the given member ids (deduplicated, order
// irrelevant) with vnodes virtual nodes per member (0 means DefaultVNodes).
// The returned ring is at epoch 0; use WithEpoch to pin a driver-assigned
// epoch.
func NewRing(members []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := slices.Clone(members)
	slices.Sort(ms)
	ms = slices.Compact(ms)
	r := &Ring{vnodes: vnodes, members: ms}
	r.points = make([]ringPoint, 0, len(ms)*vnodes)
	for _, m := range ms {
		for i := 0; i < vnodes; i++ {
			// Each virtual node hashes its (member, index) pair through the
			// same SplitMix64 finalizer keys use, so the points are spread
			// uniformly no matter how structured the member ids are.
			h := keys.Mix64(keys.Mix64(uint64(m))<<32 | uint64(i))
			r.points = append(r.points, ringPoint{hash: h, node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// WithEpoch returns a copy of the ring stamped with the given epoch. The
// point table is shared (rings are immutable).
func (r *Ring) WithEpoch(epoch uint64) *Ring {
	nr := *r
	nr.epoch = epoch
	return &nr
}

// Epoch returns the membership epoch this ring was stamped with.
func (r *Ring) Epoch() uint64 { return r.epoch }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Members returns the sorted member ids. The slice is shared; do not mutate.
func (r *Ring) Members() []int { return r.members }

// Contains reports whether node is a member of the ring.
func (r *Ring) Contains(node int) bool {
	_, ok := slices.BinarySearch(r.members, node)
	return ok
}

// succ returns the index of the first point at or after hash h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member that owns k as primary: the first virtual node at
// or after k's hash on the circle.
func (r *Ring) Owner(k keys.Key) int {
	if len(r.points) == 0 {
		return 0
	}
	return r.points[r.succ(k.Hash())].node
}

// Replicas returns the first n distinct members clockwise from k's position:
// index 0 is the primary, the rest are backups in promotion order. Fewer than
// n members yields all of them.
func (r *Ring) Replicas(k keys.Key, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]int, 0, n)
	i := r.succ(k.Hash())
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		node := r.points[(i+scanned)%len(r.points)].node
		if !slices.Contains(out, node) {
			out = append(out, node)
		}
	}
	return out
}

// Backup returns k's first backup — the first distinct member clockwise after
// the owner — or -1 when the ring has fewer than two members. It walks the
// circle without allocating, so the replication forwarder can partition a push
// block's rows per backup on the hot path.
func (r *Ring) Backup(k keys.Key) int {
	if len(r.members) < 2 {
		return -1
	}
	i := r.succ(k.Hash())
	owner := r.points[i].node
	for scanned := 1; scanned < len(r.points); scanned++ {
		if n := r.points[(i+scanned)%len(r.points)].node; n != owner {
			return n
		}
	}
	return -1
}

// ReplicaRank returns node's position in k's replica set limited to n
// replicas (0 = primary, 1 = first backup, ...) or -1 if node is not among
// them. It walks the circle without allocating, so ownership checks can run
// per key on the push/pull hot path.
func (r *Ring) ReplicaRank(k keys.Key, node, n int) int {
	if len(r.points) == 0 || n <= 0 {
		return -1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	var seen [8]int
	if n > len(seen) { // beyond any sane R; fall back to the allocating form
		for rank, m := range r.Replicas(k, n) {
			if m == node {
				return rank
			}
		}
		return -1
	}
	found := 0
	i := r.succ(k.Hash())
	for scanned := 0; scanned < len(r.points) && found < n; scanned++ {
		m := r.points[(i+scanned)%len(r.points)].node
		dup := false
		for j := 0; j < found; j++ {
			if seen[j] == m {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if m == node {
			return found
		}
		seen[found] = m
		found++
	}
	return -1
}

// Join returns a new ring with node added and the epoch advanced by one.
// Joining an existing member only advances the epoch.
func (r *Ring) Join(node int) *Ring {
	ms := slices.Clone(r.members)
	if !slices.Contains(ms, node) {
		ms = append(ms, node)
	}
	return NewRing(ms, r.vnodes).WithEpoch(r.epoch + 1)
}

// Leave returns a new ring with node removed and the epoch advanced by one.
// Every key the node owned as primary is inherited by its first backup (the
// next distinct member clockwise), which is what makes promotion a pure
// membership change. Removing the last member is refused (the ring would
// place nothing); the caller gets the same membership back at a new epoch.
func (r *Ring) Leave(node int) *Ring {
	ms := slices.Clone(r.members)
	if i := slices.Index(ms, node); i >= 0 && len(ms) > 1 {
		ms = slices.Delete(ms, i, i+1)
	}
	return NewRing(ms, r.vnodes).WithEpoch(r.epoch + 1)
}

// Membership is an epoch-versioned, atomically swappable view of the ring
// shared by every component of one process (trainer nodes, serving tier,
// MEM-PS ownership checks, load generator). A membership update installs a
// new ring for all of them in one atomic store; stale updates (epoch not
// newer than the installed one) are rejected, so out-of-order delivery can
// never roll the view backwards.
type Membership struct {
	ring atomic.Pointer[Ring]
}

// NewMembership returns a membership view holding the given initial ring.
func NewMembership(r *Ring) *Membership {
	m := &Membership{}
	m.ring.Store(r)
	return m
}

// Ring returns the currently installed ring. Never nil.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// Epoch returns the installed ring's epoch.
func (m *Membership) Epoch() uint64 { return m.Ring().Epoch() }

// Update installs r if its epoch is newer than the installed ring's,
// reporting whether the swap happened.
func (m *Membership) Update(r *Ring) bool {
	for {
		cur := m.ring.Load()
		if cur != nil && r.Epoch() <= cur.Epoch() {
			return false
		}
		if m.ring.CompareAndSwap(cur, r) {
			return true
		}
	}
}

// MembershipUpdate is the control-plane payload that moves a membership
// change between processes: the member list and ring geometry (from which
// every receiver rebuilds an identical ring), the epoch that orders it, and
// the shard addresses so receivers can (re)point their transports.
type MembershipUpdate struct {
	// Epoch orders updates; receivers drop anything not newer than what they
	// have installed.
	Epoch uint64
	// Members are the shard ids in the ring after the change.
	Members []int
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Replicas is the replication factor R (0 or 1 = unreplicated).
	Replicas int
	// Addrs maps member ids to their listen addresses.
	Addrs map[int]string
}

// BuildRing reconstructs the ring this update describes.
func (u MembershipUpdate) BuildRing() *Ring {
	return NewRing(u.Members, u.VNodes).WithEpoch(u.Epoch)
}

// Validate rejects structurally broken updates before they reach a
// membership view.
func (u MembershipUpdate) Validate() error {
	if len(u.Members) == 0 {
		return fmt.Errorf("cluster: membership update at epoch %d has no members", u.Epoch)
	}
	if u.VNodes < 0 || u.Replicas < 0 {
		return fmt.Errorf("cluster: membership update has negative geometry (vnodes %d, replicas %d)", u.VNodes, u.Replicas)
	}
	return nil
}
