package cluster

import (
	"math/rand"
	"testing"

	"hps/internal/keys"
)

func ringKeys(n int, seed int64) []keys.Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]keys.Key, n)
	for i := range ks {
		ks[i] = keys.Key(rng.Uint64())
	}
	return ks
}

// TestRingPlacementDeterministic proves placement is a pure function of the
// member set: two rings built independently — from differently ordered and
// duplicated member lists — agree on every owner and every replica set. This
// is what lets the driver, the shards, the trainer, and the load generator
// each rebuild the ring from a MembershipUpdate instead of shipping the point
// table around.
func TestRingPlacementDeterministic(t *testing.T) {
	a := NewRing([]int{0, 1, 2, 3}, 0)
	b := NewRing([]int{3, 1, 0, 2, 1, 3}, 0)
	for _, k := range ringKeys(5000, 1) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %d: owners disagree across identical member sets (%d vs %d)", k, ao, bo)
		}
		ar, br := a.Replicas(k, 2), b.Replicas(k, 2)
		if len(ar) != 2 || len(br) != 2 || ar[0] != br[0] || ar[1] != br[1] {
			t.Fatalf("key %d: replica sets disagree (%v vs %v)", k, ar, br)
		}
	}
}

// TestRingReplicaDisjoint proves a replica set never places two copies on the
// same member, that the primary equals Owner, and that ReplicaRank (the
// allocation-free hot-path form) agrees with Replicas.
func TestRingReplicaDisjoint(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3, 4}, 0)
	for _, k := range ringKeys(5000, 2) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %d: want 3 replicas, got %v", k, reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %d: primary %d is not Owner %d", k, reps[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for rank, m := range reps {
			if seen[m] {
				t.Fatalf("key %d: member %d appears twice in %v", k, m, reps)
			}
			seen[m] = true
			if got := r.ReplicaRank(k, m, 3); got != rank {
				t.Fatalf("key %d: ReplicaRank(%d) = %d, want %d", k, m, got, rank)
			}
		}
		if r.ReplicaRank(k, reps[2], 2) != -1 {
			t.Fatalf("key %d: rank-2 member visible with n=2", k)
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing property the tentpole
// rests on: adding or removing one of N members moves roughly 1/N of the
// keys (we allow 2x for virtual-node variance), every moved key moves to
// (join) or away from (leave) the changed member — nothing reshuffles
// between surviving members — and the small-N cases the smoke tests run with
// stay within the same bound. Modulo placement would move (N-1)/N of all
// keys on any size change.
func TestRingBoundedMovement(t *testing.T) {
	ks := ringKeys(20000, 3)
	for _, n := range []int{2, 3, 4, 8} {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		before := NewRing(members, 0)

		join := before.Join(n)
		moved := 0
		for _, k := range ks {
			was, is := before.Owner(k), join.Owner(k)
			if was != is {
				moved++
				if is != n {
					t.Fatalf("n=%d join: key %d moved %d->%d, not to the joining member", n, k, was, is)
				}
			}
		}
		frac := float64(moved) / float64(len(ks))
		if bound := 2.0 / float64(n+1); frac > bound {
			t.Errorf("n=%d join moved %.3f of keys, want <= %.3f (~1/N)", n, frac, bound)
		}
		if moved == 0 {
			t.Errorf("n=%d join moved no keys: the new member owns nothing", n)
		}

		leave := before.Leave(n - 1)
		moved = 0
		for _, k := range ks {
			was, is := before.Owner(k), leave.Owner(k)
			if was != is {
				moved++
				if was != n-1 {
					t.Fatalf("n=%d leave: key %d moved %d->%d but member %d left", n, k, was, is, n-1)
				}
			}
		}
		frac = float64(moved) / float64(len(ks))
		if bound := 2.0 / float64(n); frac > bound {
			t.Errorf("n=%d leave moved %.3f of keys, want <= %.3f (~1/N)", n, frac, bound)
		}
	}
}

// TestRingLeavePromotesBackup proves the failover identity: after a member
// leaves, every key it owned as primary is owned by what was its first
// backup. Promotion is therefore nothing more than installing the post-Leave
// ring — the backup already holds the replicated data.
func TestRingLeavePromotesBackup(t *testing.T) {
	before := NewRing([]int{0, 1, 2, 3}, 0)
	after := before.Leave(2)
	for _, k := range ringKeys(10000, 4) {
		if before.Owner(k) != 2 {
			continue
		}
		reps := before.Replicas(k, 2)
		if got := after.Owner(k); got != reps[1] {
			t.Fatalf("key %d: owner after leave = %d, want old backup %d", k, got, reps[1])
		}
	}
}

// TestMembershipEpochOrdering proves a membership view only moves forward:
// stale or replayed updates are rejected, so out-of-order control-plane
// delivery cannot roll placement back.
func TestMembershipEpochOrdering(t *testing.T) {
	r0 := NewRing([]int{0, 1}, 0)
	m := NewMembership(r0)
	r1 := r0.Join(2) // epoch 1
	if !m.Update(r1) {
		t.Fatal("newer epoch rejected")
	}
	if m.Update(r0) {
		t.Fatal("stale epoch accepted")
	}
	if m.Update(r1.WithEpoch(1)) {
		t.Fatal("equal epoch accepted")
	}
	if m.Epoch() != 1 || !m.Ring().Contains(2) {
		t.Fatalf("view rolled back: epoch %d members %v", m.Epoch(), m.Ring().Members())
	}

	u := MembershipUpdate{Epoch: 2, Members: []int{0, 1, 2, 3}, VNodes: 0, Replicas: 2}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.Update(u.BuildRing()) {
		t.Fatal("rebuilt update rejected")
	}
	if got := m.Ring().Members(); len(got) != 4 {
		t.Fatalf("members after update: %v", got)
	}
	if err := (MembershipUpdate{Epoch: 3}).Validate(); err == nil {
		t.Fatal("empty member list validated")
	}
}

// TestTopologyRingFallback proves the Topology surface is ring-aware when a
// membership view is attached and falls back to the paper's modulo policy
// when it is not — existing unreplicated deployments keep byte-identical
// placement.
func TestTopologyRingFallback(t *testing.T) {
	ks := ringKeys(2000, 5)

	mod := Topology{Nodes: 3, GPUsPerNode: 1}
	for _, k := range ks {
		if mod.NodeOf(k) != k.Shard(3) {
			t.Fatal("modulo fallback broken")
		}
		if !mod.HoldsKey(k, mod.NodeOf(k)) || mod.HoldsKey(k, (mod.NodeOf(k)+1)%3) {
			t.Fatal("modulo HoldsKey broken")
		}
		if mod.BackupOf(k) != -1 {
			t.Fatal("modulo topology reports a backup")
		}
	}

	ring := NewRing([]int{0, 1, 2}, 0)
	rt := Topology{Nodes: 3, GPUsPerNode: 1, Members: NewMembership(ring), Replicas: 2}
	split := rt.SplitByNode(ks)
	total := 0
	for node, part := range split {
		total += len(part)
		for _, k := range part {
			if ring.Owner(k) != node {
				t.Fatalf("key %d split to %d, ring owner %d", k, node, ring.Owner(k))
			}
		}
	}
	if total != len(ks) {
		t.Fatalf("split dropped keys: %d != %d", total, len(ks))
	}
	for _, k := range ks[:200] {
		reps := rt.ReplicasOf(k)
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("replica set %v", reps)
		}
		if rt.BackupOf(k) != reps[1] {
			t.Fatal("BackupOf disagrees with ReplicasOf")
		}
		if !rt.HoldsKey(k, reps[0]) || !rt.HoldsKey(k, reps[1]) {
			t.Fatal("replica not recognized as holder")
		}
	}

	// A membership change re-points the shared view in place.
	if !rt.Members.Update(ring.Join(3)) {
		t.Fatal("join rejected")
	}
	found := false
	for _, k := range ks {
		if rt.NodeOf(k) == 3 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("joined member owns nothing through Topology")
	}
}
