package cluster

import (
	"errors"
	"fmt"
)

// ErrUnknownNode reports a pull or push addressed to a node id the transport
// has no route for. It is a configuration error, never retryable.
var ErrUnknownNode = errors.New("cluster: unknown node")

// TransportError reports a network-level failure talking to a node: a failed
// dial, a dropped connection, or a malformed reply. The shard itself may be
// healthy (or restarting), so transport errors are retryable — the TCP
// transport retries them itself with fresh connections before giving up.
type TransportError struct {
	// Node is the peer node id.
	Node int
	// Op names the RPC that failed ("pull", "push", "evict", "stats", "lookup").
	Op string
	// Attempts is how many times the transport tried before giving up.
	Attempts int
	// Err is the underlying network error.
	Err error
}

// Error formats the failure with the node, op, and attempt count.
func (e *TransportError) Error() string {
	return fmt.Sprintf("cluster: %s node %d failed after %d attempt(s): %v", e.Op, e.Node, e.Attempts, e.Err)
}

// Unwrap exposes the underlying network error to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// RemoteError reports a failure inside the serving shard: the connection and
// the RPC round trip were fine, but the handler rejected or could not serve
// the request. Retrying over a new connection would fail identically, so
// remote errors are not retryable.
type RemoteError struct {
	// Node is the serving node id.
	Node int
	// Op names the RPC the shard failed ("pull", "push", ...).
	Op string
	// Msg is the shard-side error text.
	Msg string
}

// Error formats the shard-side failure with the node and op.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %d failed %s: %s", e.Node, e.Op, e.Msg)
}

// OverloadError reports that a shard's serving admission queue was full: the
// request was rejected before any work was done on it. Unlike a RemoteError
// it is retryable — the shard is healthy, just saturated — but unlike a
// TransportError the transport does not retry it internally: the whole point
// of admission control is to shed load back to the caller, who should back
// off before resubmitting.
type OverloadError struct {
	// Node is the overloaded node id.
	Node int
	// Op names the rejected RPC ("predict").
	Op string
}

// Error formats the rejection with the node and op.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: node %d overloaded, %s rejected (retry after backoff)", e.Node, e.Op)
}

// Retryable reports whether err may be retried by the caller: a transient
// network failure (the transport retries those itself first) or an admission
// rejection from an overloaded shard (the caller should back off, then
// resubmit). Shard-side failures and configuration errors are not retryable.
func Retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var oe *OverloadError
	return errors.As(err, &oe)
}
