package cluster

import (
	"errors"
	"fmt"
)

// ErrUnknownNode reports a pull or push addressed to a node id the transport
// has no route for. It is a configuration error, never retryable.
var ErrUnknownNode = errors.New("cluster: unknown node")

// TransportError reports a network-level failure talking to a node: a failed
// dial, a dropped connection, or a malformed reply. The shard itself may be
// healthy (or restarting), so transport errors are retryable — the TCP
// transport retries them itself with fresh connections before giving up.
type TransportError struct {
	// Node is the peer node id.
	Node int
	// Op names the RPC that failed ("pull", "push", "evict", "stats", "lookup").
	Op string
	// Attempts is how many times the transport tried before giving up.
	Attempts int
	// Err is the underlying network error.
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("cluster: %s node %d failed after %d attempt(s): %v", e.Op, e.Node, e.Attempts, e.Err)
}

// Unwrap exposes the underlying network error to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// RemoteError reports a failure inside the serving shard: the connection and
// the RPC round trip were fine, but the handler rejected or could not serve
// the request. Retrying over a new connection would fail identically, so
// remote errors are not retryable.
type RemoteError struct {
	// Node is the serving node id.
	Node int
	// Op names the RPC the shard failed ("pull", "push", ...).
	Op string
	// Msg is the shard-side error text.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %d failed %s: %s", e.Node, e.Op, e.Msg)
}

// Retryable reports whether err is a transient network failure that a caller
// (or the transport itself) may retry, as opposed to a shard-side failure or
// a configuration error.
func Retryable(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}
