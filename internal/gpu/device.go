package gpu

import (
	"errors"
	"fmt"
	"sync"

	"hps/internal/hw"
	"hps/internal/simtime"
)

// ErrOutOfMemory is returned when an allocation exceeds the device's HBM.
var ErrOutOfMemory = errors.New("gpu: out of HBM memory")

// Device is a simulated GPU: a bounded HBM allocator, an optional parameter
// hash table, and cost-model charging for kernels and memory traffic.
// It is safe for concurrent use.
type Device struct {
	// ID is the device index within its node (0-based).
	ID int
	// NodeID identifies the node hosting the device.
	NodeID int

	profile hw.GPU
	clock   *simtime.Clock

	mu      sync.Mutex
	hbmUsed int64
	table   *HashTable
	// spare is the most recently destroyed table, kept (with its HBM freed)
	// so the next batch of a similar working-set size can recycle it instead
	// of reallocating every shard's slot array.
	spare *HashTable
}

// NewDevice constructs a device with the given hardware profile. clock may be
// nil to disable time accounting.
func NewDevice(nodeID, id int, profile hw.GPU, clock *simtime.Clock) *Device {
	return &Device{ID: id, NodeID: nodeID, profile: profile, clock: clock}
}

// Profile returns the device's hardware profile.
func (d *Device) Profile() hw.GPU { return d.profile }

// HBMBytes returns the total HBM capacity.
func (d *Device) HBMBytes() int64 { return d.profile.HBMBytes }

// HBMUsed returns the currently allocated HBM bytes.
func (d *Device) HBMUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hbmUsed
}

// HBMFree returns the remaining HBM bytes.
func (d *Device) HBMFree() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.profile.HBMBytes - d.hbmUsed
}

// Alloc reserves n bytes of HBM, failing with ErrOutOfMemory if the device
// budget would be exceeded. A zero-capacity profile means "unlimited" and is
// used by unit tests.
func (d *Device) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("gpu: negative allocation %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.profile.HBMBytes > 0 && d.hbmUsed+n > d.profile.HBMBytes {
		return fmt.Errorf("%w: need %d, free %d", ErrOutOfMemory, n, d.profile.HBMBytes-d.hbmUsed)
	}
	d.hbmUsed += n
	return nil
}

// Free releases n bytes of HBM.
func (d *Device) Free(n int64) {
	if n < 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hbmUsed -= n
	if d.hbmUsed < 0 {
		d.hbmUsed = 0
	}
}

// ChargeCompute charges the modelled time of executing flops floating-point
// operations on the device.
func (d *Device) ChargeCompute(flops float64) {
	d.clock.Add(simtime.ResourceGPU, d.profile.ComputeTime(flops))
}

// ChargeMemory charges the modelled time of streaming n bytes through HBM.
func (d *Device) ChargeMemory(n int64) {
	d.clock.Add(simtime.ResourceHBM, d.profile.MemoryTime(n))
}

// CreateHashTable allocates a fixed-capacity parameter hash table in HBM and
// makes it the device's active table. Any previous table is destroyed first.
// A table retired by DestroyHashTable is recycled (cleared) when its shape
// still fits, so the per-batch create/destroy cycle of the HBM-PS does not
// reallocate slot arrays in steady state.
func (d *Device) CreateHashTable(capacity, dim int) (*HashTable, error) {
	d.DestroyHashTable()
	d.mu.Lock()
	spare := d.spare
	d.spare = nil
	d.mu.Unlock()
	var t *HashTable
	if spare != nil && spare.Reusable(capacity, dim) {
		spare.Clear()
		t = spare
	} else {
		t = NewHashTable(capacity, dim)
	}
	if err := d.Alloc(t.SizeBytes()); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.table = t
	d.mu.Unlock()
	return t, nil
}

// Table returns the device's active hash table (nil if none).
func (d *Device) Table() *HashTable {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table
}

// DestroyHashTable frees the active hash table's HBM, if any. The table
// object itself is retained as a recycling candidate for the next
// CreateHashTable of a compatible shape.
func (d *Device) DestroyHashTable() {
	d.mu.Lock()
	t := d.table
	d.table = nil
	if t != nil {
		d.spare = t
	}
	d.mu.Unlock()
	if t != nil {
		d.Free(t.SizeBytes())
	}
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("gpu%d.%d", d.NodeID, d.ID)
}
