// Package gpu simulates the GPU devices that host the HBM-PS.
//
// A real deployment stores the working parameters in fixed-capacity
// open-addressing hash tables in GPU HBM (the cuDF concurrent_unordered_map,
// Section 4.1) and runs the dense network as CUDA kernels. This package
// reproduces the structural constraints of that environment — a bounded HBM
// byte budget per device, a fixed-capacity hash table whose capacity is set
// at construction because dynamic allocation is not available on the device,
// and concurrent worker access — while executing on the CPU and charging
// modelled kernel/memory time to a simtime.Clock.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hps/internal/embedding"
	"hps/internal/keys"
)

// ErrTableFull is returned by Insert when the hash table has no free slot.
var ErrTableFull = errors.New("gpu: hash table full")

// ErrKeyNotFound is returned by Accumulate when the key was never inserted.
var ErrKeyNotFound = errors.New("gpu: key not found")

const tableShards = 64

// HashTable is a fixed-capacity open-addressing hash table mapping parameter
// keys to embedding values. The capacity is fixed at construction ("we fix
// the hash table capacity when we construct the hash table", Section 4.1);
// inserting beyond it fails with ErrTableFull. It is safe for concurrent use:
// the table is divided into shards, each protected by its own lock, which
// mirrors the per-bucket atomics of the GPU implementation.
type HashTable struct {
	dim      int
	capacity int
	shards   [tableShards]tableShard
	size     atomic.Int64
}

type tableShard struct {
	mu    sync.RWMutex
	slots []tableSlot
}

type tableSlot struct {
	used    bool
	deleted bool // tombstone: slot freed by Delete, probe sequences continue past it
	key     keys.Key
	value   *embedding.Value
}

// NewHashTable constructs a table able to hold capacity values of the given
// embedding dimension. The table allocates a 2x slot headroom (a 0.5 load
// factor) so that open addressing stays efficient and the random key-to-shard
// assignment rarely overflows an individual shard; Capacity reports the
// actual number of allocated slots.
func NewHashTable(capacity, dim int) *HashTable {
	perShard := slotsPerShard(capacity)
	t := &HashTable{dim: dim, capacity: perShard * tableShards}
	for i := range t.shards {
		t.shards[i].slots = make([]tableSlot, perShard)
	}
	return t
}

// slotsPerShard returns the per-shard slot count NewHashTable allocates for
// the given nominal capacity.
func slotsPerShard(capacity int) int {
	if capacity < tableShards {
		capacity = tableShards
	}
	return (2*capacity+tableShards-1)/tableShards + 8
}

// Reusable reports whether a cleared instance of this table can stand in for
// a fresh NewHashTable(capacity, dim): the dimension matches, every shard has
// at least the slots a fresh table would get, and the table is not so
// oversized (more than 4x) that reusing it would hoard HBM for a now-small
// working set. Devices use it to recycle tables across training batches.
func (t *HashTable) Reusable(capacity, dim int) bool {
	need := slotsPerShard(capacity)
	have := len(t.shards[0].slots)
	return t.dim == dim && have >= need && have <= 4*need
}

// Capacity returns the fixed capacity of the table.
func (t *HashTable) Capacity() int { return t.capacity }

// Dim returns the embedding dimension of stored values.
func (t *HashTable) Dim() int { return t.dim }

// Len returns the number of stored values.
func (t *HashTable) Len() int { return int(t.size.Load()) }

// BytesPerEntry returns the HBM footprint charged per slot: the encoded value
// plus the 8-byte key and a used flag padded to 8 bytes.
func BytesPerEntry(dim int) int64 {
	return int64(embedding.EncodedSize(dim)) + 16
}

// SizeBytes returns the HBM footprint of the whole table (all slots are
// allocated up front, used or not).
func (t *HashTable) SizeBytes() int64 {
	return int64(t.capacity) * BytesPerEntry(t.dim)
}

func (t *HashTable) shardFor(k keys.Key) *tableShard {
	// Re-mix the key's hash so the shard assignment is statistically
	// independent of the GPU partition policy (which uses Hash() % #GPUs);
	// otherwise a partitioned key set would map onto a correlated subset of
	// shards and overflow them.
	return &t.shards[keys.Mix64(k.Hash())%tableShards]
}

// probe finds the slot index of k in the shard, or the first free slot if k
// is absent, using linear probing. Returns (index, found, hasFree).
func (s *tableShard) probe(k keys.Key) (int, bool, bool) {
	n := len(s.slots)
	start := int(k.Hash()>>32) % n
	firstFree := -1
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		sl := &s.slots[idx]
		if !sl.used {
			if firstFree < 0 {
				firstFree = idx
			}
			if !sl.deleted {
				// A never-used slot ends the probe sequence; a tombstone left
				// by Delete is reusable but the sequence continues past it.
				return firstFree, false, true
			}
			continue
		}
		if sl.key == k {
			return idx, true, true
		}
	}
	if firstFree >= 0 {
		return firstFree, false, true
	}
	return -1, false, false
}

// Insert stores value under key, replacing any existing value. It returns
// ErrTableFull if the key is new and its shard has no free slot.
func (t *HashTable) Insert(k keys.Key, v *embedding.Value) error {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, found, hasFree := s.probe(k)
	if found {
		s.slots[idx].value = v
		return nil
	}
	if !hasFree {
		return ErrTableFull
	}
	s.slots[idx] = tableSlot{used: true, key: k, value: v}
	t.size.Add(1)
	return nil
}

// Get returns the value stored under key.
func (t *HashTable) Get(k keys.Key) (*embedding.Value, bool) {
	s := t.shardFor(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, found, _ := s.probe(k)
	if !found {
		return nil, false
	}
	return s.slots[idx].value, true
}

// View calls fn with the value stored under key while holding the shard's
// read lock — the safe way to read or copy a value that concurrent workers
// may be updating in place (Get returns the pointer after the lock is
// released, so the caller's read would race with Update). It returns false
// for unknown keys.
func (t *HashTable) View(k keys.Key, fn func(v *embedding.Value)) bool {
	s := t.shardFor(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, found, _ := s.probe(k)
	if !found {
		return false
	}
	fn(s.slots[idx].value)
	return true
}

// gatherScratch is the pooled per-call scratch of GatherBatch: request
// indices grouped by table shard, plus the resolved slot indices of the
// shard currently being probed.
type gatherScratch struct {
	buckets [tableShards][]int32
	slots   []int32
}

var gatherPool = sync.Pool{New: func() any { return new(gatherScratch) }}

// GatherBatch calls visit(i, v) under the shard's read lock for every ks[i]
// stored in the table — View's contract, batched: the requested keys are
// bucketed by shard first, so each shard's lock is taken once for all of its
// keys instead of once per key. Visits are grouped by shard, not in request
// order; i is always the index into ks. On the first missing key it stops and
// returns that key with ok=false (the working-set contract makes a miss a
// bug, so there is nothing partial to salvage).
func (t *HashTable) GatherBatch(ks []keys.Key, visit func(i int, v *embedding.Value)) (missing keys.Key, ok bool) {
	sc := gatherPool.Get().(*gatherScratch)
	defer gatherPool.Put(sc)
	for b := range sc.buckets {
		sc.buckets[b] = sc.buckets[b][:0]
	}
	for i, k := range ks {
		b := keys.Mix64(k.Hash()) % tableShards
		sc.buckets[b] = append(sc.buckets[b], int32(i))
	}
	for b := range sc.buckets {
		idxs := sc.buckets[b]
		if len(idxs) == 0 {
			continue
		}
		s := &t.shards[b]
		s.mu.RLock()
		// Two passes under the one lock: probe every key to its slot first —
		// a tight loop over the slot array while its lines are hot — then run
		// the visits, whose row copies would otherwise churn the cache between
		// consecutive probes.
		sc.slots = sc.slots[:0]
		for _, i := range idxs {
			idx, found, _ := s.probe(ks[i])
			if !found {
				s.mu.RUnlock()
				return ks[i], false
			}
			sc.slots = append(sc.slots, int32(idx))
		}
		for j, i := range idxs {
			visit(int(i), s.slots[sc.slots[j]].value)
		}
		s.mu.RUnlock()
	}
	return 0, true
}

// Accumulate adds delta element-wise onto the embedding weights stored under
// key and increments the value's reference counter — the accumulate
// operation of Algorithm 2. It returns ErrKeyNotFound for unknown keys.
func (t *HashTable) Accumulate(k keys.Key, delta []float32) error {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, found, _ := s.probe(k)
	if !found {
		return ErrKeyNotFound
	}
	v := s.slots[idx].value
	for i := 0; i < len(v.Weights) && i < len(delta); i++ {
		v.Weights[i] += delta[i]
	}
	v.Freq++
	return nil
}

// Update applies fn to the value stored under key while holding the shard
// lock (used to run the sparse optimizer in place). It returns
// ErrKeyNotFound for unknown keys.
func (t *HashTable) Update(k keys.Key, fn func(v *embedding.Value)) error {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, found, _ := s.probe(k)
	if !found {
		return ErrKeyNotFound
	}
	fn(s.slots[idx].value)
	return nil
}

// Delete removes the value stored under key, leaving a tombstone so that
// probe sequences passing through the slot stay intact. The slot is reusable
// by later inserts. It reports whether the key was present — the delete
// operation backing HBM-PS partial eviction (demotion of individual keys out
// of the working set).
func (t *HashTable) Delete(k keys.Key) bool {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, found, _ := s.probe(k)
	if !found {
		return false
	}
	s.slots[idx] = tableSlot{deleted: true}
	t.size.Add(-1)
	return true
}

// Range calls fn for every stored (key, value) pair until fn returns false.
// The table must not be mutated during Range.
func (t *HashTable) Range(fn func(k keys.Key, v *embedding.Value) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for j := range s.slots {
			if s.slots[j].used {
				if !fn(s.slots[j].key, s.slots[j].value) {
					s.mu.RUnlock()
					return
				}
			}
		}
		s.mu.RUnlock()
	}
}

// Keys returns all stored keys in unspecified order.
func (t *HashTable) Keys() []keys.Key {
	out := make([]keys.Key, 0, t.Len())
	t.Range(func(k keys.Key, _ *embedding.Value) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every entry, keeping the allocated capacity (the table is
// reused across training batches).
func (t *HashTable) Clear() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j := range s.slots {
			s.slots[j] = tableSlot{}
		}
		s.mu.Unlock()
	}
	t.size.Store(0)
}

// String implements fmt.Stringer.
func (t *HashTable) String() string {
	return fmt.Sprintf("gpu.HashTable{len=%d cap=%d dim=%d}", t.Len(), t.capacity, t.dim)
}
