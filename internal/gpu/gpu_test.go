package gpu

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/simtime"
)

func TestHashTableInsertGet(t *testing.T) {
	ht := NewHashTable(256, 4)
	v := embedding.NewValue(4)
	v.Weights[0] = 7
	if err := ht.Insert(42, v); err != nil {
		t.Fatal(err)
	}
	got, ok := ht.Get(42)
	if !ok || got.Weights[0] != 7 {
		t.Fatal("Get after Insert failed")
	}
	if _, ok := ht.Get(43); ok {
		t.Fatal("absent key should miss")
	}
	if ht.Len() != 1 {
		t.Fatalf("len = %d", ht.Len())
	}
	// Replacing a value must not grow the table.
	v2 := embedding.NewValue(4)
	if err := ht.Insert(42, v2); err != nil {
		t.Fatal(err)
	}
	if ht.Len() != 1 {
		t.Fatal("replacement grew the table")
	}
}

func TestHashTableCapacityAndFull(t *testing.T) {
	ht := NewHashTable(10, 2) // rounds up to tableShards slots minimum
	if ht.Capacity() < 10 {
		t.Fatal("capacity must be at least requested")
	}
	if ht.Capacity()%tableShards != 0 {
		t.Fatal("capacity must be a multiple of the shard count")
	}
	// Fill far beyond a single shard's slots to force ErrTableFull.
	full := false
	for i := 0; i < ht.Capacity()*4 && !full; i++ {
		if err := ht.Insert(keys.Key(i), embedding.NewValue(2)); err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error %v", err)
			}
			full = true
		}
	}
	if !full {
		t.Fatal("expected the table to eventually fill")
	}
	if ht.Len() > ht.Capacity() {
		t.Fatal("len must never exceed capacity")
	}
}

func TestHashTableAccumulate(t *testing.T) {
	ht := NewHashTable(64, 3)
	v := embedding.NewValue(3)
	v.Weights = []float32{1, 1, 1}
	ht.Insert(7, v)
	if err := ht.Accumulate(7, []float32{0.5, -1, 2}); err != nil {
		t.Fatal(err)
	}
	got, _ := ht.Get(7)
	if got.Weights[0] != 1.5 || got.Weights[1] != 0 || got.Weights[2] != 3 {
		t.Fatalf("accumulate result = %v", got.Weights)
	}
	if got.Freq != 1 {
		t.Fatalf("freq = %d", got.Freq)
	}
	if err := ht.Accumulate(999, []float32{1}); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
	// Short delta is tolerated.
	if err := ht.Accumulate(7, []float32{1}); err != nil {
		t.Fatal(err)
	}
}

func TestHashTableUpdate(t *testing.T) {
	ht := NewHashTable(64, 2)
	ht.Insert(1, embedding.NewValue(2))
	err := ht.Update(1, func(v *embedding.Value) { v.Weights[0] = 9 })
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ht.Get(1)
	if got.Weights[0] != 9 {
		t.Fatal("update not applied")
	}
	if err := ht.Update(2, func(v *embedding.Value) {}); !errors.Is(err, ErrKeyNotFound) {
		t.Fatal("update of absent key should fail")
	}
}

func TestHashTableRangeKeysClear(t *testing.T) {
	ht := NewHashTable(256, 2)
	for i := 0; i < 50; i++ {
		if err := ht.Insert(keys.Key(i), embedding.NewValue(2)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ht.Keys()) != 50 {
		t.Fatal("Keys wrong length")
	}
	count := 0
	ht.Range(func(k keys.Key, v *embedding.Value) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatal("Range should stop early")
	}
	ht.Clear()
	if ht.Len() != 0 || len(ht.Keys()) != 0 {
		t.Fatal("Clear failed")
	}
	// Reusable after Clear.
	if err := ht.Insert(1, embedding.NewValue(2)); err != nil {
		t.Fatal(err)
	}
	if ht.String() == "" {
		t.Fatal("String empty")
	}
}

func TestHashTableInsertGetProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		ht := NewHashTable(4096, 2)
		want := make(map[keys.Key]float32)
		for i, r := range raw {
			if i >= 1000 {
				break
			}
			k := keys.Key(r)
			v := embedding.NewValue(2)
			v.Weights[0] = float32(i)
			if err := ht.Insert(k, v); err != nil {
				// Full shard is acceptable; skip.
				continue
			}
			want[k] = float32(i)
		}
		for k, w := range want {
			got, ok := ht.Get(k)
			if !ok || got.Weights[0] != w {
				return false
			}
		}
		return ht.Len() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHashTableConcurrentAccumulate(t *testing.T) {
	ht := NewHashTable(1024, 1)
	const nKeys = 100
	for i := 0; i < nKeys; i++ {
		ht.Insert(keys.Key(i), embedding.NewValue(1))
	}
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := ht.Accumulate(keys.Key(i%nKeys), []float32{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total float32
	ht.Range(func(k keys.Key, v *embedding.Value) bool {
		total += v.Weights[0]
		return true
	})
	if total != workers*perWorker {
		t.Fatalf("lost updates: total = %v, want %d", total, workers*perWorker)
	}
}

func TestBytesPerEntry(t *testing.T) {
	if BytesPerEntry(8) != int64(embedding.EncodedSize(8))+16 {
		t.Fatal("BytesPerEntry formula changed unexpectedly")
	}
	ht := NewHashTable(128, 8)
	if ht.SizeBytes() != int64(ht.Capacity())*BytesPerEntry(8) {
		t.Fatal("SizeBytes mismatch")
	}
}

func TestDeviceAllocFree(t *testing.T) {
	d := NewDevice(0, 1, hw.GPU{HBMBytes: 1000}, nil)
	if d.HBMBytes() != 1000 || d.HBMFree() != 1000 {
		t.Fatal("initial HBM wrong")
	}
	if err := d.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if d.HBMUsed() != 600 || d.HBMFree() != 400 {
		t.Fatal("accounting wrong")
	}
	if err := d.Alloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if err := d.Alloc(-1); err == nil {
		t.Fatal("negative alloc should fail")
	}
	d.Free(600)
	if d.HBMUsed() != 0 {
		t.Fatal("free failed")
	}
	d.Free(100) // over-free clamps at zero
	if d.HBMUsed() != 0 {
		t.Fatal("over-free should clamp")
	}
	d.Free(-5) // ignored
	if d.String() != "gpu0.1" {
		t.Fatalf("String = %s", d.String())
	}
	if d.Profile().HBMBytes != 1000 {
		t.Fatal("profile accessor")
	}
}

func TestDeviceUnlimitedHBM(t *testing.T) {
	d := NewDevice(0, 0, hw.GPU{}, nil)
	if err := d.Alloc(1 << 40); err != nil {
		t.Fatal("zero-HBM profile should mean unlimited for tests")
	}
}

func TestDeviceCreateHashTable(t *testing.T) {
	profile := hw.GPU{HBMBytes: BytesPerEntry(4) * 4096}
	d := NewDevice(0, 0, profile, nil)
	ht, err := d.CreateHashTable(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Table() != ht {
		t.Fatal("Table accessor wrong")
	}
	if d.HBMUsed() != ht.SizeBytes() {
		t.Fatal("table allocation not charged to HBM")
	}
	// A table that cannot fit must fail and leave no allocation behind.
	if _, err := d.CreateHashTable(100000, 4); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if d.Table() != nil {
		t.Fatal("failed creation should clear the previous table")
	}
	if d.HBMUsed() != 0 {
		t.Fatalf("HBM leak: %d", d.HBMUsed())
	}
	// Recreate and destroy.
	if _, err := d.CreateHashTable(512, 4); err != nil {
		t.Fatal(err)
	}
	d.DestroyHashTable()
	if d.HBMUsed() != 0 || d.Table() != nil {
		t.Fatal("destroy failed")
	}
}

func TestDeviceCharging(t *testing.T) {
	clock := simtime.NewClock()
	profile := hw.GPU{FLOPS: 1e9, HBMBandwidthBytesPerSec: 1e9, KernelLaunch: time.Microsecond}
	d := NewDevice(0, 0, profile, clock)
	d.ChargeCompute(1e9)
	if got := clock.Total(simtime.ResourceGPU); got < time.Second {
		t.Fatalf("compute charge = %v", got)
	}
	d.ChargeMemory(1e9)
	if got := clock.Total(simtime.ResourceHBM); got < time.Second {
		t.Fatalf("memory charge = %v", got)
	}
	// Nil clock must not panic.
	d2 := NewDevice(0, 0, profile, nil)
	d2.ChargeCompute(1)
	d2.ChargeMemory(1)
}

func TestDeviceConcurrentAlloc(t *testing.T) {
	d := NewDevice(0, 0, hw.GPU{HBMBytes: 1 << 20}, nil)
	var wg sync.WaitGroup
	var allocErrs int64
	var mu sync.Mutex
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := d.Alloc(1024); err != nil {
					mu.Lock()
					allocErrs++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if d.HBMUsed() > d.HBMBytes() {
		t.Fatalf("HBM overcommitted: %d > %d", d.HBMUsed(), d.HBMBytes())
	}
	// 16*100 KiB requested vs 1 MiB available: some must fail.
	if allocErrs == 0 {
		t.Fatal("expected some allocations to fail")
	}
	_ = fmt.Sprintf("%v", d)
}

func TestHashTableDelete(t *testing.T) {
	table := NewHashTable(100, 4)
	for i := 0; i < 50; i++ {
		if err := table.Insert(keys.Key(i), embedding.NewValue(4)); err != nil {
			t.Fatal(err)
		}
	}
	if !table.Delete(7) {
		t.Fatal("delete of present key should succeed")
	}
	if table.Delete(7) {
		t.Fatal("second delete should report absent")
	}
	if table.Len() != 49 {
		t.Fatalf("len = %d after delete", table.Len())
	}
	if _, ok := table.Get(7); ok {
		t.Fatal("deleted key still readable")
	}
	// Every other key must remain reachable: the tombstone may sit in the
	// middle of their probe sequences.
	for i := 0; i < 50; i++ {
		if i == 7 {
			continue
		}
		if _, ok := table.Get(keys.Key(i)); !ok {
			t.Fatalf("key %d unreachable after unrelated delete", i)
		}
	}
	// The tombstoned slot is reusable.
	if err := table.Insert(7, embedding.NewValue(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get(7); !ok {
		t.Fatal("reinserted key unreachable")
	}
	if table.Len() != 50 {
		t.Fatalf("len = %d after reinsert", table.Len())
	}
}
