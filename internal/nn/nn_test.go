package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hps/internal/optimizer"
	"hps/internal/tensor"
)

func testNet() *Network {
	return New(Config{InputDim: 4, Hidden: []int{8, 4}, Seed: 1})
}

func TestNewAndParamCount(t *testing.T) {
	n := testNet()
	// 4*8+8 + 8*4+4 + 4*1+1 = 40 + 36 + 5 = 81
	if got := n.ParamCount(); got != 81 {
		t.Fatalf("ParamCount = %d, want 81", got)
	}
	if n.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d", n.NumLayers())
	}
	if n.FLOPsPerExample() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
	if n.Config().InputDim != 4 {
		t.Fatal("Config accessor wrong")
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{InputDim: 0})
}

func TestForwardRange(t *testing.T) {
	n := testNet()
	acts := n.NewActivations()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		in := acts.Input()
		for j := range in {
			in[j] = rng.Float32()*2 - 1
		}
		p := n.Forward(acts)
		if p <= 0 || p >= 1 || math.IsNaN(float64(p)) {
			t.Fatalf("prediction %v out of (0,1)", p)
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	n1 := New(Config{InputDim: 4, Hidden: []int{8}, Seed: 7})
	n2 := New(Config{InputDim: 4, Hidden: []int{8}, Seed: 7})
	a1 := n1.NewActivations()
	a2 := n2.NewActivations()
	in := []float32{0.1, -0.2, 0.3, 0.4}
	copy(a1.Input(), in)
	copy(a2.Input(), in)
	if n1.Forward(a1) != n2.Forward(a2) {
		t.Fatal("identical seeds must give identical predictions")
	}
}

// numericalInputGrad estimates dLoss/dInput by central differences.
func numericalInputGrad(n *Network, input []float32, label float32) []float32 {
	const h = 1e-3
	grad := make([]float32, len(input))
	acts := n.NewActivations()
	for i := range input {
		orig := input[i]
		input[i] = orig + h
		copy(acts.Input(), input)
		lp := tensor.LogLoss(n.Forward(acts), label)
		input[i] = orig - h
		copy(acts.Input(), input)
		lm := tensor.LogLoss(n.Forward(acts), label)
		input[i] = orig
		grad[i] = float32((lp - lm) / (2 * h))
	}
	return grad
}

func TestBackwardInputGradientMatchesNumerical(t *testing.T) {
	n := New(Config{InputDim: 5, Hidden: []int{6}, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		input := make([]float32, 5)
		for i := range input {
			input[i] = rng.Float32()*2 - 1
		}
		label := float32(trial % 2)
		acts := n.NewActivations()
		copy(acts.Input(), input)
		pred := n.Forward(acts)
		g := n.NewGradients()
		analytic := n.Backward(acts, pred, label, g)
		numeric := numericalInputGrad(n, input, label)
		for i := range analytic {
			diff := math.Abs(float64(analytic[i] - numeric[i]))
			if diff > 2e-2 && diff > 0.05*math.Abs(float64(numeric[i])) {
				t.Fatalf("trial %d dim %d: analytic %v vs numeric %v", trial, i, analytic[i], numeric[i])
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A small network trained on a fixed synthetic function must reduce loss.
	n := New(Config{InputDim: 4, Hidden: []int{16, 8}, Seed: 5})
	opt := optimizer.Adagrad{LR: 0.1}
	state := n.NewDenseState(opt)
	rng := rand.New(rand.NewSource(6))
	sample := func() ([]float32, float32) {
		in := make([]float32, 4)
		for i := range in {
			in[i] = rng.Float32()*2 - 1
		}
		var label float32
		if in[0]+in[1]-in[2] > 0 {
			label = 1
		}
		return in, label
	}
	lossOver := func(count int) float64 {
		acts := n.NewActivations()
		var sum float64
		r2 := rand.New(rand.NewSource(99))
		for i := 0; i < count; i++ {
			in := make([]float32, 4)
			for j := range in {
				in[j] = r2.Float32()*2 - 1
			}
			var label float32
			if in[0]+in[1]-in[2] > 0 {
				label = 1
			}
			copy(acts.Input(), in)
			sum += tensor.LogLoss(n.Forward(acts), label)
		}
		return sum / float64(count)
	}
	before := lossOver(500)
	acts := n.NewActivations()
	g := n.NewGradients()
	for step := 0; step < 2000; step++ {
		in, label := sample()
		copy(acts.Input(), in)
		pred := n.Forward(acts)
		g.Zero()
		n.Backward(acts, pred, label, g)
		n.Apply(opt, state, g)
	}
	after := lossOver(500)
	if after >= before*0.8 {
		t.Fatalf("training did not reduce loss: before=%v after=%v", before, after)
	}
}

func TestGradientsAddAndZero(t *testing.T) {
	n := testNet()
	acts := n.NewActivations()
	for i := range acts.Input() {
		acts.Input()[i] = 0.5
	}
	pred := n.Forward(acts)
	g1 := n.NewGradients()
	g2 := n.NewGradients()
	n.Backward(acts, pred, 1, g1)
	n.Backward(acts, pred, 1, g2)
	g1.Add(g2)
	if g1.Examples != 2 {
		t.Fatalf("Examples = %d", g1.Examples)
	}
	flat := g1.Flatten(nil)
	if int64(len(flat)) != n.ParamCount() {
		t.Fatalf("flat gradient length %d != param count %d", len(flat), n.ParamCount())
	}
	g1.Zero()
	if g1.Examples != 0 {
		t.Fatal("Zero should reset example count")
	}
	for _, v := range g1.Flatten(nil) {
		if v != 0 {
			t.Fatal("Zero should clear gradients")
		}
	}
}

func TestGradientsFlattenRoundTrip(t *testing.T) {
	n := testNet()
	acts := n.NewActivations()
	for i := range acts.Input() {
		acts.Input()[i] = float32(i)
	}
	pred := n.Forward(acts)
	g := n.NewGradients()
	n.Backward(acts, pred, 0, g)
	flat := g.Flatten(nil)
	g2 := n.NewGradients()
	if err := g2.SetFromFlat(flat); err != nil {
		t.Fatal(err)
	}
	flat2 := g2.Flatten(nil)
	for i := range flat {
		if flat[i] != flat2[i] {
			t.Fatal("flatten round trip mismatch")
		}
	}
	if err := g2.SetFromFlat(flat[:3]); err == nil {
		t.Fatal("short flat should error")
	}
	if err := g2.SetFromFlat(append(flat, 0)); err == nil {
		t.Fatal("long flat should error")
	}
}

func TestParamsFlattenRoundTrip(t *testing.T) {
	n := testNet()
	flat := n.FlattenParams(nil)
	if int64(len(flat)) != n.ParamCount() {
		t.Fatalf("flat params length %d", len(flat))
	}
	n2 := New(Config{InputDim: 4, Hidden: []int{8, 4}, Seed: 99})
	if err := n2.SetParams(flat); err != nil {
		t.Fatal(err)
	}
	a1 := n.NewActivations()
	a2 := n2.NewActivations()
	in := []float32{1, 2, 3, 4}
	copy(a1.Input(), in)
	copy(a2.Input(), in)
	if n.Forward(a1) != n2.Forward(a2) {
		t.Fatal("SetParams must make networks identical")
	}
	if err := n2.SetParams(flat[:5]); err == nil {
		t.Fatal("short params should error")
	}
	if err := n2.SetParams(append(flat, 1)); err == nil {
		t.Fatal("long params should error")
	}
}

func TestClone(t *testing.T) {
	n := testNet()
	c := n.Clone()
	a1 := n.NewActivations()
	a2 := c.NewActivations()
	in := []float32{0.5, -0.5, 1, 0}
	copy(a1.Input(), in)
	copy(a2.Input(), in)
	if n.Forward(a1) != c.Forward(a2) {
		t.Fatal("clone must predict identically")
	}
	// Mutating the clone must not affect the original.
	g := c.NewGradients()
	c.Backward(a2, c.Forward(a2), 1, g)
	c.Apply(optimizer.SGD{LR: 1}, c.NewDenseState(optimizer.SGD{LR: 1}), g)
	copy(a1.Input(), in)
	copy(a2.Input(), in)
	if n.Forward(a1) == c.Forward(a2) {
		t.Fatal("mutating the clone should change its predictions only")
	}
}

func TestPoolSum(t *testing.T) {
	dst := make([]float32, 3)
	PoolSum(dst, [][]float32{{1, 2, 3}, {1, 1, 1}})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 4 {
		t.Fatalf("PoolSum = %v", dst)
	}
	// Pooling again must overwrite, not accumulate.
	PoolSum(dst, [][]float32{{1, 0, 0}})
	if dst[0] != 1 || dst[1] != 0 {
		t.Fatalf("PoolSum overwrite = %v", dst)
	}
	// Shorter vectors are tolerated.
	PoolSum(dst, [][]float32{{5}})
	if dst[0] != 5 || dst[1] != 0 {
		t.Fatalf("PoolSum short vec = %v", dst)
	}
}

func TestPoolSumProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		dim := 4
		var vecs [][]float32
		for i := 0; i+dim <= len(vals) && len(vecs) < 16; i += dim {
			vecs = append(vecs, vals[i:i+dim])
		}
		dst := make([]float32, dim)
		PoolSum(dst, vecs)
		for j := 0; j < dim; j++ {
			var want float32
			for _, v := range vecs {
				want += v[j]
			}
			if dst[j] != want && !(dst[j] != dst[j] && want != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
