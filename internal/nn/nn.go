// Package nn implements the dense portion of the CTR prediction network of
// Figure 1: the fully-connected layers that sit on top of the embedding
// layer, with a sigmoid click-probability output trained by binary
// cross-entropy.
//
// The sparse embedding parameters live in the hierarchical parameter server;
// this package only sees the pooled embedding vector of an example. The
// gradient of the loss with respect to that input vector is returned by
// Backward so the caller can push it back into the embedding parameters
// (with sum pooling, every referenced feature receives that same gradient).
package nn

import (
	"fmt"
	"math/rand"

	"hps/internal/optimizer"
	"hps/internal/tensor"
)

// Config describes the dense network architecture.
type Config struct {
	// InputDim is the width of the pooled embedding input.
	InputDim int
	// Hidden are the hidden fully-connected layer widths; each hidden layer
	// uses a ReLU activation. The output layer is a single sigmoid unit.
	Hidden []int
	// Seed seeds weight initialization.
	Seed int64
}

type layer struct {
	w *tensor.Matrix // out x in
	b []float32
}

// Network is a feed-forward network with ReLU hidden layers and a single
// logistic output. It is not safe for concurrent use; each GPU worker holds
// its own replica (the paper pins dense parameters in every GPU's HBM,
// Appendix C.4).
type Network struct {
	cfg    Config
	layers []layer
}

// New constructs a network with Xavier-initialized weights.
func New(cfg Config) *Network {
	if cfg.InputDim <= 0 {
		panic(fmt.Sprintf("nn: invalid input dim %d", cfg.InputDim))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, 1)
	n := &Network{cfg: cfg}
	for i := 1; i < len(dims); i++ {
		l := layer{w: tensor.NewMatrix(dims[i], dims[i-1]), b: make([]float32, dims[i])}
		l.w.FillRandom(rng)
		n.layers = append(n.layers, l)
	}
	return n
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// NumLayers returns the number of weight layers (hidden layers + output).
func (n *Network) NumLayers() int { return len(n.layers) }

// ParamCount returns the total number of dense parameters (weights + biases).
func (n *Network) ParamCount() int64 {
	var total int64
	for _, l := range n.layers {
		total += int64(len(l.w.Data)) + int64(len(l.b))
	}
	return total
}

// FLOPsPerExample estimates the floating point operations of one forward and
// backward pass for a single example (≈ 6x the weight count: 2x forward, 4x
// backward). The GPU and CPU cost models consume this estimate.
func (n *Network) FLOPsPerExample() float64 {
	var weights int64
	for _, l := range n.layers {
		weights += int64(len(l.w.Data))
	}
	return 6 * float64(weights)
}

// Activations holds the per-layer outputs of a forward pass, reused across
// examples to avoid allocation.
type Activations struct {
	// values[0] is the input; values[i] is the post-activation output of
	// layer i-1. The final entry is the pre-sigmoid logit (length 1).
	values [][]float32
	// deltas are Backward's per-layer gradient scratch buffers, allocated
	// lazily and reused across examples.
	deltas [][]float32
}

// deltaBuf returns the reusable gradient buffer of width n for layer slot i.
func (a *Activations) deltaBuf(i, n int) []float32 {
	for len(a.deltas) <= i {
		a.deltas = append(a.deltas, nil)
	}
	if cap(a.deltas[i]) < n {
		a.deltas[i] = make([]float32, n)
	}
	return a.deltas[i][:n]
}

// NewActivations allocates activation buffers matching the network shape.
func (n *Network) NewActivations() *Activations {
	a := &Activations{values: make([][]float32, len(n.layers)+1)}
	a.values[0] = make([]float32, n.cfg.InputDim)
	for i, l := range n.layers {
		a.values[i+1] = make([]float32, l.w.Rows)
	}
	return a
}

// Input returns the buffer the caller fills with the pooled embedding before
// calling Forward.
func (a *Activations) Input() []float32 { return a.values[0] }

// Forward runs the network on the input stored in acts.Input() and returns
// the predicted click probability.
func (n *Network) Forward(acts *Activations) float32 {
	for i, l := range n.layers {
		in := acts.values[i]
		out := acts.values[i+1]
		tensor.MatVec(l.w, in, out)
		tensor.Axpy(1, l.b, out)
		if i < len(n.layers)-1 {
			tensor.ReLU(out)
		}
	}
	logit := acts.values[len(n.layers)][0]
	return tensor.Sigmoid(logit)
}

// Gradients accumulates dense-parameter gradients over a mini-batch.
type Gradients struct {
	w []*tensor.Matrix
	b [][]float32
	// Examples counts how many examples were accumulated, for averaging.
	Examples int
}

// NewGradients allocates a zeroed gradient accumulator matching the network.
func (n *Network) NewGradients() *Gradients {
	g := &Gradients{}
	for _, l := range n.layers {
		g.w = append(g.w, tensor.NewMatrix(l.w.Rows, l.w.Cols))
		g.b = append(g.b, make([]float32, len(l.b)))
	}
	return g
}

// Zero clears the accumulator.
func (g *Gradients) Zero() {
	for i := range g.w {
		g.w[i].Zero()
		for j := range g.b[i] {
			g.b[i][j] = 0
		}
	}
	g.Examples = 0
}

// Add accumulates other into g (used to reduce gradients across workers).
func (g *Gradients) Add(other *Gradients) {
	for i := range g.w {
		tensor.Axpy(1, other.w[i].Data, g.w[i].Data)
		tensor.Axpy(1, other.b[i], g.b[i])
	}
	g.Examples += other.Examples
}

// Flatten appends all gradient values into a single slice (weights then bias,
// layer by layer), used by the dense all-reduce.
func (g *Gradients) Flatten(dst []float32) []float32 {
	for i := range g.w {
		dst = append(dst, g.w[i].Data...)
		dst = append(dst, g.b[i]...)
	}
	return dst
}

// SetFromFlat overwrites the accumulator from a flattened representation
// produced by Flatten. It returns an error on length mismatch.
func (g *Gradients) SetFromFlat(flat []float32) error {
	off := 0
	for i := range g.w {
		nw := len(g.w[i].Data)
		nb := len(g.b[i])
		if off+nw+nb > len(flat) {
			return fmt.Errorf("nn: flat gradient too short: %d", len(flat))
		}
		copy(g.w[i].Data, flat[off:off+nw])
		off += nw
		copy(g.b[i], flat[off:off+nb])
		off += nb
	}
	if off != len(flat) {
		return fmt.Errorf("nn: flat gradient too long: %d != %d", len(flat), off)
	}
	return nil
}

// Backward computes gradients of the log-loss at (pred, label) for the
// forward pass recorded in acts, accumulates dense gradients into g, and
// returns the gradient with respect to the network input (the pooled
// embedding). The returned slice is backed by acts' reusable scratch: it
// stays valid until the next Backward call on the same Activations, so the
// per-example hot path allocates nothing.
func (n *Network) Backward(acts *Activations, pred, label float32, g *Gradients) []float32 {
	// dL/dlogit for sigmoid + cross-entropy is (pred - label).
	delta := acts.deltaBuf(len(n.layers), 1)
	delta[0] = pred - label
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		in := acts.values[i]
		// Accumulate weight and bias gradients.
		tensor.OuterAccum(g.w[i], delta, in)
		tensor.Axpy(1, delta, g.b[i])
		// Propagate to the layer input (MatTVec overwrites the buffer).
		prev := acts.deltaBuf(i, l.w.Cols)
		tensor.MatTVec(l.w, delta, prev)
		if i > 0 {
			// The stored activation of the previous hidden layer is
			// post-ReLU; zero gradient where the activation was clipped.
			tensor.ReLUGrad(acts.values[i], prev)
		}
		delta = prev
	}
	g.Examples++
	return delta
}

// DenseState holds optimizer state for every dense parameter block.
type DenseState struct {
	w [][]float32
	b [][]float32
}

// NewDenseState allocates optimizer state for the network under the given
// dense optimizer.
func (n *Network) NewDenseState(opt optimizer.Dense) *DenseState {
	s := &DenseState{}
	for _, l := range n.layers {
		s.w = append(s.w, make([]float32, opt.StateSize(len(l.w.Data))))
		s.b = append(s.b, make([]float32, opt.StateSize(len(l.b))))
	}
	return s
}

// Flatten appends the optimizer state into dst (weight state then bias
// state, layer by layer — the checkpointable form, mirroring
// Network.FlattenParams).
func (s *DenseState) Flatten(dst []float32) []float32 {
	for i := range s.w {
		dst = append(dst, s.w[i]...)
		dst = append(dst, s.b[i]...)
	}
	return dst
}

// SetFromFlat overwrites the optimizer state from a flattened representation
// produced by Flatten. It returns an error on length mismatch.
func (s *DenseState) SetFromFlat(flat []float32) error {
	off := 0
	for i := range s.w {
		nw, nb := len(s.w[i]), len(s.b[i])
		if off+nw+nb > len(flat) {
			return fmt.Errorf("nn: flat dense state too short: %d", len(flat))
		}
		copy(s.w[i], flat[off:off+nw])
		off += nw
		copy(s.b[i], flat[off:off+nb])
		off += nb
	}
	if off != len(flat) {
		return fmt.Errorf("nn: flat dense state too long: %d != %d", len(flat), off)
	}
	return nil
}

// Apply updates the network parameters with the accumulated gradients,
// averaged over g.Examples (or applied raw when g.Examples <= 1).
func (n *Network) Apply(opt optimizer.Dense, state *DenseState, g *Gradients) {
	scale := float32(1)
	if g.Examples > 1 {
		scale = 1 / float32(g.Examples)
	}
	for i, l := range n.layers {
		applyBlock(opt, l.w.Data, state.w[i], g.w[i].Data, scale)
		applyBlock(opt, l.b, state.b[i], g.b[i], scale)
	}
}

func applyBlock(opt optimizer.Dense, w, state, grad []float32, scale float32) {
	if scale != 1 {
		scaled := make([]float32, len(grad))
		copy(scaled, grad)
		tensor.Scale(scale, scaled)
		grad = scaled
	}
	opt.ApplyDense(w, state, grad)
}

// FlattenParams appends all network parameters into dst (weights then bias,
// layer by layer). It is used to replicate dense parameters across GPUs.
func (n *Network) FlattenParams(dst []float32) []float32 {
	for _, l := range n.layers {
		dst = append(dst, l.w.Data...)
		dst = append(dst, l.b...)
	}
	return dst
}

// SetParams overwrites all network parameters from a flattened representation
// produced by FlattenParams. It returns an error on length mismatch.
func (n *Network) SetParams(flat []float32) error {
	off := 0
	for _, l := range n.layers {
		nw := len(l.w.Data)
		nb := len(l.b)
		if off+nw+nb > len(flat) {
			return fmt.Errorf("nn: flat params too short: %d", len(flat))
		}
		copy(l.w.Data, flat[off:off+nw])
		off += nw
		copy(l.b, flat[off:off+nb])
		off += nb
	}
	if off != len(flat) {
		return fmt.Errorf("nn: flat params too long: %d != %d", len(flat), off)
	}
	return nil
}

// Clone returns a deep copy of the network (used to give each simulated GPU
// its own dense replica).
func (n *Network) Clone() *Network {
	out := &Network{cfg: n.cfg}
	for _, l := range n.layers {
		nl := layer{w: l.w.Clone(), b: append([]float32(nil), l.b...)}
		out.layers = append(out.layers, nl)
	}
	return out
}

// PoolSum sums the given embedding vectors into dst (which must have the
// network input dimension); missing vectors are skipped. This is the
// embedding pooling used between the sparse and dense parts of the model.
func PoolSum(dst []float32, vecs [][]float32) {
	for i := range dst {
		dst[i] = 0
	}
	for _, v := range vecs {
		for i := 0; i < len(dst) && i < len(v); i++ {
			dst[i] += v[i]
		}
	}
}
