package hdfs

import (
	"testing"
	"time"

	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/simtime"
)

func newTestStream(t *testing.T, cfg Config) *Stream {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{NumFeatures: 1000, NonZerosPerExample: 10}, 1)
	return NewStream(gen, cfg)
}

func TestStreamDeliversBatches(t *testing.T) {
	s := newTestStream(t, Config{BatchSize: 32})
	b, err := s.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 32 {
		t.Fatalf("batch size = %d", b.Len())
	}
	if s.Delivered() != 1 {
		t.Fatal("delivered count wrong")
	}
	if s.BatchSize() != 32 {
		t.Fatal("BatchSize accessor wrong")
	}
}

func TestStreamDefaultBatchSize(t *testing.T) {
	s := newTestStream(t, Config{})
	if s.BatchSize() != 1024 {
		t.Fatalf("default batch size = %d", s.BatchSize())
	}
}

func TestStreamMaxBatches(t *testing.T) {
	s := newTestStream(t, Config{BatchSize: 4, MaxBatches: 2})
	for i := 0; i < 2; i++ {
		b, err := s.NextBatch()
		if err != nil || b == nil {
			t.Fatalf("batch %d: %v %v", i, b, err)
		}
	}
	b, err := s.NextBatch()
	if err != nil || b != nil {
		t.Fatal("exhausted stream should return (nil, nil)")
	}
	if s.Delivered() != 2 {
		t.Fatal("delivered count should stop at max")
	}
}

func TestStreamChargesClock(t *testing.T) {
	clock := simtime.NewClock()
	profile := hw.HDFS{StreamBandwidthBytesPerSec: 1000, OpenLatency: time.Millisecond}
	s := newTestStream(t, Config{BatchSize: 8, Profile: profile, Clock: clock})
	b, err := s.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	want := profile.ReadTime(b.ByteSize())
	if got := clock.Total(simtime.ResourceHDFS); got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
}

func TestStreamNilClockSafe(t *testing.T) {
	s := newTestStream(t, Config{BatchSize: 8, Profile: hw.DefaultGPUNode().HDFS})
	if _, err := s.NextBatch(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamClose(t *testing.T) {
	s := newTestStream(t, Config{BatchSize: 8})
	s.Close()
	if _, err := s.NextBatch(); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestStreamConcurrentReaders(t *testing.T) {
	s := newTestStream(t, Config{BatchSize: 16, MaxBatches: 64})
	done := make(chan int, 4)
	for w := 0; w < 4; w++ {
		go func() {
			n := 0
			for {
				b, err := s.NextBatch()
				if err != nil || b == nil {
					break
				}
				n++
			}
			done <- n
		}()
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += <-done
	}
	if total != 64 {
		t.Fatalf("total batches consumed = %d, want 64", total)
	}
}
