// Package hdfs simulates the distributed file system from which training
// batches are streamed into each node's main memory (Algorithm 1 line 2,
// "batch <- get_batch_from_HDFS()").
//
// The stream wraps a dataset.Generator and charges the modelled streaming
// time of every batch to a simtime.Clock, so that the "Read examples" stage
// of Fig 3(c) — which the paper identifies as the bottleneck for the smaller
// models A and B — is reproduced faithfully by the pipeline.
package hdfs

import (
	"errors"
	"sync"

	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/simtime"
)

// ErrClosed is returned by NextBatch after Close has been called.
var ErrClosed = errors.New("hdfs: stream closed")

// Stream delivers training batches for a single node.
// It is safe for concurrent use.
type Stream struct {
	mu        sync.Mutex
	gen       *dataset.Generator
	profile   hw.HDFS
	clock     *simtime.Clock
	batchSize int
	maxBatch  int
	delivered int
	closed    bool
}

// Config configures a Stream.
type Config struct {
	// BatchSize is the number of examples per batch.
	BatchSize int
	// MaxBatches limits the stream length; 0 means unlimited.
	MaxBatches int
	// Profile is the HDFS hardware model used for time accounting.
	Profile hw.HDFS
	// Clock receives the modelled streaming time; nil disables accounting.
	Clock *simtime.Clock
}

// NewStream returns a stream over the given generator.
func NewStream(gen *dataset.Generator, cfg Config) *Stream {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	return &Stream{
		gen:       gen,
		profile:   cfg.Profile,
		clock:     cfg.Clock,
		batchSize: cfg.BatchSize,
		maxBatch:  cfg.MaxBatches,
	}
}

// NextBatch returns the next training batch, charging its modelled streaming
// time to the clock. It returns (nil, nil) when the stream is exhausted and
// ErrClosed after Close.
func (s *Stream) NextBatch() (*dataset.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.maxBatch > 0 && s.delivered >= s.maxBatch {
		return nil, nil
	}
	b := s.gen.NextBatch(s.batchSize)
	s.delivered++
	s.clock.Add(simtime.ResourceHDFS, s.profile.ReadTime(b.ByteSize()))
	return b, nil
}

// Delivered returns how many batches have been handed out.
func (s *Stream) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// BatchSize returns the configured examples-per-batch.
func (s *Stream) BatchSize() int { return s.batchSize }

// Close marks the stream closed; subsequent NextBatch calls fail.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
