package keys

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct small inputs must produce distinct outputs (spot check of the
	// bijection over a large sample).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestShardRange(t *testing.T) {
	f := func(k uint64, n uint8) bool {
		nn := int(n%16) + 1
		s := Key(k).Shard(nn)
		return s >= 0 && s < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardSmallN(t *testing.T) {
	if Key(42).Shard(0) != 0 || Key(42).Shard(1) != 0 || Key(42).Shard(-3) != 0 {
		t.Fatal("Shard with n<=1 must return 0")
	}
	if Key(42).HashShard(0) != 0 {
		t.Fatal("HashShard with n<=1 must return 0")
	}
}

func TestShardBalance(t *testing.T) {
	// Random keys under modulo sharding should balance across 8 shards
	// (paper: "A simple modulo hash function yields a balanced partitioning
	// in general cases").
	const n = 8
	const total = 80000
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < total; i++ {
		counts[Key(rng.Uint64()).Shard(n)]++
	}
	want := total / n
	for s, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("shard %d has %d keys, want within 10%% of %d", s, c, want)
		}
	}
}

func TestHashShardBalanceOnSequentialKeys(t *testing.T) {
	const n = 7
	const total = 70000
	counts := make([]int, n)
	for i := 0; i < total; i++ {
		counts[Key(i).HashShard(n)]++
	}
	want := total / n
	for s, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("hash shard %d has %d keys, want ~%d", s, c, want)
		}
	}
}

func TestPartitionByShard(t *testing.T) {
	ks := []Key{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	parts := PartitionByShard(ks, 3)
	if len(parts) != 3 {
		t.Fatalf("want 3 partitions, got %d", len(parts))
	}
	total := 0
	for shard, part := range parts {
		total += len(part)
		for _, k := range part {
			if k.Shard(3) != shard {
				t.Fatalf("key %d placed in wrong shard %d", k, shard)
			}
		}
	}
	if total != len(ks) {
		t.Fatalf("partition lost keys: %d != %d", total, len(ks))
	}
	// n < 1 clamps to a single partition.
	one := PartitionByShard(ks, 0)
	if len(one) != 1 || len(one[0]) != len(ks) {
		t.Fatal("n<1 must produce one partition with all keys")
	}
}

func TestPartitionPreservesAllKeysProperty(t *testing.T) {
	f := func(raw []uint64, n uint8) bool {
		nn := int(n%8) + 1
		ks := make([]Key, len(raw))
		for i, r := range raw {
			ks[i] = Key(r)
		}
		parts := PartitionByShard(ks, nn)
		count := 0
		for _, p := range parts {
			count += len(p)
		}
		return count == len(ks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	ks := []Key{5, 1, 5, 3, 1, 1, 9}
	got := Dedup(ks)
	want := []Key{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Dedup = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedup = %v, want %v", got, want)
		}
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Fatal("Dedup(nil) must be empty")
	}
	single := Dedup([]Key{7})
	if len(single) != 1 || single[0] != 7 {
		t.Fatal("Dedup single element broken")
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		ks := make([]Key, len(raw))
		set := make(map[Key]bool)
		for i, r := range raw {
			ks[i] = Key(r)
			set[Key(r)] = true
		}
		got := Dedup(ks)
		if len(got) != len(set) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for _, k := range got {
			if !set[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAndContains(t *testing.T) {
	a := []Key{1, 3, 5}
	b := []Key{2, 3, 6}
	u := Union(a, b)
	want := []Key{1, 2, 3, 5, 6}
	if len(u) != len(want) {
		t.Fatalf("Union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Union = %v, want %v", u, want)
		}
	}
	for _, k := range want {
		if !Contains(u, k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	if Contains(u, 4) {
		t.Fatal("Contains(4) should be false")
	}
	if Contains(nil, 1) {
		t.Fatal("Contains on empty should be false")
	}
}
