// Package keys defines the sparse-parameter key type and the hashing and
// sharding helpers shared by every tier of the hierarchical parameter server.
//
// A CTR model's sparse features are identified by 64-bit keys (the paper's
// models contain up to 10^11 of them). Keys are sharded twice: once across
// nodes (MEM-PS / SSD-PS shards, Section 5) and once across the GPUs of a
// node (HBM-PS partitions, Section 4.1). Both use the same modulo policy.
package keys

import (
	"slices"
	"sort"
)

// Key identifies a single sparse parameter (one embedding row).
type Key uint64

// Mix64 is a SplitMix64 finalizer used to turn raw feature identifiers into
// well-distributed keys and to derive secondary hashes. It is a bijection on
// 64-bit integers, so distinct features never collide.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash returns a well-distributed 64-bit hash of the key, suitable for
// open-addressing probe sequences.
func (k Key) Hash() uint64 { return Mix64(uint64(k)) }

// Shard maps the key to one of n shards using the modulo policy described in
// Section 5 and Appendix C.1. Shard returns 0 when n <= 1.
func (k Key) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(k) % uint64(n))
}

// HashShard maps the key to one of n shards using the mixed hash rather than
// the raw key. It is used when the raw key space may itself be structured
// (e.g. sequential feature ids), which would unbalance plain modulo.
func (k Key) HashShard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.Hash() % uint64(n))
}

// PartitionByShard splits ks into n groups by the modulo policy, preserving
// the input order within each group. The result always has length n.
func PartitionByShard(ks []Key, n int) [][]Key {
	if n < 1 {
		n = 1
	}
	out := make([][]Key, n)
	for _, k := range ks {
		s := k.Shard(n)
		out[s] = append(out[s], k)
	}
	return out
}

// Dedup sorts and deduplicates ks in place — the caller's backing array is
// mutated and no copy is ever made — returning the shortened slice. The
// union of referenced parameters of a batch (Algorithm 1 line 3-4) is
// produced this way; it runs once per shard per batch on the hot path, so it
// uses the non-reflective slices.Sort and, when the input is already sorted
// (a batch's key union is re-deduplicated at several tiers), skips the sort
// entirely and degenerates to one compaction sweep.
func Dedup(ks []Key) []Key {
	if len(ks) < 2 {
		return ks
	}
	if !slices.IsSorted(ks) {
		slices.Sort(ks)
	}
	w := 1
	for i := 1; i < len(ks); i++ {
		if ks[i] != ks[i-1] {
			ks[w] = ks[i]
			w++
		}
	}
	return ks[:w]
}

// SortedUnique reports whether ks is strictly increasing — i.e. already in
// Dedup's output form. Hot paths check it before touching a key set they do
// not own: input already deduplicated upstream (a batch's key union flows
// through several tiers) is used as-is, and only arbitrary caller-supplied
// key sets pay for a defensive copy plus Dedup.
func SortedUnique(ks []Key) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			return false
		}
	}
	return true
}

// Union merges two already-deduplicated key slices into a new sorted,
// deduplicated slice.
func Union(a, b []Key) []Key {
	out := make([]Key, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return Dedup(out)
}

// Contains reports whether sorted slice ks contains k.
func Contains(ks []Key, k Key) bool {
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	return i < len(ks) && ks[i] == k
}
