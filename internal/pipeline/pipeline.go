// Package pipeline implements the 4-stage prefetch pipeline of Section 3 and
// Appendix B.
//
// The training workflow has four time-consuming tasks — data transferring
// (network), parameter partitioning (CPU), materialized parameter
// loading/dumping (SSD) and neural network training (GPU) — that use
// independent hardware resources. The pipeline runs one worker per stage,
// connected by bounded prefetch queues: a worker stalls when the next stage's
// queue is full, and the steady-state batch latency is governed by the
// slowest stage rather than the sum of all stages.
//
// The pipeline is generic over the job type so the same machinery drives the
// trainer and the ablation benchmarks.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStopped is returned by Run when the context is cancelled before the
// source is exhausted.
var ErrStopped = errors.New("pipeline: stopped")

// Stage is one step of the pipeline.
type Stage[T any] struct {
	// Name identifies the stage in statistics (e.g. "read", "pull", "train").
	Name string
	// QueueSize is the capacity of the stage's prefetch queue ("the capacity
	// of the prefetch queue is pre-set according to the execution time of
	// each stage"). Values < 1 are treated as 1.
	QueueSize int
	// Fn processes one job and returns the job handed to the next stage.
	Fn func(context.Context, T) (T, error)
}

// StageStats reports what one stage did during a run.
type StageStats struct {
	// Name is the stage name.
	Name string
	// Jobs is the number of jobs the stage processed.
	Jobs int64
	// Busy is the cumulative wall-clock time spent inside the stage function.
	Busy time.Duration
	// Stalled is the cumulative wall-clock time spent blocked pushing into
	// the next stage's full queue (backpressure).
	Stalled time.Duration
}

// Pipeline executes a fixed sequence of stages over a stream of jobs.
type Pipeline[T any] struct {
	stages []Stage[T]

	mu    sync.Mutex
	stats []StageStats
}

// New constructs a pipeline from the given stages. It panics if no stages are
// provided (a pipeline needs at least one).
func New[T any](stages ...Stage[T]) *Pipeline[T] {
	if len(stages) == 0 {
		panic("pipeline: no stages")
	}
	p := &Pipeline[T]{stages: stages}
	p.stats = make([]StageStats, len(stages))
	for i, s := range stages {
		p.stats[i].Name = s.Name
	}
	return p
}

// NumStages returns the number of stages.
func (p *Pipeline[T]) NumStages() int { return len(p.stages) }

// Stats returns a copy of the per-stage statistics of the most recent (or
// in-progress) run.
func (p *Pipeline[T]) Stats() []StageStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]StageStats(nil), p.stats...)
}

func (p *Pipeline[T]) addStat(i int, busy, stalled time.Duration) {
	p.mu.Lock()
	p.stats[i].Jobs++
	p.stats[i].Busy += busy
	p.stats[i].Stalled += stalled
	p.mu.Unlock()
}

// Run pulls jobs from source until it reports no more jobs (ok == false),
// passes each job through every stage in order, and hands the final result to
// sink. Source, every stage, and sink each run on their own goroutine with
// bounded queues between them. Run returns the first error encountered, or
// ErrStopped if ctx is cancelled first; in either case all goroutines are
// shut down before Run returns.
func (p *Pipeline[T]) Run(ctx context.Context, source func(context.Context) (T, bool, error), sink func(context.Context, T) error) error {
	if source == nil {
		return errors.New("pipeline: nil source")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One error slot; the first error wins and cancels everything else.
	var (
		errOnce sync.Once
		runErr  error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() {
			runErr = err
			cancel()
		})
	}

	// Build the chain of channels: source -> q0 -> stage0 -> q1 -> ... -> sink.
	queues := make([]chan T, len(p.stages)+1)
	for i, s := range p.stages {
		size := s.QueueSize
		if size < 1 {
			size = 1
		}
		queues[i] = make(chan T, size)
	}
	queues[len(p.stages)] = make(chan T, 1)

	var wg sync.WaitGroup

	// Source goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(queues[0])
		for {
			job, ok, err := source(runCtx)
			if err != nil {
				fail(err)
				return
			}
			if !ok {
				return
			}
			select {
			case queues[0] <- job:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Stage goroutines.
	for i, s := range p.stages {
		wg.Add(1)
		go func(i int, s Stage[T]) {
			defer wg.Done()
			defer close(queues[i+1])
			for job := range queues[i] {
				start := time.Now()
				out, err := s.Fn(runCtx, job)
				busy := time.Since(start)
				if err != nil {
					fail(fmt.Errorf("pipeline stage %q: %w", s.Name, err))
					return
				}
				pushStart := time.Now()
				select {
				case queues[i+1] <- out:
				case <-runCtx.Done():
					p.addStat(i, busy, time.Since(pushStart))
					return
				}
				p.addStat(i, busy, time.Since(pushStart))
			}
		}(i, s)
	}

	// Sink goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for job := range queues[len(p.stages)] {
			if sink == nil {
				continue
			}
			if err := sink(runCtx, job); err != nil {
				fail(fmt.Errorf("pipeline sink: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	if runErr != nil {
		return runErr
	}
	if ctx.Err() != nil {
		return ErrStopped
	}
	return nil
}

// BottleneckStage returns the name and busy time of the stage with the
// largest cumulative busy time — the stage that bounds steady-state
// throughput ("the overall execution time for each batch is dominated by the
// slowest stage", Section 7.2).
func (p *Pipeline[T]) BottleneckStage() (string, time.Duration) {
	stats := p.Stats()
	var name string
	var max time.Duration
	for _, s := range stats {
		if s.Busy >= max {
			max = s.Busy
			name = s.Name
		}
	}
	return name, max
}
