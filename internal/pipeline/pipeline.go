// Package pipeline implements the 4-stage prefetch pipeline of Section 3 and
// Appendix B.
//
// The training workflow has four time-consuming tasks — data transferring
// (network), parameter partitioning (CPU), materialized parameter
// loading/dumping (SSD) and neural network training (GPU) — that use
// independent hardware resources. The pipeline runs one worker per stage,
// connected by bounded prefetch queues: a worker stalls when the next stage's
// queue is full, and the steady-state batch latency is governed by the
// slowest stage rather than the sum of all stages.
//
// Queue capacities are either fixed (Stage.QueueSize) or, with AutoTune,
// derived at runtime from measured per-stage service times: "the capacity of
// the prefetch queue is pre-set according to the execution time of each
// stage". The tuner warm-starts after the first measurement interval and
// keeps re-deriving the capacities (and the suggested pipeline depth) as the
// EWMA service times drift, always under the configured ceilings.
//
// The pipeline is generic over the job type so the same machinery drives the
// trainer and the ablation benchmarks.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrStopped is returned by Run when the context is cancelled before the
// source is exhausted.
var ErrStopped = errors.New("pipeline: stopped")

// Stage is one step of the pipeline.
type Stage[T any] struct {
	// Name identifies the stage in statistics (e.g. "read", "pull", "train").
	Name string
	// QueueSize is the initial capacity of the stage's prefetch queue ("the
	// capacity of the prefetch queue is pre-set according to the execution
	// time of each stage"). Values < 1 are treated as 1. With AutoTune the
	// capacity is re-derived at runtime from measured stage times.
	QueueSize int
	// Fn processes one job and returns the job handed to the next stage.
	Fn func(context.Context, T) (T, error)
}

// StageStats reports what one stage did during a run.
type StageStats struct {
	// Name is the stage name.
	Name string
	// Jobs is the number of jobs the stage processed.
	Jobs int64
	// Busy is the cumulative wall-clock time spent inside the stage function.
	Busy time.Duration
	// Stalled is the cumulative wall-clock time spent blocked pushing into
	// the next stage's full queue (backpressure).
	Stalled time.Duration
	// EWMAService is the exponentially-weighted moving average of the
	// stage's per-job service time — the measurement the auto-tuner sizes
	// queues from.
	EWMAService time.Duration
	// QueueCap is the current capacity of the stage's input queue.
	QueueCap int
	// MeanQueueLen is the mean occupancy of the stage's input queue, sampled
	// every time the upstream producer enqueues a job.
	MeanQueueLen float64
}

// TunerConfig configures the runtime queue/depth auto-tuner.
type TunerConfig struct {
	// MaxQueue caps any single stage's queue capacity (default: MaxInFlight,
	// since a queue deeper than the pipeline's job budget can never fill).
	MaxQueue int
	// MaxInFlight is the ceiling on the suggested pipeline depth. Required
	// >= 1.
	MaxInFlight int
	// Interval retunes every Interval jobs completed by the final stage
	// (default 4). The first retune after Interval jobs is the paper-style
	// warm start "pre-set from the execution time of each stage".
	Interval int
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.25).
	Alpha float64
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.Interval <= 0 {
		c.Interval = 4
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	return c
}

// TunerState is a snapshot of the auto-tuner's current decisions.
type TunerState struct {
	// Enabled reports whether AutoTune was configured.
	Enabled bool
	// QueueCaps are the per-stage input-queue capacities currently applied.
	QueueCaps []int
	// InFlight is the suggested effective pipeline depth: the number of
	// overlapping jobs needed to keep the bottleneck stage busy
	// (ceil(sum of stage times / slowest stage time)), clamped to
	// [1, MaxInFlight].
	InFlight int
	// Retunes counts how many times the tuner re-derived the sizing.
	Retunes int64
}

// Pipeline executes a fixed sequence of stages over a stream of jobs.
type Pipeline[T any] struct {
	stages []Stage[T]

	mu    sync.Mutex
	stats []StageStats
	ewma  []float64 // per-stage EWMA service time in ns (tuner input)
	qs    []*queue[T]

	tuner        *TunerConfig
	queueCaps    []int
	inFlight     int
	retunes      int64
	jobsAtRetune int64
}

// New constructs a pipeline from the given stages. It panics if no stages are
// provided (a pipeline needs at least one).
func New[T any](stages ...Stage[T]) *Pipeline[T] {
	if len(stages) == 0 {
		panic("pipeline: no stages")
	}
	p := &Pipeline[T]{stages: stages}
	p.stats = make([]StageStats, len(stages))
	p.ewma = make([]float64, len(stages))
	p.queueCaps = make([]int, len(stages))
	for i, s := range stages {
		p.stats[i].Name = s.Name
		p.queueCaps[i] = max(s.QueueSize, 1)
	}
	return p
}

// AutoTune arms the runtime auto-tuner: once Run is going, queue capacities
// and the suggested in-flight depth are re-derived from the measured EWMA
// stage times every cfg.Interval completed jobs. Call before Run.
func (p *Pipeline[T]) AutoTune(cfg TunerConfig) {
	cfg = cfg.withDefaults()
	p.mu.Lock()
	p.tuner = &cfg
	p.inFlight = cfg.MaxInFlight
	p.mu.Unlock()
}

// NumStages returns the number of stages.
func (p *Pipeline[T]) NumStages() int { return len(p.stages) }

// Stats returns a copy of the per-stage statistics of the most recent (or
// in-progress) run.
func (p *Pipeline[T]) Stats() []StageStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]StageStats(nil), p.stats...)
	for i := range out {
		out[i].EWMAService = time.Duration(p.ewma[i])
		out[i].QueueCap = p.queueCaps[i]
		if i < len(p.qs) && p.qs[i] != nil {
			out[i].QueueCap, out[i].MeanQueueLen = p.qs[i].occupancy()
		}
	}
	return out
}

// TunerState returns the auto-tuner's current sizing decisions. For a
// pipeline without AutoTune, Enabled is false and the snapshot carries the
// static configuration.
func (p *Pipeline[T]) TunerState() TunerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := TunerState{
		Enabled:   p.tuner != nil,
		QueueCaps: append([]int(nil), p.queueCaps...),
		InFlight:  p.inFlight,
		Retunes:   p.retunes,
	}
	if st.InFlight < 1 {
		st.InFlight = 1
	}
	return st
}

func (p *Pipeline[T]) addStat(i int, busy, stalled time.Duration) {
	p.mu.Lock()
	p.stats[i].Jobs++
	p.stats[i].Busy += busy
	p.stats[i].Stalled += stalled
	alpha := 0.25
	if p.tuner != nil {
		alpha = p.tuner.Alpha
	}
	if p.ewma[i] == 0 {
		p.ewma[i] = float64(busy)
	} else {
		p.ewma[i] = alpha*float64(busy) + (1-alpha)*p.ewma[i]
	}
	if p.tuner != nil && i == len(p.stages)-1 &&
		p.stats[i].Jobs-p.jobsAtRetune >= int64(p.tuner.Interval) {
		p.jobsAtRetune = p.stats[i].Jobs
		p.retuneLocked()
	}
	p.mu.Unlock()
}

// retuneLocked re-derives queue capacities and the suggested depth from the
// current EWMA stage times. Called with p.mu held.
//
// Sizing rule: the queue feeding a stage grows with the stage's service time
// relative to the fastest stage — a slow consumer needs a deep prefetch queue
// so its upstream can run ahead through the fast stages, which is exactly the
// paper's "pre-set according to the execution time of each stage". The depth
// suggestion is the classic pipeline occupancy bound, ceil(sum/bottleneck):
// enough overlapping jobs to keep the slowest stage fed, and not more —
// extra depth would only add staleness.
func (p *Pipeline[T]) retuneLocked() {
	minT := math.Inf(1)
	var sum, maxT float64
	for _, e := range p.ewma {
		if e <= 0 {
			return // not every stage measured yet
		}
		minT = math.Min(minT, e)
		maxT = math.Max(maxT, e)
		sum += e
	}
	cfg := p.tuner
	for i, e := range p.ewma {
		c := int(math.Round(e / minT))
		if c < 1 {
			c = 1
		}
		if c > cfg.MaxQueue {
			c = cfg.MaxQueue
		}
		if c > cfg.MaxInFlight {
			c = cfg.MaxInFlight
		}
		p.queueCaps[i] = c
		if i < len(p.qs) && p.qs[i] != nil {
			p.qs[i].setCap(c)
		}
	}
	depth := int(math.Ceil(sum/maxT - 1e-9))
	if depth < 1 {
		depth = 1
	}
	if depth > cfg.MaxInFlight {
		depth = cfg.MaxInFlight
	}
	p.inFlight = depth
	p.retunes++
}

// Run pulls jobs from source until it reports no more jobs (ok == false),
// passes each job through every stage in order, and hands the final result to
// sink. Source, every stage, and sink each run on their own goroutine with
// bounded queues between them. Run returns the first error encountered, or
// ErrStopped if ctx is cancelled first; in either case all goroutines are
// shut down before Run returns.
func (p *Pipeline[T]) Run(ctx context.Context, source func(context.Context) (T, bool, error), sink func(context.Context, T) error) error {
	if source == nil {
		return errors.New("pipeline: nil source")
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One error slot; the first error wins and cancels everything else.
	var (
		errOnce sync.Once
		runErr  error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() {
			runErr = err
			cancel()
		})
	}

	// Build the chain of queues: source -> q0 -> stage0 -> q1 -> ... -> sink.
	// The queues are resizable so the auto-tuner can apply new capacities to
	// a running pipeline.
	queues := make([]*queue[T], len(p.stages)+1)
	p.mu.Lock()
	for i := range p.stages {
		queues[i] = newQueue[T](p.queueCaps[i])
	}
	queues[len(p.stages)] = newQueue[T](1)
	p.qs = queues[:len(p.stages)]
	p.mu.Unlock()

	// Cancellation watchdog: a cancelled context must unblock every push and
	// pop, exactly like the select-on-ctx the channel implementation had.
	go func() {
		<-runCtx.Done()
		for _, q := range queues {
			q.close()
		}
	}()

	var wg sync.WaitGroup

	// Source goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer queues[0].close()
		for {
			job, ok, err := source(runCtx)
			if err != nil {
				fail(err)
				return
			}
			if !ok {
				return
			}
			if !queues[0].push(job) {
				return
			}
		}
	}()

	// Stage goroutines.
	for i, s := range p.stages {
		wg.Add(1)
		go func(i int, s Stage[T]) {
			defer wg.Done()
			defer queues[i+1].close()
			for {
				job, ok := queues[i].pop()
				if !ok {
					return
				}
				start := time.Now()
				out, err := s.Fn(runCtx, job)
				busy := time.Since(start)
				if err != nil {
					fail(fmt.Errorf("pipeline stage %q: %w", s.Name, err))
					return
				}
				pushStart := time.Now()
				ok = queues[i+1].push(out)
				p.addStat(i, busy, time.Since(pushStart))
				if !ok {
					return
				}
			}
		}(i, s)
	}

	// Sink goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			job, ok := queues[len(p.stages)].pop()
			if !ok {
				return
			}
			if sink == nil {
				continue
			}
			if err := sink(runCtx, job); err != nil {
				fail(fmt.Errorf("pipeline sink: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	if runErr != nil {
		return runErr
	}
	if ctx.Err() != nil {
		return ErrStopped
	}
	return nil
}

// BottleneckStage returns the name and busy time of the stage with the
// largest cumulative busy time — the stage that bounds steady-state
// throughput ("the overall execution time for each batch is dominated by the
// slowest stage", Section 7.2).
func (p *Pipeline[T]) BottleneckStage() (string, time.Duration) {
	stats := p.Stats()
	var name string
	var max time.Duration
	for _, s := range stats {
		if s.Busy >= max {
			max = s.Busy
			name = s.Name
		}
	}
	return name, max
}
