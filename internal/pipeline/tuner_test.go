package pipeline

import (
	"context"
	"testing"
	"time"
)

// runTimed drives a pipeline of sleep stages through n jobs and returns the
// tuner snapshot afterwards.
func runTimed(t *testing.T, p *Pipeline[int], n int) TunerState {
	t.Helper()
	next := 0
	source := func(context.Context) (int, bool, error) {
		if next >= n {
			return 0, false, nil
		}
		next++
		return next, true, nil
	}
	if err := p.Run(context.Background(), source, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.TunerState()
}

func sleepStage(name string, d time.Duration) Stage[int] {
	return Stage[int]{
		Name:      name,
		QueueSize: 1,
		Fn: func(_ context.Context, j int) (int, error) {
			time.Sleep(d)
			return j, nil
		},
	}
}

// TestAutoTuneQueueCapsTrackStageTimes checks the paper's sizing rule: the
// queue feeding a stage grows with that stage's service time relative to the
// fastest stage. A stage 4x slower than the fastest should end up with a
// visibly deeper queue, while the fastest stays at 1.
func TestAutoTuneQueueCapsTrackStageTimes(t *testing.T) {
	p := New(
		sleepStage("fast", 2*time.Millisecond),
		sleepStage("slow", 8*time.Millisecond),
		sleepStage("mid", 4*time.Millisecond),
	)
	p.AutoTune(TunerConfig{MaxInFlight: 8, Interval: 4})
	st := runTimed(t, p, 24)

	if !st.Enabled {
		t.Fatalf("tuner not enabled: %+v", st)
	}
	if st.Retunes < 1 {
		t.Fatalf("expected at least one retune after 24 jobs with interval 4, got %d", st.Retunes)
	}
	caps := st.QueueCaps
	if len(caps) != 3 {
		t.Fatalf("expected 3 queue caps, got %v", caps)
	}
	// Sleep-based timing is noisy; assert ordering and rough magnitude, not
	// exact ratios.
	if caps[0] != 1 {
		t.Errorf("fastest stage queue cap = %d, want 1", caps[0])
	}
	if caps[1] < 2 {
		t.Errorf("4x-slower stage queue cap = %d, want >= 2", caps[1])
	}
	if caps[1] <= caps[2] && caps[2] != caps[1] {
		t.Errorf("slowest stage cap %d should be >= mid stage cap %d", caps[1], caps[2])
	}
	// Depth suggestion: sum/bottleneck = 14ms/8ms -> ceil = 2 (noise may push
	// it to 3, never past the ceiling).
	if st.InFlight < 2 || st.InFlight > 8 {
		t.Errorf("suggested depth = %d, want within [2, 8]", st.InFlight)
	}
}

// TestAutoTuneNeverExceedsCeiling pins the hard bound: no matter how lopsided
// the measured stage times are, queue capacities and the depth suggestion stay
// within MaxInFlight (and MaxQueue).
func TestAutoTuneNeverExceedsCeiling(t *testing.T) {
	p := New(
		sleepStage("fast", 500*time.Microsecond),
		sleepStage("glacial", 10*time.Millisecond),
	)
	p.AutoTune(TunerConfig{MaxInFlight: 3, Interval: 2})
	st := runTimed(t, p, 10)

	if st.Retunes < 1 {
		t.Fatalf("expected retunes, got %d", st.Retunes)
	}
	for i, c := range st.QueueCaps {
		if c < 1 || c > 3 {
			t.Errorf("stage %d queue cap = %d, want within [1, 3]", i, c)
		}
	}
	// 20x ratio would suggest a huge queue; the ceiling must clamp it to
	// exactly MaxInFlight.
	if st.QueueCaps[1] != 3 {
		t.Errorf("glacial stage cap = %d, want clamped to 3", st.QueueCaps[1])
	}
	if st.InFlight < 1 || st.InFlight > 3 {
		t.Errorf("suggested depth = %d, want within [1, 3]", st.InFlight)
	}
}

// TestAutoTuneMaxQueueCap checks the independent MaxQueue bound: even with a
// deep in-flight budget the per-stage queue stays at MaxQueue.
func TestAutoTuneMaxQueueCap(t *testing.T) {
	p := New(
		sleepStage("fast", 500*time.Microsecond),
		sleepStage("slow", 6*time.Millisecond),
	)
	p.AutoTune(TunerConfig{MaxInFlight: 16, MaxQueue: 2, Interval: 2})
	st := runTimed(t, p, 10)

	if st.Retunes < 1 {
		t.Fatalf("expected retunes, got %d", st.Retunes)
	}
	for i, c := range st.QueueCaps {
		if c > 2 {
			t.Errorf("stage %d queue cap = %d, want <= MaxQueue=2", i, c)
		}
	}
}

// TestTunerStateWithoutAutoTune: a plain pipeline reports Enabled=false and
// its static queue sizes.
func TestTunerStateWithoutAutoTune(t *testing.T) {
	p := New(
		Stage[int]{Name: "a", QueueSize: 3, Fn: func(_ context.Context, j int) (int, error) { return j, nil }},
		Stage[int]{Name: "b", QueueSize: 1, Fn: func(_ context.Context, j int) (int, error) { return j, nil }},
	)
	st := p.TunerState()
	if st.Enabled {
		t.Fatalf("tuner should be disabled: %+v", st)
	}
	if st.Retunes != 0 {
		t.Errorf("retunes = %d, want 0", st.Retunes)
	}
	if len(st.QueueCaps) != 2 || st.QueueCaps[0] != 3 || st.QueueCaps[1] != 1 {
		t.Errorf("queue caps = %v, want [3 1]", st.QueueCaps)
	}
}

// TestStatsCarryEWMAAndOccupancy: after a run, Stats exposes a nonzero EWMA
// service time for every stage and the queue capacity/mean occupancy of each
// stage's input queue.
func TestStatsCarryEWMAAndOccupancy(t *testing.T) {
	p := New(
		sleepStage("a", time.Millisecond),
		sleepStage("b", 2*time.Millisecond),
	)
	p.AutoTune(TunerConfig{MaxInFlight: 4, Interval: 2})
	runTimed(t, p, 8)

	for _, s := range p.Stats() {
		if s.EWMAService <= 0 {
			t.Errorf("stage %s EWMA service = %v, want > 0", s.Name, s.EWMAService)
		}
		if s.QueueCap < 1 {
			t.Errorf("stage %s queue cap = %d, want >= 1", s.Name, s.QueueCap)
		}
		if s.MeanQueueLen < 0 {
			t.Errorf("stage %s mean queue len = %v, want >= 0", s.Name, s.MeanQueueLen)
		}
	}
}
