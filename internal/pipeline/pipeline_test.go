package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func intSource(n int) func(context.Context) (int, bool, error) {
	i := 0
	return func(context.Context) (int, bool, error) {
		if i >= n {
			return 0, false, nil
		}
		i++
		return i, true, nil
	}
}

func TestPipelineProcessesAllJobsInOrder(t *testing.T) {
	p := New(
		Stage[int]{Name: "double", QueueSize: 2, Fn: func(_ context.Context, x int) (int, error) { return x * 2, nil }},
		Stage[int]{Name: "inc", QueueSize: 2, Fn: func(_ context.Context, x int) (int, error) { return x + 1, nil }},
	)
	var got []int
	var mu sync.Mutex
	err := p.Run(context.Background(), intSource(10), func(_ context.Context, x int) error {
		mu.Lock()
		got = append(got, x)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("sink received %d jobs, want 10", len(got))
	}
	for i, v := range got {
		want := (i+1)*2 + 1
		if v != want {
			t.Fatalf("job %d = %d, want %d (order must be preserved)", i, v, want)
		}
	}
	if p.NumStages() != 2 {
		t.Fatal("NumStages wrong")
	}
}

func TestPipelineStats(t *testing.T) {
	p := New(
		Stage[int]{Name: "slow", Fn: func(_ context.Context, x int) (int, error) {
			time.Sleep(2 * time.Millisecond)
			return x, nil
		}},
		Stage[int]{Name: "fast", Fn: func(_ context.Context, x int) (int, error) { return x, nil }},
	)
	if err := p.Run(context.Background(), intSource(5), nil); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatal("want 2 stage stats")
	}
	if stats[0].Jobs != 5 || stats[1].Jobs != 5 {
		t.Fatalf("job counts = %+v", stats)
	}
	if stats[0].Busy < 10*time.Millisecond {
		t.Fatalf("slow stage busy = %v", stats[0].Busy)
	}
	name, busy := p.BottleneckStage()
	if name != "slow" || busy < stats[1].Busy {
		t.Fatalf("bottleneck = %s %v", name, busy)
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// With two stages each sleeping d per job, a pipelined run of n jobs
	// should take well under 2*n*d (the serial time).
	const d = 3 * time.Millisecond
	const n = 8
	stage := func(_ context.Context, x int) (int, error) {
		time.Sleep(d)
		return x, nil
	}
	p := New(
		Stage[int]{Name: "a", QueueSize: 4, Fn: stage},
		Stage[int]{Name: "b", QueueSize: 4, Fn: stage},
	)
	start := time.Now()
	if err := p.Run(context.Background(), intSource(n), nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serial := 2 * n * d
	if elapsed >= serial*3/4 {
		t.Fatalf("pipeline took %v; expected meaningful overlap vs serial %v", elapsed, serial)
	}
}

func TestPipelineStageError(t *testing.T) {
	boom := errors.New("boom")
	p := New(
		Stage[int]{Name: "ok", Fn: func(_ context.Context, x int) (int, error) { return x, nil }},
		Stage[int]{Name: "fail", Fn: func(_ context.Context, x int) (int, error) {
			if x == 3 {
				return 0, boom
			}
			return x, nil
		}},
	)
	err := p.Run(context.Background(), intSource(100), nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
}

func TestPipelineSourceError(t *testing.T) {
	boom := errors.New("source broke")
	src := func(context.Context) (int, bool, error) { return 0, false, boom }
	p := New(Stage[int]{Name: "s", Fn: func(_ context.Context, x int) (int, error) { return x, nil }})
	if err := p.Run(context.Background(), src, nil); !errors.Is(err, boom) {
		t.Fatalf("want source error, got %v", err)
	}
	if err := p.Run(context.Background(), nil, nil); err == nil {
		t.Fatal("nil source should error")
	}
}

func TestPipelineSinkError(t *testing.T) {
	boom := errors.New("sink broke")
	p := New(Stage[int]{Name: "s", Fn: func(_ context.Context, x int) (int, error) { return x, nil }})
	err := p.Run(context.Background(), intSource(10), func(_ context.Context, x int) error {
		if x == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want sink error, got %v", err)
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int64
	// Endless source.
	src := func(ctx context.Context) (int, bool, error) {
		select {
		case <-ctx.Done():
			return 0, false, nil
		default:
			return 1, true, nil
		}
	}
	p := New(Stage[int]{Name: "count", QueueSize: 2, Fn: func(_ context.Context, x int) (int, error) {
		processed.Add(1)
		time.Sleep(time.Millisecond)
		return x, nil
	}})
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx, src, nil) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("want ErrStopped, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not stop after cancellation")
	}
	if processed.Load() == 0 {
		t.Fatal("expected some jobs to be processed before cancellation")
	}
}

func TestPipelineBackpressureStall(t *testing.T) {
	// A fast first stage feeding a slow second stage must record stall time.
	p := New(
		Stage[int]{Name: "fast", QueueSize: 1, Fn: func(_ context.Context, x int) (int, error) { return x, nil }},
		Stage[int]{Name: "slow", QueueSize: 1, Fn: func(_ context.Context, x int) (int, error) {
			time.Sleep(3 * time.Millisecond)
			return x, nil
		}},
	)
	if err := p.Run(context.Background(), intSource(10), nil); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats[0].Stalled == 0 {
		t.Fatal("fast stage should have recorded backpressure stall time")
	}
}

func TestNewPanicsWithoutStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int]()
}

func TestPipelineNilSinkOK(t *testing.T) {
	p := New(Stage[int]{Name: "s", Fn: func(_ context.Context, x int) (int, error) { return x, nil }})
	if err := p.Run(context.Background(), intSource(3), nil); err != nil {
		t.Fatal(err)
	}
}
