package pipeline

import "sync"

// queue is a bounded FIFO whose capacity can be changed while producers and
// consumers are blocked on it — the property the auto-tuner needs and Go
// channels do not have. A closed queue rejects further pushes but keeps
// serving pops until it drains, matching the close semantics of the channel
// chain it replaces.
type queue[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []T
	head     int
	capacity int
	closed   bool

	// Occupancy accounting: the queue length is sampled on every push, so
	// mean occupancy reflects how full the prefetch queue runs in steady
	// state (a persistently full queue marks the consumer as the bottleneck).
	occSum   int64
	occCount int64
}

func newQueue[T any](capacity int) *queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &queue[T]{capacity: capacity}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// push appends v, blocking while the queue is at capacity. It returns false
// if the queue was closed before the value could be enqueued.
func (q *queue[T]) push(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.buf)-q.head >= q.capacity {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.occSum += int64(len(q.buf) - q.head)
	q.occCount++
	q.buf = append(q.buf, v)
	q.notEmpty.Signal()
	return true
}

// pop removes the oldest value, blocking while the queue is empty. It returns
// ok=false once the queue is closed and drained.
func (q *queue[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == q.head && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if len(q.buf) == q.head {
		return zero, false // closed and drained
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.notFull.Signal()
	return v, true
}

// setCap changes the capacity. Growing wakes blocked producers; shrinking
// below the current length only throttles future pushes (queued values are
// never dropped).
func (q *queue[T]) setCap(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	if n > q.capacity {
		q.capacity = n
		q.notFull.Broadcast()
	} else {
		q.capacity = n
	}
	q.mu.Unlock()
}

// close marks the queue closed and wakes every waiter. Idempotent.
func (q *queue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// occupancy returns the current capacity and the mean queue length observed
// across all pushes so far.
func (q *queue[T]) occupancy() (capacity int, mean float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.occCount > 0 {
		mean = float64(q.occSum) / float64(q.occCount)
	}
	return q.capacity, mean
}
