package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatal("NewMatrix shape wrong")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatal("Row view wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must not share storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	NewMatrix(-1, 2)
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatal("NewMatrixFrom layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 2, []float32{1})
}

func TestMatVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 0, -1}
	out := make([]float32, 2)
	MatVec(m, x, out)
	if out[0] != -2 || out[1] != -2 {
		t.Fatalf("MatVec = %v", out)
	}
}

func TestMatTVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 1}
	out := make([]float32, 3)
	MatTVec(m, x, out)
	if out[0] != 5 || out[1] != 7 || out[2] != 9 {
		t.Fatalf("MatTVec = %v", out)
	}
}

func TestMatVecMatTVecAdjointProperty(t *testing.T) {
	// <Mx, y> == <x, Mᵀy> for random matrices — checks both products agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(6) + 1
		cols := rng.Intn(6) + 1
		m := NewMatrix(rows, cols)
		m.FillRandom(rng)
		x := make([]float32, cols)
		y := make([]float32, rows)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		for i := range y {
			y[i] = rng.Float32()*2 - 1
		}
		mx := make([]float32, rows)
		MatVec(m, x, mx)
		mty := make([]float32, cols)
		MatTVec(m, y, mty)
		lhs := float64(Dot(mx, y))
		rhs := float64(Dot(x, mty))
		return almostEqual(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOuterAccum(t *testing.T) {
	out := NewMatrix(2, 2)
	OuterAccum(out, []float32{1, 2}, []float32{3, 4})
	if out.At(0, 0) != 3 || out.At(0, 1) != 4 || out.At(1, 0) != 6 || out.At(1, 1) != 8 {
		t.Fatalf("OuterAccum = %v", out.Data)
	}
	// Accumulates, not overwrites.
	OuterAccum(out, []float32{1, 0}, []float32{1, 1})
	if out.At(0, 0) != 4 || out.At(1, 0) != 6 {
		t.Fatalf("OuterAccum accumulate = %v", out.Data)
	}
}

func TestAxpyScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{1, 1, 1}
	Axpy(2, x, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
	if Dot([]float32{1, 2}, []float32{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
}

func TestShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	cases := []func(){
		func() { MatVec(m, make([]float32, 2), make([]float32, 2)) },
		func() { MatTVec(m, make([]float32, 3), make([]float32, 3)) },
		func() { OuterAccum(m, make([]float32, 3), make([]float32, 3)) },
		func() { Axpy(1, make([]float32, 2), make([]float32, 3)) },
		func() { Dot(make([]float32, 2), make([]float32, 3)) },
		func() { ReLUGrad(make([]float32, 2), make([]float32, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected shape panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(float64(Sigmoid(0)), 0.5, 1e-6) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(50) <= 0.99 || Sigmoid(-50) >= 0.01 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// Symmetry: sigmoid(-x) == 1 - sigmoid(x)
	f := func(v float32) bool {
		x := v
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		return almostEqual(float64(Sigmoid(-x)), 1-float64(Sigmoid(x)), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUAndGrad(t *testing.T) {
	x := []float32{-1, 0, 2}
	ReLU(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Fatalf("ReLU = %v", x)
	}
	act := []float32{0, 0, 2}
	grad := []float32{5, 5, 5}
	ReLUGrad(act, grad)
	if grad[0] != 0 || grad[1] != 0 || grad[2] != 5 {
		t.Fatalf("ReLUGrad = %v", grad)
	}
}

func TestLogLoss(t *testing.T) {
	if !almostEqual(LogLoss(0.5, 1), math.Log(2), 1e-6) {
		t.Fatal("LogLoss(0.5,1) wrong")
	}
	if !almostEqual(LogLoss(0.5, 0), math.Log(2), 1e-6) {
		t.Fatal("LogLoss(0.5,0) wrong")
	}
	// Clamped: never infinite.
	if math.IsInf(LogLoss(0, 1), 0) || math.IsInf(LogLoss(1, 0), 0) {
		t.Fatal("LogLoss must clamp")
	}
	if LogLoss(0.9, 1) >= LogLoss(0.1, 1) {
		t.Fatal("better prediction should have lower loss")
	}
}

func TestFillRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(8, 8)
	m.FillRandom(rng)
	limit := math.Sqrt(6.0 / 16.0)
	nonZero := 0
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("FillRandom produced all zeros")
	}
	// Empty matrix should not panic.
	NewMatrix(0, 5).FillRandom(rng)
}
