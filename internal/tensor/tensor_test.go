package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatal("NewMatrix shape wrong")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatal("Row view wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must not share storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	NewMatrix(-1, 2)
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatal("NewMatrixFrom layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 2, []float32{1})
}

func TestMatVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 0, -1}
	out := make([]float32, 2)
	MatVec(m, x, out)
	if out[0] != -2 || out[1] != -2 {
		t.Fatalf("MatVec = %v", out)
	}
}

func TestMatTVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 1}
	out := make([]float32, 3)
	MatTVec(m, x, out)
	if out[0] != 5 || out[1] != 7 || out[2] != 9 {
		t.Fatalf("MatTVec = %v", out)
	}
}

func TestMatVecMatTVecAdjointProperty(t *testing.T) {
	// <Mx, y> == <x, Mᵀy> for random matrices — checks both products agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(6) + 1
		cols := rng.Intn(6) + 1
		m := NewMatrix(rows, cols)
		m.FillRandom(rng)
		x := make([]float32, cols)
		y := make([]float32, rows)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		for i := range y {
			y[i] = rng.Float32()*2 - 1
		}
		mx := make([]float32, rows)
		MatVec(m, x, mx)
		mty := make([]float32, cols)
		MatTVec(m, y, mty)
		lhs := float64(Dot(mx, y))
		rhs := float64(Dot(x, mty))
		return almostEqual(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOuterAccum(t *testing.T) {
	out := NewMatrix(2, 2)
	OuterAccum(out, []float32{1, 2}, []float32{3, 4})
	if out.At(0, 0) != 3 || out.At(0, 1) != 4 || out.At(1, 0) != 6 || out.At(1, 1) != 8 {
		t.Fatalf("OuterAccum = %v", out.Data)
	}
	// Accumulates, not overwrites.
	OuterAccum(out, []float32{1, 0}, []float32{1, 1})
	if out.At(0, 0) != 4 || out.At(1, 0) != 6 {
		t.Fatalf("OuterAccum accumulate = %v", out.Data)
	}
}

func TestAxpyScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{1, 1, 1}
	Axpy(2, x, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
	if Dot([]float32{1, 2}, []float32{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
}

// TestMatTVecSkipsZeroCoefficientRows pins the zero-skip contract at every
// row position: a row whose coefficient is zero must not contribute even
// when it holds non-finite values (0 * Inf would otherwise poison the
// output), whether the row lands in the 4-row blocked body or the remainder.
func TestMatTVecSkipsZeroCoefficientRows(t *testing.T) {
	const rows, cols = 6, 3
	for bad := 0; bad < rows; bad++ {
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, float32(i+1))
			}
		}
		m.Set(bad, 0, float32(math.Inf(1)))
		m.Set(bad, 1, float32(math.NaN()))
		x := make([]float32, rows)
		want := float32(0)
		for i := range x {
			if i == bad {
				continue // the poisoned row gets coefficient 0
			}
			x[i] = 1
			want += float32(i + 1)
		}
		out := make([]float32, cols)
		MatTVec(m, x, out)
		for j, v := range out {
			if v != want {
				t.Fatalf("bad row %d: out[%d] = %v, want %v", bad, j, v, want)
			}
		}
	}
}

func TestAdd(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{10, 20, 30, 40, 50}
	Add(x, y)
	want := []float32{11, 22, 33, 44, 55}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Add = %v, want %v", y, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	Add(make([]float32, 2), make([]float32, 3))
}

func TestSubAnyNonZero(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}
	b := []float32{1, 2, 3, 4, 5, 6}
	dst := make([]float32, 6)
	if SubAnyNonZero(dst, a, b) {
		t.Fatal("identical inputs reported a change")
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("difference of identical inputs = %v", dst)
		}
	}
	// A change in any lane — unrolled body and remainder alike — is detected.
	for i := range a {
		b2 := append([]float32(nil), b...)
		b2[i] += 0.5
		if !SubAnyNonZero(dst, a, b2) {
			t.Fatalf("change at element %d not detected", i)
		}
		if dst[i] != -0.5 {
			t.Fatalf("dst[%d] = %v, want -0.5", i, dst[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	SubAnyNonZero(make([]float32, 2), make([]float32, 2), make([]float32, 3))
}

// TestUnrolledKernelsMatchScalar pins the unrolled kernels to naive scalar
// references at every remainder length (n%4 in 0..3). The element-wise
// kernels must match bit-for-bit; the reductions (Dot via MatVec too) sum in
// a different association order, so they get a small tolerance.
func TestUnrolledKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33} {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
			y[i] = rng.Float32()*2 - 1
		}

		var scalarDot float64
		for i := range x {
			scalarDot += float64(x[i]) * float64(y[i])
		}
		if got := float64(Dot(x, y)); !almostEqual(got, scalarDot, 1e-4) {
			t.Fatalf("n=%d: Dot = %v, scalar = %v", n, got, scalarDot)
		}

		yAxpy := append([]float32(nil), y...)
		Axpy(0.25, x, yAxpy)
		yAdd := append([]float32(nil), y...)
		Add(x, yAdd)
		yScale := append([]float32(nil), y...)
		Scale(0.75, yScale)
		for i := range y {
			if yAxpy[i] != y[i]+0.25*x[i] {
				t.Fatalf("n=%d: Axpy[%d] = %v, want %v", n, i, yAxpy[i], y[i]+0.25*x[i])
			}
			if yAdd[i] != y[i]+x[i] {
				t.Fatalf("n=%d: Add[%d] = %v, want %v", n, i, yAdd[i], y[i]+x[i])
			}
			if yScale[i] != y[i]*0.75 {
				t.Fatalf("n=%d: Scale[%d] = %v, want %v", n, i, yScale[i], y[i]*0.75)
			}
		}
	}
}

func TestShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	cases := []func(){
		func() { MatVec(m, make([]float32, 2), make([]float32, 2)) },
		func() { MatTVec(m, make([]float32, 3), make([]float32, 3)) },
		func() { OuterAccum(m, make([]float32, 3), make([]float32, 3)) },
		func() { Axpy(1, make([]float32, 2), make([]float32, 3)) },
		func() { Dot(make([]float32, 2), make([]float32, 3)) },
		func() { ReLUGrad(make([]float32, 2), make([]float32, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected shape panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(float64(Sigmoid(0)), 0.5, 1e-6) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(50) <= 0.99 || Sigmoid(-50) >= 0.01 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// Symmetry: sigmoid(-x) == 1 - sigmoid(x)
	f := func(v float32) bool {
		x := v
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		return almostEqual(float64(Sigmoid(-x)), 1-float64(Sigmoid(x)), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUAndGrad(t *testing.T) {
	x := []float32{-1, 0, 2}
	ReLU(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Fatalf("ReLU = %v", x)
	}
	act := []float32{0, 0, 2}
	grad := []float32{5, 5, 5}
	ReLUGrad(act, grad)
	if grad[0] != 0 || grad[1] != 0 || grad[2] != 5 {
		t.Fatalf("ReLUGrad = %v", grad)
	}
}

func TestLogLoss(t *testing.T) {
	if !almostEqual(LogLoss(0.5, 1), math.Log(2), 1e-6) {
		t.Fatal("LogLoss(0.5,1) wrong")
	}
	if !almostEqual(LogLoss(0.5, 0), math.Log(2), 1e-6) {
		t.Fatal("LogLoss(0.5,0) wrong")
	}
	// Clamped: never infinite.
	if math.IsInf(LogLoss(0, 1), 0) || math.IsInf(LogLoss(1, 0), 0) {
		t.Fatal("LogLoss must clamp")
	}
	if LogLoss(0.9, 1) >= LogLoss(0.1, 1) {
		t.Fatal("better prediction should have lower loss")
	}
}

func TestFillRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(8, 8)
	m.FillRandom(rng)
	limit := math.Sqrt(6.0 / 16.0)
	nonZero := 0
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("FillRandom produced all zeros")
	}
	// Empty matrix should not panic.
	NewMatrix(0, 5).FillRandom(rng)
}
