// Package tensor implements the minimal dense float32 linear algebra used by
// the CTR prediction network: matrices, matrix-vector and matrix-matrix
// products, element-wise activation functions and their derivatives.
//
// Only the operations the fully-connected layers need are provided; the goal
// is a dependency-free, predictable substrate rather than a general BLAS.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix with the given shape. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixFrom wraps data as a rows x cols matrix. It panics if the length
// of data does not match the shape.
func NewMatrixFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillRandom initializes the matrix with Xavier/Glorot uniform values using
// the provided random source, suitable for fully-connected layer weights.
func (m *Matrix) FillRandom(rng *rand.Rand) {
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// The dense inner loops below are unrolled four wide, gonum-style: four
// independent accumulators (or four independent element updates) per
// iteration, with re-sliced 4-element windows so the compiler proves the
// bounds once per iteration instead of once per element. Reductions (Dot,
// MatVec) therefore sum in a different association order than a scalar loop —
// every caller in this repo either tolerates that (AUC comparisons) or runs
// both sides of its comparison through the same kernels (the bit-exactness
// tests), so the unroll is observationally safe.

// MatVec computes out = M * x where x has length M.Cols and out has length
// M.Rows. It panics on shape mismatch.
func MatVec(m *Matrix, x, out []float32) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch m=%dx%d x=%d out=%d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = dotUnitary(m.Row(i), x)
	}
}

// dotUnitary is the unrolled inner product of two equal-length slices; the
// caller guarantees len(x) == len(y).
func dotUnitary(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for n := len(x) - 3; i < n; i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	sum := (s0 + s2) + (s1 + s3)
	for ; i < len(x); i++ {
		sum += x[i] * y[i]
	}
	return sum
}

// MatTVec computes out = Mᵀ * x where x has length M.Rows and out has length
// M.Cols. It panics on shape mismatch. Rows are processed four at a time so
// out is read and written once per block instead of once per row (the axpy
// form is store-bound on out); a block of x containing zero coefficients —
// common when x is a ReLU-masked gradient — accumulates row by row instead,
// so a zero-coefficient row is always skipped outright.
func MatTVec(m *Matrix, x, out []float32) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch m=%dx%d x=%d out=%d", m.Rows, m.Cols, len(x), len(out)))
	}
	for j := range out {
		out[j] = 0
	}
	if m.Cols == 0 {
		return
	}
	i := 0
	for ; i+3 < m.Rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			// A zero coefficient must skip its row entirely (0 * Inf or
			// 0 * NaN in a masked-out row would otherwise poison out), so a
			// block with any zero lane falls back to per-row accumulation —
			// the same semantics as the remainder loop.
			for r := i; r < i+4; r++ {
				if xi := x[r]; xi != 0 {
					axpyUnitary(xi, m.Row(r), out)
				}
			}
			continue
		}
		r0, r1, r2, r3 := m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3)
		for j, v := range r0 {
			out[j] += x0*v + x1*r1[j] + x2*r2[j] + x3*r3[j]
		}
	}
	for ; i < m.Rows; i++ {
		if xi := x[i]; xi != 0 {
			axpyUnitary(xi, m.Row(i), out)
		}
	}
}

// OuterAccum accumulates out += a * bᵀ (a has length out.Rows, b has length
// out.Cols). It is used for weight-gradient accumulation.
func OuterAccum(out *Matrix, a, b []float32) {
	if len(a) != out.Rows || len(b) != out.Cols {
		panic(fmt.Sprintf("tensor: OuterAccum shape mismatch out=%dx%d a=%d b=%d", out.Rows, out.Cols, len(a), len(b)))
	}
	for i := 0; i < out.Rows; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		axpyUnitary(ai, b, out.Row(i))
	}
}

// Axpy computes y += alpha * x element-wise. It panics on length mismatch.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	axpyUnitary(alpha, x, y)
}

// axpyUnitary is the unrolled y += alpha*x core; the caller guarantees
// len(x) == len(y). Element updates are independent, so unlike the reduction
// kernels this is bit-identical to the scalar loop. Eight wide rather than
// four: the kernel is store-bound, and the wider body amortizes the loop
// overhead further (measurably, unlike the reduction kernels, which run out
// of registers first).
func axpyUnitary(alpha float32, x, y []float32) {
	i := 0
	for n := len(x) - 7; i < n; i += 8 {
		x8 := x[i : i+8 : i+8]
		y8 := y[i : i+8 : i+8]
		y8[0] += alpha * x8[0]
		y8[1] += alpha * x8[1]
		y8[2] += alpha * x8[2]
		y8[3] += alpha * x8[3]
		y8[4] += alpha * x8[4]
		y8[5] += alpha * x8[5]
		y8[6] += alpha * x8[6]
		y8[7] += alpha * x8[7]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Add computes y += x element-wise (the alpha == 1 Axpy, kept separate so the
// slab-merge hot paths skip the multiply). It panics on length mismatch.
func Add(x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(x), len(y)))
	}
	i := 0
	for n := len(x) - 7; i < n; i += 8 {
		x8 := x[i : i+8 : i+8]
		y8 := y[i : i+8 : i+8]
		y8[0] += x8[0]
		y8[1] += x8[1]
		y8[2] += x8[2]
		y8[3] += x8[3]
		y8[4] += x8[4]
		y8[5] += x8[5]
		y8[6] += x8[6]
		y8[7] += x8[7]
	}
	for ; i < len(x); i++ {
		y[i] += x[i]
	}
}

// SubAnyNonZero computes dst = a - b element-wise and reports whether any
// element of the difference is non-zero — the fused subtract-and-test of the
// delta-collection path (computing the difference and scanning it separately
// would stream the slab twice). It panics on length mismatch.
func SubAnyNonZero(dst, a, b []float32) bool {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: SubAnyNonZero length mismatch dst=%d a=%d b=%d", len(dst), len(a), len(b)))
	}
	changed := false
	i := 0
	for n := len(a) - 3; i < n; i += 4 {
		a4 := a[i : i+4 : i+4]
		b4 := b[i : i+4 : i+4]
		d4 := dst[i : i+4 : i+4]
		d0 := a4[0] - b4[0]
		d1 := a4[1] - b4[1]
		d2 := a4[2] - b4[2]
		d3 := a4[3] - b4[3]
		d4[0], d4[1], d4[2], d4[3] = d0, d1, d2, d3
		if d0 != 0 || d1 != 0 || d2 != 0 || d3 != 0 {
			changed = true
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		dst[i] = d
		if d != 0 {
			changed = true
		}
	}
	return changed
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	i := 0
	for n := len(x) - 3; i < n; i += 4 {
		x4 := x[i : i+4 : i+4]
		x4[0] *= alpha
		x4[1] *= alpha
		x4[2] *= alpha
		x4[3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(x), len(y)))
	}
	return dotUnitary(x, y)
}

// Sigmoid returns 1 / (1 + exp(-x)) computed in a numerically stable way.
func Sigmoid(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(-float64(x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// ReLU applies max(0, x) in place.
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ReLUGrad multiplies grad by the ReLU derivative evaluated at activation
// values act (1 where act > 0, else 0), in place on grad.
func ReLUGrad(act, grad []float32) {
	if len(act) != len(grad) {
		panic(fmt.Sprintf("tensor: ReLUGrad length mismatch %d != %d", len(act), len(grad)))
	}
	for i, a := range act {
		if a <= 0 {
			grad[i] = 0
		}
	}
}

// LogLoss returns the binary cross-entropy loss for prediction p in (0,1) and
// label y in {0,1}, clamping p away from 0 and 1 for numerical stability.
func LogLoss(p float32, y float32) float64 {
	const eps = 1e-7
	pp := float64(p)
	if pp < eps {
		pp = eps
	}
	if pp > 1-eps {
		pp = 1 - eps
	}
	if y > 0.5 {
		return -math.Log(pp)
	}
	return -math.Log(1 - pp)
}
