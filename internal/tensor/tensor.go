// Package tensor implements the minimal dense float32 linear algebra used by
// the CTR prediction network: matrices, matrix-vector and matrix-matrix
// products, element-wise activation functions and their derivatives.
//
// Only the operations the fully-connected layers need are provided; the goal
// is a dependency-free, predictable substrate rather than a general BLAS.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix with the given shape. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixFrom wraps data as a rows x cols matrix. It panics if the length
// of data does not match the shape.
func NewMatrixFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillRandom initializes the matrix with Xavier/Glorot uniform values using
// the provided random source, suitable for fully-connected layer weights.
func (m *Matrix) FillRandom(rng *rand.Rand) {
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// MatVec computes out = M * x where x has length M.Cols and out has length
// M.Rows. It panics on shape mismatch.
func MatVec(m *Matrix, x, out []float32) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch m=%dx%d x=%d out=%d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
}

// MatTVec computes out = Mᵀ * x where x has length M.Rows and out has length
// M.Cols. It panics on shape mismatch.
func MatTVec(m *Matrix, x, out []float32) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch m=%dx%d x=%d out=%d", m.Rows, m.Cols, len(x), len(out)))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += v * xi
		}
	}
}

// OuterAccum accumulates out += a * bᵀ (a has length out.Rows, b has length
// out.Cols). It is used for weight-gradient accumulation.
func OuterAccum(out *Matrix, a, b []float32) {
	if len(a) != out.Rows || len(b) != out.Cols {
		panic(fmt.Sprintf("tensor: OuterAccum shape mismatch out=%dx%d a=%d b=%d", out.Rows, out.Cols, len(a), len(b)))
	}
	for i := 0; i < out.Rows; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		row := out.Row(i)
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// Axpy computes y += alpha * x element-wise. It panics on length mismatch.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var sum float32
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Sigmoid returns 1 / (1 + exp(-x)) computed in a numerically stable way.
func Sigmoid(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(-float64(x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// ReLU applies max(0, x) in place.
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ReLUGrad multiplies grad by the ReLU derivative evaluated at activation
// values act (1 where act > 0, else 0), in place on grad.
func ReLUGrad(act, grad []float32) {
	if len(act) != len(grad) {
		panic(fmt.Sprintf("tensor: ReLUGrad length mismatch %d != %d", len(act), len(grad)))
	}
	for i, a := range act {
		if a <= 0 {
			grad[i] = 0
		}
	}
}

// LogLoss returns the binary cross-entropy loss for prediction p in (0,1) and
// label y in {0,1}, clamping p away from 0 and 1 for numerical stability.
func LogLoss(p float32, y float32) float64 {
	const eps = 1e-7
	pp := float64(p)
	if pp < eps {
		pp = eps
	}
	if pp > 1-eps {
		pp = 1 - eps
	}
	if y > 0.5 {
		return -math.Log(pp)
	}
	return -math.Log(1 - pp)
}
