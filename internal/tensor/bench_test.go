package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Two shape regimes: 64x64 panels / 256-wide vectors stay L1-resident, which
// is the regime the CTR dense tower (a few dozen units per layer) actually
// runs in, so kernel overhead dominates; 256x256 / 4096-wide streams through
// L2, so the kernels are bandwidth-bound and the unroll matters less.
var matShapes = []int{64, 256}
var vecShapes = []int{256, 4096}

func benchMatrix(rows, cols int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(rows, cols)
	m.FillRandom(rng)
	return m
}

func benchVector(n int) []float32 {
	rng := rand.New(rand.NewSource(2))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func BenchmarkMatVec(b *testing.B) {
	for _, n := range matShapes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			m := benchMatrix(n, n)
			x := benchVector(n)
			out := make([]float32, n)
			b.SetBytes(int64(4 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVec(m, x, out)
			}
		})
	}
}

func BenchmarkMatTVec(b *testing.B) {
	for _, n := range matShapes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			m := benchMatrix(n, n)
			x := benchVector(n)
			out := make([]float32, n)
			b.SetBytes(int64(4 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatTVec(m, x, out)
			}
		})
	}
}

func BenchmarkOuterAccum(b *testing.B) {
	for _, n := range matShapes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			out := NewMatrix(n, n)
			a := benchVector(n)
			v := benchVector(n)
			b.SetBytes(int64(4 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				OuterAccum(out, a, v)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range vecShapes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			x := benchVector(n)
			y := benchVector(n)
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, y)
			}
		})
	}
}

func BenchmarkDot(b *testing.B) {
	for _, n := range vecShapes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			x := benchVector(n)
			y := benchVector(n)
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			var sink float32
			for i := 0; i < b.N; i++ {
				sink += Dot(x, y)
			}
			_ = sink
		})
	}
}
