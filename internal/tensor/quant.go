// Quantization kernels for the compressed wire formats: IEEE-754 binary16
// (half precision) conversion with round-to-nearest-even, and symmetric int8
// with a per-row scale. These back the ps wire codec's fp16/int8 row
// encodings; the scalar conversions are the reference semantics and the slice
// kernels must match them bit for bit (see quant_test.go).
package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// F16Bits converts a float32 to IEEE-754 binary16 bits, rounding to nearest
// even. Values above the half range become infinities, tiny values flush
// through the half subnormal range to signed zero, and every NaN maps to a
// quiet NaN (payloads are not preserved — the wire does not need them).
func F16Bits(f float32) uint16 {
	u := math.Float32bits(f)
	sign := uint16(u>>16) & 0x8000
	u &^= 0x80000000
	if u >= 0x7f800000 { // Inf or NaN
		if u > 0x7f800000 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	}
	exp := int32(u>>23) - 127 + 15
	mant := u & 0x7fffff
	if exp >= 0x1f {
		return sign | 0x7c00 // overflow to infinity
	}
	if exp <= 0 {
		if exp < -10 {
			return sign // underflows even the subnormal range
		}
		// Subnormal half: shift the mantissa (with its implicit bit) into
		// place, rounding to nearest even on the dropped bits.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant >> shift
		if rem := mant & (1<<shift - 1); rem > half || (rem == half && rounded&1 == 1) {
			rounded++ // may carry into the exponent; 0x400 encodes 2^-14 exactly
		}
		return sign | uint16(rounded)
	}
	rounded := mant >> 13
	if rem := mant & 0x1fff; rem > 0x1000 || (rem == 0x1000 && rounded&1 == 1) {
		rounded++
		if rounded == 0x400 { // mantissa carry bumps the exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
	}
	return sign | uint16(exp)<<10 | uint16(rounded)
}

// F16FromBits converts IEEE-754 binary16 bits to the float32 with the same
// value. Every half value is exactly representable in float32, so this
// direction is lossless.
func F16FromBits(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp != 0:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	case mant == 0:
		return math.Float32frombits(sign) // signed zero
	}
	// Subnormal half: value = mant * 2^-24, normalized in float32.
	k := uint32(31 - bits.LeadingZeros32(mant)) // highest set bit, 0..9
	fmant := (mant << (10 - k)) & 0x3ff
	return math.Float32frombits(sign | (k+103)<<23 | fmant<<13)
}

// AppendF16 appends the little-endian binary16 encoding of src (2 bytes per
// element) to dst and returns the extended slice.
func AppendF16(dst []byte, src []float32) []byte {
	i := 0
	for n := len(src) - 3; i < n; i += 4 {
		s4 := src[i : i+4 : i+4]
		h0 := F16Bits(s4[0])
		h1 := F16Bits(s4[1])
		h2 := F16Bits(s4[2])
		h3 := F16Bits(s4[3])
		dst = append(dst,
			byte(h0), byte(h0>>8), byte(h1), byte(h1>>8),
			byte(h2), byte(h2>>8), byte(h3), byte(h3>>8))
	}
	for ; i < len(src); i++ {
		h := F16Bits(src[i])
		dst = append(dst, byte(h), byte(h>>8))
	}
	return dst
}

// DecodeF16 fills dst from the little-endian binary16 encoding in src. It
// panics unless src is exactly 2 bytes per destination element.
func DecodeF16(dst []float32, src []byte) {
	if len(src) != 2*len(dst) {
		panic(fmt.Sprintf("tensor: DecodeF16 length mismatch src=%d dst=%d", len(src), len(dst)))
	}
	i := 0
	for n := len(dst) - 3; i < n; i += 4 {
		s8 := src[2*i : 2*i+8 : 2*i+8]
		d4 := dst[i : i+4 : i+4]
		d4[0] = F16FromBits(binary.LittleEndian.Uint16(s8[0:2]))
		d4[1] = F16FromBits(binary.LittleEndian.Uint16(s8[2:4]))
		d4[2] = F16FromBits(binary.LittleEndian.Uint16(s8[4:6]))
		d4[3] = F16FromBits(binary.LittleEndian.Uint16(s8[6:8]))
	}
	for ; i < len(dst); i++ {
		dst[i] = F16FromBits(binary.LittleEndian.Uint16(src[2*i : 2*i+2]))
	}
}

// MaxAbs returns the largest absolute value in x (0 for an empty slice).
// NaNs are ignored so one poisoned element cannot zero a whole row's scale.
func MaxAbs(x []float32) float32 {
	var m0, m1, m2, m3 float32
	i := 0
	for n := len(x) - 3; i < n; i += 4 {
		x4 := x[i : i+4 : i+4]
		if a := abs32(x4[0]); a > m0 {
			m0 = a
		}
		if a := abs32(x4[1]); a > m1 {
			m1 = a
		}
		if a := abs32(x4[2]); a > m2 {
			m2 = a
		}
		if a := abs32(x4[3]); a > m3 {
			m3 = a
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m3 > m2 {
		m2 = m3
	}
	if m2 > m0 {
		m0 = m2
	}
	for ; i < len(x); i++ {
		if a := abs32(x[i]); a > m0 {
			m0 = a
		}
	}
	return m0
}

func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ 0x80000000)
}

// I8Quant returns the symmetric int8 quantization of v under scale: round
// half away from zero, clamped to [-127, 127]. A zero, non-finite or negative
// scale quantizes everything to 0 (the row is all zeros, or unencodable).
func I8Quant(v, scale float32) int8 {
	if !(scale > 0) || scale > math.MaxFloat32 {
		return 0
	}
	return i8round(v * (1 / scale))
}

// AppendI8 appends the symmetric int8 quantization of src under scale (1 byte
// per element) to dst and returns the extended slice.
func AppendI8(dst []byte, scale float32, src []float32) []byte {
	if !(scale > 0) || scale > math.MaxFloat32 {
		for range src {
			dst = append(dst, 0)
		}
		return dst
	}
	inv := 1 / scale
	i := 0
	for n := len(src) - 3; i < n; i += 4 {
		s4 := src[i : i+4 : i+4]
		dst = append(dst,
			byte(i8round(s4[0]*inv)), byte(i8round(s4[1]*inv)),
			byte(i8round(s4[2]*inv)), byte(i8round(s4[3]*inv)))
	}
	for ; i < len(src); i++ {
		dst = append(dst, byte(i8round(src[i]*inv)))
	}
	return dst
}

func i8round(r float32) int8 {
	switch {
	case r >= 127:
		return 127
	case r <= -127:
		return -127
	case r >= 0:
		return int8(r + 0.5)
	default:
		return int8(r - 0.5)
	}
}

// DecodeI8 fills dst with int8(src[i]) * scale. It panics unless src is
// exactly 1 byte per destination element.
func DecodeI8(dst []float32, scale float32, src []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("tensor: DecodeI8 length mismatch src=%d dst=%d", len(src), len(dst)))
	}
	i := 0
	for n := len(dst) - 3; i < n; i += 4 {
		s4 := src[i : i+4 : i+4]
		d4 := dst[i : i+4 : i+4]
		d4[0] = float32(int8(s4[0])) * scale
		d4[1] = float32(int8(s4[1])) * scale
		d4[2] = float32(int8(s4[2])) * scale
		d4[3] = float32(int8(s4[3])) * scale
	}
	for ; i < len(dst); i++ {
		dst[i] = float32(int8(src[i])) * scale
	}
}
