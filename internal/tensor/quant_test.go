package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// scalarF16Bits is the naive reference conversion: find the nearest binary16
// value by exhaustive comparison over the candidate neighborhood. Instead of
// re-deriving the bit algorithm, it uses the round-trip identity on a dense
// probe: for finite inputs, the correctly rounded half is one of the two
// halves bracketing the value.
func scalarF16Roundtrip(t *testing.T, f float32) {
	t.Helper()
	h := F16Bits(f)
	g := F16FromBits(h)
	if math.IsNaN(float64(f)) {
		if !math.IsNaN(float64(g)) {
			t.Fatalf("F16Bits(NaN) round-tripped to %v", g)
		}
		return
	}
	// The decoded half must be within half a ULP of the input (round to
	// nearest), and exactly representable halves must round-trip exactly.
	if F16Bits(g) != h {
		t.Fatalf("F16 re-encode not idempotent: %v -> %#04x -> %v -> %#04x", f, h, g, F16Bits(g))
	}
}

func TestF16ExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // largest finite half
		{-65504, 0xfbff},
		{6.103515625e-05, 0x0400},       // smallest normal half
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{65536, 0x7c00},  // overflow -> +inf
		{1e-10, 0x0000},  // underflow -> +0
		{-1e-10, 0x8000}, // underflow -> -0
	}
	for _, c := range cases {
		if got := F16Bits(c.f); got != c.h {
			t.Errorf("F16Bits(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if c.h&0x7c00 != 0x7c00 || c.h&0x3ff == 0 { // finite or inf: exact decode
			back := F16FromBits(c.h)
			want := c.f
			if c.h == 0x7c00 {
				want = float32(math.Inf(1))
			}
			if c.h == 0xfc00 {
				want = float32(math.Inf(-1))
			}
			if c.h == 0x0000 && c.f != 0 {
				want = 0
			}
			if c.h == 0x8000 && c.f != 0 {
				want = float32(math.Copysign(0, -1))
			}
			if math.Float32bits(back) != math.Float32bits(want) {
				t.Errorf("F16FromBits(%#04x) = %v (bits %#08x), want %v", c.h, back, math.Float32bits(back), want)
			}
		}
	}
	if h := F16Bits(float32(math.NaN())); h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Errorf("F16Bits(NaN) = %#04x, not a NaN encoding", h)
	}
	if g := F16FromBits(0x7e00); !math.IsNaN(float64(g)) {
		t.Errorf("F16FromBits(quiet NaN) = %v, want NaN", g)
	}
}

// TestF16RoundToNearestEven pins the tie-breaking behavior: a value exactly
// between two representable halves rounds to the one with an even mantissa.
func TestF16RoundToNearestEven(t *testing.T) {
	cases := []struct {
		f    float32
		want uint16
	}{
		// 1 + 2^-11 is exactly halfway between 1.0 (mantissa 0, even) and
		// the next half up (mantissa 1, odd) -> rounds down to 1.0.
		{1 + 0x1p-11, 0x3c00},
		// 1 + 3*2^-11 is halfway between mantissa 1 (odd) and 2 (even) ->
		// rounds up to mantissa 2.
		{1 + 3*0x1p-11, 0x3c02},
		// Just above the halfway point always rounds up.
		{1 + 0x1p-11 + 0x1p-20, 0x3c01},
	}
	for _, c := range cases {
		if got := F16Bits(c.f); got != c.want {
			t.Errorf("F16Bits(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

// TestF16AllBitsRoundTrip decodes every one of the 65536 half encodings and
// re-encodes it; every non-NaN value must round-trip to the same bits, which
// exercises every normal, subnormal, zero and infinity case.
func TestF16AllBitsRoundTrip(t *testing.T) {
	for u := 0; u < 1<<16; u++ {
		h := uint16(u)
		f := F16FromBits(h)
		if math.IsNaN(float64(f)) {
			if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
				t.Fatalf("F16FromBits(%#04x) = NaN for a non-NaN encoding", h)
			}
			continue
		}
		if got := F16Bits(f); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

func TestF16RandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		f := float32(rng.NormFloat64() * math.Pow(10, rng.Float64()*10-5))
		scalarF16Roundtrip(t, f)
	}
}

// TestAppendDecodeF16MatchesScalar checks the slice kernels against the
// scalar conversions at lengths that cover every remainder lane.
func TestAppendDecodeF16MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 129} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		enc := AppendF16([]byte{0xAA}, src) // non-empty dst: must append, not overwrite
		if enc[0] != 0xAA || len(enc) != 1+2*n {
			t.Fatalf("n=%d: AppendF16 wrote %d bytes (prefix %x)", n, len(enc)-1, enc[0])
		}
		for i, v := range src {
			h := F16Bits(v)
			if enc[1+2*i] != byte(h) || enc[2+2*i] != byte(h>>8) {
				t.Fatalf("n=%d i=%d: encoded %02x%02x, scalar %#04x", n, i, enc[1+2*i], enc[2+2*i], h)
			}
		}
		dec := make([]float32, n)
		DecodeF16(dec, enc[1:])
		for i := range dec {
			want := F16FromBits(F16Bits(src[i]))
			if math.Float32bits(dec[i]) != math.Float32bits(want) {
				t.Fatalf("n=%d i=%d: decoded %v, want %v", n, i, dec[i], want)
			}
		}
	}
}

func TestMaxAbsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 127} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		var want float32
		for _, v := range x {
			if a := float32(math.Abs(float64(v))); a > want {
				want = a
			}
		}
		if got := MaxAbs(x); got != want {
			t.Fatalf("n=%d: MaxAbs=%v, scalar=%v", n, got, want)
		}
	}
	if got := MaxAbs([]float32{-3, 2, float32(math.Copysign(0, -1))}); got != 3 {
		t.Fatalf("MaxAbs sign handling: got %v, want 3", got)
	}
}

func TestAppendDecodeI8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 127} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * 3)
		}
		scale := MaxAbs(src) / 127
		enc := AppendI8([]byte{0x55}, scale, src)
		if enc[0] != 0x55 || len(enc) != 1+n {
			t.Fatalf("n=%d: AppendI8 wrote %d bytes", n, len(enc)-1)
		}
		for i, v := range src {
			if int8(enc[1+i]) != I8Quant(v, scale) {
				t.Fatalf("n=%d i=%d: encoded %d, scalar %d (v=%v scale=%v)", n, i, int8(enc[1+i]), I8Quant(v, scale), v, scale)
			}
		}
		dec := make([]float32, n)
		DecodeI8(dec, scale, enc[1:])
		for i := range dec {
			want := float32(I8Quant(src[i], scale)) * scale
			if dec[i] != want {
				t.Fatalf("n=%d i=%d: decoded %v, want %v", n, i, dec[i], want)
			}
		}
		// Quantization error bound: at most half a step.
		if scale > 0 {
			for i := range dec {
				if err := math.Abs(float64(dec[i] - src[i])); err > float64(scale)*0.5001 {
					t.Fatalf("n=%d i=%d: |%v - %v| = %v exceeds scale/2 = %v", n, i, dec[i], src[i], err, scale/2)
				}
			}
		}
	}
}

func TestI8QuantEdgeCases(t *testing.T) {
	if got := I8Quant(5, 0); got != 0 {
		t.Errorf("I8Quant(5, 0) = %d, want 0", got)
	}
	if got := I8Quant(5, float32(math.NaN())); got != 0 {
		t.Errorf("I8Quant(5, NaN) = %d, want 0", got)
	}
	if got := I8Quant(1e30, 1); got != 127 {
		t.Errorf("I8Quant(1e30, 1) = %d, want 127", got)
	}
	if got := I8Quant(-1e30, 1); got != -127 {
		t.Errorf("I8Quant(-1e30, 1) = %d, want -127", got)
	}
	// All-zero source must encode to all zero bytes regardless of scale.
	enc := AppendI8(nil, 0, []float32{0, 0, 0, 0, 0})
	for i, b := range enc {
		if b != 0 {
			t.Errorf("zero row byte %d = %#02x", i, b)
		}
	}
}
