package cache

import "container/heap"

type lfuEntry[V any] struct {
	key   uint64
	value V
	freq  int64
	seq   int64 // tie-break: older entries evict first
	index int   // heap index
}

type lfuHeap[V any] []*lfuEntry[V]

func (h lfuHeap[V]) Len() int { return len(h) }
func (h lfuHeap[V]) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap[V]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap[V]) Push(x any) {
	e := x.(*lfuEntry[V])
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap[V]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LFU is a least-frequently-used cache keyed by uint64, with FIFO tie
// breaking among equally frequent entries. It is not safe for concurrent use.
type LFU[V any] struct {
	capacity int
	onEvict  EvictFunc[V]
	items    map[uint64]*lfuEntry[V]
	heap     lfuHeap[V]
	seq      int64
}

// NewLFU creates an LFU cache holding at most capacity entries. onEvict may
// be nil. A capacity <= 0 is treated as 1.
func NewLFU[V any](capacity int, onEvict EvictFunc[V]) *LFU[V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &LFU[V]{
		capacity: capacity,
		onEvict:  onEvict,
		items:    make(map[uint64]*lfuEntry[V]),
	}
}

// Len returns the number of cached entries.
func (c *LFU[V]) Len() int { return len(c.items) }

// Capacity returns the configured capacity.
func (c *LFU[V]) Capacity() int { return c.capacity }

// Get returns the value for key and increments its frequency.
func (c *LFU[V]) Get(key uint64) (V, bool) {
	if e, ok := c.items[key]; ok {
		e.freq++
		heap.Fix(&c.heap, e.index)
		return e.value, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without touching its frequency.
func (c *LFU[V]) Peek(key uint64) (V, bool) {
	if e, ok := c.items[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached without touching its frequency.
func (c *LFU[V]) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key. New entries start with the given initial
// frequency of 1; use PutWithFreq to preserve a frequency carried over from
// another cache level. If the cache overflows, the least frequently used
// entry is evicted.
func (c *LFU[V]) Put(key uint64, value V) {
	c.PutWithFreq(key, value, 1)
}

// PutWithFreq inserts or updates key with an explicit frequency. The combined
// policy uses this to demote LRU entries without losing their access counts.
func (c *LFU[V]) PutWithFreq(key uint64, value V, freq int64) {
	if freq < 1 {
		freq = 1
	}
	if e, ok := c.items[key]; ok {
		e.value = value
		e.freq += freq
		heap.Fix(&c.heap, e.index)
		return
	}
	c.seq++
	e := &lfuEntry[V]{key: key, value: value, freq: freq, seq: c.seq}
	c.items[key] = e
	heap.Push(&c.heap, e)
	for len(c.items) > c.capacity {
		victim := heap.Pop(&c.heap).(*lfuEntry[V])
		delete(c.items, victim.key)
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.value)
		}
	}
}

// Remove deletes key without invoking the eviction callback. It returns the
// removed value, if any.
func (c *LFU[V]) Remove(key uint64) (V, bool) {
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	heap.Remove(&c.heap, e.index)
	delete(c.items, key)
	return e.value, true
}

// Freq returns the current frequency of key (0 if absent).
func (c *LFU[V]) Freq(key uint64) int64 {
	if e, ok := c.items[key]; ok {
		return e.freq
	}
	return 0
}

// Range calls fn for every cached entry until fn returns false.
func (c *LFU[V]) Range(fn func(key uint64, value V) bool) {
	for k, e := range c.items {
		if !fn(k, e.value) {
			return
		}
	}
}
