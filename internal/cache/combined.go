package cache

// Stats summarizes cache effectiveness (the metric plotted in Fig 4c).
type Stats struct {
	// Hits counts Get calls served from either level.
	Hits int64
	// Misses counts Get calls that found nothing.
	Misses int64
	// LRUHits counts hits served by the recency level.
	LRUHits int64
	// LFUHits counts hits served by the frequency level.
	LFUHits int64
	// Demotions counts entries moved from the LRU into the LFU.
	Demotions int64
	// Evictions counts entries that left the combined cache entirely.
	Evictions int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Combined is the paper's two-level eviction policy (Appendix D): a recency
// level (LRU) in front of a frequency level (LFU). Whenever a parameter is
// visited it enters the LRU; entries evicted from the LRU are demoted into
// the LFU; entries evicted from the LFU are handed to the eviction callback
// so the MEM-PS can flush them to the SSD-PS before releasing their memory.
// Working parameters of in-flight batches are pinned in the LRU.
//
// Combined is not safe for concurrent use.
type Combined[V any] struct {
	lru   *LRU[V]
	lfu   *LFU[V]
	stats Stats
	// visitCount tracks per-key access counts while a key lives in the LRU so
	// its frequency is preserved when it is demoted.
	visitCount map[uint64]int64
}

// NewCombined builds a combined cache with the given per-level capacities.
// onEvict receives entries that leave the cache entirely; it may be nil.
func NewCombined[V any](lruCapacity, lfuCapacity int, onEvict EvictFunc[V]) *Combined[V] {
	c := &Combined[V]{visitCount: make(map[uint64]int64)}
	c.lfu = NewLFU[V](lfuCapacity, func(key uint64, value V) {
		c.stats.Evictions++
		if onEvict != nil {
			onEvict(key, value)
		}
	})
	c.lru = NewLRU[V](lruCapacity, func(key uint64, value V) {
		// Demote to the LFU, carrying over the observed access count.
		c.stats.Demotions++
		freq := c.visitCount[key]
		delete(c.visitCount, key)
		c.lfu.PutWithFreq(key, value, freq)
	})
	return c
}

// Len returns the total number of entries across both levels.
func (c *Combined[V]) Len() int { return c.lru.Len() + c.lfu.Len() }

// Stats returns a copy of the accumulated statistics.
func (c *Combined[V]) Stats() Stats { return c.stats }

// ResetStats clears the statistics counters (cache contents are unaffected).
func (c *Combined[V]) ResetStats() { c.stats = Stats{} }

// Get looks the key up in both levels. A hit in the LFU promotes the entry
// back into the LRU (it is recently used again).
func (c *Combined[V]) Get(key uint64) (V, bool) {
	if v, ok := c.lru.Get(key); ok {
		c.stats.Hits++
		c.stats.LRUHits++
		c.visitCount[key]++
		return v, true
	}
	if v, ok := c.lfu.Get(key); ok {
		c.stats.Hits++
		c.stats.LFUHits++
		// Promote back into the recency level.
		freq := c.lfu.Freq(key)
		c.lfu.Remove(key)
		c.visitCount[key] = freq
		c.lru.Put(key, v)
		return v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// GetApply looks the key up in both levels without updating recency, visit
// frequency, or level placement — the read path for applying writes. A push
// always follows the pull that already counted the visit and refreshed the
// entry's recency, so counting it again would double-weight write traffic in
// the eviction policy (and pay two extra map updates per key for it). Hit and
// miss statistics are still recorded.
func (c *Combined[V]) GetApply(key uint64) (V, bool) {
	if v, ok := c.lru.Peek(key); ok {
		c.stats.Hits++
		c.stats.LRUHits++
		return v, true
	}
	if v, ok := c.lfu.Peek(key); ok {
		c.stats.Hits++
		c.stats.LFUHits++
		return v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Contains reports whether either level holds the key, without promoting it.
func (c *Combined[V]) Contains(key uint64) bool {
	return c.lru.Contains(key) || c.lfu.Contains(key)
}

// Put inserts the key into the recency level.
func (c *Combined[V]) Put(key uint64, value V) {
	if c.lfu.Contains(key) {
		c.lfu.Remove(key)
	}
	c.visitCount[key]++
	c.lru.Put(key, value)
}

// Remove deletes the key from whichever level holds it, without invoking the
// eviction callback.
func (c *Combined[V]) Remove(key uint64) (V, bool) {
	delete(c.visitCount, key)
	if v, ok := c.lru.Remove(key); ok {
		return v, true
	}
	return c.lfu.Remove(key)
}

// Pin marks a key in the LRU as unevictable until a matching Unpin; pins
// nest across overlapping batches. It reports whether the key was found in
// the LRU (keys in the LFU cannot be pinned; Get them first to promote
// them).
func (c *Combined[V]) Pin(key uint64) bool { return c.lru.Pin(key) }

// Unpin releases one pin set by Pin.
func (c *Combined[V]) Unpin(key uint64) bool { return c.lru.Unpin(key) }

// Pinned reports whether the key is currently pinned in the LRU.
func (c *Combined[V]) Pinned(key uint64) bool { return c.lru.Pinned(key) }

// Range calls fn for every cached entry across both levels until fn returns
// false. Unlike Flush it does not evict; it is how the replication layer
// enumerates the keys a shard currently holds in memory.
func (c *Combined[V]) Range(fn func(key uint64, value V) bool) {
	cont := true
	c.lru.Range(func(k uint64, v V) bool {
		cont = fn(k, v)
		return cont
	})
	if !cont {
		return
	}
	c.lfu.Range(fn)
}

// Flush evicts every entry from both levels through the eviction callback.
// It is used at shutdown to persist all cached parameters.
func (c *Combined[V]) Flush(onEach func(key uint64, value V)) {
	c.lru.Range(func(k uint64, v V) bool {
		if onEach != nil {
			onEach(k, v)
		}
		return true
	})
	c.lfu.Range(func(k uint64, v V) bool {
		if onEach != nil {
			onEach(k, v)
		}
		return true
	})
	c.lru = NewLRU[V](c.lru.Capacity(), c.lru.onEvict)
	c.lfu = NewLFU[V](c.lfu.Capacity(), c.lfu.onEvict)
	c.visitCount = make(map[uint64]int64)
}
