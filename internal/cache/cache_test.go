package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[int](2, nil)
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatal("Get(1) failed")
	}
	c.Put(3, 30) // evicts 2 (least recently used, since 1 was just touched)
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 should remain")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatal("len/capacity wrong")
	}
}

func TestLRUEvictCallback(t *testing.T) {
	var evicted []uint64
	c := NewLRU[int](1, func(k uint64, v int) { evicted = append(evicted, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
	// Remove must not fire the callback.
	c.Remove(3)
	if len(evicted) != 2 {
		t.Fatal("Remove must not invoke the eviction callback")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[int](2, nil)
	c.Put(1, 1)
	c.Put(1, 100)
	if c.Len() != 1 {
		t.Fatal("updating a key must not grow the cache")
	}
	if v, _ := c.Get(1); v != 100 {
		t.Fatal("update lost")
	}
}

func TestLRUPeekDoesNotPromote(t *testing.T) {
	c := NewLRU[int](2, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Peek(1) // does not promote
	c.Put(3, 3)
	if c.Contains(1) {
		t.Fatal("Peek must not refresh recency; 1 should be evicted")
	}
}

func TestLRUPinPreventsEviction(t *testing.T) {
	var evicted []uint64
	c := NewLRU[int](2, func(k uint64, v int) { evicted = append(evicted, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	if !c.Pin(1) || !c.Pin(2) {
		t.Fatal("Pin should succeed for present keys")
	}
	if c.Pin(99) {
		t.Fatal("Pin of absent key should fail")
	}
	c.Put(3, 3) // over capacity but 1 and 2 are pinned, 3 is newest
	if c.Len() != 3 {
		t.Fatalf("pinned cache should overflow, len = %d", c.Len())
	}
	if c.PinnedLen() != 2 {
		t.Fatalf("pinned = %d", c.PinnedLen())
	}
	// Unpinning should shrink back to capacity, evicting the LRU unpinned.
	c.Unpin(1)
	if c.Len() != 2 {
		t.Fatalf("after unpin len = %d", c.Len())
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
	if c.Unpin(42) {
		t.Fatal("Unpin of absent key should report false")
	}
	// Pins nest: each Pin needs a matching Unpin before the key becomes
	// evictable (overlapping pipelined batches pin shared parameters).
	c.Pin(2) // second pin on top of the original
	if c.PinnedLen() != 1 {
		t.Fatal("nested pin should not change the pinned entry count")
	}
	c.Unpin(2)
	if c.PinnedLen() != 1 || !c.Pinned(2) {
		t.Fatal("one unpin of a doubly-pinned key must keep it pinned")
	}
	c.Unpin(2)
	if c.PinnedLen() != 0 || c.Pinned(2) {
		t.Fatal("matching unpins should release the pin")
	}
	c.Unpin(2)
	if c.PinnedLen() != 0 {
		t.Fatal("extra unpin should not go negative")
	}
}

func TestLRUKeysOrder(t *testing.T) {
	c := NewLRU[int](3, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)
	ks := c.Keys()
	if ks[0] != 1 || ks[1] != 3 || ks[2] != 2 {
		t.Fatalf("Keys order = %v", ks)
	}
}

func TestLRUNeverExceedsCapacityWithoutPins(t *testing.T) {
	f := func(ops []uint64) bool {
		c := NewLRU[uint64](8, nil)
		for _, op := range ops {
			c.Put(op%64, op)
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLFUBasic(t *testing.T) {
	c := NewLFU[int](2, nil)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Get(1)
	c.Get(1) // freq(1)=3, freq(2)=1
	c.Put(3, 30)
	if c.Contains(2) {
		t.Fatal("least frequently used (2) should be evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 should remain")
	}
	if c.Freq(1) != 3 {
		t.Fatalf("freq(1) = %d", c.Freq(1))
	}
	if c.Freq(42) != 0 {
		t.Fatal("absent freq should be 0")
	}
}

func TestLFUEvictCallbackAndTieBreak(t *testing.T) {
	var evicted []uint64
	c := NewLFU[int](2, func(k uint64, v int) { evicted = append(evicted, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3) // all freq 1; oldest (1) evicted first
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestLFUPutWithFreq(t *testing.T) {
	c := NewLFU[int](2, nil)
	c.PutWithFreq(1, 1, 10)
	c.Put(2, 2)
	c.Put(3, 3) // 2 has freq 1, should be evicted before 1
	if !c.Contains(1) {
		t.Fatal("high-frequency entry should survive")
	}
	if c.Contains(2) {
		t.Fatal("low-frequency entry should be evicted")
	}
	// Updating an existing key accumulates frequency.
	c.PutWithFreq(1, 5, 5)
	if c.Freq(1) != 15 {
		t.Fatalf("freq = %d", c.Freq(1))
	}
	// Non-positive frequency clamps to 1.
	c.PutWithFreq(9, 9, -3)
	if c.Freq(9) != 1 {
		t.Fatalf("freq = %d", c.Freq(9))
	}
}

func TestLFURemove(t *testing.T) {
	c := NewLFU[int](4, nil)
	c.Put(1, 1)
	if v, ok := c.Remove(1); !ok || v != 1 {
		t.Fatal("Remove failed")
	}
	if _, ok := c.Remove(1); ok {
		t.Fatal("second Remove should fail")
	}
	if c.Len() != 0 {
		t.Fatal("cache should be empty")
	}
}

func TestLFUCapacityInvariant(t *testing.T) {
	f := func(ops []uint64) bool {
		c := NewLFU[uint64](8, nil)
		for _, op := range ops {
			if op%3 == 0 {
				c.Get(op % 32)
			} else {
				c.Put(op%32, op)
			}
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCombinedDemotionAndPromotion(t *testing.T) {
	var fullyEvicted []uint64
	c := NewCombined[int](2, 2, func(k uint64, v int) { fullyEvicted = append(fullyEvicted, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3) // 1 demoted to LFU
	if c.Len() != 3 {
		t.Fatalf("combined len = %d", c.Len())
	}
	if c.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d", c.Stats().Demotions)
	}
	// 1 is still findable (served by the LFU) and is promoted back.
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatal("demoted entry must still hit")
	}
	if c.Stats().LFUHits != 1 {
		t.Fatalf("lfu hits = %d", c.Stats().LFUHits)
	}
	if len(fullyEvicted) != 0 {
		t.Fatal("nothing should be fully evicted yet")
	}
	// Drive enough inserts to overflow both levels and trigger full eviction.
	for k := uint64(10); k < 20; k++ {
		c.Put(k, int(k))
	}
	if len(fullyEvicted) == 0 {
		t.Fatal("expected full evictions after overflowing both levels")
	}
	if c.Stats().Evictions != int64(len(fullyEvicted)) {
		t.Fatal("eviction counter mismatch")
	}
}

func TestCombinedHitRate(t *testing.T) {
	c := NewCombined[int](4, 4, nil)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Fatal("ResetStats failed")
	}
	var zero Stats
	if zero.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}

func TestCombinedFrequencyCarriedOnDemotion(t *testing.T) {
	c := NewCombined[int](1, 4, nil)
	c.Put(1, 1)
	c.Get(1)
	c.Get(1) // key 1 visited 3 times while in LRU
	c.Put(2, 2)
	c.Put(3, 3)
	c.Put(4, 4)
	c.Put(5, 5) // 1,2,3,4 demoted over time
	// Key 1's high frequency should protect it in the LFU when it overflows.
	if !c.Contains(1) {
		t.Fatal("frequent key should survive in the LFU")
	}
}

func TestCombinedPinning(t *testing.T) {
	c := NewCombined[int](2, 2, nil)
	c.Put(1, 1)
	if !c.Pin(1) {
		t.Fatal("pin should succeed")
	}
	if c.Pin(99) {
		t.Fatal("pin of absent key should fail")
	}
	c.Put(2, 2)
	c.Put(3, 3)
	c.Put(4, 4)
	// 1 is pinned: it must still be in the LRU (not demoted, not evicted).
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatal("pinned key must remain")
	}
	c.Unpin(1)
}

func TestCombinedRemoveAndFlush(t *testing.T) {
	c := NewCombined[int](2, 2, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	if _, ok := c.Remove(1); !ok {
		t.Fatal("Remove should find demoted entry")
	}
	if c.Contains(1) {
		t.Fatal("removed key should be gone")
	}
	var flushed []uint64
	c.Flush(func(k uint64, v int) { flushed = append(flushed, k) })
	if len(flushed) != 2 {
		t.Fatalf("flushed = %v", flushed)
	}
	if c.Len() != 0 {
		t.Fatal("cache should be empty after flush")
	}
	// Still usable after flush.
	c.Put(9, 9)
	if !c.Contains(9) {
		t.Fatal("cache unusable after flush")
	}
}

func TestCombinedPutOnLFUResidentKey(t *testing.T) {
	c := NewCombined[int](1, 4, nil)
	c.Put(1, 1)
	c.Put(2, 2) // 1 demoted
	c.Put(1, 100)
	if c.Len() != 2 {
		t.Fatalf("len = %d; key 1 must not be duplicated across levels", c.Len())
	}
	if v, _ := c.Get(1); v != 100 {
		t.Fatal("Put must update the value")
	}
}

func TestCombinedSkewedWorkloadHitRateExceedsUniform(t *testing.T) {
	// With a skewed (hot-set) workload, the combined cache's hit rate should
	// exceed the same cache under a uniform workload — the property that
	// makes Fig 4(c)'s 46% plateau possible.
	run := func(skewed bool) float64 {
		c := NewCombined[int](256, 256, nil)
		rng := rand.New(rand.NewSource(1))
		zipf := rand.NewZipf(rng, 1.3, 1, 1<<16)
		for i := 0; i < 20000; i++ {
			var k uint64
			if skewed {
				k = zipf.Uint64()
			} else {
				k = rng.Uint64() % (1 << 16)
			}
			if _, ok := c.Get(k); !ok {
				c.Put(k, int(k))
			}
		}
		return c.Stats().HitRate()
	}
	skewedRate := run(true)
	uniformRate := run(false)
	if skewedRate <= uniformRate {
		t.Fatalf("skewed hit rate %v should exceed uniform %v", skewedRate, uniformRate)
	}
	if skewedRate < 0.3 {
		t.Fatalf("skewed hit rate %v unexpectedly low", skewedRate)
	}
}

func TestCombinedTotalEntriesInvariant(t *testing.T) {
	f := func(ops []uint64) bool {
		c := NewCombined[uint64](4, 4, nil)
		for _, op := range ops {
			k := op % 32
			switch op % 3 {
			case 0:
				c.Put(k, op)
			case 1:
				c.Get(k)
			case 2:
				c.Remove(k)
			}
			// Unpinned combined cache can never exceed the two capacities.
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
