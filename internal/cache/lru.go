// Package cache implements the in-memory parameter caching policies used by
// the MEM-PS (Section 5, Appendix D): an LRU cache, an LFU cache, and the
// paper's combined policy in which entries evicted from the LRU are demoted
// into the LFU and entries evicted from the LFU are handed to the caller
// (which flushes them to the SSD-PS before releasing the memory).
//
// Working parameters of the in-flight batches are pinned and are never
// evicted until their batch completes, preserving the pipeline's data
// integrity guarantee.
package cache

import "container/list"

// EvictFunc is called with every entry that leaves a cache through eviction
// (not through Remove).
type EvictFunc[V any] func(key uint64, value V)

type lruEntry[V any] struct {
	key   uint64
	value V
	// pins counts outstanding Pin calls: overlapping pipelined batches may
	// pin the same working parameter, and it stays unevictable until every
	// batch has unpinned it.
	pins int
}

// LRU is a least-recently-used cache keyed by uint64. It is not safe for
// concurrent use; the MEM-PS serializes access behind its own lock.
type LRU[V any] struct {
	capacity int
	onEvict  EvictFunc[V]
	ll       *list.List
	items    map[uint64]*list.Element
	pinned   int
}

// NewLRU creates an LRU cache holding at most capacity entries. onEvict may
// be nil. A capacity <= 0 is treated as 1.
func NewLRU[V any](capacity int, onEvict EvictFunc[V]) *LRU[V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU[V]{
		capacity: capacity,
		onEvict:  onEvict,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

// Len returns the number of cached entries.
func (c *LRU[V]) Len() int { return c.ll.Len() }

// Capacity returns the configured capacity.
func (c *LRU[V]) Capacity() int { return c.capacity }

// PinnedLen returns the number of pinned entries.
func (c *LRU[V]) PinnedLen() int { return c.pinned }

// Get returns the value for key and marks it most recently used.
func (c *LRU[V]) Get(key uint64) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).value, true
	}
	var zero V
	return zero, false
}

// Peek returns the value without updating recency.
func (c *LRU[V]) Peek(key uint64) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[V]).value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without updating recency.
func (c *LRU[V]) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key and marks it most recently used. If the cache
// exceeds its capacity, the least recently used unpinned entry is evicted.
// Pinned entries are never evicted, so the cache may temporarily exceed its
// capacity while many entries are pinned.
func (c *LRU[V]) Put(key uint64, value V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruEntry[V]{key: key, value: value})
	c.items[key] = el
	c.evictOverflow()
}

// evictOverflow evicts unpinned LRU entries while over capacity.
func (c *LRU[V]) evictOverflow() {
	for c.ll.Len() > c.capacity {
		victim := c.oldestUnpinned()
		if victim == nil {
			return // everything pinned; allow overflow
		}
		c.removeElement(victim, true)
	}
}

// oldestUnpinned returns the least recently used unpinned element, never the
// most recently used one: a freshly inserted entry must not be the victim of
// its own insertion when everything older is pinned.
func (c *LRU[V]) oldestUnpinned() *list.Element {
	front := c.ll.Front()
	for el := c.ll.Back(); el != nil && el != front; el = el.Prev() {
		if el.Value.(*lruEntry[V]).pins == 0 {
			return el
		}
	}
	return nil
}

func (c *LRU[V]) removeElement(el *list.Element, evict bool) {
	ent := el.Value.(*lruEntry[V])
	c.ll.Remove(el)
	delete(c.items, ent.key)
	if ent.pins > 0 {
		c.pinned--
	}
	if evict && c.onEvict != nil {
		c.onEvict(ent.key, ent.value)
	}
}

// Remove deletes key without invoking the eviction callback. It returns the
// removed value, if any.
func (c *LRU[V]) Remove(key uint64) (V, bool) {
	if el, ok := c.items[key]; ok {
		v := el.Value.(*lruEntry[V]).value
		c.removeElement(el, false)
		return v, true
	}
	var zero V
	return zero, false
}

// Pin marks key as unevictable until a matching Unpin. Pins nest: a key
// pinned by several in-flight batches stays pinned until all of them unpin
// it. It reports whether the key was present.
func (c *LRU[V]) Pin(key uint64) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	ent := el.Value.(*lruEntry[V])
	ent.pins++
	if ent.pins == 1 {
		c.pinned++
	}
	return true
}

// Pinned reports whether key is present and currently pinned.
func (c *LRU[V]) Pinned(key uint64) bool {
	el, ok := c.items[key]
	return ok && el.Value.(*lruEntry[V]).pins > 0
}

// Unpin releases one pin on key and, once no pins remain, evicts overflow
// the pins were holding back. It reports whether the key was present.
func (c *LRU[V]) Unpin(key uint64) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	ent := el.Value.(*lruEntry[V])
	if ent.pins > 0 {
		ent.pins--
		if ent.pins == 0 {
			c.pinned--
		}
	}
	c.evictOverflow()
	return true
}

// Keys returns the cached keys from most to least recently used.
func (c *LRU[V]) Keys() []uint64 {
	out := make([]uint64, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}

// Range calls fn for every cached entry until fn returns false.
func (c *LRU[V]) Range(fn func(key uint64, value V) bool) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*lruEntry[V])
		if !fn(ent.key, ent.value) {
			return
		}
	}
}
