package reference

import (
	"testing"

	"hps/internal/dataset"
	"hps/internal/keys"
)

func TestDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.EmbeddingDim() != 8 {
		t.Fatalf("default dim = %d", tr.EmbeddingDim())
	}
	if tr.Network() == nil {
		t.Fatal("network nil")
	}
	if tr.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPredictUntrained(t *testing.T) {
	tr := New(Config{EmbeddingDim: 4, Hidden: []int{8}})
	p := tr.Predict([]keys.Key{1, 2, 3})
	if p <= 0 || p >= 1 {
		t.Fatalf("prediction %v out of range", p)
	}
	// Unknown features are skipped, not created.
	if tr.EmbeddingCount() != 0 {
		t.Fatal("Predict must not create embeddings")
	}
}

func TestTrainCreatesEmbeddings(t *testing.T) {
	tr := New(Config{EmbeddingDim: 4, Hidden: []int{8}, Seed: 1})
	ex := dataset.Example{Features: []keys.Key{10, 20, 30}, Label: 1}
	loss := tr.TrainExample(ex)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if tr.EmbeddingCount() != 3 {
		t.Fatalf("embedding count = %d", tr.EmbeddingCount())
	}
	if tr.Examples() != 1 {
		t.Fatal("example counter")
	}
	if tr.NonZeroWeights() <= tr.Network().ParamCount() {
		t.Fatal("non-zero weights should include embeddings")
	}
}

func TestTrainingMovesPredictionTowardLabel(t *testing.T) {
	tr := New(Config{EmbeddingDim: 4, Hidden: []int{16}, Seed: 2, SparseLR: 0.1, DenseLR: 0.05})
	feats := []keys.Key{1, 2, 3, 4}
	before := tr.Predict(feats)
	for i := 0; i < 50; i++ {
		tr.TrainExample(dataset.Example{Features: feats, Label: 1})
	}
	after := tr.Predict(feats)
	if after <= before {
		t.Fatalf("training toward 1 should raise prediction: %v -> %v", before, after)
	}
}

func TestLearnsSyntheticCTRBeatsChance(t *testing.T) {
	cfg := dataset.Config{NumFeatures: 3000, NonZerosPerExample: 15}
	train := dataset.NewGenerator(cfg, 1)
	test := dataset.NewGenerator(cfg, 2)
	tr := New(Config{EmbeddingDim: 8, Hidden: []int{32, 16}, Seed: 3})
	for i := 0; i < 6000; i++ {
		tr.TrainExample(train.NextExample())
	}
	auc := tr.Evaluate(test, 1500)
	if auc < 0.65 {
		t.Fatalf("reference trainer AUC = %v, want > 0.65", auc)
	}
}

func TestTrainBatch(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{NumFeatures: 500, NonZerosPerExample: 5}, 4)
	tr := New(Config{EmbeddingDim: 4, Hidden: []int{8}, Seed: 5})
	b := gen.NextBatch(32)
	loss := tr.TrainBatch(b)
	if loss <= 0 {
		t.Fatalf("batch loss = %v", loss)
	}
	if tr.Examples() != 32 {
		t.Fatal("batch training should count every example")
	}
	var empty dataset.Batch
	if tr.TrainBatch(&empty) != 0 {
		t.Fatal("empty batch loss should be 0")
	}
}
