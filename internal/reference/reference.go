// Package reference implements a plain, single-process CTR trainer: an
// in-memory embedding table feeding the dense network, trained example by
// example with Adagrad.
//
// It serves three roles in the reproduction:
//
//   - the "Baseline DNN" and "Hash+DNN" rows of Tables 1 and 2 (trained on
//     raw or OP+OSRP-hashed features),
//   - the learner inside the MPI-cluster baseline (internal/mpips), whose
//     cost model wraps this trainer,
//   - the accuracy oracle the hierarchical parameter server is compared
//     against in Fig 3(b): both must converge to the same quality.
package reference

import (
	"fmt"

	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/metrics"
	"hps/internal/nn"
	"hps/internal/optimizer"
	"hps/internal/tensor"
)

// Config configures a reference trainer.
type Config struct {
	// EmbeddingDim is the per-feature embedding width.
	EmbeddingDim int
	// Hidden are the dense tower layer widths.
	Hidden []int
	// SparseLR / DenseLR are the Adagrad learning rates (defaults 0.05 / 0.01).
	SparseLR, DenseLR float32
	// Seed seeds parameter initialization.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.EmbeddingDim <= 0 {
		c.EmbeddingDim = 8
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32}
	}
	if c.SparseLR <= 0 {
		c.SparseLR = 0.05
	}
	if c.DenseLR <= 0 {
		c.DenseLR = 0.01
	}
	return c
}

// Trainer is a single-process CTR model. It is not safe for concurrent use.
type Trainer struct {
	cfg        Config
	table      *embedding.Table
	net        *nn.Network
	denseState *nn.DenseState
	sparseOpt  optimizer.Sparse
	denseOpt   optimizer.Dense
	acts       *nn.Activations
	grads      *nn.Gradients
	examples   int64
}

// New constructs a trainer.
func New(cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	net := nn.New(nn.Config{InputDim: cfg.EmbeddingDim, Hidden: cfg.Hidden, Seed: cfg.Seed})
	denseOpt := optimizer.Adagrad{LR: cfg.DenseLR, InitialAccumulator: 0.1}
	t := &Trainer{
		cfg:        cfg,
		table:      embedding.NewTable(cfg.EmbeddingDim),
		net:        net,
		denseState: net.NewDenseState(denseOpt),
		sparseOpt:  optimizer.Adagrad{LR: cfg.SparseLR, InitialAccumulator: 0.1},
		denseOpt:   denseOpt,
		acts:       net.NewActivations(),
		grads:      net.NewGradients(),
	}
	return t
}

// EmbeddingDim returns the embedding width.
func (t *Trainer) EmbeddingDim() int { return t.cfg.EmbeddingDim }

// Network returns the dense tower (for parameter counting).
func (t *Trainer) Network() *nn.Network { return t.net }

// Embeddings exposes the in-memory sparse parameter table. The MPI baseline
// serves its ps.Tier facade from it, and evaluation tools inspect it.
func (t *Trainer) Embeddings() *embedding.Table { return t.table }

// Examples returns the number of training examples seen.
func (t *Trainer) Examples() int64 { return t.examples }

// EmbeddingCount returns the number of distinct sparse parameters
// materialized so far (the "# Nonzero Weights" of Tables 1-2 counts each
// embedding element; see NonZeroWeights).
func (t *Trainer) EmbeddingCount() int { return t.table.Len() }

// NonZeroWeights returns the number of individual non-zero model weights:
// embedding elements plus dense parameters.
func (t *Trainer) NonZeroWeights() int64 {
	var nz int64
	t.table.Range(func(_ uint64, v *embedding.Value) bool {
		for _, w := range v.Weights {
			if w != 0 {
				nz++
			}
		}
		return true
	})
	return nz + t.net.ParamCount()
}

// lookup returns (creating if needed) the embedding value for a feature.
func (t *Trainer) lookup(k keys.Key) *embedding.Value {
	if v := t.table.Get(uint64(k)); v != nil {
		return v
	}
	v := embedding.NewKeyedValue(t.cfg.EmbeddingDim, t.cfg.Seed, uint64(k))
	t.table.Put(uint64(k), v)
	return v
}

// Predict returns the click probability for a feature set without training.
func (t *Trainer) Predict(features []keys.Key) float32 {
	vecs := make([][]float32, 0, len(features))
	for _, k := range features {
		if v := t.table.Get(uint64(k)); v != nil {
			vecs = append(vecs, v.Weights)
		}
	}
	nn.PoolSum(t.acts.Input(), vecs)
	return t.net.Forward(t.acts)
}

// TrainExample performs one SGD step and returns the example's log-loss
// before the update.
func (t *Trainer) TrainExample(ex dataset.Example) float64 {
	values := make([]*embedding.Value, len(ex.Features))
	vecs := make([][]float32, len(ex.Features))
	for i, k := range ex.Features {
		values[i] = t.lookup(k)
		vecs[i] = values[i].Weights
	}
	nn.PoolSum(t.acts.Input(), vecs)
	pred := t.net.Forward(t.acts)
	loss := tensor.LogLoss(pred, ex.Label)

	t.grads.Zero()
	inputGrad := t.net.Backward(t.acts, pred, ex.Label, t.grads)
	t.net.Apply(t.denseOpt, t.denseState, t.grads)
	// With sum pooling every referenced feature receives the input gradient.
	for _, v := range values {
		t.sparseOpt.ApplySparse(v.Weights, v.G2Sum, inputGrad)
		v.Freq++
	}
	t.examples++
	return loss
}

// TrainBatch trains on every example of a batch and returns the mean loss.
func (t *Trainer) TrainBatch(b *dataset.Batch) float64 {
	if b.Len() == 0 {
		return 0
	}
	var sum float64
	for _, ex := range b.Examples {
		sum += t.TrainExample(ex)
	}
	return sum / float64(b.Len())
}

// Evaluate computes the AUC of the current model over n fresh examples drawn
// from gen.
func (t *Trainer) Evaluate(gen *dataset.Generator, n int) float64 {
	scores := make([]float64, 0, n)
	labels := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ex := gen.NextExample()
		scores = append(scores, float64(t.Predict(ex.Features)))
		labels = append(labels, float64(ex.Label))
	}
	return metrics.AUC(scores, labels)
}

// String implements fmt.Stringer.
func (t *Trainer) String() string {
	return fmt.Sprintf("reference.Trainer{dim=%d embeddings=%d examples=%d}",
		t.cfg.EmbeddingDim, t.table.Len(), t.examples)
}
