package ps

import (
	"math/rand"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
)

func testBlock(t *testing.T, dim, n int) *ValueBlock {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(dim*1000 + n)))
	ks := make([]keys.Key, n)
	for i := range ks {
		ks[i] = keys.Key(keys.Mix64(uint64(i)))
	}
	b := NewValueBlock(dim)
	b.Reset(dim, ks)
	for i := range ks {
		if i%3 == 2 {
			continue // leave some rows absent
		}
		v := embedding.NewRandomValue(dim, rng)
		v.Freq = uint32(i * 7)
		b.Set(i, v)
	}
	return b
}

func TestBlockRowsAndValues(t *testing.T) {
	b := testBlock(t, 8, 9)
	if b.Len() != 9 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.PresentCount(); got != 6 {
		t.Fatalf("PresentCount = %d, want 6", got)
	}
	v := b.Value(0)
	if v == nil || v.Dim() != 8 || v.Weights[0] != b.WeightsRow(0)[0] {
		t.Fatalf("Value(0) = %+v", v)
	}
	v.Weights[0] = 99
	if b.WeightsRow(0)[0] == 99 {
		t.Fatal("Value must copy, not alias")
	}
	if b.Value(2) != nil {
		t.Fatal("absent row must read as nil value")
	}
	// Rows must not be able to append into their neighbours.
	row := b.WeightsRow(0)
	row = append(row, 42)
	if b.WeightsRow(1)[0] == 42 {
		t.Fatal("row capacity bleeds into the next row")
	}
}

func TestBlockAppendGrowTruncate(t *testing.T) {
	b := NewValueBlock(4)
	b.Reset(4, nil)
	b.Grow(3)
	wCap, gCap := cap(b.Weights), cap(b.G2Sum)
	if wCap < 12 || gCap < 12 {
		t.Fatalf("Grow(3) capacity = %d/%d, want >= 12", wCap, gCap)
	}

	w := []float32{1, 2, 3, 4}
	g := []float32{5, 6, 7, 8}
	b.AppendRow(10, w, g, 3)
	if b.Len() != 1 || !b.Present[0] || b.Freq[0] != 3 || b.WeightsRow(0)[2] != 3 || b.G2Row(0)[3] != 8 {
		t.Fatalf("AppendRow row = keys %v present %v freq %v w %v g %v",
			b.Keys, b.Present, b.Freq, b.Weights, b.G2Sum)
	}

	// GrowRow appends a zeroed present row; TruncateLast withdraws it, and a
	// re-grown row must come back zeroed even though the storage is reused.
	i := b.GrowRow(11)
	b.WeightsRow(i)[0] = 42
	b.TruncateLast()
	if b.Len() != 1 {
		t.Fatalf("Len after TruncateLast = %d", b.Len())
	}
	i = b.GrowRow(12)
	if b.Keys[i] != 12 || !b.Present[i] || b.WeightsRow(i)[0] != 0 {
		t.Fatalf("re-grown row = key %v present %v w %v", b.Keys[i], b.Present[i], b.WeightsRow(i))
	}
	// GrowRowUninit rows carry no zero guarantee; once fully written they
	// read back like any other row.
	i = b.GrowRowUninit(13)
	for j := range b.WeightsRow(i) {
		b.WeightsRow(i)[j] = float32(j)
		b.G2Row(i)[j] = float32(-j)
	}
	b.Freq[i] = 9
	if b.Keys[i] != 13 || !b.Present[i] || b.WeightsRow(i)[3] != 3 || b.G2Row(i)[3] != -3 {
		t.Fatalf("uninit-grown row reads back wrong: %v / %v", b.WeightsRow(i), b.G2Row(i))
	}
	b.TruncateLast()

	// Growth within pre-sized capacity must not reallocate the slabs.
	if cap(b.Weights) != wCap || cap(b.G2Sum) != gCap {
		t.Fatalf("append within Grow capacity reallocated: %d/%d -> %d/%d",
			wCap, gCap, cap(b.Weights), cap(b.G2Sum))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected AppendRow dim-mismatch panic")
		}
	}()
	b.AppendRow(13, []float32{1}, []float32{2}, 0)
}

func TestWireRowHelpersMatchAppendWire(t *testing.T) {
	b := testBlock(t, 6, 7)
	want := b.AppendWire(nil)
	got := AppendWireHeader(nil, b.Dim, b.Len())
	for i := range b.Keys {
		got = AppendWireRow(got, b.Present[i], b.Freq[i], b.WeightsRow(i), b.G2Row(i))
	}
	if len(got) != len(want) || len(got) != WireSizeFor(b.Dim, b.Len()) {
		t.Fatalf("sizes disagree: helpers %d, AppendWire %d, WireSizeFor %d",
			len(got), len(want), WireSizeFor(b.Dim, b.Len()))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d differs: %d != %d", i, got[i], want[i])
		}
	}
	// And the helper-built body decodes back to the same block.
	dec := NewValueBlock(0)
	if err := dec.DecodeWire(b.Keys, got); err != nil {
		t.Fatal(err)
	}
	for i := range b.Keys {
		if dec.Present[i] != b.Present[i] || dec.Freq[i] != b.Freq[i] {
			t.Fatalf("row %d metadata differs", i)
		}
	}
}

func TestBlockSetDimMismatchPanics(t *testing.T) {
	b := NewValueBlock(4)
	b.Reset(4, []keys.Key{1})
	defer func() {
		if recover() == nil {
			t.Fatal("Set with a mismatched dim must panic")
		}
	}()
	b.Set(0, embedding.NewValue(3))
}

func TestBlockResetReusesStorage(t *testing.T) {
	b := testBlock(t, 8, 16)
	w0 := &b.Weights[0]
	b.Reset(8, b.Keys[:8])
	if &b.Weights[0] != w0 {
		t.Fatal("Reset reallocated a slab that still fit")
	}
	for i := range b.Keys {
		if b.Present[i] || b.Freq[i] != 0 || b.WeightsRow(i)[0] != 0 {
			t.Fatalf("row %d not cleared by Reset", i)
		}
	}
}

func TestBlockWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 9} {
		src := testBlock(t, 6, n)
		payload := src.AppendWire(nil)
		if len(payload) != src.WireSize() {
			t.Fatalf("n=%d: encoded %d bytes, WireSize says %d", n, len(payload), src.WireSize())
		}
		dst := NewValueBlock(0)
		if err := dst.DecodeWire(src.Keys, payload); err != nil {
			t.Fatalf("n=%d: DecodeWire: %v", n, err)
		}
		if dst.Dim != src.Dim || dst.Len() != src.Len() {
			t.Fatalf("n=%d: decoded shape %dx%d, want %dx%d", n, dst.Len(), dst.Dim, src.Len(), src.Dim)
		}
		for i := range src.Keys {
			if dst.Present[i] != src.Present[i] || dst.Freq[i] != src.Freq[i] {
				t.Fatalf("n=%d row %d: present/freq mismatch", n, i)
			}
			for j := 0; j < src.Dim; j++ {
				if dst.WeightsRow(i)[j] != src.WeightsRow(i)[j] || dst.G2Row(i)[j] != src.G2Row(i)[j] {
					t.Fatalf("n=%d row %d element %d mismatch", n, i, j)
				}
			}
		}
	}
}

func TestBlockDecodeWireRejectsHostilePayloads(t *testing.T) {
	src := testBlock(t, 4, 3)
	good := src.AppendWire(nil)
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:len(good)-1],
		"long":      append(append([]byte(nil), good...), 0),
		"truncated": good[:9],
	}
	for name, payload := range cases {
		dst := NewValueBlock(0)
		if err := dst.DecodeWire(src.Keys, payload); err == nil {
			t.Fatalf("%s payload decoded without error", name)
		}
	}
	// A count that disagrees with the key slice must be rejected.
	dst := NewValueBlock(0)
	if err := dst.DecodeWire(src.Keys[:2], good); err == nil {
		t.Fatal("row count / key count mismatch decoded without error")
	}
	// A huge declared dimension must be rejected before any allocation.
	huge := append([]byte(nil), good...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if err := dst.DecodeWire(src.Keys, huge); err == nil {
		t.Fatal("absurd dimension decoded without error")
	}
}

func TestBlockDeltasAndFill(t *testing.T) {
	src := testBlock(t, 5, 6)
	deltas := src.Deltas()
	if len(deltas) != src.PresentCount() {
		t.Fatalf("Deltas has %d entries, want %d", len(deltas), src.PresentCount())
	}
	dst := NewValueBlock(5)
	dst.Reset(5, src.Keys)
	dst.FillFromResult(Result(deltas))
	for i := range src.Keys {
		if dst.Present[i] != src.Present[i] {
			t.Fatalf("row %d present mismatch after fill", i)
		}
		if src.Present[i] && dst.WeightsRow(i)[0] != src.WeightsRow(i)[0] {
			t.Fatalf("row %d weight mismatch after fill", i)
		}
	}
}

func TestBlockScatterDropsUnrequestedKeys(t *testing.T) {
	dst := NewValueBlock(3)
	dst.Reset(3, []keys.Key{10, 20, 30}) // sorted, as assembled working sets are
	mk := func(w float32) *embedding.Value {
		v := embedding.NewValue(3)
		v.Weights[0] = w
		return v
	}
	// A peer answering keys it was never asked for — below, between, and
	// beyond the requested range — must not corrupt (or crash on) other rows.
	sub := NewValueBlock(3)
	sub.Reset(3, []keys.Key{5, 20, 99})
	sub.Set(0, mk(1))
	sub.Set(1, mk(2))
	sub.Set(2, mk(3))
	dst.ScatterRows(sub)
	if dst.PresentCount() != 1 || !dst.Present[1] || dst.WeightsRow(1)[0] != 2 {
		t.Fatalf("scatter applied wrong rows: %+v", dst)
	}
	dst.ScatterResult(Result{25: mk(7), 1 << 60: mk(8), 30: mk(9), 10: nil})
	if dst.PresentCount() != 2 || !dst.Present[2] || dst.WeightsRow(2)[0] != 9 {
		t.Fatalf("result scatter applied wrong rows: %+v", dst)
	}
	if dst.Present[0] {
		t.Fatal("nil value materialized a row")
	}
}

func TestBlockCopyFrom(t *testing.T) {
	src := testBlock(t, 4, 5)
	dst := NewValueBlock(0)
	dst.CopyFrom(src)
	src.WeightsRow(0)[0] += 1
	if dst.WeightsRow(0)[0] == src.WeightsRow(0)[0] {
		t.Fatal("CopyFrom must deep-copy the slabs")
	}
	if dst.Dim != src.Dim || dst.Len() != src.Len() {
		t.Fatal("CopyFrom shape mismatch")
	}
}

func TestBlockPool(t *testing.T) {
	ks := []keys.Key{3, 1, 2}
	b := GetBlock(7, ks)
	if b.Dim != 7 || b.Len() != 3 || b.PresentCount() != 0 {
		t.Fatalf("GetBlock returned a dirty block: %+v", b)
	}
	b.Set(1, embedding.NewValue(7))
	PutBlock(b)
	again := GetBlock(7, ks)
	if again.PresentCount() != 0 {
		t.Fatal("pooled block not reset on reuse")
	}
	PutBlock(again)
	PutBlock(nil) // must not panic
}

// adapterTier is a map-only tier: the PullInto/PushBlock package adapters
// must bridge it into the block world.
type adapterTier struct {
	Recorder
	vals map[keys.Key]*embedding.Value
}

func (a *adapterTier) Name() string { return "adapter" }
func (a *adapterTier) Pull(req PullRequest) (Result, error) {
	out := ServePull(req.Keys, func(k keys.Key) (*embedding.Value, bool) {
		v, ok := a.vals[k]
		return v, ok
	})
	a.RecordPull(len(out), 0)
	return out, nil
}
func (a *adapterTier) Push(req PushRequest) error {
	n := ApplyDeltas(req.Deltas, func(k keys.Key, delta *embedding.Value) bool {
		if v, ok := a.vals[k]; ok {
			v.Add(delta)
		} else {
			a.vals[k] = delta.Clone()
		}
		return true
	})
	a.RecordPush(n, 0)
	return nil
}
func (a *adapterTier) Evict([]keys.Key) (int, error) { return 0, nil }

func TestAdaptersBridgeMapOnlyTiers(t *testing.T) {
	tier := &adapterTier{vals: map[keys.Key]*embedding.Value{}}
	v := embedding.NewValue(3)
	v.Weights[0] = 2.5
	tier.vals[10] = v

	// Adapter pull with an unshaped destination block infers the dimension.
	blk := NewValueBlock(0)
	if err := PullInto(tier, PullRequest{Shard: NoShard, Keys: []keys.Key{10, 11}}, blk); err != nil {
		t.Fatal(err)
	}
	if blk.Dim != 3 || !blk.Present[0] || blk.Present[1] || blk.WeightsRow(0)[0] != 2.5 {
		t.Fatalf("adapter pull block = %+v", blk)
	}

	// Adapter push must hand the tier values it can safely retain.
	push := NewValueBlock(3)
	push.Reset(3, []keys.Key{10, 12})
	d := embedding.NewValue(3)
	d.Weights[0] = 1
	push.Set(0, d)
	push.Set(1, d)
	if err := PushBlock(tier, PushBlockRequest{Shard: NoShard, Block: push}); err != nil {
		t.Fatal(err)
	}
	if tier.vals[10].Weights[0] != 3.5 {
		t.Fatalf("delta not merged: %v", tier.vals[10].Weights)
	}
	push.WeightsRow(1)[0] = 77 // mutate the block after the push
	if tier.vals[12].Weights[0] != 1 {
		t.Fatal("tier retained an aliased block row")
	}
}
