package ps

import (
	"testing"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
)

func TestRecorder(t *testing.T) {
	var r Recorder
	r.RecordPull(10, time.Millisecond)
	r.RecordPull(5, time.Millisecond)
	r.RecordPush(7, 2*time.Millisecond)
	r.RecordEvict(3)
	s := r.TierStats()
	if s.Pulls != 2 || s.KeysPulled != 15 || s.PullTime != 2*time.Millisecond {
		t.Fatalf("pull stats = %+v", s)
	}
	if s.Pushes != 1 || s.KeysPushed != 7 || s.PushTime != 2*time.Millisecond {
		t.Fatalf("push stats = %+v", s)
	}
	if s.Evictions != 1 || s.KeysEvicted != 3 {
		t.Fatalf("evict stats = %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Pulls: 1, KeysPulled: 2, PullTime: time.Second}
	b := Stats{Pulls: 3, Pushes: 4, KeysPushed: 5, PushTime: time.Minute}
	c := a.Add(b)
	if c.Pulls != 4 || c.KeysPulled != 2 || c.Pushes != 4 || c.KeysPushed != 5 {
		t.Fatalf("sum = %+v", c)
	}
	if c.PullTime != time.Second || c.PushTime != time.Minute {
		t.Fatalf("sum times = %+v", c)
	}
}

func TestServePull(t *testing.T) {
	store := map[keys.Key]*embedding.Value{
		1: embedding.NewValue(4),
		2: embedding.NewValue(4),
	}
	store[1].Weights[0] = 42
	res := ServePull([]keys.Key{1, 2, 3}, func(k keys.Key) (*embedding.Value, bool) {
		v, ok := store[k]
		return v, ok
	})
	if len(res) != 2 {
		t.Fatalf("got %d values, want 2 (missing key absent)", len(res))
	}
	if res[1].Weights[0] != 42 {
		t.Fatal("value not carried over")
	}
	// The result must hold copies, not aliases.
	res[1].Weights[0] = 7
	if store[1].Weights[0] != 42 {
		t.Fatal("ServePull aliased the stored value")
	}
}

func TestApplyDeltas(t *testing.T) {
	deltas := map[keys.Key]*embedding.Value{
		5: embedding.NewValue(2),
		3: embedding.NewValue(2),
		9: embedding.NewValue(2),
	}
	var order []keys.Key
	n := ApplyDeltas(deltas, func(k keys.Key, delta *embedding.Value) bool {
		order = append(order, k)
		return k != 9
	})
	if n != 2 {
		t.Fatalf("applied = %d, want 2", n)
	}
	want := []keys.Key{3, 5, 9}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("apply order = %v, want %v", order, want)
		}
	}
}

// fakeTier exercises CollectStats without pulling in a real tier package.
type fakeTier struct {
	Recorder
	name string
}

func (f *fakeTier) Name() string                     { return f.name }
func (f *fakeTier) Pull(PullRequest) (Result, error) { return nil, nil }
func (f *fakeTier) Push(PushRequest) error           { return nil }
func (f *fakeTier) Evict([]keys.Key) (int, error)    { return 0, nil }

func TestCollectStats(t *testing.T) {
	a := &fakeTier{name: "a"}
	b := &fakeTier{name: "b"}
	a.RecordPull(1, 0)
	var _ Tier = a
	infos := CollectStats(a, nil, b)
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[0].Stats.Pulls != 1 {
		t.Fatal("stats not collected")
	}
}
