package ps

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/tensor"
)

// ValueBlock is the flat, reusable representation of a batch of embedding
// values: one row per key, in request-key order, backed by two contiguous
// float slabs instead of a map of per-key allocations. It is the unit of the
// batched hot path — PullInto fills one block per mini-batch, the trainer
// indexes examples' features by row offset into it, and PushBlock carries the
// accumulated per-key deltas back — so the steady state moves O(unique keys
// per batch) flat rows instead of O(examples x features) map entries.
//
// Blocks are plain buffers, not thread-safe; reuse them through GetBlock /
// PutBlock so steady-state batches allocate nothing.
type ValueBlock struct {
	// Dim is the embedding dimension of every row.
	Dim int
	// Keys are the row keys, in the order rows are laid out.
	Keys []keys.Key
	// Weights and G2Sum hold len(Keys) rows of Dim float32s each; row i spans
	// [i*Dim, (i+1)*Dim).
	Weights []float32
	G2Sum   []float32
	// Freq holds the per-row reference counts (or count deltas, for pushes).
	Freq []uint32
	// Present marks the rows the serving tier actually holds. Pull adapters
	// leave missing keys absent (zero row, Present false); push paths skip
	// rows with Present false, which lets callers mask a reused block.
	Present []bool
}

// NewValueBlock returns an empty block for embeddings of the given dimension.
func NewValueBlock(dim int) *ValueBlock { return &ValueBlock{Dim: dim} }

// Len returns the number of rows.
func (b *ValueBlock) Len() int { return len(b.Keys) }

// Reset re-shapes the block for the given dimension and key set, reusing the
// underlying storage. All rows come back zeroed and absent; ks is copied, so
// the caller keeps ownership of its slice.
func (b *ValueBlock) Reset(dim int, ks []keys.Key) {
	if dim < 0 {
		dim = 0
	}
	b.Dim = dim
	n := len(ks)
	b.Keys = append(b.Keys[:0], ks...)
	flat := n * dim
	b.Weights = growFloats(b.Weights, flat)
	b.G2Sum = growFloats(b.G2Sum, flat)
	if cap(b.Freq) < n {
		b.Freq = make([]uint32, n)
	} else {
		b.Freq = b.Freq[:n]
		for i := range b.Freq {
			b.Freq[i] = 0
		}
	}
	if cap(b.Present) < n {
		b.Present = make([]bool, n)
	} else {
		b.Present = b.Present[:n]
		for i := range b.Present {
			b.Present[i] = false
		}
	}
}

func growFloats(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Grow ensures the block's backing storage can hold rows additional rows
// without reallocating — the pre-sizing step of the append-style builders
// (delta collection, slab merges), which then run allocation-free.
func (b *ValueBlock) Grow(rows int) {
	if rows <= 0 {
		return
	}
	b.Keys = slices.Grow(b.Keys, rows)
	flat := rows * b.Dim
	b.Weights = slices.Grow(b.Weights, flat)
	b.G2Sum = slices.Grow(b.G2Sum, flat)
	b.Freq = slices.Grow(b.Freq, rows)
	b.Present = slices.Grow(b.Present, rows)
}

// GrowRow appends a zeroed, present row for k and returns its index. Together
// with TruncateLast it is the speculative-append primitive of the fused
// delta-collection loop: grow a row, compute the delta straight into it, and
// withdraw it if the delta turned out to be zero.
func (b *ValueBlock) GrowRow(k keys.Key) int {
	i := len(b.Keys)
	b.Keys = append(b.Keys, k)
	b.Weights = appendZeros(b.Weights, b.Dim)
	b.G2Sum = appendZeros(b.G2Sum, b.Dim)
	b.Freq = append(b.Freq, 0)
	b.Present = append(b.Present, true)
	return i
}

func appendZeros(s []float32, n int) []float32 {
	l := len(s)
	s = slices.Grow(s, n)[:l+n]
	for i := l; i < l+n; i++ {
		s[i] = 0
	}
	return s
}

// GrowRowUninit is GrowRow without zero-filling the new row's slabs — they
// may hold stale data from rows truncated earlier. The caller must either
// overwrite every element of the weight and accumulator rows or TruncateLast
// the row before anything can observe it. The fused delta-collection loop
// uses it (its kernel writes every element anyway); builders that rely on
// zeroed rows, like the slab merges, use GrowRow.
func (b *ValueBlock) GrowRowUninit(k keys.Key) int {
	i := len(b.Keys)
	b.Keys = append(b.Keys, k)
	b.Weights = slices.Grow(b.Weights, b.Dim)[:len(b.Weights)+b.Dim]
	b.G2Sum = slices.Grow(b.G2Sum, b.Dim)[:len(b.G2Sum)+b.Dim]
	b.Freq = append(b.Freq, 0)
	b.Present = append(b.Present, true)
	return i
}

// TruncateLast removes the block's last row (storage is retained).
func (b *ValueBlock) TruncateLast() {
	n := len(b.Keys) - 1
	if n < 0 {
		return
	}
	b.Keys = b.Keys[:n]
	b.Weights = b.Weights[:n*b.Dim]
	b.G2Sum = b.G2Sum[:n*b.Dim]
	b.Freq = b.Freq[:n]
	b.Present = b.Present[:n]
}

// AppendRow appends a present row for k with the given weight/accumulator
// rows and frequency — the flat-slab counterpart of Set for append-style
// builders. It panics on dimension mismatch. The copies cover the whole row,
// so the growth can skip zero-filling.
func (b *ValueBlock) AppendRow(k keys.Key, w, g2 []float32, freq uint32) {
	if len(w) != b.Dim || len(g2) != b.Dim {
		panic(fmt.Sprintf("ps: ValueBlock.AppendRow dim mismatch: row %d/%d into block of dim %d",
			len(w), len(g2), b.Dim))
	}
	i := b.GrowRowUninit(k)
	copy(b.WeightsRow(i), w)
	copy(b.G2Row(i), g2)
	b.Freq[i] = freq
}

// AppendRows appends rows [lo, hi) of src slab-wise — the bulk counterpart of
// AppendRow for sorted-merge builders, turning a run of rows into four slab
// copies instead of per-row bookkeeping. It panics on dimension mismatch.
func (b *ValueBlock) AppendRows(src *ValueBlock, lo, hi int) {
	if src.Dim != b.Dim {
		panic(fmt.Sprintf("ps: ValueBlock.AppendRows dim mismatch: %d into %d", src.Dim, b.Dim))
	}
	if hi <= lo {
		return
	}
	b.Keys = append(b.Keys, src.Keys[lo:hi]...)
	b.Weights = append(b.Weights, src.Weights[lo*src.Dim:hi*src.Dim]...)
	b.G2Sum = append(b.G2Sum, src.G2Sum[lo*src.Dim:hi*src.Dim]...)
	b.Freq = append(b.Freq, src.Freq[lo:hi]...)
	b.Present = append(b.Present, src.Present[lo:hi]...)
}

// WeightsRow returns row i of the weight slab. The full-slice expression pins
// the row's capacity so appends by the caller cannot bleed into row i+1.
func (b *ValueBlock) WeightsRow(i int) []float32 {
	return b.Weights[i*b.Dim : (i+1)*b.Dim : (i+1)*b.Dim]
}

// G2Row returns row i of the Adagrad-accumulator slab.
func (b *ValueBlock) G2Row(i int) []float32 {
	return b.G2Sum[i*b.Dim : (i+1)*b.Dim : (i+1)*b.Dim]
}

// Set copies v into row i and marks it present. It panics on dimension
// mismatch — a block never silently truncates a value.
func (b *ValueBlock) Set(i int, v *embedding.Value) {
	if v.Dim() != b.Dim || len(v.G2Sum) != b.Dim {
		panic(fmt.Sprintf("ps: ValueBlock.Set dim mismatch: value %d/%d into block of dim %d",
			v.Dim(), len(v.G2Sum), b.Dim))
	}
	copy(b.WeightsRow(i), v.Weights)
	copy(b.G2Row(i), v.G2Sum)
	b.Freq[i] = v.Freq
	b.Present[i] = true
}

// Value returns a freshly allocated copy of row i, or nil if the row is
// absent. It is the bridge back to the map-based representation.
func (b *ValueBlock) Value(i int) *embedding.Value {
	if !b.Present[i] {
		return nil
	}
	v := embedding.NewValue(b.Dim)
	copy(v.Weights, b.WeightsRow(i))
	copy(v.G2Sum, b.G2Row(i))
	v.Freq = b.Freq[i]
	return v
}

// CopyFrom makes b an exact copy of o (used to snapshot a pulled block before
// training mutates it in place).
func (b *ValueBlock) CopyFrom(o *ValueBlock) {
	b.Reset(o.Dim, o.Keys)
	copy(b.Weights, o.Weights)
	copy(b.G2Sum, o.G2Sum)
	copy(b.Freq, o.Freq)
	copy(b.Present, o.Present)
}

// Deltas converts the block's present rows into the map form map-based tiers
// consume. The values are freshly allocated — tiers are allowed to retain
// what Push hands them.
func (b *ValueBlock) Deltas() map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, len(b.Keys))
	for i, k := range b.Keys {
		if v := b.Value(i); v != nil {
			out[k] = v
		}
	}
	return out
}

// FillFromResult scatters a map-based pull result into the block's rows
// (request-key order is b.Keys). Keys absent from res stay absent.
func (b *ValueBlock) FillFromResult(res Result) {
	for i, k := range b.Keys {
		if v, ok := res[k]; ok && v != nil {
			b.Set(i, v)
		}
	}
}

// Row returns the row of k in b, whose Keys must be sorted (the batched
// pull paths always assemble into sorted unique-key blocks). The second
// result reports whether k is actually a row of b.
func (b *ValueBlock) Row(k keys.Key) (int, bool) {
	i := sort.Search(len(b.Keys), func(i int) bool { return b.Keys[i] >= k })
	return i, i < len(b.Keys) && b.Keys[i] == k
}

// ScatterRows copies sub's present rows into the rows of b holding the same
// keys. b.Keys must be sorted. Rows for keys b did not ask for are dropped —
// a buggy or hostile peer answering a partition pull must not be able to
// corrupt unrelated rows.
func (b *ValueBlock) ScatterRows(sub *ValueBlock) {
	for j, k := range sub.Keys {
		if !sub.Present[j] {
			continue
		}
		i, ok := b.Row(k)
		if !ok {
			continue
		}
		copy(b.WeightsRow(i), sub.WeightsRow(j))
		copy(b.G2Row(i), sub.G2Row(j))
		b.Freq[i] = sub.Freq[j]
		b.Present[i] = true
	}
}

// ScatterResult is ScatterRows over a map-based pull result, with the same
// sorted-keys requirement and unknown-key containment.
func (b *ValueBlock) ScatterResult(res Result) {
	for k, v := range res {
		if v == nil {
			continue
		}
		if i, ok := b.Row(k); ok {
			b.Set(i, v)
		}
	}
}

// PresentCount returns the number of present rows.
func (b *ValueBlock) PresentCount() int {
	n := 0
	for _, p := range b.Present {
		if p {
			n++
		}
	}
	return n
}

// Wire layout of a block body (keys travel separately, in the enclosing
// request): an 8-byte header of dimension, precision and row count, then per
// row one present byte, the 4-byte frequency, and the two float rows in the
// header's precision. Encoding is a single append pass — no per-value
// reflection — which is what lets the cluster transport carry a whole batch
// in one flat frame.
const wireRowOverhead = 5 // present byte + uint32 freq

// Precision selects the wire encoding of a block body's float rows. It
// travels in the header's high dimension byte, so the decoder never guesses:
// a body is self-describing, and PrecisionFP32 bodies are byte-identical to
// the pre-precision wire format.
type Precision uint8

const (
	// PrecisionFP32 sends full float32 rows — bit-exact, the default, and
	// the only mode the bit-exactness gates (remote-vs-local parity) accept.
	PrecisionFP32 Precision = iota
	// PrecisionFP16 sends IEEE-754 binary16 rows (half the row bytes);
	// values round to nearest even on encode.
	PrecisionFP16
	// PrecisionInt8 sends symmetric int8 rows under two per-row float32
	// scales (weights and accumulators separately) — a quarter of the row
	// bytes plus 8 bytes per row.
	PrecisionInt8

	precisionCount
)

// Valid reports whether p is a defined precision mode.
func (p Precision) Valid() bool { return p < precisionCount }

// String returns the flag spelling of p.
func (p Precision) String() string {
	switch p {
	case PrecisionFP32:
		return "fp32"
	case PrecisionFP16:
		return "fp16"
	case PrecisionInt8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", uint8(p))
}

// ParsePrecision parses the flag/config spelling of a precision mode. The
// empty string is PrecisionFP32.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "fp32":
		return PrecisionFP32, nil
	case "fp16":
		return PrecisionFP16, nil
	case "int8":
		return PrecisionInt8, nil
	}
	return 0, fmt.Errorf("ps: unknown wire precision %q (want fp32, fp16 or int8)", s)
}

// RowBytes returns the encoded size of one row of the given dimension.
func (p Precision) RowBytes(dim int) int {
	switch p {
	case PrecisionFP16:
		return wireRowOverhead + 4*dim
	case PrecisionInt8:
		return wireRowOverhead + 8 + 2*dim
	}
	return wireRowOverhead + 8*dim
}

// WireSize returns the encoded fp32 size of the block body.
func (b *ValueBlock) WireSize() int {
	return WireSizeFor(b.Dim, len(b.Keys))
}

// WireSizeFor returns the encoded size of an fp32 block body of count rows of
// the given dimension.
func WireSizeFor(dim, count int) int {
	return WireSizeForPrecision(dim, count, PrecisionFP32)
}

// WireSizeForPrecision returns the encoded size of a block body of count rows
// of the given dimension under precision p.
func WireSizeForPrecision(dim, count int, p Precision) int {
	return 8 + count*p.RowBytes(dim)
}

// AppendWireHeader appends the 8-byte fp32 block-body header. Together with
// AppendWireRow it lets a serving tier encode rows straight from its own
// storage into the outgoing frame — no intermediate block, no intermediate
// embedding.Value — producing exactly the bytes AppendWire would.
func AppendWireHeader(dst []byte, dim, count int) []byte {
	return AppendWireHeaderPrecision(dst, dim, count, PrecisionFP32)
}

// AppendWireHeaderPrecision appends the block-body header declaring precision
// p. The precision rides in the dimension word's high byte — dimensions are
// bounded well below it — so a PrecisionFP32 header is bit-identical to the
// legacy fp32-only header.
func AppendWireHeaderPrecision(dst []byte, dim, count int, p Precision) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(dim)|uint32(p)<<24)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(count))
	return append(dst, hdr[:]...)
}

// AppendWireRow appends one encoded fp32 row: present flag, frequency, then
// the weight and accumulator rows. Every row of a body must carry the same
// dimension and precision the header declared, or DecodeWire on the far side
// rejects it.
func AppendWireRow(dst []byte, present bool, freq uint32, w, g2 []float32) []byte {
	if present {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], freq)
	dst = append(dst, scratch[:]...)
	for _, v := range w {
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
		dst = append(dst, scratch[:]...)
	}
	for _, g := range g2 {
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(g))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// AppendWireRowPrecision appends one row encoded under p. For int8 the two
// per-row scales are derived from the rows' largest magnitudes, so every row
// uses its full quantization range.
func AppendWireRowPrecision(dst []byte, present bool, freq uint32, w, g2 []float32, p Precision) []byte {
	switch p {
	case PrecisionFP16:
		if present {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		var scratch [4]byte
		binary.LittleEndian.PutUint32(scratch[:], freq)
		dst = append(dst, scratch[:]...)
		dst = tensor.AppendF16(dst, w)
		return tensor.AppendF16(dst, g2)
	case PrecisionInt8:
		if present {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		var scratch [4]byte
		binary.LittleEndian.PutUint32(scratch[:], freq)
		dst = append(dst, scratch[:]...)
		scaleW := tensor.MaxAbs(w) / 127
		scaleG := tensor.MaxAbs(g2) / 127
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(scaleW))
		dst = append(dst, scratch[:]...)
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(scaleG))
		dst = append(dst, scratch[:]...)
		dst = tensor.AppendI8(dst, scaleW, w)
		return tensor.AppendI8(dst, scaleG, g2)
	}
	return AppendWireRow(dst, present, freq, w, g2)
}

// AppendWire appends the fp32 block body to dst and returns the extended
// slice.
func (b *ValueBlock) AppendWire(dst []byte) []byte {
	return b.AppendWirePrecision(dst, PrecisionFP32)
}

// AppendWirePrecision appends the block body encoded under p.
func (b *ValueBlock) AppendWirePrecision(dst []byte, p Precision) []byte {
	dst = AppendWireHeaderPrecision(dst, b.Dim, len(b.Keys), p)
	for i := range b.Keys {
		dst = AppendWireRowPrecision(dst, b.Present[i], b.Freq[i], b.WeightsRow(i), b.G2Row(i), p)
	}
	return dst
}

// maxWireDim bounds the dimension a decoded header may claim, so a corrupt
// or hostile payload cannot make DecodeWire allocate unbounded rows. It also
// keeps the dimension word's high byte free for the precision tag.
const maxWireDim = 1 << 16

// DecodeWire parses a block body produced by AppendWire(Precision) into b,
// dequantizing compressed rows to float32 — the header says which codec was
// used, so one decoder serves every negotiated mode. The rows are bound to
// ks — the keys the requester asked for — which must match the encoded row
// count. The payload may come from a hostile peer; DecodeWire validates the
// precision tag and every length before touching it.
func (b *ValueBlock) DecodeWire(ks []keys.Key, payload []byte) error {
	if len(payload) < 8 {
		return fmt.Errorf("ps: block body too short: %d bytes", len(payload))
	}
	word := binary.LittleEndian.Uint32(payload[0:4])
	prec := Precision(word >> 24)
	dim := int(word & 0xffffff)
	count := int(binary.LittleEndian.Uint32(payload[4:8]))
	if !prec.Valid() {
		return fmt.Errorf("ps: block precision %d unknown", uint8(prec))
	}
	if dim < 0 || dim > maxWireDim {
		return fmt.Errorf("ps: block dimension %d out of range", dim)
	}
	if count != len(ks) {
		return fmt.Errorf("ps: block has %d rows for %d keys", count, len(ks))
	}
	rowBytes := prec.RowBytes(dim)
	if want := 8 + count*rowBytes; len(payload) != want {
		return fmt.Errorf("ps: block body is %d bytes, want %d", len(payload), want)
	}
	b.Reset(dim, ks)
	off := 8
	for i := 0; i < count; i++ {
		b.Present[i] = payload[off] != 0
		b.Freq[i] = binary.LittleEndian.Uint32(payload[off+1 : off+5])
		off += wireRowOverhead
		w := b.WeightsRow(i)
		g := b.G2Row(i)
		switch prec {
		case PrecisionFP16:
			tensor.DecodeF16(w, payload[off:off+2*dim])
			off += 2 * dim
			tensor.DecodeF16(g, payload[off:off+2*dim])
			off += 2 * dim
		case PrecisionInt8:
			scaleW := math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
			scaleG := math.Float32frombits(binary.LittleEndian.Uint32(payload[off+4 : off+8]))
			off += 8
			tensor.DecodeI8(w, scaleW, payload[off:off+dim])
			off += dim
			tensor.DecodeI8(g, scaleG, payload[off:off+dim])
			off += dim
		default:
			for j := 0; j < dim; j++ {
				w[j] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
				off += 4
			}
			for j := 0; j < dim; j++ {
				g[j] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
				off += 4
			}
		}
	}
	return nil
}

// blockPool recycles ValueBlocks across batches; see GetBlock / PutBlock.
var blockPool = sync.Pool{New: func() any { return &ValueBlock{} }}

// GetBlock returns a pooled block reset for the given dimension and keys.
func GetBlock(dim int, ks []keys.Key) *ValueBlock {
	b := blockPool.Get().(*ValueBlock)
	b.Reset(dim, ks)
	return b
}

// PutBlock returns a block to the pool. The caller must not use it afterwards.
func PutBlock(b *ValueBlock) {
	if b != nil {
		blockPool.Put(b)
	}
}

// FillFromPull shapes dst for ks and scatters a map-based pull result into
// it in request-key order — the one conversion shared by every map-to-block
// fallback (tier adapters, transports, the RPC server). When dim is 0 it is
// inferred from the first returned value; an all-missing result over an
// unshaped block stays Dim 0.
func FillFromPull(dst *ValueBlock, dim int, ks []keys.Key, res Result) {
	if dim == 0 {
		for _, v := range res {
			if v != nil {
				dim = v.Dim()
				break
			}
		}
	}
	dst.Reset(dim, ks)
	dst.FillFromResult(res)
}

// PushBlockRequest is the batched, slice-based form of PushRequest: the
// block's keys and parallel delta rows (weight, optimizer-state and
// reference-count increments), applied in row order.
type PushBlockRequest struct {
	// Shard identifies the pushing shard; see PullRequest.Shard.
	Shard int
	// Block carries the parallel key/delta slices. Rows with Present false
	// are skipped.
	Block *ValueBlock
}

// BlockPuller is the optional batched-pull extension of Tier: PullInto writes
// the requested values into dst in request-key order, resetting it first.
// Missing keys follow the tier's Pull policy (absent row, materialized, or an
// error), and dst rows never alias tier storage.
type BlockPuller interface {
	PullInto(req PullRequest, dst *ValueBlock) error
}

// BlockPusher is the optional batched-push extension of Tier: PushBlock
// merges the block's delta rows with the same semantics as Push over the
// equivalent delta map.
type BlockPusher interface {
	PushBlock(req PushBlockRequest) error
}

// PullInto pulls req into dst through the tier's native block path when it
// implements BlockPuller, falling back to the map-based Pull otherwise. Every
// tier is therefore usable from the batched hot path; native implementations
// just skip the per-value allocations.
func PullInto(t Tier, req PullRequest, dst *ValueBlock) error {
	if bp, ok := t.(BlockPuller); ok {
		return bp.PullInto(req, dst)
	}
	res, err := t.Pull(req)
	if err != nil {
		return err
	}
	FillFromPull(dst, dst.Dim, req.Keys, res)
	return nil
}

// PushBlock pushes req through the tier's native block path when it
// implements BlockPusher, falling back to a map-based Push of freshly
// allocated deltas otherwise (tiers may retain what Push hands them).
func PushBlock(t Tier, req PushBlockRequest) error {
	if bp, ok := t.(BlockPusher); ok {
		return bp.PushBlock(req)
	}
	return t.Push(PushRequest{Shard: req.Shard, Deltas: req.Block.Deltas()})
}
