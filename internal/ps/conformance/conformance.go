// Package conformance is a reusable test suite for ps.Tier implementations.
//
// Every tier of the hierarchy answers the same Pull/Push/Evict/TierStats
// contract with tier-specific policies around missing keys and eviction
// (the HBM-PS errors on keys outside the loaded working set, the MEM-PS
// materializes first references, the SSD-PS and the MPI baseline leave them
// absent). The suite checks the invariants every implementation must share —
// value isolation, delta arithmetic, statistics monotonicity — and lets a
// Harness declare the per-tier policies it should expect.
//
// Usage, from a tier's own test package:
//
//	func TestTierConformance(t *testing.T) {
//		conformance.Run(t, conformance.Harness{
//			Dim: 8,
//			New: func(t *testing.T, ks []keys.Key) ps.Tier { ... },
//			...policy flags...
//		})
//	}
package conformance

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// Harness describes one ps.Tier implementation to the suite.
type Harness struct {
	// New returns a fresh tier in which every key of ks is already present
	// (pullable). Each invariant gets its own tier, so New must be cheap and
	// side-effect free across calls.
	New func(t *testing.T, ks []keys.Key) ps.Tier
	// Dim is the embedding dimension the tier was built for.
	Dim int
	// Shard is the shard id to stamp on requests (a valid GPU id for the
	// HBM-PS, ps.NoShard for tiers that ignore it).
	Shard int
	// PullCreates marks tiers that materialize a missing key on first pull
	// (the MEM-PS contract).
	PullCreates bool
	// PullMissingErrors marks tiers where pulling a key outside the loaded
	// set is a bug, not a miss (the HBM-PS contract).
	PullMissingErrors bool
	// PushCreates marks tiers where pushing a delta to a missing key
	// materializes it (SSD-PS, MPI baseline). Tiers without it ignore such
	// deltas (HBM-PS) or create-then-merge (MEM-PS).
	PushCreates bool
	// EvictDurable marks tiers whose eviction demotes to a tier below, so
	// evicted keys remain readable afterwards (the MEM-PS over its SSD-PS).
	// Without it, evicted keys are retired.
	EvictDurable bool
	// Concurrent marks tiers that are safe for concurrent use.
	Concurrent bool
}

// suiteKeys is the fixed key set the suite preloads. The values span several
// node/GPU shards under both modulo and hash sharding.
func suiteKeys() []keys.Key {
	ks := make([]keys.Key, 0, 16)
	for i := 1; i <= 16; i++ {
		ks = append(ks, keys.Key(i*37))
	}
	return ks
}

// missingKey is a key never preloaded by the suite.
const missingKey = keys.Key(1 << 40)

// Run executes the conformance suite against the harness.
func Run(t *testing.T, h Harness) {
	if h.New == nil || h.Dim <= 0 {
		t.Fatal("conformance: Harness needs New and a positive Dim")
	}
	t.Run("PullPresent", h.pullPresent)
	t.Run("PullEmpty", h.pullEmpty)
	t.Run("PullIsolation", h.pullIsolation)
	t.Run("PullMissing", h.pullMissing)
	t.Run("PushAccumulates", h.pushAccumulates)
	t.Run("PushMissing", h.pushMissing)
	t.Run("PushEmpty", h.pushEmpty)
	t.Run("Evict", h.evict)
	t.Run("Stats", h.stats)
	t.Run("ConcurrentPulls", h.concurrentPulls)
	t.Run("BlockPullAgrees", h.blockPullAgrees)
	t.Run("BlockPullUnsortedOrder", h.blockPullUnsortedOrder)
	t.Run("BlockPullMissing", h.blockPullMissing)
	t.Run("BlockPushAgrees", h.blockPushAgrees)
	t.Run("BlockPullIsolation", h.blockPullIsolation)
}

func (h Harness) pull(t *testing.T, tier ps.Tier, ks []keys.Key) ps.Result {
	t.Helper()
	res, err := tier.Pull(ps.PullRequest{Shard: h.Shard, Keys: ks})
	if err != nil {
		t.Fatalf("Pull(%v): %v", ks, err)
	}
	return res
}

// delta builds a push delta with a recognizable per-element value.
func (h Harness) delta(base float32) *embedding.Value {
	v := embedding.NewValue(h.Dim)
	for i := range v.Weights {
		v.Weights[i] = base + float32(i)
		v.G2Sum[i] = base / 2
	}
	v.Freq = 1
	return v
}

// pullPresent: every preloaded key is pullable, with a value of the right
// shape, and repeated pulls agree.
func (h Harness) pullPresent(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	first := h.pull(t, tier, ks)
	if len(first) != len(ks) {
		t.Fatalf("pull returned %d of %d preloaded keys", len(first), len(ks))
	}
	for _, k := range ks {
		v := first[k]
		if v == nil {
			t.Fatalf("preloaded key %d absent", k)
		}
		if v.Dim() != h.Dim || len(v.G2Sum) != h.Dim {
			t.Fatalf("key %d has dim %d, want %d", k, v.Dim(), h.Dim)
		}
	}
	second := h.pull(t, tier, ks)
	for _, k := range ks {
		for i := range first[k].Weights {
			if first[k].Weights[i] != second[k].Weights[i] {
				t.Fatalf("key %d unstable across pulls without writes", k)
			}
		}
	}
}

// pullEmpty: an empty request succeeds with an empty result.
func (h Harness) pullEmpty(t *testing.T) {
	tier := h.New(t, suiteKeys())
	if res := h.pull(t, tier, nil); len(res) != 0 {
		t.Fatalf("empty pull returned %d values", len(res))
	}
}

// pullIsolation: results are private copies — mutating them must not leak
// into the tier's stored state.
func (h Harness) pullIsolation(t *testing.T) {
	ks := suiteKeys()[:4]
	tier := h.New(t, ks)
	before := h.pull(t, tier, ks)
	for _, v := range before {
		for i := range v.Weights {
			v.Weights[i] = math.MaxFloat32
		}
	}
	after := h.pull(t, tier, ks)
	for _, k := range ks {
		for i := range after[k].Weights {
			if after[k].Weights[i] == math.MaxFloat32 {
				t.Fatalf("key %d: pull result aliases tier storage", k)
			}
		}
	}
}

// pullMissing: the tier's declared missing-key policy holds.
func (h Harness) pullMissing(t *testing.T) {
	tier := h.New(t, suiteKeys())
	res, err := tier.Pull(ps.PullRequest{Shard: h.Shard, Keys: []keys.Key{missingKey}})
	switch {
	case h.PullMissingErrors:
		if err == nil {
			t.Fatal("pulling a key outside the loaded set should error")
		}
	case h.PullCreates:
		if err != nil {
			t.Fatalf("pull of a fresh key should materialize it: %v", err)
		}
		if res[missingKey] == nil {
			t.Fatal("tier declared PullCreates but left the key absent")
		}
		again := h.pull(t, tier, []keys.Key{missingKey})
		for i := range res[missingKey].Weights {
			if res[missingKey].Weights[i] != again[missingKey].Weights[i] {
				t.Fatal("materialized key not stable across pulls")
			}
		}
	default:
		if err != nil {
			t.Fatalf("missing keys must be absent, not an error: %v", err)
		}
		if res[missingKey] != nil {
			t.Fatal("missing key materialized by a tier without PullCreates")
		}
	}
}

// pushAccumulates: pushing a delta moves the stored value by exactly that
// delta, regardless of how the tier initialized it.
func (h Harness) pushAccumulates(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	before := h.pull(t, tier, ks)
	deltas := make(map[keys.Key]*embedding.Value, len(ks))
	for i, k := range ks {
		deltas[k] = h.delta(float32(i + 1))
	}
	if err := tier.Push(ps.PushRequest{Shard: h.Shard, Deltas: deltas}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	after := h.pull(t, tier, ks)
	for _, k := range ks {
		for i := range after[k].Weights {
			want := before[k].Weights[i] + deltas[k].Weights[i]
			if diff := math.Abs(float64(after[k].Weights[i] - want)); diff > 1e-4 {
				t.Fatalf("key %d weight[%d] = %g after push, want %g", k, i, after[k].Weights[i], want)
			}
			wantG2 := before[k].G2Sum[i] + deltas[k].G2Sum[i]
			if diff := math.Abs(float64(after[k].G2Sum[i] - wantG2)); diff > 1e-4 {
				t.Fatalf("key %d g2sum[%d] = %g after push, want %g", k, i, after[k].G2Sum[i], wantG2)
			}
		}
	}
}

// pushMissing: the tier's declared policy for deltas on absent keys holds.
func (h Harness) pushMissing(t *testing.T) {
	tier := h.New(t, suiteKeys())
	d := h.delta(3)
	err := tier.Push(ps.PushRequest{
		Shard:  h.Shard,
		Deltas: map[keys.Key]*embedding.Value{missingKey: d},
	})
	if err != nil {
		t.Fatalf("pushing a delta for an absent key must not fail: %v", err)
	}
	if h.PullMissingErrors {
		// The tier has no way to read the key back; ignoring the delta
		// (HBM-PS: authoritative copies live below) is the whole contract.
		return
	}
	res := h.pull(t, tier, []keys.Key{missingKey})
	v := res[missingKey]
	switch {
	case h.PushCreates:
		if v == nil {
			t.Fatal("tier declared PushCreates but the key is still absent")
		}
		for i := range v.Weights {
			if diff := math.Abs(float64(v.Weights[i] - d.Weights[i])); diff > 1e-4 {
				t.Fatalf("materialized value weight[%d] = %g, want the delta %g", i, v.Weights[i], d.Weights[i])
			}
		}
	case h.PullCreates:
		// Create-then-merge (MEM-PS): the key now exists; its exact value
		// folds the delta into a fresh initialization, checked above by
		// pushAccumulates on preloaded keys.
		if v == nil {
			t.Fatal("tier with PullCreates lost the pushed key")
		}
	default:
		if v != nil {
			t.Fatal("delta on an absent key materialized it without PushCreates")
		}
	}
}

// pushEmpty: a push with no deltas is a no-op, not an error.
func (h Harness) pushEmpty(t *testing.T) {
	tier := h.New(t, suiteKeys())
	if err := tier.Push(ps.PushRequest{Shard: h.Shard}); err != nil {
		t.Fatalf("empty push: %v", err)
	}
}

// evict: evicting preloaded keys reports them all, double-evicting reports
// none... and readability afterwards follows the declared durability.
func (h Harness) evict(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	victims := ks[:8]
	n, err := tier.Evict(victims)
	if err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if n != len(victims) {
		t.Fatalf("evicted %d of %d held keys", n, len(victims))
	}
	if h.EvictDurable {
		res := h.pull(t, tier, victims)
		if len(res) != len(victims) {
			t.Fatalf("durable evict lost keys: %d of %d readable", len(res), len(victims))
		}
	} else {
		res, err := tier.Pull(ps.PullRequest{Shard: h.Shard, Keys: victims})
		switch {
		case h.PullMissingErrors:
			if err == nil {
				t.Fatal("pulling retired keys should error for this tier")
			}
		case h.PullCreates:
			// Retired keys re-materialize on pull; nothing further to assert.
		default:
			if err != nil {
				t.Fatalf("pull after evict: %v", err)
			}
			if len(res) != 0 {
				t.Fatalf("retired keys still readable: %d", len(res))
			}
		}
		// Re-evicting retired keys finds nothing (unless pulling them back
		// above re-created them).
		if !h.PullCreates && !h.PullMissingErrors {
			if n, err := tier.Evict(victims); err != nil || n != 0 {
				t.Fatalf("second evict = (%d, %v), want (0, nil)", n, err)
			}
		}
	}
	// The untouched keys must be unaffected.
	rest := h.pull(t, tier, ks[8:])
	if len(rest) != len(ks)-8 {
		t.Fatalf("evict disturbed unrelated keys: %d of %d readable", len(rest), len(ks)-8)
	}
}

// stats: the uniform statistics track operations monotonically.
func (h Harness) stats(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	if tier.Name() == "" {
		t.Fatal("tier has no name")
	}
	base := tier.TierStats()
	h.pull(t, tier, ks)
	afterPull := tier.TierStats()
	if afterPull.Pulls <= base.Pulls {
		t.Fatalf("Pulls did not advance: %d -> %d", base.Pulls, afterPull.Pulls)
	}
	if afterPull.KeysPulled < base.KeysPulled+int64(len(ks)) {
		t.Fatalf("KeysPulled advanced by %d, want >= %d", afterPull.KeysPulled-base.KeysPulled, len(ks))
	}
	deltas := map[keys.Key]*embedding.Value{ks[0]: h.delta(1), ks[1]: h.delta(2)}
	if err := tier.Push(ps.PushRequest{Shard: h.Shard, Deltas: deltas}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	afterPush := tier.TierStats()
	if afterPush.Pushes <= afterPull.Pushes {
		t.Fatalf("Pushes did not advance: %d -> %d", afterPull.Pushes, afterPush.Pushes)
	}
	if afterPush.KeysPushed < afterPull.KeysPushed+int64(len(deltas)) {
		t.Fatalf("KeysPushed advanced by %d, want >= %d", afterPush.KeysPushed-afterPull.KeysPushed, len(deltas))
	}
	if _, err := tier.Evict(ks[:2]); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	afterEvict := tier.TierStats()
	if afterEvict.Evictions <= afterPush.Evictions {
		t.Fatalf("Evictions did not advance: %d -> %d", afterPush.Evictions, afterEvict.Evictions)
	}
	if afterEvict.KeysEvicted < afterPush.KeysEvicted+2 {
		t.Fatalf("KeysEvicted advanced by %d, want >= 2", afterEvict.KeysEvicted-afterPush.KeysEvicted)
	}
	if afterEvict.PullTime < 0 || afterEvict.PushTime < 0 {
		t.Fatal("negative cumulative operation time")
	}
}

// blockPullAgrees: the batched block pull (native PullInto or the adapter)
// returns exactly the values of the map-based Pull, in request-key order.
// The suite keys are sorted and deduplicated, as the batched hot path's
// requests always are.
func (h Harness) blockPullAgrees(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	want := h.pull(t, tier, ks)
	blk := ps.NewValueBlock(h.Dim)
	if err := ps.PullInto(tier, ps.PullRequest{Shard: h.Shard, Keys: ks}, blk); err != nil {
		t.Fatalf("PullInto: %v", err)
	}
	if blk.Len() != len(ks) {
		t.Fatalf("block has %d rows for %d keys", blk.Len(), len(ks))
	}
	if blk.Dim != h.Dim {
		t.Fatalf("block dim = %d, want %d", blk.Dim, h.Dim)
	}
	for i, k := range ks {
		if blk.Keys[i] != k {
			t.Fatalf("row %d holds key %d, want request order key %d", i, blk.Keys[i], k)
		}
		if !blk.Present[i] {
			t.Fatalf("preloaded key %d absent from the block", k)
		}
		w, g2 := blk.WeightsRow(i), blk.G2Row(i)
		for j := 0; j < h.Dim; j++ {
			if w[j] != want[k].Weights[j] || g2[j] != want[k].G2Sum[j] {
				t.Fatalf("key %d element %d: block (%g,%g) != pull (%g,%g)",
					k, j, w[j], g2[j], want[k].Weights[j], want[k].G2Sum[j])
			}
		}
		if blk.Freq[i] != want[k].Freq {
			t.Fatalf("key %d freq: block %d != pull %d", k, blk.Freq[i], want[k].Freq)
		}
	}
}

// blockPullUnsortedOrder: request-key order is the contract even when the
// request is not sorted — a tier that assembles sorted internally must
// scatter back, because wire replies bind rows to the requester's key order
// positionally.
func (h Harness) blockPullUnsortedOrder(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	want := h.pull(t, tier, ks)
	rev := make([]keys.Key, len(ks))
	for i, k := range ks {
		rev[len(ks)-1-i] = k
	}
	blk := ps.NewValueBlock(h.Dim)
	if err := ps.PullInto(tier, ps.PullRequest{Shard: h.Shard, Keys: rev}, blk); err != nil {
		t.Fatalf("PullInto(reversed): %v", err)
	}
	for i, k := range rev {
		if blk.Keys[i] != k {
			t.Fatalf("row %d holds key %d, want request order key %d", i, blk.Keys[i], k)
		}
		if !blk.Present[i] {
			t.Fatalf("preloaded key %d absent", k)
		}
		for j := 0; j < h.Dim; j++ {
			if blk.WeightsRow(i)[j] != want[k].Weights[j] {
				t.Fatalf("key %d element %d: reversed-request row holds the wrong value", k, j)
			}
		}
	}
}

// blockPullMissing: the block pull honours the tier's declared missing-key
// policy exactly like the map-based Pull.
func (h Harness) blockPullMissing(t *testing.T) {
	tier := h.New(t, suiteKeys())
	blk := ps.NewValueBlock(h.Dim)
	err := ps.PullInto(tier, ps.PullRequest{Shard: h.Shard, Keys: []keys.Key{missingKey}}, blk)
	switch {
	case h.PullMissingErrors:
		if err == nil {
			t.Fatal("block-pulling a key outside the loaded set should error")
		}
	case h.PullCreates:
		if err != nil {
			t.Fatalf("block pull of a fresh key should materialize it: %v", err)
		}
		if !blk.Present[0] {
			t.Fatal("tier declared PullCreates but the block row is absent")
		}
		// The materialized value must be what subsequent map pulls read.
		again := h.pull(t, tier, []keys.Key{missingKey})
		for j := 0; j < h.Dim; j++ {
			if blk.WeightsRow(0)[j] != again[missingKey].Weights[j] {
				t.Fatal("block-materialized key not stable across pulls")
			}
		}
	default:
		if err != nil {
			t.Fatalf("missing keys must be absent rows, not an error: %v", err)
		}
		if blk.Present[0] {
			t.Fatal("missing key marked present by a tier without PullCreates")
		}
		for j := 0; j < h.Dim; j++ {
			if blk.WeightsRow(0)[j] != 0 {
				t.Fatal("absent row is not zeroed")
			}
		}
	}
}

// blockPushAgrees: pushing a delta block moves the stored values by exactly
// the same arithmetic as the map-based Push that pushAccumulates verifies.
func (h Harness) blockPushAgrees(t *testing.T) {
	ks := suiteKeys()
	tier := h.New(t, ks)
	before := h.pull(t, tier, ks)
	basePushed := tier.TierStats().KeysPushed
	blk := ps.NewValueBlock(h.Dim)
	blk.Reset(h.Dim, ks)
	deltas := make(map[keys.Key]*embedding.Value, len(ks))
	for i, k := range ks {
		d := h.delta(float32(i + 1))
		deltas[k] = d
		blk.Set(i, d)
	}
	if err := ps.PushBlock(tier, ps.PushBlockRequest{Shard: h.Shard, Block: blk}); err != nil {
		t.Fatalf("PushBlock: %v", err)
	}
	after := h.pull(t, tier, ks)
	for _, k := range ks {
		for i := range after[k].Weights {
			want := before[k].Weights[i] + deltas[k].Weights[i]
			if diff := math.Abs(float64(after[k].Weights[i] - want)); diff > 1e-4 {
				t.Fatalf("key %d weight[%d] = %g after block push, want %g", k, i, after[k].Weights[i], want)
			}
			wantG2 := before[k].G2Sum[i] + deltas[k].G2Sum[i]
			if diff := math.Abs(float64(after[k].G2Sum[i] - wantG2)); diff > 1e-4 {
				t.Fatalf("key %d g2sum[%d] = %g after block push, want %g", k, i, after[k].G2Sum[i], wantG2)
			}
		}
	}
	if got := tier.TierStats().KeysPushed; got < basePushed+int64(len(ks)) {
		t.Fatalf("block push advanced KeysPushed by %d, want >= %d", got-basePushed, len(ks))
	}
}

// blockPullIsolation: block rows are copies — mutating them must not leak
// into the tier's stored state.
func (h Harness) blockPullIsolation(t *testing.T) {
	ks := suiteKeys()[:4]
	tier := h.New(t, ks)
	blk := ps.NewValueBlock(h.Dim)
	if err := ps.PullInto(tier, ps.PullRequest{Shard: h.Shard, Keys: ks}, blk); err != nil {
		t.Fatalf("PullInto: %v", err)
	}
	for i := range ks {
		row := blk.WeightsRow(i)
		for j := range row {
			row[j] = math.MaxFloat32
		}
	}
	after := h.pull(t, tier, ks)
	for _, k := range ks {
		for i := range after[k].Weights {
			if after[k].Weights[i] == math.MaxFloat32 {
				t.Fatalf("key %d: block row aliases tier storage", k)
			}
		}
	}
}

// concurrentPulls: tiers declared concurrent serve parallel readers without
// races or corruption (run under -race).
func (h Harness) concurrentPulls(t *testing.T) {
	if !h.Concurrent {
		t.Skip("tier is not safe for concurrent use")
	}
	ks := suiteKeys()
	tier := h.New(t, ks)
	want := h.pull(t, tier, ks)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := tier.Pull(ps.PullRequest{Shard: h.Shard, Keys: ks})
				if err != nil {
					errs[w] = err
					return
				}
				for _, k := range ks {
					if res[k] == nil || res[k].Weights[0] != want[k].Weights[0] {
						errs[w] = fmt.Errorf("concurrent pull returned a corrupt value for key %d", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
