// Package ps defines the common parameter-server contract shared by every
// tier of the hierarchy — HBM-PS (internal/hbmps), MEM-PS (internal/memps),
// SSD-PS (internal/ssdps) — and by the MPI baseline (internal/mpips).
//
// Each tier stores sparse parameters keyed by keys.Key and serves the same
// three operations with tier-specific mechanics:
//
//   - Pull: batched read of the current values of a key set,
//   - Push: batched merge of per-key deltas into the stored values,
//   - Evict: demotion of keys out of the tier (toward the tier below it in
//     the hierarchy, or retirement for the bottom tier).
//
// Before this package existed, each tier hand-rolled its own variant of the
// pull/push/evict bookkeeping. The Tier interface gives the end-to-end
// trainer (internal/trainer) and every future scaling change one contract to
// program against, and Recorder centralizes the uniform statistics every
// tier reports.
package ps

import (
	"sync"
	"time"

	"hps/internal/embedding"
	"hps/internal/keys"
)

// PullRequest is a batched, key-partitioned read request against one tier.
type PullRequest struct {
	// Shard identifies the requesting shard within the tier's partition
	// policy — the GPU id for the HBM-PS, the node id for the MEM-PS. Tiers
	// without internal sharding ignore it; use NoShard when not applicable.
	Shard int
	// Keys are the parameters to read.
	Keys []keys.Key
}

// NoShard is the Shard value for requests that are not issued on behalf of a
// particular shard.
const NoShard = -1

// Result is the payload of a pull: the requested keys the tier holds, with
// private copies of their current values. Keys the tier does not hold are
// absent.
type Result map[keys.Key]*embedding.Value

// Keys returns the result's keys in unspecified order.
func (r Result) Keys() []keys.Key {
	out := make([]keys.Key, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	return out
}

// PushRequest is a batched write request against one tier: per-key deltas
// (weight, optimizer-state and reference-count increments) to merge into the
// stored values.
type PushRequest struct {
	// Shard identifies the pushing shard; see PullRequest.Shard.
	Shard int
	// Deltas are the per-key increments to apply.
	Deltas map[keys.Key]*embedding.Value
}

// Tier is the contract every parameter-server tier implements.
type Tier interface {
	// Name identifies the tier ("hbm-ps", "mem-ps", "ssd-ps", "mpi-ps").
	Name() string
	// Pull returns copies of the current values of the requested keys.
	// Missing keys are absent from the result, not an error.
	Pull(req PullRequest) (Result, error)
	// Push merges the request's per-key deltas into the stored values.
	// Deltas for keys the tier does not hold are handled tier-specifically
	// (created, forwarded, or ignored); Push reports only transport or
	// storage failures.
	Push(req PushRequest) error
	// Evict demotes the given keys out of this tier, returning how many were
	// actually held and demoted. A nil slice evicts everything evictable.
	Evict(ks []keys.Key) (int, error)
	// TierStats returns the uniform cumulative statistics of the tier.
	TierStats() Stats
}

// Stats is the uniform statistics block every tier maintains (via Recorder).
// Tiers may expose richer tier-specific statistics alongside it.
type Stats struct {
	// Pulls / Pushes / Evictions count operations.
	Pulls, Pushes, Evictions int64
	// KeysPulled / KeysPushed / KeysEvicted count parameters moved.
	KeysPulled, KeysPushed, KeysEvicted int64
	// PullTime / PushTime are the cumulative modelled durations of the two
	// hot-path operations (the per-component breakdown of Fig 4).
	PullTime, PushTime time.Duration
}

// Add returns the element-wise sum of two stats blocks.
func (s Stats) Add(other Stats) Stats {
	s.Pulls += other.Pulls
	s.Pushes += other.Pushes
	s.Evictions += other.Evictions
	s.KeysPulled += other.KeysPulled
	s.KeysPushed += other.KeysPushed
	s.KeysEvicted += other.KeysEvicted
	s.PullTime += other.PullTime
	s.PushTime += other.PushTime
	return s
}

// Recorder is the shared implementation of the uniform statistics block.
// Tiers embed it (by pointer or value) and call the Record methods from
// their pull/push/evict paths; TierStats then satisfies the Tier interface.
// Recorder is safe for concurrent use.
type Recorder struct {
	mu sync.Mutex
	s  Stats
}

// RecordPull accounts one pull of n keys with the given modelled duration.
func (r *Recorder) RecordPull(n int, d time.Duration) {
	r.mu.Lock()
	r.s.Pulls++
	r.s.KeysPulled += int64(n)
	r.s.PullTime += d
	r.mu.Unlock()
}

// RecordPush accounts one push of n keys with the given modelled duration.
func (r *Recorder) RecordPush(n int, d time.Duration) {
	r.mu.Lock()
	r.s.Pushes++
	r.s.KeysPushed += int64(n)
	r.s.PushTime += d
	r.mu.Unlock()
}

// RecordEvict accounts one eviction pass demoting n keys.
func (r *Recorder) RecordEvict(n int) {
	r.mu.Lock()
	r.s.Evictions++
	r.s.KeysEvicted += int64(n)
	r.mu.Unlock()
}

// TierStats returns a snapshot of the recorded statistics.
func (r *Recorder) TierStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s
}

// ServePull is the shared pull loop: it looks every requested key up through
// get and collects private copies of the found values. Every tier's Pull is
// a ServePull over its own storage accessor.
func ServePull(ks []keys.Key, get func(k keys.Key) (*embedding.Value, bool)) Result {
	out := make(Result, len(ks))
	for _, k := range ks {
		if v, ok := get(k); ok && v != nil {
			out[k] = v.Clone()
		}
	}
	return out
}

// ApplyDeltas is the shared push loop: it hands every delta to apply in
// sorted key order (so tiers with order-dependent storage behave
// deterministically) and returns the number of deltas apply accepted.
func ApplyDeltas(deltas map[keys.Key]*embedding.Value, apply func(k keys.Key, delta *embedding.Value) bool) int {
	ks := make([]keys.Key, 0, len(deltas))
	for k := range deltas {
		ks = append(ks, k)
	}
	ks = keys.Dedup(ks)
	applied := 0
	for _, k := range ks {
		if apply(k, deltas[k]) {
			applied++
		}
	}
	return applied
}

// TierInfo pairs a tier's name with its uniform statistics, for reports.
type TierInfo struct {
	Name  string
	Stats Stats
}

// CollectStats snapshots the uniform statistics of a set of tiers in order
// (conventionally top tier first).
func CollectStats(tiers ...Tier) []TierInfo {
	out := make([]TierInfo, 0, len(tiers))
	for _, t := range tiers {
		if t == nil {
			continue
		}
		out = append(out, TierInfo{Name: t.Name(), Stats: t.TierStats()})
	}
	return out
}
