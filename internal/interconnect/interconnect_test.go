package interconnect

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hps/internal/hw"
	"hps/internal/simtime"
)

func testProfile() hw.NodeProfile {
	p := hw.DefaultGPUNode()
	return p
}

func TestFabricCharging(t *testing.T) {
	clock := simtime.NewClock()
	f := NewFabric(testProfile(), clock)
	const n = 1 << 20
	if d := f.NVLink(n); d <= 0 {
		t.Fatal("nvlink duration must be positive")
	}
	if d := f.PCIe(n); d <= 0 {
		t.Fatal("pcie duration must be positive")
	}
	if d := f.RDMA(n); d <= 0 {
		t.Fatal("rdma duration must be positive")
	}
	if d := f.Ethernet(n); d <= 0 {
		t.Fatal("ethernet duration must be positive")
	}
	for _, r := range []simtime.Resource{simtime.ResourceNVLink, simtime.ResourcePCIe, simtime.ResourceRDMA, simtime.ResourceNetwork} {
		if clock.Total(r) <= 0 {
			t.Fatalf("resource %s not charged", r)
		}
	}
	// NVLink must be faster than PCIe for the same payload.
	if f.NVLink(n) >= f.PCIe(n) {
		t.Fatal("NVLink should be faster than PCIe")
	}
}

func TestRDMAvsBaseline(t *testing.T) {
	f := NewFabric(testProfile(), nil)
	const n = 8 << 20
	rdma := f.RDMA(n)
	baseline := f.RDMABaseline(n)
	if rdma >= baseline {
		t.Fatalf("RDMA (%v) must beat the CPU-mediated baseline (%v)", rdma, baseline)
	}
}

func TestPlanAllReduce(t *testing.T) {
	p := PlanAllReduce(4, 8)
	if p.InterNodeSteps != 2 || p.IntraNodeSteps != 3 {
		t.Fatalf("plan = %+v, want 2 inter-node and 3 intra-node steps (paper example)", p)
	}
	p1 := PlanAllReduce(1, 1)
	if p1.InterNodeSteps != 0 || p1.IntraNodeSteps != 0 {
		t.Fatalf("single GPU plan = %+v", p1)
	}
	p3 := PlanAllReduce(3, 5)
	if p3.InterNodeSteps != 2 || p3.IntraNodeSteps != 3 {
		t.Fatalf("non-power-of-two plan = %+v", p3)
	}
}

func TestHierarchicalAllReduceTimeScalesLogarithmically(t *testing.T) {
	prof := testProfile()
	const bytes = 4 << 20
	t2 := HierarchicalAllReduceTime(bytes, 2, 8, prof.RDMA, prof.NVLink)
	t4 := HierarchicalAllReduceTime(bytes, 4, 8, prof.RDMA, prof.NVLink)
	t8 := HierarchicalAllReduceTime(bytes, 8, 8, prof.RDMA, prof.NVLink)
	if !(t2 < t4 && t4 < t8) {
		t.Fatalf("all-reduce time should grow with node count: %v %v %v", t2, t4, t8)
	}
	// Doubling the node count adds one RDMA round, so growth is additive
	// (logarithmic in nodes), not multiplicative.
	growth48 := t8 - t4
	growth24 := t4 - t2
	diff := growth48 - growth24
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("growth should be roughly constant per doubling: %v vs %v", growth24, growth48)
	}
}

func TestHierarchicalBeatsNaiveAtScale(t *testing.T) {
	prof := testProfile()
	const bytes = 4 << 20
	h := HierarchicalAllReduceTime(bytes, 4, 8, prof.RDMA, prof.NVLink)
	n := NaiveAllToAllTime(bytes, 4, 8, prof.RDMA, prof.NVLink)
	if h >= n {
		t.Fatalf("hierarchical (%v) should beat naive all-to-all (%v) on 4x8 GPUs", h, n)
	}
}

func TestAllReduceTimesDegenerate(t *testing.T) {
	prof := testProfile()
	if HierarchicalAllReduceTime(-1, 1, 1, prof.RDMA, prof.NVLink) != 0 {
		t.Fatal("single GPU negative bytes should cost nothing")
	}
	if NaiveAllToAllTime(1024, 0, 0, prof.RDMA, prof.NVLink) != 0 {
		t.Fatal("degenerate cluster should cost nothing")
	}
}

func TestAllReduceSum(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{10, 20, 30}
	c := []float32{100, 200, 300}
	if err := AllReduceSum([][]float32{a, b, c}); err != nil {
		t.Fatal(err)
	}
	want := []float32{111, 222, 333}
	for _, buf := range [][]float32{a, b, c} {
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("buffer = %v, want %v", buf, want)
			}
		}
	}
	if err := AllReduceSum(nil); err != nil {
		t.Fatal("empty all-reduce should be a no-op")
	}
	if err := AllReduceSum([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAllReduceMean(t *testing.T) {
	a := []float32{2, 4}
	b := []float32{4, 8}
	if err := AllReduceMean([][]float32{a, b}); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 || a[1] != 6 || b[0] != 3 || b[1] != 6 {
		t.Fatalf("mean = %v %v", a, b)
	}
	if err := AllReduceMean(nil); err != nil {
		t.Fatal(err)
	}
	if err := AllReduceMean([][]float32{{1}, {1, 2}}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAllReduceSumProperty(t *testing.T) {
	// After all-reduce, all buffers are identical and equal the element-wise
	// sum of the originals.
	f := func(vals []float32, partsRaw uint8) bool {
		parts := int(partsRaw%4) + 1
		if len(vals) < parts {
			return true
		}
		per := len(vals) / parts
		if per == 0 {
			return true
		}
		var buffers [][]float32
		var originals [][]float32
		for i := 0; i < parts; i++ {
			seg := append([]float32(nil), vals[i*per:(i+1)*per]...)
			buffers = append(buffers, seg)
			originals = append(originals, append([]float32(nil), seg...))
		}
		if err := AllReduceSum(buffers); err != nil {
			return false
		}
		for j := 0; j < per; j++ {
			var want float32
			for i := 0; i < parts; i++ {
				want += originals[i][j]
			}
			for i := 0; i < parts; i++ {
				got := buffers[i][j]
				if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNilClockFabric(t *testing.T) {
	f := NewFabric(testProfile(), nil)
	// Must not panic.
	f.NVLink(1024)
	f.PCIe(1024)
	f.RDMA(1024)
	f.Ethernet(1024)
	f.RDMABaseline(1024)
}
