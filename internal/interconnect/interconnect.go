// Package interconnect models the communication fabric of the cluster —
// NVLink between GPUs of a node, PCIe between CPUs and GPUs, RDMA (RoCE)
// between GPUs of different nodes, and Ethernet between CPUs — and
// implements the hierarchical all-reduce used to synchronize parameters
// across all GPUs after every mini-batch (Section 4.2, Appendix C.3).
//
// Data actually moves between in-process buffers (the simulated GPUs share an
// address space); the fabric's job is to charge the modelled transfer time of
// each hop to the right resource so the time-distribution figures come out
// with the paper's shape.
package interconnect

import (
	"fmt"
	"math"
	"time"

	"hps/internal/hw"
	"hps/internal/simtime"
	"hps/internal/tensor"
)

// Fabric charges transfer times for the four link types of a node.
// It is safe for concurrent use (the underlying clock is).
type Fabric struct {
	nvlink   hw.Link
	pcie     hw.Link
	rdma     hw.Link
	ethernet hw.Link
	clock    *simtime.Clock
}

// NewFabric builds a fabric from a node profile. clock may be nil.
func NewFabric(p hw.NodeProfile, clock *simtime.Clock) *Fabric {
	return &Fabric{
		nvlink:   p.NVLink,
		pcie:     p.PCIe,
		rdma:     p.RDMA,
		ethernet: p.Ethernet,
		clock:    clock,
	}
}

// NVLink charges an intra-node GPU-to-GPU transfer of n bytes and returns the
// modelled duration.
func (f *Fabric) NVLink(n int64) time.Duration {
	d := f.nvlink.TransferTime(n)
	f.clock.Add(simtime.ResourceNVLink, d)
	return d
}

// PCIe charges a CPU<->GPU transfer of n bytes.
func (f *Fabric) PCIe(n int64) time.Duration {
	d := f.pcie.TransferTime(n)
	f.clock.Add(simtime.ResourcePCIe, d)
	return d
}

// RDMA charges an inter-node GPU<->GPU transfer of n bytes. The baseline
// (non-RDMA) path would additionally cross PCIe and CPU memory on both ends
// (Appendix C.2); use RDMABaseline to model that for ablations.
func (f *Fabric) RDMA(n int64) time.Duration {
	d := f.rdma.TransferTime(n)
	f.clock.Add(simtime.ResourceRDMA, d)
	return d
}

// RDMABaseline charges the non-RDMA inter-node GPU transfer of Appendix C.2:
// GPU->CPU over PCIe, CPU->CPU over Ethernet, CPU->GPU over PCIe.
func (f *Fabric) RDMABaseline(n int64) time.Duration {
	d := f.pcie.TransferTime(n) + f.ethernet.TransferTime(n) + f.pcie.TransferTime(n)
	f.clock.Add(simtime.ResourcePCIe, f.pcie.TransferTime(n)*2)
	f.clock.Add(simtime.ResourceNetwork, f.ethernet.TransferTime(n))
	return d
}

// Ethernet charges an inter-node CPU transfer of n bytes (MEM-PS remote
// pulls, MPI parameter traffic).
func (f *Fabric) Ethernet(n int64) time.Duration {
	d := f.ethernet.TransferTime(n)
	f.clock.Add(simtime.ResourceNetwork, d)
	return d
}

// AllReducePlan describes the communication rounds of the hierarchical
// all-reduce of Appendix C.3 for a cluster of nodes x gpusPerNode GPUs.
type AllReducePlan struct {
	// InterNodeSteps is the number of sequential pairwise inter-node exchange
	// rounds (log2 of the node count, rounded up).
	InterNodeSteps int
	// IntraNodeSteps is the number of sequential intra-node tree rounds
	// (log2 of the GPUs per node, rounded up).
	IntraNodeSteps int
}

// PlanAllReduce returns the round structure for the given cluster shape.
func PlanAllReduce(nodes, gpusPerNode int) AllReducePlan {
	return AllReducePlan{
		InterNodeSteps: ceilLog2(nodes),
		IntraNodeSteps: ceilLog2(gpusPerNode),
	}
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// HierarchicalAllReduceTime returns the modelled wall-clock time of
// synchronizing bytesPerGPU of parameter updates across the whole cluster:
// the inter-node rounds run over RDMA and the intra-node rounds over NVLink,
// with every pair exchanging concurrently within a round ("most of the
// communications are paralleled").
func HierarchicalAllReduceTime(bytesPerGPU int64, nodes, gpusPerNode int, rdma, nvlink hw.Link) time.Duration {
	if bytesPerGPU < 0 {
		bytesPerGPU = 0
	}
	plan := PlanAllReduce(nodes, gpusPerNode)
	var total time.Duration
	for i := 0; i < plan.InterNodeSteps; i++ {
		total += rdma.TransferTime(bytesPerGPU)
	}
	for i := 0; i < plan.IntraNodeSteps; i++ {
		total += nvlink.TransferTime(bytesPerGPU)
	}
	return total
}

// NaiveAllToAllTime returns the modelled time of the flat alternative in
// which every GPU sends its updates to every other GPU directly — the
// ablation baseline for the hierarchical scheme. Each GPU must serialize
// (nodes*gpusPerNode - 1) sends of bytesPerGPU, the inter-node ones over RDMA
// and the intra-node ones over NVLink.
func NaiveAllToAllTime(bytesPerGPU int64, nodes, gpusPerNode int, rdma, nvlink hw.Link) time.Duration {
	if bytesPerGPU < 0 {
		bytesPerGPU = 0
	}
	if nodes < 1 {
		nodes = 1
	}
	if gpusPerNode < 1 {
		gpusPerNode = 1
	}
	var total time.Duration
	// Sends to GPUs on other nodes.
	remote := (nodes - 1) * gpusPerNode
	for i := 0; i < remote; i++ {
		total += rdma.TransferTime(bytesPerGPU)
	}
	// Sends to sibling GPUs on the same node.
	for i := 0; i < gpusPerNode-1; i++ {
		total += nvlink.TransferTime(bytesPerGPU)
	}
	return total
}

// AllReduceSum element-wise sums the buffers (one per participant) and
// writes the result back into every buffer — the data movement performed by
// the parameter synchronization. All buffers must have identical length. The
// accumulation runs through the shared unrolled tensor kernel (the same
// flat-slab fast path the delta merges use) rather than a scalar loop.
func AllReduceSum(buffers [][]float32) error {
	if len(buffers) == 0 {
		return nil
	}
	n := len(buffers[0])
	for i, b := range buffers {
		if len(b) != n {
			return fmt.Errorf("interconnect: buffer %d has length %d, want %d", i, len(b), n)
		}
	}
	sum := make([]float32, n)
	copy(sum, buffers[0])
	for _, b := range buffers[1:] {
		tensor.Add(b, sum)
	}
	for _, b := range buffers {
		copy(b, sum)
	}
	return nil
}

// AllReduceMean is AllReduceSum followed by dividing every element by the
// number of participants (used for dense gradient averaging).
func AllReduceMean(buffers [][]float32) error {
	if err := AllReduceSum(buffers); err != nil {
		return err
	}
	if len(buffers) == 0 {
		return nil
	}
	inv := 1 / float32(len(buffers))
	for _, b := range buffers {
		tensor.Scale(inv, b)
	}
	return nil
}
