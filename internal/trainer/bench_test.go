package trainer

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"hps/internal/cluster"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/model"
	"hps/internal/ps"
)

// BenchmarkTrainerBatch measures the composed hot path — one full
// read -> pull -> train -> push cycle per op on a single node — so future
// changes benchmark the end-to-end batch cost, not just individual tiers.
func BenchmarkTrainerBatch(b *testing.B) {
	spec := model.Spec{
		Name:               "bench",
		NonZerosPerExample: 15,
		SparseParams:       20000,
		EmbeddingDim:       8,
		HiddenLayers:       []int{32, 16},
	}
	tr, err := New(Config{
		Spec:        spec,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   256,
		Batches:     b.N,
		MaxInFlight: 1, // strict ordering: per-op cost is one whole batch
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.ResetTimer()
	if err := tr.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// benchPipelineDepth is the shared body of the pipelined-vs-synchronous
// benchmark pair. The injected stage delays model the wait-dominated stages of
// a production batch — the HDFS read and the networked MEM-PS pull/push spend
// their wall time blocked, not computing — which is exactly the latency a
// deeper pipeline exists to hide. Without them the benchmark would only
// measure CPU contention on whatever core count the bench machine happens to
// have; with them, the per-op gap between the two benchmarks is the overlap
// itself (steady-state per-op tends to the slowest stage, not the stage sum).
func benchPipelineDepth(b *testing.B, depth int, asyncPush bool) {
	spec := model.Spec{
		Name:               "bench",
		NonZerosPerExample: 15,
		SparseParams:       20000,
		EmbeddingDim:       8,
		HiddenLayers:       []int{32, 16},
	}
	tr, err := New(Config{
		Spec:        spec,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   256,
		Batches:     b.N,
		MaxInFlight: depth,
		AsyncPush:   asyncPush,
		PushLag:     2,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	tr.stageDelay = map[string]time.Duration{
		StageRead: 3 * time.Millisecond, // HDFS stream wait
		StagePull: 3 * time.Millisecond, // MEM-PS round trip
		StagePush: 3 * time.Millisecond, // synchronized push round trip
	}
	b.ResetTimer()
	if err := tr.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTrainerSynchronous is the depth-1 baseline of the pair: every batch
// pays read + pull + train + push end to end, waits included.
func BenchmarkTrainerSynchronous(b *testing.B) { benchPipelineDepth(b, 1, false) }

// BenchmarkTrainerPipelined measures steady-state throughput at the default
// depth with the async push committer on — the configuration the adaptive
// pipeline work optimizes for. Target: >= 1.5x BenchmarkTrainerSynchronous
// ops/s (the AUC side of the trade is pinned by TestAsyncPushMatchesSyncAUC).
func BenchmarkTrainerPipelined(b *testing.B) { benchPipelineDepth(b, 4, true) }

// BenchmarkStagePushMultiNode measures the block-native push stage on a
// 2-node cluster: slab-wise sorted-key merge of the per-node delta blocks,
// the modelled all-reduce charge, and one PushBlock apply per MEM-PS. The
// per-node blocks are refilled from templates each iteration (a slab copy,
// standing in for CollectBlock's output) because the stage recycles them into
// the block pool.
func BenchmarkStagePushMultiNode(b *testing.B) {
	const (
		dim     = 8
		perNode = 2048
		overlap = 512 // keys trained by both nodes in the same batch
	)
	spec := model.Spec{
		Name:               "bench-push",
		NonZerosPerExample: 15,
		SparseParams:       100000,
		EmbeddingDim:       dim,
		HiddenLayers:       []int{32, 16},
	}
	tr, err := New(Config{
		Spec:     spec,
		Topology: cluster.Topology{Nodes: 2, GPUsPerNode: 2},
		Batches:  1,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()

	rng := rand.New(rand.NewSource(7))
	fill := func(ks []keys.Key) *ps.ValueBlock {
		blk := ps.NewValueBlock(dim)
		blk.Reset(dim, ks)
		for i := range ks {
			for j := 0; j < dim; j++ {
				blk.WeightsRow(i)[j] = rng.Float32()*2 - 1
				blk.G2Row(i)[j] = rng.Float32()
			}
			blk.Freq[i] = 1
			blk.Present[i] = true
		}
		return blk
	}
	// Sorted unique per-node key sets sharing `overlap` keys, so the merge
	// exercises both the disjoint and the summing paths.
	shared := make([]keys.Key, overlap)
	for i := range shared {
		shared[i] = keys.Key(keys.Mix64(uint64(i)))
	}
	templates := make([]*ps.ValueBlock, 2)
	for nid := range templates {
		ks := append([]keys.Key(nil), shared...)
		for i := 0; i < perNode-overlap; i++ {
			ks = append(ks, keys.Key(keys.Mix64(uint64(1000+nid*perNode+i))))
		}
		templates[nid] = fill(keys.Dedup(ks))
	}

	j := &job{index: 0, nodes: []*nodeBatch{
		{ws: &memps.WorkingSet{}},
		{ws: &memps.WorkingSet{}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for nid, nb := range j.nodes {
			blk := ps.GetBlock(dim, nil)
			blk.CopyFrom(templates[nid])
			nb.deltas = blk
		}
		if _, err := tr.stagePush(context.Background(), j); err != nil {
			b.Fatal(err)
		}
	}
}
