package trainer

import (
	"context"
	"testing"

	"hps/internal/cluster"
	"hps/internal/model"
)

// BenchmarkTrainerBatch measures the composed hot path — one full
// read -> pull -> train -> push cycle per op on a single node — so future
// changes benchmark the end-to-end batch cost, not just individual tiers.
func BenchmarkTrainerBatch(b *testing.B) {
	spec := model.Spec{
		Name:               "bench",
		NonZerosPerExample: 15,
		SparseParams:       20000,
		EmbeddingDim:       8,
		HiddenLayers:       []int{32, 16},
	}
	tr, err := New(Config{
		Spec:        spec,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   256,
		Batches:     b.N,
		MaxInFlight: 1, // strict ordering: per-op cost is one whole batch
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.ResetTimer()
	if err := tr.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}
