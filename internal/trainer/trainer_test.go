package trainer

import (
	"context"
	"math"
	"testing"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/model"
	"hps/internal/reference"
)

func testSpec() model.Spec {
	return model.Spec{
		Name:               "test",
		NonZerosPerExample: 15,
		SparseParams:       3000,
		EmbeddingDim:       8,
		HiddenLayers:       []int{32, 16},
	}
}

func testData() dataset.Config {
	return dataset.Config{NumFeatures: 3000, NonZerosPerExample: 15}
}

func evalAUC(t *testing.T, tr *Trainer, gen *dataset.Generator, n int) float64 {
	t.Helper()
	auc, err := tr.Evaluate(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func runTrainer(t *testing.T, cfg Config) *Trainer {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("spec without embedding dim should fail")
	}
	if _, err := New(Config{Spec: testSpec(), Topology: cluster.Topology{Nodes: -1, GPUsPerNode: 1}}); err == nil {
		t.Fatal("bad topology should fail")
	}
	tr, err := New(Config{Spec: testSpec(), Data: testData(), Batches: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Nodes() != 1 {
		t.Fatal("default topology should be one node")
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err == nil {
		// A second run would re-read exhausted streams.
		t.Log("second Run unexpectedly succeeded") // tolerated, not part of the contract
	}
}

// TestConvergesToReferenceOracle is the Fig 3(b) check: the hierarchical
// trainer must reach the same quality as the plain in-memory reference
// trainer on the same synthetic click stream.
func TestConvergesToReferenceOracle(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 7
	// Both trainers must reach their convergence plateau for the 0.5% band
	// to be meaningful, so the workload is not reduced under -short (the
	// whole test runs in well under a second).
	batches, batchSize, evalN := 30, 128, 1500

	// The oracle trains on exactly the stream node 0 sees.
	ref := reference.New(reference.Config{
		EmbeddingDim: spec.EmbeddingDim,
		Hidden:       spec.HiddenLayers,
		Seed:         seed,
	})
	refGen := dataset.NewGenerator(data, seed)
	for i := 0; i < batches; i++ {
		ref.TrainBatch(refGen.NextBatch(batchSize))
	}

	tr := runTrainer(t, Config{
		Spec:        spec,
		Data:        data,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 1, // strict Algorithm-1 ordering for the oracle check
		Seed:        seed,
	})
	if got, want := tr.Examples(), int64(batches*batchSize); got != want {
		t.Fatalf("examples = %d, want %d", got, want)
	}

	refAUC := ref.Evaluate(dataset.NewGenerator(data, 999), evalN)
	hpsAUC := evalAUC(t, tr, dataset.NewGenerator(data, 999), evalN)
	t.Logf("reference AUC = %.4f, hierarchical AUC = %.4f", refAUC, hpsAUC)
	if refAUC < 0.6 {
		t.Fatalf("reference oracle failed to learn (AUC %.4f); test data too hard", refAUC)
	}
	if diff := math.Abs(refAUC - hpsAUC); diff > 0.005 {
		t.Fatalf("hierarchical trainer diverged from oracle: |%.4f - %.4f| = %.4f > 0.005",
			hpsAUC, refAUC, diff)
	}
}

// TestBatchedMatchesPerExample pins the batched hot path's arithmetic: with
// a single GPU and the sequential hook (no concurrent writers anywhere) the
// block pull -> offset-indexed in-place training -> block commit cycle is
// bit-for-bit the same computation as the per-example pull/push reference
// path, so the two runs must produce the *identical* AUC — not merely a
// close one.
func TestBatchedMatchesPerExample(t *testing.T) {
	data := testData()
	spec := testSpec()
	run := func(perExample bool) float64 {
		tr, err := New(Config{
			Spec:        spec,
			Data:        data,
			Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
			BatchSize:   128,
			Batches:     20,
			MaxInFlight: 1,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		tr.sequential = true
		tr.perExample = perExample
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return evalAUC(t, tr, dataset.NewGenerator(data, 999), 1500)
	}
	batched := run(false)
	perExample := run(true)
	t.Logf("batched AUC = %.6f, per-example AUC = %.6f", batched, perExample)
	if batched != perExample {
		t.Fatalf("batched path diverged from the per-example reference: %.9f != %.9f", batched, perExample)
	}
	if batched < 0.6 {
		t.Fatalf("both paths failed to learn (AUC %.4f)", batched)
	}
}

// TestMultiNodeMultiGPU drives the full distributed path: remote MEM-PS
// pulls, per-GPU concurrent workers, inter-node delta synchronization, and
// eviction pressure that exercises the SSD-PS.
func TestMultiNodeMultiGPU(t *testing.T) {
	data := testData()
	batches := 20
	if testing.Short() {
		batches = 8
	}
	tr := runTrainer(t, Config{
		Spec:        testSpec(),
		Data:        data,
		Topology:    cluster.Topology{Nodes: 2, GPUsPerNode: 2},
		BatchSize:   128,
		Batches:     batches,
		MaxInFlight: 2,
		// Cache levels far below the per-node working set force evictions
		// through to the SSD-PS.
		LRUEntries: 96,
		LFUEntries: 96,
		Seed:       3,
	})

	auc := evalAUC(t, tr, dataset.NewGenerator(data, 999), 1000)
	if auc < 0.62 {
		t.Fatalf("distributed trainer AUC = %.4f, want > 0.62", auc)
	}

	r := tr.Report()
	if r.Batches != int64(batches) || r.Examples != int64(2*batches*128) {
		t.Fatalf("report counts wrong: %+v", r)
	}
	if len(r.Tiers) != 3 {
		t.Fatalf("expected 3 tiers, got %d", len(r.Tiers))
	}
	for _, ti := range r.Tiers[:2] { // hbm-ps and mem-ps must both be hot
		if ti.Stats.Pulls == 0 || ti.Stats.Pushes == 0 {
			t.Fatalf("tier %s idle: %+v", ti.Name, ti.Stats)
		}
	}
	if r.SSD.Dumps == 0 {
		t.Fatal("cache pressure should have dumped parameters to the SSD-PS")
	}
	if r.CacheHitRate <= 0 {
		t.Fatal("cache hit rate should be positive on a zipfian stream")
	}
	if r.AllReduce <= 0 {
		t.Fatal("multi-GPU training must charge all-reduce time")
	}
	for _, s := range r.Stages {
		if s.Modelled <= 0 {
			t.Fatalf("stage %s has no modelled time", s.Name)
		}
	}
	if r.Throughput.ExamplesPerSecond() <= 0 {
		t.Fatal("throughput should be positive")
	}

	// Remote pulls must actually have crossed nodes.
	remote := int64(0)
	for _, n := range tr.nodes {
		remote += n.local.Stats().RemoteKeys
	}
	if remote == 0 {
		t.Fatal("two-node training must pull remote shards")
	}
}

// TestPipelineOverlap asserts the Section 3 property: with prefetching, the
// steady-state batch latency tracks the slowest stage, not the sum of all
// stages. Stage wall times are controlled via the stageDelay test hook.
func TestPipelineOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timing test")
	}
	delays := map[string]time.Duration{
		StageRead:  40 * time.Millisecond,
		StagePull:  15 * time.Millisecond,
		StageTrain: 15 * time.Millisecond,
		StagePush:  15 * time.Millisecond,
	}
	const batches = 8
	run := func(inFlight int) time.Duration {
		tr, err := New(Config{
			Spec:        testSpec(),
			Data:        testData(),
			BatchSize:   8, // tiny batches: the injected delays dominate
			Batches:     batches,
			MaxInFlight: inFlight,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.stageDelay = delays
		start := time.Now()
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	serial := run(1)
	overlapped := run(4)
	t.Logf("serial = %v, overlapped = %v", serial, overlapped)

	// Serial pays the sum of stages per batch (>= 85ms each); overlapped
	// steady state pays only the slowest stage (40ms) per batch after fill.
	slowest := delays[StageRead]
	if overlapped < time.Duration(batches-1)*slowest {
		t.Fatalf("overlapped run %v beat the slowest-stage bound %v: impossible",
			overlapped, time.Duration(batches-1)*slowest)
	}
	if overlapped >= serial*8/10 {
		t.Fatalf("pipeline did not overlap: overlapped %v vs serial %v", overlapped, serial)
	}
}

// TestFlushPersistsModel checks that Close materializes the model on the
// SSD-PS when the trainer runs over a caller-owned directory.
func TestFlushPersistsModel(t *testing.T) {
	dir := t.TempDir()
	tr, err := New(Config{
		Spec:      testSpec(),
		Data:      testData(),
		BatchSize: 64,
		Batches:   3,
		Dir:       dir,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	store := tr.nodes[0].store
	if store.Len() == 0 {
		t.Fatal("flush should persist trained parameters")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}
