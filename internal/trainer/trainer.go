// Package trainer composes the three parameter-server tiers into the paper's
// end-to-end hierarchical training system (Sections 3-6): training batches
// stream from HDFS, the MEM-PS of every node assembles and pins the batch's
// working parameters (pulling cold ones from its SSD-PS and remote ones from
// the other nodes), the HBM-PS loads the working set into the node's GPUs,
// per-GPU workers train with concurrent batched pull/push against the HBM-PS,
// and the collected updates are synchronized across nodes and merged back
// into the authoritative MEM-PS copies, which demote cold parameters to the
// SSD-PS as memory fills.
//
// The four batch phases — read, pull, train, push — run as the prefetch
// pipeline of Section 3 (internal/pipeline), so the steady-state batch
// latency is governed by the slowest stage. MaxInFlight bounds how many
// batches overlap: 1 reproduces the strict ordering of Algorithm 1 (and the
// accuracy oracle of Fig 3b), larger values buy throughput at the price of
// parameters at most MaxInFlight-1 batches stale, which is the trade the
// paper's pipeline makes.
//
// # The batched hot path
//
// Parameter movement is batched end to end: stagePull assembles each node's
// working set into a flat ps.ValueBlock (one row per unique key, no per-value
// map), stageTrain loads that block straight into the HBM-PS, and each GPU
// worker issues exactly one block pull and one block commit per mini-batch —
// it dedups its shard's keys, pulls them into a reused ValueBlock, indexes
// every example's features by row offset, applies the sparse optimizer to the
// block in place, and commits the accumulated result. All scratch (blocks,
// activations, gradients, offset buffers) is pool-recycled, so steady-state
// batches allocate close to nothing.
//
// # Dense-tower staleness
//
// The dense tower is replicated across GPUs and modelled by one shared
// network under a mutex. Workers take that lock once per micro-run of
// denseMicroRun examples rather than once per example; within a run the
// worker's examples see each other's dense updates exactly as before, but
// updates from other GPU workers become visible only at micro-run boundaries.
// A worker's dense replica is therefore at most denseMicroRun-1 examples
// stale with respect to its peers — the same bounded-staleness trade the
// batch pipeline already makes across batches, now applied within one. With a
// single GPU (or the sequential test hook) there is no concurrent writer and
// the semantics are bit-identical to per-example locking.
package trainer

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/hbmps"
	"hps/internal/hdfs"
	"hps/internal/hw"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/metrics"
	"hps/internal/model"
	"hps/internal/nn"
	"hps/internal/optimizer"
	"hps/internal/pipeline"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
	"hps/internal/tensor"
)

// Stage names of the 4-stage batch pipeline.
const (
	StageRead  = "read"
	StagePull  = "pull"
	StageTrain = "train"
	StagePush  = "push"
)

// Config configures the hierarchical trainer.
type Config struct {
	// Spec is the model being trained (embedding dim, dense tower, per-example
	// non-zeros). Required.
	Spec model.Spec
	// Data describes the training distribution; the zero value derives it
	// from Spec via dataset.ForModel.
	Data dataset.Config
	// Topology is the cluster shape. The zero value means 1 node x 1 GPU.
	Topology cluster.Topology
	// BatchSize is the per-node examples per batch (default 256).
	BatchSize int
	// Batches is the number of batches each node trains on. Required > 0.
	Batches int
	// MaxInFlight bounds how many batches may be in the pipeline at once.
	// 1 (the default) reproduces Algorithm 1's strict ordering; larger values
	// overlap the stages as in Section 3.
	MaxInFlight int
	// Profile describes each node's hardware; the zero value uses
	// hw.DefaultGPUNode.
	Profile hw.NodeProfile
	// SparseLR / DenseLR are the Adagrad learning rates (defaults 0.05/0.01,
	// matching internal/reference).
	SparseLR, DenseLR float32
	// LRUEntries / LFUEntries set each node's MEM-PS cache level capacities;
	// when zero they are derived from Profile.MainMemoryBytes.
	LRUEntries, LFUEntries int
	// ParamsPerFile is the SSD-PS file granularity (default 256).
	ParamsPerFile int
	// SSDThresholdBytes triggers SSD-PS compaction; 0 uses device capacity.
	SSDThresholdBytes int64
	// Dir is the root directory for the per-node SSD-PS devices; "" creates
	// (and owns) a temporary directory removed by Close.
	Dir string
	// Seed seeds model initialization and the per-node data streams.
	Seed int64
	// RemoteShards switches the trainer into multi-process mode: the MEM-PS
	// tier lives in separate shard-server processes, and RemoteShards maps
	// each shard id (== virtual node id) to the TCP address serving it. It
	// must have exactly Topology.Nodes entries. The driver keeps the data
	// streams, the GPUs and the dense tower; every parameter pull and push
	// crosses a real socket.
	RemoteShards map[int]string
	// RemoteRetry overrides the TCP transport's retry policy in
	// multi-process mode; the zero value keeps the default.
	RemoteRetry cluster.RetryPolicy
	// WirePrecision selects the on-wire embedding row encoding in
	// multi-process mode: "fp32" (the default, bit-exact), "fp16", or "int8"
	// (quantized, smaller frames, approximate values). Peers that did not
	// negotiate raw framing fall back to bit-exact gob frames regardless.
	WirePrecision string
	// QuantizePush additionally encodes push deltas at WirePrecision instead
	// of fp32 — the full-compression mode. Pull-side quantization error is
	// self-correcting (the next delta is computed against the values the
	// trainer actually loaded), while a quantized delta perturbs the
	// authoritative copies directly, so this is a separate opt-in; the
	// quantized-wire AUC-parity test gates both modes.
	QuantizePush bool
	// PullPipeline bounds how many block RPCs each node keeps in flight per
	// shard during the pull stage (multi-process mode). 1 (the default) issues
	// one RPC per owning shard; larger values split each shard's partition
	// into chunks pulled concurrently over multiple connections, overlapping
	// network wait with HBM working-set staging. Concurrent chunks can reach
	// the shard in either order, so the random initialization of
	// never-before-seen parameters is no longer bit-reproducible across runs
	// (it stays statistically identical); keep the default where exact
	// reproducibility matters.
	PullPipeline int
	// Serve activates the shard servers' online-serving tier (multi-process
	// mode only): the trainer publishes the peer address map and the dense
	// tower to every shard at startup, then republishes the dense parameters
	// after every push epoch so served scores track the training run with at
	// most one push epoch of staleness.
	Serve bool
	// CheckpointPath, when non-empty, is the manifest file the trainer's
	// durable driver-side state (dense tower, optimizer state, LRs, batch
	// cursor, shard state locations) is written to — atomically, on every
	// Flush and every CheckpointInterval batches. See checkpoint.go.
	CheckpointPath string
	// CheckpointInterval cuts a full checkpoint (shard flush + manifest)
	// every N completed batches; 0 checkpoints only on Flush/Close.
	CheckpointInterval int
	// ShardState optionally names each shard's durable-state directory for
	// the manifest (the driver passes the shard servers' -dir roots); when
	// empty the trainer derives it (local node dirs, or shard addresses).
	ShardState map[int]string
	// BatchPause inserts a wall-clock pause after each completed batch. It
	// exists for crash-restart drills (CI kills a shard mid-run and needs
	// the run to still be going) and staleness experiments; leave zero for
	// real training.
	BatchPause time.Duration
	// AutoTune arms the pipeline's runtime tuner: per-stage queue capacities
	// and the effective in-flight depth are re-derived from measured EWMA
	// stage times ("pre-set according to the execution time of each stage"),
	// always within the MaxInFlight ceiling. The run starts at a shallow
	// depth and deepens only when the measured stage times say the overlap
	// pays for its staleness.
	AutoTune bool
	// AsyncPush moves the apply half of the push stage onto a bounded
	// background committer: the pipeline token returns before the MEM-PS
	// round trip, buying throughput at the price of parameters up to
	// depth-1+PushLag batches stale. Flush/checkpoint/Close drain the
	// committer first, so durability and restore semantics are unchanged.
	AsyncPush bool
	// PushLag bounds how many pushes may be outstanding in the background
	// committer (default 2). Only meaningful with AsyncPush.
	PushLag int
}

func (c Config) withDefaults() Config {
	if c.Topology.Nodes == 0 && c.Topology.GPUsPerNode == 0 {
		c.Topology = cluster.Topology{Nodes: 1, GPUsPerNode: 1}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1
	}
	if c.Profile.GPU.FLOPS == 0 {
		c.Profile = hw.DefaultGPUNode()
	}
	if c.SparseLR <= 0 {
		c.SparseLR = 0.05
	}
	if c.DenseLR <= 0 {
		c.DenseLR = 0.01
	}
	if c.ParamsPerFile <= 0 {
		c.ParamsPerFile = 256
	}
	if c.PullPipeline <= 0 {
		c.PullPipeline = 1
	}
	if c.PushLag <= 0 {
		c.PushLag = 2
	}
	if c.Data.NumFeatures == 0 {
		c.Data = dataset.ForModel(c.Spec.SparseParams, c.Spec.NonZerosPerExample)
	}
	return c
}

// node bundles the per-node pieces of the hierarchy. In multi-process mode
// the MEM-PS/SSD-PS pieces live in a shard-server process, so dev, store and
// local are nil and mem is the RPC-backed view.
type node struct {
	id     int
	gen    *dataset.Generator
	stream *hdfs.Stream
	dev    *blockio.Device
	store  *ssdps.Store
	local  *memps.MemPS
	mem    memService
	hbm    *hbmps.HBMPS
}

// nodeBatch carries one node's view of a batch through the pipeline.
type nodeBatch struct {
	batch *dataset.Batch
	ws    *memps.WorkingSet
	// block holds the working-set values (flat rows, sorted unique-key
	// order) between the pull and train stages; it is returned to the block
	// pool as soon as the HBM-PS has loaded it.
	block *ps.ValueBlock
	// deltas holds the node's collected update deltas (flat rows, changed
	// keys only, in working-set order) between the train and push stages;
	// pooled like block.
	deltas *ps.ValueBlock
}

// job is one batch index flowing through the pipeline (all nodes process
// their own batch of that index in parallel, as in data-parallel training).
type job struct {
	index int
	nodes []*nodeBatch
}

// Trainer is the end-to-end hierarchical training system.
type Trainer struct {
	cfg       Config
	clock     *simtime.Clock
	fabric    *interconnect.Fabric
	transport *cluster.LocalTransport
	nodes     []*node

	// Multi-process mode: the shared TCP transport to the shard servers and
	// the real-network accounting, nil for in-process runs.
	remote    *cluster.TCPTransport
	remoteNet *remoteNet

	// The dense tower is replicated on every GPU and kept in sync by a
	// per-example all-reduce; the replication is modelled by a single shared
	// network updated under a mutex.
	denseMu    sync.Mutex
	net        *nn.Network
	denseState *nn.DenseState
	denseOpt   optimizer.Dense
	sparseOpt  optimizer.Sparse
	evalActs   *nn.Activations

	pipe *pipeline.Pipeline[*job]

	// stageDelay injects an artificial wall-clock delay per stage; it is a
	// test hook for exercising pipeline overlap with controlled timings.
	stageDelay map[string]time.Duration

	// sequential makes eachNode visit nodes in order instead of
	// concurrently; a test hook that removes scheduling nondeterminism (the
	// interleaving of per-node dense updates and parameter creation) so
	// equivalence tests can compare two runs at a tight tolerance.
	sequential bool

	// perExample switches trainShard to the pre-batching reference
	// implementation (per-example pulls and gradient pushes); a test hook
	// used to assert the batched path reproduces it exactly.
	perExample bool

	// scratch pools per-GPU-worker training buffers (activations, gradients,
	// offset/stamp scratch) across shards and batches.
	scratch sync.Pool

	// denseFlat is the reused dense-parameter flatten buffer for serving
	// republish; only the republish path — stagePush (single pipeline
	// goroutine) in synchronous mode, the committer goroutine in async-push
	// mode, exactly one of which is active — and New touch it.
	denseFlat []float32

	// committer is the bounded background push committer, nil unless
	// cfg.AsyncPush.
	committer *pushCommitter

	// trainedEpoch is the trained-batch watermark (index of the last batch
	// through stageTrain + 1); it rides on ServeConfig so the serving tier
	// can report how far its parameters trail training.
	trainedEpoch atomic.Uint64

	// mergeScratch reuses the delta-merge state across batches; it is only
	// touched by stagePush, which the pipeline runs on a single goroutine.
	mergeScratch struct {
		blocks  []*ps.ValueBlock
		cursors []int
		// Fused two-node push: per-owner merged keys with each key's source
		// row in either delta block (-1 when that node did not touch it).
		pairKeys [2][]keys.Key
		pairA    [2][]int32
		pairB    [2][]int32
	}

	mu            sync.Mutex
	stageModelled map[string]time.Duration
	allReduce     time.Duration
	loss          metrics.LogLossAccumulator
	examples      int64
	batchesDone   int64
	// restored is the batch cursor loaded by Restore: Run trains only the
	// remaining cfg.Batches - restored batches, with job indices (and thus
	// serve epochs) continuing where the checkpointed run stopped.
	restored int

	tmpDir  string
	ownsDir bool
	closed  bool
}

// New builds the full hierarchy for the configured topology. Call Close to
// flush the MEM-PS tiers and release the SSD-PS directories.
func New(cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec.EmbeddingDim <= 0 {
		return nil, fmt.Errorf("trainer: model spec has no embedding dimension")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Data.Validate(); err != nil {
		return nil, err
	}
	dim := cfg.Spec.EmbeddingDim
	remoteMode := len(cfg.RemoteShards) > 0
	if remoteMode {
		if cfg.Topology.Members == nil && len(cfg.RemoteShards) != cfg.Topology.Nodes {
			return nil, fmt.Errorf("trainer: %d remote shards for %d nodes (need one per node)",
				len(cfg.RemoteShards), cfg.Topology.Nodes)
		}
		for _, id := range cfg.Topology.MemberIDs() {
			if _, ok := cfg.RemoteShards[id]; !ok {
				return nil, fmt.Errorf("trainer: no remote shard address for member %d", id)
			}
		}
	}

	dir := cfg.Dir
	ownsDir := false
	if dir == "" && !remoteMode { // remote mode has no local SSD-PS state
		d, err := os.MkdirTemp("", "hps-trainer-*")
		if err != nil {
			return nil, fmt.Errorf("trainer: temp dir: %w", err)
		}
		dir, ownsDir = d, true
	}

	clock := simtime.NewClock()
	t := &Trainer{
		cfg:           cfg,
		clock:         clock,
		fabric:        interconnect.NewFabric(cfg.Profile, clock),
		transport:     cluster.NewLocalTransport(dim),
		denseOpt:      optimizer.Adagrad{LR: cfg.DenseLR, InitialAccumulator: 0.1},
		sparseOpt:     optimizer.Adagrad{LR: cfg.SparseLR, InitialAccumulator: 0.1},
		stageModelled: make(map[string]time.Duration),
		tmpDir:        dir,
		ownsDir:       ownsDir,
	}
	t.net = nn.New(nn.Config{InputDim: dim, Hidden: cfg.Spec.HiddenLayers, Seed: cfg.Seed})
	t.denseState = t.net.NewDenseState(t.denseOpt)
	t.evalActs = t.net.NewActivations()
	t.scratch.New = func() any {
		return &shardScratch{acts: t.net.NewActivations(), grads: t.net.NewGradients()}
	}

	if remoteMode {
		t.remote = cluster.NewTCPTransport(cfg.RemoteShards, dim)
		if cfg.RemoteRetry.Attempts > 0 {
			t.remote.SetRetryPolicy(cfg.RemoteRetry)
		}
		prec, err := ps.ParsePrecision(cfg.WirePrecision)
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		t.remote.SetWirePrecision(prec)
		t.remote.SetPushQuantization(cfg.QuantizePush)
		if cfg.PullPipeline > 1 {
			t.remote.SetMaxConnsPerPeer(cfg.PullPipeline)
			t.remote.SetMaxInFlightRPCs(cfg.PullPipeline * cfg.Topology.Nodes)
		}
		t.remoteNet = &remoteNet{}
	}
	cleanup := func() {
		if ownsDir {
			os.RemoveAll(dir)
		}
	}
	for id := 0; id < cfg.Topology.Nodes; id++ {
		n, err := t.buildNode(id, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		t.nodes = append(t.nodes, n)
		if n.local != nil {
			t.transport.Register(id, n.local)
		}
	}
	if cfg.Serve {
		if t.remote == nil {
			cleanup()
			return nil, fmt.Errorf("trainer: Serve requires multi-process mode (RemoteShards)")
		}
		// Activate the serving tier: the first (and only full) ServeConfig
		// carries the peer address map — so each shard can read remote-owned
		// embeddings on replica-cache misses — plus the initial dense tower.
		// Failing here is deliberate: a shard that cannot serve should fail
		// the run at startup, not at first query.
		t.denseFlat = t.net.FlattenParams(t.denseFlat[:0])
		scfg := cluster.ServeConfig{Addrs: cfg.RemoteShards, Dense: t.denseFlat, Epoch: 0}
		for _, id := range cfg.Topology.MemberIDs() {
			if err := t.remote.PublishServeConfig(id, scfg); err != nil {
				cleanup()
				return nil, fmt.Errorf("trainer: activate serving on shard %d: %w", id, err)
			}
		}
	}
	if cfg.AsyncPush {
		t.committer = newPushCommitter(t, cfg.PushLag)
	}
	return t, nil
}

func (t *Trainer) buildNode(id int, root string) (*node, error) {
	cfg := t.cfg
	var (
		dev   *blockio.Device
		store *ssdps.Store
		local *memps.MemPS
		mem   memService
		err   error
	)
	if t.remote != nil {
		// Multi-process mode: the MEM-PS/SSD-PS of this node live in the
		// shard-server process; this node only keeps the RPC-backed view.
		mem = &remoteMem{transport: t.remote, node: id, dim: cfg.Spec.EmbeddingDim, topo: cfg.Topology,
			net: t.remoteNet, vnodes: cfg.Topology.Nodes, pipeline: cfg.PullPipeline}
	} else {
		dev, err = blockio.NewDevice(filepath.Join(root, fmt.Sprintf("node-%d", id)), cfg.Profile.SSD, t.clock)
		if err != nil {
			return nil, fmt.Errorf("trainer: node %d device: %w", id, err)
		}
		store, err = ssdps.Open(dev, ssdps.Config{
			Dim:                     cfg.Spec.EmbeddingDim,
			ParamsPerFile:           cfg.ParamsPerFile,
			DiskUsageThresholdBytes: cfg.SSDThresholdBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("trainer: node %d ssd-ps: %w", id, err)
		}
		var transport cluster.Transport
		if cfg.Topology.Nodes > 1 {
			transport = t.transport
		}
		local, err = memps.New(memps.Config{
			NodeID:            id,
			Dim:               cfg.Spec.EmbeddingDim,
			Topology:          cfg.Topology,
			Transport:         transport,
			Store:             store,
			Fabric:            t.fabric,
			Clock:             t.clock,
			MemoryBudgetBytes: cfg.Profile.MainMemoryBytes,
			LRUEntries:        cfg.LRUEntries,
			LFUEntries:        cfg.LFUEntries,
			Seed:              cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("trainer: node %d mem-ps: %w", id, err)
		}
		mem = local
	}
	hbm, err := hbmps.New(hbmps.Config{
		NodeID:     id,
		NumGPUs:    cfg.Topology.GPUsPerNode,
		Dim:        cfg.Spec.EmbeddingDim,
		GPUProfile: cfg.Profile.GPU,
		NVLink:     cfg.Profile.NVLink,
		Fabric:     t.fabric,
		Clock:      t.clock,
	})
	if err != nil {
		return nil, fmt.Errorf("trainer: node %d hbm-ps: %w", id, err)
	}
	// Every node streams its own shard of the click log: distinct seeds give
	// distinct (but identically distributed) example streams. Node 0 uses the
	// base seed so a single-node trainer sees exactly the stream the
	// reference oracle trains on.
	gen := dataset.NewGenerator(cfg.Data, cfg.Seed+int64(id)*7919)
	stream := hdfs.NewStream(gen, hdfs.Config{
		BatchSize:  cfg.BatchSize,
		MaxBatches: cfg.Batches,
		Profile:    cfg.Profile.HDFS,
		Clock:      t.clock,
	})
	return &node{id: id, gen: gen, stream: stream, dev: dev, store: store, local: local, mem: mem, hbm: hbm}, nil
}

// eachNode runs fn for every node concurrently and returns the first error.
func (t *Trainer) eachNode(fn func(n *node) error) error {
	if len(t.nodes) == 1 || t.sequential {
		for _, n := range t.nodes {
			if err := fn(n); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(t.nodes))
	var wg sync.WaitGroup
	for i, n := range t.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (t *Trainer) addStageModelled(stage string, d time.Duration) {
	t.mu.Lock()
	t.stageModelled[stage] += d
	t.mu.Unlock()
}

func (t *Trainer) maybeDelay(stage string) {
	if d := t.stageDelay[stage]; d > 0 {
		time.Sleep(d)
	}
}

// Run trains cfg.Batches batches through the 4-stage pipeline. It can be
// called once.
func (t *Trainer) Run(ctx context.Context) error {
	if t.cfg.Batches <= 0 {
		return fmt.Errorf("trainer: Batches must be positive, have %d", t.cfg.Batches)
	}
	// The depth gate bounds pipeline occupancy: the source acquires one slot
	// per batch and the sink releases it, so at most `limit` batches are in
	// flight and the parameters a batch trains on are at most limit-1 batches
	// stale. At limit 1 the pipeline degenerates to Algorithm 1's strict
	// sequential ordering. With AutoTune the limit starts shallow (depth 2:
	// enough overlap to measure the stages) and tracks the tuner's suggestion
	// within the MaxInFlight ceiling; otherwise it is pinned at MaxInFlight.
	initialDepth := t.cfg.MaxInFlight
	if t.cfg.AutoTune {
		initialDepth = min(2, t.cfg.MaxInFlight)
	}
	gate := newDepthGate(initialDepth)
	var gateWatch sync.Once

	// A restored run's committed watermark starts at the restore cursor, not
	// zero, so the staleness accounting (job index minus committed) measures
	// this run's lag rather than the checkpoint's age.
	if t.committer != nil {
		t.committer.committed.Store(int64(t.restored))
	}

	// A restored run trains only the batches the checkpoint does not cover;
	// job indices continue from the cursor so serve epochs stay monotonic.
	remaining := t.cfg.Batches - t.restored
	if remaining <= 0 {
		return nil // the checkpoint already covers the whole run
	}
	next := 0
	source := func(ctx context.Context) (*job, bool, error) {
		// The gate waits on a cond, not a channel, so a watcher converts the
		// pipeline's cancellation into a broadcast. It must watch the ctx the
		// pipeline passes in (its internal run context, cancelled on stage
		// errors too), not the caller's.
		gateWatch.Do(func() {
			go func() {
				<-ctx.Done()
				gate.mu.Lock()
				gate.cond.Broadcast()
				gate.mu.Unlock()
			}()
		})
		if next >= remaining {
			return nil, false, nil
		}
		if err := gate.acquire(ctx); err != nil {
			return nil, false, err
		}
		j := &job{index: next + t.restored, nodes: make([]*nodeBatch, len(t.nodes))}
		next++
		return j, true, nil
	}
	sink := func(ctx context.Context, j *job) error {
		gate.release()
		if t.cfg.AutoTune {
			if d := t.pipe.TunerState().InFlight; d > 0 {
				gate.setLimit(min(d, t.cfg.MaxInFlight))
			}
		}
		t.mu.Lock()
		t.batchesDone++
		done := t.batchesDone
		for _, nb := range j.nodes {
			t.examples += int64(nb.batch.Len())
		}
		t.mu.Unlock()
		if iv := int64(t.cfg.CheckpointInterval); iv > 0 && t.cfg.CheckpointPath != "" && done%iv == 0 {
			// Periodic durability point: flush every shard, then publish the
			// manifest. Batches still in the pipeline re-train after a
			// restore from this cut (see checkpoint.go).
			if err := t.Flush(); err != nil {
				return fmt.Errorf("trainer: checkpoint at batch %d: %w", done, err)
			}
		}
		if t.cfg.BatchPause > 0 {
			select {
			case <-time.After(t.cfg.BatchPause):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}

	t.pipe = pipeline.New(
		pipeline.Stage[*job]{Name: StageRead, QueueSize: 1, Fn: t.stageRead},
		pipeline.Stage[*job]{Name: StagePull, QueueSize: 1, Fn: t.stagePull},
		pipeline.Stage[*job]{Name: StageTrain, QueueSize: 1, Fn: t.stageTrain},
		pipeline.Stage[*job]{Name: StagePush, QueueSize: 1, Fn: t.stagePush},
	)
	if t.cfg.AutoTune {
		t.pipe.AutoTune(pipeline.TunerConfig{
			MaxQueue:    t.cfg.MaxInFlight,
			MaxInFlight: t.cfg.MaxInFlight,
		})
	}
	err := t.pipe.Run(ctx, source, sink)
	if t.committer != nil {
		// Settle the committer before returning — on errors too, so a caller
		// that evaluates or checkpoints after a failed run still sees every
		// acked push applied.
		if derr := t.committer.drain(); err == nil {
			err = derr
		}
	}
	return err
}

// stageRead streams every node's batch of this index from HDFS.
func (t *Trainer) stageRead(_ context.Context, j *job) (*job, error) {
	t.maybeDelay(StageRead)
	var mu sync.Mutex
	var modelled time.Duration
	err := t.eachNode(func(n *node) error {
		b, err := n.stream.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return fmt.Errorf("trainer: node %d stream exhausted at batch %d", n.id, j.index)
		}
		j.nodes[n.id] = &nodeBatch{batch: b}
		d := t.cfg.Profile.HDFS.ReadTime(b.ByteSize())
		mu.Lock()
		if d > modelled {
			modelled = d // nodes stream in parallel; the job pays the slowest
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addStageModelled(StageRead, modelled)
	return j, nil
}

// stagePull has every node's MEM-PS assemble and pin the batch's working
// parameters (Algorithm 1 lines 3-4): cache hits from memory, misses from
// the SSD-PS, remote shards from the owning nodes.
func (t *Trainer) stagePull(_ context.Context, j *job) (*job, error) {
	t.maybeDelay(StagePull)
	var mu sync.Mutex
	var modelled time.Duration
	err := t.eachNode(func(n *node) error {
		nb := j.nodes[n.id]
		blk := ps.GetBlock(t.cfg.Spec.EmbeddingDim, nil)
		// Stage the HBM partition of the batch's key set while the values are
		// still in flight from the MEM-PS: stageTrain's LoadBlock adopts the
		// buckets instead of re-partitioning after the pull. Only the
		// multi-process path overlaps — it genuinely waits on sockets; the
		// in-process pull is pure CPU, so a staging goroutine would just add
		// scheduling overhead.
		ks := nb.batch.Keys()
		var staged chan struct{}
		if t.remote != nil {
			staged = make(chan struct{})
			go func() {
				n.hbm.StagePartition(ks)
				close(staged)
			}()
		}
		ws, err := n.mem.PrepareInto(ks, blk)
		if staged != nil {
			<-staged
		}
		if err != nil {
			ps.PutBlock(blk)
			return err
		}
		nb.ws, nb.block = ws, blk
		d := ws.Stats.LocalTime
		if ws.Stats.RemoteTime > d {
			d = ws.Stats.RemoteTime
		}
		mu.Lock()
		if d > modelled {
			modelled = d
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addStageModelled(StagePull, modelled)
	return j, nil
}

// stageTrain loads every node's working set into its HBM-PS, trains the
// batch with one concurrent worker per GPU (each pulling and pushing its
// shard against the HBM-PS), and collects the per-node update deltas.
func (t *Trainer) stageTrain(_ context.Context, j *job) (*job, error) {
	t.maybeDelay(StageTrain)
	if t.committer != nil {
		// Record the realized staleness of the parameters this batch pulled:
		// how many older batches trained without their push applied yet.
		t.committer.observeTrain(j.index)
	}
	var mu sync.Mutex
	var modelled time.Duration
	err := t.eachNode(func(n *node) error {
		nb := j.nodes[n.id]
		before := n.hbm.Stats()
		if err := n.hbm.LoadBlock(nb.block); err != nil {
			return err
		}
		// The HBM-PS copied the values; recycle the block for later batches.
		ps.PutBlock(nb.block)
		nb.block = nil
		if err := t.trainOnGPUs(n, nb.batch); err != nil {
			return err
		}
		nb.deltas = ps.GetBlock(t.cfg.Spec.EmbeddingDim, nil)
		n.hbm.CollectBlock(nb.deltas)
		if _, err := n.hbm.Evict(nil); err != nil { // release HBM for the next batch
			return err
		}
		after := n.hbm.Stats()

		// The dense tower trains on the GPUs in parallel with the sparse
		// pulls; charge its modelled compute time per GPU.
		flopsPerGPU := t.net.FLOPsPerExample() * float64(nb.batch.Len()) / float64(len(n.hbm.Devices()))
		var computeTime time.Duration
		for _, dev := range n.hbm.Devices() {
			dev.ChargeCompute(flopsPerGPU)
			if ct := dev.Profile().ComputeTime(flopsPerGPU); ct > computeTime {
				computeTime = ct
			}
		}
		d := (after.LoadTime - before.LoadTime) +
			(after.PullTime - before.PullTime) +
			(after.PushTime - before.PushTime) + computeTime
		mu.Lock()
		if d > modelled {
			modelled = d
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addStageModelled(StageTrain, modelled)
	// Advance the trained-batch watermark (stageTrain runs on a single
	// pipeline goroutine with monotonic indices).
	t.trainedEpoch.Store(uint64(j.index) + 1)
	return j, nil
}

// trainOnGPUs shards the batch across the node's GPUs and trains each shard
// on its own worker goroutine: pull the example's embeddings from the
// HBM-PS, run the dense tower, push the sparse gradients back (Algorithm 1
// lines 11-15).
func (t *Trainer) trainOnGPUs(n *node, b *dataset.Batch) error {
	numGPUs := n.hbm.NumGPUs()
	shards := b.Shard(numGPUs)
	errs := make([]error, numGPUs)
	var wg sync.WaitGroup
	for g := 0; g < numGPUs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = t.trainShard(n, g, shards[g])
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// denseMicroRun is how many examples a GPU worker trains per dense-tower
// lock hold; see the package comment's staleness discussion.
const denseMicroRun = 32

// shardScratch is one GPU worker's pooled training state: the dense buffers
// plus the offset/stamp scratch of the batched sparse path. Pooled on
// Trainer.scratch, so steady-state shards allocate nothing.
type shardScratch struct {
	acts  *nn.Activations
	grads *nn.Gradients
	vecs  [][]float32
	offs  []int32
	keys  []keys.Key
	// stamp[row] == ver marks rows already updated by the current example,
	// deduplicating repeated features within one example exactly like the
	// per-example path's gradient map did.
	stamp []uint32
	ver   uint32
}

// trainShard trains one GPU worker's mini-batch with batched parameter
// movement: one block pull of the shard's unique keys, offset-indexed
// training against the block (applying the sparse optimizer in place, example
// by example), and one block commit — in place of a pull and a gradient push
// per example. With a single shard the arithmetic is bit-identical to the
// per-example reference path (see CommitBlock); across concurrent shards the
// per-key contributions combine additively rather than interleaving through
// the shared tables.
func (t *Trainer) trainShard(n *node, gpuID int, shard *dataset.Batch) error {
	if shard.Len() == 0 {
		return nil
	}
	if t.perExample {
		return t.trainShardPerExample(n, gpuID, shard)
	}
	sc := t.scratch.Get().(*shardScratch)
	defer t.scratch.Put(sc)

	// The shard's unique key set, sorted: row offsets are binary searches.
	// Dedup sorts the concatenated features in place inside the reused
	// scratch slice — no copy is taken, and pre-sorted input skips the sort.
	kb := sc.keys[:0]
	for i := range shard.Examples {
		kb = append(kb, shard.Examples[i].Features...)
	}
	uniq := keys.Dedup(kb)
	sc.keys = uniq

	dim := t.cfg.Spec.EmbeddingDim
	work := ps.GetBlock(dim, uniq)
	defer ps.PutBlock(work)
	if err := n.hbm.PullInto(ps.PullRequest{Shard: gpuID, Keys: uniq}, work); err != nil {
		return err
	}
	orig := ps.GetBlock(dim, uniq)
	defer ps.PutBlock(orig)
	orig.CopyFrom(work)

	if cap(sc.stamp) < len(uniq) {
		sc.stamp = make([]uint32, len(uniq))
	} else {
		sc.stamp = sc.stamp[:len(uniq)]
	}

	examples := shard.Examples
	for start := 0; start < len(examples); start += denseMicroRun {
		end := min(start+denseMicroRun, len(examples))
		// One lock hold per micro-run: the dense replica syncs with other
		// workers at run boundaries (package comment, "Dense-tower
		// staleness").
		t.denseMu.Lock()
		for e := start; e < end; e++ {
			ex := &examples[e]
			sc.vecs = sc.vecs[:0]
			sc.offs = sc.offs[:0]
			for _, k := range ex.Features {
				row, _ := work.Row(k) // every feature is in the shard's key set
				off := int32(row)
				sc.offs = append(sc.offs, off)
				sc.vecs = append(sc.vecs, work.WeightsRow(int(off)))
			}
			nn.PoolSum(sc.acts.Input(), sc.vecs)
			pred := t.net.Forward(sc.acts)
			sc.grads.Zero()
			inputGrad := t.net.Backward(sc.acts, pred, ex.Label, sc.grads)
			t.net.Apply(t.denseOpt, t.denseState, sc.grads)
			t.loss.Add(float64(pred), float64(ex.Label))

			// With sum pooling every referenced feature receives the input
			// gradient; apply the sparse optimizer to the block in place so
			// later examples of this shard see the update, exactly like the
			// per-example path reading back from the tables. The sparse loop
			// deliberately stays inside the denseMu hold even though it only
			// touches the worker-private block: the next example's gather
			// must observe it for bit-parity with the reference path, and it
			// is small next to the dense forward/backward it rides with.
			sc.ver++
			if sc.ver == 0 { // stamp wrapped: reset the epoch space
				for i := range sc.stamp {
					sc.stamp[i] = 0
				}
				sc.ver = 1
			}
			for _, off := range sc.offs {
				if sc.stamp[off] == sc.ver {
					continue // repeated feature within the example
				}
				sc.stamp[off] = sc.ver
				t.sparseOpt.ApplySparse(work.WeightsRow(int(off)), work.G2Row(int(off)), inputGrad)
				work.Freq[off]++
			}
		}
		t.denseMu.Unlock()
	}
	return n.hbm.CommitBlock(gpuID, orig, work)
}

// trainShardPerExample is the pre-batching reference implementation: pull
// the example's embeddings, train, push the gradients — per example. It is
// kept (behind the perExample hook) so tests can assert the batched path
// reproduces it exactly.
func (t *Trainer) trainShardPerExample(n *node, gpuID int, shard *dataset.Batch) error {
	acts := t.net.NewActivations()
	grads := t.net.NewGradients()
	vecs := make([][]float32, 0, t.cfg.Data.NonZerosPerExample)
	for _, ex := range shard.Examples {
		values, err := n.hbm.Pull(ps.PullRequest{Shard: gpuID, Keys: ex.Features})
		if err != nil {
			return err
		}
		vecs = vecs[:0]
		for _, k := range ex.Features {
			vecs = append(vecs, values[k].Weights)
		}

		// The dense tower is replicated across GPUs and synchronized per
		// example; the shared network under a mutex models that.
		t.denseMu.Lock()
		nn.PoolSum(acts.Input(), vecs)
		pred := t.net.Forward(acts)
		grads.Zero()
		inputGrad := t.net.Backward(acts, pred, ex.Label, grads)
		t.net.Apply(t.denseOpt, t.denseState, grads)
		t.denseMu.Unlock()
		t.loss.Add(float64(pred), float64(ex.Label))

		// With sum pooling every referenced feature receives the input
		// gradient; the HBM-PS owners apply the sparse optimizer in place.
		sparse := make(map[keys.Key][]float32, len(ex.Features))
		for _, k := range ex.Features {
			sparse[k] = inputGrad
		}
		if err := n.hbm.PushGrads(gpuID, sparse, t.sparseOpt); err != nil {
			return err
		}
	}
	return nil
}

// sumDeltaBlocks merges the per-node delta blocks — sorted unique keys, all
// rows present — into dst by sorted-key union, summing coincident rows
// slab-wise with the unrolled tensor kernels. Contributions for a shared key
// combine in node order, exactly like the map-based merge this replaces.
func sumDeltaBlocks(dst *ps.ValueBlock, dim int, blocks []*ps.ValueBlock, cursors []int) {
	dst.Reset(dim, nil)
	total := 0
	for bi, b := range blocks {
		total += b.Len()
		cursors[bi] = 0
	}
	dst.Grow(total)
	if len(blocks) == 2 {
		sumDeltaBlocks2(dst, blocks[0], blocks[1])
		return
	}
	for {
		var best keys.Key
		found := false
		for bi, b := range blocks {
			if cursors[bi] < b.Len() {
				if k := b.Keys[cursors[bi]]; !found || k < best {
					best, found = k, true
				}
			}
		}
		if !found {
			return
		}
		row := dst.GrowRow(best)
		dw, dg := dst.WeightsRow(row), dst.G2Row(row)
		for bi, b := range blocks {
			if i := cursors[bi]; i < b.Len() && b.Keys[i] == best {
				tensor.Add(b.WeightsRow(i), dw)
				tensor.Add(b.G2Row(i), dg)
				dst.Freq[row] += b.Freq[i]
				cursors[bi]++
			}
		}
	}
}

// sumDeltaBlocks2 is the two-contributor fast path of sumDeltaBlocks: a
// straight two-cursor merge. Runs of keys only one node touched are copied
// slab-wise in one shot; the add kernel runs only for keys both nodes
// updated. The generic loop above pays a per-key contributor scan and a
// zero-fill-plus-two-adds even for exclusive keys, which dominates the push
// stage once everything around it is batched.
func sumDeltaBlocks2(dst *ps.ValueBlock, a, b *ps.ValueBlock) {
	i, j := 0, 0
	an, bn := a.Len(), b.Len()
	for i < an && j < bn {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka < kb:
			run := i
			for i++; i < an && a.Keys[i] < kb; i++ {
			}
			dst.AppendRows(a, run, i)
		case kb < ka:
			run := j
			for j++; j < bn && b.Keys[j] < ka; j++ {
			}
			dst.AppendRows(b, run, j)
		default:
			row := dst.GrowRowUninit(ka)
			dw, dg := dst.WeightsRow(row), dst.G2Row(row)
			copy(dw, a.WeightsRow(i))
			copy(dg, a.G2Row(i))
			tensor.Add(b.WeightsRow(j), dw)
			tensor.Add(b.G2Row(j), dg)
			dst.Freq[row] = a.Freq[i] + b.Freq[j]
			i++
			j++
		}
	}
	dst.AppendRows(a, i, an)
	dst.AppendRows(b, j, bn)
}

// mergePairParts merges the two nodes' sorted delta blocks key-wise and
// partitions the result by owning node into mergeScratch: per owner, the
// merged keys plus each key's source row in either block (-1 when that node
// did not touch it) — the inputs MemPS.PushBlockPair applies without a
// materialized global block. One scan serves both shards, replacing two
// per-shard ownership scans and the merged-slab copies. It returns the
// merged row count (for the all-reduce charge).
func (t *Trainer) mergePairParts(a, b *ps.ValueBlock) int {
	s := &t.mergeScratch
	for o := range s.pairKeys {
		s.pairKeys[o] = s.pairKeys[o][:0]
		s.pairA[o] = s.pairA[o][:0]
		s.pairB[o] = s.pairB[o][:0]
	}
	topo := t.cfg.Topology
	emit := func(k keys.Key, ai, bi int32) {
		o := topo.NodeOf(k)
		s.pairKeys[o] = append(s.pairKeys[o], k)
		s.pairA[o] = append(s.pairA[o], ai)
		s.pairB[o] = append(s.pairB[o], bi)
	}
	an, bn := a.Len(), b.Len()
	i, j := 0, 0
	for i < an && j < bn {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka < kb:
			if a.Present[i] {
				emit(ka, int32(i), -1)
			}
			i++
		case kb < ka:
			if b.Present[j] {
				emit(kb, -1, int32(j))
			}
			j++
		default:
			if a.Present[i] || b.Present[j] {
				ai, bi := int32(i), int32(j)
				if !a.Present[i] {
					ai = -1
				}
				if !b.Present[j] {
					bi = -1
				}
				emit(ka, ai, bi)
			}
			i++
			j++
		}
	}
	for ; i < an; i++ {
		if a.Present[i] {
			emit(a.Keys[i], int32(i), -1)
		}
	}
	for ; j < bn; j++ {
		if b.Present[j] {
			emit(b.Keys[j], -1, int32(j))
		}
	}
	return len(s.pairKeys[0]) + len(s.pairKeys[1])
}

// stagePush synchronizes the per-node deltas (the hierarchical all-reduce of
// Appendix C.3), merges them into the owning MEM-PS shards, and completes
// the batch (unpin, dump evictions, compact — Algorithm 1 lines 16-18). The
// whole stage is block-native: the per-node delta blocks are summed slab-wise
// into one global block, the modelled all-reduce is charged from its byte
// size, and each MEM-PS applies it through one PushBlock (one flat wire frame
// per owned shard partition in multi-process mode) — no per-key value
// allocation anywhere on the path.
func (t *Trainer) stagePush(ctx context.Context, j *job) (*job, error) {
	t.maybeDelay(StagePush)
	dim := t.cfg.Spec.EmbeddingDim

	// Sum the deltas of all nodes: the inter-node synchronization delivers
	// every delta everywhere, and each owner applies the global sum once. The
	// two-node in-process case skips the materialized merge entirely — each
	// MEM-PS sums the pair on the fly in PushBlockPair — so only the merged
	// row count (for the all-reduce charge) is computed here. Async push
	// always materializes the merge: the committer needs an owned block that
	// outlives this stage, while the fused pair path reads the per-node delta
	// blocks and per-batch pair scratch in place.
	fused := t.committer == nil && t.remote == nil && len(t.nodes) == 2
	var global *ps.ValueBlock
	mergedRows := 0
	if fused {
		mergedRows = t.mergePairParts(j.nodes[0].deltas, j.nodes[1].deltas)
	} else {
		global = j.nodes[0].deltas
		if len(t.nodes) > 1 {
			global = ps.GetBlock(dim, nil)
			t.mergeScratch.blocks = t.mergeScratch.blocks[:0]
			for _, nb := range j.nodes {
				t.mergeScratch.blocks = append(t.mergeScratch.blocks, nb.deltas)
			}
			if cap(t.mergeScratch.cursors) < len(t.nodes) {
				t.mergeScratch.cursors = make([]int, len(t.nodes))
			}
			sumDeltaBlocks(global, dim, t.mergeScratch.blocks, t.mergeScratch.cursors[:len(t.nodes)])
		}
		mergedRows = global.Len()
	}

	// Charge the modelled all-reduce: every GPU contributes its partition of
	// the deltas, inter-node rounds over RDMA, intra-node rounds over NVLink.
	// The volume is the global block's payload size (every row is a changed
	// key, so rows x encoded-row-size is exactly what the synchronization
	// moves). The charge stays on this stage even in async mode — the
	// synchronization itself is not deferred, only the MEM-PS apply.
	var syncTime time.Duration
	totalGPUs := t.cfg.Topology.TotalGPUs()
	if totalGPUs > 1 {
		deltaBytes := int64(mergedRows) * int64(8+embedding.EncodedSize(dim))
		bytesPerGPU := deltaBytes / int64(totalGPUs)
		syncTime = interconnect.HierarchicalAllReduceTime(
			bytesPerGPU, t.cfg.Topology.Nodes, t.cfg.Topology.GPUsPerNode,
			t.cfg.Profile.RDMA, t.cfg.Profile.NVLink)
		t.clock.Add(simtime.ResourceRDMA, syncTime)
		t.mu.Lock()
		t.allReduce += syncTime
		t.mu.Unlock()
	}

	if t.committer != nil {
		// Hand the merged block to the background committer and return: the
		// pipeline slot frees before the MEM-PS round trip. The committer
		// owns global from here; the per-node blocks are released now (the
		// single-node case adopted its delta block as global).
		pj := &pushJob{index: j.index, global: global}
		if t.remote == nil {
			pj.wss = make([]*memps.WorkingSet, len(t.nodes))
		}
		for id, nb := range j.nodes {
			if nb.deltas != global {
				ps.PutBlock(nb.deltas)
			}
			nb.deltas = nil
			if pj.wss != nil {
				pj.wss[id] = nb.ws
				nb.ws = nil
			}
		}
		t.addStageModelled(StagePush, syncTime)
		if err := t.committer.enqueue(ctx, pj); err != nil {
			return nil, err
		}
		return j, nil
	}

	releaseBlocks := func() {
		for _, nb := range j.nodes {
			ps.PutBlock(nb.deltas)
			nb.deltas = nil
		}
		if global != nil && len(t.nodes) > 1 {
			ps.PutBlock(global)
		}
	}
	defer releaseBlocks()

	// Apply and complete per node. memTime/ssdTime deltas are safe to read
	// here because only this stage touches the MEM-PS push path.
	var mu sync.Mutex
	var modelled time.Duration
	err := t.eachNode(func(n *node) error {
		nb := j.nodes[n.id]
		var d time.Duration
		if t.remote != nil {
			// Multi-process mode: the push crosses a real socket; its wall
			// time is the batch's push cost.
			start := time.Now()
			if err := n.mem.PushBlock(ps.PushBlockRequest{Shard: ps.NoShard, Block: global}); err != nil {
				return err
			}
			d = time.Since(start)
		} else {
			memBefore := n.mem.TierStats().PushTime
			ssdBefore := n.store.TierStats().PushTime
			var pushErr error
			if fused {
				s := &t.mergeScratch
				pushErr = n.local.PushBlockPair(j.nodes[0].deltas, j.nodes[1].deltas,
					s.pairKeys[n.id], s.pairA[n.id], s.pairB[n.id])
			} else {
				pushErr = n.mem.PushBlock(ps.PushBlockRequest{Shard: ps.NoShard, Block: global})
			}
			if pushErr != nil {
				return pushErr
			}
			if err := n.mem.CompleteBatch(nb.ws); err != nil {
				return err
			}
			d = (n.mem.TierStats().PushTime - memBefore) + (n.store.TierStats().PushTime - ssdBefore)
		}
		mu.Lock()
		if d > modelled {
			modelled = d
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if t.remote != nil && t.cfg.Serve {
		// Refresh every shard's dense replica now that this epoch's pushes
		// have been applied: shards stamp the parameters with the epoch and
		// bound their reported serving staleness against it.
		t.denseMu.Lock()
		t.denseFlat = t.net.FlattenParams(t.denseFlat[:0])
		t.denseMu.Unlock()
		scfg := cluster.ServeConfig{Dense: t.denseFlat, Epoch: uint64(j.index) + 1,
			TrainedEpoch: t.trainedEpoch.Load()}
		for _, id := range t.cfg.Topology.MemberIDs() {
			if err := t.remote.PublishServeConfig(id, scfg); err != nil {
				// A member mid-failover misses this epoch's dense refresh; it
				// catches up on the next one. Failing the run here would turn
				// a survivable shard outage into a training abort.
				if t.cfg.Topology.Replicas > 1 {
					continue
				}
				return nil, fmt.Errorf("trainer: refresh dense on shard %d: %w", id, err)
			}
		}
	}
	t.addStageModelled(StagePush, modelled+syncTime)
	return j, nil
}

// Predict returns the model's click probability for a feature set, reading
// the authoritative parameter copies from the owning MEM-PS shards (one
// batched lookup per owner — over the wire in multi-process mode). Features
// never trained on contribute nothing (matching internal/reference). It
// fails if a shard's parameters cannot be read: a prediction computed with a
// shard's embeddings missing would be silently wrong.
func (t *Trainer) Predict(features []keys.Key) (float32, error) {
	var vals map[keys.Key]*embedding.Value
	if t.remote != nil {
		// The remote memService splits by owning member itself (owner ids
		// under a ring need not be virtual-node indices) and fails over to
		// backups on a primary outage; any virtual node's view will do.
		v, err := t.nodes[0].mem.LookupAll(features)
		if err != nil {
			return 0, fmt.Errorf("trainer: predict: %w", err)
		}
		vals = v
	} else {
		vals = make(map[keys.Key]*embedding.Value, len(features))
		for owner, ks := range t.cfg.Topology.SplitByNode(features) {
			if len(ks) == 0 {
				continue
			}
			v, err := t.nodes[owner].mem.LookupAll(ks)
			if err != nil {
				return 0, fmt.Errorf("trainer: predict: node %d: %w", owner, err)
			}
			for k, val := range v {
				vals[k] = val
			}
		}
	}
	vecs := make([][]float32, 0, len(features))
	for _, k := range features {
		if v := vals[k]; v != nil {
			vecs = append(vecs, v.Weights)
		}
	}
	t.denseMu.Lock()
	defer t.denseMu.Unlock()
	nn.PoolSum(t.evalActs.Input(), vecs)
	return t.net.Forward(t.evalActs), nil
}

// Evaluate returns the model AUC over n fresh examples drawn from gen.
func (t *Trainer) Evaluate(gen *dataset.Generator, n int) (float64, error) {
	scores := make([]float64, 0, n)
	labels := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ex := gen.NextExample()
		p, err := t.Predict(ex.Features)
		if err != nil {
			return 0, err
		}
		scores = append(scores, float64(p))
		labels = append(labels, float64(ex.Label))
	}
	return metrics.AUC(scores, labels), nil
}

// UpdateMembership installs a membership change into the trainer's shared
// topology view and (re)points the remote transport at the member addresses
// it carries: the next batch's pulls and pushes follow the new ring. Stale
// epochs are dropped by the membership view itself, so out-of-order delivery
// is harmless.
func (t *Trainer) UpdateMembership(u cluster.MembershipUpdate) error {
	if t.cfg.Topology.Members == nil {
		return fmt.Errorf("trainer: topology has no membership view to update")
	}
	if err := u.Validate(); err != nil {
		return err
	}
	if t.remote != nil {
		for id, addr := range u.Addrs {
			t.remote.SetAddr(id, addr)
		}
	}
	t.cfg.Topology.Members.Update(u.BuildRing())
	return nil
}

// Examples returns the number of examples trained across all nodes.
func (t *Trainer) Examples() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.examples
}

// MeanLoss returns the mean training log-loss so far.
func (t *Trainer) MeanLoss() float64 { return t.loss.Mean() }

// Clock returns the cluster's simulated-time clock.
func (t *Trainer) Clock() *simtime.Clock { return t.clock }

// Nodes returns the number of nodes.
func (t *Trainer) Nodes() int { return len(t.nodes) }

// Tiers returns each tier's uniform statistics aggregated across nodes, top
// tier first (plus the SSD-PS device-level store stats via Report). In
// multi-process mode the MEM-PS statistics are fetched from the shard
// servers over the wire, and the SSD-PS row is absent — the stores live in
// the shard processes.
func (t *Trainer) Tiers() []ps.TierInfo {
	var hbm, mem, ssd ps.Stats
	for _, n := range t.nodes {
		hbm = hbm.Add(n.hbm.TierStats())
		mem = mem.Add(n.mem.TierStats())
		if n.store != nil {
			ssd = ssd.Add(n.store.TierStats())
		}
	}
	out := []ps.TierInfo{
		{Name: t.nodes[0].hbm.Name(), Stats: hbm},
		{Name: t.nodes[0].mem.Name(), Stats: mem},
	}
	if t.nodes[0].store != nil {
		out = append(out, ps.TierInfo{Name: t.nodes[0].store.Name(), Stats: ssd})
	}
	return out
}

// Flush persists every node's in-memory parameters to its SSD-PS, then
// writes the checkpoint manifest when one is configured — the flush must
// come first, so the shard state the manifest describes is on disk before
// the manifest claims it is.
func (t *Trainer) Flush() error {
	if t.committer != nil {
		// Every acked push must be applied before the shards flush: the
		// manifest written below claims the flushed state covers the batch
		// cursor, and an un-applied push would silently miss the cut.
		if err := t.committer.drain(); err != nil {
			return err
		}
	}
	if err := t.eachNode(func(n *node) error { return n.mem.Flush() }); err != nil {
		return err
	}
	if t.cfg.CheckpointPath == "" {
		return nil
	}
	return t.writeManifest()
}

// SetShardAddr repoints shard id's connections at addr. The driver calls it
// after restarting a crashed shard process on a fresh port; in-flight RPCs to
// the old address fail and are retried against the new one under the
// configured retry policy. It is a no-op for in-process shards.
func (t *Trainer) SetShardAddr(id int, addr string) {
	if t.remote == nil {
		return
	}
	t.remote.SetAddr(id, addr)
}

// Close flushes the hierarchy, closes the remote transport (in multi-process
// mode) and removes the SSD-PS directories the trainer created. When the
// flush fails, the directories are preserved — whatever the flush did manage
// to write is the only durable copy of the model, and the error reports
// where it lives. Close is idempotent.
func (t *Trainer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.Flush()
	if t.committer != nil {
		t.committer.close() // Flush drained it; stop the goroutine
	}
	if t.remote != nil {
		t.remote.Close()
	}
	if t.ownsDir {
		if err != nil {
			err = fmt.Errorf("%w (SSD-PS state preserved at %s)", err, t.tmpDir)
		} else if rmErr := os.RemoveAll(t.tmpDir); rmErr != nil {
			err = rmErr
		}
	}
	return err
}
