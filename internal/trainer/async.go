package trainer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hps/internal/cluster"
	"hps/internal/memps"
	"hps/internal/ps"
)

// depthGate bounds how many batches are in the pipeline at once, like the
// token channel it replaces, but with a limit the auto-tuner can change while
// producers are blocked on it. The source acquires one slot per batch and the
// sink releases it; shrinking the limit below the current occupancy simply
// stalls the source until enough batches drain.
type depthGate struct {
	mu    sync.Mutex
	cond  sync.Cond
	limit int
	inUse int
}

func newDepthGate(limit int) *depthGate {
	if limit < 1 {
		limit = 1
	}
	g := &depthGate{limit: limit}
	g.cond.L = &g.mu
	return g
}

// acquire blocks until a slot is free or ctx is cancelled. The caller must
// arrange for the gate to be broadcast when ctx is cancelled (see Run's
// watcher); acquire itself only re-checks ctx between waits.
func (g *depthGate) acquire(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inUse >= g.limit {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g.inUse++
	return nil
}

func (g *depthGate) release() {
	g.mu.Lock()
	g.inUse--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// setLimit applies a new depth. Values < 1 clamp to 1.
func (g *depthGate) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	if n != g.limit {
		g.limit = n
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *depthGate) currentLimit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// pushJob is one batch's merged delta block handed off to the background
// committer: everything the apply half of stagePush needs, with ownership of
// the block (the committer returns it to the pool after the commit).
type pushJob struct {
	index  int
	global *ps.ValueBlock
	// wss are the per-node working sets to complete after the push lands
	// (in-process mode only; the remote working set holds no pins).
	wss []*memps.WorkingSet
}

// pushCommitter applies merged delta blocks to the MEM-PS tier on a background
// goroutine, modeled on memps.Replicator's bounded forward queue: stagePush
// enqueues and returns, so the pipeline token comes back before the MEM-PS
// round trip. The lag is bounded — at most `lag` pushes are outstanding
// (queued or committing) — and drain() blocks until every enqueued push has
// been applied, which is what Flush/checkpoint/Close call before declaring
// anything durable.
//
// Pushes commit strictly in batch order (single committer goroutine, FIFO
// queue), so the MEM-PS sees exactly the update sequence the synchronous path
// would have applied — just later.
type pushCommitter struct {
	t     *Trainer
	lag   int
	queue chan *pushJob

	// pending counts pushes handed to the committer and not yet applied; it
	// is incremented by the enqueuer after a successful send and decremented
	// by the committer after the commit, so its high-water mark (maxPending)
	// is the observed push lag.
	pending    atomic.Int64
	maxPending atomic.Int64
	// committed is the batch-index watermark: all pushes for batches < this
	// value have been applied. Written only by the committer goroutine.
	committed atomic.Int64
	// staleMax is the largest trained-ahead-of-committed distance observed by
	// stageTrain — the realized parameter staleness in batches.
	staleMax atomic.Int64

	errMu sync.Mutex
	err   error

	// commitDelay artificially slows every commit; a test hook for driving
	// the lag bound to its limit under -race.
	commitDelay time.Duration

	closeOnce sync.Once
	done      chan struct{}
}

func newPushCommitter(t *Trainer, lag int) *pushCommitter {
	if lag < 1 {
		lag = 1
	}
	c := &pushCommitter{
		t: t, lag: lag,
		// One push is "outstanding" while the committer works on it, so the
		// queue holds the other lag-1; lag==1 degenerates to a rendezvous.
		queue: make(chan *pushJob, lag-1),
		done:  make(chan struct{}),
	}
	go c.run()
	return c
}

// enqueue hands a merged delta block to the committer, blocking while the lag
// bound is reached. On failure (cancelled context or a previously stored
// commit error) it releases the block and reports the error — the pipeline
// stops rather than training on updates that will never land.
func (c *pushCommitter) enqueue(ctx context.Context, pj *pushJob) error {
	if err := c.failed(); err != nil {
		ps.PutBlock(pj.global)
		return err
	}
	select {
	case c.queue <- pj:
	case <-ctx.Done():
		ps.PutBlock(pj.global)
		return ctx.Err()
	}
	p := c.pending.Add(1)
	for {
		old := c.maxPending.Load()
		if p <= old || c.maxPending.CompareAndSwap(old, p) {
			break
		}
	}
	return nil
}

func (c *pushCommitter) run() {
	defer close(c.done)
	for pj := range c.queue {
		c.commit(pj)
	}
}

// commit applies one push job. After the first error the committer keeps
// draining the queue — releasing blocks, keeping pending honest — but applies
// nothing further; the stored error surfaces on the next enqueue or drain.
func (c *pushCommitter) commit(pj *pushJob) {
	if c.commitDelay > 0 {
		time.Sleep(c.commitDelay)
	}
	if c.failed() == nil {
		if err := c.t.applyGlobalPush(pj); err != nil {
			c.fail(err)
		}
	}
	c.committed.Store(int64(pj.index) + 1)
	c.pending.Add(-1)
	ps.PutBlock(pj.global)
}

// drain blocks until every enqueued push has been applied, then reports any
// stored commit error. It terminates because the committer goroutine always
// makes progress on a nonempty queue (even after an error, where it only
// releases blocks).
func (c *pushCommitter) drain() error {
	for c.pending.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	return c.failed()
}

// close stops the committer goroutine. Call only after the pipeline has
// stopped enqueueing and drain() has returned.
func (c *pushCommitter) close() {
	c.closeOnce.Do(func() { close(c.queue) })
	<-c.done
}

func (c *pushCommitter) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

func (c *pushCommitter) failed() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// observeTrain records the realized staleness of a batch entering stageTrain:
// how many older batches have trained but not yet had their push applied.
// Bounded by depth-1 (batches ahead in the pipeline) + lag (pushes parked in
// the committer).
func (c *pushCommitter) observeTrain(index int) {
	stale := int64(index) - c.committed.Load()
	if stale < 0 {
		stale = 0
	}
	for {
		old := c.staleMax.Load()
		if stale <= old || c.staleMax.CompareAndSwap(old, stale) {
			return
		}
	}
}

// applyGlobalPush is the apply half of stagePush, run on the committer
// goroutine in async mode: push the merged delta block into every node's
// MEM-PS, complete the working sets (in-process), and republish the dense
// tower to the serving tier. The committer is the only goroutine on the
// MEM-PS push path, so the TierStats PushTime deltas attribute cleanly, same
// as the synchronous stage.
func (t *Trainer) applyGlobalPush(pj *pushJob) error {
	var mu sync.Mutex
	var modelled time.Duration
	err := t.eachNode(func(n *node) error {
		var d time.Duration
		if t.remote != nil {
			start := time.Now()
			if err := n.mem.PushBlock(ps.PushBlockRequest{Shard: ps.NoShard, Block: pj.global}); err != nil {
				return err
			}
			d = time.Since(start)
		} else {
			memBefore := n.mem.TierStats().PushTime
			ssdBefore := n.store.TierStats().PushTime
			if err := n.mem.PushBlock(ps.PushBlockRequest{Shard: ps.NoShard, Block: pj.global}); err != nil {
				return err
			}
			if err := n.mem.CompleteBatch(pj.wss[n.id]); err != nil {
				return err
			}
			d = (n.mem.TierStats().PushTime - memBefore) + (n.store.TierStats().PushTime - ssdBefore)
		}
		mu.Lock()
		if d > modelled {
			modelled = d
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	if t.remote != nil && t.cfg.Serve {
		// Same refresh as the synchronous stage, with the trainer's current
		// trained-batch watermark riding along so shards can report how far
		// their parameters trail training (push epoch lag).
		t.denseMu.Lock()
		t.denseFlat = t.net.FlattenParams(t.denseFlat[:0])
		t.denseMu.Unlock()
		scfg := cluster.ServeConfig{
			Dense:        t.denseFlat,
			Epoch:        uint64(pj.index) + 1,
			TrainedEpoch: t.trainedEpoch.Load(),
		}
		for _, id := range t.cfg.Topology.MemberIDs() {
			if err := t.remote.PublishServeConfig(id, scfg); err != nil {
				if t.cfg.Topology.Replicas > 1 {
					continue
				}
				return fmt.Errorf("trainer: refresh dense on shard %d: %w", id, err)
			}
		}
	}
	t.addStageModelled(StagePush, modelled)
	return nil
}
