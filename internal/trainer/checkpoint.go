package trainer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the trainer half of the durability story. A training run's
// state lives in two places: the sparse embeddings, whose durable copies are
// the per-shard SSD-PS directories (flushed by Trainer.Flush, recovered by
// ssdps.Store.Recover), and everything else — the dense tower, its optimizer
// state, the learning rates and the dataset cursor — which lives only in the
// driver process. The checkpoint manifest captures that driver-side state,
// versioned and written atomically, so a restarted driver can Restore and
// resume mid-run instead of starting over.
//
// A manifest is written whenever the trainer flushes (Flush, Close, the
// SIGTERM handlers in cmd/hps) and every CheckpointInterval batches. The
// batch cursor records *completed* batches: batches that were in flight in
// the pipeline when the checkpoint was cut are re-trained after a restore,
// which is the at-least-once counterpart of the push path's exactly-once
// dedup — re-training a batch moves parameters within the staleness budget
// the pipeline already tolerates, while silently skipping one would not.

// checkpointVersion is bumped whenever the manifest schema changes shape in
// a way an older reader would misinterpret.
const checkpointVersion = 1

// Manifest is the versioned, JSON-serialized driver-side training state.
type Manifest struct {
	// Version is the manifest schema version (checkpointVersion).
	Version int `json:"version"`
	// Model names the spec; restores refuse a mismatched model.
	Model string `json:"model"`
	// Nodes and BatchSize pin the topology and batch shape: the dataset
	// cursor is only meaningful for identical per-node streams.
	Nodes     int `json:"nodes"`
	BatchSize int `json:"batch_size"`
	// Seed is the run's base seed (per-node generators derive from it).
	Seed int64 `json:"seed"`
	// Batches is the cursor: batches completed per node when the checkpoint
	// was cut. Examples is the examples trained across all nodes.
	Batches  int64 `json:"batches"`
	Examples int64 `json:"examples"`
	// SparseLR / DenseLR record the learning-rate schedule in force.
	SparseLR float32 `json:"sparse_lr"`
	DenseLR  float32 `json:"dense_lr"`
	// Dense is the flattened dense tower (nn.FlattenParams order); DenseOpt
	// is the flattened optimizer state (nn.DenseState.Flatten order).
	Dense    []float32 `json:"dense"`
	DenseOpt []float32 `json:"dense_opt"`
	// Shards maps each shard id to where its durable sparse state lives: the
	// SSD-PS directories in-process, the shard servers' -dir roots in
	// multi-process mode (informational — restore tooling and operators read
	// it; the trainer does not dereference the paths itself).
	Shards map[int]string `json:"shards,omitempty"`
}

// LoadManifest reads and structurally validates a checkpoint manifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trainer: read checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("trainer: parse checkpoint %s: %w", path, err)
	}
	if m.Version != checkpointVersion {
		return nil, fmt.Errorf("trainer: checkpoint %s has version %d, this build reads %d", path, m.Version, checkpointVersion)
	}
	return &m, nil
}

// writeManifest snapshots the driver-side state and writes it atomically
// (temp file + rename in the manifest's directory), so a crash mid-write
// leaves the previous manifest intact rather than a torn one.
func (t *Trainer) writeManifest() error {
	path := t.cfg.CheckpointPath
	m := &Manifest{
		Version:   checkpointVersion,
		Model:     t.cfg.Spec.Name,
		Nodes:     t.cfg.Topology.Nodes,
		BatchSize: t.cfg.BatchSize,
		Seed:      t.cfg.Seed,
		SparseLR:  t.cfg.SparseLR,
		DenseLR:   t.cfg.DenseLR,
		Shards:    t.shardStatePaths(),
	}
	t.mu.Lock()
	m.Batches = t.batchesDone
	m.Examples = t.examples
	t.mu.Unlock()
	// The dense tower and its optimizer state must come from the same
	// instant: holding denseMu across both flattens keeps a concurrent
	// micro-run from landing between them.
	t.denseMu.Lock()
	m.Dense = t.net.FlattenParams(make([]float32, 0, len(t.denseFlat)))
	m.DenseOpt = t.denseState.Flatten(nil)
	t.denseMu.Unlock()

	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("trainer: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trainer: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("trainer: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("trainer: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil { // the rename must publish complete bytes
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("trainer: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trainer: publish checkpoint: %w", err)
	}
	return nil
}

// shardStatePaths names each shard's durable sparse state for the manifest.
func (t *Trainer) shardStatePaths() map[int]string {
	out := make(map[int]string, t.cfg.Topology.Nodes)
	if len(t.cfg.ShardState) > 0 {
		for id, p := range t.cfg.ShardState {
			out[id] = p
		}
		return out
	}
	if t.remote != nil {
		// Without driver-provided paths the best available name is the shard
		// address the state is served from.
		for id, addr := range t.cfg.RemoteShards {
			out[id] = addr
		}
		return out
	}
	for id := range t.nodes {
		out[id] = filepath.Join(t.tmpDir, fmt.Sprintf("node-%d", id))
	}
	return out
}

// WriteCheckpoint flushes every shard's in-memory parameters to its SSD-PS
// and writes the checkpoint manifest. It is what the SIGTERM handlers call;
// Flush does the same implicitly whenever a checkpoint path is configured.
func (t *Trainer) WriteCheckpoint() error {
	if t.cfg.CheckpointPath == "" {
		return fmt.Errorf("trainer: no checkpoint path configured")
	}
	return t.Flush()
}

// Restore loads the manifest at path and resumes the run from it: dense
// parameters and optimizer state are reloaded, local SSD-PS stores are
// recovered from disk, and every node's dataset cursor is fast-forwarded
// past the batches the checkpoint already covers (the generators are
// deterministic in (config, seed), so skipping reproduces the exact stream
// position). It returns the number of batches already completed; the
// subsequent Run trains only the remainder of cfg.Batches. Restore must be
// called before Run, on a trainer built with the same model, topology,
// batch size and seed as the checkpointed run.
func (t *Trainer) Restore(path string) (int, error) {
	m, err := LoadManifest(path)
	if err != nil {
		return 0, err
	}
	cfg := t.cfg
	switch {
	case m.Model != cfg.Spec.Name:
		return 0, fmt.Errorf("trainer: checkpoint is for model %q, trainer runs %q", m.Model, cfg.Spec.Name)
	case m.Nodes != cfg.Topology.Nodes:
		return 0, fmt.Errorf("trainer: checkpoint has %d nodes, trainer has %d", m.Nodes, cfg.Topology.Nodes)
	case m.BatchSize != cfg.BatchSize:
		return 0, fmt.Errorf("trainer: checkpoint batch size %d, trainer uses %d", m.BatchSize, cfg.BatchSize)
	case m.Seed != cfg.Seed:
		return 0, fmt.Errorf("trainer: checkpoint seed %d, trainer seeded %d (the dataset cursor would diverge)", m.Seed, cfg.Seed)
	case m.SparseLR != cfg.SparseLR || m.DenseLR != cfg.DenseLR:
		return 0, fmt.Errorf("trainer: checkpoint LRs (%g, %g) differ from configured (%g, %g)",
			m.SparseLR, m.DenseLR, cfg.SparseLR, cfg.DenseLR)
	}
	t.denseMu.Lock()
	err = t.net.SetParams(m.Dense)
	if err == nil {
		err = t.denseState.SetFromFlat(m.DenseOpt)
	}
	t.denseMu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("trainer: restore dense state: %w", err)
	}
	for _, n := range t.nodes {
		// In-process mode owns the stores: rebuild each key->file mapping
		// from the flushed SSD-PS directory. (Shard servers recover their own
		// stores via `hps serve -restore`.)
		if n.store != nil {
			if err := n.store.Recover(); err != nil {
				return 0, fmt.Errorf("trainer: recover node %d ssd-ps: %w", n.id, err)
			}
		}
		for b := int64(0); b < m.Batches; b++ {
			n.gen.NextBatch(cfg.BatchSize)
		}
	}
	t.mu.Lock()
	t.batchesDone = m.Batches
	t.examples = m.Examples
	t.restored = int(m.Batches)
	t.mu.Unlock()
	return int(m.Batches), nil
}
