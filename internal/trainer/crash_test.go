package trainer

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/serving"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// durableShard brings up one shard server whose durable state — SSD-PS
// parameter files and the push-dedup seq log — lives in dir, exactly as
// `hps serve -dir` arranges it. It returns the server and how many persisted
// (client, seq) records were replayed into the dedup tracker, so a restart
// over a previous incarnation's directory can assert its dedup state came
// back. addr is "127.0.0.1:0" for a first start, or the previous address for
// a restart.
func durableShard(t *testing.T, dir string, topo cluster.Topology, id, dim int, seed int64, lru, lfu int, addr string) (*shardServer, int) {
	t.Helper()
	dev, err := blockio.NewDevice(dir, hw.DefaultGPUNode().SSD, simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Recover(); err != nil {
		t.Fatal(err)
	}
	mem, err := memps.New(memps.Config{
		NodeID:     id,
		Dim:        dim,
		Topology:   topo,
		Transport:  cluster.NoRoute{},
		Store:      store,
		LRUEntries: lru,
		LFUEntries: lfu,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := cluster.NewSeqTracker()
	seqLog, replayed, err := cluster.OpenSeqLog(filepath.Join(dir, "seqlog"), seqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seqLog.Close() })
	seqs.AttachLog(seqLog)
	srv, err := cluster.ServeTCPOptions(addr, mem, cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	sh := &shardServer{mem: mem, seqs: seqs, srv: srv}
	t.Cleanup(func() { sh.srv.Close() })
	return sh, replayed
}

// replTestShard is one replicated shard server: the full serve-side stack —
// MEM-PS, serving handler, replicator, push-dedup tracker — wired the way
// `hps serve -members ... -replicas 2` arranges it, with the shard's own
// membership view updated over the wire by membership broadcasts.
type replTestShard struct {
	mem  *memps.MemPS
	repl *memps.Replicator
	srv  *cluster.TCPServer
}

func replShard(t *testing.T, dir string, id, nodes, dim int, seed int64, members []int, vnodes int) *replTestShard {
	t.Helper()
	dev, err := blockio.NewDevice(dir, hw.DefaultGPUNode().SSD, simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 64})
	if err != nil {
		t.Fatal(err)
	}
	ms := cluster.NewMembership(cluster.NewRing(members, vnodes))
	topo := cluster.Topology{Nodes: nodes, GPUsPerNode: 1, Members: ms, Replicas: 2}
	mem, err := memps.New(memps.Config{
		NodeID:     id,
		Dim:        dim,
		Topology:   topo,
		Transport:  cluster.NoRoute{},
		Store:      store,
		LRUEntries: 96,
		LFUEntries: 96,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerTr := cluster.NewTCPTransport(map[int]string{}, dim)
	t.Cleanup(peerTr.Close)
	serveSrv, err := serving.New(serving.Config{
		NodeID:   id,
		Topology: topo,
		Dim:      dim,
		Hidden:   []int{8},
		Local:    mem,
		Peers:    peerTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(serveSrv.Close)
	h := serving.NewHandler(mem, serveSrv)
	repl := memps.NewReplicator(mem, peerTr, memps.ReplicatorConfig{TransferPause: time.Millisecond})
	t.Cleanup(repl.Close)
	h.Replicator = repl
	h.Peers = peerTr
	seqs := cluster.NewSeqTracker()
	seqLog, _, err := cluster.OpenSeqLog(filepath.Join(dir, "seqlog"), seqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seqLog.Close() })
	seqs.AttachLog(seqLog)
	h.Seqs = seqs
	srv, err := cluster.ServeTCPOptions("127.0.0.1:0", h, cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	sh := &replTestShard{mem: mem, repl: repl, srv: srv}
	t.Cleanup(func() { sh.srv.Close() })
	return sh
}

// TestKillPrimaryMidEpochPromotesBackup is the replicated counterpart of the
// crash drill below: a primary is killed mid-epoch with R=2 and is NEVER
// restarted or restored from disk. The supervisor's response is a membership
// broadcast that removes the dead shard — promoting, for every key it owned,
// the backup that already holds every acked delta — after which the
// survivors re-replicate among themselves back to R=2. Training must ride
// the outage on pull/push failover and land within the same AUC tolerance as
// the restore-based drill, with the origin dedup stamps keeping retried
// in-flight pushes from being applied twice.
func TestKillPrimaryMidEpochPromotesBackup(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 5
	const vnodes = 16
	members := []int{0, 1, 2}
	batches, batchSize, evalN := 20, 128, 1500

	base := Config{
		Spec:        spec,
		Data:        data,
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 2,
		Seed:        seed,
		RemoteRetry: cluster.RetryPolicy{Attempts: 10, Backoff: 10 * time.Millisecond},
	}

	// run brings up a full replicated deployment — three shard servers, a
	// driver-side membership view, a control transport for broadcasts — and
	// trains over it, killing shard 1 mid-epoch when kill is set. It returns
	// the held-out AUC and the surviving shards.
	run := func(kill bool) (float64, map[int]*replTestShard) {
		t.Helper()
		shards := map[int]*replTestShard{}
		addrs := map[int]string{}
		for _, id := range members {
			shards[id] = replShard(t, t.TempDir(), id, len(members), spec.EmbeddingDim, seed, members, vnodes)
			addrs[id] = shards[id].srv.Addr()
		}
		ms := cluster.NewMembership(cluster.NewRing(members, vnodes))
		ctl := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
		t.Cleanup(ctl.Close)

		cfg := base
		cfg.Topology = cluster.Topology{Nodes: len(members), GPUsPerNode: 1, Members: ms, Replicas: 2}
		cfg.RemoteShards = addrs
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })

		applyRing := func(next *cluster.Ring) {
			u := cluster.MembershipUpdate{
				Epoch: next.Epoch(), Members: next.Members(),
				VNodes: vnodes, Replicas: 2, Addrs: addrs,
			}
			for _, id := range next.Members() {
				if err := ctl.UpdateMembership(id, u); err != nil {
					t.Errorf("membership epoch %d to shard %d: %v", u.Epoch, id, err)
				}
			}
			if err := tr.UpdateMembership(u); err != nil {
				t.Errorf("membership epoch %d to trainer: %v", u.Epoch, err)
			}
		}
		// The driver's first broadcast: one epoch above the shards' boot rings.
		applyRing(ms.Ring().WithEpoch(ms.Ring().Epoch() + 1))

		if !kill {
			if err := tr.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			return evalAUC(t, tr, dataset.NewGenerator(data, 999), evalN), shards
		}

		// Stretch the run so the kill lands mid-epoch with work in flight.
		tr.stageDelay = map[string]time.Duration{StageTrain: 10 * time.Millisecond}
		runDone := make(chan error, 1)
		go func() { runDone <- tr.Run(context.Background()) }()

		time.Sleep(120 * time.Millisecond)
		// kill -9: the process image — cache, dedup map, sockets — is gone.
		// Nothing is flushed, and nothing will ever be restored from dir 1.
		if err := shards[1].srv.Close(); err != nil {
			t.Fatal(err)
		}
		// The supervisor needs time to observe the death; training meanwhile
		// rides per-key failover to the backups on the OLD ring.
		time.Sleep(80 * time.Millisecond)
		applyRing(ms.Ring().Leave(1))
		delete(shards, 1)

		if err := <-runDone; err != nil {
			t.Fatalf("training did not survive the kill + promotion: %v", err)
		}
		return evalAUC(t, tr, dataset.NewGenerator(data, 999), evalN), shards
	}

	baseAUC, _ := run(false)
	if baseAUC < 0.6 {
		t.Fatalf("undisturbed replicated run failed to learn (AUC %.4f)", baseAUC)
	}

	auc, survivors := run(true)
	t.Logf("undisturbed AUC = %.4f, kill-promotion AUC = %.4f", baseAUC, auc)
	if auc < 0.6 {
		t.Fatalf("post-promotion AUC = %.4f: parameters corrupted", auc)
	}
	if diff := math.Abs(baseAUC - auc); diff > 0.03 {
		t.Fatalf("kill-promotion run diverged from undisturbed run: |%.4f - %.4f| = %.4f > 0.03", auc, baseAUC, diff)
	}

	// Re-replication restored R=2: the Leave broadcast made the survivors
	// reconcile, so the dead shard's keys — whose only fresh copy was the
	// promoted backup — must be held by BOTH survivors again.
	transferred := int64(0)
	for _, sh := range survivors {
		if !sh.repl.Drain(2 * time.Second) {
			t.Fatal("survivor replication queue did not drain")
		}
		transferred += sh.repl.Stats().TransferredKeys
	}
	if transferred == 0 {
		t.Fatal("survivors transferred nothing: re-replication after the promotion never ran")
	}
	oldRing := cluster.NewRing(members, vnodes)
	checked := 0
	for _, k := range survivors[0].mem.LocalKeys() {
		if oldRing.Owner(k) != 1 || checked >= 64 {
			continue
		}
		checked++
		for id, sh := range survivors {
			vals, _ := sh.mem.LookupAll([]keys.Key{k})
			if _, ok := vals[k]; !ok {
				t.Fatalf("key %d (owned by the dead shard) missing from survivor %d: R=2 not restored", k, id)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no promoted keys found on the survivors")
	}
}

// TestCrashRestartRecoversDurableState is the end-to-end crash drill behind
// the driver's supervision path: a shard dies mid-run WITHOUT flushing (the
// in-process equivalent of kill -9 — its entire MEM-PS cache and dedup map
// are discarded), and a brand-new incarnation is rebuilt on the same address
// purely from the directory the old one left behind: SSD-PS recovery for the
// parameters it had dumped, seq-log replay for the dedup records it had
// committed. Training must ride the outage on retries and converge next to
// an undisturbed in-process run; the replayed seq records are what keep the
// trainer's retried in-flight pushes from being applied twice.
func TestCrashRestartRecoversDurableState(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 3
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	batches, batchSize, evalN := 20, 128, 1500

	base := Config{
		Spec:        spec,
		Data:        data,
		Topology:    topo,
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 2,
		Seed:        seed,
	}

	// The undisturbed baseline: same workload, in-process transport.
	baseline, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { baseline.Close() })
	if err := baseline.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	baseAUC := evalAUC(t, baseline, dataset.NewGenerator(data, 999), evalN)
	if baseAUC < 0.6 {
		t.Fatalf("baseline failed to learn (AUC %.4f)", baseAUC)
	}

	// Small caches force frequent eviction dumps, which is what bounds how
	// much un-flushed state a crash can destroy (the durability design: loss
	// is capped by the cache, not the run length).
	dir0 := t.TempDir()
	sh0, replayed := durableShard(t, dir0, topo, 0, spec.EmbeddingDim, seed, 96, 96, "127.0.0.1:0")
	if replayed != 0 {
		t.Fatalf("fresh shard replayed %d seq records from an empty dir", replayed)
	}
	sh1, _ := durableShard(t, t.TempDir(), topo, 1, spec.EmbeddingDim, seed, 96, 96, "127.0.0.1:0")
	addrs := map[int]string{0: sh0.srv.Addr(), 1: sh1.srv.Addr()}

	cfg := base
	cfg.RemoteShards = addrs
	cfg.RemoteRetry = cluster.RetryPolicy{Attempts: 10, Backoff: 10 * time.Millisecond}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	// Stretch the run so the crash lands mid-epoch with work in flight.
	tr.stageDelay = map[string]time.Duration{StageTrain: 10 * time.Millisecond}

	runDone := make(chan error, 1)
	go func() { runDone <- tr.Run(context.Background()) }()

	// Crash: the server stops answering and the whole process image is
	// discarded — no flush, no handoff. Only dir0 survives.
	time.Sleep(120 * time.Millisecond)
	addr := sh0.srv.Addr()
	if err := sh0.srv.Close(); err != nil {
		t.Fatal(err)
	}
	preCrashPushes := sh0.mem.TierStats().Pushes

	// Restart from the directory alone, on the same address.
	restarted, replayed := durableShard(t, dir0, topo, 0, spec.EmbeddingDim, seed, 96, 96, addr)
	if replayed == 0 {
		t.Fatal("restart replayed no persisted seq records: the dedup log did not survive the crash")
	}
	if int64(replayed) < preCrashPushes {
		t.Errorf("seq log replayed %d records but the dead shard had applied %d pushes — committed applies are missing",
			replayed, preCrashPushes)
	}
	if restarted.mem.Store().Len() == 0 {
		t.Fatal("restarted shard recovered no parameters from the SSD-PS")
	}

	if err := <-runDone; err != nil {
		t.Fatalf("training did not survive the crash restart: %v", err)
	}
	r := tr.Report()
	if r.Remote == nil || r.Remote.Redials == 0 {
		t.Fatalf("run must have reconnected at least once: %+v", r.Remote)
	}
	if restarted.mem.TierStats().Pushes == 0 {
		t.Fatal("restarted shard never saw a push")
	}

	// The crash loses whatever the dead cache had not yet dumped, so exact
	// parity is impossible — but the loss is cache-bounded, and the run must
	// land next to the undisturbed baseline, not in a corrupted-parameter
	// regime. (The tighter 0.005 transport-parity gate lives in
	// TestRemoteShardsMatchLocalAUC, where nothing crashes.)
	auc := evalAUC(t, tr, dataset.NewGenerator(data, 999), evalN)
	t.Logf("baseline AUC = %.4f, crash-restart AUC = %.4f (replayed %d seq records)", baseAUC, auc, replayed)
	if auc < 0.6 {
		t.Fatalf("post-crash AUC = %.4f: parameters corrupted by the restart", auc)
	}
	if diff := math.Abs(baseAUC - auc); diff > 0.03 {
		t.Fatalf("crash-restart run diverged from baseline: |%.4f - %.4f| = %.4f > 0.03", auc, baseAUC, diff)
	}
}
