package trainer

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hps/internal/cluster"
	"hps/internal/dataset"
)

// TestCheckpointResumeMatchesStraightRun is the round-trip check for the
// durability tentpole: training N batches, checkpointing, and resuming the
// remainder in a fresh process image must land on the same model as training
// all N batches straight through. Everything the manifest carries — dense
// tower, optimizer state, dataset cursor — and everything the SSD-PS carries
// (sparse weights plus their optimizer state) is exercised: dropping any one
// of them moves the resumed AUC off the baseline.
func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 11
	batches, batchSize, evalN := 30, 128, 1500
	base := Config{
		Spec:        spec,
		Data:        data,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 1, // deterministic Algorithm-1 ordering: AUCs must match exactly
		Seed:        seed,
	}

	straight := runTrainer(t, base)
	want := evalAUC(t, straight, dataset.NewGenerator(data, 999), evalN)

	// First incarnation: half the run, then a checkpoint cut by Close.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	halfCfg := base
	halfCfg.Dir = filepath.Join(dir, "state")
	halfCfg.Batches = batches / 2
	halfCfg.CheckpointPath = ckpt
	half, err := New(halfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := half.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: same config for the full run, restored mid-stream.
	resumeCfg := base
	resumeCfg.Dir = halfCfg.Dir
	resumeCfg.CheckpointPath = ckpt
	resumed, err := New(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resumed.Close() })
	done, err := resumed.Restore(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if done != batches/2 {
		t.Fatalf("restore resumed at batch %d, checkpoint was cut at %d", done, batches/2)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Examples(), int64(batches*batchSize); got != want {
		t.Fatalf("resumed run trained %d examples in total, want %d", got, want)
	}

	got := evalAUC(t, resumed, dataset.NewGenerator(data, 999), evalN)
	t.Logf("straight AUC = %.6f, checkpoint+resume AUC = %.6f", want, got)
	if diff := math.Abs(want - got); diff > 1e-6 {
		t.Fatalf("resumed run diverged from straight run: |%.6f - %.6f| = %g", got, want, diff)
	}
}

// TestRestoreValidatesConfig pins the refusal cases: a checkpoint must not be
// restorable into a trainer whose stream or model would silently diverge
// from the one that wrote it.
func TestRestoreValidatesConfig(t *testing.T) {
	data := testData()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	base := Config{
		Spec:           testSpec(),
		Data:           data,
		BatchSize:      32,
		Batches:        2,
		Seed:           5,
		Dir:            filepath.Join(dir, "state"),
		CheckpointPath: ckpt,
	}
	tr, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Config){
		"seed":       func(c *Config) { c.Seed = 6 },
		"batch size": func(c *Config) { c.BatchSize = 64 },
		"model":      func(c *Config) { c.Spec.Name = "other" },
		"dense lr":   func(c *Config) { c.DenseLR = 0.123 },
	} {
		cfg := base
		mutate(&cfg)
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Restore(ckpt); err == nil {
			t.Errorf("restore with mismatched %s did not fail", name)
		}
		tr.Close()
	}

	if _, err := LoadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading a missing manifest did not fail")
	}
}

// TestCloseKeepsStateWhenFlushFails pins the Close contract: when the final
// flush fails, the SSD-PS directory is the only durable copy of whatever the
// flush managed to write, so Close must preserve it and say where it is —
// not remove it as if the shutdown had been clean.
func TestCloseKeepsStateWhenFlushFails(t *testing.T) {
	tr, err := New(Config{
		Spec:      testSpec(),
		Data:      testData(),
		BatchSize: 32,
		Batches:   2,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Break the flush: node 0's device directory vanishes, so every Dump
	// fails to write its parameter file.
	if err := os.RemoveAll(filepath.Join(tr.tmpDir, "node-0")); err != nil {
		t.Fatal(err)
	}
	closeErr := tr.Close()
	if closeErr == nil {
		t.Fatal("Close over a broken store must report the failed flush")
	}
	if !strings.Contains(closeErr.Error(), tr.tmpDir) {
		t.Fatalf("Close error does not name the preserved state dir %s: %v", tr.tmpDir, closeErr)
	}
	if _, err := os.Stat(tr.tmpDir); err != nil {
		t.Fatalf("Close removed the state dir despite the failed flush: %v", err)
	}
	os.RemoveAll(tr.tmpDir) // the trainer deliberately leaked it; clean up
}
