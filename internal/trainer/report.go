package trainer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hps/internal/blockio"
	"hps/internal/metrics"
	"hps/internal/pipeline"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// StageReport is one pipeline stage's share of the batch time.
type StageReport struct {
	// Name is the stage name (read/pull/train/push).
	Name string
	// Modelled is the cumulative modelled hardware time of the stage.
	Modelled time.Duration
	// PerBatch is Modelled divided by the number of batches.
	PerBatch time.Duration
	// WallBusy / WallStalled are the stage goroutine's measured wall times
	// (busy inside the stage function, stalled on backpressure).
	WallBusy, WallStalled time.Duration
	// EWMAService is the smoothed per-batch service time the auto-tuner
	// sizes queues from.
	EWMAService time.Duration
	// QueueCap / MeanQueueLen describe the stage's prefetch queue: its
	// (possibly auto-tuned) capacity and its mean occupancy at enqueue time.
	QueueCap     int
	MeanQueueLen float64
}

// Report is the Fig-4-style throughput/latency breakdown of a training run.
type Report struct {
	// Model names the trained spec.
	Model string
	// Nodes / GPUsPerNode describe the topology.
	Nodes, GPUsPerNode int
	// Batches / Examples count completed work across all nodes.
	Batches, Examples int64
	// MaxInFlight is the pipeline depth the run used.
	MaxInFlight int
	// Stages is the per-stage breakdown, in pipeline order.
	Stages []StageReport
	// Bottleneck is the stage with the largest modelled time — the stage
	// that governs steady-state throughput (Section 7.2).
	Bottleneck string
	// AllReduce is the cumulative modelled inter-GPU synchronization time
	// (included in the push stage).
	AllReduce time.Duration
	// ModelledElapsed estimates the wall time of the run on the modelled
	// hardware: with pipelining, one pipeline fill plus the bottleneck stage
	// for every further batch; without, the sum of all stages.
	ModelledElapsed time.Duration
	// Throughput is Examples over ModelledElapsed.
	Throughput metrics.Throughput
	// Resources are the per-hardware-resource modelled totals (the time
	// distribution of Fig 4).
	Resources map[simtime.Resource]time.Duration
	// Tiers are the uniform per-tier statistics, top tier first.
	Tiers []ps.TierInfo
	// CacheHitRate is the MEM-PS cache hit rate across nodes (Fig 4c).
	CacheHitRate float64
	// SSD aggregates the SSD-PS store statistics across nodes.
	SSD ssdps.Stats
	// ReadAmplification is the SSD device read amplification across nodes.
	ReadAmplification float64
	// MeanLoss is the mean training log-loss.
	MeanLoss float64
	// Remote describes the real network activity of a multi-process run;
	// nil for in-process runs.
	Remote *RemoteNetReport
	// AutoTune reports whether the runtime queue/depth tuner was armed;
	// EffectiveDepth is its final depth suggestion (== MaxInFlight for a
	// static run) and Retunes counts how many times it re-derived the sizing.
	AutoTune       bool
	EffectiveDepth int
	Retunes        int64
	// AsyncPush reports whether the background push committer was active;
	// PushLagLimit is its configured outstanding-push budget, MaxPushLag the
	// high-water mark it actually reached, AsyncPushes the pushes it
	// committed, and StaleMaxBatches the worst trained-ahead-of-committed
	// distance a batch observed entering the train stage (realized parameter
	// staleness, bounded by depth-1 + PushLagLimit).
	AsyncPush       bool
	PushLagLimit    int
	MaxPushLag      int64
	AsyncPushes     int64
	StaleMaxBatches int64
}

func addSSDStats(a, b ssdps.Stats) ssdps.Stats {
	a.Files += b.Files
	a.LiveParams += b.LiveParams
	a.StaleParams += b.StaleParams
	a.Compactions += b.Compactions
	a.CompactedFiles += b.CompactedFiles
	a.Loads += b.Loads
	a.Dumps += b.Dumps
	a.UsageBytes += b.UsageBytes
	return a
}

// Report summarizes the run so far.
func (t *Trainer) Report() Report {
	t.mu.Lock()
	batches := t.batchesDone
	examples := t.examples
	stageModelled := make(map[string]time.Duration, len(t.stageModelled))
	for k, v := range t.stageModelled {
		stageModelled[k] = v
	}
	allReduce := t.allReduce
	t.mu.Unlock()

	r := Report{
		Model:       t.cfg.Spec.Name,
		Nodes:       t.cfg.Topology.Nodes,
		GPUsPerNode: t.cfg.Topology.GPUsPerNode,
		Batches:     batches,
		Examples:    examples,
		MaxInFlight: t.cfg.MaxInFlight,
		AllReduce:   allReduce,
		Resources:   t.clock.Snapshot(),
		Tiers:       t.Tiers(),
		MeanLoss:    t.loss.Mean(),
	}

	var wall []pipeline.StageStats
	if t.pipe != nil {
		wall = t.pipe.Stats()
	}
	var sum, max time.Duration
	for i, name := range []string{StageRead, StagePull, StageTrain, StagePush} {
		sr := StageReport{Name: name, Modelled: stageModelled[name]}
		if batches > 0 {
			sr.PerBatch = sr.Modelled / time.Duration(batches)
		}
		if i < len(wall) {
			sr.WallBusy, sr.WallStalled = wall[i].Busy, wall[i].Stalled
			sr.EWMAService = wall[i].EWMAService
			sr.QueueCap, sr.MeanQueueLen = wall[i].QueueCap, wall[i].MeanQueueLen
		}
		sum += sr.Modelled
		if sr.Modelled >= max {
			max = sr.Modelled
			r.Bottleneck = name
		}
		r.Stages = append(r.Stages, sr)
	}
	// One pipeline fill (every stage once), then the bottleneck stage paces
	// each remaining batch; without overlap every batch pays every stage.
	if t.cfg.MaxInFlight > 1 && batches > 0 {
		fill := sum / time.Duration(batches)
		r.ModelledElapsed = fill + max/time.Duration(batches)*time.Duration(batches-1)
	} else {
		r.ModelledElapsed = sum
	}
	r.Throughput = metrics.Throughput{Examples: examples, Elapsed: r.ModelledElapsed}

	r.AutoTune = t.cfg.AutoTune
	r.EffectiveDepth = t.cfg.MaxInFlight
	if t.pipe != nil {
		if ts := t.pipe.TunerState(); ts.Enabled {
			r.EffectiveDepth = ts.InFlight
			r.Retunes = ts.Retunes
		}
	}
	if c := t.committer; c != nil {
		r.AsyncPush = true
		r.PushLagLimit = c.lag
		r.MaxPushLag = c.maxPending.Load()
		r.AsyncPushes = c.committed.Load() - int64(t.restored)
		if r.AsyncPushes < 0 {
			r.AsyncPushes = 0
		}
		r.StaleMaxBatches = c.staleMax.Load()
	}

	var hits, lookups int64
	var ioStats blockio.Stats
	for _, n := range t.nodes {
		if n.local == nil { // multi-process mode: cache and SSD live remotely
			continue
		}
		cs := n.local.CacheStats()
		hits += cs.Hits
		lookups += cs.Hits + cs.Misses
		r.SSD = addSSDStats(r.SSD, n.store.Stats())
		ds := n.dev.Stats()
		ioStats.LogicalBytesRead += ds.LogicalBytesRead
		ioStats.PhysicalBytesRead += ds.PhysicalBytesRead
	}
	if lookups > 0 {
		r.CacheHitRate = float64(hits) / float64(lookups)
	}
	r.ReadAmplification = ioStats.ReadAmplification()

	if t.remote != nil {
		net := t.remoteNet
		net.mu.Lock()
		rr := &RemoteNetReport{
			Shards:       t.cfg.Topology.Nodes,
			Pulls:        net.pulls,
			Pushes:       net.pushes,
			KeysPulled:   net.keysPulled,
			KeysPushed:   net.keysPushed,
			PayloadBytes: net.bytes,
			PullWall:     net.pullWall,
			PushWall:     net.pushWall,
			Failovers:    net.failovers,
		}
		net.mu.Unlock()
		ts := t.remote.Stats()
		rr.Calls, rr.Retries, rr.Redials = ts.Calls, ts.Retries, ts.Redials
		rr.WireBytes = ts.WireOut + ts.WireIn
		rr.Precision = t.remote.WirePrecision().String()
		if t.cfg.QuantizePush {
			rr.Precision += "+push"
		}
		r.Remote = rr
	}
	return r
}

// String renders the report as the Fig-4-style breakdown printed by cmd/hps.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== hierarchical parameter server: model %s, %d node(s) x %d GPU(s), pipeline depth %d ===\n",
		r.Model, r.Nodes, r.GPUsPerNode, r.MaxInFlight)
	fmt.Fprintf(&b, "batches %d   examples %d   mean log-loss %.4f\n", r.Batches, r.Examples, r.MeanLoss)
	fmt.Fprintf(&b, "\n-- batch pipeline (modelled hardware time) --\n")
	for _, s := range r.Stages {
		marker := "  "
		if s.Name == r.Bottleneck {
			marker = "* " // the stage that paces steady-state throughput
		}
		fmt.Fprintf(&b, "%s%-6s total %12v   per-batch %12v   wall busy %10v   stalled %10v   queue %d (mean %.1f)   ewma %v\n",
			marker, s.Name, s.Modelled.Round(time.Microsecond), s.PerBatch.Round(time.Microsecond),
			s.WallBusy.Round(time.Microsecond), s.WallStalled.Round(time.Microsecond),
			s.QueueCap, s.MeanQueueLen, s.EWMAService.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "bottleneck stage: %s   all-reduce (in push): %v\n", r.Bottleneck, r.AllReduce.Round(time.Microsecond))
	if r.AutoTune {
		caps := make([]int, 0, len(r.Stages))
		for _, s := range r.Stages {
			caps = append(caps, s.QueueCap)
		}
		fmt.Fprintf(&b, "adaptive pipeline: effective depth %d (ceiling %d), queue caps %v, retunes %d\n",
			r.EffectiveDepth, r.MaxInFlight, caps, r.Retunes)
	}
	if r.AsyncPush {
		fmt.Fprintf(&b, "async push: %d committed in background, lag max %d of %d budget, trained-ahead max %d batch(es)\n",
			r.AsyncPushes, r.MaxPushLag, r.PushLagLimit, r.StaleMaxBatches)
	}
	fmt.Fprintf(&b, "modelled elapsed %v   throughput %.0f examples/s\n",
		r.ModelledElapsed.Round(time.Microsecond), r.Throughput.ExamplesPerSecond())

	fmt.Fprintf(&b, "\n-- hardware time distribution --\n")
	names := make([]string, 0, len(r.Resources))
	for res := range r.Resources {
		names = append(names, string(res))
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-8s %12v\n", name, r.Resources[simtime.Resource(name)].Round(time.Microsecond))
	}

	fmt.Fprintf(&b, "\n-- parameter-server tiers --\n")
	for _, ti := range r.Tiers {
		fmt.Fprintf(&b, "  %-7s pulls %8d (%10d keys, %12v)   pushes %8d (%10d keys, %12v)   evicted %8d\n",
			ti.Name, ti.Stats.Pulls, ti.Stats.KeysPulled, ti.Stats.PullTime.Round(time.Microsecond),
			ti.Stats.Pushes, ti.Stats.KeysPushed, ti.Stats.PushTime.Round(time.Microsecond), ti.Stats.KeysEvicted)
	}
	if r.Remote == nil {
		fmt.Fprintf(&b, "mem-ps cache hit rate %.1f%%   ssd-ps: %d files, %d live / %d stale params, %d compactions, read amplification %.1fx\n",
			100*r.CacheHitRate, r.SSD.Files, r.SSD.LiveParams, r.SSD.StaleParams, r.SSD.Compactions, r.ReadAmplification)
		return b.String()
	}

	rr := r.Remote
	fmt.Fprintf(&b, "\n-- multi-process network (real wall time) --\n")
	fmt.Fprintf(&b, "  %d MEM-PS shard process(es): pulls %d (%d keys, %v)   pushes %d (%d keys, %v)\n",
		rr.Shards, rr.Pulls, rr.KeysPulled, rr.PullWall.Round(time.Microsecond),
		rr.Pushes, rr.KeysPushed, rr.PushWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "  payload %.2f MiB (fp32-equivalent)   rpcs %d   retries %d   reconnects %d\n",
		float64(rr.PayloadBytes)/(1<<20), rr.Calls, rr.Retries, rr.Redials)
	if rr.WireBytes > 0 && r.Batches > 0 {
		perBatch := float64(rr.WireBytes) / float64(r.Batches)
		line := fmt.Sprintf("  wire %.2f MiB on the socket (%s rows, %.1f KiB/batch)",
			float64(rr.WireBytes)/(1<<20), rr.Precision, perBatch/(1<<10))
		if rr.PayloadBytes > rr.WireBytes {
			line += fmt.Sprintf("   %.2fx smaller than fp32 payload", float64(rr.PayloadBytes)/float64(rr.WireBytes))
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}
