package trainer

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/memps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// shardServer is one in-test MEM-PS shard process stand-in: real TCP server,
// real SSD-PS directory, restartable with its state and dedup tracker.
type shardServer struct {
	mem  *memps.MemPS
	seqs *cluster.SeqTracker
	srv  *cluster.TCPServer
}

// startShards brings up one TCP shard server per node of topo, each hosting
// the MEM-PS (backed by an SSD-PS under t.TempDir) of its parameter shard.
func startShards(t *testing.T, topo cluster.Topology, dim int, seed int64, lru, lfu int) ([]*shardServer, map[int]string) {
	t.Helper()
	shards := make([]*shardServer, topo.Nodes)
	addrs := make(map[int]string, topo.Nodes)
	for i := 0; i < topo.Nodes; i++ {
		dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		store, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 64})
		if err != nil {
			t.Fatal(err)
		}
		mem, err := memps.New(memps.Config{
			NodeID:     i,
			Dim:        dim,
			Topology:   topo,
			Transport:  cluster.NoRoute{}, // a shard server never proxies peers
			Store:      store,
			LRUEntries: lru,
			LFUEntries: lfu,
			Seed:       seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		seqs := cluster.NewSeqTracker()
		srv, err := cluster.ServeTCPOptions("127.0.0.1:0", mem, cluster.ServerOptions{Seqs: seqs})
		if err != nil {
			t.Fatal(err)
		}
		sh := &shardServer{mem: mem, seqs: seqs, srv: srv}
		t.Cleanup(func() { sh.srv.Close() })
		shards[i] = sh
		addrs[i] = srv.Addr()
	}
	return shards, addrs
}

// TestRemoteShardsMatchLocalAUC is the acceptance check for multi-process
// training: the same Table-3-style workload trained against two MEM-PS shard
// processes over real TCP sockets must converge within 0.5% AUC of the
// in-process LocalTransport run.
func TestRemoteShardsMatchLocalAUC(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 7
	// One GPU per node and sequential node visits remove scheduling
	// nondeterminism (worker interleaving on the shared dense tower moves a
	// run's AUC by a few tenths of a percent either way), so the 0.5% band
	// measures the transport substitution and nothing else. The concurrent
	// paths are covered by the fault-injection tests below and by
	// TestMultiNodeMultiGPU.
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	batches, batchSize, evalN := 30, 128, 1500

	base := Config{
		Spec:        spec,
		Data:        data,
		Topology:    topo,
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 1,
		Seed:        seed,
	}
	runDeterministic := func(cfg Config) *Trainer {
		t.Helper()
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		tr.sequential = true
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	local := runDeterministic(base)
	localAUC := evalAUC(t, local, dataset.NewGenerator(data, 999), evalN)

	shards, addrs := startShards(t, topo, spec.EmbeddingDim, seed, 0, 0)
	remoteCfg := base
	remoteCfg.RemoteShards = addrs
	remote := runDeterministic(remoteCfg)
	remoteAUC := evalAUC(t, remote, dataset.NewGenerator(data, 999), evalN)

	t.Logf("local AUC = %.4f, remote AUC = %.4f", localAUC, remoteAUC)
	if localAUC < 0.6 {
		t.Fatalf("in-process run failed to learn (AUC %.4f)", localAUC)
	}
	if diff := math.Abs(localAUC - remoteAUC); diff > 0.005 {
		t.Fatalf("multi-process run diverged: |%.4f - %.4f| = %.4f > 0.005", remoteAUC, localAUC, diff)
	}

	r := remote.Report()
	if r.Remote == nil {
		t.Fatal("multi-process run must report real network activity")
	}
	if r.Remote.Pulls == 0 || r.Remote.Pushes == 0 || r.Remote.PullWall <= 0 {
		t.Fatalf("remote network report empty: %+v", r.Remote)
	}
	if len(r.Tiers) != 2 {
		t.Fatalf("remote run reports %d tiers, want hbm + mem", len(r.Tiers))
	}
	if r.Tiers[1].Name != "mem-ps" || r.Tiers[1].Stats.Pushes == 0 {
		t.Fatalf("remote mem-ps stats not fetched over the wire: %+v", r.Tiers[1])
	}
	// The shard servers did the parameter work: their MEM-PS must have seen
	// every batch's pushes.
	for i, sh := range shards {
		if sh.mem.TierStats().Pushes == 0 {
			t.Fatalf("shard %d never saw a push", i)
		}
	}
}

// TestQuantizedWireMatchesFP32AUC is the accuracy gate of the quantized
// transport: the same multi-process workload trained with fp16 and int8 wire
// rows must converge within 0.1% AUC of the fp32-wire run (0.2% when int8
// quantization is also applied to pushed gradients, the noisiest codec).
// Anything larger means the row codec is losing information training
// actually needs. Pull pipelining stays at 1 here so the runs share a batch
// schedule and the band measures the codec alone.
func TestQuantizedWireMatchesFP32AUC(t *testing.T) {
	data := testData()
	spec := testSpec()
	const seed = 7
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}

	base := Config{
		Spec:        spec,
		Data:        data,
		Topology:    topo,
		BatchSize:   128,
		Batches:     30,
		MaxInFlight: 1,
		Seed:        seed,
	}
	runAUC := func(cfg Config) float64 {
		t.Helper()
		_, addrs := startShards(t, topo, spec.EmbeddingDim, seed, 0, 0)
		cfg.RemoteShards = addrs
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		tr.sequential = true
		if err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if r := tr.Report(); r.Remote == nil || r.Remote.WireBytes == 0 {
			t.Fatalf("run reported no raw wire traffic: %+v", r.Remote)
		}
		// The 6000-example eval keeps sampling noise well under the 0.1%
		// gate; smaller eval sets turn benign trajectory jitter into flakes.
		return evalAUC(t, tr, dataset.NewGenerator(data, 999), 6000)
	}

	fp32 := runAUC(base)
	if fp32 < 0.6 {
		t.Fatalf("fp32-wire run failed to learn (AUC %.4f)", fp32)
	}
	for _, tc := range []struct {
		prec      string
		quantPush bool
	}{
		{"fp16", false},
		{"int8", false},
		{"fp16", true},
		{"int8", true},
	} {
		cfg := base
		cfg.WirePrecision = tc.prec
		cfg.QuantizePush = tc.quantPush
		name := tc.prec
		if tc.quantPush {
			name += "+push"
		}
		gate := 0.001
		if tc.prec == "int8" && tc.quantPush {
			// int8 rows in both directions compound rounding on every
			// pull/push pair; the trajectory stays learnable but wanders a
			// little further from the fp32 one.
			gate = 0.002
		}
		auc := runAUC(cfg)
		t.Logf("fp32 AUC = %.4f, %s AUC = %.4f", fp32, name, auc)
		if diff := math.Abs(fp32 - auc); diff > gate {
			t.Fatalf("%s wire diverged: |%.4f - %.4f| = %.4f > %g", name, auc, fp32, diff, gate)
		}
	}
}

// TestRemoteShardFailureRecovers kills a shard server mid-epoch and restarts
// it on the same address with the same shard state: the trainer's transport
// must reconnect and training must complete and converge, with no corrupted
// parameters. The run uses quantized frames and pipelined chunked pulls, so
// the reconnect tears down multiple raw-negotiated connections per peer.
func TestRemoteShardFailureRecovers(t *testing.T) {
	data := testData()
	spec := testSpec()
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	shards, addrs := startShards(t, topo, spec.EmbeddingDim, 3, 96, 96)

	tr, err := New(Config{
		Spec:          spec,
		Data:          data,
		Topology:      topo,
		BatchSize:     128,
		Batches:       20,
		MaxInFlight:   2,
		Seed:          3,
		RemoteShards:  addrs,
		RemoteRetry:   cluster.RetryPolicy{Attempts: 8, Backoff: 10 * time.Millisecond},
		WirePrecision: "fp16",
		PullPipeline:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	// Stretch the run so the outage lands mid-epoch.
	tr.stageDelay = map[string]time.Duration{StageTrain: 10 * time.Millisecond}

	runDone := make(chan error, 1)
	go func() { runDone <- tr.Run(context.Background()) }()

	// Kill shard 0 mid-run, then bring it back on the same address with the
	// same MEM-PS state and dedup tracker — a crash-restart with durable
	// shard state.
	time.Sleep(50 * time.Millisecond)
	sh := shards[0]
	addr := sh.srv.Addr()
	if err := sh.srv.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	srv2, err := cluster.ServeTCPOptions(addr, sh.mem, cluster.ServerOptions{Seqs: sh.seqs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	if err := <-runDone; err != nil {
		t.Fatalf("training did not survive the shard restart: %v", err)
	}
	r := tr.Report()
	if r.Remote == nil || r.Remote.Redials == 0 {
		t.Fatalf("run must have reconnected at least once: %+v", r.Remote)
	}
	auc := evalAUC(t, tr, dataset.NewGenerator(data, 999), 1000)
	if auc < 0.6 {
		t.Fatalf("post-recovery AUC = %.4f: parameters corrupted by the outage", auc)
	}
}

// TestRemoteShardFailureSurfacesTypedError checks the no-recovery path: when
// a shard dies for good, the pipeline drains and Run surfaces a retryable
// transport error the caller can classify, rather than hanging or panicking.
func TestRemoteShardFailureSurfacesTypedError(t *testing.T) {
	data := testData()
	spec := testSpec()
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	shards, addrs := startShards(t, topo, spec.EmbeddingDim, 3, 0, 0)

	tr, err := New(Config{
		Spec:         spec,
		Data:         data,
		Topology:     topo,
		BatchSize:    64,
		Batches:      50,
		MaxInFlight:  2,
		Seed:         3,
		RemoteShards: addrs,
		RemoteRetry:  cluster.RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.stageDelay = map[string]time.Duration{StageTrain: 5 * time.Millisecond}

	runDone := make(chan error, 1)
	go func() { runDone <- tr.Run(context.Background()) }()
	time.Sleep(30 * time.Millisecond)
	if err := shards[1].srv.Close(); err != nil {
		t.Fatal(err)
	}

	runErr := <-runDone
	if runErr == nil {
		t.Fatal("training against a dead shard must fail")
	}
	var te *cluster.TransportError
	if !errors.As(runErr, &te) {
		t.Fatalf("run error = %v, want a *cluster.TransportError in the chain", runErr)
	}
	if !cluster.Retryable(runErr) {
		t.Fatal("a dead-shard failure must classify as retryable")
	}
	// The surviving shard's parameters must still be readable and sane: the
	// failure tore down the run, not the parameter server state.
	if shards[0].mem.TierStats().Pulls == 0 {
		t.Fatal("surviving shard should have served pulls")
	}
	_ = tr.Close() // flush to the dead shard fails; Close must not hang or panic
}
