package trainer

import (
	"fmt"
	"sync"
	"time"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
)

// memService is the node-facing contract of the MEM-PS tier. The in-process
// memps.MemPS satisfies it directly; in multi-process mode a remoteMem
// satisfies it by RPC against the shard server processes, so the training
// stages are identical in both deployments.
type memService interface {
	Name() string
	TierStats() ps.Stats
	// PrepareInto assembles (and, where supported, pins) the working set of
	// a batch's referenced keys, delivering the values in dst's flat rows
	// (sorted unique-key order). The returned WorkingSet carries keys, pins
	// and statistics.
	PrepareInto(working []keys.Key, dst *ps.ValueBlock) (*memps.WorkingSet, error)
	// PushBlock merges the collected delta block (flat rows, changed keys
	// only) into the authoritative copies of the shard this node owns.
	PushBlock(req ps.PushBlockRequest) error
	// CompleteBatch releases a prepared working set.
	CompleteBatch(ws *memps.WorkingSet) error
	// LookupAll reads current values without materializing missing keys.
	// A missing key is absent from the result; an error means the values
	// could not be read at all (e.g. an unreachable shard).
	LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error)
	// Flush persists the in-memory parameters to the SSD-PS below.
	Flush() error
}

var _ memService = (*memps.MemPS)(nil)

// remoteNet accumulates the real network activity of a multi-process run —
// wall-clock time and payload bytes of the parameter RPCs — for the Fig-4
// style breakdown.
type remoteNet struct {
	mu         sync.Mutex
	pulls      int64
	pushes     int64
	keysPulled int64
	keysPushed int64
	bytes      int64
	pullWall   time.Duration
	pushWall   time.Duration
	// failovers counts operations that only succeeded against a backup after
	// the primary was unreachable — the degraded-window marker of a run.
	failovers int64
}

func (r *remoteNet) recordFailover() {
	r.mu.Lock()
	r.failovers++
	r.mu.Unlock()
}

func (r *remoteNet) recordPull(nkeys int, bytes int64, wall time.Duration) {
	r.mu.Lock()
	r.pulls++
	r.keysPulled += int64(nkeys)
	r.bytes += bytes
	r.pullWall += wall
	r.mu.Unlock()
}

func (r *remoteNet) recordPush(nkeys int, bytes int64, wall time.Duration) {
	r.mu.Lock()
	r.pushes++
	r.keysPushed += int64(nkeys)
	r.bytes += bytes
	r.pushWall += wall
	r.mu.Unlock()
}

// remoteMem is one virtual node's view of the sharded remote MEM-PS tier:
// the node's batches pull their working sets from the owning shard processes
// and push this node's shard partition of the global deltas back. All nodes
// share one transport (connection reuse across the driver).
type remoteMem struct {
	transport cluster.TierTransport
	node      int
	dim       int
	topo      cluster.Topology
	net       *remoteNet
	// vnodes is the number of trainer virtual nodes; shard partitions are
	// assigned to virtual nodes round-robin over the sorted member list, so a
	// ring with more (or fewer) shards than virtual nodes still has every
	// partition pushed by exactly one node per batch.
	vnodes int
	// pipeline is the per-shard pull fan-out (Config.PullPipeline): when > 1,
	// PrepareInto splits each shard's key partition into up to pipeline chunks
	// and pulls them as concurrent RPCs over the transport's extra
	// connections.
	pipeline int
}

// stampedPusher is the transport surface of push failover: take a dedup stamp
// up front, push under it, and on primary outage deliver the same rows to the
// backups via the replicate op under the SAME stamp — identical to the
// forward the primary would have sent, so it dedups against it.
type stampedPusher interface {
	Stamp() (client, seq uint64)
	PushBlockStamped(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error)
	Replicate(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error)
}

// assigned returns the member shards whose push partitions this virtual node
// is responsible for: sorted member j goes to virtual node j mod vnodes.
// Without a ring the mapping is the original one-to-one node id.
func (r *remoteMem) assigned() []int {
	if r.topo.Members == nil {
		return []int{r.node}
	}
	members := r.topo.MemberIDs()
	out := make([]int, 0, len(members)/r.vnodes+1)
	for j, m := range members {
		if j%r.vnodes == r.node {
			out = append(out, m)
		}
	}
	return out
}

// pullChunkMin is the smallest key chunk PrepareInto will split a shard
// partition into: below this the per-RPC overhead outweighs the overlap.
const pullChunkMin = 64

var _ memService = (*remoteMem)(nil)

// Name implements memService; the remote tier is still the MEM-PS.
func (r *remoteMem) Name() string { return "mem-ps" }

// TierStats fetches the assigned shards' own uniform statistics. An
// unreachable shard reports zero statistics — reports are best-effort and
// must not fail a run that already completed; the RemoteNetReport's
// retry/reconnect counters record that the run had connectivity trouble.
func (r *remoteMem) TierStats() ps.Stats {
	var sum ps.Stats
	for _, m := range r.assigned() {
		info, err := r.transport.TierStats(m)
		if err != nil {
			continue
		}
		sum = sum.Add(info.Stats)
	}
	return sum
}

// PrepareInto implements memService: the working set is assembled by
// pulling every key partition from its owning shard process, concurrently —
// as one flat block frame per shard (no per-value gob decoding), scattered
// into dst's sorted rows; transports without block support fall back to
// map-based pulls per shard. There is no local pinning: the shard processes
// own cache retention, so the working set only carries keys and timing.
func (r *remoteMem) PrepareInto(working []keys.Key, dst *ps.ValueBlock) (*memps.WorkingSet, error) {
	if !keys.SortedUnique(working) {
		working = keys.Dedup(append([]keys.Key(nil), working...))
	}
	dst.Reset(r.dim, working)
	ws := &memps.WorkingSet{RemoteKeys: working}
	ws.Stats.RemoteKeys = len(working)

	bt, _ := r.transport.(cluster.BlockTransport)
	type pullResult struct {
		res cluster.PullResult
		sub *ps.ValueBlock
		err error
	}
	parts := r.topo.SplitByNode(working)
	fanOut := r.pipeline
	if fanOut < 1 || bt == nil {
		fanOut = 1
	}
	start := time.Now()
	resultCh := make(chan pullResult, len(parts)*fanOut)
	inFlight := 0
	for nodeID, ks := range parts {
		if len(ks) == 0 {
			continue
		}
		// Pipelined pulls: split the shard's partition into up to fanOut
		// chunks and issue each as its own RPC, so the chunks stream over the
		// transport's extra connections concurrently and decode overlaps
		// network wait.
		chunks := 1
		if fanOut > 1 {
			chunks = min(fanOut, (len(ks)+pullChunkMin-1)/pullChunkMin)
		}
		size := (len(ks) + chunks - 1) / chunks
		for off := 0; off < len(ks); off += size {
			sub := ks[off:min(off+size, len(ks))]
			inFlight++
			go func(nodeID int, ks []keys.Key) {
				if bt != nil {
					sub := ps.GetBlock(r.dim, ks)
					bytes, err := bt.PullBlock(nodeID, ks, sub)
					if err != nil && r.topo.Replicas > 1 {
						// Primary outage: re-pull this partition from each
						// key's backup, which holds (or identically
						// materializes) the replicated rows.
						bytes, err = r.pullFailover(bt, ks, sub)
						if err == nil {
							r.net.recordFailover()
						}
					}
					if err == nil {
						r.net.recordPull(len(ks), bytes, time.Since(start))
					}
					resultCh <- pullResult{sub: sub, err: err}
					return
				}
				res, bytes, err := r.transport.Pull(nodeID, ks)
				if err == nil {
					r.net.recordPull(len(ks), bytes, time.Since(start))
				}
				resultCh <- pullResult{res: res, err: err}
			}(nodeID, sub)
		}
	}
	var firstErr error
	for i := 0; i < inFlight; i++ {
		pr := <-resultCh
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			ps.PutBlock(pr.sub)
			continue
		}
		if pr.sub != nil {
			dst.ScatterRows(pr.sub) // drops rows the shard was never asked for
			ps.PutBlock(pr.sub)
			continue
		}
		dst.ScatterResult(ps.Result(pr.res))
	}
	if firstErr != nil {
		return nil, fmt.Errorf("trainer: remote prepare: %w", firstErr)
	}
	ws.Stats.RemoteTime = time.Since(start)
	if got := dst.PresentCount(); got != len(working) {
		// The MEM-PS materializes first references, so a shard that answered
		// at all answers completely; a gap means a shard bug.
		return nil, fmt.Errorf("trainer: remote prepare returned %d of %d keys", got, len(working))
	}
	return ws, nil
}

// pullFailover re-pulls a primary's partition from each key's backup and
// scatters the rows into dst. Backups legitimately answer for the keys they
// replicate, and first references materialize identically everywhere (the
// keyed init is node-independent), so the assembled working set matches what
// the primary would have served up to the bounded replication lag.
func (r *remoteMem) pullFailover(bt cluster.BlockTransport, ks []keys.Key, dst *ps.ValueBlock) (int64, error) {
	parts := make(map[int][]keys.Key, 2)
	for _, k := range ks {
		b := r.topo.BackupOf(k)
		if b < 0 {
			return 0, fmt.Errorf("key %d has no backup", k)
		}
		parts[b] = append(parts[b], k)
	}
	dst.Reset(r.dim, ks)
	var total int64
	for b, bks := range parts {
		sub := ps.GetBlock(r.dim, bks)
		bytes, err := bt.PullBlock(b, bks, sub)
		if err != nil {
			ps.PutBlock(sub)
			return 0, fmt.Errorf("backup %d: %w", b, err)
		}
		dst.ScatterRows(sub)
		ps.PutBlock(sub)
		total += bytes
	}
	return total, nil
}

// PushBlock implements memService: it sends each assigned member shard's
// partition of the global delta block to its owning shard process. Every
// partition is pushed by exactly one virtual node per batch, so each shard
// applies the global sum exactly once — the same once-per-owner discipline as
// the in-process MEM-PS. The owned rows are sliced out of the (sorted) global
// block into a pooled sub-block slab-wise and travel as one flat wire frame;
// transports without block support fall back to a map push of the same
// partition.
func (r *remoteMem) PushBlock(req ps.PushBlockRequest) error {
	for _, m := range r.assigned() {
		if err := r.pushOwned(m, req.Block); err != nil {
			return err
		}
	}
	return nil
}

// pushOwned pushes member's partition of blk. When the member is unreachable
// and the deployment is replicated, the partition fails over: its rows are
// re-split per key by backup and delivered through the replicate op under the
// push's ORIGINAL dedup stamp — byte-for-byte the forwards the dead primary
// would have sent, so a backup that already received them acks duplicates
// instead of double-applying, and one that did not applies them fresh. Either
// way no applied push is lost and none is applied twice.
func (r *remoteMem) pushOwned(member int, blk *ps.ValueBlock) error {
	sub := ps.GetBlock(r.dim, nil)
	defer ps.PutBlock(sub)
	sub.Grow(blk.Len())
	for i, k := range blk.Keys {
		if blk.Present[i] && r.topo.NodeOf(k) == member {
			sub.AppendRow(k, blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i])
		}
	}
	if sub.Len() == 0 {
		return nil
	}
	bt, _ := r.transport.(cluster.BlockTransport)
	sp, _ := r.transport.(stampedPusher)
	start := time.Now()
	var bytes int64
	var err error
	switch {
	case sp != nil:
		client, seq := sp.Stamp()
		bytes, err = sp.PushBlockStamped(member, client, seq, sub)
		if err != nil && r.topo.Replicas > 1 {
			bytes, err = r.pushFailover(sp, client, seq, sub)
			if err == nil {
				r.net.recordFailover()
			}
		}
	case bt != nil:
		bytes, err = bt.PushBlock(member, sub)
	default:
		bytes, err = r.transport.Push(member, sub.Deltas())
	}
	if err != nil {
		return fmt.Errorf("trainer: remote push: %w", err)
	}
	r.net.recordPush(sub.Len(), bytes, time.Since(start))
	return nil
}

// pushFailover delivers sub's rows to each key's backup under the failed
// push's stamp (see pushOwned).
func (r *remoteMem) pushFailover(sp stampedPusher, client, seq uint64, sub *ps.ValueBlock) (int64, error) {
	parts := make(map[int]*ps.ValueBlock, 2)
	defer func() {
		for _, p := range parts {
			ps.PutBlock(p)
		}
	}()
	for i, k := range sub.Keys {
		if !sub.Present[i] {
			continue
		}
		b := r.topo.BackupOf(k)
		if b < 0 {
			return 0, fmt.Errorf("key %d has no backup", k)
		}
		p := parts[b]
		if p == nil {
			p = ps.GetBlock(r.dim, nil)
			parts[b] = p
		}
		p.AppendRow(k, sub.WeightsRow(i), sub.G2Row(i), sub.Freq[i])
	}
	var total int64
	for b, p := range parts {
		n, err := sp.Replicate(b, client, seq, p)
		if err != nil {
			return 0, fmt.Errorf("backup %d: %w", b, err)
		}
		total += n
	}
	return total, nil
}

// CompleteBatch implements memService. Nothing was pinned driver-side, and
// the shard server runs its own housekeeping from the push RPC.
func (r *remoteMem) CompleteBatch(*memps.WorkingSet) error { return nil }

// LookupAll implements memService with the no-create lookup RPC, split by
// owning member and failing over to each key's backup when an owner is
// unreachable.
func (r *remoteMem) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	for owner, part := range r.topo.SplitByNode(ks) {
		if len(part) == 0 {
			continue
		}
		res, _, err := r.transport.Lookup(owner, part)
		if err != nil && r.topo.Replicas > 1 {
			res, err = r.lookupFailover(part, err)
		}
		if err != nil {
			return nil, fmt.Errorf("trainer: remote lookup: %w", err)
		}
		for k, v := range res {
			out[k] = v
		}
	}
	return out, nil
}

// lookupFailover reads part from each key's backup after its owner failed
// with primErr.
func (r *remoteMem) lookupFailover(part []keys.Key, primErr error) (cluster.PullResult, error) {
	parts := make(map[int][]keys.Key, 2)
	for _, k := range part {
		b := r.topo.BackupOf(k)
		if b < 0 {
			return nil, primErr
		}
		parts[b] = append(parts[b], k)
	}
	out := make(cluster.PullResult, len(part))
	for b, bks := range parts {
		res, _, err := r.transport.Lookup(b, bks)
		if err != nil {
			return nil, fmt.Errorf("%v; backup %d: %w", primErr, b, err)
		}
		for k, v := range res {
			out[k] = v
		}
	}
	r.net.recordFailover()
	return out, nil
}

// Flush implements memService: an evict-everything RPC against each assigned
// member shard, which demotes its entire in-memory state to its SSD-PS.
func (r *remoteMem) Flush() error {
	for _, m := range r.assigned() {
		if _, err := r.transport.Evict(m, nil); err != nil {
			return fmt.Errorf("trainer: remote flush shard %d: %w", m, err)
		}
	}
	return nil
}

// RemoteNetReport is the real-network section of a multi-process run's
// report: RPC counts, payload bytes and wall-clock time measured at the
// driver, plus the transport's connection-level counters.
type RemoteNetReport struct {
	// Shards is the number of MEM-PS shard processes.
	Shards int
	// Pulls / Pushes count parameter RPCs; KeysPulled / KeysPushed count the
	// parameters they moved.
	Pulls, Pushes          int64
	KeysPulled, KeysPushed int64
	// PayloadBytes is the fp32-equivalent payload volume of the parameter
	// RPCs — the bytes the run would have moved without quantization.
	PayloadBytes int64
	// WireBytes counts the bytes that actually crossed the sockets (raw
	// frames, quantized rows); zero when the transport only spoke gob.
	// Comparing it with PayloadBytes shows the quantization saving.
	WireBytes int64
	// Precision names the negotiated on-wire row encoding (fp32/fp16/int8).
	Precision string
	// PullWall / PushWall are cumulative wall-clock times of the RPCs (the
	// real network component of the batch breakdown).
	PullWall, PushWall time.Duration
	// Calls / Retries / Redials are the transport's connection counters;
	// non-zero Redials means the run rode out at least one reconnect.
	Calls, Retries, Redials int64
	// Failovers counts operations served by a backup shard because the
	// primary was unreachable — non-zero means the run trained (or read)
	// through a degraded window.
	Failovers int64
}
