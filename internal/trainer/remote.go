package trainer

import (
	"fmt"
	"sync"
	"time"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
)

// memService is the node-facing contract of the MEM-PS tier. The in-process
// memps.MemPS satisfies it directly; in multi-process mode a remoteMem
// satisfies it by RPC against the shard server processes, so the training
// stages are identical in both deployments.
type memService interface {
	Name() string
	TierStats() ps.Stats
	// PrepareInto assembles (and, where supported, pins) the working set of
	// a batch's referenced keys, delivering the values in dst's flat rows
	// (sorted unique-key order). The returned WorkingSet carries keys, pins
	// and statistics.
	PrepareInto(working []keys.Key, dst *ps.ValueBlock) (*memps.WorkingSet, error)
	// PushBlock merges the collected delta block (flat rows, changed keys
	// only) into the authoritative copies of the shard this node owns.
	PushBlock(req ps.PushBlockRequest) error
	// CompleteBatch releases a prepared working set.
	CompleteBatch(ws *memps.WorkingSet) error
	// LookupAll reads current values without materializing missing keys.
	// A missing key is absent from the result; an error means the values
	// could not be read at all (e.g. an unreachable shard).
	LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error)
	// Flush persists the in-memory parameters to the SSD-PS below.
	Flush() error
}

var _ memService = (*memps.MemPS)(nil)

// remoteNet accumulates the real network activity of a multi-process run —
// wall-clock time and payload bytes of the parameter RPCs — for the Fig-4
// style breakdown.
type remoteNet struct {
	mu         sync.Mutex
	pulls      int64
	pushes     int64
	keysPulled int64
	keysPushed int64
	bytes      int64
	pullWall   time.Duration
	pushWall   time.Duration
}

func (r *remoteNet) recordPull(nkeys int, bytes int64, wall time.Duration) {
	r.mu.Lock()
	r.pulls++
	r.keysPulled += int64(nkeys)
	r.bytes += bytes
	r.pullWall += wall
	r.mu.Unlock()
}

func (r *remoteNet) recordPush(nkeys int, bytes int64, wall time.Duration) {
	r.mu.Lock()
	r.pushes++
	r.keysPushed += int64(nkeys)
	r.bytes += bytes
	r.pushWall += wall
	r.mu.Unlock()
}

// remoteMem is one virtual node's view of the sharded remote MEM-PS tier:
// the node's batches pull their working sets from the owning shard processes
// and push this node's shard partition of the global deltas back. All nodes
// share one transport (connection reuse across the driver).
type remoteMem struct {
	transport cluster.TierTransport
	node      int
	dim       int
	topo      cluster.Topology
	net       *remoteNet
	// pipeline is the per-shard pull fan-out (Config.PullPipeline): when > 1,
	// PrepareInto splits each shard's key partition into up to pipeline chunks
	// and pulls them as concurrent RPCs over the transport's extra
	// connections.
	pipeline int
}

// pullChunkMin is the smallest key chunk PrepareInto will split a shard
// partition into: below this the per-RPC overhead outweighs the overlap.
const pullChunkMin = 64

var _ memService = (*remoteMem)(nil)

// Name implements memService; the remote tier is still the MEM-PS.
func (r *remoteMem) Name() string { return "mem-ps" }

// TierStats fetches the serving shard's own uniform statistics. An
// unreachable shard reports zero statistics — reports are best-effort and
// must not fail a run that already completed; the RemoteNetReport's
// retry/reconnect counters record that the run had connectivity trouble.
func (r *remoteMem) TierStats() ps.Stats {
	info, err := r.transport.TierStats(r.node)
	if err != nil {
		return ps.Stats{}
	}
	return info.Stats
}

// PrepareInto implements memService: the working set is assembled by
// pulling every key partition from its owning shard process, concurrently —
// as one flat block frame per shard (no per-value gob decoding), scattered
// into dst's sorted rows; transports without block support fall back to
// map-based pulls per shard. There is no local pinning: the shard processes
// own cache retention, so the working set only carries keys and timing.
func (r *remoteMem) PrepareInto(working []keys.Key, dst *ps.ValueBlock) (*memps.WorkingSet, error) {
	if !keys.SortedUnique(working) {
		working = keys.Dedup(append([]keys.Key(nil), working...))
	}
	dst.Reset(r.dim, working)
	ws := &memps.WorkingSet{RemoteKeys: working}
	ws.Stats.RemoteKeys = len(working)

	bt, _ := r.transport.(cluster.BlockTransport)
	type pullResult struct {
		res cluster.PullResult
		sub *ps.ValueBlock
		err error
	}
	parts := r.topo.SplitByNode(working)
	fanOut := r.pipeline
	if fanOut < 1 || bt == nil {
		fanOut = 1
	}
	start := time.Now()
	resultCh := make(chan pullResult, len(parts)*fanOut)
	inFlight := 0
	for nodeID, ks := range parts {
		if len(ks) == 0 {
			continue
		}
		// Pipelined pulls: split the shard's partition into up to fanOut
		// chunks and issue each as its own RPC, so the chunks stream over the
		// transport's extra connections concurrently and decode overlaps
		// network wait.
		chunks := 1
		if fanOut > 1 {
			chunks = min(fanOut, (len(ks)+pullChunkMin-1)/pullChunkMin)
		}
		size := (len(ks) + chunks - 1) / chunks
		for off := 0; off < len(ks); off += size {
			sub := ks[off:min(off+size, len(ks))]
			inFlight++
			go func(nodeID int, ks []keys.Key) {
				if bt != nil {
					sub := ps.GetBlock(r.dim, ks)
					bytes, err := bt.PullBlock(nodeID, ks, sub)
					if err == nil {
						r.net.recordPull(len(ks), bytes, time.Since(start))
					}
					resultCh <- pullResult{sub: sub, err: err}
					return
				}
				res, bytes, err := r.transport.Pull(nodeID, ks)
				if err == nil {
					r.net.recordPull(len(ks), bytes, time.Since(start))
				}
				resultCh <- pullResult{res: res, err: err}
			}(nodeID, sub)
		}
	}
	var firstErr error
	for i := 0; i < inFlight; i++ {
		pr := <-resultCh
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			ps.PutBlock(pr.sub)
			continue
		}
		if pr.sub != nil {
			dst.ScatterRows(pr.sub) // drops rows the shard was never asked for
			ps.PutBlock(pr.sub)
			continue
		}
		dst.ScatterResult(ps.Result(pr.res))
	}
	if firstErr != nil {
		return nil, fmt.Errorf("trainer: remote prepare: %w", firstErr)
	}
	ws.Stats.RemoteTime = time.Since(start)
	if got := dst.PresentCount(); got != len(working) {
		// The MEM-PS materializes first references, so a shard that answered
		// at all answers completely; a gap means a shard bug.
		return nil, fmt.Errorf("trainer: remote prepare returned %d of %d keys", got, len(working))
	}
	return ws, nil
}

// PushBlock implements memService: it sends this node's shard partition of
// the global delta block to the owning shard process. Every virtual node
// pushes only its own partition, so each shard applies the global sum exactly
// once per batch — the same once-per-owner discipline as the in-process
// MEM-PS. The owned rows are sliced out of the (sorted) global block into a
// pooled sub-block slab-wise and travel as one flat wire frame; transports
// without block support fall back to a map push of the same partition.
func (r *remoteMem) PushBlock(req ps.PushBlockRequest) error {
	blk := req.Block
	sub := ps.GetBlock(r.dim, nil)
	defer ps.PutBlock(sub)
	sub.Grow(blk.Len())
	for i, k := range blk.Keys {
		if blk.Present[i] && r.topo.NodeOf(k) == r.node {
			sub.AppendRow(k, blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i])
		}
	}
	if sub.Len() == 0 {
		return nil
	}
	bt, _ := r.transport.(cluster.BlockTransport)
	start := time.Now()
	var bytes int64
	var err error
	if bt != nil {
		bytes, err = bt.PushBlock(r.node, sub)
	} else {
		bytes, err = r.transport.Push(r.node, sub.Deltas())
	}
	if err != nil {
		return fmt.Errorf("trainer: remote push: %w", err)
	}
	r.net.recordPush(sub.Len(), bytes, time.Since(start))
	return nil
}

// CompleteBatch implements memService. Nothing was pinned driver-side, and
// the shard server runs its own housekeeping from the push RPC.
func (r *remoteMem) CompleteBatch(*memps.WorkingSet) error { return nil }

// LookupAll implements memService with the no-create lookup RPC.
func (r *remoteMem) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	res, _, err := r.transport.Lookup(r.node, ks)
	if err != nil {
		return nil, fmt.Errorf("trainer: remote lookup: %w", err)
	}
	return res, nil
}

// Flush implements memService: an evict-everything RPC, which demotes the
// shard's entire in-memory state to its SSD-PS.
func (r *remoteMem) Flush() error {
	_, err := r.transport.Evict(r.node, nil)
	if err != nil {
		return fmt.Errorf("trainer: remote flush: %w", err)
	}
	return nil
}

// RemoteNetReport is the real-network section of a multi-process run's
// report: RPC counts, payload bytes and wall-clock time measured at the
// driver, plus the transport's connection-level counters.
type RemoteNetReport struct {
	// Shards is the number of MEM-PS shard processes.
	Shards int
	// Pulls / Pushes count parameter RPCs; KeysPulled / KeysPushed count the
	// parameters they moved.
	Pulls, Pushes          int64
	KeysPulled, KeysPushed int64
	// PayloadBytes is the fp32-equivalent payload volume of the parameter
	// RPCs — the bytes the run would have moved without quantization.
	PayloadBytes int64
	// WireBytes counts the bytes that actually crossed the sockets (raw
	// frames, quantized rows); zero when the transport only spoke gob.
	// Comparing it with PayloadBytes shows the quantization saving.
	WireBytes int64
	// Precision names the negotiated on-wire row encoding (fp32/fp16/int8).
	Precision string
	// PullWall / PushWall are cumulative wall-clock times of the RPCs (the
	// real network component of the batch breakdown).
	PullWall, PushWall time.Duration
	// Calls / Retries / Redials are the transport's connection counters;
	// non-zero Redials means the run rode out at least one reconnect.
	Calls, Retries, Redials int64
}
