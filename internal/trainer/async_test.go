package trainer

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
)

// TestAsyncPushLagAndStalenessBounded pins the two bounds the async committer
// sells: at most PushLag pushes are outstanding at any moment, and a batch
// entering stageTrain is at most depth-1+lag batches ahead of the applied-push
// watermark. The commit delay hook keeps the committer permanently behind, so
// both bounds are actually driven to their limits instead of passing vacuously.
func TestAsyncPushLagAndStalenessBounded(t *testing.T) {
	const batches, depth, lag = 16, 4, 2
	tr, err := New(Config{
		Spec:        testSpec(),
		Data:        testData(),
		Topology:    cluster.Topology{Nodes: 2, GPUsPerNode: 2},
		BatchSize:   64,
		Batches:     batches,
		MaxInFlight: depth,
		AsyncPush:   true,
		PushLag:     lag,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	tr.committer.commitDelay = 2 * time.Millisecond
	if err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Run drains the committer before returning: nothing may still be pending,
	// and the committed watermark must cover every batch.
	if p := tr.committer.pending.Load(); p != 0 {
		t.Fatalf("committer still has %d pending push(es) after Run", p)
	}
	if c := tr.committer.committed.Load(); c != batches {
		t.Fatalf("committed watermark = %d, want %d", c, batches)
	}

	rep := tr.Report()
	if !rep.AsyncPush || rep.PushLagLimit != lag {
		t.Fatalf("report does not carry the async-push config: %+v", rep)
	}
	if rep.AsyncPushes != batches {
		t.Fatalf("report counts %d async pushes, want %d", rep.AsyncPushes, batches)
	}
	if rep.MaxPushLag < 1 || rep.MaxPushLag > lag {
		t.Fatalf("observed push lag %d outside [1, %d]", rep.MaxPushLag, lag)
	}
	if limit := int64(depth - 1 + lag); rep.StaleMaxBatches > limit {
		t.Fatalf("staleness %d batches exceeds depth-1+lag = %d", rep.StaleMaxBatches, limit)
	}
}

// TestAsyncPushMatchesSyncAUC is the quality half of the async-push trade: at
// the default depth, deferring the MEM-PS apply by up to PushLag batches must
// not move the converged AUC by more than the pipelining tolerance the paper's
// Fig 3(b) argument allows.
func TestAsyncPushMatchesSyncAUC(t *testing.T) {
	data := testData()
	// Both runs must be at their convergence plateau for the 0.005 band to
	// measure the asynchrony rather than unfinished training: the realized
	// staleness varies with scheduling (the race detector skews it hard), and
	// mid-convergence that noise shows up directly in the AUC.
	const batches, batchSize, evalN = 50, 128, 1500
	base := Config{
		Spec:        testSpec(),
		Data:        data,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 4,
		Seed:        7,
	}
	sync := runTrainer(t, base)
	syncAUC := evalAUC(t, sync, dataset.NewGenerator(data, 999), evalN)

	asyncCfg := base
	asyncCfg.AsyncPush = true
	asyncCfg.PushLag = 2
	async := runTrainer(t, asyncCfg)
	asyncAUC := evalAUC(t, async, dataset.NewGenerator(data, 999), evalN)

	t.Logf("sync AUC = %.4f, async-push AUC = %.4f", syncAUC, asyncAUC)
	if syncAUC < 0.6 {
		t.Fatalf("synchronous baseline failed to learn (AUC %.4f)", syncAUC)
	}
	if diff := math.Abs(syncAUC - asyncAUC); diff > 0.005 {
		t.Fatalf("async push moved the AUC: |%.4f - %.4f| = %.4f > 0.005",
			asyncAUC, syncAUC, diff)
	}
}

// TestAsyncPushCheckpointRestores pins the durability ordering: a checkpoint
// cut while the committer is deliberately lagging must still cover every push
// for batches below the cursor (Flush drains the committer before the shards
// flush and the manifest is written), so a fresh trainer restoring from it
// resumes cleanly and lands on the synchronous run's quality.
func TestAsyncPushCheckpointRestores(t *testing.T) {
	data := testData()
	// Plateau-length run, same as TestAsyncPushMatchesSyncAUC: the final
	// comparison must measure a lost push, not convergence noise.
	const batches, batchSize, evalN = 50, 128, 1500
	base := Config{
		Spec:        testSpec(),
		Data:        data,
		Topology:    cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		BatchSize:   batchSize,
		Batches:     batches,
		MaxInFlight: 4,
		AsyncPush:   true,
		PushLag:     2,
		Seed:        11,
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	halfCfg := base
	halfCfg.Dir = filepath.Join(dir, "state")
	halfCfg.Batches = batches / 2
	halfCfg.CheckpointPath = ckpt
	halfCfg.CheckpointInterval = 7 // mid-run cuts while pushes are in flight
	half, err := New(halfCfg)
	if err != nil {
		t.Fatal(err)
	}
	half.committer.commitDelay = time.Millisecond
	if err := half.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := half.Close(); err != nil {
		t.Fatal(err)
	}

	resumeCfg := base
	resumeCfg.Dir = halfCfg.Dir
	resumeCfg.CheckpointPath = ckpt
	resumed, err := New(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resumed.Close() })
	resumed.committer.commitDelay = time.Millisecond
	done, err := resumed.Restore(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if done != batches/2 {
		t.Fatalf("restore resumed at batch %d, checkpoint was cut at %d", done, batches/2)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Examples(), int64(batches*batchSize); got != want {
		t.Fatalf("resumed run trained %d examples in total, want %d", got, want)
	}

	// Quality check against a straight uninterrupted run of the SAME async
	// config under the same commit delay: the delayed committer costs a sliver
	// of quality by design (that is the staleness trade), so a synchronous run
	// is the wrong oracle. Matching the straight async run isolates exactly
	// what this test pins — a push lost at the checkpoint cut would open a
	// converged-AUC gap between the two.
	straight, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { straight.Close() })
	straight.committer.commitDelay = time.Millisecond
	if err := straight.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := evalAUC(t, straight, dataset.NewGenerator(data, 999), evalN)
	got := evalAUC(t, resumed, dataset.NewGenerator(data, 999), evalN)
	t.Logf("straight async AUC = %.4f, async checkpoint+resume AUC = %.4f", want, got)
	if want < 0.6 {
		t.Fatalf("straight async baseline failed to learn (AUC %.4f)", want)
	}
	if diff := math.Abs(want - got); diff > 0.005 {
		t.Fatalf("async resume diverged: |%.4f - %.4f| = %.4f > 0.005", got, want, diff)
	}
}
