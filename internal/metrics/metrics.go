// Package metrics implements the evaluation metrics reported in the paper:
// AUC (area under the ROC curve, the quality measure of Section 7.1),
// log-loss, and throughput meters used by the experiment harness.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// AUC computes the exact area under the ROC curve for binary labels using the
// rank-sum formulation. Tied scores share their average rank. It returns 0.5
// when either class is absent (no ranking information).
func AUC(scores []float64, labels []float64) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var posCount, negCount float64
	var rankSumPos float64
	i := 0
	rank := 1.0
	for i < n {
		// Group ties and assign the average rank.
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avgRank := (rank + rank + float64(j-i) - 1) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] > 0.5 {
				rankSumPos += avgRank
				posCount++
			} else {
				negCount++
			}
		}
		rank += float64(j - i)
		i = j
	}
	if posCount == 0 || negCount == 0 {
		return 0.5
	}
	return (rankSumPos - posCount*(posCount+1)/2) / (posCount * negCount)
}

// AUCAccumulator incrementally collects (score, label) pairs and computes AUC
// on demand. It is safe for concurrent Add calls.
type AUCAccumulator struct {
	mu     sync.Mutex
	scores []float64
	labels []float64
}

// NewAUCAccumulator returns an empty accumulator.
func NewAUCAccumulator() *AUCAccumulator { return &AUCAccumulator{} }

// Add records one prediction.
func (a *AUCAccumulator) Add(score, label float64) {
	a.mu.Lock()
	a.scores = append(a.scores, score)
	a.labels = append(a.labels, label)
	a.mu.Unlock()
}

// AddBatch records a batch of predictions.
func (a *AUCAccumulator) AddBatch(scores, labels []float64) {
	a.mu.Lock()
	a.scores = append(a.scores, scores...)
	a.labels = append(a.labels, labels...)
	a.mu.Unlock()
}

// Count returns the number of recorded predictions.
func (a *AUCAccumulator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.scores)
}

// AUC computes the AUC over everything recorded so far.
func (a *AUCAccumulator) AUC() float64 {
	a.mu.Lock()
	s := append([]float64(nil), a.scores...)
	l := append([]float64(nil), a.labels...)
	a.mu.Unlock()
	return AUC(s, l)
}

// Reset discards all recorded predictions.
func (a *AUCAccumulator) Reset() {
	a.mu.Lock()
	a.scores = a.scores[:0]
	a.labels = a.labels[:0]
	a.mu.Unlock()
}

// LogLossAccumulator accumulates the mean binary cross-entropy.
type LogLossAccumulator struct {
	mu    sync.Mutex
	sum   float64
	count int64
}

// Add records one prediction p for label y, clamping p into (0,1).
func (l *LogLossAccumulator) Add(p, y float64) {
	const eps = 1e-7
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	var loss float64
	if y > 0.5 {
		loss = -math.Log(p)
	} else {
		loss = -math.Log(1 - p)
	}
	l.mu.Lock()
	l.sum += loss
	l.count++
	l.mu.Unlock()
}

// Mean returns the mean loss, or 0 if nothing was recorded.
func (l *LogLossAccumulator) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// Count returns the number of recorded predictions.
func (l *LogLossAccumulator) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Throughput summarizes an experiment's training rate.
type Throughput struct {
	// Examples is the number of examples processed.
	Examples int64
	// Elapsed is the (modelled or wall-clock) time taken.
	Elapsed time.Duration
}

// ExamplesPerSecond returns the training throughput, the y-axis of Fig 3(a)
// and Fig 5(b).
func (t Throughput) ExamplesPerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Examples) / t.Elapsed.Seconds()
}

// Speedup returns how many times faster t is than baseline (ratio of
// examples/second). It returns 0 if either throughput is degenerate.
func (t Throughput) Speedup(baseline Throughput) float64 {
	a := t.ExamplesPerSecond()
	b := baseline.ExamplesPerSecond()
	if a <= 0 || b <= 0 {
		return 0
	}
	return a / b
}

// CostNormalizedSpeedup applies the paper's cost normalization
// (Section 7.1): speedup / gpuNodes / costRatio * mpiNodes, where costRatio
// is how many MPI nodes one GPU node costs.
func CostNormalizedSpeedup(speedup float64, gpuNodes, mpiNodes int, costRatio float64) float64 {
	if gpuNodes <= 0 || costRatio <= 0 {
		return 0
	}
	return speedup / float64(gpuNodes) / costRatio * float64(mpiNodes)
}

// Histogram is a fixed-bucket histogram used to summarize per-batch timings.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64
	samples int64
	sum     float64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds; values above the last bound land in an overflow bucket.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.samples++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Mean returns the mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Buckets returns a copy of the per-bucket counts (len(bounds)+1 entries; the
// final entry is the overflow bucket).
func (h *Histogram) Buckets() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.counts...)
}
