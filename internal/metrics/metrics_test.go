package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{0, 0, 1, 1}
	if got := AUC(scores, labels); got != 1.0 {
		t.Fatalf("perfect AUC = %v", got)
	}
}

func TestAUCWorstRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	labels := []float64{0, 0, 1, 1}
	if got := AUC(scores, labels); got != 0.0 {
		t.Fatalf("inverted AUC = %v", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.3 {
			labels[i] = 1
		}
	}
	got := AUC(scores, labels)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("random AUC = %v, want ~0.5", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by average-rank handling.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float64{1, 0, 1, 0}
	if got := AUC(scores, labels); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if AUC(nil, nil) != 0.5 {
		t.Fatal("empty AUC should be 0.5")
	}
	if AUC([]float64{1}, []float64{1, 0}) != 0.5 {
		t.Fatal("mismatched lengths should be 0.5")
	}
	if AUC([]float64{0.3, 0.7}, []float64{1, 1}) != 0.5 {
		t.Fatal("single-class AUC should be 0.5")
	}
}

func TestAUCInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
			if rng.Float64() < 0.5 {
				labels[i] = 1
			}
		}
		a := AUC(scores, labels)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCComplementProperty(t *testing.T) {
	// Negating the scores should give 1 - AUC when there are no ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 4
		scores := make([]float64, n)
		neg := make([]float64, n)
		labels := make([]float64, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			neg[i] = -scores[i]
			if rng.Float64() < 0.5 {
				labels[i] = 1
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		return math.Abs(AUC(scores, labels)+AUC(neg, labels)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCAccumulator(t *testing.T) {
	acc := NewAUCAccumulator()
	acc.Add(0.9, 1)
	acc.Add(0.1, 0)
	acc.AddBatch([]float64{0.8, 0.2}, []float64{1, 0})
	if acc.Count() != 4 {
		t.Fatalf("count = %d", acc.Count())
	}
	if got := acc.AUC(); got != 1.0 {
		t.Fatalf("accumulator AUC = %v", got)
	}
	acc.Reset()
	if acc.Count() != 0 {
		t.Fatal("reset failed")
	}
	if acc.AUC() != 0.5 {
		t.Fatal("empty accumulator AUC should be 0.5")
	}
}

func TestAUCAccumulatorConcurrent(t *testing.T) {
	acc := NewAUCAccumulator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				acc.Add(rng.Float64(), float64(rng.Intn(2)))
			}
		}(int64(w))
	}
	wg.Wait()
	if acc.Count() != 4000 {
		t.Fatalf("count = %d", acc.Count())
	}
}

func TestLogLossAccumulator(t *testing.T) {
	var l LogLossAccumulator
	if l.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	l.Add(0.5, 1)
	l.Add(0.5, 0)
	if math.Abs(l.Mean()-math.Log(2)) > 1e-9 {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Count() != 2 {
		t.Fatal("count")
	}
	// Extreme predictions must not yield Inf.
	l.Add(0, 1)
	l.Add(1, 0)
	if math.IsInf(l.Mean(), 0) || math.IsNaN(l.Mean()) {
		t.Fatal("loss must be clamped")
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Examples: 1000, Elapsed: 2 * time.Second}
	if tp.ExamplesPerSecond() != 500 {
		t.Fatalf("eps = %v", tp.ExamplesPerSecond())
	}
	base := Throughput{Examples: 1000, Elapsed: 4 * time.Second}
	if got := tp.Speedup(base); got != 2 {
		t.Fatalf("speedup = %v", got)
	}
	zero := Throughput{}
	if zero.ExamplesPerSecond() != 0 || zero.Speedup(base) != 0 || tp.Speedup(zero) != 0 {
		t.Fatal("degenerate throughput should be 0")
	}
}

func TestCostNormalizedSpeedup(t *testing.T) {
	// Paper Model A row: speedup 1.8, 4 GPU nodes, 100 MPI nodes, 10x cost
	// ratio → 4.5 (paper reports 4.4 from unrounded speedup).
	got := CostNormalizedSpeedup(1.8, 4, 100, 10)
	if math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("cost-normalized speedup = %v", got)
	}
	if CostNormalizedSpeedup(2, 0, 100, 10) != 0 {
		t.Fatal("zero gpu nodes should be 0")
	}
	if CostNormalizedSpeedup(2, 4, 100, 0) != 0 {
		t.Fatal("zero cost ratio should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("bucket count = %d", len(b))
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if b[i] != want {
			t.Fatalf("bucket %d = %d", i, b[i])
		}
	}
	if math.Abs(h.Mean()-138.875) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
}
