package hashing

import (
	"testing"
	"testing/quick"

	"hps/internal/keys"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("p=0 should fail")
	}
	if _, err := New(10, 0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := New(10, 20, 1); err == nil {
		t.Fatal("k>p should fail")
	}
	h, err := New(1000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.InputDim() != 1000 || h.Bins() != 10 || h.OutputDim() != 20 {
		t.Fatal("accessors wrong")
	}
}

func TestTransformDeterministic(t *testing.T) {
	h, _ := New(1<<20, 1<<10, 42)
	feats := []keys.Key{5, 900, 12345, 999999}
	a := h.Transform(feats)
	b := h.Transform(feats)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic output")
		}
	}
}

func TestTransformOutputRange(t *testing.T) {
	h, _ := New(1<<20, 256, 7)
	f := func(raw []uint64) bool {
		feats := make([]keys.Key, len(raw))
		for i, r := range raw {
			feats[i] = keys.Key(r)
		}
		out := h.Transform(feats)
		if len(out) > len(feats) && len(out) > int(h.Bins()) {
			return false
		}
		for _, o := range out {
			if uint64(o) >= h.OutputDim() {
				return false
			}
		}
		// Sorted, deduplicated.
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformEmpty(t *testing.T) {
	h, _ := New(100, 10, 1)
	if out := h.Transform(nil); len(out) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestTransformAtMostOneOutputPerBin(t *testing.T) {
	h, _ := New(1<<16, 64, 3)
	feats := make([]keys.Key, 500)
	for i := range feats {
		feats[i] = keys.Key(i * 131)
	}
	out := h.Transform(feats)
	if len(out) > 64 {
		t.Fatalf("output %d exceeds bin count 64", len(out))
	}
	// No bin may emit both its positive and negative feature.
	seen := make(map[uint64]bool)
	for _, o := range out {
		bin := uint64(o) / 2
		if seen[bin] {
			t.Fatalf("bin %d emitted two features", bin)
		}
		seen[bin] = true
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	h1, _ := New(1<<20, 1<<8, 1)
	h2, _ := New(1<<20, 1<<8, 2)
	feats := make([]keys.Key, 100)
	for i := range feats {
		feats[i] = keys.Key(i * 7919)
	}
	a := h1.Transform(feats)
	b := h2.Transform(feats)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should produce different hashes")
	}
}

func TestCompressionReducesDistinctFeatures(t *testing.T) {
	// With k much smaller than the number of distinct input features, the
	// number of distinct output features across a corpus must shrink — this
	// is the model-size reduction of Tables 1-2.
	h, _ := New(1<<20, 128, 5)
	distinctIn := make(map[keys.Key]bool)
	distinctOut := make(map[keys.Key]bool)
	for ex := 0; ex < 200; ex++ {
		feats := make([]keys.Key, 50)
		for i := range feats {
			feats[i] = keys.Key(keys.Mix64(uint64(ex*50+i)) % (1 << 20))
			distinctIn[feats[i]] = true
		}
		for _, o := range h.Transform(feats) {
			distinctOut[o] = true
		}
	}
	if len(distinctOut) > 256 {
		t.Fatalf("output features %d exceed 2k=256", len(distinctOut))
	}
	if len(distinctOut) >= len(distinctIn) {
		t.Fatalf("hashing did not compress: %d -> %d", len(distinctIn), len(distinctOut))
	}
}

func TestLargerKPreservesMoreInformation(t *testing.T) {
	// Two distinct examples should collide into identical hashed
	// representations more often for small k than for large k.
	small, _ := New(1<<16, 8, 9)
	large, _ := New(1<<16, 4096, 9)
	collisionsSmall, collisionsLarge := 0, 0
	for trial := 0; trial < 200; trial++ {
		a := []keys.Key{keys.Key(trial * 31), keys.Key(trial*31 + 7), keys.Key(trial*31 + 977)}
		b := []keys.Key{keys.Key(trial*31 + 13), keys.Key(trial*31 + 501), keys.Key(trial*31 + 1201)}
		if equalKeys(small.Transform(a), small.Transform(b)) {
			collisionsSmall++
		}
		if equalKeys(large.Transform(a), large.Transform(b)) {
			collisionsLarge++
		}
	}
	if collisionsLarge > collisionsSmall {
		t.Fatalf("large k produced more collisions (%d) than small k (%d)", collisionsLarge, collisionsSmall)
	}
}

func equalKeys(a, b []keys.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTransformExampleCount(t *testing.T) {
	h, _ := New(1000, 10, 1)
	if h.TransformExampleCount(5) != 5 {
		t.Fatal("nnz below k should be unchanged")
	}
	if h.TransformExampleCount(50) != 10 {
		t.Fatal("nnz above k should clamp to k")
	}
}
