// Package hashing implements the "one permutation + one sign random
// projection" (OP+OSRP) feature-hashing method of Section 2, which the paper
// evaluated (in 2015) as an alternative to training the full-size CTR model.
//
// OP+OSRP maps a p-dimensional sparse binary feature vector to a 2k-dimensional
// sparse binary vector:
//
//  1. permute the p columns once (implemented with a 2-universal hash),
//  2. break the permuted columns uniformly into k bins,
//  3. within each bin compute z = Σ x_i · r_i with r_i ∈ {−1,+1},
//  4. expand sign(z) into two binary outputs per bin:
//     [0 1] if z > 0, [1 0] if z < 0, [0 0] if z = 0.
//
// The output stays binary, so the same training code (LR or DNN) runs on the
// hashed features. Tables 1 and 2 sweep k and show the accuracy loss that
// motivated building the hierarchical parameter server instead.
package hashing

import (
	"fmt"

	"hps/internal/keys"
)

// OPOSRP is a one permutation + one sign random projection transformer.
// It is immutable after construction and safe for concurrent use.
type OPOSRP struct {
	p    uint64
	k    uint64
	seed uint64
	// 2-universal hash parameters for the column permutation (odd multiplier
	// guarantees a bijection on the 64-bit ring before reduction mod p).
	permA uint64
	permB uint64
}

// New constructs an OP+OSRP transformer for input dimensionality p and k
// bins. It returns an error if p or k is zero or if k > p.
func New(p, k uint64, seed int64) (*OPOSRP, error) {
	if p == 0 || k == 0 {
		return nil, fmt.Errorf("hashing: p and k must be positive (p=%d k=%d)", p, k)
	}
	if k > p {
		return nil, fmt.Errorf("hashing: k=%d exceeds input dimension p=%d", k, p)
	}
	s := uint64(seed)
	return &OPOSRP{
		p:     p,
		k:     k,
		seed:  s,
		permA: keys.Mix64(s^0xa5a5a5a5a5a5a5a5) | 1, // odd
		permB: keys.Mix64(s ^ 0x5a5a5a5a5a5a5a5a),
	}, nil
}

// InputDim returns p, the dimensionality of the input feature space.
func (h *OPOSRP) InputDim() uint64 { return h.p }

// Bins returns k, the number of projection bins.
func (h *OPOSRP) Bins() uint64 { return h.k }

// OutputDim returns the dimensionality of the hashed feature space (2k).
func (h *OPOSRP) OutputDim() uint64 { return 2 * h.k }

// permute applies the fixed column permutation (step 1). Collisions after the
// reduction mod p are possible but rare for sparse inputs, matching the
// "standard 2U hashing" the paper prescribes.
func (h *OPOSRP) permute(col uint64) uint64 {
	return (h.permA*col + h.permB) % h.p
}

// bin assigns a permuted column to one of the k bins (step 2: uniform split).
func (h *OPOSRP) bin(permuted uint64) uint64 {
	binWidth := (h.p + h.k - 1) / h.k
	return permuted / binWidth
}

// sign returns the ±1 projection coefficient r_i for a column (step 3).
func (h *OPOSRP) sign(col uint64) int {
	if keys.Mix64(col^h.seed)&1 == 1 {
		return 1
	}
	return -1
}

// Transform maps the non-zero features of a sparse binary example to the
// non-zero features of its hashed representation in [0, 2k). The output is
// sorted and deduplicated.
func (h *OPOSRP) Transform(features []keys.Key) []keys.Key {
	if len(features) == 0 {
		return nil
	}
	// Accumulate z per touched bin (the input is binary so each feature
	// contributes exactly its sign).
	z := make(map[uint64]int, len(features))
	for _, f := range features {
		col := uint64(f) % h.p
		b := h.bin(h.permute(col))
		z[b] += h.sign(col)
	}
	out := make([]keys.Key, 0, len(z))
	for b, v := range z {
		switch {
		case v > 0:
			out = append(out, keys.Key(2*b+1))
		case v < 0:
			out = append(out, keys.Key(2*b))
			// v == 0 produces no output ([0 0]).
		}
	}
	return keys.Dedup(out)
}

// TransformExampleCount reports how many non-zero hashed features an input
// with the given bins-hit pattern can have at most: one per touched bin.
func (h *OPOSRP) TransformExampleCount(nnz int) int {
	if uint64(nnz) > h.k {
		return int(h.k)
	}
	return nnz
}
