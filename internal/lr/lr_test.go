package lr

import (
	"math"
	"testing"

	"hps/internal/dataset"
	"hps/internal/keys"
	"hps/internal/metrics"
)

func TestNewDefaults(t *testing.T) {
	m := New(0)
	if m.LR != 0.05 {
		t.Fatalf("default LR = %v", m.LR)
	}
	if m.NonZeroWeights() != 0 || m.Examples() != 0 {
		t.Fatal("fresh model should be empty")
	}
	if p := m.Predict([]keys.Key{1, 2}); math.Abs(float64(p)-0.5) > 1e-6 {
		t.Fatalf("untrained prediction = %v, want 0.5", p)
	}
}

func TestTrainMovesPrediction(t *testing.T) {
	m := New(0.5)
	feats := []keys.Key{1, 2, 3}
	before := m.Predict(feats)
	for i := 0; i < 20; i++ {
		m.Train(feats, 1)
	}
	after := m.Predict(feats)
	if after <= before {
		t.Fatalf("training toward label 1 should raise prediction: %v -> %v", before, after)
	}
	if m.Examples() != 20 {
		t.Fatalf("examples = %d", m.Examples())
	}
	if m.NonZeroWeights() != 3 {
		t.Fatalf("non-zero weights = %d, want 3", m.NonZeroWeights())
	}
	if m.Weight(1) == 0 || m.Bias() == 0 {
		t.Fatal("weights and bias should be updated")
	}
}

func TestTrainReturnsLoss(t *testing.T) {
	m := New(0.1)
	loss := m.Train([]keys.Key{7}, 1)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("first loss = %v, want ln(2)", loss)
	}
}

func TestLRLearnsSyntheticCTR(t *testing.T) {
	// Train on the synthetic CTR dataset and verify test AUC beats chance by
	// a solid margin (the role LR plays as baseline in Tables 1-2).
	cfg := dataset.Config{NumFeatures: 5000, NonZerosPerExample: 20}
	train := dataset.NewGenerator(cfg, 1)
	test := dataset.NewGenerator(cfg, 2)

	m := New(0.1)
	for i := 0; i < 8000; i++ {
		ex := train.NextExample()
		m.Train(ex.Features, ex.Label)
	}

	scores := make([]float64, 0, 2000)
	labels := make([]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		ex := test.NextExample()
		scores = append(scores, float64(m.Predict(ex.Features)))
		labels = append(labels, float64(ex.Label))
	}
	auc := metrics.AUC(scores, labels)
	if auc < 0.65 {
		t.Fatalf("LR test AUC = %v, want > 0.65", auc)
	}
}

func TestAdagradStepShrinks(t *testing.T) {
	m := New(1.0)
	feats := []keys.Key{1}
	m.Train(feats, 1)
	w1 := m.Weight(1)
	m.Train(feats, 1)
	w2 := m.Weight(1)
	step1 := math.Abs(float64(w1))
	step2 := math.Abs(float64(w2 - w1))
	if step2 >= step1 {
		t.Fatalf("adagrad steps should shrink: %v then %v", step1, step2)
	}
}
