// Package lr implements the sparse logistic-regression CTR model that served
// as Baidu's production baseline before the DNN models ("Baseline LR" in
// Tables 1 and 2, and the distributed LR model mentioned in Section 1.1).
//
// The model is a single weight per binary feature plus a bias, trained with
// per-coordinate Adagrad on the log-loss. Weights are stored in a hash map,
// so the number of non-zero weights grows with the number of distinct
// features observed — the quantity reported in the "# Nonzero Weights"
// column of Tables 1 and 2.
package lr

import (
	"math"

	"hps/internal/keys"
	"hps/internal/tensor"
)

// Model is a sparse logistic regression model. It is not safe for concurrent
// use.
type Model struct {
	// LR is the learning rate (0.05 when zero).
	LR float32

	bias     float32
	biasG2   float32
	weights  map[keys.Key]float32
	g2       map[keys.Key]float32
	examples int64
}

// New returns an empty model with the given learning rate.
func New(learningRate float32) *Model {
	if learningRate <= 0 {
		learningRate = 0.05
	}
	return &Model{
		LR:      learningRate,
		weights: make(map[keys.Key]float32),
		g2:      make(map[keys.Key]float32),
	}
}

// Predict returns the predicted click probability for a binary feature set.
func (m *Model) Predict(features []keys.Key) float32 {
	logit := m.bias
	for _, f := range features {
		logit += m.weights[f]
	}
	return tensor.Sigmoid(logit)
}

// Train performs one stochastic gradient step on a single example and returns
// the example's log-loss before the update.
func (m *Model) Train(features []keys.Key, label float32) float64 {
	pred := m.Predict(features)
	loss := tensor.LogLoss(pred, label)
	grad := pred - label

	m.biasG2 += grad * grad
	m.bias -= m.LR * grad / (float32(math.Sqrt(float64(m.biasG2))) + 1e-6)
	for _, f := range features {
		g2 := m.g2[f] + grad*grad
		m.g2[f] = g2
		m.weights[f] -= m.LR * grad / (float32(math.Sqrt(float64(g2))) + 1e-6)
	}
	m.examples++
	return loss
}

// NonZeroWeights returns the number of feature weights the model stores —
// the model-size metric of Tables 1 and 2.
func (m *Model) NonZeroWeights() int64 {
	var n int64
	for _, w := range m.weights {
		if w != 0 {
			n++
		}
	}
	return n
}

// Examples returns how many training examples the model has seen.
func (m *Model) Examples() int64 { return m.examples }

// Weight returns the learned weight of a feature (0 if unseen).
func (m *Model) Weight(f keys.Key) float32 { return m.weights[f] }

// Bias returns the learned bias.
func (m *Model) Bias() float32 { return m.bias }
