package hw

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Name: "test", BandwidthBytesPerSec: 1000, Latency: time.Millisecond}
	got := l.TransferTime(1000)
	want := time.Millisecond + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if got := l.TransferTime(0); got != time.Millisecond {
		t.Fatalf("zero bytes should cost only latency, got %v", got)
	}
	if got := l.TransferTime(-5); got != time.Millisecond {
		t.Fatalf("negative bytes should cost only latency, got %v", got)
	}
}

func TestLinkZeroBandwidth(t *testing.T) {
	l := Link{Latency: time.Millisecond}
	if got := l.TransferTime(1 << 30); got != time.Millisecond {
		t.Fatalf("zero-bandwidth link should return latency, got %v", got)
	}
}

func TestGPUComputeTime(t *testing.T) {
	g := GPU{FLOPS: 1e9, KernelLaunch: time.Microsecond}
	got := g.ComputeTime(1e9)
	want := time.Microsecond + time.Second
	if got != want {
		t.Fatalf("ComputeTime = %v, want %v", got, want)
	}
	if got := g.ComputeTime(-1); got != time.Microsecond {
		t.Fatalf("negative flops = %v", got)
	}
	var zero GPU
	if got := zero.ComputeTime(1e9); got != 0 {
		t.Fatalf("zero gpu compute = %v", got)
	}
}

func TestGPUMemoryTime(t *testing.T) {
	g := GPU{HBMBandwidthBytesPerSec: 1e9, KernelLaunch: time.Microsecond}
	got := g.MemoryTime(1e9)
	want := time.Microsecond + time.Second
	if got != want {
		t.Fatalf("MemoryTime = %v, want %v", got, want)
	}
}

func TestCPUComputeTime(t *testing.T) {
	c := CPU{Cores: 4, FLOPS: 2e9}
	if got := c.ComputeTime(1e9); got != 500*time.Millisecond {
		t.Fatalf("cpu compute = %v", got)
	}
	var zero CPU
	if got := zero.ComputeTime(1e9); got != 0 {
		t.Fatalf("zero cpu compute = %v", got)
	}
}

func TestSSDBlockRounding(t *testing.T) {
	s := SSD{
		ReadBandwidthBytesPerSec:  4096,
		WriteBandwidthBytesPerSec: 4096,
		BlockBytes:                4096,
	}
	// 1 byte still costs a full block: 1 second at 4096 B/s.
	if got := s.ReadTime(1); got != time.Second {
		t.Fatalf("ReadTime(1) = %v, want 1s", got)
	}
	if got := s.WriteTime(4097); got != 2*time.Second {
		t.Fatalf("WriteTime(4097) = %v, want 2s", got)
	}
	if got := s.ReadTime(0); got != 0 {
		t.Fatalf("ReadTime(0) = %v, want 0", got)
	}
}

func TestSSDRoundUpProperty(t *testing.T) {
	s := SSD{BlockBytes: 4096}
	f := func(n uint32) bool {
		eff := s.roundUpToBlock(int64(n))
		if n == 0 {
			return eff == 0
		}
		return eff >= int64(n) && eff%4096 == 0 && eff-int64(n) < 4096
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHDFSReadTime(t *testing.T) {
	h := HDFS{StreamBandwidthBytesPerSec: 100, OpenLatency: time.Millisecond}
	if got := h.ReadTime(100); got != time.Millisecond+time.Second {
		t.Fatalf("hdfs read = %v", got)
	}
	if got := h.ReadTime(-1); got != time.Millisecond {
		t.Fatalf("hdfs read negative = %v", got)
	}
}

func TestDefaultProfilesSane(t *testing.T) {
	p := DefaultGPUNode()
	if p.GPUsPerNode != 8 {
		t.Fatalf("GPUsPerNode = %d, want 8 (paper Section 7)", p.GPUsPerNode)
	}
	if p.GPU.HBMBytes != 32<<30 {
		t.Fatalf("HBM = %d, want 32 GiB", p.GPU.HBMBytes)
	}
	if p.NVLink.BandwidthBytesPerSec <= p.PCIe.BandwidthBytesPerSec {
		t.Fatal("NVLink must be faster than PCIe")
	}
	if p.RDMA.BandwidthBytesPerSec <= 0 || p.Ethernet.BandwidthBytesPerSec <= 0 {
		t.Fatal("network links must have positive bandwidth")
	}
	if p.SSD.CapacityBytes < p.MainMemoryBytes {
		t.Fatal("SSD must be larger than main memory for the hierarchy to make sense")
	}
	if p.MainMemoryBytes < p.GPU.HBMBytes*int64(p.GPUsPerNode) {
		t.Fatal("main memory must exceed total HBM")
	}

	m := DefaultMPINode()
	if m.GPUsPerNode != 0 {
		t.Fatal("MPI node must not have GPUs")
	}
	if m.CPU.FLOPS != p.CPU.FLOPS {
		t.Fatal("MPI node CPU should match GPU node CPU (paper: similar specs)")
	}
}

func TestScaledGPUNode(t *testing.T) {
	base := DefaultGPUNode()
	s := ScaledGPUNode(1024)
	if s.GPU.HBMBytes != base.GPU.HBMBytes/1024 {
		t.Fatalf("scaled HBM = %d", s.GPU.HBMBytes)
	}
	if s.MainMemoryBytes != base.MainMemoryBytes/1024 {
		t.Fatalf("scaled memory = %d", s.MainMemoryBytes)
	}
	if s.SSD.CapacityBytes != base.SSD.CapacityBytes/1024 {
		t.Fatalf("scaled ssd = %d", s.SSD.CapacityBytes)
	}
	// Bandwidths are not scaled.
	if s.NVLink.BandwidthBytesPerSec != base.NVLink.BandwidthBytesPerSec {
		t.Fatal("bandwidth should not scale")
	}
	// factor <= 1 is the identity.
	id := ScaledGPUNode(0)
	if id.GPU.HBMBytes != base.GPU.HBMBytes {
		t.Fatal("factor 0 should be identity")
	}
}

func TestCapacityRatioPreserved(t *testing.T) {
	base := DefaultGPUNode()
	s := ScaledGPUNode(256)
	baseRatio := float64(base.MainMemoryBytes) / float64(base.GPU.HBMBytes)
	scaledRatio := float64(s.MainMemoryBytes) / float64(s.GPU.HBMBytes)
	if baseRatio != scaledRatio {
		t.Fatalf("memory:HBM ratio changed: %v vs %v", baseRatio, scaledRatio)
	}
}
