// Package hw defines hardware cost models for the simulated cluster.
//
// The paper's testbed (Section 7) consists of 4 GPU nodes, each with eight
// 32 GB-HBM GPUs connected by NVLink, ~1 TB of main memory, ~20 TB of NVMe
// SSD, a 100 Gb RDMA network adaptor, and of an MPI cluster of CPU-only
// nodes. This package encodes those components as bandwidth/latency/compute
// models so that higher layers can charge modelled time to a simtime.Clock.
//
// The default profiles are calibrated to the nominal numbers of the paper's
// hardware generation (V100-class GPUs, PCIe 3.0 x16, NVLink 2.0, 100 GbE,
// NVMe RAID-0). Absolute values only set the scale of reported times; the
// reproduced figures depend on the ratios between them.
package hw

import (
	"time"

	"hps/internal/simtime"
)

// Link models a point-to-point communication channel with fixed per-message
// latency and finite bandwidth.
type Link struct {
	// Name identifies the link type in reports (e.g. "nvlink").
	Name string
	// BandwidthBytesPerSec is the sustained bandwidth of the link.
	BandwidthBytesPerSec float64
	// Latency is the fixed per-transfer setup cost.
	Latency time.Duration
}

// TransferTime returns the modelled time to move n bytes across the link.
func (l Link) TransferTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	if l.BandwidthBytesPerSec <= 0 {
		return l.Latency
	}
	return l.Latency + simtime.Duration(float64(n)/l.BandwidthBytesPerSec)
}

// GPU models a single GPU device: compute throughput, HBM capacity and
// bandwidth, and a fixed kernel-launch overhead.
type GPU struct {
	// HBMBytes is the device memory capacity.
	HBMBytes int64
	// FLOPS is the sustained single-precision throughput used for dense math.
	FLOPS float64
	// HBMBandwidthBytesPerSec is the device memory bandwidth used for
	// hash-table and embedding traffic.
	HBMBandwidthBytesPerSec float64
	// KernelLaunch is the fixed overhead per kernel launch.
	KernelLaunch time.Duration
}

// ComputeTime returns the modelled time to execute flops floating point
// operations on the device, including one kernel launch.
func (g GPU) ComputeTime(flops float64) time.Duration {
	if flops < 0 {
		flops = 0
	}
	if g.FLOPS <= 0 {
		return g.KernelLaunch
	}
	return g.KernelLaunch + simtime.Duration(flops/g.FLOPS)
}

// MemoryTime returns the modelled time to stream n bytes through HBM,
// including one kernel launch.
func (g GPU) MemoryTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	if g.HBMBandwidthBytesPerSec <= 0 {
		return g.KernelLaunch
	}
	return g.KernelLaunch + simtime.Duration(float64(n)/g.HBMBandwidthBytesPerSec)
}

// CPU models the aggregate compute capability of a node's CPUs.
type CPU struct {
	// Cores is the number of physical cores.
	Cores int
	// FLOPS is the sustained single-precision throughput of the whole socket set.
	FLOPS float64
}

// ComputeTime returns the modelled time to execute flops floating point
// operations using the full node.
func (c CPU) ComputeTime(flops float64) time.Duration {
	if flops < 0 {
		flops = 0
	}
	if c.FLOPS <= 0 {
		return 0
	}
	return simtime.Duration(flops / c.FLOPS)
}

// SSD models an NVMe SSD (or RAID-0 array) with block-granular access.
type SSD struct {
	// ReadBandwidthBytesPerSec is the sequential read bandwidth.
	ReadBandwidthBytesPerSec float64
	// WriteBandwidthBytesPerSec is the sequential write bandwidth.
	WriteBandwidthBytesPerSec float64
	// ReadLatency is the per-operation read latency.
	ReadLatency time.Duration
	// WriteLatency is the per-operation write latency.
	WriteLatency time.Duration
	// BlockBytes is the I/O granularity; reads and writes are rounded up to
	// whole blocks (the source of I/O amplification discussed in Section 1).
	BlockBytes int64
	// CapacityBytes is the usable capacity of the device.
	CapacityBytes int64
}

// roundUpToBlock rounds n up to a whole number of blocks.
func (s SSD) roundUpToBlock(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if s.BlockBytes <= 0 {
		return n
	}
	blocks := (n + s.BlockBytes - 1) / s.BlockBytes
	return blocks * s.BlockBytes
}

// ReadTime returns the modelled time for a single read of n logical bytes.
func (s SSD) ReadTime(n int64) time.Duration {
	eff := s.roundUpToBlock(n)
	if s.ReadBandwidthBytesPerSec <= 0 {
		return s.ReadLatency
	}
	return s.ReadLatency + simtime.Duration(float64(eff)/s.ReadBandwidthBytesPerSec)
}

// WriteTime returns the modelled time for a single write of n logical bytes.
func (s SSD) WriteTime(n int64) time.Duration {
	eff := s.roundUpToBlock(n)
	if s.WriteBandwidthBytesPerSec <= 0 {
		return s.WriteLatency
	}
	return s.WriteLatency + simtime.Duration(float64(eff)/s.WriteBandwidthBytesPerSec)
}

// HDFS models the distributed file system from which training batches are
// streamed.
type HDFS struct {
	// StreamBandwidthBytesPerSec is the per-node sustained streaming bandwidth.
	StreamBandwidthBytesPerSec float64
	// OpenLatency is the fixed latency to begin streaming a batch.
	OpenLatency time.Duration
}

// ReadTime returns the modelled time to stream n bytes from HDFS.
func (h HDFS) ReadTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	if h.StreamBandwidthBytesPerSec <= 0 {
		return h.OpenLatency
	}
	return h.OpenLatency + simtime.Duration(float64(n)/h.StreamBandwidthBytesPerSec)
}

// NodeProfile describes the hardware of a single GPU computing node.
type NodeProfile struct {
	// GPUsPerNode is the number of GPUs installed in the node.
	GPUsPerNode int
	// GPU describes each installed GPU.
	GPU GPU
	// CPU describes the node's CPUs.
	CPU CPU
	// MainMemoryBytes is the CPU main-memory capacity available to MEM-PS.
	MainMemoryBytes int64
	// NVLink connects GPUs within the node.
	NVLink Link
	// PCIe connects CPUs and GPUs.
	PCIe Link
	// RDMA connects GPUs across nodes (RoCE).
	RDMA Link
	// Ethernet connects CPUs across nodes (MEM-PS remote pulls, MPI traffic).
	Ethernet Link
	// SSD is the local NVMe array backing SSD-PS.
	SSD SSD
	// HDFS is the training-data stream.
	HDFS HDFS
}

const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
	tib = 1 << 40
)

// DefaultGPUNode returns a profile matching the paper's GPU node:
// 8x 32 GB HBM GPUs, 48-core CPUs, ~1 TB memory, ~20 TB NVMe RAID-0,
// 100 Gb RDMA, NVLink-connected GPUs.
func DefaultGPUNode() NodeProfile {
	return NodeProfile{
		GPUsPerNode: 8,
		GPU: GPU{
			HBMBytes:                32 * gib,
			FLOPS:                   14e12, // ~V100 SP sustained
			HBMBandwidthBytesPerSec: 800e9,
			KernelLaunch:            5 * time.Microsecond,
		},
		CPU: CPU{
			Cores: 48,
			FLOPS: 1.5e12,
		},
		MainMemoryBytes: 1 * tib,
		NVLink: Link{
			Name:                 "nvlink",
			BandwidthBytesPerSec: 150e9,
			Latency:              2 * time.Microsecond,
		},
		PCIe: Link{
			Name:                 "pcie",
			BandwidthBytesPerSec: 12e9,
			Latency:              5 * time.Microsecond,
		},
		RDMA: Link{
			Name:                 "rdma",
			BandwidthBytesPerSec: 11e9, // ~100 Gb/s usable
			Latency:              8 * time.Microsecond,
		},
		Ethernet: Link{
			Name:                 "ethernet",
			BandwidthBytesPerSec: 10e9,
			Latency:              30 * time.Microsecond,
		},
		SSD: SSD{
			ReadBandwidthBytesPerSec:  6 * gib,
			WriteBandwidthBytesPerSec: 4 * gib,
			ReadLatency:               90 * time.Microsecond,
			WriteLatency:              25 * time.Microsecond,
			BlockBytes:                4 * kib,
			CapacityBytes:             20 * tib,
		},
		HDFS: HDFS{
			StreamBandwidthBytesPerSec: 1.2 * gib,
			OpenLatency:                2 * time.Millisecond,
		},
	}
}

// DefaultMPINode returns a profile for a CPU-only node in the baseline MPI
// cluster. Its CPU matches the GPU node's CPU (the paper states they have
// similar specifications); it has no GPUs and no local SSD-PS.
func DefaultMPINode() NodeProfile {
	p := DefaultGPUNode()
	p.GPUsPerNode = 0
	p.GPU = GPU{}
	p.MainMemoryBytes = 256 * gib
	p.SSD = SSD{}
	return p
}

// CostGPUNodesPerMPINode is the hardware and maintenance cost ratio stated in
// Section 7: one GPU node costs roughly as much as ten CPU-only MPI nodes.
const CostGPUNodesPerMPINode = 10.0

// ScaledGPUNode returns the default GPU node profile with memory-capacity
// fields divided by factor. It is used to run the paper's terabyte-scale
// configurations at laptop scale while preserving capacity ratios
// (HBM : main memory : SSD), which is what determines eviction and caching
// behaviour.
func ScaledGPUNode(factor int64) NodeProfile {
	p := DefaultGPUNode()
	if factor <= 1 {
		return p
	}
	p.GPU.HBMBytes /= factor
	p.MainMemoryBytes /= factor
	p.SSD.CapacityBytes /= factor
	return p
}
