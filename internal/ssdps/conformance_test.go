package ssdps_test

import (
	"testing"

	"hps/internal/blockio"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// TestTierConformance runs the shared ps.Tier suite against the SSD-PS: the
// bottom tier, where missing keys stay absent, pushes materialize unknown
// keys, and eviction retires keys for compaction to reclaim.
func TestTierConformance(t *testing.T) {
	const dim = 8
	conformance.Run(t, conformance.Harness{
		Dim:         dim,
		Shard:       ps.NoShard,
		PushCreates: true,
		Concurrent:  true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
			if err != nil {
				t.Fatal(err)
			}
			store, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 4})
			if err != nil {
				t.Fatal(err)
			}
			seed := make(map[keys.Key]*embedding.Value, len(ks))
			for i, k := range ks {
				v := embedding.NewValue(dim)
				v.Weights[0] = float32(i + 1)
				seed[k] = v
			}
			if err := store.Dump(seed); err != nil {
				t.Fatal(err)
			}
			return store
		},
	})
}
