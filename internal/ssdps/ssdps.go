// Package ssdps implements the SSD parameter server (Section 6, Appendix E):
// the bottom tier of the hierarchy, holding the materialized
// out-of-main-memory sparse parameters in files on the local SSD.
//
// Parameters are organized in file granularity. A parameter-to-file mapping
// lives in main memory; loads read whole files (accepting read amplification
// in exchange for sequential bandwidth), updates are written in batches as
// new files (never in place), superseded copies become stale, and a
// compaction pass merges files dominated by stale values to bound disk usage
// at roughly 2x the live parameter size.
package ssdps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hps/internal/blockio"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// Config configures the store.
type Config struct {
	// Dim is the embedding dimension of stored values.
	Dim int
	// ParamsPerFile is how many parameters a parameter file holds; it trades
	// SSD bandwidth utilization against read amplification (Appendix E,
	// "we tune the file size to obtain the optimal performance").
	ParamsPerFile int
	// DiskUsageThresholdBytes triggers compaction when the device's live file
	// usage exceeds it; 0 uses the device capacity (or disables the trigger
	// when the device reports no capacity).
	DiskUsageThresholdBytes int64
	// StaleFractionToCompact is the minimum fraction of stale parameters a
	// file must contain to be merged during compaction (0.5 per the paper,
	// bounding disk usage at 1/0.5 = 2x the live size).
	StaleFractionToCompact float64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 8
	}
	if c.ParamsPerFile <= 0 {
		c.ParamsPerFile = 256
	}
	if c.StaleFractionToCompact <= 0 || c.StaleFractionToCompact > 1 {
		c.StaleFractionToCompact = 0.5
	}
	return c
}

// Stats describes the state and activity of the store.
type Stats struct {
	// Files is the number of live parameter files.
	Files int
	// LiveParams is the number of parameters reachable through the mapping.
	LiveParams int64
	// StaleParams is the number of superseded parameter copies still on disk.
	StaleParams int64
	// Compactions counts completed compaction passes.
	Compactions int64
	// CompactedFiles counts files merged away by compaction.
	CompactedFiles int64
	// Loads and Dumps count operations.
	Loads, Dumps int64
	// UsageBytes is the physical disk usage of live files.
	UsageBytes int64
}

type fileMeta struct {
	name  string
	total int // parameters written into the file
	stale int // parameters superseded by newer files
}

// Store is an SSD-backed parameter store. It is safe for concurrent use.
// It implements ps.Tier as the bottom tier of the hierarchy: Pull reads
// whole parameter files, Push is a read-modify-write of delta batches, and
// Evict retires keys (there is no tier below to demote to).
type Store struct {
	cfg Config
	dev *blockio.Device
	rec ps.Recorder

	// pushMu serializes Push's read-modify-write (load, merge, dump) so
	// concurrent pushes of the same key cannot lose each other's deltas.
	pushMu sync.Mutex

	mu      sync.Mutex
	nextID  int64
	mapping map[keys.Key]string  // parameter -> file name
	files   map[string]*fileMeta // file name -> metadata
	stats   Stats
}

var _ ps.Tier = (*Store)(nil)

// Open creates a store on top of dev. The directory may be empty (a fresh
// store) — recovering an existing store's mapping from disk is supported via
// Recover.
func Open(dev *blockio.Device, cfg Config) (*Store, error) {
	if dev == nil {
		return nil, errors.New("ssdps: nil device")
	}
	cfg = cfg.withDefaults()
	if cfg.DiskUsageThresholdBytes == 0 {
		cfg.DiskUsageThresholdBytes = dev.CapacityBytes()
	}
	return &Store{
		cfg:     cfg,
		dev:     dev,
		mapping: make(map[keys.Key]string),
		files:   make(map[string]*fileMeta),
	}, nil
}

// Recover rebuilds the in-memory parameter-to-file mapping by scanning every
// parameter file on the device in creation order (later files supersede
// earlier ones). It is used when reopening a directory written by a previous
// run.
func (s *Store) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := s.dev.ListFiles()
	sort.Strings(names) // zero-padded ids sort in creation order
	for _, name := range names {
		if parseFileID(name) < 0 {
			// Not a parameter file: the device directory also hosts other
			// durable state (the shard server's push-dedup seq log).
			continue
		}
		data, err := s.dev.ReadFile(name)
		if err != nil {
			return fmt.Errorf("ssdps: recover %s: %w", name, err)
		}
		recs, err := decodeFile(data)
		if err != nil {
			return fmt.Errorf("ssdps: recover %s: %w", name, err)
		}
		meta := &fileMeta{name: name, total: len(recs)}
		for _, r := range recs {
			if prev, ok := s.mapping[r.key]; ok {
				s.files[prev].stale++
			}
			s.mapping[r.key] = name
		}
		s.files[name] = meta
		if id := parseFileID(name); id >= s.nextID {
			s.nextID = id + 1
		}
	}
	// Recompute stale counts consistently.
	for _, meta := range s.files {
		live := 0
		for k, f := range s.mapping {
			_ = k
			if f == meta.name {
				live++
			}
		}
		meta.stale = meta.total - live
	}
	return nil
}

// Dim returns the embedding dimension of stored values.
func (s *Store) Dim() int { return s.cfg.Dim }

// Contains reports whether the store holds a value for k.
func (s *Store) Contains(k keys.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.mapping[k]
	return ok
}

// Len returns the number of live parameters.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mapping)
}

// record is one (key, value) entry in a parameter file.
type record struct {
	key   keys.Key
	value *embedding.Value
}

func encodeFile(recs []record) []byte {
	var buf []byte
	var scratch [8]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(scratch[:], uint64(r.key))
		buf = append(buf, scratch[:]...)
		buf = r.value.AppendEncode(buf)
	}
	return buf
}

func decodeFile(data []byte) ([]record, error) {
	var out []record
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			return nil, fmt.Errorf("ssdps: truncated key at offset %d", off)
		}
		k := keys.Key(binary.LittleEndian.Uint64(data[off : off+8]))
		off += 8
		v, n, err := embedding.Decode(data[off:])
		if err != nil {
			return nil, fmt.Errorf("ssdps: decode value at offset %d: %w", off, err)
		}
		off += n
		out = append(out, record{key: k, value: v})
	}
	return out, nil
}

func parseFileID(name string) int64 {
	var id int64
	_, err := fmt.Sscanf(name, "pf-%d.dat", &id)
	if err != nil {
		return -1
	}
	return id
}

func (s *Store) newFileName() string {
	name := fmt.Sprintf("pf-%012d.dat", s.nextID)
	s.nextID++
	return name
}

// Load returns the values of the requested keys that exist in the store.
// Whole parameter files are read; the requested parameters are decoded and
// everything else is I/O amplification accounted by the device. Missing keys
// are simply absent from the result.
func (s *Store) Load(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	out, _, err := s.LoadTimed(ks)
	return out, err
}

// LoadTimed is Load plus the modelled read duration of this pass alone.
// Callers attributing per-operation time (MEM-PS pull statistics) use it
// instead of diffing the shared clock, whose SSD total mixes in concurrent
// operations from other pipeline stages and nodes.
func (s *Store) LoadTimed(ks []keys.Key) (map[keys.Key]*embedding.Value, time.Duration, error) {
	s.mu.Lock()
	// Group requested keys by the file that holds their latest version.
	byFile := make(map[string][]keys.Key)
	for _, k := range ks {
		if name, ok := s.mapping[k]; ok {
			byFile[name] = append(byFile[name], k)
		}
	}
	s.stats.Loads++
	s.mu.Unlock()

	out := make(map[keys.Key]*embedding.Value, len(ks))
	var readTime time.Duration
	for name, wanted := range byFile {
		wantedBytes := int64(len(wanted)) * int64(8+embedding.EncodedSize(s.cfg.Dim))
		data, err := s.dev.ReadPartial(name, wantedBytes)
		if err != nil {
			return nil, 0, fmt.Errorf("ssdps: load: %w", err)
		}
		// Mirror the device's charge (whole-file read) for per-tier stats.
		readTime += s.dev.Profile().ReadTime(int64(len(data)))
		recs, err := decodeFile(data)
		if err != nil {
			return nil, 0, fmt.Errorf("ssdps: load %s: %w", name, err)
		}
		wantedSet := make(map[keys.Key]bool, len(wanted))
		for _, k := range wanted {
			wantedSet[k] = true
		}
		for _, r := range recs {
			if wantedSet[r.key] {
				// Only accept the record if this file is still the mapped
				// owner of the key (it is, we grouped by mapping), and prefer
				// the last occurrence within the file.
				out[r.key] = r.value
			}
		}
	}
	s.rec.RecordPull(len(out), readTime)
	return out, readTime, nil
}

// Dump writes the given parameters to the store as new parameter files
// (chunked to ParamsPerFile), updates the parameter-to-file mapping, and
// marks superseded copies stale. Keys are written in sorted order so dumps
// are deterministic.
func (s *Store) Dump(vals map[keys.Key]*embedding.Value) error {
	if len(vals) == 0 {
		return nil
	}
	sorted := make([]keys.Key, 0, len(vals))
	for k := range vals {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var writeTime time.Duration
	for start := 0; start < len(sorted); start += s.cfg.ParamsPerFile {
		end := start + s.cfg.ParamsPerFile
		if end > len(sorted) {
			end = len(sorted)
		}
		chunk := sorted[start:end]
		recs := make([]record, 0, len(chunk))
		for _, k := range chunk {
			recs = append(recs, record{key: k, value: vals[k]})
		}

		s.mu.Lock()
		name := s.newFileName()
		s.mu.Unlock()

		encoded := encodeFile(recs)
		if err := s.dev.WriteFile(name, encoded); err != nil {
			return fmt.Errorf("ssdps: dump: %w", err)
		}
		writeTime += s.dev.Profile().WriteTime(int64(len(encoded)))

		s.mu.Lock()
		s.files[name] = &fileMeta{name: name, total: len(recs)}
		for _, k := range chunk {
			if prev, ok := s.mapping[k]; ok {
				if meta, ok := s.files[prev]; ok {
					meta.stale++
				}
			}
			s.mapping[k] = name
		}
		s.stats.Dumps++
		s.mu.Unlock()
	}
	s.rec.RecordPush(len(vals), writeTime)
	return nil
}

// Name implements ps.Tier.
func (s *Store) Name() string { return "ssd-ps" }

// TierStats implements ps.Tier. Pulls cover Load, pushes cover both Dump
// (absolute writes from the tier above) and Push (delta merges).
func (s *Store) TierStats() ps.Stats { return s.rec.TierStats() }

// Pull implements ps.Tier: a batched Load. Missing keys are absent.
func (s *Store) Pull(req ps.PullRequest) (ps.Result, error) {
	out, err := s.Load(req.Keys)
	if err != nil {
		return nil, err
	}
	return ps.Result(out), nil
}

// Push implements ps.Tier: it merges per-key deltas into the stored values
// with a read-modify-write pass — existing values are loaded, deltas added
// (unknown keys materialize as fresh values equal to their delta), and the
// results dumped as new parameter files.
func (s *Store) Push(req ps.PushRequest) error {
	if len(req.Deltas) == 0 {
		return nil
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	ks := make([]keys.Key, 0, len(req.Deltas))
	for k := range req.Deltas {
		ks = append(ks, k)
	}
	existing, err := s.Load(ks)
	if err != nil {
		return fmt.Errorf("ssdps: push: %w", err)
	}
	merged := make(map[keys.Key]*embedding.Value, len(req.Deltas))
	ps.ApplyDeltas(req.Deltas, func(k keys.Key, delta *embedding.Value) bool {
		if v, ok := existing[k]; ok {
			v.Add(delta) // Load returned a private decoded copy
			merged[k] = v
		} else {
			merged[k] = delta.Clone()
		}
		return true
	})
	return s.Dump(merged)
}

// Evict implements ps.Tier. The SSD-PS is the bottom tier — there is no
// tier below to demote to — so evicting specific keys retires them from the
// store (their on-disk copies become stale and are reclaimed by compaction),
// and a nil slice reclaims stale space via a compaction pass without
// dropping any live parameter.
func (s *Store) Evict(ks []keys.Key) (int, error) {
	if ks == nil {
		if err := s.Compact(); err != nil {
			return 0, err
		}
		s.rec.RecordEvict(0)
		return 0, nil
	}
	n := s.Delete(ks)
	s.rec.RecordEvict(n)
	return n, nil
}

// Delete retires the given keys: their mapping entries are removed and
// their latest on-disk copies become stale. It returns how many keys were
// live. Production systems recycle feature ids this way; the disk space is
// reclaimed by the next compaction pass.
func (s *Store) Delete(ks []keys.Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range ks {
		name, ok := s.mapping[k]
		if !ok {
			continue
		}
		delete(s.mapping, k)
		if meta, ok := s.files[name]; ok {
			meta.stale++
		}
		n++
	}
	return n
}

// NeedsCompaction reports whether live disk usage exceeds the configured
// threshold.
func (s *Store) NeedsCompaction() bool {
	if s.cfg.DiskUsageThresholdBytes <= 0 {
		return false
	}
	return s.dev.UsageBytes() > s.cfg.DiskUsageThresholdBytes
}

// CompactIfNeeded runs a compaction pass when NeedsCompaction reports true.
// It returns whether a pass ran.
func (s *Store) CompactIfNeeded() (bool, error) {
	if !s.NeedsCompaction() {
		return false, nil
	}
	return true, s.Compact()
}

// Compact merges every file whose stale fraction meets the configured
// threshold: live parameters are collected and rewritten as new files, then
// the old files are erased and the mapping updated (Appendix E).
func (s *Store) Compact() error {
	s.mu.Lock()
	victims := make([]*fileMeta, 0)
	for _, meta := range s.files {
		if meta.total == 0 {
			victims = append(victims, meta)
			continue
		}
		if float64(meta.stale)/float64(meta.total) >= s.cfg.StaleFractionToCompact {
			victims = append(victims, meta)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].name < victims[j].name })
	victimSet := make(map[string]bool, len(victims))
	for _, v := range victims {
		victimSet[v.name] = true
	}
	s.mu.Unlock()

	if len(victims) == 0 {
		return nil
	}

	// Collect the live parameters of every victim file.
	live := make(map[keys.Key]*embedding.Value)
	for _, v := range victims {
		data, err := s.dev.ReadFile(v.name)
		if err != nil {
			return fmt.Errorf("ssdps: compact read %s: %w", v.name, err)
		}
		recs, err := decodeFile(data)
		if err != nil {
			return fmt.Errorf("ssdps: compact decode %s: %w", v.name, err)
		}
		s.mu.Lock()
		for _, r := range recs {
			if s.mapping[r.key] == v.name {
				live[r.key] = r.value
			}
		}
		s.mu.Unlock()
	}

	// Rewrite the live parameters as fresh files (this also updates the
	// mapping and marks the victims' remaining copies stale).
	if err := s.Dump(live); err != nil {
		return fmt.Errorf("ssdps: compact rewrite: %w", err)
	}

	// Erase the victims.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range victims {
		if err := s.dev.Remove(v.name); err != nil {
			return fmt.Errorf("ssdps: compact erase %s: %w", v.name, err)
		}
		delete(s.files, v.name)
		s.stats.CompactedFiles++
	}
	s.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the store's statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Files = len(s.files)
	st.LiveParams = int64(len(s.mapping))
	var stale int64
	for _, meta := range s.files {
		stale += int64(meta.stale)
	}
	st.StaleParams = stale
	st.UsageBytes = s.dev.UsageBytes()
	return st
}

// Keys returns every live key (unsorted). Intended for inspection tools and
// tests; the production path never enumerates the full key space.
func (s *Store) Keys() []keys.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]keys.Key, 0, len(s.mapping))
	for k := range s.mapping {
		out = append(out, k)
	}
	return out
}

// Device returns the underlying block device (for I/O statistics).
func (s *Store) Device() *blockio.Device { return s.dev }
