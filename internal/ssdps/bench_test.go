package ssdps

import (
	"math/rand"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/simtime"
)

func benchStore(b *testing.B, paramsPerFile int) *Store {
	b.Helper()
	ssd := hw.SSD{
		ReadBandwidthBytesPerSec:  6 << 30,
		WriteBandwidthBytesPerSec: 4 << 30,
		ReadLatency:               90 * time.Microsecond,
		WriteLatency:              25 * time.Microsecond,
		BlockBytes:                4096,
	}
	dev, err := blockio.NewDevice(b.TempDir(), ssd, simtime.NewClock())
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(dev, Config{Dim: 8, ParamsPerFile: paramsPerFile})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchVals(n int, seed int64) map[keys.Key]*embedding.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[keys.Key]*embedding.Value, n)
	for i := 0; i < n; i++ {
		out[keys.Key(keys.Mix64(uint64(i)))] = embedding.NewRandomValue(8, rng)
	}
	return out
}

// BenchmarkFileRead measures the SSD-PS read path: loading a random subset
// of parameters, which reads whole parameter files (the read-amplification
// trade of Appendix E).
func BenchmarkFileRead(b *testing.B) {
	s := benchStore(b, 256)
	if err := s.Dump(benchVals(8192, 1)); err != nil {
		b.Fatal(err)
	}
	all := s.Keys()
	rng := rand.New(rand.NewSource(2))
	want := make([]keys.Key, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range want {
			want[j] = all[rng.Intn(len(all))]
		}
		out, err := s.Load(want)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("load returned nothing")
		}
	}
}

// BenchmarkDumpCompactCycle measures the SSD-PS write path under churn: each
// iteration rewrites the same parameter set (making the previous copies
// stale) and runs a compaction pass once the stale fraction builds up.
func BenchmarkDumpCompactCycle(b *testing.B) {
	s := benchStore(b, 256)
	vals := benchVals(2048, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Dump(vals); err != nil {
			b.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
