package ssdps

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hps/internal/blockio"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/simtime"
)

func testDevice(t *testing.T) *blockio.Device {
	t.Helper()
	ssd := hw.SSD{
		ReadBandwidthBytesPerSec:  1 << 30,
		WriteBandwidthBytesPerSec: 1 << 30,
		ReadLatency:               time.Microsecond,
		WriteLatency:              time.Microsecond,
		BlockBytes:                4096,
	}
	dev, err := blockio.NewDevice(t.TempDir(), ssd, simtime.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func testStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(testDevice(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func makeVals(dim int, ks ...uint64) map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	for _, k := range ks {
		v := embedding.NewValue(dim)
		v.Weights[0] = float32(k)
		out[keys.Key(k)] = v
	}
	return out
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Config{}); err == nil {
		t.Fatal("nil device should fail")
	}
	s := testStore(t, Config{})
	if s.Dim() != 8 {
		t.Fatalf("default dim = %d", s.Dim())
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	s := testStore(t, Config{Dim: 4, ParamsPerFile: 3})
	vals := makeVals(4, 1, 2, 3, 4, 5, 6, 7)
	if err := s.Dump(vals); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 7 {
		t.Fatalf("len = %d", s.Len())
	}
	got, err := s.Load([]keys.Key{1, 5, 7, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d values, want 3 (key 100 missing)", len(got))
	}
	for _, k := range []uint64{1, 5, 7} {
		if got[keys.Key(k)].Weights[0] != float32(k) {
			t.Fatalf("value for %d corrupted", k)
		}
	}
	if !s.Contains(1) || s.Contains(100) {
		t.Fatal("Contains wrong")
	}
	// 7 params with 3 per file = 3 files.
	if st := s.Stats(); st.Files != 3 || st.LiveParams != 7 || st.StaleParams != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDumpEmptyNoop(t *testing.T) {
	s := testStore(t, Config{Dim: 2})
	if err := s.Dump(nil); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Files != 0 {
		t.Fatal("empty dump should create no files")
	}
}

func TestUpdatesCreateStaleCopies(t *testing.T) {
	s := testStore(t, Config{Dim: 2, ParamsPerFile: 10})
	if err := s.Dump(makeVals(2, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// Update keys 1 and 2 with new values.
	updated := makeVals(2, 1, 2)
	updated[1].Weights[0] = 100
	if err := s.Dump(updated); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Files != 2 {
		t.Fatalf("files = %d", st.Files)
	}
	if st.StaleParams != 2 {
		t.Fatalf("stale = %d, want 2", st.StaleParams)
	}
	if st.LiveParams != 3 {
		t.Fatalf("live = %d", st.LiveParams)
	}
	// Load must return the newest version.
	got, err := s.Load([]keys.Key{1})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Weights[0] != 100 {
		t.Fatalf("load returned stale value %v", got[1].Weights[0])
	}
}

func TestCompactRemovesStaleFiles(t *testing.T) {
	s := testStore(t, Config{Dim: 2, ParamsPerFile: 4, StaleFractionToCompact: 0.5})
	if err := s.Dump(makeVals(2, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	// Supersede 3 of the 4 (75% stale) so the first file qualifies.
	newer := makeVals(2, 1, 2, 3)
	newer[1].Weights[0] = 11
	newer[2].Weights[0] = 22
	newer[3].Weights[0] = 33
	if err := s.Dump(newer); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.StaleParams != 3 {
		t.Fatalf("stale before = %d", before.StaleParams)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.StaleParams != 0 {
		t.Fatalf("stale after compact = %d", after.StaleParams)
	}
	if after.Compactions != 1 || after.CompactedFiles == 0 {
		t.Fatalf("compaction stats = %+v", after)
	}
	if after.LiveParams != 4 {
		t.Fatalf("live after compact = %d", after.LiveParams)
	}
	// All values still correct after compaction.
	got, err := s.Load([]keys.Key{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Weights[0] != 11 || got[4].Weights[0] != 4 {
		t.Fatal("values corrupted by compaction")
	}
	// Files with few stale values are left alone.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactIfNeededThreshold(t *testing.T) {
	s := testStore(t, Config{Dim: 2, ParamsPerFile: 4, DiskUsageThresholdBytes: 1 << 40})
	s.Dump(makeVals(2, 1, 2, 3, 4))
	ran, err := s.CompactIfNeeded()
	if err != nil || ran {
		t.Fatalf("compaction should not run below threshold: ran=%v err=%v", ran, err)
	}
	// Tiny threshold forces compaction.
	s2 := testStore(t, Config{Dim: 2, ParamsPerFile: 2, DiskUsageThresholdBytes: 1})
	s2.Dump(makeVals(2, 1, 2, 3, 4))
	s2.Dump(makeVals(2, 1, 2, 3, 4)) // make the first files 100% stale
	ran, err = s2.CompactIfNeeded()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compaction should run above threshold")
	}
	if !s2.NeedsCompaction() && s2.Stats().UsageBytes > 1 {
		// NeedsCompaction may still be true because the threshold is absurdly
		// small; the important part is that live data survived.
		t.Log("usage still above threshold, as expected for a 1-byte threshold")
	}
	got, _ := s2.Load([]keys.Key{1, 2, 3, 4})
	if len(got) != 4 {
		t.Fatalf("live params lost by compaction: %d", len(got))
	}
}

func TestDiskUsageBoundedUnderChurn(t *testing.T) {
	// Repeatedly rewrite the same key set; with compaction triggered by a
	// modest threshold the number of live files must stay bounded instead of
	// growing linearly with the number of dumps.
	dev := testDevice(t)
	s, err := Open(dev, Config{Dim: 2, ParamsPerFile: 8, DiskUsageThresholdBytes: 16 * 4096, StaleFractionToCompact: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		vals := makeVals(2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
		for _, v := range vals {
			v.Weights[1] = float32(round)
		}
		if err := s.Dump(vals); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CompactIfNeeded(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LiveParams != 16 {
		t.Fatalf("live = %d", st.LiveParams)
	}
	if st.Files > 20 {
		t.Fatalf("file count %d not bounded by compaction", st.Files)
	}
	if st.Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	// Latest values visible.
	got, _ := s.Load([]keys.Key{7})
	if got[7].Weights[1] != 49 {
		t.Fatalf("latest value lost: %v", got[7].Weights[1])
	}
}

func TestRecoverRebuildsMapping(t *testing.T) {
	dir := t.TempDir()
	ssd := hw.SSD{BlockBytes: 4096}
	dev, err := blockio.NewDevice(dir, ssd, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Open(dev, Config{Dim: 2, ParamsPerFile: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1.Dump(makeVals(2, 1, 2, 3))
	updated := makeVals(2, 2)
	updated[2].Weights[0] = 99
	s1.Dump(updated)

	// Reopen the directory with a fresh store and recover.
	dev2, err := blockio.NewDevice(dir, ssd, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dev2, Config{Dim: 2, ParamsPerFile: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("recovered %d params, want 3", s2.Len())
	}
	got, err := s2.Load([]keys.Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Weights[0] != 99 {
		t.Fatal("recovery must keep the newest version")
	}
	st := s2.Stats()
	if st.StaleParams != 1 {
		t.Fatalf("recovered stale = %d", st.StaleParams)
	}
}

func TestLoadDumpPropertyLatestWins(t *testing.T) {
	s := testStore(t, Config{Dim: 1, ParamsPerFile: 5})
	truth := make(map[keys.Key]float32)
	f := func(ops []uint16, seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		batch := make(map[keys.Key]*embedding.Value)
		for _, op := range ops {
			k := keys.Key(op % 64)
			v := embedding.NewValue(1)
			v.Weights[0] = rng.Float32()
			batch[k] = v
			truth[k] = v.Weights[0]
		}
		if err := s.Dump(batch); err != nil {
			return false
		}
		// Load everything we believe exists and verify latest-wins.
		var ks []keys.Key
		for k := range truth {
			ks = append(ks, k)
		}
		got, err := s.Load(ks)
		if err != nil || len(got) != len(truth) {
			return false
		}
		for k, want := range truth {
			if got[k].Weights[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysAndDevice(t *testing.T) {
	s := testStore(t, Config{Dim: 2, ParamsPerFile: 4})
	s.Dump(makeVals(2, 5, 6))
	if len(s.Keys()) != 2 {
		t.Fatal("Keys wrong")
	}
	if s.Device() == nil {
		t.Fatal("Device accessor nil")
	}
	if s.Device().Stats().Writes == 0 {
		t.Fatal("dump should have written files")
	}
}

func TestConcurrentDumpLoad(t *testing.T) {
	s := testStore(t, Config{Dim: 2, ParamsPerFile: 8})
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(base uint64) {
			vals := makeVals(2, base, base+1, base+2, base+3)
			done <- s.Dump(vals)
		}(uint64(w * 10))
		go func(base uint64) {
			_, err := s.Load([]keys.Key{keys.Key(base)})
			done <- err
		}(uint64(w * 10))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 16 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestTierInterface(t *testing.T) {
	s := testStore(t, Config{Dim: 4, ParamsPerFile: 8})
	var tier ps.Tier = s
	if tier.Name() != "ssd-ps" {
		t.Fatalf("name = %q", tier.Name())
	}
	if err := s.Dump(makeVals(4, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}

	// Tier pull loads from files; missing keys are absent.
	res, err := tier.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: []keys.Key{1, 2, 99}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[1].Weights[0] != 1 {
		t.Fatalf("pull = %v", res)
	}

	// Tier push merges deltas read-modify-write; unknown keys materialize.
	delta := embedding.NewValue(4)
	delta.Weights[0] = 10
	err = tier.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: map[keys.Key]*embedding.Value{
		2: delta, 50: delta,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ = tier.Pull(ps.PullRequest{Keys: []keys.Key{2, 50}})
	if res[2].Weights[0] != 2+10 {
		t.Fatalf("merged value = %v, want 12", res[2].Weights[0])
	}
	if res[50].Weights[0] != 10 {
		t.Fatalf("materialized value = %v, want 10", res[50].Weights[0])
	}

	st := tier.TierStats()
	if st.Pulls == 0 || st.Pushes == 0 || st.PullTime <= 0 || st.PushTime <= 0 {
		t.Fatalf("uniform stats = %+v", st)
	}
}

func TestEvictRetiresKeys(t *testing.T) {
	s := testStore(t, Config{Dim: 4, ParamsPerFile: 8, StaleFractionToCompact: 0.5})
	if err := s.Dump(makeVals(4, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	n, err := s.Evict([]keys.Key{1, 2, 99})
	if err != nil || n != 2 {
		t.Fatalf("evict = (%d, %v), want (2, nil)", n, err)
	}
	if s.Contains(1) || s.Contains(2) || !s.Contains(3) {
		t.Fatal("retired keys must disappear, live keys must survive")
	}
	if s.Len() != 2 {
		t.Fatalf("live params = %d, want 2", s.Len())
	}
	// Evict(nil) compacts without dropping live parameters.
	if _, err := s.Evict(nil); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(3) || !s.Contains(4) {
		t.Fatal("compaction must preserve live parameters")
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatal("Evict(nil) should run a compaction pass")
	}
}
