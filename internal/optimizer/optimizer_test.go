package optimizer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSGD(t *testing.T) {
	o := SGD{LR: 0.1}
	w := []float32{1, 2}
	o.ApplySparse(w, nil, []float32{1, -1})
	if math.Abs(float64(w[0]-0.9)) > 1e-6 || math.Abs(float64(w[1]-2.1)) > 1e-6 {
		t.Fatalf("SGD result = %v", w)
	}
	if o.StateSize(10) != 0 {
		t.Fatal("SGD should be stateless")
	}
	if o.Name() != "sgd" {
		t.Fatal("name")
	}
}

func TestAdagrad(t *testing.T) {
	o := Adagrad{LR: 1.0}
	w := []float32{0}
	state := []float32{0}
	o.ApplySparse(w, state, []float32{2})
	// state = 4, step = 2/(2+eps) ≈ 1
	if math.Abs(float64(state[0]-4)) > 1e-6 {
		t.Fatalf("state = %v", state)
	}
	if math.Abs(float64(w[0]+1)) > 1e-3 {
		t.Fatalf("w = %v", w)
	}
	// Second identical gradient should take a smaller step.
	before := w[0]
	o.ApplySparse(w, state, []float32{2})
	step2 := float64(before - w[0])
	if step2 >= 1.0 {
		t.Fatalf("adagrad second step %v should shrink", step2)
	}
	if o.StateSize(5) != 5 {
		t.Fatal("adagrad state size")
	}
}

func TestAdagradInitialAccumulator(t *testing.T) {
	o := Adagrad{LR: 1.0, InitialAccumulator: 1.0}
	w := []float32{0}
	state := []float32{0}
	o.ApplySparse(w, state, []float32{1})
	// state = 1 (init) + 1 = 2
	if math.Abs(float64(state[0]-2)) > 1e-6 {
		t.Fatalf("state = %v", state)
	}
}

func TestMomentum(t *testing.T) {
	o := Momentum{LR: 0.1, Mu: 0.9}
	w := []float32{0}
	state := []float32{0}
	o.ApplySparse(w, state, []float32{1})
	if math.Abs(float64(w[0]+0.1)) > 1e-6 {
		t.Fatalf("first step w = %v", w)
	}
	o.ApplySparse(w, state, []float32{1})
	// velocity = 0.9 + 1 = 1.9, w = -0.1 - 0.19 = -0.29
	if math.Abs(float64(w[0]+0.29)) > 1e-5 {
		t.Fatalf("second step w = %v", w)
	}
	if o.StateSize(3) != 3 {
		t.Fatal("momentum state size")
	}
}

func TestDenseEqualsSparse(t *testing.T) {
	// ApplyDense and ApplySparse must be the same rule for every optimizer.
	opts := []interface {
		Sparse
		Dense
	}{SGD{LR: 0.1}, Adagrad{LR: 0.1}, Momentum{LR: 0.1, Mu: 0.5}}
	for _, o := range opts {
		w1 := []float32{1, -1, 0.5}
		w2 := []float32{1, -1, 0.5}
		s1 := make([]float32, o.StateSize(3))
		s2 := make([]float32, o.StateSize(3))
		g := []float32{0.3, -0.2, 0.1}
		if o.StateSize(3) == 0 {
			s1, s2 = nil, nil
		}
		o.ApplySparse(w1, s1, g)
		o.ApplyDense(w2, s2, g)
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("%s dense != sparse at %d: %v vs %v", o.Name(), i, w1[i], w2[i])
			}
		}
	}
}

func TestGradientDescentDirectionProperty(t *testing.T) {
	// For every optimizer, a positive gradient must never increase the
	// parameter and a negative gradient must never decrease it.
	opts := []Sparse{SGD{LR: 0.1}, Adagrad{LR: 0.1}, Momentum{LR: 0.1, Mu: 0.9}}
	for _, o := range opts {
		f := func(w0, g float32) bool {
			if math.IsNaN(float64(w0)) || math.IsNaN(float64(g)) ||
				math.IsInf(float64(w0), 0) || math.IsInf(float64(g), 0) {
				return true
			}
			w := []float32{w0}
			state := []float32{0}
			o.ApplySparse(w, state, []float32{g})
			if g > 0 {
				return w[0] <= w0
			}
			if g < 0 {
				return w[0] >= w0
			}
			return w[0] == w0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
	}
}

func TestLengthPanics(t *testing.T) {
	cases := []func(){
		func() { SGD{LR: 1}.ApplySparse([]float32{1}, nil, []float32{1, 2}) },
		func() { Adagrad{LR: 1}.ApplySparse([]float32{1}, []float32{}, []float32{1}) },
		func() { Momentum{LR: 1}.ApplySparse([]float32{1, 2}, []float32{0}, []float32{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDefaults(t *testing.T) {
	if DefaultSparse() == nil || DefaultDense() == nil {
		t.Fatal("defaults must not be nil")
	}
	if DefaultSparse().Name() != "adagrad" {
		t.Fatal("default sparse should be adagrad (CTR convention)")
	}
}
