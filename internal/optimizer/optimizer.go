// Package optimizer implements the gradient-descent update rules used for
// both the sparse embedding parameters and the dense fully-connected
// parameters of the CTR model.
//
// Optimizers operate on raw float32 slices so the same implementation serves
// the HBM-PS (updating embedding.Value weights with their Adagrad
// accumulators), the dense layer parameters replicated on every GPU, and the
// MPI baseline's CPU updates.
package optimizer

import (
	"fmt"
	"math"
)

// Sparse updates an embedding vector w given its gradient grad and its
// per-element accumulator state (e.g. the Adagrad G2 sum). Implementations
// must tolerate state being nil for stateless rules.
type Sparse interface {
	// Name returns the human-readable optimizer name.
	Name() string
	// ApplySparse updates w in place. state has the same length as w and is
	// also updated in place when the rule is stateful.
	ApplySparse(w, state, grad []float32)
}

// Dense updates a dense parameter block w given its gradient and an opaque
// state block of StateSize(len(w)) float32s.
type Dense interface {
	// Name returns the human-readable optimizer name.
	Name() string
	// StateSize returns how many float32s of state a parameter block of n
	// elements requires.
	StateSize(n int) int
	// ApplyDense updates w in place using grad and state.
	ApplyDense(w, state, grad []float32)
}

// SGD is plain stochastic gradient descent: w -= lr * grad.
type SGD struct {
	// LR is the learning rate.
	LR float32
}

// Name implements Sparse and Dense.
func (s SGD) Name() string { return "sgd" }

// ApplySparse implements Sparse.
func (s SGD) ApplySparse(w, state, grad []float32) {
	checkLens("sgd", w, grad)
	for i, g := range grad {
		w[i] -= s.LR * g
	}
}

// StateSize implements Dense; SGD keeps no state.
func (s SGD) StateSize(n int) int { return 0 }

// ApplyDense implements Dense.
func (s SGD) ApplyDense(w, state, grad []float32) {
	s.ApplySparse(w, nil, grad)
}

// Adagrad is the per-coordinate adaptive rule used for sparse CTR embeddings:
// state_i += g_i^2 ; w_i -= lr * g_i / (sqrt(state_i) + eps).
type Adagrad struct {
	// LR is the learning rate.
	LR float32
	// Eps avoids division by zero; 1e-6 when zero.
	Eps float32
	// InitialAccumulator is added to the state the first time it is used.
	InitialAccumulator float32
}

// Name implements Sparse and Dense.
func (a Adagrad) Name() string { return "adagrad" }

func (a Adagrad) eps() float32 {
	if a.Eps <= 0 {
		return 1e-6
	}
	return a.Eps
}

// ApplySparse implements Sparse. state must have the same length as w.
func (a Adagrad) ApplySparse(w, state, grad []float32) {
	checkLens("adagrad", w, grad)
	if len(state) != len(w) {
		panic(fmt.Sprintf("optimizer: adagrad state length %d != %d", len(state), len(w)))
	}
	eps := a.eps()
	for i, g := range grad {
		if state[i] == 0 && a.InitialAccumulator > 0 {
			state[i] = a.InitialAccumulator
		}
		state[i] += g * g
		denom := float32(math.Sqrt(float64(state[i]))) + eps
		w[i] -= a.LR * g / denom
	}
}

// StateSize implements Dense: one accumulator per parameter.
func (a Adagrad) StateSize(n int) int { return n }

// ApplyDense implements Dense.
func (a Adagrad) ApplyDense(w, state, grad []float32) {
	a.ApplySparse(w, state, grad)
}

// Momentum is SGD with classical momentum: v = mu*v + grad ; w -= lr*v.
type Momentum struct {
	// LR is the learning rate.
	LR float32
	// Mu is the momentum coefficient (e.g. 0.9).
	Mu float32
}

// Name implements Sparse and Dense.
func (m Momentum) Name() string { return "momentum" }

// ApplySparse implements Sparse. state holds the velocity.
func (m Momentum) ApplySparse(w, state, grad []float32) {
	checkLens("momentum", w, grad)
	if len(state) != len(w) {
		panic(fmt.Sprintf("optimizer: momentum state length %d != %d", len(state), len(w)))
	}
	for i, g := range grad {
		state[i] = m.Mu*state[i] + g
		w[i] -= m.LR * state[i]
	}
}

// StateSize implements Dense: one velocity per parameter.
func (m Momentum) StateSize(n int) int { return n }

// ApplyDense implements Dense.
func (m Momentum) ApplyDense(w, state, grad []float32) {
	m.ApplySparse(w, state, grad)
}

func checkLens(name string, w, grad []float32) {
	if len(w) != len(grad) {
		panic(fmt.Sprintf("optimizer: %s gradient length %d != parameter length %d", name, len(grad), len(w)))
	}
}

// DefaultSparse returns the sparse optimizer used throughout the system when
// none is configured: Adagrad with the learning rate commonly used for CTR
// embeddings.
func DefaultSparse() Sparse {
	return Adagrad{LR: 0.05, InitialAccumulator: 0.1}
}

// DefaultDense returns the dense optimizer used when none is configured.
func DefaultDense() Dense {
	return Adagrad{LR: 0.01, InitialAccumulator: 0.1}
}
