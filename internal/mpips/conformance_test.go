package mpips_test

import (
	"testing"

	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/model"
	"hps/internal/mpips"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
)

// TestTierConformance runs the shared ps.Tier suite against the MPI-cluster
// baseline: a flat single-tier server where pushes materialize unknown keys
// and eviction retires them. The baseline is not safe for concurrent use.
func TestTierConformance(t *testing.T) {
	const dim = 8
	conformance.Run(t, conformance.Harness{
		Dim:         dim,
		Shard:       ps.NoShard,
		PushCreates: true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			c, err := mpips.New(mpips.Config{
				Nodes: 4,
				Spec: model.Spec{
					Name:               "conformance",
					SparseParams:       4096,
					EmbeddingDim:       dim,
					NonZerosPerExample: 4,
					HiddenLayers:       []int{8},
				},
				Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			seed := make(map[keys.Key]*embedding.Value, len(ks))
			for i, k := range ks {
				v := embedding.NewValue(dim)
				v.Weights[0] = float32(i + 1)
				seed[k] = v
			}
			if err := c.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: seed}); err != nil {
				t.Fatal(err)
			}
			return c
		},
	})
}
