// Package mpips implements the baseline the paper compares against: the
// MPI-cluster in-memory distributed parameter server used in production since
// 2013 (Sections 1.1 and 7.1).
//
// The baseline shards the full model across the main memory of N CPU-only
// nodes. Each node streams its own training batches from HDFS, pulls the
// referenced parameters from the owning nodes over the data-center network,
// computes gradients on its CPUs, and pushes the gradients back.
//
// The reproduction trains the actual model through a single representative
// node (all nodes run the same data-parallel loop, so one node's learning
// behaviour is representative) while the cost model accounts the per-node
// batch time — HDFS streaming, parameter pull/push over Ethernet, and CPU
// compute — and scales throughput by the node count. Cluster-level accuracy
// matches the hierarchical system because both see equivalent data and use
// the same optimizer (Fig 3b).
package mpips

import (
	"fmt"
	"time"

	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/metrics"
	"hps/internal/model"
	"hps/internal/ps"
	"hps/internal/reference"
	"hps/internal/simtime"
)

// Config configures the MPI-cluster baseline.
type Config struct {
	// Nodes is the MPI cluster size (75-150 in Table 3).
	Nodes int
	// Spec is the model being trained.
	Spec model.Spec
	// Profile describes one CPU-only node; zero value uses hw.DefaultMPINode.
	Profile hw.NodeProfile
	// Seed seeds model initialization.
	Seed int64
}

// Breakdown reports the cumulative modelled time of each baseline stage for
// the representative node.
type Breakdown struct {
	// ReadExamples is the HDFS streaming time.
	ReadExamples time.Duration
	// PullPush is the parameter pull/push network time.
	PullPush time.Duration
	// Compute is the CPU forward/backward time.
	Compute time.Duration
}

// Total returns the per-node batch-loop time (the stages are not overlapped
// in the baseline).
func (b Breakdown) Total() time.Duration { return b.ReadExamples + b.PullPush + b.Compute }

// Cluster is the MPI-cluster baseline trainer.
// It is not safe for concurrent use. It implements ps.Tier as a flat,
// single-tier parameter server: the whole model lives in cluster main
// memory, pulls and pushes cross the data-center network, and there is no
// tier below to demote to.
type Cluster struct {
	cfg       Config
	trainer   *reference.Trainer
	clock     *simtime.Clock
	rec       ps.Recorder
	breakdown Breakdown
	examples  int64
	batches   int64
}

var _ ps.Tier = (*Cluster)(nil)

// New constructs the baseline cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("mpips: need at least one node, have %d", cfg.Nodes)
	}
	if cfg.Spec.EmbeddingDim <= 0 {
		return nil, fmt.Errorf("mpips: model spec has no embedding dimension")
	}
	if cfg.Profile.CPU.FLOPS == 0 {
		cfg.Profile = hw.DefaultMPINode()
	}
	return &Cluster{
		cfg: cfg,
		trainer: reference.New(reference.Config{
			EmbeddingDim: cfg.Spec.EmbeddingDim,
			Hidden:       cfg.Spec.HiddenLayers,
			Seed:         cfg.Seed,
		}),
		clock: simtime.NewClock(),
	}, nil
}

// Nodes returns the configured cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Clock returns the cluster's simulated-time clock (per representative node).
func (c *Cluster) Clock() *simtime.Clock { return c.clock }

// Trainer exposes the underlying model for evaluation.
func (c *Cluster) Trainer() *reference.Trainer { return c.trainer }

// TrainBatch trains the model on one per-node batch and charges its modelled
// time: HDFS streaming, remote parameter pull and gradient push over the
// network, and CPU compute.
func (c *Cluster) TrainBatch(b *dataset.Batch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	c.accountBatch(b)
	c.trainer.TrainBatch(b)
	c.examples += int64(b.Len())
	c.batches++
	return nil
}

// accountBatch charges the modelled per-node time of one batch without
// performing the actual learning — the cost model is independent of the
// gradient math, so it can be exercised (and tested) on its own.
func (c *Cluster) accountBatch(b *dataset.Batch) {
	// 1. Stream the batch from HDFS.
	readTime := c.cfg.Profile.HDFS.ReadTime(b.ByteSize())
	c.clock.Add(simtime.ResourceHDFS, readTime)

	// 2. Pull the referenced parameters. A 1/Nodes fraction lives locally;
	// the rest crosses the network in both directions (pull values now, push
	// gradients after the batch).
	working := b.Keys()
	remoteFraction := float64(c.cfg.Nodes-1) / float64(c.cfg.Nodes)
	valueBytes := int64(8 + embedding.EncodedSize(c.cfg.Spec.EmbeddingDim))
	remoteBytes := int64(float64(int64(len(working))*valueBytes) * remoteFraction)
	pullTime := c.cfg.Profile.Ethernet.TransferTime(remoteBytes)
	pushTime := c.cfg.Profile.Ethernet.TransferTime(remoteBytes)
	c.clock.Add(simtime.ResourceNetwork, pullTime+pushTime)

	// 3. Compute gradients on the CPU.
	flopsPerExample := c.trainer.Network().FLOPsPerExample() +
		float64(6*c.cfg.Spec.EmbeddingDim*c.cfg.Spec.NonZerosPerExample)
	computeTime := c.cfg.Profile.CPU.ComputeTime(flopsPerExample * float64(b.Len()))
	c.clock.Add(simtime.ResourceCPU, computeTime)

	c.breakdown.ReadExamples += readTime
	c.breakdown.PullPush += pullTime + pushTime
	c.breakdown.Compute += computeTime
}

// Name implements ps.Tier.
func (c *Cluster) Name() string { return "mpi-ps" }

// TierStats implements ps.Tier.
func (c *Cluster) TierStats() ps.Stats { return c.rec.TierStats() }

// remoteTransferTime models moving n parameters across the cluster network:
// a 1/Nodes fraction of the shard lives on the requesting node, the rest
// crosses Ethernet (the same model TrainBatch uses).
func (c *Cluster) remoteTransferTime(n int) time.Duration {
	remoteFraction := float64(c.cfg.Nodes-1) / float64(c.cfg.Nodes)
	valueBytes := int64(8 + embedding.EncodedSize(c.cfg.Spec.EmbeddingDim))
	remoteBytes := int64(float64(int64(n)*valueBytes) * remoteFraction)
	return c.cfg.Profile.Ethernet.TransferTime(remoteBytes)
}

// Pull implements ps.Tier: it reads the current values of the requested
// keys from the sharded in-memory model. Keys never trained on are absent.
func (c *Cluster) Pull(req ps.PullRequest) (ps.Result, error) {
	table := c.trainer.Embeddings()
	out := ps.ServePull(req.Keys, func(k keys.Key) (*embedding.Value, bool) {
		v := table.Get(uint64(k))
		return v, v != nil
	})
	d := c.remoteTransferTime(len(out))
	c.clock.Add(simtime.ResourceNetwork, d)
	c.rec.RecordPull(len(out), d)
	return out, nil
}

// Push implements ps.Tier: it merges per-key deltas into the in-memory
// model, materializing unknown keys as fresh values equal to their delta.
func (c *Cluster) Push(req ps.PushRequest) error {
	table := c.trainer.Embeddings()
	n := ps.ApplyDeltas(req.Deltas, func(k keys.Key, delta *embedding.Value) bool {
		if v := table.Get(uint64(k)); v != nil {
			v.Add(delta)
		} else {
			table.Put(uint64(k), delta.Clone())
		}
		return true
	})
	d := c.remoteTransferTime(n)
	c.clock.Add(simtime.ResourceNetwork, d)
	c.rec.RecordPush(n, d)
	return nil
}

// Evict implements ps.Tier: the baseline keeps the whole model in cluster
// memory with no tier below, so evicting specific keys retires them from
// the model and a nil slice retires nothing.
func (c *Cluster) Evict(ks []keys.Key) (int, error) {
	table := c.trainer.Embeddings()
	n := 0
	for _, k := range ks {
		if table.Get(uint64(k)) != nil {
			table.Delete(uint64(k))
			n++
		}
	}
	c.rec.RecordEvict(n)
	return n, nil
}

// Predict returns the model's click probability for a feature set.
func (c *Cluster) Predict(features []keys.Key) float32 { return c.trainer.Predict(features) }

// Evaluate returns the model AUC over n fresh examples from gen.
func (c *Cluster) Evaluate(gen *dataset.Generator, n int) float64 {
	return c.trainer.Evaluate(gen, n)
}

// Breakdown returns the per-stage modelled time of the representative node.
func (c *Cluster) Breakdown() Breakdown { return c.breakdown }

// PerNodeBatchTime returns the average modelled time a node spends per batch.
func (c *Cluster) PerNodeBatchTime() time.Duration {
	if c.batches == 0 {
		return 0
	}
	return c.breakdown.Total() / time.Duration(c.batches)
}

// Throughput returns the cluster-wide training throughput: every node
// processes its own batches in parallel, so the cluster trains Nodes times
// the representative node's examples in the representative node's time.
func (c *Cluster) Throughput() metrics.Throughput {
	return metrics.Throughput{
		Examples: c.examples * int64(c.cfg.Nodes),
		Elapsed:  c.breakdown.Total(),
	}
}

// ExamplesTrained returns the number of examples the representative node has
// trained on.
func (c *Cluster) ExamplesTrained() int64 { return c.examples }
