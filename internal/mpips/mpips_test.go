package mpips

import (
	"testing"

	"hps/internal/dataset"
	"hps/internal/model"
	"hps/internal/simtime"
)

func testSpec() model.Spec {
	return model.Spec{
		Name:               "test",
		NonZerosPerExample: 20,
		SparseParams:       10000,
		DenseParams:        2000,
		MPINodes:           10,
		EmbeddingDim:       8,
		HiddenLayers:       []int{16},
	}
}

func newCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Spec: testSpec(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Spec: testSpec()}); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := New(Config{Nodes: 4, Spec: model.Spec{}}); err == nil {
		t.Fatal("empty spec should fail")
	}
	c := newCluster(t, 10)
	if c.Nodes() != 10 || c.Clock() == nil || c.Trainer() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestTrainBatchChargesAllStages(t *testing.T) {
	c := newCluster(t, 10)
	gen := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	if err := c.TrainBatch(gen.NextBatch(64)); err != nil {
		t.Fatal(err)
	}
	bd := c.Breakdown()
	if bd.ReadExamples <= 0 || bd.PullPush <= 0 || bd.Compute <= 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd.Total() != bd.ReadExamples+bd.PullPush+bd.Compute {
		t.Fatal("total mismatch")
	}
	if c.Clock().Total(simtime.ResourceCPU) <= 0 || c.Clock().Total(simtime.ResourceNetwork) <= 0 {
		t.Fatal("clock should be charged")
	}
	if c.ExamplesTrained() != 64 {
		t.Fatal("example counter wrong")
	}
	if c.PerNodeBatchTime() <= 0 {
		t.Fatal("per-batch time should be positive")
	}
	// Empty batch is a no-op.
	if err := c.TrainBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputScalesWithNodes(t *testing.T) {
	gen1 := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	gen2 := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	small := newCluster(t, 10)
	large := newCluster(t, 100)
	for i := 0; i < 3; i++ {
		small.TrainBatch(gen1.NextBatch(64))
		large.TrainBatch(gen2.NextBatch(64))
	}
	ts := small.Throughput()
	tl := large.Throughput()
	if tl.ExamplesPerSecond() <= ts.ExamplesPerSecond() {
		t.Fatalf("100-node cluster (%v ex/s) should out-train 10-node (%v ex/s)",
			tl.ExamplesPerSecond(), ts.ExamplesPerSecond())
	}
	// Scaling is sub-linear in nodes only through the remote fraction; with
	// the cost model it should still be within ~10x for 10x nodes.
	ratio := tl.ExamplesPerSecond() / ts.ExamplesPerSecond()
	if ratio > 10.5 {
		t.Fatalf("scaling ratio %v exceeds node ratio", ratio)
	}
}

func TestBaselineLearns(t *testing.T) {
	cfg := dataset.Config{NumFeatures: 3000, NonZerosPerExample: 15}
	train := dataset.NewGenerator(cfg, 1)
	test := dataset.NewGenerator(cfg, 2)
	c, err := New(Config{Nodes: 10, Spec: model.Spec{
		NonZerosPerExample: 15, EmbeddingDim: 8, HiddenLayers: []int{32, 16},
	}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := c.TrainBatch(train.NextBatch(128)); err != nil {
			t.Fatal(err)
		}
	}
	auc := c.Evaluate(test, 1500)
	if auc < 0.65 {
		t.Fatalf("MPI baseline AUC = %v, want > 0.65", auc)
	}
	if p := c.Predict(train.NextExample().Features); p <= 0 || p >= 1 {
		t.Fatalf("prediction %v out of range", p)
	}
}

func TestComputeDominatesForLargeDense(t *testing.T) {
	// CPU compute must dominate the per-batch time for a model with a large
	// dense tower — the reason the paper needs 75-150 CPU nodes.
	spec := testSpec()
	spec.HiddenLayers = []int{1024, 512}
	c, err := New(Config{Nodes: 100, Spec: spec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	c.TrainBatch(gen.NextBatch(2048))
	bd := c.Breakdown()
	if bd.Compute <= bd.ReadExamples {
		t.Fatalf("compute (%v) should dominate HDFS (%v) for a large dense tower", bd.Compute, bd.ReadExamples)
	}
}
