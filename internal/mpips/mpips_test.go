package mpips

import (
	"testing"

	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/model"
	"hps/internal/ps"
	"hps/internal/simtime"
)

func testSpec() model.Spec {
	return model.Spec{
		Name:               "test",
		NonZerosPerExample: 20,
		SparseParams:       10000,
		DenseParams:        2000,
		MPINodes:           10,
		EmbeddingDim:       8,
		HiddenLayers:       []int{16},
	}
}

func newCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Spec: testSpec(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Spec: testSpec()}); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := New(Config{Nodes: 4, Spec: model.Spec{}}); err == nil {
		t.Fatal("empty spec should fail")
	}
	c := newCluster(t, 10)
	if c.Nodes() != 10 || c.Clock() == nil || c.Trainer() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestTrainBatchChargesAllStages(t *testing.T) {
	c := newCluster(t, 10)
	gen := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	if err := c.TrainBatch(gen.NextBatch(64)); err != nil {
		t.Fatal(err)
	}
	bd := c.Breakdown()
	if bd.ReadExamples <= 0 || bd.PullPush <= 0 || bd.Compute <= 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd.Total() != bd.ReadExamples+bd.PullPush+bd.Compute {
		t.Fatal("total mismatch")
	}
	if c.Clock().Total(simtime.ResourceCPU) <= 0 || c.Clock().Total(simtime.ResourceNetwork) <= 0 {
		t.Fatal("clock should be charged")
	}
	if c.ExamplesTrained() != 64 {
		t.Fatal("example counter wrong")
	}
	if c.PerNodeBatchTime() <= 0 {
		t.Fatal("per-batch time should be positive")
	}
	// Empty batch is a no-op.
	if err := c.TrainBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputScalesWithNodes(t *testing.T) {
	gen1 := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	gen2 := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	small := newCluster(t, 10)
	large := newCluster(t, 100)
	for i := 0; i < 3; i++ {
		small.TrainBatch(gen1.NextBatch(64))
		large.TrainBatch(gen2.NextBatch(64))
	}
	ts := small.Throughput()
	tl := large.Throughput()
	if tl.ExamplesPerSecond() <= ts.ExamplesPerSecond() {
		t.Fatalf("100-node cluster (%v ex/s) should out-train 10-node (%v ex/s)",
			tl.ExamplesPerSecond(), ts.ExamplesPerSecond())
	}
	// Scaling is sub-linear in nodes only through the remote fraction; with
	// the cost model it should still be within ~10x for 10x nodes.
	ratio := tl.ExamplesPerSecond() / ts.ExamplesPerSecond()
	if ratio > 10.5 {
		t.Fatalf("scaling ratio %v exceeds node ratio", ratio)
	}
}

func TestBaselineLearns(t *testing.T) {
	cfg := dataset.Config{NumFeatures: 3000, NonZerosPerExample: 15}
	train := dataset.NewGenerator(cfg, 1)
	test := dataset.NewGenerator(cfg, 2)
	c, err := New(Config{Nodes: 10, Spec: model.Spec{
		NonZerosPerExample: 15, EmbeddingDim: 8, HiddenLayers: []int{32, 16},
	}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The full workload dominates the package's test time; -short trains a
	// quarter of it against a correspondingly looser bar.
	batches, evalN, minAUC := 40, 1500, 0.65
	if testing.Short() {
		batches, evalN, minAUC = 10, 500, 0.60
	}
	for i := 0; i < batches; i++ {
		if err := c.TrainBatch(train.NextBatch(128)); err != nil {
			t.Fatal(err)
		}
	}
	auc := c.Evaluate(test, evalN)
	if auc < minAUC {
		t.Fatalf("MPI baseline AUC = %v, want > %v", auc, minAUC)
	}
	if p := c.Predict(train.NextExample().Features); p <= 0 || p >= 1 {
		t.Fatalf("prediction %v out of range", p)
	}
}

func TestComputeDominatesForLargeDense(t *testing.T) {
	// CPU compute must dominate the per-batch time for a model with a large
	// dense tower — the reason the paper needs 75-150 CPU nodes.
	spec := testSpec()
	spec.HiddenLayers = []int{1024, 512}
	c, err := New(Config{Nodes: 100, Spec: spec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	// The batch must stay large enough that HDFS's fixed per-batch open
	// latency does not mask the bandwidth/compute ratio under test. The
	// assertion is about the cost model only, so -short skips the real
	// gradient math (which dominates this package's test time) and charges
	// the modelled costs directly.
	b := gen.NextBatch(2048)
	if testing.Short() {
		c.accountBatch(b)
	} else {
		c.TrainBatch(b)
	}
	bd := c.Breakdown()
	if bd.Compute <= bd.ReadExamples {
		t.Fatalf("compute (%v) should dominate HDFS (%v) for a large dense tower", bd.Compute, bd.ReadExamples)
	}
}

func TestTierInterface(t *testing.T) {
	c := newCluster(t, 10)
	var tier ps.Tier = c
	if tier.Name() != "mpi-ps" {
		t.Fatalf("name = %q", tier.Name())
	}
	gen := dataset.NewGenerator(dataset.ForModel(10000, 20), 1)
	if err := c.TrainBatch(gen.NextBatch(32)); err != nil {
		t.Fatal(err)
	}

	trained := c.Trainer().Embeddings().Keys()
	if len(trained) == 0 {
		t.Fatal("no embeddings materialized")
	}
	k := keys.Key(trained[0])
	res, err := tier.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: []keys.Key{k, 1 << 60}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("pull = %d values, want 1 (unknown key absent)", len(res))
	}

	delta := embedding.NewValue(8)
	delta.Weights[0] = 1.5
	if err := tier.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: map[keys.Key]*embedding.Value{k: delta}}); err != nil {
		t.Fatal(err)
	}
	after, _ := tier.Pull(ps.PullRequest{Keys: []keys.Key{k}})
	if after[k].Weights[0] != res[k].Weights[0]+1.5 {
		t.Fatal("push delta not applied")
	}

	if n, _ := tier.Evict([]keys.Key{k}); n != 1 {
		t.Fatalf("evict = %d, want 1", n)
	}
	if got, _ := tier.Pull(ps.PullRequest{Keys: []keys.Key{k}}); len(got) != 0 {
		t.Fatal("evicted key still present")
	}
	st := tier.TierStats()
	if st.Pulls != 3 || st.Pushes != 1 || st.KeysEvicted != 1 {
		t.Fatalf("uniform stats = %+v", st)
	}
}
