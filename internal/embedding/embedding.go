// Package embedding defines the sparse-parameter value layout used by every
// tier of the hierarchical parameter server.
//
// Each sparse feature key maps to a Value: an embedding vector, the Adagrad
// accumulator used by the optimizer, and a show-count used by the MEM-PS
// cache and the SSD-PS compaction heuristics. Values have a fixed on-disk
// size for a given dimension, which is what lets the SSD-PS pack them into
// block-aligned parameter files (Appendix E: "the values have a known fixed
// length, the serialized bucket on SSD exactly fits in an SSD block").
package embedding

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Value is the trainable state attached to a single sparse feature key.
type Value struct {
	// Weights is the embedding vector.
	Weights []float32
	// G2Sum is the per-element Adagrad accumulator.
	G2Sum []float32
	// Freq counts how many examples have referenced this feature; it informs
	// cache retention and compaction.
	Freq uint32
}

// NewValue returns a zero-initialized value of the given embedding dimension.
func NewValue(dim int) *Value {
	if dim < 0 {
		dim = 0
	}
	return &Value{
		Weights: make([]float32, dim),
		G2Sum:   make([]float32, dim),
	}
}

// NewRandomValue returns a value with small random initial weights, as used
// when a feature is seen for the first time during training.
func NewRandomValue(dim int, rng *rand.Rand) *Value {
	v := NewValue(dim)
	scale := float32(1.0 / math.Sqrt(float64(dim)+1))
	for i := range v.Weights {
		v.Weights[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// NewKeyedValue returns the deterministic initial value of a feature key
// under the given seed: the same (seed, key) pair always produces the same
// weights, regardless of the order in which keys are first encountered. A
// restarted or restored parameter server therefore re-initializes a key it
// never flushed exactly as the original process would have, which is what
// lets a resumed training run reproduce a straight one bit for bit.
func NewKeyedValue(dim int, seed int64, key uint64) *Value {
	// splitmix64-style finalizer so adjacent keys decorrelate before seeding.
	h := uint64(seed) ^ (key+1)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return NewRandomValue(dim, rand.New(rand.NewSource(int64(h))))
}

// Dim returns the embedding dimension.
func (v *Value) Dim() int { return len(v.Weights) }

// Clone returns a deep copy of the value.
func (v *Value) Clone() *Value {
	out := &Value{
		Weights: make([]float32, len(v.Weights)),
		G2Sum:   make([]float32, len(v.G2Sum)),
		Freq:    v.Freq,
	}
	copy(out.Weights, v.Weights)
	copy(out.G2Sum, v.G2Sum)
	return out
}

// Add accumulates other's weights and accumulators into v (used when merging
// parameter updates during all-reduce synchronization). The dimensions must
// match exactly: a mismatch means two tiers disagree about the model shape,
// and silently dropping or skipping elements would corrupt the parameter, so
// Add panics with context instead. Callers that ingest untrusted values (the
// cluster RPC server) contain the panic per request.
func (v *Value) Add(other *Value) {
	v.AddFlat(other.Weights, other.G2Sum, other.Freq)
}

// AddFlat is Add over raw weight/accumulator rows (the ValueBlock layout),
// with the same strict dimension contract.
func (v *Value) AddFlat(weights, g2sum []float32, freq uint32) {
	if len(weights) != len(v.Weights) || len(g2sum) != len(v.G2Sum) {
		panic(fmt.Sprintf("embedding: Add dimension mismatch: delta %d/%d into value %d/%d",
			len(weights), len(g2sum), len(v.Weights), len(v.G2Sum)))
	}
	// Reslicing to the delta's length lets the compiler drop the per-element
	// bounds checks in these hot loops (the guard above proved the lengths
	// match, but the prove pass cannot carry that through the field loads).
	vw := v.Weights[:len(weights)]
	for i, w := range weights {
		vw[i] += w
	}
	vg := v.G2Sum[:len(g2sum)]
	for i, g := range g2sum {
		vg[i] += g
	}
	v.Freq += freq
}

// EncodedSize returns the number of bytes Encode produces for a value of the
// given dimension: 4 bytes of dimension, 4 bytes of frequency, then two
// float32 arrays.
func EncodedSize(dim int) int {
	if dim < 0 {
		dim = 0
	}
	return 8 + 8*dim
}

// EncodedSizeOf returns the encoded size of v.
func (v *Value) EncodedSizeOf() int { return EncodedSize(v.Dim()) }

// Encode serializes v into buf and returns the number of bytes written.
// buf must have at least EncodedSize(v.Dim()) bytes; Encode panics otherwise.
func (v *Value) Encode(buf []byte) int {
	need := v.EncodedSizeOf()
	if len(buf) < need {
		panic(fmt.Sprintf("embedding: Encode buffer too small: %d < %d", len(buf), need))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(v.Dim()))
	binary.LittleEndian.PutUint32(buf[4:8], v.Freq)
	off := 8
	for _, w := range v.Weights {
		binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(w))
		off += 4
	}
	for _, g := range v.G2Sum {
		binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(g))
		off += 4
	}
	return off
}

// AppendEncode appends the encoding of v to dst and returns the extended slice.
func (v *Value) AppendEncode(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, v.EncodedSizeOf())...)
	v.Encode(dst[start:])
	return dst
}

// Decode parses a value from buf and returns it together with the number of
// bytes consumed. It returns an error if buf is truncated.
func Decode(buf []byte) (*Value, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("embedding: short header: %d bytes", len(buf))
	}
	dim := int(binary.LittleEndian.Uint32(buf[0:4]))
	freq := binary.LittleEndian.Uint32(buf[4:8])
	need := EncodedSize(dim)
	if len(buf) < need {
		return nil, 0, fmt.Errorf("embedding: short body: have %d bytes, need %d", len(buf), need)
	}
	v := NewValue(dim)
	v.Freq = freq
	off := 8
	for i := 0; i < dim; i++ {
		v.Weights[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	for i := 0; i < dim; i++ {
		v.G2Sum[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	return v, off, nil
}

// Table is a simple in-memory map from key to value. It is the building block
// for the MEM-PS cache backing store and for test fixtures; it is not safe
// for concurrent use.
type Table struct {
	Dim    int
	values map[uint64]*Value
}

// NewTable returns an empty table for embeddings of the given dimension.
func NewTable(dim int) *Table {
	return &Table{Dim: dim, values: make(map[uint64]*Value)}
}

// Get returns the value for key k, or nil if absent.
func (t *Table) Get(k uint64) *Value { return t.values[k] }

// GetOrCreate returns the value for k, creating a zero value if absent.
func (t *Table) GetOrCreate(k uint64) *Value {
	if v, ok := t.values[k]; ok {
		return v
	}
	v := NewValue(t.Dim)
	t.values[k] = v
	return v
}

// Put stores v under k, replacing any existing value.
func (t *Table) Put(k uint64, v *Value) { t.values[k] = v }

// Delete removes k.
func (t *Table) Delete(k uint64) { delete(t.values, k) }

// Len returns the number of stored values.
func (t *Table) Len() int { return len(t.values) }

// Keys returns all stored keys in unspecified order.
func (t *Table) Keys() []uint64 {
	out := make([]uint64, 0, len(t.values))
	for k := range t.values {
		out = append(out, k)
	}
	return out
}

// Range calls fn for every (key, value) pair until fn returns false.
func (t *Table) Range(fn func(k uint64, v *Value) bool) {
	for k, v := range t.values {
		if !fn(k, v) {
			return
		}
	}
}
