package embedding

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValue(t *testing.T) {
	v := NewValue(8)
	if v.Dim() != 8 || len(v.G2Sum) != 8 || v.Freq != 0 {
		t.Fatal("NewValue wrong shape")
	}
	neg := NewValue(-3)
	if neg.Dim() != 0 {
		t.Fatal("negative dim should clamp to 0")
	}
}

func TestNewRandomValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewRandomValue(16, rng)
	nonZero := 0
	for _, w := range v.Weights {
		if w != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("random value should have non-zero weights")
	}
	for _, g := range v.G2Sum {
		if g != 0 {
			t.Fatal("G2Sum should start at zero")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := NewValue(4)
	v.Weights[0] = 1
	v.Freq = 3
	c := v.Clone()
	c.Weights[0] = 9
	c.Freq = 7
	if v.Weights[0] != 1 || v.Freq != 3 {
		t.Fatal("Clone must not share state")
	}
}

func TestAdd(t *testing.T) {
	a := NewValue(3)
	b := NewValue(3)
	a.Weights = []float32{1, 2, 3}
	a.G2Sum = []float32{1, 1, 1}
	a.Freq = 2
	b.Weights = []float32{1, 1, 1}
	b.G2Sum = []float32{2, 2, 2}
	b.Freq = 5
	a.Add(b)
	if a.Weights[0] != 2 || a.Weights[2] != 4 {
		t.Fatalf("Add weights = %v", a.Weights)
	}
	if a.G2Sum[1] != 3 {
		t.Fatalf("Add g2sum = %v", a.G2Sum)
	}
	if a.Freq != 7 {
		t.Fatalf("Add freq = %d", a.Freq)
	}
}

// TestAddDimMismatchPanics pins the strict dimension contract: merging values
// of different dimensions means two tiers disagree about the model shape, and
// silently dropping elements (the old behaviour) corrupts the parameter. Both
// the too-short and too-long directions must panic, with enough context to
// identify the shapes.
func TestAddDimMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: dimension mismatch did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "dimension mismatch") {
				t.Fatalf("%s: panic %q carries no context", name, msg)
			}
		}()
		fn()
	}
	a := NewValue(3)
	mustPanic("short delta", func() { a.Add(NewValue(1)) })
	mustPanic("long delta", func() { a.Add(NewValue(5)) })
	mustPanic("flat row", func() { a.AddFlat(make([]float32, 3), make([]float32, 2), 1) })
	// Matching dims keep working.
	a.Add(NewValue(3))
	a.AddFlat(make([]float32, 3), make([]float32, 3), 1)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewRandomValue(8, rng)
	v.G2Sum[3] = 0.5
	v.Freq = 42
	buf := make([]byte, v.EncodedSizeOf())
	n := v.Encode(buf)
	if n != len(buf) || n != EncodedSize(8) {
		t.Fatalf("Encode wrote %d bytes, want %d", n, len(buf))
	}
	got, consumed, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != n {
		t.Fatalf("Decode consumed %d, want %d", consumed, n)
	}
	if got.Freq != 42 || got.Dim() != 8 {
		t.Fatal("Decode header mismatch")
	}
	for i := range v.Weights {
		if got.Weights[i] != v.Weights[i] || got.G2Sum[i] != v.G2Sum[i] {
			t.Fatal("Decode payload mismatch")
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(weights []float32, freq uint32) bool {
		if len(weights) > 64 {
			weights = weights[:64]
		}
		v := NewValue(len(weights))
		copy(v.Weights, weights)
		v.Freq = freq
		var buf []byte
		buf = v.AppendEncode(buf)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.Freq != freq || got.Dim() != len(weights) {
			return false
		}
		for i := range weights {
			// NaN != NaN, so compare bit patterns via equality of both being NaN.
			a, b := got.Weights[i], weights[i]
			if a != b && !(a != a && b != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should fail")
	}
	if _, _, err := Decode(make([]byte, 4)); err == nil {
		t.Fatal("Decode(short header) should fail")
	}
	v := NewValue(8)
	buf := make([]byte, v.EncodedSizeOf())
	v.Encode(buf)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("Decode(truncated body) should fail")
	}
}

func TestEncodePanicsOnSmallBuffer(t *testing.T) {
	v := NewValue(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Encode(make([]byte, 3))
}

func TestEncodedSize(t *testing.T) {
	if EncodedSize(0) != 8 {
		t.Fatalf("EncodedSize(0) = %d", EncodedSize(0))
	}
	if EncodedSize(8) != 8+64 {
		t.Fatalf("EncodedSize(8) = %d", EncodedSize(8))
	}
	if EncodedSize(-1) != 8 {
		t.Fatalf("EncodedSize(-1) = %d", EncodedSize(-1))
	}
}

func TestTable(t *testing.T) {
	tb := NewTable(4)
	if tb.Len() != 0 {
		t.Fatal("empty table")
	}
	if tb.Get(1) != nil {
		t.Fatal("Get on empty should be nil")
	}
	v := tb.GetOrCreate(1)
	if v == nil || tb.Len() != 1 {
		t.Fatal("GetOrCreate failed")
	}
	v.Weights[0] = 5
	if tb.Get(1).Weights[0] != 5 {
		t.Fatal("table must store pointer")
	}
	again := tb.GetOrCreate(1)
	if again != v {
		t.Fatal("GetOrCreate must return existing value")
	}
	tb.Put(2, NewValue(4))
	if len(tb.Keys()) != 2 {
		t.Fatal("Keys wrong length")
	}
	count := 0
	tb.Range(func(k uint64, v *Value) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatal("Range should visit all entries")
	}
	count = 0
	tb.Range(func(k uint64, v *Value) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatal("Range should stop when fn returns false")
	}
	tb.Delete(1)
	if tb.Len() != 1 || tb.Get(1) != nil {
		t.Fatal("Delete failed")
	}
}
