package hbmps

import (
	"math/rand"
	"testing"

	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/optimizer"
	"hps/internal/ps"
)

func benchHBM(b *testing.B, gpus int) *HBMPS {
	b.Helper()
	profile := hw.DefaultGPUNode()
	h, err := New(Config{
		NumGPUs:    gpus,
		Dim:        8,
		GPUProfile: profile.GPU,
		NVLink:     profile.NVLink,
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func benchWorkingSet(n int) map[keys.Key]*embedding.Value {
	rng := rand.New(rand.NewSource(1))
	out := make(map[keys.Key]*embedding.Value, n)
	for i := 0; i < n; i++ {
		out[keys.Key(keys.Mix64(uint64(i)))] = embedding.NewRandomValue(8, rng)
	}
	return out
}

// BenchmarkLoadWorkingSet measures partitioning and loading a batch working
// set into the per-GPU hash tables (Algorithm 1 lines 6-10) plus release.
func BenchmarkLoadWorkingSet(b *testing.B) {
	h := benchHBM(b, 4)
	ws := benchWorkingSet(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.LoadWorkingSet(ws); err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}

// BenchmarkPullPush measures one GPU worker's per-example hot path: pull the
// example's embeddings (local and NVLink-remote) and push the gradients back
// through the sparse optimizer.
func BenchmarkPullPush(b *testing.B) {
	h := benchHBM(b, 4)
	ws := benchWorkingSet(8192)
	if err := h.LoadWorkingSet(ws); err != nil {
		b.Fatal(err)
	}
	defer h.Release()
	all := make([]keys.Key, 0, len(ws))
	for k := range ws {
		all = append(all, k)
	}
	const nnz = 100
	feats := all[:nnz]
	grad := make([]float32, 8)
	grad[0] = 0.1
	opt := optimizer.Adagrad{LR: 0.05, InitialAccumulator: 0.1}
	grads := make(map[keys.Key][]float32, nnz)
	for _, k := range feats {
		grads[k] = grad
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Pull(ps.PullRequest{Shard: i % 4, Keys: feats}); err != nil {
			b.Fatal(err)
		}
		if err := h.PushGrads(i%4, grads, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollectSetup loads a working set of n keys and trains a quarter of
// them so a collect sees a realistic mix of changed and untouched rows.
func benchCollectSetup(b *testing.B, n int) *HBMPS {
	b.Helper()
	h := benchHBM(b, 4)
	ws := benchWorkingSet(n)
	if err := h.LoadWorkingSet(ws); err != nil {
		b.Fatal(err)
	}
	all := make([]keys.Key, 0, len(ws))
	for k := range ws {
		all = append(all, k)
	}
	grad := make([]float32, 8)
	grad[0] = 0.1
	opt := optimizer.Adagrad{LR: 0.05, InitialAccumulator: 0.1}
	grads := make(map[keys.Key][]float32, n/4)
	for _, k := range all[:n/4] {
		grads[k] = grad
	}
	if err := h.PushGrads(0, grads, opt); err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkCollectUpdates measures the map-building delta collection
// (Algorithm 1 line 16): one heap-allocated embedding.Value per working-set
// key, kept only for the changed ones. It is the pre-block baseline the
// batched BenchmarkCollectBlock replaces on the hot path.
func BenchmarkCollectUpdates(b *testing.B) {
	h := benchCollectSetup(b, 8192)
	defer h.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(h.CollectUpdates()); got == 0 {
			b.Fatal("no deltas collected")
		}
	}
}

// BenchmarkCollectBlock measures the block-native delta collection that
// replaces BenchmarkCollectUpdates on the hot path: changed-key deltas
// computed with the fused subtract-and-test kernel straight into a reused
// flat block — O(1) allocations once the block's slabs are warm.
func BenchmarkCollectBlock(b *testing.B) {
	h := benchCollectSetup(b, 8192)
	defer h.Release()
	blk := ps.NewValueBlock(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CollectBlock(blk)
		if blk.Len() == 0 {
			b.Fatal("no deltas collected")
		}
	}
}

// BenchmarkPullCommitBlock measures the batched replacement of the
// BenchmarkPullPush cycle: one block pull of the mini-batch's key set into a
// reused ValueBlock, the sparse optimizer applied to the block in place, and
// one block commit — what a GPU worker now does once per mini-batch instead
// of once per example.
func BenchmarkPullCommitBlock(b *testing.B) {
	h := benchHBM(b, 4)
	ws := benchWorkingSet(8192)
	if err := h.LoadWorkingSet(ws); err != nil {
		b.Fatal(err)
	}
	defer h.Release()
	all := make([]keys.Key, 0, len(ws))
	for k := range ws {
		all = append(all, k)
	}
	const nnz = 100
	feats := keys.Dedup(all[:nnz])
	grad := make([]float32, 8)
	grad[0] = 0.1
	opt := optimizer.Adagrad{LR: 0.05, InitialAccumulator: 0.1}
	work := ps.NewValueBlock(8)
	orig := ps.NewValueBlock(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu := i % 4
		if err := h.PullInto(ps.PullRequest{Shard: gpu, Keys: feats}, work); err != nil {
			b.Fatal(err)
		}
		orig.CopyFrom(work)
		for row := range feats {
			opt.ApplySparse(work.WeightsRow(row), work.G2Row(row), grad)
			work.Freq[row]++
		}
		if err := h.CommitBlock(gpu, orig, work); err != nil {
			b.Fatal(err)
		}
	}
}
