package hbmps_test

import (
	"testing"

	"hps/internal/embedding"
	"hps/internal/hbmps"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/optimizer"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
	"hps/internal/simtime"
)

// TestCollectAgrees is the conformance check for delta collection: the
// block-native CollectBlock and the map form CollectUpdates must report
// identical keys and bit-identical weight/accumulator/frequency deltas, and
// both must agree with an independent reference computed from the tier's own
// Pull — including the changed-key filter (untouched parameters absent,
// frequency-only changes present).
func TestCollectAgrees(t *testing.T) {
	const dim = 8
	const n = 96
	clock := simtime.NewClock()
	h, err := hbmps.New(hbmps.Config{
		NumGPUs:    2,
		Dim:        dim,
		GPUProfile: hw.DefaultGPUNode().GPU,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Load a sorted working-set block so collection order is deterministic.
	ks := make([]keys.Key, n)
	for i := range ks {
		ks[i] = keys.Key(i*3 + 1)
	}
	loadBlk := ps.NewValueBlock(dim)
	loadBlk.Reset(dim, ks)
	for i := range ks {
		v := embedding.NewValue(dim)
		for j := range v.Weights {
			v.Weights[j] = float32(i) + float32(j)*0.25
			v.G2Sum[j] = 0.1 * float32(j+1)
		}
		v.Freq = uint32(i)
		loadBlk.Set(i, v)
	}
	if err := h.LoadBlock(loadBlk); err != nil {
		t.Fatal(err)
	}
	orig := ps.NewValueBlock(dim)
	orig.CopyFrom(loadBlk)

	// Mutate a third of the keys through the optimizer, bump only the
	// frequency of another third, and leave the rest untouched.
	opt := optimizer.Adagrad{LR: 0.05, InitialAccumulator: 0.1}
	grad := make([]float32, dim)
	grad[0], grad[dim-1] = 0.5, -0.25
	grads := make(map[keys.Key][]float32)
	for i := 0; i < n/3; i++ {
		grads[ks[i]] = grad
	}
	if err := h.PushGrads(0, grads, opt); err != nil {
		t.Fatal(err)
	}
	freqOnly := make(map[keys.Key]*embedding.Value)
	for i := n / 3; i < 2*n/3; i++ {
		d := embedding.NewValue(dim) // zero weights/g2: frequency-only delta
		d.Freq = 2
		freqOnly[ks[i]] = d
	}
	if err := h.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: freqOnly}); err != nil {
		t.Fatal(err)
	}

	// Independent reference: current values straight from the tier, minus the
	// loaded ones, keeping only non-zero deltas.
	cur, err := h.Pull(ps.PullRequest{Shard: 0, Keys: ks})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[keys.Key]*embedding.Value)
	for i, k := range ks {
		d := embedding.NewValue(dim)
		changed := false
		for j := range d.Weights {
			d.Weights[j] = cur[k].Weights[j] - orig.WeightsRow(i)[j]
			d.G2Sum[j] = cur[k].G2Sum[j] - orig.G2Row(i)[j]
			if d.Weights[j] != 0 || d.G2Sum[j] != 0 {
				changed = true
			}
		}
		d.Freq = cur[k].Freq - orig.Freq[i]
		if changed || d.Freq != 0 {
			want[k] = d
		}
	}
	if len(want) != 2*(n/3) {
		t.Fatalf("reference expects %d changed keys, want %d", len(want), 2*(n/3))
	}

	blk := ps.NewValueBlock(dim)
	h.CollectBlock(blk)
	if blk.Len() != len(want) {
		t.Fatalf("CollectBlock returned %d rows, want %d", blk.Len(), len(want))
	}
	if !keys.SortedUnique(blk.Keys) {
		t.Fatalf("CollectBlock rows not in sorted working-set order: %v", blk.Keys)
	}
	for i, k := range blk.Keys {
		ref := want[k]
		if ref == nil {
			t.Fatalf("CollectBlock reported unchanged key %d", k)
		}
		if !blk.Present[i] {
			t.Fatalf("collected row %d (key %d) absent", i, k)
		}
		if blk.Freq[i] != ref.Freq {
			t.Fatalf("key %d freq delta = %d, want %d", k, blk.Freq[i], ref.Freq)
		}
		for j := range ref.Weights {
			if blk.WeightsRow(i)[j] != ref.Weights[j] || blk.G2Row(i)[j] != ref.G2Sum[j] {
				t.Fatalf("key %d delta row differs from reference at element %d", k, j)
			}
		}
	}

	deltas := h.CollectUpdates()
	if len(deltas) != len(want) {
		t.Fatalf("CollectUpdates returned %d deltas, want %d", len(deltas), len(want))
	}
	for k, ref := range want {
		d := deltas[k]
		if d == nil {
			t.Fatalf("CollectUpdates missing key %d", k)
		}
		if d.Freq != ref.Freq {
			t.Fatalf("key %d map freq delta = %d, want %d", k, d.Freq, ref.Freq)
		}
		for j := range ref.Weights {
			if d.Weights[j] != ref.Weights[j] || d.G2Sum[j] != ref.G2Sum[j] {
				t.Fatalf("key %d map delta differs from reference at element %d", k, j)
			}
		}
	}
}

// TestTierConformance runs the shared ps.Tier suite against the HBM-PS: the
// top tier, which only ever holds the loaded working set — pulling a key
// outside it is a bug, and deltas for absent keys are ignored because the
// authoritative copies live in the tiers below.
func TestTierConformance(t *testing.T) {
	const dim = 8
	conformance.Run(t, conformance.Harness{
		Dim:               dim,
		Shard:             0, // requests come from GPU 0's worker
		PullMissingErrors: true,
		Concurrent:        true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			h, err := hbmps.New(hbmps.Config{
				NumGPUs:    2,
				Dim:        dim,
				GPUProfile: hw.DefaultGPUNode().GPU,
				Clock:      simtime.NewClock(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ws := make(map[keys.Key]*embedding.Value, len(ks))
			for i, k := range ks {
				v := embedding.NewValue(dim)
				v.Weights[0] = float32(i + 1)
				ws[k] = v
			}
			if err := h.LoadWorkingSet(ws); err != nil {
				t.Fatal(err)
			}
			return h
		},
	})
}
