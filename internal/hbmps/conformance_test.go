package hbmps_test

import (
	"testing"

	"hps/internal/embedding"
	"hps/internal/hbmps"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
	"hps/internal/simtime"
)

// TestTierConformance runs the shared ps.Tier suite against the HBM-PS: the
// top tier, which only ever holds the loaded working set — pulling a key
// outside it is a bug, and deltas for absent keys are ignored because the
// authoritative copies live in the tiers below.
func TestTierConformance(t *testing.T) {
	const dim = 8
	conformance.Run(t, conformance.Harness{
		Dim:               dim,
		Shard:             0, // requests come from GPU 0's worker
		PullMissingErrors: true,
		Concurrent:        true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			h, err := hbmps.New(hbmps.Config{
				NumGPUs:    2,
				Dim:        dim,
				GPUProfile: hw.DefaultGPUNode().GPU,
				Clock:      simtime.NewClock(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ws := make(map[keys.Key]*embedding.Value, len(ks))
			for i, k := range ks {
				v := embedding.NewValue(dim)
				v.Weights[0] = float32(i + 1)
				ws[k] = v
			}
			if err := h.LoadWorkingSet(ws); err != nil {
				t.Fatal(err)
			}
			return h
		},
	})
}
