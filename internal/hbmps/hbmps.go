// Package hbmps implements the HBM parameter server (Section 4): the top tier
// of the hierarchy, which keeps the working parameters of the current batch
// in a multi-GPU distributed hash table and lets GPU worker threads pull,
// train on, and push updates to them without any CPU round trips.
//
// Within a node, parameters are partitioned across the GPUs by a hash
// partition policy; a worker that needs a parameter held by another GPU
// fetches it over NVLink (Algorithm 2's partition-and-send pattern). Across
// nodes, updates are synchronized by the hierarchical all-reduce of
// Appendix C.3, which the core trainer coordinates; this package exposes the
// per-node pieces (delta collection and remote-delta application).
package hbmps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hps/internal/embedding"
	"hps/internal/gpu"
	"hps/internal/hw"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/optimizer"
	"hps/internal/ps"
	"hps/internal/simtime"
)

// Config configures the HBM-PS of a single node.
type Config struct {
	// NodeID identifies the hosting node.
	NodeID int
	// NumGPUs is the number of GPUs in the node.
	NumGPUs int
	// Dim is the embedding dimension of sparse parameters.
	Dim int
	// GPUProfile describes each GPU.
	GPUProfile hw.GPU
	// NVLink describes the intra-node GPU interconnect; used for per-component
	// statistics. When zero it defaults to the reference GPU node's NVLink.
	NVLink hw.Link
	// Fabric charges NVLink/PCIe time; nil disables accounting.
	Fabric *interconnect.Fabric
	// Clock is the node's simulated-time clock; nil disables accounting.
	Clock *simtime.Clock
}

// Stats summarizes HBM-PS activity (the breakdown of Fig 4a).
type Stats struct {
	// BatchesLoaded counts LoadWorkingSet calls.
	BatchesLoaded int64
	// ParamsLoaded counts parameters inserted across all batches.
	ParamsLoaded int64
	// PullTime is the cumulative modelled time of HBM-PS pulls.
	PullTime time.Duration
	// PushTime is the cumulative modelled time of HBM-PS pushes.
	PushTime time.Duration
	// LoadTime is the cumulative modelled time of CPU->GPU working-set loads.
	LoadTime time.Duration
	// RemotePulls / LocalPulls count parameter fetches by location.
	LocalPulls, RemotePulls int64
}

// HBMPS is the HBM parameter server of one node. It is safe for concurrent
// use by the node's GPU worker goroutines. It implements ps.Tier: Pull and
// Push are sharded by GPU id, and Evict demotes keys out of HBM (their
// authoritative copies live in the MEM-PS below).
type HBMPS struct {
	cfg     Config
	devices []*gpu.Device
	rec     ps.Recorder

	mu       sync.Mutex
	loaded   bool
	original map[keys.Key]*embedding.Value
	stats    Stats
}

var _ ps.Tier = (*HBMPS)(nil)

// New constructs the HBM-PS for one node, creating its simulated GPU devices.
func New(cfg Config) (*HBMPS, error) {
	if cfg.NumGPUs < 1 {
		return nil, fmt.Errorf("hbmps: need at least one GPU, have %d", cfg.NumGPUs)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("hbmps: invalid embedding dim %d", cfg.Dim)
	}
	if cfg.NVLink.BandwidthBytesPerSec == 0 {
		cfg.NVLink = hw.DefaultGPUNode().NVLink
	}
	h := &HBMPS{cfg: cfg}
	for i := 0; i < cfg.NumGPUs; i++ {
		h.devices = append(h.devices, gpu.NewDevice(cfg.NodeID, i, cfg.GPUProfile, cfg.Clock))
	}
	return h, nil
}

// NumGPUs returns the number of GPUs managed by this HBM-PS.
func (h *HBMPS) NumGPUs() int { return len(h.devices) }

// Devices returns the simulated GPU devices (for HBM usage inspection).
func (h *HBMPS) Devices() []*gpu.Device { return h.devices }

// gpuOf returns the GPU that owns key k under the hash partition policy of
// Section 4.1 / Appendix C.1.
func (h *HBMPS) gpuOf(k keys.Key) int { return k.HashShard(len(h.devices)) }

// LoadWorkingSet partitions the working parameters across the node's GPUs in
// a non-overlapping fashion and inserts them into each GPU's hash table
// (Algorithm 1 lines 6-10). The values are copied; the caller keeps ownership
// of its map. Loading charges PCIe transfer and HBM insertion time, and fails
// if any GPU's HBM cannot hold its partition.
func (h *HBMPS) LoadWorkingSet(values map[keys.Key]*embedding.Value) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.loaded {
		return errors.New("hbmps: working set already loaded; call Release first")
	}

	// Partition keys across GPUs.
	parts := make([][]keys.Key, len(h.devices))
	for k := range values {
		g := h.gpuOf(k)
		parts[g] = append(parts[g], k)
	}

	loadStart := h.cfg.Clock.Total(simtime.ResourcePCIe) + h.cfg.Clock.Total(simtime.ResourceHBM)

	// Create per-GPU tables sized to their partitions and insert.
	for g, dev := range h.devices {
		capacity := len(parts[g])
		if capacity == 0 {
			capacity = 1
		}
		table, err := dev.CreateHashTable(capacity, h.cfg.Dim)
		if err != nil {
			// Roll back tables created so far.
			for _, d := range h.devices {
				d.DestroyHashTable()
			}
			return fmt.Errorf("hbmps: gpu %d cannot hold its partition of %d parameters: %w", g, capacity, err)
		}
		var bytes int64
		for _, k := range parts[g] {
			v := values[k].Clone()
			if err := table.Insert(k, v); err != nil {
				for _, d := range h.devices {
					d.DestroyHashTable()
				}
				return fmt.Errorf("hbmps: insert into gpu %d: %w", g, err)
			}
			bytes += int64(embedding.EncodedSize(h.cfg.Dim)) + 8
		}
		// The partition travels CPU -> GPU over PCIe and is written to HBM.
		if h.cfg.Fabric != nil {
			h.cfg.Fabric.PCIe(bytes)
		}
		dev.ChargeMemory(bytes)
	}

	// Snapshot originals for delta computation at batch completion.
	h.original = make(map[keys.Key]*embedding.Value, len(values))
	for k, v := range values {
		h.original[k] = v.Clone()
	}
	h.loaded = true
	h.stats.BatchesLoaded++
	h.stats.ParamsLoaded += int64(len(values))
	h.stats.LoadTime += h.cfg.Clock.Total(simtime.ResourcePCIe) + h.cfg.Clock.Total(simtime.ResourceHBM) - loadStart
	return nil
}

// Loaded reports whether a working set is currently resident.
func (h *HBMPS) Loaded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loaded
}

// Pull returns the current values of the requested keys for a worker running
// on GPU req.Shard (Algorithm 1 line 12). Keys owned by other GPUs are
// fetched over NVLink; the returned values are copies the worker may read
// freely. Unlike the lower tiers, every requested key must be resident: the
// working set was loaded for exactly this batch, so a miss is a bug.
func (h *HBMPS) Pull(req ps.PullRequest) (ps.Result, error) {
	gpuID := req.Shard
	if gpuID < 0 || gpuID >= len(h.devices) {
		return nil, fmt.Errorf("hbmps: invalid gpu id %d", gpuID)
	}
	out := make(ps.Result, len(req.Keys))
	var localBytes, remoteBytes int64
	var localCount, remoteCount int64
	valueBytes := int64(embedding.EncodedSize(h.cfg.Dim))
	for _, k := range req.Keys {
		owner := h.gpuOf(k)
		table := h.devices[owner].Table()
		if table == nil {
			return nil, fmt.Errorf("hbmps: gpu %d has no working set loaded", owner)
		}
		// Clone under the table's shard lock: concurrent workers update the
		// stored values in place.
		var snapshot *embedding.Value
		if !table.View(k, func(v *embedding.Value) { snapshot = v.Clone() }) {
			return nil, fmt.Errorf("hbmps: key %d not in the working set", k)
		}
		out[k] = snapshot
		if owner == gpuID {
			localBytes += valueBytes
			localCount++
		} else {
			remoteBytes += valueBytes
			remoteCount++
		}
	}
	// Local reads stream through HBM; remote reads cross NVLink.
	h.devices[gpuID].ChargeMemory(localBytes)
	if h.cfg.Fabric != nil && remoteBytes > 0 {
		h.cfg.Fabric.NVLink(remoteBytes)
	}
	pullTime := h.cfg.GPUProfile.MemoryTime(localBytes)
	if remoteBytes > 0 {
		pullTime += nvlinkTime(h.cfg, remoteBytes)
	}
	h.mu.Lock()
	h.stats.LocalPulls += localCount
	h.stats.RemotePulls += remoteCount
	h.mu.Unlock()
	h.rec.RecordPull(len(req.Keys), pullTime)
	return out, nil
}

// nvlinkTime mirrors what the fabric charges for an NVLink hop, for
// per-component statistics without double charging the clock.
func nvlinkTime(cfg Config, bytes int64) time.Duration {
	return cfg.NVLink.TransferTime(bytes)
}

// PushGrads applies per-parameter gradients produced by a worker on gpuID
// (Algorithm 1 line 14, Algorithm 2). Gradients for parameters owned by other
// GPUs are sent over NVLink; every owning GPU applies the sparse optimizer to
// its entry under its own lock (the analogue of the GPU atomic update).
func (h *HBMPS) PushGrads(gpuID int, grads map[keys.Key][]float32, opt optimizer.Sparse) error {
	if gpuID < 0 || gpuID >= len(h.devices) {
		return fmt.Errorf("hbmps: invalid gpu id %d", gpuID)
	}
	if opt == nil {
		return errors.New("hbmps: nil sparse optimizer")
	}
	var localBytes, remoteBytes int64
	valueBytes := int64(4 * h.cfg.Dim)
	for k, grad := range grads {
		owner := h.gpuOf(k)
		table := h.devices[owner].Table()
		if table == nil {
			return fmt.Errorf("hbmps: gpu %d has no working set loaded", owner)
		}
		err := table.Update(k, func(v *embedding.Value) {
			opt.ApplySparse(v.Weights, v.G2Sum, grad)
			v.Freq++
		})
		if err != nil {
			return fmt.Errorf("hbmps: push key %d: %w", k, err)
		}
		if owner == gpuID {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
	}
	h.devices[gpuID].ChargeMemory(localBytes)
	if h.cfg.Fabric != nil && remoteBytes > 0 {
		h.cfg.Fabric.NVLink(remoteBytes)
	}
	pushTime := h.cfg.GPUProfile.MemoryTime(localBytes)
	if remoteBytes > 0 {
		pushTime += nvlinkTime(h.cfg, remoteBytes)
	}
	h.rec.RecordPush(len(grads), pushTime)
	return nil
}

// Push implements ps.Tier: it merges per-key value deltas (weight,
// optimizer-state and reference-count increments) into the resident working
// set. Deltas for keys not resident are ignored — this tier only ever holds
// the current batch's partitions; their authoritative copies live below.
// When req.Shard names a GPU, deltas for keys owned by other GPUs are charged
// as NVLink traffic; with ps.NoShard (deltas arriving via the inter-node
// synchronization, whose transfer time the coordinator charges) no fabric
// time is charged.
func (h *HBMPS) Push(req ps.PushRequest) error {
	if req.Shard != ps.NoShard && (req.Shard < 0 || req.Shard >= len(h.devices)) {
		return fmt.Errorf("hbmps: invalid gpu id %d", req.Shard)
	}
	var localBytes, remoteBytes int64
	valueBytes := int64(embedding.EncodedSize(h.cfg.Dim))
	applied := ps.ApplyDeltas(req.Deltas, func(k keys.Key, delta *embedding.Value) bool {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			return false
		}
		if err := table.Update(k, func(v *embedding.Value) { v.Add(delta) }); err != nil {
			return false
		}
		if owner := h.gpuOf(k); req.Shard == ps.NoShard || owner == req.Shard {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
		return true
	})
	var pushTime time.Duration
	if req.Shard != ps.NoShard {
		h.devices[req.Shard].ChargeMemory(localBytes)
		if h.cfg.Fabric != nil && remoteBytes > 0 {
			h.cfg.Fabric.NVLink(remoteBytes)
		}
		pushTime = h.cfg.GPUProfile.MemoryTime(localBytes)
		if remoteBytes > 0 {
			pushTime += nvlinkTime(h.cfg, remoteBytes)
		}
	}
	h.rec.RecordPush(applied, pushTime)
	return nil
}

// CollectUpdates returns, for every parameter of the working set, the delta
// between its current value in the GPU hash tables and its value when the
// working set was loaded (Algorithm 1 line 16). The deltas are what the
// inter-node synchronization exchanges and what the MEM-PS applies to the
// authoritative copies.
func (h *HBMPS) CollectUpdates() map[keys.Key]*embedding.Value {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[keys.Key]*embedding.Value, len(h.original))
	for k, orig := range h.original {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			continue
		}
		delta := embedding.NewValue(h.cfg.Dim)
		changed := false
		// Read under the table's shard lock in case workers are still
		// pushing updates.
		ok := table.View(k, func(cur *embedding.Value) {
			for i := range delta.Weights {
				delta.Weights[i] = cur.Weights[i] - orig.Weights[i]
				if delta.Weights[i] != 0 {
					changed = true
				}
				delta.G2Sum[i] = cur.G2Sum[i] - orig.G2Sum[i]
				if delta.G2Sum[i] != 0 {
					changed = true
				}
			}
			delta.Freq = cur.Freq - orig.Freq
		})
		if ok && (changed || delta.Freq != 0) {
			out[k] = delta
		}
	}
	return out
}

// ApplyRemoteDeltas merges deltas received from other nodes into the local
// GPU hash tables for the parameters this node also holds in its working set
// — the effect of the inter-node all-reduce on shared parameters.
func (h *HBMPS) ApplyRemoteDeltas(deltas map[keys.Key]*embedding.Value) {
	_ = h.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: deltas})
}

// Name implements ps.Tier.
func (h *HBMPS) Name() string { return "hbm-ps" }

// TierStats implements ps.Tier.
func (h *HBMPS) TierStats() ps.Stats { return h.rec.TierStats() }

// Evict implements ps.Tier: it demotes keys out of HBM, freeing their slots
// for the rest of the batch. A nil slice releases the entire working set
// (the end-of-batch demotion of Algorithm 1 line 17; the caller is expected
// to have collected the deltas first). Evicted values are dropped — the
// MEM-PS below holds the authoritative copies.
func (h *HBMPS) Evict(ks []keys.Key) (int, error) {
	if ks == nil {
		n := h.WorkingSetSize()
		h.Release()
		h.rec.RecordEvict(n)
		return n, nil
	}
	n := 0
	for _, k := range ks {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			continue
		}
		if table.Delete(k) {
			n++
		}
	}
	h.rec.RecordEvict(n)
	return n, nil
}

// Release destroys the per-GPU hash tables and clears the working-set
// snapshot, freeing the HBM for the next batch.
func (h *HBMPS) Release() {
	h.mu.Lock()
	h.original = nil
	h.loaded = false
	h.mu.Unlock()
	for _, d := range h.devices {
		d.DestroyHashTable()
	}
}

// WorkingSetSize returns the number of parameters currently resident across
// all GPUs.
func (h *HBMPS) WorkingSetSize() int {
	total := 0
	for _, d := range h.devices {
		if t := d.Table(); t != nil {
			total += t.Len()
		}
	}
	return total
}

// Stats returns cumulative HBM-PS statistics. The pull/push durations are
// served from the uniform tier recorder (the single source of truth) so the
// hot path maintains them only once.
func (h *HBMPS) Stats() Stats {
	rec := h.rec.TierStats()
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.PullTime = rec.PullTime
	st.PushTime = rec.PushTime
	return st
}
