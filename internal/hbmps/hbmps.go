// Package hbmps implements the HBM parameter server (Section 4): the top tier
// of the hierarchy, which keeps the working parameters of the current batch
// in a multi-GPU distributed hash table and lets GPU worker threads pull,
// train on, and push updates to them without any CPU round trips.
//
// Within a node, parameters are partitioned across the GPUs by a hash
// partition policy; a worker that needs a parameter held by another GPU
// fetches it over NVLink (Algorithm 2's partition-and-send pattern). Across
// nodes, updates are synchronized by the hierarchical all-reduce of
// Appendix C.3, which the core trainer coordinates; this package exposes the
// per-node pieces (delta collection and remote-delta application).
//
// The hot path is batched: workers pull a whole mini-batch's unique keys at
// once with PullInto, train against the flat block, and write the result back
// with one CommitBlock — the per-example Pull/PushGrads pair remains as the
// reference path. Working-set storage is slab-backed and recycled across
// batches (value arena + reusable GPU hash tables), so steady-state loads
// allocate almost nothing.
package hbmps

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"hps/internal/embedding"
	"hps/internal/gpu"
	"hps/internal/hw"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/optimizer"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/tensor"
)

// Config configures the HBM-PS of a single node.
type Config struct {
	// NodeID identifies the hosting node.
	NodeID int
	// NumGPUs is the number of GPUs in the node.
	NumGPUs int
	// Dim is the embedding dimension of sparse parameters.
	Dim int
	// GPUProfile describes each GPU.
	GPUProfile hw.GPU
	// NVLink describes the intra-node GPU interconnect; used for per-component
	// statistics. When zero it defaults to the reference GPU node's NVLink.
	NVLink hw.Link
	// Fabric charges NVLink/PCIe time; nil disables accounting.
	Fabric *interconnect.Fabric
	// Clock is the node's simulated-time clock; nil disables accounting.
	Clock *simtime.Clock
}

// Stats summarizes HBM-PS activity (the breakdown of Fig 4a).
type Stats struct {
	// BatchesLoaded counts LoadWorkingSet calls.
	BatchesLoaded int64
	// ParamsLoaded counts parameters inserted across all batches.
	ParamsLoaded int64
	// PullTime is the cumulative modelled time of HBM-PS pulls.
	PullTime time.Duration
	// PushTime is the cumulative modelled time of HBM-PS pushes.
	PushTime time.Duration
	// LoadTime is the cumulative modelled time of CPU->GPU working-set loads.
	LoadTime time.Duration
	// RemotePulls / LocalPulls count parameter fetches by location.
	LocalPulls, RemotePulls int64
}

// valueArena is the slab storage backing one batch's working-set values: the
// table entries are embedding.Values whose Weights/G2Sum slices point into
// two contiguous float slabs. The arena is reused across batches, so loading
// a working set allocates nothing once the slabs have grown to the steady
// batch size.
type valueArena struct {
	weights []float32
	g2      []float32
	vals    []embedding.Value
}

func (a *valueArena) reset(n, dim int) {
	flat := n * dim
	if cap(a.weights) < flat {
		a.weights = make([]float32, flat)
		a.g2 = make([]float32, flat)
	} else {
		a.weights = a.weights[:flat]
		a.g2 = a.g2[:flat]
	}
	if cap(a.vals) < n {
		a.vals = make([]embedding.Value, n)
	} else {
		a.vals = a.vals[:n]
	}
}

// value binds arena slot i to a copy of (w, g2, freq) and returns it.
func (a *valueArena) value(i, dim int, w, g2 []float32, freq uint32) *embedding.Value {
	v := &a.vals[i]
	v.Weights = a.weights[i*dim : (i+1)*dim : (i+1)*dim]
	v.G2Sum = a.g2[i*dim : (i+1)*dim : (i+1)*dim]
	copy(v.Weights, w)
	copy(v.G2Sum, g2)
	v.Freq = freq
	return v
}

// HBMPS is the HBM parameter server of one node. It is safe for concurrent
// use by the node's GPU worker goroutines. It implements ps.Tier (plus the
// ps.BlockPuller / ps.BlockPusher batched extensions): Pull and Push are
// sharded by GPU id, and Evict demotes keys out of HBM (their authoritative
// copies live in the MEM-PS below).
type HBMPS struct {
	cfg     Config
	devices []*gpu.Device
	rec     ps.Recorder

	mu     sync.Mutex
	loaded bool
	// arena backs the values resident in the GPU tables; origSet snapshots
	// the loaded values (flat, same row order as arena slots) for delta
	// computation at batch completion. Both are recycled across batches.
	arena   valueArena
	origSet ps.ValueBlock
	parts   [][]int32
	keyBuf  []keys.Key
	stats   Stats

	// Staged GPU partition computed by StagePartition while the pull stage is
	// still fetching values. Guarded by its own lock, not h.mu: with pipelining,
	// the pull stage of batch j+1 stages its partition while the train stage of
	// batch j still holds h.mu inside LoadBlock.
	stageMu     sync.Mutex
	stagedKeys  []keys.Key
	stagedParts [][]int32
}

var (
	_ ps.Tier        = (*HBMPS)(nil)
	_ ps.BlockPuller = (*HBMPS)(nil)
	_ ps.BlockPusher = (*HBMPS)(nil)
)

// New constructs the HBM-PS for one node, creating its simulated GPU devices.
func New(cfg Config) (*HBMPS, error) {
	if cfg.NumGPUs < 1 {
		return nil, fmt.Errorf("hbmps: need at least one GPU, have %d", cfg.NumGPUs)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("hbmps: invalid embedding dim %d", cfg.Dim)
	}
	if cfg.NVLink.BandwidthBytesPerSec == 0 {
		cfg.NVLink = hw.DefaultGPUNode().NVLink
	}
	h := &HBMPS{cfg: cfg}
	for i := 0; i < cfg.NumGPUs; i++ {
		h.devices = append(h.devices, gpu.NewDevice(cfg.NodeID, i, cfg.GPUProfile, cfg.Clock))
	}
	return h, nil
}

// NumGPUs returns the number of GPUs managed by this HBM-PS.
func (h *HBMPS) NumGPUs() int { return len(h.devices) }

// Devices returns the simulated GPU devices (for HBM usage inspection).
func (h *HBMPS) Devices() []*gpu.Device { return h.devices }

// gpuOf returns the GPU that owns key k under the hash partition policy of
// Section 4.1 / Appendix C.1.
func (h *HBMPS) gpuOf(k keys.Key) int { return k.HashShard(len(h.devices)) }

// LoadWorkingSet partitions the working parameters across the node's GPUs in
// a non-overlapping fashion and inserts them into each GPU's hash table
// (Algorithm 1 lines 6-10). The values are copied; the caller keeps ownership
// of its map. Loading charges PCIe transfer and HBM insertion time, and fails
// if any GPU's HBM cannot hold its partition.
func (h *HBMPS) LoadWorkingSet(values map[keys.Key]*embedding.Value) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	ks := h.keyBuf[:0]
	for k := range values {
		ks = append(ks, k)
	}
	h.keyBuf = ks
	return h.loadLocked(ks, func(i int) ([]float32, []float32, uint32) {
		v := values[ks[i]]
		return v.Weights, v.G2Sum, v.Freq
	})
}

// LoadBlock is LoadWorkingSet over a flat ValueBlock — the batched form the
// trainer feeds straight from the MEM-PS block pull, with no intermediate
// map. Every row must be present.
func (h *HBMPS) LoadBlock(blk *ps.ValueBlock) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range blk.Keys {
		if !blk.Present[i] {
			return fmt.Errorf("hbmps: working-set block row %d (key %d) is absent", i, blk.Keys[i])
		}
	}
	return h.loadLocked(blk.Keys, func(i int) ([]float32, []float32, uint32) {
		return blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i]
	})
}

// loadLocked is the shared working-set loader: ks are the keys and row(i)
// yields key i's value. The caller must hold h.mu.
func (h *HBMPS) loadLocked(ks []keys.Key, row func(i int) ([]float32, []float32, uint32)) error {
	if h.loaded {
		return errors.New("hbmps: working set already loaded; call Release first")
	}
	dim := h.cfg.Dim

	// Partition key indices across GPUs (buffers recycled across batches). If
	// StagePartition already bucketed exactly this key sequence during the pull
	// stage, adopt its buckets instead of re-partitioning.
	if !h.adoptStagedPartition(ks) {
		if len(h.parts) != len(h.devices) {
			h.parts = make([][]int32, len(h.devices))
		}
		for g := range h.parts {
			h.parts[g] = h.parts[g][:0]
		}
		for i, k := range ks {
			g := h.gpuOf(k)
			h.parts[g] = append(h.parts[g], int32(i))
		}
	}

	loadStart := h.cfg.Clock.Total(simtime.ResourcePCIe) + h.cfg.Clock.Total(simtime.ResourceHBM)
	h.arena.reset(len(ks), dim)

	rollback := func() {
		for _, d := range h.devices {
			d.DestroyHashTable()
		}
	}
	// Create (or recycle) per-GPU tables sized to their partitions and insert.
	for g, dev := range h.devices {
		capacity := len(h.parts[g])
		if capacity == 0 {
			capacity = 1
		}
		table, err := dev.CreateHashTable(capacity, dim)
		if err != nil {
			rollback()
			return fmt.Errorf("hbmps: gpu %d cannot hold its partition of %d parameters: %w", g, capacity, err)
		}
		var bytes int64
		for _, i := range h.parts[g] {
			w, g2, freq := row(int(i))
			if len(w) != dim || len(g2) != dim {
				rollback()
				return fmt.Errorf("hbmps: key %d has dim %d/%d, want %d", ks[i], len(w), len(g2), dim)
			}
			v := h.arena.value(int(i), dim, w, g2, freq)
			if err := table.Insert(ks[i], v); err != nil {
				rollback()
				return fmt.Errorf("hbmps: insert into gpu %d: %w", g, err)
			}
			bytes += int64(embedding.EncodedSize(dim)) + 8
		}
		// The partition travels CPU -> GPU over PCIe and is written to HBM.
		if h.cfg.Fabric != nil {
			h.cfg.Fabric.PCIe(bytes)
		}
		dev.ChargeMemory(bytes)
	}

	// Snapshot originals for delta computation at batch completion: a flat
	// copy of the arena slabs, row-parallel to ks.
	h.origSet.Reset(dim, ks)
	copy(h.origSet.Weights, h.arena.weights)
	copy(h.origSet.G2Sum, h.arena.g2)
	for i := range ks {
		h.origSet.Freq[i] = h.arena.vals[i].Freq
		h.origSet.Present[i] = true
	}
	h.loaded = true
	h.stats.BatchesLoaded++
	h.stats.ParamsLoaded += int64(len(ks))
	h.stats.LoadTime += h.cfg.Clock.Total(simtime.ResourcePCIe) + h.cfg.Clock.Total(simtime.ResourceHBM) - loadStart
	return nil
}

// StagePartition buckets the given keys by owning GPU ahead of the LoadBlock
// that will load them, so the partitioning runs concurrently with the network
// pull of the values instead of serially after it. The keys are copied; a
// later LoadBlock/LoadWorkingSet whose key sequence matches exactly adopts the
// staged buckets, any other load ignores them. Safe to call while a previous
// batch is still resident or training.
func (h *HBMPS) StagePartition(ks []keys.Key) {
	h.stageMu.Lock()
	defer h.stageMu.Unlock()
	h.stagedKeys = append(h.stagedKeys[:0], ks...)
	if len(h.stagedParts) != len(h.devices) {
		h.stagedParts = make([][]int32, len(h.devices))
	}
	for g := range h.stagedParts {
		h.stagedParts[g] = h.stagedParts[g][:0]
	}
	for i, k := range ks {
		g := h.gpuOf(k)
		h.stagedParts[g] = append(h.stagedParts[g], int32(i))
	}
}

// adoptStagedPartition swaps the staged buckets into h.parts when they were
// computed for exactly the key sequence now being loaded. Caller holds h.mu.
func (h *HBMPS) adoptStagedPartition(ks []keys.Key) bool {
	h.stageMu.Lock()
	defer h.stageMu.Unlock()
	if len(h.stagedParts) != len(h.devices) || !slices.Equal(h.stagedKeys, ks) {
		return false
	}
	h.parts, h.stagedParts = h.stagedParts, h.parts
	h.stagedKeys = h.stagedKeys[:0]
	if len(h.stagedParts) != len(h.devices) {
		h.stagedParts = make([][]int32, len(h.devices))
	}
	return true
}

// Loaded reports whether a working set is currently resident.
func (h *HBMPS) Loaded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loaded
}

// Pull returns the current values of the requested keys for a worker running
// on GPU req.Shard (Algorithm 1 line 12). Keys owned by other GPUs are
// fetched over NVLink; the returned values are copies the worker may read
// freely. Unlike the lower tiers, every requested key must be resident: the
// working set was loaded for exactly this batch, so a miss is a bug.
func (h *HBMPS) Pull(req ps.PullRequest) (ps.Result, error) {
	out := make(ps.Result, len(req.Keys))
	err := h.pull(req, func(i int, k keys.Key, v *embedding.Value) {
		out[k] = v.Clone()
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PullInto implements ps.BlockPuller: one batched pull of a worker's
// mini-batch key set into a caller-owned flat block, in request-key order,
// with no per-value allocation. The accounting is identical to Pull's.
func (h *HBMPS) PullInto(req ps.PullRequest, dst *ps.ValueBlock) error {
	dst.Reset(h.cfg.Dim, req.Keys)
	return h.pull(req, func(i int, k keys.Key, v *embedding.Value) {
		copy(dst.WeightsRow(i), v.Weights)
		copy(dst.G2Row(i), v.G2Sum)
		dst.Freq[i] = v.Freq
		dst.Present[i] = true
	})
}

// pullScratch is the pooled per-call grouping scratch of pull: the request
// keys and their original indices, partitioned by owning GPU. Pull runs
// concurrently on every worker goroutine, so the scratch is pooled rather
// than stored on the HBMPS.
type pullScratch struct {
	keys [][]keys.Key
	idx  [][]int32
}

var pullScratchPool = sync.Pool{New: func() any { return new(pullScratch) }}

// pull is the shared read path behind Pull and PullInto: visit copies each
// requested value (under its table's shard lock) into the caller's
// representation. The request is grouped by owning GPU and served with one
// batched gather per device — each hash-table shard's lock is taken once per
// mini-batch instead of once per key.
func (h *HBMPS) pull(req ps.PullRequest, visit func(i int, k keys.Key, v *embedding.Value)) error {
	gpuID := req.Shard
	if gpuID < 0 || gpuID >= len(h.devices) {
		return fmt.Errorf("hbmps: invalid gpu id %d", gpuID)
	}
	sc := pullScratchPool.Get().(*pullScratch)
	defer pullScratchPool.Put(sc)
	if len(sc.keys) < len(h.devices) {
		sc.keys = make([][]keys.Key, len(h.devices))
		sc.idx = make([][]int32, len(h.devices))
	}
	for g := range h.devices {
		sc.keys[g] = sc.keys[g][:0]
		sc.idx[g] = sc.idx[g][:0]
	}
	for i, k := range req.Keys {
		g := h.gpuOf(k)
		sc.keys[g] = append(sc.keys[g], k)
		sc.idx[g] = append(sc.idx[g], int32(i))
	}
	var localBytes, remoteBytes int64
	var localCount, remoteCount int64
	valueBytes := int64(embedding.EncodedSize(h.cfg.Dim))
	for owner := range h.devices {
		sub := sc.keys[owner]
		if len(sub) == 0 {
			continue
		}
		table := h.devices[owner].Table()
		if table == nil {
			return fmt.Errorf("hbmps: gpu %d has no working set loaded", owner)
		}
		origIdx := sc.idx[owner]
		missing, ok := table.GatherBatch(sub, func(j int, v *embedding.Value) {
			visit(int(origIdx[j]), sub[j], v)
		})
		if !ok {
			return fmt.Errorf("hbmps: key %d not in the working set", missing)
		}
		n := int64(len(sub))
		if owner == gpuID {
			localBytes += n * valueBytes
			localCount += n
		} else {
			remoteBytes += n * valueBytes
			remoteCount += n
		}
	}
	// Local reads stream through HBM; remote reads cross NVLink.
	h.devices[gpuID].ChargeMemory(localBytes)
	if h.cfg.Fabric != nil && remoteBytes > 0 {
		h.cfg.Fabric.NVLink(remoteBytes)
	}
	pullTime := h.cfg.GPUProfile.MemoryTime(localBytes)
	if remoteBytes > 0 {
		pullTime += nvlinkTime(h.cfg, remoteBytes)
	}
	h.mu.Lock()
	h.stats.LocalPulls += localCount
	h.stats.RemotePulls += remoteCount
	h.mu.Unlock()
	h.rec.RecordPull(len(req.Keys), pullTime)
	return nil
}

// nvlinkTime mirrors what the fabric charges for an NVLink hop, for
// per-component statistics without double charging the clock.
func nvlinkTime(cfg Config, bytes int64) time.Duration {
	return cfg.NVLink.TransferTime(bytes)
}

// PushGrads applies per-parameter gradients produced by a worker on gpuID
// (Algorithm 1 line 14, Algorithm 2). Gradients for parameters owned by other
// GPUs are sent over NVLink; every owning GPU applies the sparse optimizer to
// its entry under its own lock (the analogue of the GPU atomic update).
func (h *HBMPS) PushGrads(gpuID int, grads map[keys.Key][]float32, opt optimizer.Sparse) error {
	if gpuID < 0 || gpuID >= len(h.devices) {
		return fmt.Errorf("hbmps: invalid gpu id %d", gpuID)
	}
	if opt == nil {
		return errors.New("hbmps: nil sparse optimizer")
	}
	var localBytes, remoteBytes int64
	valueBytes := int64(4 * h.cfg.Dim)
	for k, grad := range grads {
		owner := h.gpuOf(k)
		table := h.devices[owner].Table()
		if table == nil {
			return fmt.Errorf("hbmps: gpu %d has no working set loaded", owner)
		}
		err := table.Update(k, func(v *embedding.Value) {
			opt.ApplySparse(v.Weights, v.G2Sum, grad)
			v.Freq++
		})
		if err != nil {
			return fmt.Errorf("hbmps: push key %d: %w", k, err)
		}
		if owner == gpuID {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
	}
	h.devices[gpuID].ChargeMemory(localBytes)
	if h.cfg.Fabric != nil && remoteBytes > 0 {
		h.cfg.Fabric.NVLink(remoteBytes)
	}
	pushTime := h.cfg.GPUProfile.MemoryTime(localBytes)
	if remoteBytes > 0 {
		pushTime += nvlinkTime(h.cfg, remoteBytes)
	}
	h.rec.RecordPush(len(grads), pushTime)
	return nil
}

// CommitBlock writes back one GPU worker's trained mini-batch: orig is the
// block PullInto filled at batch start and final the same block after the
// worker applied the sparse optimizer example by example. Each stored value
// becomes final + (stored - orig) — exactly final when no other worker
// touched the key (stored == orig bit-for-bit, so the correction term is an
// exact zero), and the base value plus both workers' contributions when
// example shards share hot keys within a batch. One CommitBlock replaces the
// per-example PushGrads calls of the mini-batch.
func (h *HBMPS) CommitBlock(gpuID int, orig, final *ps.ValueBlock) error {
	if gpuID < 0 || gpuID >= len(h.devices) {
		return fmt.Errorf("hbmps: invalid gpu id %d", gpuID)
	}
	if orig.Dim != h.cfg.Dim || final.Dim != h.cfg.Dim || len(orig.Keys) != len(final.Keys) {
		return fmt.Errorf("hbmps: commit blocks disagree: orig %dx%d vs final %dx%d (want dim %d)",
			len(orig.Keys), orig.Dim, len(final.Keys), final.Dim, h.cfg.Dim)
	}
	var localBytes, remoteBytes int64
	valueBytes := int64(8 * h.cfg.Dim) // weights and accumulators move back
	for i, k := range final.Keys {
		owner := h.gpuOf(k)
		table := h.devices[owner].Table()
		if table == nil {
			return fmt.Errorf("hbmps: gpu %d has no working set loaded", owner)
		}
		ow, og := orig.WeightsRow(i), orig.G2Row(i)
		fw, fg := final.WeightsRow(i), final.G2Row(i)
		freqDelta := final.Freq[i] - orig.Freq[i]
		err := table.Update(k, func(v *embedding.Value) {
			for j := range v.Weights {
				v.Weights[j] = fw[j] + (v.Weights[j] - ow[j])
			}
			for j := range v.G2Sum {
				v.G2Sum[j] = fg[j] + (v.G2Sum[j] - og[j])
			}
			v.Freq += freqDelta
		})
		if err != nil {
			return fmt.Errorf("hbmps: commit key %d: %w", k, err)
		}
		if owner == gpuID {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
	}
	h.devices[gpuID].ChargeMemory(localBytes)
	if h.cfg.Fabric != nil && remoteBytes > 0 {
		h.cfg.Fabric.NVLink(remoteBytes)
	}
	pushTime := h.cfg.GPUProfile.MemoryTime(localBytes)
	if remoteBytes > 0 {
		pushTime += nvlinkTime(h.cfg, remoteBytes)
	}
	h.rec.RecordPush(len(final.Keys), pushTime)
	return nil
}

// Push implements ps.Tier: it merges per-key value deltas (weight,
// optimizer-state and reference-count increments) into the resident working
// set. Deltas for keys not resident are ignored — this tier only ever holds
// the current batch's partitions; their authoritative copies live below.
// When req.Shard names a GPU, deltas for keys owned by other GPUs are charged
// as NVLink traffic; with ps.NoShard (deltas arriving via the inter-node
// synchronization, whose transfer time the coordinator charges) no fabric
// time is charged.
func (h *HBMPS) Push(req ps.PushRequest) error {
	if req.Shard != ps.NoShard && (req.Shard < 0 || req.Shard >= len(h.devices)) {
		return fmt.Errorf("hbmps: invalid gpu id %d", req.Shard)
	}
	var localBytes, remoteBytes int64
	valueBytes := int64(embedding.EncodedSize(h.cfg.Dim))
	applied := ps.ApplyDeltas(req.Deltas, func(k keys.Key, delta *embedding.Value) bool {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			return false
		}
		if err := table.Update(k, func(v *embedding.Value) { v.Add(delta) }); err != nil {
			return false
		}
		if owner := h.gpuOf(k); req.Shard == ps.NoShard || owner == req.Shard {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
		return true
	})
	h.recordPushTraffic(req.Shard, applied, localBytes, remoteBytes)
	return nil
}

// PushBlock implements ps.BlockPusher with Push's semantics over the block's
// parallel key/delta rows, applied in row order (callers keep rows sorted for
// deterministic storage effects).
func (h *HBMPS) PushBlock(req ps.PushBlockRequest) error {
	if req.Shard != ps.NoShard && (req.Shard < 0 || req.Shard >= len(h.devices)) {
		return fmt.Errorf("hbmps: invalid gpu id %d", req.Shard)
	}
	blk := req.Block
	var localBytes, remoteBytes int64
	valueBytes := int64(embedding.EncodedSize(h.cfg.Dim))
	applied := 0
	for i, k := range blk.Keys {
		if !blk.Present[i] {
			continue
		}
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			continue
		}
		w, g2, freq := blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i]
		if table.Update(k, func(v *embedding.Value) { v.AddFlat(w, g2, freq) }) != nil {
			continue
		}
		applied++
		if owner := h.gpuOf(k); req.Shard == ps.NoShard || owner == req.Shard {
			localBytes += valueBytes
		} else {
			remoteBytes += valueBytes
		}
	}
	h.recordPushTraffic(req.Shard, applied, localBytes, remoteBytes)
	return nil
}

// recordPushTraffic charges the fabric/memory cost of a tier push and records
// it in the uniform statistics (shared by Push and PushBlock).
func (h *HBMPS) recordPushTraffic(shard, applied int, localBytes, remoteBytes int64) {
	var pushTime time.Duration
	if shard != ps.NoShard {
		h.devices[shard].ChargeMemory(localBytes)
		if h.cfg.Fabric != nil && remoteBytes > 0 {
			h.cfg.Fabric.NVLink(remoteBytes)
		}
		pushTime = h.cfg.GPUProfile.MemoryTime(localBytes)
		if remoteBytes > 0 {
			pushTime += nvlinkTime(h.cfg, remoteBytes)
		}
	}
	h.rec.RecordPush(applied, pushTime)
}

// CollectBlock writes, for every parameter of the working set whose value
// changed since it was loaded, the delta between its current value in the GPU
// hash tables and its loaded value into dst (Algorithm 1 line 16) — flat
// weight/g2 rows in working-set order (sorted, on the trainer's path), one
// pass per key under its table's shard lock, no per-key allocation once dst's
// slabs have grown to the steady delta size. The deltas are what the
// inter-node synchronization exchanges and what the MEM-PS applies to the
// authoritative copies.
//
// Each candidate row is appended speculatively and the subtraction computed
// straight into it with the fused subtract-and-test kernel; rows whose delta
// turns out to be exactly zero (weights, accumulators and frequency alike)
// are withdrawn, so dst ends up holding only the changed keys.
func (h *HBMPS) CollectBlock(dst *ps.ValueBlock) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dst.Reset(h.cfg.Dim, nil)
	dst.Grow(len(h.origSet.Keys))
	for i, k := range h.origSet.Keys {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			continue
		}
		// Uninitialized grow: the fused kernel below writes every element of
		// the row, and a row whose View fails is truncated before anything
		// can observe it.
		row := dst.GrowRowUninit(k)
		dw, dg := dst.WeightsRow(row), dst.G2Row(row)
		origW, origG := h.origSet.WeightsRow(i), h.origSet.G2Row(i)
		changed := false
		var freqDelta uint32
		// Read under the table's shard lock in case workers are still
		// pushing updates.
		ok := table.View(k, func(cur *embedding.Value) {
			wChanged := tensor.SubAnyNonZero(dw, cur.Weights, origW)
			gChanged := tensor.SubAnyNonZero(dg, cur.G2Sum, origG)
			changed = wChanged || gChanged
			freqDelta = cur.Freq - h.origSet.Freq[i]
		})
		if !ok || (!changed && freqDelta == 0) {
			dst.TruncateLast()
			continue
		}
		dst.Freq[row] = freqDelta
	}
}

// CollectUpdates is the map form of CollectBlock, kept as a thin adapter for
// tests and map-based callers: one freshly allocated embedding.Value per
// changed key. The hot path uses CollectBlock directly.
func (h *HBMPS) CollectUpdates() map[keys.Key]*embedding.Value {
	blk := ps.GetBlock(h.cfg.Dim, nil)
	defer ps.PutBlock(blk)
	h.CollectBlock(blk)
	return blk.Deltas()
}

// ApplyRemoteDeltas merges deltas received from other nodes into the local
// GPU hash tables for the parameters this node also holds in its working set
// — the effect of the inter-node all-reduce on shared parameters.
func (h *HBMPS) ApplyRemoteDeltas(deltas map[keys.Key]*embedding.Value) {
	_ = h.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: deltas})
}

// Name implements ps.Tier.
func (h *HBMPS) Name() string { return "hbm-ps" }

// TierStats implements ps.Tier.
func (h *HBMPS) TierStats() ps.Stats { return h.rec.TierStats() }

// Evict implements ps.Tier: it demotes keys out of HBM, freeing their slots
// for the rest of the batch. A nil slice releases the entire working set
// (the end-of-batch demotion of Algorithm 1 line 17; the caller is expected
// to have collected the deltas first). Evicted values are dropped — the
// MEM-PS below holds the authoritative copies.
func (h *HBMPS) Evict(ks []keys.Key) (int, error) {
	if ks == nil {
		n := h.WorkingSetSize()
		h.Release()
		h.rec.RecordEvict(n)
		return n, nil
	}
	n := 0
	for _, k := range ks {
		table := h.devices[h.gpuOf(k)].Table()
		if table == nil {
			continue
		}
		if table.Delete(k) {
			n++
		}
	}
	h.rec.RecordEvict(n)
	return n, nil
}

// Release destroys the per-GPU hash tables and clears the working-set
// snapshot, freeing the HBM for the next batch. The backing storage (value
// arena, snapshot block, retired tables) is retained for recycling.
func (h *HBMPS) Release() {
	h.mu.Lock()
	h.origSet.Reset(h.cfg.Dim, nil)
	h.loaded = false
	h.mu.Unlock()
	for _, d := range h.devices {
		d.DestroyHashTable()
	}
}

// WorkingSetSize returns the number of parameters currently resident across
// all GPUs.
func (h *HBMPS) WorkingSetSize() int {
	total := 0
	for _, d := range h.devices {
		if t := d.Table(); t != nil {
			total += t.Len()
		}
	}
	return total
}

// Stats returns cumulative HBM-PS statistics. The pull/push durations are
// served from the uniform tier recorder (the single source of truth) so the
// hot path maintains them only once.
func (h *HBMPS) Stats() Stats {
	rec := h.rec.TierStats()
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.PullTime = rec.PullTime
	st.PushTime = rec.PushTime
	return st
}
