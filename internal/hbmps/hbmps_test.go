package hbmps

import (
	"strings"
	"sync"
	"testing"

	"hps/internal/embedding"
	"hps/internal/gpu"
	"hps/internal/hw"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/optimizer"
	"hps/internal/ps"
	"hps/internal/simtime"
)

// pull is shorthand for the ps.Tier pull of the pre-refactor API.
func pull(h *HBMPS, gpuID int, ks []keys.Key) (ps.Result, error) {
	return h.Pull(ps.PullRequest{Shard: gpuID, Keys: ks})
}

func testConfig(numGPUs int) Config {
	profile := hw.DefaultGPUNode()
	clock := simtime.NewClock()
	return Config{
		NodeID:     0,
		NumGPUs:    numGPUs,
		Dim:        4,
		GPUProfile: profile.GPU,
		NVLink:     profile.NVLink,
		Fabric:     interconnect.NewFabric(profile, clock),
		Clock:      clock,
	}
}

func workingSet(n int) map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, n)
	for i := 0; i < n; i++ {
		v := embedding.NewValue(4)
		v.Weights[0] = float32(i)
		out[keys.Key(i)] = v
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumGPUs: 0, Dim: 4}); err == nil {
		t.Fatal("zero GPUs should fail")
	}
	if _, err := New(Config{NumGPUs: 2, Dim: 0}); err == nil {
		t.Fatal("zero dim should fail")
	}
	h, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumGPUs() != 4 || len(h.Devices()) != 4 {
		t.Fatal("device count wrong")
	}
}

func TestLoadPartitionsAcrossGPUs(t *testing.T) {
	h, _ := New(testConfig(4))
	ws := workingSet(200)
	if err := h.LoadWorkingSet(ws); err != nil {
		t.Fatal(err)
	}
	if !h.Loaded() {
		t.Fatal("Loaded should be true")
	}
	if h.WorkingSetSize() != 200 {
		t.Fatalf("working set size = %d", h.WorkingSetSize())
	}
	// Non-overlapping partition: each GPU holds a strict subset and the
	// union covers everything.
	countWithParams := 0
	for _, dev := range h.Devices() {
		n := dev.Table().Len()
		if n > 0 {
			countWithParams++
		}
		if n == 200 {
			t.Fatal("one GPU holds everything; partitioning broken")
		}
	}
	if countWithParams < 2 {
		t.Fatal("parameters should spread across GPUs")
	}
	// Double load must fail until Release.
	if err := h.LoadWorkingSet(ws); err == nil {
		t.Fatal("second load without release should fail")
	}
	h.Release()
	if h.Loaded() || h.WorkingSetSize() != 0 {
		t.Fatal("release failed")
	}
	if err := h.LoadWorkingSet(ws); err != nil {
		t.Fatal(err)
	}
	if h.Stats().BatchesLoaded != 2 || h.Stats().ParamsLoaded != 400 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestLoadCopiesValues(t *testing.T) {
	h, _ := New(testConfig(2))
	ws := workingSet(10)
	if err := h.LoadWorkingSet(ws); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's map must not affect the GPU copies.
	ws[0].Weights[0] = 999
	got, err := pull(h, 0, []keys.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Weights[0] == 999 {
		t.Fatal("LoadWorkingSet must copy values")
	}
}

func TestLoadFailsWhenHBMTooSmall(t *testing.T) {
	cfg := testConfig(2)
	cfg.GPUProfile.HBMBytes = 64 // absurdly small
	h, _ := New(cfg)
	err := h.LoadWorkingSet(workingSet(1000))
	if err == nil {
		t.Fatal("expected out-of-HBM failure")
	}
	if !strings.Contains(err.Error(), "cannot hold") {
		t.Fatalf("unexpected error: %v", err)
	}
	// All tables must be rolled back.
	for _, dev := range h.Devices() {
		if dev.Table() != nil || dev.HBMUsed() != 0 {
			t.Fatal("failed load must roll back allocations")
		}
	}
}

func TestPullLocalAndRemote(t *testing.T) {
	h, _ := New(testConfig(4))
	if err := h.LoadWorkingSet(workingSet(100)); err != nil {
		t.Fatal(err)
	}
	var ks []keys.Key
	for i := 0; i < 100; i++ {
		ks = append(ks, keys.Key(i))
	}
	got, err := pull(h, 0, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("pulled %d values", len(got))
	}
	for i := 0; i < 100; i++ {
		if got[keys.Key(i)].Weights[0] != float32(i) {
			t.Fatalf("value %d corrupted", i)
		}
	}
	st := h.Stats()
	if st.LocalPulls == 0 || st.RemotePulls == 0 {
		t.Fatalf("expected both local and remote pulls, got %+v", st)
	}
	if st.PullTime <= 0 {
		t.Fatal("pull time should be accounted")
	}
	// Invalid GPU id and missing key.
	if _, err := pull(h, 99, ks); err == nil {
		t.Fatal("invalid gpu id should fail")
	}
	if _, err := pull(h, 0, []keys.Key{10_000}); err == nil {
		t.Fatal("missing key should fail")
	}
}

func TestPullReturnsCopies(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(4))
	got, _ := pull(h, 0, []keys.Key{1})
	got[1].Weights[0] = 777
	again, _ := pull(h, 0, []keys.Key{1})
	if again[1].Weights[0] == 777 {
		t.Fatal("Pull must return copies")
	}
}

func TestPushAppliesOptimizer(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(10))
	before, _ := pull(h, 0, []keys.Key{3})
	grads := map[keys.Key][]float32{3: {1, 0, 0, 0}}
	if err := h.PushGrads(0, grads, optimizer.SGD{LR: 0.5}); err != nil {
		t.Fatal(err)
	}
	after, _ := pull(h, 0, []keys.Key{3})
	want := before[3].Weights[0] - 0.5
	if after[3].Weights[0] != want {
		t.Fatalf("push result = %v, want %v", after[3].Weights[0], want)
	}
	if after[3].Freq != before[3].Freq+1 {
		t.Fatal("push should increment freq")
	}
	if h.Stats().PushTime <= 0 {
		t.Fatal("push time should be accounted")
	}
	// Error cases.
	if err := h.PushGrads(99, grads, optimizer.SGD{LR: 1}); err == nil {
		t.Fatal("invalid gpu id should fail")
	}
	if err := h.PushGrads(0, grads, nil); err == nil {
		t.Fatal("nil optimizer should fail")
	}
	if err := h.PushGrads(0, map[keys.Key][]float32{999: {1, 1, 1, 1}}, optimizer.SGD{LR: 1}); err == nil {
		t.Fatal("missing key should fail")
	}
}

func TestPushConcurrentWorkers(t *testing.T) {
	h, _ := New(testConfig(4))
	h.LoadWorkingSet(workingSet(50))
	var wg sync.WaitGroup
	const workers = 8
	const steps = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(gpuID int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				grads := map[keys.Key][]float32{keys.Key(i % 50): {1, 0, 0, 0}}
				if err := h.PushGrads(gpuID%4, grads, optimizer.SGD{LR: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Total weight change across all keys must equal -(workers*steps) for SGD
	// with lr=1 and gradient 1 (no lost updates).
	updates := h.CollectUpdates()
	var total float32
	for _, d := range updates {
		total += d.Weights[0]
	}
	if total != -float32(workers*steps) {
		t.Fatalf("lost updates: total delta = %v, want %v", total, -float32(workers*steps))
	}
}

func TestCollectUpdatesOnlyChanged(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(20))
	h.PushGrads(0, map[keys.Key][]float32{5: {2, 0, 0, 0}}, optimizer.SGD{LR: 1})
	updates := h.CollectUpdates()
	if len(updates) != 1 {
		t.Fatalf("expected 1 changed parameter, got %d", len(updates))
	}
	d, ok := updates[5]
	if !ok {
		t.Fatal("missing delta for key 5")
	}
	if d.Weights[0] != -2 {
		t.Fatalf("delta = %v, want -2", d.Weights[0])
	}
	if d.Freq != 1 {
		t.Fatalf("freq delta = %d", d.Freq)
	}
}

func TestApplyRemoteDeltas(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(10))
	delta := embedding.NewValue(4)
	delta.Weights[0] = 3
	delta.Freq = 2
	h.ApplyRemoteDeltas(map[keys.Key]*embedding.Value{
		2:   delta,
		999: delta, // not in the working set: ignored
	})
	got, _ := pull(h, 0, []keys.Key{2})
	if got[2].Weights[0] != 2+3 {
		t.Fatalf("remote delta not applied: %v", got[2].Weights[0])
	}
	// The applied delta becomes part of this node's observed update too
	// (matching what a real all-reduce leaves in HBM).
	updates := h.CollectUpdates()
	if updates[2] == nil || updates[2].Weights[0] != 3 {
		t.Fatal("remote delta should appear in collected updates")
	}
}

func TestHBMChargesClock(t *testing.T) {
	cfg := testConfig(2)
	h, _ := New(cfg)
	h.LoadWorkingSet(workingSet(100))
	if cfg.Clock.Total(simtime.ResourcePCIe) <= 0 {
		t.Fatal("loading should charge PCIe time")
	}
	if cfg.Clock.Total(simtime.ResourceHBM) <= 0 {
		t.Fatal("loading should charge HBM time")
	}
	var ks []keys.Key
	for i := 0; i < 100; i++ {
		ks = append(ks, keys.Key(i))
	}
	pull(h, 0, ks)
	if cfg.Clock.Total(simtime.ResourceNVLink) <= 0 {
		t.Fatal("remote pulls should charge NVLink time")
	}
}

func TestDevicesShareNodeID(t *testing.T) {
	cfg := testConfig(3)
	cfg.NodeID = 7
	h, _ := New(cfg)
	for i, d := range h.Devices() {
		if d.NodeID != 7 || d.ID != i {
			t.Fatalf("device %d identity wrong: %+v", i, d)
		}
	}
}

func TestBytesPerEntryConsistency(t *testing.T) {
	// The HBM accounting for a loaded working set must match the hash table's
	// own size computation (no silent divergence between the two).
	h, _ := New(testConfig(1))
	if err := h.LoadWorkingSet(workingSet(64)); err != nil {
		t.Fatal(err)
	}
	dev := h.Devices()[0]
	if dev.HBMUsed() != dev.Table().SizeBytes() {
		t.Fatalf("HBM used %d != table size %d", dev.HBMUsed(), dev.Table().SizeBytes())
	}
	_ = gpu.BytesPerEntry(4)
}

func TestTierInterface(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(20))
	var tier ps.Tier = h
	if tier.Name() != "hbm-ps" {
		t.Fatalf("name = %q", tier.Name())
	}

	// Tier push merges value deltas shard-aware.
	delta := embedding.NewValue(4)
	delta.Weights[0] = 5
	if err := tier.Push(ps.PushRequest{Shard: 0, Deltas: map[keys.Key]*embedding.Value{4: delta}}); err != nil {
		t.Fatal(err)
	}
	got, _ := pull(h, 0, []keys.Key{4})
	if got[4].Weights[0] != 4+5 {
		t.Fatalf("tier push not applied: %v", got[4].Weights[0])
	}
	if err := tier.Push(ps.PushRequest{Shard: 42, Deltas: nil}); err == nil {
		t.Fatal("invalid shard should fail")
	}

	st := tier.TierStats()
	if st.Pulls == 0 || st.Pushes == 0 || st.KeysPulled == 0 || st.KeysPushed == 0 {
		t.Fatalf("uniform stats not recorded: %+v", st)
	}
}

func TestEvictPartialAndFull(t *testing.T) {
	h, _ := New(testConfig(2))
	h.LoadWorkingSet(workingSet(10))

	// Partial eviction demotes individual keys; a second eviction of the same
	// keys finds nothing.
	n, err := h.Evict([]keys.Key{1, 3, 999})
	if err != nil || n != 2 {
		t.Fatalf("evict = (%d, %v), want (2, nil)", n, err)
	}
	if h.WorkingSetSize() != 8 {
		t.Fatalf("working set size = %d after partial evict", h.WorkingSetSize())
	}
	if _, err := pull(h, 0, []keys.Key{1}); err == nil {
		t.Fatal("evicted key should no longer be resident")
	}
	if n, _ := h.Evict([]keys.Key{1, 3}); n != 0 {
		t.Fatalf("re-evict = %d, want 0", n)
	}

	// Full eviction releases the working set.
	n, err = h.Evict(nil)
	if err != nil || n != 8 {
		t.Fatalf("full evict = (%d, %v), want (8, nil)", n, err)
	}
	if h.Loaded() || h.WorkingSetSize() != 0 {
		t.Fatal("full evict must release the working set")
	}
	if st := h.TierStats(); st.Evictions != 3 || st.KeysEvicted != 10 {
		t.Fatalf("evict stats = %+v", st)
	}
}
