package memps_test

import (
	"testing"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/memps"
	"hps/internal/ps"
	"hps/internal/ps/conformance"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// TestTierConformance runs the shared ps.Tier suite against the MEM-PS: it
// materializes first references on pull, and eviction demotes to the SSD-PS
// below (durable).
func TestTierConformance(t *testing.T) {
	const dim = 8
	conformance.Run(t, conformance.Harness{
		Dim:          dim,
		Shard:        ps.NoShard,
		PullCreates:  true,
		EvictDurable: true,
		Concurrent:   true,
		New: func(t *testing.T, ks []keys.Key) ps.Tier {
			dev, err := blockio.NewDevice(t.TempDir(), hw.DefaultGPUNode().SSD, simtime.NewClock())
			if err != nil {
				t.Fatal(err)
			}
			store, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 8})
			if err != nil {
				t.Fatal(err)
			}
			m, err := memps.New(memps.Config{
				Dim:        dim,
				Topology:   cluster.Topology{Nodes: 1, GPUsPerNode: 1},
				Store:      store,
				LRUEntries: 1024,
				LFUEntries: 1024,
				Seed:       11,
			})
			if err != nil {
				t.Fatal(err)
			}
			// First reference materializes the suite's key set.
			if _, err := m.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: ks}); err != nil {
				t.Fatal(err)
			}
			return m
		},
	})
}
