package memps

import (
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

func newStore(t *testing.T, dim int, clock *simtime.Clock) *ssdps.Store {
	t.Helper()
	ssd := hw.SSD{
		ReadBandwidthBytesPerSec:  1 << 30,
		WriteBandwidthBytesPerSec: 1 << 30,
		ReadLatency:               10 * time.Microsecond,
		WriteLatency:              10 * time.Microsecond,
		BlockBytes:                4096,
	}
	dev, err := blockio.NewDevice(t.TempDir(), ssd, clock)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ssdps.Open(dev, ssdps.Config{Dim: dim, ParamsPerFile: 32})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func singleNode(t *testing.T, lru, lfu int) *MemPS {
	t.Helper()
	clock := simtime.NewClock()
	m, err := New(Config{
		NodeID:     0,
		Dim:        4,
		Topology:   cluster.Topology{Nodes: 1, GPUsPerNode: 2},
		Store:      newStore(t, 4, clock),
		Clock:      clock,
		LRUEntries: lru,
		LFUEntries: lfu,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	clock := simtime.NewClock()
	store := newStore(t, 4, clock)
	if _, err := New(Config{Dim: 4, Topology: cluster.Topology{Nodes: 1, GPUsPerNode: 1}}); err == nil {
		t.Fatal("nil store should fail")
	}
	if _, err := New(Config{Dim: 0, Store: store, Topology: cluster.Topology{Nodes: 1, GPUsPerNode: 1}}); err == nil {
		t.Fatal("zero dim should fail")
	}
	if _, err := New(Config{Dim: 4, Store: store, Topology: cluster.Topology{Nodes: 0, GPUsPerNode: 1}}); err == nil {
		t.Fatal("bad topology should fail")
	}
	if _, err := New(Config{Dim: 4, Store: store, Topology: cluster.Topology{Nodes: 2, GPUsPerNode: 1}}); err == nil {
		t.Fatal("multi-node without transport should fail")
	}
	// Memory budget derives cache sizes.
	m, err := New(Config{
		Dim: 4, Store: store,
		Topology:          cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		MemoryBudgetBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 4 || m.NodeID() != 0 {
		t.Fatal("accessors wrong")
	}
}

func TestPrepareCreatesAndCachesParameters(t *testing.T) {
	m := singleNode(t, 64, 64)
	ws, err := m.Prepare([]keys.Key{1, 2, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Values) != 3 {
		t.Fatalf("working set has %d values, want 3 (deduplicated)", len(ws.Values))
	}
	if len(ws.LocalKeys) != 3 || len(ws.RemoteKeys) != 0 {
		t.Fatalf("local/remote split wrong: %d/%d", len(ws.LocalKeys), len(ws.RemoteKeys))
	}
	if ws.Stats.NewParams != 3 || ws.Stats.CacheMisses != 3 {
		t.Fatalf("stats = %+v", ws.Stats)
	}
	if err := m.CompleteBatch(ws); err != nil {
		t.Fatal(err)
	}
	// Second batch touching the same keys hits the cache.
	ws2, err := m.Prepare([]keys.Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ws2.Stats.CacheHits != 3 || ws2.Stats.NewParams != 0 {
		t.Fatalf("second batch stats = %+v", ws2.Stats)
	}
	m.CompleteBatch(ws2)
	if m.Stats().BatchesPrepared != 2 {
		t.Fatal("batch counter wrong")
	}
}

func TestWorkingSetValuesAreCopies(t *testing.T) {
	m := singleNode(t, 64, 64)
	ws, _ := m.Prepare([]keys.Key{7})
	ws.Values[7].Weights[0] = 1e9 // mutate the copy
	m.CompleteBatch(ws)
	if v := m.Lookup(7); v.Weights[0] == 1e9 {
		t.Fatal("working-set values must be copies of the authoritative parameters")
	}
}

func TestApplyUpdates(t *testing.T) {
	m := singleNode(t, 64, 64)
	ws, _ := m.Prepare([]keys.Key{5})
	before := m.Lookup(5).Weights[0]

	delta := embedding.NewValue(4)
	delta.Weights[0] = 2.5
	delta.Freq = 3
	if err := m.ApplyUpdates(map[keys.Key]*embedding.Value{5: delta}); err != nil {
		t.Fatal(err)
	}
	m.CompleteBatch(ws)
	after := m.Lookup(5)
	if after.Weights[0] != before+2.5 {
		t.Fatalf("delta not applied: %v -> %v", before, after.Weights[0])
	}
	if after.Freq < 3 {
		t.Fatalf("freq not accumulated: %d", after.Freq)
	}
	// Updates for keys owned by other nodes are ignored, not errors.
	if err := m.ApplyUpdates(map[keys.Key]*embedding.Value{}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionDumpAndReload(t *testing.T) {
	clock := simtime.NewClock()
	store := newStore(t, 4, clock)
	m, err := New(Config{
		NodeID:        0,
		Dim:           4,
		Topology:      cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		Store:         store,
		Clock:         clock,
		LRUEntries:    8,
		LFUEntries:    8,
		DumpBatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch many distinct parameters so early ones are evicted and dumped.
	var lastWS *WorkingSet
	for batch := 0; batch < 10; batch++ {
		ks := make([]keys.Key, 8)
		for i := range ks {
			ks[i] = keys.Key(batch*8 + i)
		}
		ws, err := m.Prepare(ks)
		if err != nil {
			t.Fatal(err)
		}
		// Give every parameter a recognizable value via an update.
		deltas := make(map[keys.Key]*embedding.Value)
		for _, k := range ks {
			d := embedding.NewValue(4)
			d.Weights[0] = float32(k) + 1000
			deltas[k] = d
		}
		if err := m.ApplyUpdates(deltas); err != nil {
			t.Fatal(err)
		}
		if err := m.CompleteBatch(ws); err != nil {
			t.Fatal(err)
		}
		lastWS = ws
	}
	_ = lastWS
	if m.Stats().Dumped == 0 {
		t.Fatal("expected evicted parameters to be dumped to the SSD-PS")
	}
	if store.Len() == 0 {
		t.Fatal("SSD-PS should hold dumped parameters")
	}
	// Re-preparing an old, evicted parameter must load it from SSD with its
	// updated value, not recreate it.
	ws, err := m.Prepare([]keys.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	got := ws.Values[0].Weights[0]
	if got < 999 {
		t.Fatalf("evicted parameter lost its update: %v", got)
	}
	if ws.Stats.NewParams != 0 {
		t.Fatal("old parameter must not be recreated")
	}
	m.CompleteBatch(ws)
}

func TestFlushPersistsEverything(t *testing.T) {
	m := singleNode(t, 64, 64)
	ws, _ := m.Prepare([]keys.Key{1, 2, 3})
	deltas := map[keys.Key]*embedding.Value{}
	for _, k := range ws.LocalKeys {
		d := embedding.NewValue(4)
		d.Weights[0] = 7
		deltas[k] = d
	}
	m.ApplyUpdates(deltas)
	m.CompleteBatch(ws)
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.Store().Len() != 3 {
		t.Fatalf("store has %d params after flush, want 3", m.Store().Len())
	}
	// Flush again (empty) is a no-op.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Values remain reachable after flush.
	v := m.Lookup(1)
	if v == nil || v.Weights[0] == 0 {
		t.Fatal("flushed value unreachable or lost")
	}
}

func TestCacheHitRateGrowsOnSkewedStream(t *testing.T) {
	m := singleNode(t, 256, 256)
	hot := make([]keys.Key, 64)
	for i := range hot {
		hot[i] = keys.Key(i)
	}
	// First pass: cold cache.
	ws, _ := m.Prepare(hot)
	m.CompleteBatch(ws)
	coldRate := m.CacheStats().HitRate()
	// Repeat passes over the hot set: hit rate must climb.
	for i := 0; i < 5; i++ {
		ws, _ := m.Prepare(hot)
		m.CompleteBatch(ws)
	}
	warmRate := m.CacheStats().HitRate()
	if warmRate <= coldRate {
		t.Fatalf("hit rate should grow: cold %v warm %v", coldRate, warmRate)
	}
	m.ResetCacheStats()
	if m.CacheStats().Hits != 0 {
		t.Fatal("ResetCacheStats failed")
	}
}

func TestMultiNodeRemotePull(t *testing.T) {
	clock0 := simtime.NewClock()
	clock1 := simtime.NewClock()
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	transport := cluster.NewLocalTransport(4)
	profile := hw.DefaultGPUNode()

	m0, err := New(Config{
		NodeID: 0, Dim: 4, Topology: topo, Transport: transport,
		Store: newStore(t, 4, clock0), Clock: clock0,
		Fabric:     interconnect.NewFabric(profile, clock0),
		LRUEntries: 64, LFUEntries: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := New(Config{
		NodeID: 1, Dim: 4, Topology: topo, Transport: transport,
		Store: newStore(t, 4, clock1), Clock: clock1,
		Fabric:     interconnect.NewFabric(profile, clock1),
		LRUEntries: 64, LFUEntries: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	transport.Register(0, m0)
	transport.Register(1, m1)

	// Node 0 prepares a batch touching both shards (even keys -> node 0,
	// odd keys -> node 1).
	ws, err := m0.Prepare([]keys.Key{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.LocalKeys) != 2 || len(ws.RemoteKeys) != 2 {
		t.Fatalf("split = %d local / %d remote", len(ws.LocalKeys), len(ws.RemoteKeys))
	}
	for _, k := range []keys.Key{2, 3, 4, 5} {
		if _, ok := ws.Values[k]; !ok {
			t.Fatalf("missing working value for key %d", k)
		}
	}
	if ws.Stats.RemoteTime <= 0 {
		t.Fatal("remote pull should cost network time")
	}
	if clock0.Total(simtime.ResourceNetwork) <= 0 {
		t.Fatal("network time should be charged to the node clock")
	}
	// The remote keys now live in node 1's cache (it served them).
	if m1.CacheStats().Misses == 0 {
		t.Fatal("owner should have looked up the served keys")
	}
	m0.CompleteBatch(ws)

	// Apply updates on both nodes: node 0 only owns even keys; node 1 odd.
	deltas := map[keys.Key]*embedding.Value{}
	for _, k := range []keys.Key{2, 3, 4, 5} {
		d := embedding.NewValue(4)
		d.Weights[0] = 5
		deltas[k] = d
	}
	if err := m0.ApplyUpdates(deltas); err != nil {
		t.Fatal(err)
	}
	if err := m1.ApplyUpdates(deltas); err != nil {
		t.Fatal(err)
	}
	if m0.Lookup(3) != nil {
		t.Fatal("node 0 must not own key 3")
	}
	v3 := m1.Lookup(3)
	if v3 == nil {
		t.Fatal("node 1 should own key 3")
	}
	if v3.Weights[0] == 0 {
		t.Fatal("update to remote key should be applied at its owner")
	}
}

// TestHandlePullBlockWireMatchesBlock asserts the zero-intermediate wire
// serving path produces byte-for-byte the frame the block path would: the
// same working set served through HandlePullBlock + AppendWire and through
// HandlePullBlockWire must encode identically, across cache hits, SSD
// reloads and first references.
func TestHandlePullBlockWireMatchesBlock(t *testing.T) {
	m := singleNode(t, 16, 16)
	ks := []keys.Key{3, 7, 11, 19, 23}
	// Mixed serving states: train some keys in, evict one to the SSD, and
	// leave the rest to be materialized on first reference.
	if _, err := m.Prepare(ks[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict([]keys.Key{ks[1]}); err != nil {
		t.Fatal(err)
	}

	// The wire handler materializes first references, so serve the block path
	// against an identically-seeded twin to compare equal first-reference
	// values (serving order is the request order for both).
	twin := singleNode(t, 16, 16)
	if _, err := twin.Prepare(ks[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Evict([]keys.Key{ks[1]}); err != nil {
		t.Fatal(err)
	}

	wire, err := m.HandlePullBlockWire(ks, nil, ps.PrecisionFP32)
	if err != nil {
		t.Fatal(err)
	}
	blk := ps.NewValueBlock(twin.Dim())
	if err := twin.HandlePullBlock(ks, blk); err != nil {
		t.Fatal(err)
	}
	want := blk.AppendWire(nil)
	if len(wire) != len(want) {
		t.Fatalf("frame sizes differ: wire %d, block %d", len(wire), len(want))
	}
	for i := range want {
		if wire[i] != want[i] {
			t.Fatalf("byte %d differs: %d != %d", i, wire[i], want[i])
		}
	}

	// Foreign keys are rejected, exactly like the block path.
	clock := simtime.NewClock()
	multi, err := New(Config{
		NodeID:     0,
		Dim:        4,
		Topology:   cluster.Topology{Nodes: 2, GPUsPerNode: 1},
		Transport:  cluster.NoRoute{},
		Store:      newStore(t, 4, clock),
		Clock:      clock,
		LRUEntries: 16,
		LFUEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.HandlePullBlockWire([]keys.Key{1}, nil, ps.PrecisionFP32); err == nil { // odd keys belong to node 1
		t.Fatal("expected foreign-key rejection")
	}
}

func TestHandlePullRejectsForeignKeys(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, GPUsPerNode: 1}
	transport := cluster.NewLocalTransport(4)
	clock := simtime.NewClock()
	m0, err := New(Config{
		NodeID: 0, Dim: 4, Topology: topo, Transport: transport,
		Store: newStore(t, 4, clock), Clock: clock, LRUEntries: 16, LFUEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 belongs to node 1; node 0 must refuse to serve it.
	if _, err := m0.HandlePull([]keys.Key{1}); err == nil {
		t.Fatal("HandlePull should reject keys the node does not own")
	}
	if _, err := m0.HandlePull([]keys.Key{2}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupUnknownKey(t *testing.T) {
	m := singleNode(t, 16, 16)
	if v := m.Lookup(999); v != nil {
		t.Fatal("unknown key should return nil")
	}
}

func TestTierInterface(t *testing.T) {
	m := singleNode(t, 64, 64)
	var tier ps.Tier = m
	if tier.Name() != "mem-ps" {
		t.Fatalf("name = %q", tier.Name())
	}

	// Tier pull creates on first reference and does not pin.
	res, err := tier.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: []keys.Key{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("pulled %d values", len(res))
	}
	for _, k := range []keys.Key{1, 2, 3} {
		if m.cache.Pinned(uint64(k)) {
			t.Fatalf("tier pull must not pin key %d", k)
		}
	}

	// Tier push merges deltas into the owned shard.
	delta := embedding.NewValue(4)
	delta.Weights[0] = 2.5
	if err := tier.Push(ps.PushRequest{Shard: ps.NoShard, Deltas: map[keys.Key]*embedding.Value{2: delta}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(2).Weights[0]; got != res[2].Weights[0]+2.5 {
		t.Fatalf("tier push not applied: %v", got)
	}

	st := tier.TierStats()
	if st.Pulls == 0 || st.Pushes == 0 || st.KeysPulled < 3 || st.KeysPushed != 1 {
		t.Fatalf("uniform stats = %+v", st)
	}
}

func TestEvictDemotesToSSD(t *testing.T) {
	m := singleNode(t, 64, 64)
	ws, err := m.Prepare([]keys.Key{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}

	// Pinned working parameters must survive eviction.
	if n, err := m.Evict([]keys.Key{1, 2}); err != nil || n != 0 {
		t.Fatalf("evict of pinned keys = (%d, %v), want (0, nil)", n, err)
	}
	if err := m.CompleteBatch(ws); err != nil {
		t.Fatal(err)
	}

	// Unpinned keys demote to the SSD-PS.
	n, err := m.Evict([]keys.Key{1, 2})
	if err != nil || n != 2 {
		t.Fatalf("evict = (%d, %v), want (2, nil)", n, err)
	}
	if !m.Store().Contains(1) || !m.Store().Contains(2) {
		t.Fatal("evicted parameters must be on the SSD")
	}
	// Still readable through the tier (reloaded from SSD).
	res, err := m.Pull(ps.PullRequest{Shard: ps.NoShard, Keys: []keys.Key{1}})
	if err != nil || len(res) != 1 {
		t.Fatalf("pull after evict = (%v, %v)", res, err)
	}
	if st := m.TierStats(); st.Evictions == 0 || st.KeysEvicted != 2 {
		t.Fatalf("evict stats = %+v", st)
	}

	// Evict(nil) flushes everything.
	if _, err := m.Evict(nil); err != nil {
		t.Fatal(err)
	}
	if m.cache.Len() != 0 {
		t.Fatal("Evict(nil) must empty the cache")
	}
}
