package memps

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/keys"
	"hps/internal/ps"
)

// This file is the replication half of the MEM-PS: what a shard does beyond
// serving its own partition so that another shard can take over for it.
//
//   - A primary that applies a push forwards the applied delta rows to each
//     key's backups (Replicator.Forward), asynchronously and stamped with the
//     ORIGIN client's (client, seq) — the backup commits the stamp to its own
//     dedup tracker, so after a promotion the origin's retry of the same push
//     is acknowledged as a duplicate instead of double-applied.
//   - On a membership change, the shard re-replicates: for every key it
//     holds, if it is the designated sender under the new ring it streams the
//     key's current value to the members that just entered the key's replica
//     set (Replicator.Reconcile), in rate-limited chunks over the transfer op.
//   - ImportBlock / ExportInto / LocalKeys are the state-transfer primitives
//     those chunks are built from.

// Topology returns the cluster topology this MEM-PS places keys with.
func (m *MemPS) Topology() cluster.Topology { return m.cfg.Topology }

// LocalKeys returns every key this shard currently holds a value for, across
// the cache, the pending-dump buffer and the SSD-PS, deduplicated. It is the
// enumeration step of re-replication; the set may include keys the current
// ring no longer assigns to this node (stale leftovers are harmless — they are
// neither served nor applied).
func (m *MemPS) LocalKeys() []keys.Key {
	m.mu.Lock()
	ks := make([]keys.Key, 0, m.cache.Len()+len(m.pendingDump))
	m.cache.Range(func(k uint64, _ *embedding.Value) bool {
		ks = append(ks, keys.Key(k))
		return true
	})
	for k := range m.pendingDump {
		ks = append(ks, k)
	}
	m.mu.Unlock()
	ks = append(ks, m.cfg.Store.Keys()...)
	return keys.Dedup(ks)
}

// HotRows returns up to n of the shard's cache-resident rows, hottest first
// by training-observed reference frequency, cloned so callers can hold them
// across later pushes. It is the warming set a restarted or newly promoted
// shard hands its serving tier (serving.Server.Warm): the zipfian head of the
// recovered shard, ready to serve before organic traffic refills any cache.
func (m *MemPS) HotRows(n int) map[keys.Key]*embedding.Value {
	if n <= 0 {
		return nil
	}
	type row struct {
		k keys.Key
		v *embedding.Value
	}
	var rows []row
	m.mu.Lock()
	m.cache.Range(func(k uint64, v *embedding.Value) bool {
		rows = append(rows, row{keys.Key(k), v.Clone()})
		return true
	})
	m.mu.Unlock()
	if len(rows) < n && m.cfg.Store != nil {
		// A just-restored shard keeps its rows on the SSD-PS with a cold
		// cache; rank the recovered rows too. This reads every stored row
		// once — acceptable at restart, before the shard takes traffic.
		seen := make(map[keys.Key]bool, len(rows))
		for _, r := range rows {
			seen[r.k] = true
		}
		var missing []keys.Key
		for _, k := range m.cfg.Store.Keys() {
			if !seen[k] {
				missing = append(missing, k)
			}
		}
		vals, _ := m.LookupAll(missing) // local lookups never fail
		for k, v := range vals {
			if v != nil {
				rows = append(rows, row{k, v.Clone()})
			}
		}
	}
	slices.SortFunc(rows, func(a, b row) int {
		switch {
		case a.v.Freq > b.v.Freq:
			return -1
		case a.v.Freq < b.v.Freq:
			return 1
		case a.k < b.k: // deterministic order among frequency ties
			return -1
		case a.k > b.k:
			return 1
		}
		return 0
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make(map[keys.Key]*embedding.Value, len(rows))
	for _, r := range rows {
		out[r.k] = r.v // cloned above
	}
	return out
}

// ExportInto fills dst with this shard's current values for ks (request-key
// order; keys this shard does not hold stay absent) and returns how many rows
// are present. It is the read side of a key-range state transfer. Unlike
// LookupAll it does NOT apply the ownership filter: a leaving shard exports
// rows the new ring no longer assigns to it — holding a value is what
// matters here, not owning the key.
func (m *MemPS) ExportInto(ks []keys.Key, dst *ps.ValueBlock) int {
	dst.Reset(m.cfg.Dim, ks)
	vals := m.exportAll(ks)
	n := 0
	for i, k := range ks {
		if v, ok := vals[k]; ok {
			dst.Set(i, v)
			n++
		}
	}
	return n
}

// exportAll reads this shard's current values for ks across the cache, the
// dump buffer and the SSD-PS, with no ownership filter (see ExportInto).
func (m *MemPS) exportAll(ks []keys.Key) map[keys.Key]*embedding.Value {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	var toLoad []keys.Key
	m.mu.Lock()
	for _, k := range ks {
		if v, ok := m.cache.Get(uint64(k)); ok {
			out[k] = v.Clone()
		} else if v, ok := m.pendingDump[k]; ok {
			out[k] = v.Clone()
		} else {
			toLoad = append(toLoad, k)
		}
	}
	m.mu.Unlock()
	if len(toLoad) > 0 {
		// Outside the lock: a concurrently evicted key is still durable on
		// the SSD, and Load returns private decoded copies.
		if loaded, err := m.cfg.Store.Load(toLoad); err == nil {
			for k, v := range loaded {
				out[k] = v
			}
		}
	}
	return out
}

// ImportBlock installs the block's rows as full values (set semantics, not
// delta merge) and returns how many were accepted. Rows for keys this shard
// already holds anywhere — cache, dump buffer or SSD — are skipped: a state
// transfer fills holes, while live replication keeps existing rows current.
// Accepting an older snapshot over a row a replicated delta already advanced
// would silently roll that delta back; skipping makes transfers idempotent
// and safely reorderable against the replication stream.
func (m *MemPS) ImportBlock(blk *ps.ValueBlock) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	accepted := 0
	for i, k := range blk.Keys {
		if !blk.Present[i] || !m.ownsKey(k) {
			continue
		}
		if m.cache.Contains(uint64(k)) {
			continue
		}
		if _, pending := m.pendingDump[k]; pending {
			continue
		}
		if m.cfg.Store.Contains(k) {
			continue
		}
		m.cache.Put(uint64(k), blk.Value(i))
		accepted++
	}
	m.stats.Imported += int64(accepted)
	return accepted
}

// HandleReplicate applies a delta block forwarded by a key's primary. The
// apply path is the same ownership-filtered merge as a direct push — ownsKey
// spans the whole replica set, so the backup rows land; the dedup stamp was
// already committed by the server dispatch.
func (m *MemPS) HandleReplicate(blk *ps.ValueBlock) error {
	if err := m.applyBlock(blk); err != nil {
		return err
	}
	return m.Maintain()
}

// HandleTransfer installs a key-range state transfer (see ImportBlock).
func (m *MemPS) HandleTransfer(blk *ps.ValueBlock) (int, error) {
	n := m.ImportBlock(blk)
	return n, m.Maintain()
}

// ReplicateTransport is what the Replicator needs from the cluster transport:
// the replicate op (delta forwarding, origin-stamped) and the transfer op
// (full-value key-range copy). TCPTransport implements both.
type ReplicateTransport interface {
	Replicate(nodeID int, client, seq uint64, blk *ps.ValueBlock) (int64, error)
	Transfer(nodeID int, blk *ps.ValueBlock) (int, error)
}

// ReplicationStats is a snapshot of the Replicator's counters.
type ReplicationStats struct {
	// Forwarded / ForwardedKeys count replicate RPCs (and their present rows)
	// successfully delivered to backups.
	Forwarded     int64
	ForwardedKeys int64
	// Pending is the current replication lag: forwarded blocks accepted from
	// the apply path but not yet delivered. MaxPending is its high-water mark.
	Pending    int64
	MaxPending int64
	// Errors counts forwards and transfers dropped after the transport gave
	// up retrying. Dropped forwards are healed by the next reconcile; until
	// then the backup is stale within the lag window.
	Errors int64
	// Transferred / TransferredKeys count re-replication transfer RPCs (and
	// accepted rows) this shard sent as a reconcile sender.
	Transferred     int64
	TransferredKeys int64
}

// ReplicatorConfig sizes the Replicator. Zero values pick the defaults.
type ReplicatorConfig struct {
	// QueueDepth bounds the forward queue (default 256 blocks). When the
	// queue is full the apply path blocks — backpressure is what keeps the
	// replication lag window bounded instead of unbounded memory growth.
	QueueDepth int
	// TransferChunk is the number of keys per transfer RPC during reconcile
	// (default 512).
	TransferChunk int
	// TransferPause is the pause between transfer chunks (default 2ms), rate-
	// limiting re-replication so it does not starve foreground traffic.
	TransferPause time.Duration
}

// Replicator drives both replication data paths of one shard: the async
// forwarding queue of applied delta blocks (primary -> backup, hot path) and
// the rate-limited key-range transfers of a membership reconcile (background).
// One drain goroutine serializes forwards, preserving per-backup apply order.
type Replicator struct {
	mem   *MemPS
	tr    ReplicateTransport
	queue chan replJob
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	chunk int
	pause time.Duration

	pending         atomic.Int64
	maxPending      atomic.Int64
	forwarded       atomic.Int64
	forwardedKeys   atomic.Int64
	errors          atomic.Int64
	transferred     atomic.Int64
	transferredKeys atomic.Int64
}

// replJob is one queued forward: a privately owned sub-block of applied delta
// rows bound for one backup, under the origin client's dedup stamp.
type replJob struct {
	node        int
	client, seq uint64
	blk         *ps.ValueBlock
}

// NewReplicator starts a replicator for mem forwarding over tr.
func NewReplicator(mem *MemPS, tr ReplicateTransport, cfg ReplicatorConfig) *Replicator {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.TransferChunk <= 0 {
		cfg.TransferChunk = 512
	}
	if cfg.TransferPause == 0 {
		cfg.TransferPause = 2 * time.Millisecond
	}
	r := &Replicator{
		mem:   mem,
		tr:    tr,
		queue: make(chan replJob, cfg.QueueDepth),
		done:  make(chan struct{}),
		chunk: cfg.TransferChunk,
		pause: cfg.TransferPause,
	}
	r.wg.Add(1)
	go r.run()
	return r
}

// Forward partitions an applied delta block's present rows by replica peer
// and enqueues one privately cloned sub-block per peer, stamped with the
// origin client's (client, seq). It must be called after the local apply
// succeeded and before the stamp could be retired. A row is forwarded to
// every OTHER member of its key's replica set this node belongs to: a primary
// feeds its backups, and a backup that applied a failover push feeds its
// (possibly recovering) primary. Rows whose replica set does not include this
// node were not applied locally and are not forwarded.
func (r *Replicator) Forward(client, seq uint64, blk *ps.ValueBlock) {
	topo := r.mem.cfg.Topology
	if topo.Members == nil || topo.Replicas < 2 {
		return
	}
	ring := topo.Members.Ring()
	self := r.mem.cfg.NodeID
	var subs map[int]*ps.ValueBlock
	addRow := func(node, i int) {
		if node < 0 || node == self {
			return
		}
		if subs == nil {
			subs = make(map[int]*ps.ValueBlock, 2)
		}
		sub := subs[node]
		if sub == nil {
			sub = ps.GetBlock(blk.Dim, nil)
			subs[node] = sub
		}
		sub.AppendRow(blk.Keys[i], blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i])
	}
	for i, k := range blk.Keys {
		if !blk.Present[i] {
			continue
		}
		if topo.Replicas == 2 {
			// Allocation-free fast path for the deployed R: the peer is the
			// backup when this node is the primary, the primary otherwise.
			owner := ring.Owner(k)
			switch {
			case owner == self:
				addRow(ring.Backup(k), i)
			case ring.Backup(k) == self:
				addRow(owner, i)
			}
			continue
		}
		reps := ring.Replicas(k, topo.Replicas)
		if !slices.Contains(reps, self) {
			continue
		}
		for _, node := range reps {
			addRow(node, i)
		}
	}
	for node, sub := range subs {
		r.enqueue(replJob{node: node, client: client, seq: seq, blk: sub})
	}
}

// enqueue hands a job to the drain goroutine, blocking when the queue is full
// (bounded lag) and recycling the block if the replicator is closed.
func (r *Replicator) enqueue(j replJob) {
	p := r.pending.Add(1)
	for {
		hw := r.maxPending.Load()
		if p <= hw || r.maxPending.CompareAndSwap(hw, p) {
			break
		}
	}
	select {
	case r.queue <- j:
	case <-r.done:
		r.pending.Add(-1)
		ps.PutBlock(j.blk)
	}
}

// run drains the forward queue; on Close it finishes whatever is queued (a
// graceful shard removal flushes its backups) and exits.
func (r *Replicator) run() {
	defer r.wg.Done()
	for {
		select {
		case j := <-r.queue:
			r.send(j)
		case <-r.done:
			for {
				select {
				case j := <-r.queue:
					r.send(j)
				default:
					return
				}
			}
		}
	}
}

func (r *Replicator) send(j replJob) {
	defer r.pending.Add(-1)
	defer ps.PutBlock(j.blk)
	if _, err := r.tr.Replicate(j.node, j.client, j.seq, j.blk); err != nil {
		// The transport already retried; drop the block and count it. The
		// backup stays stale within the lag window until the next reconcile.
		r.errors.Add(1)
		return
	}
	r.forwarded.Add(1)
	r.forwardedKeys.Add(int64(len(j.blk.Keys)))
}

// Reconcile re-replicates after a membership change from oldRing to newRing:
// for every key this shard holds, if this shard is the designated sender —
// the first member of the key's NEW replica set that was also in its OLD one,
// so exactly one surviving holder sends — it transfers the key's current
// value to each member that just entered the replica set. Transfers go in
// rate-limited chunks; a nil oldRing (cold start) makes the primary the
// sender for everything. A shard absent from newRing instead hands off every
// row it holds (graceful leave — with R=1 nobody else could send them). It
// returns accepted row counts per destination.
func (r *Replicator) Reconcile(oldRing, newRing *cluster.Ring) map[int]int {
	topo := r.mem.cfg.Topology
	rf := topo.Replicas
	if rf < 1 {
		rf = 1
	}
	self := r.mem.cfg.NodeID
	if newRing == nil {
		return nil
	}
	// A shard absent from the new ring is gracefully leaving: the sender rule
	// below would never pick it — but with R=1 it is the ONLY holder of its
	// rows — so it hands off everything it holds to the new replica sets
	// itself. Under R>=2 the surviving holders run the same transfers; the
	// duplicates are harmless (transfers are idempotent set-semantics).
	leaving := !newRing.Contains(self)
	plan := map[int][]keys.Key{}
	for _, k := range r.mem.LocalKeys() {
		newReps := newRing.Replicas(k, rf)
		var oldReps []int
		if oldRing != nil {
			oldReps = oldRing.Replicas(k, rf)
		}
		if !leaving {
			// Exactly one surviving holder sends: the first member of the
			// key's new replica set that was also in its old one.
			sender := -1
			for _, n := range newReps {
				if oldRing == nil || slices.Contains(oldReps, n) {
					sender = n
					break
				}
			}
			if sender != self {
				continue
			}
		} else if oldRing != nil && !slices.Contains(oldReps, self) {
			continue // stale leftover the old ring never assigned to this shard
		}
		for _, n := range newReps {
			if n != self && !slices.Contains(oldReps, n) {
				plan[n] = append(plan[n], k)
			}
		}
	}
	moved := make(map[int]int, len(plan))
	blk := ps.GetBlock(r.mem.Dim(), nil)
	defer ps.PutBlock(blk)
	for node, ks := range plan {
		for off := 0; off < len(ks); off += r.chunk {
			end := min(off+r.chunk, len(ks))
			if r.mem.ExportInto(ks[off:end], blk) == 0 {
				continue
			}
			acc, err := r.tr.Transfer(node, blk)
			if err != nil {
				r.errors.Add(1)
				continue
			}
			moved[node] += acc
			r.transferred.Add(1)
			r.transferredKeys.Add(int64(acc))
			if r.pause > 0 {
				time.Sleep(r.pause)
			}
		}
	}
	return moved
}

// Drain waits until every queued forward has been delivered (or dropped),
// polling up to timeout. It reports whether the queue emptied in time.
func (r *Replicator) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for r.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stats snapshots the replication counters.
func (r *Replicator) Stats() ReplicationStats {
	return ReplicationStats{
		Forwarded:       r.forwarded.Load(),
		ForwardedKeys:   r.forwardedKeys.Load(),
		Pending:         r.pending.Load(),
		MaxPending:      r.maxPending.Load(),
		Errors:          r.errors.Load(),
		Transferred:     r.transferred.Load(),
		TransferredKeys: r.transferredKeys.Load(),
	}
}

// Close stops the replicator after flushing whatever is queued.
func (r *Replicator) Close() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}
