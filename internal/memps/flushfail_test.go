package memps

import (
	"os"
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// failableNode builds a single-node MEM-PS whose SSD-PS can be made to fail
// by removing dir out from under it (blockio writes plain files there).
func failableNode(t *testing.T, dir string, lru, lfu int) *MemPS {
	t.Helper()
	clock := simtime.NewClock()
	ssd := hw.SSD{
		ReadBandwidthBytesPerSec:  1 << 30,
		WriteBandwidthBytesPerSec: 1 << 30,
		ReadLatency:               10 * time.Microsecond,
		WriteLatency:              10 * time.Microsecond,
		BlockBytes:                4096,
	}
	dev, err := blockio.NewDevice(dir, ssd, clock)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: 4, ParamsPerFile: 32})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		NodeID:     0,
		Dim:        4,
		Topology:   cluster.Topology{Nodes: 1, GPUsPerNode: 1},
		Store:      store,
		Clock:      clock,
		LRUEntries: lru,
		LFUEntries: lfu,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFlushFailureKeepsParameters is the data-loss regression test for the
// flush path: when Store.Dump fails, the drained cache and dump buffer must
// stay reachable in memory — a failed flush that silently discards the only
// copies turns a transient disk error into permanent parameter loss.
func TestFlushFailureKeepsParameters(t *testing.T) {
	dir := t.TempDir()
	m := failableNode(t, dir, 64, 64)

	ks := []keys.Key{1, 2, 3, 4, 5}
	ws, err := m.Prepare(ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CompleteBatch(ws); err != nil {
		t.Fatal(err)
	}
	before, err := m.LookupAll(ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(ks) {
		t.Fatalf("prepared %d keys, lookup found %d", len(ks), len(before))
	}

	// Break the store: every Dump now fails to write its file.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err == nil {
		t.Fatal("flush over a broken store must fail")
	}

	// The parameters survived the failed flush in memory.
	after, err := m.LookupAll(ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if after[k] == nil {
			t.Fatalf("key %d lost by the failed flush", k)
		}
		for i, w := range after[k].Weights {
			if w != before[k].Weights[i] {
				t.Fatalf("key %d weight %d changed across failed flush: %v != %v", k, i, w, before[k].Weights[i])
			}
		}
	}

	// Heal the store: the retried flush dumps everything that was buffered.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush after healing the store: %v", err)
	}
	if got := m.Store().Len(); got != len(ks) {
		t.Fatalf("store holds %d parameters after recovered flush, want %d", got, len(ks))
	}
}

// TestEvictDumpFailureKeepsBuffer exercises the same bug on the Evict path:
// a failed dump must leave the demoted values in the dump buffer (reachable
// and retryable), not vanish them.
func TestEvictDumpFailureKeepsBuffer(t *testing.T) {
	dir := t.TempDir()
	m := failableNode(t, dir, 64, 64)

	ks := []keys.Key{10, 11, 12}
	ws, err := m.Prepare(ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CompleteBatch(ws); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict(ks); err == nil {
		t.Fatal("evict over a broken store must fail")
	}
	vals, err := m.LookupAll(ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if vals[k] == nil {
			t.Fatalf("key %d lost by the failed evict dump", k)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict(ks); err != nil {
		t.Fatalf("evict after healing the store: %v", err)
	}
	if got := m.Store().Len(); got != len(ks) {
		t.Fatalf("store holds %d parameters after recovered evict, want %d", got, len(ks))
	}
}
