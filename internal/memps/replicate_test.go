package memps

import (
	"testing"
	"time"

	"hps/internal/cluster"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/simtime"
)

// replCluster is an in-process replicated deployment: one MemPS per member,
// all sharing a single membership view and wired through a LocalTransport.
type replCluster struct {
	ms       *cluster.Membership
	lt       *cluster.LocalTransport
	nodes    map[int]*MemPS
	reps     map[int]*Replicator
	replicas int
}

func newReplCluster(t *testing.T, members []int) *replCluster {
	return newReplClusterR(t, members, 2)
}

func newReplClusterR(t *testing.T, members []int, replicas int) *replCluster {
	t.Helper()
	const dim = 4
	c := &replCluster{
		ms:       cluster.NewMembership(cluster.NewRing(members, 8)),
		lt:       cluster.NewLocalTransport(dim),
		nodes:    map[int]*MemPS{},
		reps:     map[int]*Replicator{},
		replicas: replicas,
	}
	for _, id := range members {
		c.addNode(t, id)
	}
	return c
}

func (c *replCluster) topo() cluster.Topology {
	return cluster.Topology{Nodes: 3, GPUsPerNode: 1, Members: c.ms, Replicas: c.replicas}
}

func (c *replCluster) addNode(t *testing.T, id int) *MemPS {
	t.Helper()
	clock := simtime.NewClock()
	m, err := New(Config{
		NodeID:     id,
		Dim:        4,
		Topology:   c.topo(),
		Transport:  c.lt,
		Store:      newStore(t, 4, clock),
		Clock:      clock,
		LRUEntries: 256,
		LFUEntries: 256,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.lt.Register(id, m)
	c.nodes[id] = m
	r := NewReplicator(m, c.lt, ReplicatorConfig{TransferPause: time.Microsecond})
	t.Cleanup(r.Close)
	c.reps[id] = r
	return m
}

// deltaBlock builds a push block of ones-deltas for ks.
func deltaBlock(ks []keys.Key) *ps.ValueBlock {
	blk := ps.GetBlock(4, nil)
	w := []float32{1, 1, 1, 1}
	for _, k := range ks {
		blk.AppendRow(k, w, w, 1)
	}
	return blk
}

// keysOwnedBy returns n test keys whose ring primary is node.
func keysOwnedBy(r *cluster.Ring, node, n int) []keys.Key {
	var ks []keys.Key
	for k := keys.Key(1); len(ks) < n; k++ {
		if r.Owner(k) == node {
			ks = append(ks, k)
		}
	}
	return ks
}

func value(t *testing.T, m *MemPS, k keys.Key) []float32 {
	t.Helper()
	vals, _ := m.LookupAll([]keys.Key{k})
	v, ok := vals[k]
	if !ok {
		t.Fatalf("node %d does not hold key %d", m.NodeID(), k)
	}
	return v.Weights
}

func sameWeights(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestForwardReplicatesToBackup proves the forward path end to end: a primary
// applies a push, forwards it, and the backup converges to the exact same
// value — including a key the backup had never seen, which it must initialize
// identically to the primary (node-independent keyed init).
func TestForwardReplicatesToBackup(t *testing.T) {
	c := newReplCluster(t, []int{0, 1, 2})
	ring := c.ms.Ring()
	ks := keysOwnedBy(ring, 0, 8)

	blk := deltaBlock(ks)
	defer ps.PutBlock(blk)
	if err := c.nodes[0].HandlePushBlock(blk); err != nil {
		t.Fatal(err)
	}
	c.reps[0].Forward(9, 1, blk)
	if !c.reps[0].Drain(time.Second) {
		t.Fatal("forward queue did not drain")
	}

	for _, k := range ks {
		b := ring.Backup(k)
		if b == 0 {
			t.Fatalf("key %d: backup is the primary", k)
		}
		if !sameWeights(value(t, c.nodes[0], k), value(t, c.nodes[b], k)) {
			t.Fatalf("key %d: backup %d diverged from primary", k, b)
		}
	}
	st := c.reps[0].Stats()
	if st.Forwarded == 0 || st.ForwardedKeys != int64(len(ks)) || st.Errors != 0 || st.Pending != 0 {
		t.Fatalf("forward stats: %+v", st)
	}

	// The symmetric failover path: a push applied by the backup (the primary
	// is down, the trainer repointed) flows back so a recovered primary is
	// not missing the failover-era deltas.
	k := ks[0]
	b := ring.Backup(k)
	fo := deltaBlock([]keys.Key{k})
	defer ps.PutBlock(fo)
	if err := c.nodes[b].HandlePushBlock(fo); err != nil {
		t.Fatal(err)
	}
	c.reps[b].Forward(9, 2, fo)
	if !c.reps[b].Drain(time.Second) {
		t.Fatal("failover forward did not drain")
	}
	if !sameWeights(value(t, c.nodes[0], k), value(t, c.nodes[b], k)) {
		t.Fatalf("key %d: primary missed the failover-era delta", k)
	}
}

// TestReconcileAfterJoin proves re-replication: after a member joins, the
// designated senders transfer exactly the keys whose replica set the joiner
// entered, and the joiner ends up holding them with the senders' values.
func TestReconcileAfterJoin(t *testing.T) {
	c := newReplCluster(t, []int{0, 1, 2})
	old := c.ms.Ring()

	// Seed every shard with applied, replicated state.
	for _, id := range []int{0, 1, 2} {
		ks := keysOwnedBy(old, id, 12)
		blk := deltaBlock(ks)
		if err := c.nodes[id].HandlePushBlock(blk); err != nil {
			t.Fatal(err)
		}
		c.reps[id].Forward(uint64(10+id), 1, blk)
		ps.PutBlock(blk)
	}
	for _, id := range []int{0, 1, 2} {
		if !c.reps[id].Drain(time.Second) {
			t.Fatal("seed forwards did not drain")
		}
	}

	joined := old.Join(3)
	c.addNode(t, 3)
	if !c.ms.Update(joined) {
		t.Fatal("join rejected")
	}
	total := 0
	for _, id := range []int{0, 1, 2} {
		for _, n := range c.reps[id].Reconcile(old, joined) {
			total += n
		}
	}
	if total == 0 {
		t.Fatal("reconcile transferred nothing to the joiner")
	}

	topo := c.topo()
	for _, id := range []int{0, 1, 2} {
		for _, k := range keysOwnedBy(old, id, 12) {
			if !topo.HoldsKey(k, 3) {
				continue
			}
			if !sameWeights(value(t, c.nodes[3], k), value(t, c.nodes[joined.Owner(k)], k)) {
				t.Fatalf("key %d: joiner's copy diverges from primary %d", k, joined.Owner(k))
			}
		}
	}
}

// TestReconcileHandoffOnLeave proves the graceful-leave path: a shard absent
// from the new ring hands off every row it holds to the new replica sets, so
// even with R=1 — where nobody else holds its rows and the surviving senders'
// rule could never cover them — a planned removal loses nothing.
func TestReconcileHandoffOnLeave(t *testing.T) {
	c := newReplClusterR(t, []int{0, 1, 2}, 1)
	old := c.ms.Ring()
	ks := keysOwnedBy(old, 2, 12)

	blk := deltaBlock(ks)
	defer ps.PutBlock(blk)
	if err := c.nodes[2].HandlePushBlock(blk); err != nil {
		t.Fatal(err)
	}
	want := make(map[keys.Key][]float32, len(ks))
	for _, k := range ks {
		want[k] = value(t, c.nodes[2], k)
	}

	left := old.Leave(2)
	if !c.ms.Update(left) {
		t.Fatal("leave rejected")
	}
	moved := 0
	for _, n := range c.reps[2].Reconcile(old, left) {
		moved += n
	}
	if moved == 0 {
		t.Fatal("leaver handed off nothing")
	}
	for _, k := range ks {
		// Note: the leaver never replicated these rows (no Forward calls), so
		// the survivors hold them only because of the handoff.
		if !sameWeights(value(t, c.nodes[left.Owner(k)], k), want[k]) {
			t.Fatalf("key %d: new primary %d missing the leaver's value", k, left.Owner(k))
		}
	}
}

// TestImportBlockSkipsPresent proves the set-semantics import never rolls
// back a value the shard already holds: only holes are filled, which is what
// makes a state transfer safely reorderable against live replication.
func TestImportBlockSkipsPresent(t *testing.T) {
	c := newReplCluster(t, []int{0, 1, 2})
	ring := c.ms.Ring()
	ks := keysOwnedBy(ring, 0, 2)
	held, hole := ks[0], ks[1]

	blk := deltaBlock([]keys.Key{held})
	defer ps.PutBlock(blk)
	if err := c.nodes[0].HandlePushBlock(blk); err != nil {
		t.Fatal(err)
	}
	before := value(t, c.nodes[0], held)

	stale := ps.GetBlock(4, nil)
	defer ps.PutBlock(stale)
	w := []float32{99, 99, 99, 99}
	stale.AppendRow(held, w, w, 5)
	stale.AppendRow(hole, w, w, 5)
	if got := c.nodes[0].ImportBlock(stale); got != 1 {
		t.Fatalf("accepted %d rows, want 1 (the hole)", got)
	}
	if !sameWeights(value(t, c.nodes[0], held), before) {
		t.Fatal("import rolled back a held value")
	}
	if !sameWeights(value(t, c.nodes[0], hole), w) {
		t.Fatal("import did not fill the hole")
	}
}
