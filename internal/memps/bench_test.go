package memps

import (
	"testing"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/hw"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

func benchMemPS(b *testing.B, lru, lfu int) *MemPS {
	b.Helper()
	ssd := hw.SSD{
		ReadBandwidthBytesPerSec:  6 << 30,
		WriteBandwidthBytesPerSec: 4 << 30,
		ReadLatency:               90 * time.Microsecond,
		WriteLatency:              25 * time.Microsecond,
		BlockBytes:                4096,
	}
	dev, err := blockio.NewDevice(b.TempDir(), ssd, simtime.NewClock())
	if err != nil {
		b.Fatal(err)
	}
	store, err := ssdps.Open(dev, ssdps.Config{Dim: 8, ParamsPerFile: 256})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(Config{
		NodeID:     0,
		Dim:        8,
		Topology:   cluster.Topology{Nodes: 1, GPUsPerNode: 4},
		Store:      store,
		Clock:      simtime.NewClock(),
		LRUEntries: lru,
		LFUEntries: lfu,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchKeys(n int) []keys.Key {
	out := make([]keys.Key, n)
	for i := range out {
		out[i] = keys.Key(keys.Mix64(uint64(i)))
	}
	return out
}

// BenchmarkBatchPullHot measures the MEM-PS hot path: assembling and pinning
// a batch working set that is fully cache-resident.
func BenchmarkBatchPullHot(b *testing.B) {
	m := benchMemPS(b, 4096, 4096)
	working := benchKeys(1024)
	// Warm the cache.
	ws, err := m.Prepare(working)
	if err != nil {
		b.Fatal(err)
	}
	m.CompleteBatch(ws)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := m.Prepare(working)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.CompleteBatch(ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPullHotBlock measures the batched form of the hot pull: the
// same fully cache-resident working set assembled into a reused ValueBlock
// (PrepareInto) instead of a freshly allocated map of cloned values — the
// path the trainer's pull stage actually runs, including its pre-deduplicated
// sorted key union (what batch.Keys hands the pull stage).
func BenchmarkBatchPullHotBlock(b *testing.B) {
	m := benchMemPS(b, 4096, 4096)
	working := keys.Dedup(benchKeys(1024))
	blk := ps.NewValueBlock(8)
	ws, err := m.PrepareInto(working, blk)
	if err != nil {
		b.Fatal(err)
	}
	m.CompleteBatch(ws)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := m.PrepareInto(working, blk)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.CompleteBatch(ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPullSSD measures the cold path: every batch pull misses the
// cache and reloads its working set from SSD-PS parameter files.
func BenchmarkBatchPullSSD(b *testing.B) {
	m := benchMemPS(b, 2048, 2048)
	working := benchKeys(1024)
	// Materialize the parameters on disk, then evict them from memory.
	ws, err := m.Prepare(working)
	if err != nil {
		b.Fatal(err)
	}
	m.CompleteBatch(ws)
	if _, err := m.Evict(nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := m.Prepare(working)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.CompleteBatch(ws); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := m.Evict(nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
