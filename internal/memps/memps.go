// Package memps implements the CPU main-memory parameter server (Section 5,
// Appendix D): the middle tier of the hierarchy.
//
// For every training batch the MEM-PS identifies the referenced parameters,
// pulls the locally-owned ones from its cache or its SSD-PS, pulls the
// remotely-owned ones from the MEM-PS of their owning nodes over the network,
// pins the working parameters in memory while the batch is in flight, applies
// the updates collected from the HBM-PS afterwards, and evicts infrequently
// used parameters to the SSD-PS when memory runs short. A combined LRU+LFU
// cache keeps the frequently used parameters resident to reduce SSD I/O.
package memps

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"hps/internal/cache"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/gpu"
	"hps/internal/interconnect"
	"hps/internal/keys"
	"hps/internal/ps"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// Config configures a MEM-PS instance (one per node).
type Config struct {
	// NodeID identifies this node within the topology.
	NodeID int
	// Dim is the embedding dimension of sparse parameters.
	Dim int
	// Topology is the cluster shape; parameters are owned by node
	// Topology.NodeOf(key).
	Topology cluster.Topology
	// Transport reaches the MEM-PS of other nodes; nil is allowed for a
	// single-node deployment.
	Transport cluster.Transport
	// Store is the local SSD-PS shard. It must not be nil.
	Store *ssdps.Store
	// Fabric charges network time for remote pulls; nil disables accounting.
	Fabric *interconnect.Fabric
	// Clock is the node's simulated-time clock; nil disables accounting.
	Clock *simtime.Clock
	// MemoryBudgetBytes bounds the parameter cache size. When zero,
	// LRUEntries/LFUEntries must be set instead.
	MemoryBudgetBytes int64
	// LRUEntries / LFUEntries directly set the cache level capacities,
	// overriding MemoryBudgetBytes when non-zero.
	LRUEntries, LFUEntries int
	// DumpBatchSize is how many evicted parameters accumulate before they are
	// written to the SSD-PS as new files; 0 uses the store's file size.
	DumpBatchSize int
	// Seed seeds the initializer for never-before-seen parameters.
	Seed int64
}

// Stats summarizes the work a MEM-PS has done.
type Stats struct {
	// BatchesPrepared counts Prepare calls.
	BatchesPrepared int64
	// LocalKeys / RemoteKeys count working parameters by ownership.
	LocalKeys, RemoteKeys int64
	// CacheHits / CacheMisses count local lookups served by / missing the cache.
	CacheHits, CacheMisses int64
	// SSDLoads counts parameters loaded from the SSD-PS.
	SSDLoads int64
	// NewParams counts parameters created on first reference.
	NewParams int64
	// Dumped counts parameters written to the SSD-PS.
	Dumped int64
	// Imported counts parameters installed by key-range state transfers
	// (re-replication / resharding).
	Imported int64
	// RemotePulls counts remote pull RPCs issued.
	RemotePulls int64
	// LocalPullTime / RemotePullTime are cumulative modelled times of the two
	// pull paths (Fig 4b).
	LocalPullTime, RemotePullTime time.Duration
}

// PullStats describes a single Prepare call.
type PullStats struct {
	// LocalKeys and RemoteKeys count the working parameters by ownership.
	LocalKeys, RemoteKeys int
	// CacheHits and CacheMisses count local cache outcomes.
	CacheHits, CacheMisses int
	// SSDHits counts local misses served by the SSD-PS.
	SSDHits int
	// NewParams counts local parameters created on first reference.
	NewParams int
	// LocalTime and RemoteTime are the modelled durations of the two pull
	// paths; they run in parallel so the batch pays max(LocalTime, RemoteTime).
	LocalTime, RemoteTime time.Duration
}

// WorkingSet is the prepared parameter set of one batch, ready to be
// partitioned across the node's GPUs.
type WorkingSet struct {
	// Values holds a private copy of every working parameter (local and
	// remote), keyed by parameter key. It is nil when the working set was
	// assembled into a caller-owned ValueBlock (PrepareInto), which carries
	// the values instead.
	Values map[keys.Key]*embedding.Value
	// LocalKeys are the working parameters owned (and pinned) by this node.
	LocalKeys []keys.Key
	// RemoteKeys are the working parameters owned by other nodes.
	RemoteKeys []keys.Key
	// Stats describes how the working set was assembled.
	Stats PullStats
}

// MemPS is the main-memory parameter server of one node.
// It is safe for concurrent use. It implements ps.Tier: Pull assembles an
// unpinned working set (local cache/SSD plus remote owners), Push merges
// collected deltas into the owned shard, and Evict demotes parameters to the
// SSD-PS below.
type MemPS struct {
	cfg Config
	rec ps.Recorder

	mu          sync.Mutex
	cache       *cache.Combined[*embedding.Value]
	pendingDump map[keys.Key]*embedding.Value
	seed        int64 // keyed-init seed: same (seed, key) -> same initial value
	stats       Stats

	// applyBlock/ApplyUpdates scratch, reused across batches (safe: both hold m.mu).
	applyOrder []int
	applyMiss  []int
	applyLoad  []keys.Key
	applyOwned []keys.Key
}

var (
	_ ps.Tier                      = (*MemPS)(nil)
	_ ps.BlockPuller               = (*MemPS)(nil)
	_ ps.BlockPusher               = (*MemPS)(nil)
	_ cluster.BlockPullWireHandler = (*MemPS)(nil)
)

// New constructs a MEM-PS. It validates the configuration.
func New(cfg Config) (*MemPS, error) {
	if cfg.Store == nil {
		return nil, errors.New("memps: nil SSD-PS store")
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("memps: invalid embedding dim %d", cfg.Dim)
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topology.Nodes > 1 && cfg.Transport == nil {
		return nil, errors.New("memps: multi-node topology requires a transport")
	}
	lru, lfu := cfg.LRUEntries, cfg.LFUEntries
	if lru <= 0 || lfu <= 0 {
		perEntry := gpu.BytesPerEntry(cfg.Dim)
		entries := int(cfg.MemoryBudgetBytes / perEntry)
		if entries < 16 {
			entries = 16
		}
		// The LRU holds the working/pinned set; the LFU holds the hot set.
		if lru <= 0 {
			lru = entries / 2
		}
		if lfu <= 0 {
			lfu = entries - entries/2
		}
	}
	if cfg.DumpBatchSize <= 0 {
		cfg.DumpBatchSize = 256
	}
	seed := cfg.Seed ^ int64(cfg.NodeID)<<32
	if cfg.Topology.Replicas > 1 {
		// Replicated deployments need a node-INDEPENDENT keyed-init seed: a
		// backup that first-references a key while applying a replicated
		// delta must materialize the exact initial value its primary did, or
		// the replica diverges by the difference of two random inits.
		// Unreplicated deployments keep the per-node decorrelation (and their
		// historical trajectories).
		seed = cfg.Seed
	}
	m := &MemPS{
		cfg:         cfg,
		pendingDump: make(map[keys.Key]*embedding.Value),
		seed:        seed,
	}
	m.cache = cache.NewCombined[*embedding.Value](lru, lfu, func(k uint64, v *embedding.Value) {
		// Fully evicted from memory: buffer for a batched SSD dump.
		m.pendingDump[keys.Key(k)] = v
	})
	return m, nil
}

// NodeID returns this MEM-PS's node id.
func (m *MemPS) NodeID() int { return m.cfg.NodeID }

// Dim returns the embedding dimension.
func (m *MemPS) Dim() int { return m.cfg.Dim }

// ownsKey reports whether this node holds the parameter shard containing k —
// as its primary, or (in a replicated deployment) as one of its backups. A
// backup both applies the deltas its primary forwards and answers reads for
// the keys it replicates, which is what makes promotion a pure membership
// change.
func (m *MemPS) ownsKey(k keys.Key) bool {
	return m.cfg.Topology.HoldsKey(k, m.cfg.NodeID)
}

// localLookup returns the authoritative in-memory value for a locally-owned
// key, consulting (in order) the cache, the pending-dump buffer and the
// SSD-PS, creating a fresh value on first reference. The caller must hold m.mu.
func (m *MemPS) localLookup(k keys.Key, loaded map[keys.Key]*embedding.Value, st *PullStats) *embedding.Value {
	if v, ok := m.cache.Get(uint64(k)); ok {
		if st != nil {
			st.CacheHits++
		}
		return v
	}
	if st != nil {
		st.CacheMisses++
	}
	return m.resolveMiss(k, loaded, st)
}

// resolveMiss is localLookup's cache-miss tail: the pending-dump buffer, the
// batch-loaded SSD values, then first-reference creation. The resolved value
// enters the cache. The caller must hold m.mu and have counted the miss.
func (m *MemPS) resolveMiss(k keys.Key, loaded map[keys.Key]*embedding.Value, st *PullStats) *embedding.Value {
	if v, ok := m.pendingDump[k]; ok {
		// Not yet written to SSD; pull it back into the cache.
		delete(m.pendingDump, k)
		m.cache.Put(uint64(k), v)
		return v
	}
	if v, ok := loaded[k]; ok {
		if st != nil {
			st.SSDHits++
		}
		m.cache.Put(uint64(k), v)
		return v
	}
	v := embedding.NewKeyedValue(m.cfg.Dim, m.seed, uint64(k))
	if st != nil {
		st.NewParams++
	}
	m.cache.Put(uint64(k), v)
	return v
}

// Prepare assembles the working set for a batch whose referenced parameter
// keys are given (Algorithm 1 lines 3-4). Local parameters are pinned in the
// cache until CompleteBatch is called with the returned working set.
func (m *MemPS) Prepare(working []keys.Key) (*WorkingSet, error) {
	return m.assemble(working, true, nil)
}

// PrepareInto is Prepare's batched form: the working values land in dst (one
// flat row per unique key, in sorted key order) instead of a freshly
// allocated map, so a pipelined trainer reusing its blocks assembles batches
// without per-value allocation. The returned WorkingSet carries the key
// partition, pinning state and pull statistics; its Values map is nil.
func (m *MemPS) PrepareInto(working []keys.Key, dst *ps.ValueBlock) (*WorkingSet, error) {
	if dst == nil {
		return nil, errors.New("memps: PrepareInto needs a destination block")
	}
	return m.assemble(working, true, dst)
}

// Name implements ps.Tier.
func (m *MemPS) Name() string { return "mem-ps" }

// TierStats implements ps.Tier.
func (m *MemPS) TierStats() ps.Stats { return m.rec.TierStats() }

// Pull implements ps.Tier: it assembles current values for an arbitrary key
// set — local keys from the cache, the dump buffer or the SSD-PS (created on
// first reference), remote keys from their owning nodes — without pinning
// anything. Training batches use Prepare instead, which additionally pins.
func (m *MemPS) Pull(req ps.PullRequest) (ps.Result, error) {
	ws, err := m.assemble(req.Keys, false, nil)
	if err != nil {
		return nil, err
	}
	return ps.Result(ws.Values), nil
}

// PullInto implements ps.BlockPuller: Pull into a caller-owned flat block,
// in request-key order. The batched assemble path produces sorted rows, so a
// request that is not already sorted-unique (never the case on the hot path)
// goes through the map pull and is scattered back into request order — rows
// bound positionally to the request (the wire protocol) must never come back
// reordered.
func (m *MemPS) PullInto(req ps.PullRequest, dst *ps.ValueBlock) error {
	if dst == nil {
		return errors.New("memps: PullInto needs a destination block")
	}
	if !keys.SortedUnique(req.Keys) {
		res, err := m.Pull(req)
		if err != nil {
			return err
		}
		ps.FillFromPull(dst, m.cfg.Dim, req.Keys, res)
		return nil
	}
	_, err := m.assemble(req.Keys, false, dst)
	return err
}

// Push implements ps.Tier: it merges per-key deltas into the authoritative
// copies of the parameters this node owns (deltas for other nodes' shards
// are ignored; their owners apply them).
func (m *MemPS) Push(req ps.PushRequest) error {
	return m.ApplyUpdates(req.Deltas)
}

// PushBlock implements ps.BlockPusher: Push over the block's parallel
// key/delta rows. Rows are applied in sorted key order (like ApplyUpdates);
// duplicate keys accumulate.
func (m *MemPS) PushBlock(req ps.PushBlockRequest) error {
	return m.applyBlock(req.Block)
}

// assemble is the shared batched-pull path behind Prepare, Pull and their
// block-based variants. With dst == nil the values are cloned into
// ws.Values; otherwise they are copied into dst's flat rows (sorted
// unique-key order) and ws.Values stays nil.
func (m *MemPS) assemble(working []keys.Key, pin bool, dst *ps.ValueBlock) (*WorkingSet, error) {
	// A batch's key union arrives already sorted and unique (batch.Keys went
	// through Dedup upstream); only copy-and-sort arbitrary requests.
	if !keys.SortedUnique(working) {
		working = keys.Dedup(append([]keys.Key(nil), working...))
	}
	ws := &WorkingSet{}
	if dst != nil {
		dst.Reset(m.cfg.Dim, working)
	} else {
		ws.Values = make(map[keys.Key]*embedding.Value, len(working))
	}

	var local, remote []keys.Key
	for _, k := range working {
		if m.ownsKey(k) {
			local = append(local, k)
		} else {
			remote = append(remote, k)
		}
	}
	ws.LocalKeys = local
	ws.RemoteKeys = remote
	ws.Stats.LocalKeys = len(local)
	ws.Stats.RemoteKeys = len(remote)

	// Remote pulls go out first (they overlap the local SSD reads in the real
	// system; here we issue them concurrently and take both durations). When
	// assembling into a block over a block-capable transport, each peer's
	// partition arrives as a flat sub-block (one frame, no per-value
	// decoding) and is scattered into dst's rows.
	type remoteResult struct {
		res   cluster.PullResult
		sub   *ps.ValueBlock
		bytes int64
		err   error
	}
	bt, blockRemote := m.cfg.Transport.(cluster.BlockTransport)
	blockRemote = blockRemote && dst != nil
	remoteByNode := m.cfg.Topology.SplitByNode(remote)
	resultCh := make(chan remoteResult, m.cfg.Topology.Nodes)
	inFlight := 0
	for nodeID, ks := range remoteByNode {
		if nodeID == m.cfg.NodeID || len(ks) == 0 {
			continue
		}
		inFlight++
		go func(nodeID int, ks []keys.Key) {
			if blockRemote {
				sub := ps.GetBlock(m.cfg.Dim, ks)
				bytes, err := bt.PullBlock(nodeID, ks, sub)
				resultCh <- remoteResult{sub: sub, bytes: bytes, err: err}
				return
			}
			res, bytes, err := m.cfg.Transport.Pull(nodeID, ks)
			resultCh <- remoteResult{res: res, bytes: bytes, err: err}
		}(nodeID, ks)
	}

	// Local path: cache, pending dumps, SSD. One cache lookup per key: hits
	// are emitted on the spot, misses are collected and resolved after the
	// (single, batched) SSD load — the steady hot-pull case touches the cache
	// exactly once per key.
	emit := func(k keys.Key, v *embedding.Value) {
		if pin {
			m.cache.Pin(uint64(k))
		}
		if dst != nil {
			if i, ok := dst.Row(k); ok {
				dst.Set(i, v)
			}
		} else {
			ws.Values[k] = v.Clone()
		}
	}
	m.mu.Lock()
	var misses, toLoad []keys.Key
	for _, k := range local {
		if v, ok := m.cache.Get(uint64(k)); ok {
			ws.Stats.CacheHits++
			emit(k, v)
			continue
		}
		ws.Stats.CacheMisses++
		misses = append(misses, k)
		if _, pending := m.pendingDump[k]; !pending {
			toLoad = append(toLoad, k)
		}
	}
	loaded := map[keys.Key]*embedding.Value{}
	if len(toLoad) > 0 {
		var err error
		loaded, ws.Stats.LocalTime, err = m.cfg.Store.LoadTimed(toLoad)
		if err != nil {
			if pin {
				// Withdraw the pins already taken for cache hits (local minus
				// misses, both in working order): a failed Prepare must not
				// leak pinned, unevictable entries — CompleteBatch is never
				// called for it.
				mi := 0
				for _, k := range local {
					if mi < len(misses) && misses[mi] == k {
						mi++
						continue
					}
					m.cache.Unpin(uint64(k))
				}
			}
			m.mu.Unlock()
			return nil, fmt.Errorf("memps: load local parameters: %w", err)
		}
	}
	for _, k := range misses {
		emit(k, m.resolveMiss(k, loaded, &ws.Stats))
	}
	m.stats.BatchesPrepared++
	m.stats.LocalKeys += int64(len(local))
	m.stats.RemoteKeys += int64(len(remote))
	m.stats.CacheHits += int64(ws.Stats.CacheHits)
	m.stats.CacheMisses += int64(ws.Stats.CacheMisses)
	m.stats.SSDLoads += int64(ws.Stats.SSDHits)
	m.stats.NewParams += int64(ws.Stats.NewParams)
	m.stats.LocalPullTime += ws.Stats.LocalTime
	m.mu.Unlock()

	// Collect remote results.
	var firstErr error
	for i := 0; i < inFlight; i++ {
		r := <-resultCh
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			ps.PutBlock(r.sub)
			continue
		}
		var d time.Duration
		if m.cfg.Fabric != nil {
			d = m.cfg.Fabric.Ethernet(r.bytes)
		}
		ws.Stats.RemoteTime += d
		m.mu.Lock()
		m.stats.RemotePulls++
		m.stats.RemotePullTime += d
		m.mu.Unlock()
		if r.sub != nil {
			dst.ScatterRows(r.sub) // drops rows the peer was never asked for
			ps.PutBlock(r.sub)
			continue
		}
		if dst != nil {
			dst.ScatterResult(ps.Result(r.res))
			continue
		}
		for k, v := range r.res {
			ws.Values[k] = v.Clone()
		}
	}
	if firstErr != nil {
		if pin {
			// Same invariant as the SSD-load failure above: a failed Prepare
			// must not leak pins — by now every local key has been pinned.
			m.mu.Lock()
			for _, k := range local {
				m.cache.Unpin(uint64(k))
			}
			m.mu.Unlock()
		}
		return nil, fmt.Errorf("memps: remote pull: %w", firstErr)
	}
	// Any remote key the owner failed to return (should not happen) gets a
	// fresh value so training can proceed.
	for _, k := range remote {
		missing := false
		if dst != nil {
			i, _ := dst.Row(k) // remote keys are rows of the working set
			missing = !dst.Present[i]
		} else {
			_, ok := ws.Values[k]
			missing = !ok
		}
		if missing {
			v := embedding.NewKeyedValue(m.cfg.Dim, m.seed, uint64(k))
			if dst != nil {
				if i, ok := dst.Row(k); ok {
					dst.Set(i, v)
				}
			} else {
				ws.Values[k] = v
			}
		}
	}
	// The local and remote paths overlap, so the batch pays the slower one.
	pullTime := ws.Stats.LocalTime
	if ws.Stats.RemoteTime > pullTime {
		pullTime = ws.Stats.RemoteTime
	}
	// Only the locally-served keys count toward this tier instance's uniform
	// statistics: the remote keys are recorded by the MEM-PS that serves
	// them (HandlePull), so cluster-wide aggregates count each key once.
	m.rec.RecordPull(len(local), pullTime)
	return ws, nil
}

// loadUncached batch-loads from the SSD-PS those of ks that are neither in
// the cache nor sitting in the pending-dump buffer — the shared cold-load
// pass of every serve/apply path. The caller must hold m.mu.
func (m *MemPS) loadUncached(ks []keys.Key) (map[keys.Key]*embedding.Value, time.Duration, error) {
	var toLoad []keys.Key
	for _, k := range ks {
		if !m.cache.Contains(uint64(k)) {
			if _, pending := m.pendingDump[k]; !pending {
				toLoad = append(toLoad, k)
			}
		}
	}
	if len(toLoad) == 0 {
		return map[keys.Key]*embedding.Value{}, 0, nil
	}
	return m.cfg.Store.LoadTimed(keys.Dedup(toLoad))
}

// servePull is the shared serving prologue of every pull-RPC handler: it
// verifies ownership of ks, batch-loads the cold parameters from the SSD-PS,
// resolves each key to its authoritative value (materializing first
// references) under m.mu, and hands them to emit in request order. Served
// parameters enter the cache (they are now "recently used") but are not
// pinned. The returned duration is the SSD load time; the caller records the
// serve in the tier statistics with its own served-key count (the map path
// counts duplicate request keys once).
func (m *MemPS) servePull(ks []keys.Key, emit func(i int, k keys.Key, v *embedding.Value)) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, k := range ks {
		if !m.ownsKey(k) {
			return 0, fmt.Errorf("memps: node %d asked for key %d owned by node %d",
				m.cfg.NodeID, k, m.cfg.Topology.NodeOf(k))
		}
	}
	loaded, loadTime, err := m.loadUncached(ks)
	if err != nil {
		return 0, fmt.Errorf("memps: handle pull: %w", err)
	}
	for i, k := range ks {
		emit(i, k, m.localLookup(k, loaded, nil))
	}
	return loadTime, nil
}

// HandlePull implements cluster.PullHandler: it serves parameter pulls from
// other nodes (or a multi-process driver) for the shard this node owns.
func (m *MemPS) HandlePull(ks []keys.Key) (cluster.PullResult, error) {
	out := make(cluster.PullResult, len(ks))
	loadTime, err := m.servePull(ks, func(_ int, k keys.Key, v *embedding.Value) {
		out[k] = v.Clone()
	})
	if err != nil {
		return nil, err
	}
	m.rec.RecordPull(len(out), loadTime)
	return out, nil
}

// HandlePush implements cluster.PushHandler: it merges deltas pushed by a
// remote driver or peer node into the shard this node owns, exactly like the
// in-process push path. A remote shard never sees CompleteBatch, so the push
// — which arrives once per training batch — also runs the batch-completion
// housekeeping (dump full eviction buffers, compact the SSD-PS).
func (m *MemPS) HandlePush(deltas map[keys.Key]*embedding.Value) error {
	if err := m.ApplyUpdates(deltas); err != nil {
		return err
	}
	return m.Maintain()
}

// LookupAll returns copies of the current values of the locally-owned keys
// this node has seen, without materializing missing ones. Cache and
// dump-buffer hits are cloned under the lock; the remaining misses go to the
// SSD-PS as one batched load. The error is always nil here; the signature
// matches the trainer's memService contract, whose remote implementation
// can fail.
func (m *MemPS) LookupAll(ks []keys.Key) (map[keys.Key]*embedding.Value, error) {
	out := make(map[keys.Key]*embedding.Value, len(ks))
	var toLoad []keys.Key
	m.mu.Lock()
	for _, k := range ks {
		if !m.ownsKey(k) {
			continue
		}
		if v, ok := m.cache.Get(uint64(k)); ok {
			out[k] = v.Clone()
		} else if v, ok := m.pendingDump[k]; ok {
			out[k] = v.Clone()
		} else {
			toLoad = append(toLoad, k)
		}
	}
	m.mu.Unlock()
	if len(toLoad) > 0 {
		// Outside the lock: a concurrently evicted key is still durable on
		// the SSD, and Load returns private decoded copies.
		loaded, err := m.cfg.Store.Load(toLoad)
		if err != nil {
			return out, nil // matching Lookup: unreadable keys read as absent
		}
		for k, v := range loaded {
			out[k] = v
		}
	}
	return out, nil
}

// HandleLookup implements cluster.LookupHandler: it reads the current values
// of the requested locally-owned keys without materializing missing ones —
// the evaluation-time contract, where a never-trained feature must stay
// absent rather than spring into existence with random weights.
func (m *MemPS) HandleLookup(ks []keys.Key) (cluster.PullResult, error) {
	out, err := m.LookupAll(ks)
	return cluster.PullResult(out), err
}

// ApplyUpdates merges per-parameter deltas (weight/optimizer-state deltas and
// reference-count increments accumulated by the HBM-PS across all GPUs and
// nodes) into the authoritative copies of the parameters this node owns.
// Deltas for parameters owned by other nodes are ignored — their owners apply
// them (the synchronization already delivered the same deltas everywhere).
func (m *MemPS) ApplyUpdates(deltas map[keys.Key]*embedding.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	owned := m.applyOwned[:0]
	for k := range deltas {
		if m.ownsKey(k) {
			owned = append(owned, k)
		}
	}
	m.applyOwned = owned
	loaded, loadTime, err := m.loadUncached(owned)
	if err != nil {
		return fmt.Errorf("memps: apply updates: %w", err)
	}
	applied := ps.ApplyDeltas(deltas, func(k keys.Key, delta *embedding.Value) bool {
		if !m.ownsKey(k) {
			return false
		}
		m.localLookup(k, loaded, nil).Add(delta)
		return true
	})
	m.rec.RecordPush(applied, loadTime)
	return nil
}

// applyBlock is ApplyUpdates over a flat delta block: the owned rows are
// merged into the authoritative copies in sorted key order, loading cold
// parameters from the SSD-PS in one batched pass first. The selection and
// miss scratch lives on the MemPS (it runs under m.mu), and each row costs
// exactly one cache probe: hits merge on the spot, misses defer to the
// batched load — in the steady hot-push state the whole apply allocates
// nothing.
func (m *MemPS) applyBlock(blk *ps.ValueBlock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	order := m.applyOrder[:0]
	sorted := true
	var prev keys.Key
	ks, present := blk.Keys, blk.Present
	for i, k := range ks {
		if present[i] && m.ownsKey(k) {
			if len(order) > 0 && k < prev {
				sorted = false
			}
			prev = k
			order = append(order, i)
		}
	}
	if !sorted {
		// Push blocks arrive in sorted key order (the merged working set is
		// sorted); only an arbitrary caller pays for the sort.
		slices.SortFunc(order, func(a, b int) int { return cmp.Compare(blk.Keys[a], blk.Keys[b]) })
	}
	m.applyOrder = order
	missIdx := m.applyMiss[:0]
	toLoad := m.applyLoad[:0]
	for _, i := range order {
		k := ks[i]
		// GetApply: a write-path read — the pull that assembled this working
		// set already refreshed recency and visit counts for these keys.
		if v, ok := m.cache.GetApply(uint64(k)); ok {
			v.AddFlat(blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i])
			continue
		}
		missIdx = append(missIdx, i)
		if _, pending := m.pendingDump[k]; !pending {
			// order is sorted here, so duplicate keys are adjacent.
			if len(toLoad) == 0 || toLoad[len(toLoad)-1] != k {
				toLoad = append(toLoad, k)
			}
		}
	}
	m.applyMiss = missIdx
	m.applyLoad = toLoad
	var loaded map[keys.Key]*embedding.Value // nil reads as empty in resolveMiss
	var loadTime time.Duration
	if len(toLoad) > 0 {
		var err error
		loaded, loadTime, err = m.cfg.Store.LoadTimed(toLoad)
		if err != nil {
			return fmt.Errorf("memps: apply updates: %w", err)
		}
	}
	for _, i := range missIdx {
		k := blk.Keys[i]
		// localLookup rather than resolveMiss: an earlier duplicate row may
		// have resolved k into the cache already.
		m.localLookup(k, loaded, nil).AddFlat(blk.WeightsRow(i), blk.G2Row(i), blk.Freq[i])
	}
	m.rec.RecordPush(len(order), loadTime)
	return nil
}

// PushBlockPair applies a pre-merged pair of delta blocks to the owned
// shard — the in-process push path for two-node topologies. mk lists the
// merged keys this shard owns (sorted, unique — the caller partitioned the
// key-wise merge of a and b by owner); sa[x] and sb[x] are key mk[x]'s row
// in a and b, -1 when that node did not touch it. It is equivalent to
// merging the blocks into a global block and applying it through PushBlock,
// without materializing the merged slabs: a key both nodes updated simply
// applies both source rows to the same value (the floating-point rounding
// can differ from the summed-first order by an ulp; both orders are
// deterministic). Ownership of mk is the caller's contract and is not
// re-checked.
func (m *MemPS) PushBlockPair(a, b *ps.ValueBlock, mk []keys.Key, sa, sb []int32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	missIdx := m.applyMiss[:0]
	toLoad := m.applyLoad[:0]
	for x, k := range mk {
		// GetApply: a write-path read — see applyBlock.
		if v, ok := m.cache.GetApply(uint64(k)); ok {
			if ai := sa[x]; ai >= 0 {
				v.AddFlat(a.WeightsRow(int(ai)), a.G2Row(int(ai)), a.Freq[ai])
			}
			if bi := sb[x]; bi >= 0 {
				v.AddFlat(b.WeightsRow(int(bi)), b.G2Row(int(bi)), b.Freq[bi])
			}
			continue
		}
		missIdx = append(missIdx, x)
		if _, pending := m.pendingDump[k]; !pending {
			// mk is sorted unique, so no duplicate-key dedup is needed here.
			toLoad = append(toLoad, k)
		}
	}
	m.applyMiss = missIdx
	m.applyLoad = toLoad
	var loaded map[keys.Key]*embedding.Value
	var loadTime time.Duration
	if len(toLoad) > 0 {
		var err error
		loaded, loadTime, err = m.cfg.Store.LoadTimed(toLoad)
		if err != nil {
			return fmt.Errorf("memps: apply updates: %w", err)
		}
	}
	for _, x := range missIdx {
		v := m.localLookup(mk[x], loaded, nil)
		if ai := sa[x]; ai >= 0 {
			v.AddFlat(a.WeightsRow(int(ai)), a.G2Row(int(ai)), a.Freq[ai])
		}
		if bi := sb[x]; bi >= 0 {
			v.AddFlat(b.WeightsRow(int(bi)), b.G2Row(int(bi)), b.Freq[bi])
		}
	}
	m.rec.RecordPush(len(mk), loadTime)
	return nil
}

// HandlePullBlock implements cluster.BlockPullHandler: HandlePull's contract
// — serve the shard this node owns, materializing first references — with the
// values written straight into dst's flat rows (request-key order) instead of
// a per-value map.
func (m *MemPS) HandlePullBlock(ks []keys.Key, dst *ps.ValueBlock) error {
	dst.Reset(m.cfg.Dim, ks)
	loadTime, err := m.servePull(ks, func(i int, _ keys.Key, v *embedding.Value) {
		dst.Set(i, v)
	})
	if err != nil {
		return err
	}
	m.rec.RecordPull(len(ks), loadTime)
	return nil
}

// HandlePullBlockWire implements cluster.BlockPullWireHandler —
// HandlePullBlock's contract with the reply encoded straight into the
// outgoing frame: each served value's rows are copied (or quantized, when the
// connection negotiated a reduced precision) exactly once, from the cache's
// own storage into dst's wire bytes, under the MEM-PS lock. Hot keys (the
// steady state, where the cache holds the whole working set) therefore cross
// neither an intermediate embedding.Value nor an intermediate ValueBlock on
// their way to the socket.
func (m *MemPS) HandlePullBlockWire(ks []keys.Key, dst []byte, prec ps.Precision) ([]byte, error) {
	out := ps.AppendWireHeaderPrecision(dst, m.cfg.Dim, len(ks), prec)
	loadTime, err := m.servePull(ks, func(_ int, _ keys.Key, v *embedding.Value) {
		out = ps.AppendWireRowPrecision(out, true, v.Freq, v.Weights, v.G2Sum, prec)
	})
	if err != nil {
		return out, err // the caller discards the content, not the buffer
	}
	m.rec.RecordPull(len(ks), loadTime)
	return out, nil
}

// HandlePushBlock implements cluster.BlockPushHandler: the block-frame form
// of HandlePush. Like HandlePush it runs the batch-completion housekeeping —
// the push RPC arrives once per training batch on a shard server.
func (m *MemPS) HandlePushBlock(blk *ps.ValueBlock) error {
	if err := m.applyBlock(blk); err != nil {
		return err
	}
	return m.Maintain()
}

// Evict implements ps.Tier: it demotes the given locally-owned, unpinned
// parameters from the memory cache to the SSD-PS, flushing the dump buffer
// along the way. A nil slice demotes everything (equivalent to Flush). It
// returns how many parameters left main memory for the SSD.
func (m *MemPS) Evict(ks []keys.Key) (int, error) {
	if ks == nil {
		return m.flushAll()
	}
	// The dump runs under m.mu: once keys leave the cache and the dump
	// buffer they are unreachable until the SSD write completes, and a
	// concurrent lookup in that window would silently re-initialize a
	// trained parameter.
	m.mu.Lock()
	defer m.mu.Unlock()
	moved := 0
	for _, k := range ks {
		if !m.ownsKey(k) || m.cache.Pinned(uint64(k)) {
			continue
		}
		if v, ok := m.cache.Remove(uint64(k)); ok {
			m.pendingDump[k] = v
			moved++
		} else if _, pending := m.pendingDump[k]; pending {
			moved++ // already demoted out of the cache; flushed below
		}
	}
	if len(m.pendingDump) > 0 {
		dump := m.pendingDump
		m.pendingDump = make(map[keys.Key]*embedding.Value)
		if err := m.cfg.Store.Dump(dump); err != nil {
			// A failed dump must not lose the buffered values: they are the
			// only copies (already out of the cache). Restore them so the
			// next dump retries; m.mu is held, so nothing raced the buffer.
			m.pendingDump = dump
			return 0, fmt.Errorf("memps: evict: %w", err)
		}
		m.stats.Dumped += int64(len(dump))
	}
	m.rec.RecordEvict(moved)
	return moved, nil
}

// CompleteBatch unpins the batch's locally-owned working parameters, flushes
// any accumulated evictions to the SSD-PS when the dump buffer is full, and
// triggers SSD compaction when disk usage exceeds its threshold
// (Algorithm 1 lines 17-18).
func (m *MemPS) CompleteBatch(ws *WorkingSet) error {
	if ws == nil {
		return nil
	}
	m.mu.Lock()
	for _, k := range ws.LocalKeys {
		m.cache.Unpin(uint64(k))
	}
	m.mu.Unlock()
	return m.Maintain()
}

// Maintain runs the batch-completion housekeeping without a working set:
// dump the eviction buffer to the SSD-PS once it is full, and compact the
// SSD-PS when its disk usage exceeds the threshold. CompleteBatch calls it
// after unpinning; shard servers call it from the push RPC, which arrives
// once per training batch.
func (m *MemPS) Maintain() error {
	m.mu.Lock()
	dumped := false
	if len(m.pendingDump) >= m.cfg.DumpBatchSize {
		// Dump under m.mu so the evicted parameters never become
		// unreachable to a concurrent (pipelined) batch preparation.
		dump := m.pendingDump
		m.pendingDump = make(map[keys.Key]*embedding.Value)
		if err := m.cfg.Store.Dump(dump); err != nil {
			// Keep the buffered values reachable for a retry; see Evict.
			m.pendingDump = dump
			m.mu.Unlock()
			return fmt.Errorf("memps: dump evicted parameters: %w", err)
		}
		m.stats.Dumped += int64(len(dump))
		dumped = true
	}
	m.mu.Unlock()

	if dumped {
		// Compaction only rewrites already-durable files; it can run
		// outside the MEM-PS lock.
		if _, err := m.cfg.Store.CompactIfNeeded(); err != nil {
			return fmt.Errorf("memps: compaction: %w", err)
		}
	}
	return nil
}

// Flush writes every cached parameter and every pending eviction to the
// SSD-PS. It is called at the end of training to materialize the final model.
func (m *MemPS) Flush() error {
	_, err := m.flushAll()
	return err
}

// flushAll demotes the entire in-memory state (cache and dump buffer) to the
// SSD-PS, returning how many parameters were written. The dump runs under
// m.mu so the parameters stay reachable throughout (see Evict).
func (m *MemPS) flushAll() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := make(map[keys.Key]*embedding.Value, len(m.pendingDump))
	for k, v := range m.pendingDump {
		all[k] = v
	}
	m.pendingDump = make(map[keys.Key]*embedding.Value)
	m.cache.Flush(func(k uint64, v *embedding.Value) {
		all[keys.Key(k)] = v
	})
	if len(all) == 0 {
		return 0, nil
	}
	if err := m.cfg.Store.Dump(all); err != nil {
		// The cache was already drained into all; dropping it here would
		// silently lose every in-memory parameter. Park everything in the
		// dump buffer (still reachable by lookups, retried by the next
		// dump) and surface the error.
		m.pendingDump = all
		return 0, fmt.Errorf("memps: flush: %w", err)
	}
	m.stats.Dumped += int64(len(all))
	m.rec.RecordEvict(len(all))
	return len(all), nil
}

// Lookup returns a copy of the current authoritative value of a locally-owned
// key, or nil if the node does not own it or has never seen it. It is used by
// evaluation code, not by the training path.
func (m *MemPS) Lookup(k keys.Key) *embedding.Value {
	out, _ := m.LookupAll([]keys.Key{k})
	return out[k]
}

// CacheStats returns the cumulative cache statistics (Fig 4c's hit rate).
func (m *MemPS) CacheStats() cache.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Stats()
}

// ResetCacheStats clears the cache statistics (used for per-batch hit-rate
// reporting).
func (m *MemPS) ResetCacheStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.ResetStats()
}

// Stats returns cumulative MEM-PS statistics.
func (m *MemPS) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Store exposes the underlying SSD-PS (for inspection and experiments).
func (m *MemPS) Store() *ssdps.Store { return m.cfg.Store }
